/**
 * @file
 * Runtime-dispatched SIMD layer for the hot sparse-kernel loops.
 *
 * Every vector kernel here is written to be *bit-identical* to its
 * scalar baseline: the AVX2 dot product keeps the scalar kernel's
 * eight double partial-sum lanes (two __m256d accumulators) with
 * separate multiply and add — no FMA contraction — and reduces them
 * in the same sequential lane order; the min/max scan maps the scalar
 * ternaries onto vminps/vmaxps, whose NaN semantics match exactly;
 * the survivor scan is a compare + compress whose index order equals
 * the scalar left-to-right filter. Integer kernels (DLZS, in
 * core/dlzs.cc) are exact by two's-complement commutativity. That
 * bit-exactness is what lets goldens, the determinism tests, and the
 * engine's any-thread-count guarantee survive the vector datapaths
 * (the Occamy lesson: utilization from explicit SIMD, not from
 * relaxed numerics).
 *
 * Dispatch is per-call through an atomic level: detected from the CPU
 * (AVX2 via __builtin_cpu_supports) at first use, overridable by the
 * SOFA_SIMD env var ("scalar" | "avx2") and by setLevel/ScopedLevel,
 * which benches and the property tests use to time and compare both
 * paths in one process. AVX2 bodies are compiled with per-function
 * target attributes, so portable (non -march=native) builds still
 * dispatch to them at runtime on capable hosts.
 *
 * Units: n / indices are elements; levels are ordered capability
 * tiers (Scalar < Avx2).
 */

#ifndef SOFA_TENSOR_SIMD_H
#define SOFA_TENSOR_SIMD_H

#include <cstddef>
#include <cstdint>

/** True when AVX2 function bodies are compiled in (x86-64 with a
 * compiler that supports per-function target attributes); runtime
 * dispatch still checks the CPU before selecting them. */
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SOFA_SIMD_COMPILED_AVX2 1
#define SOFA_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define SOFA_SIMD_COMPILED_AVX2 0
#define SOFA_TARGET_AVX2
#endif

namespace sofa {
namespace simd {

/** Instruction-set tiers the dispatcher can select. */
enum class Level : int
{
    Scalar = 0,
    Avx2 = 1,
};

/** Highest level this build + CPU supports. */
Level detected();

/** Level the dispatched kernels currently use. Initialized on first
 * use to detected(), downgraded by SOFA_SIMD=scalar. */
Level active();

/**
 * Set the dispatch level (clamped to detected()); returns the level
 * actually in effect. Kernels observe the change on their next call;
 * callers flip it between runs, not concurrently with them.
 */
Level setLevel(Level level);

/** "scalar" / "avx2". */
const char *levelName(Level level);

/** RAII level override for benches and property tests comparing the
 * scalar and vector paths within one process. */
class ScopedLevel
{
  public:
    explicit ScopedLevel(Level level) : prev_(active())
    {
        setLevel(level);
    }
    ~ScopedLevel() { setLevel(prev_); }
    ScopedLevel(const ScopedLevel &) = delete;
    ScopedLevel &operator=(const ScopedLevel &) = delete;

  private:
    Level prev_;
};

/**
 * Clip-filter survivor scan (the SADS sorter-chunk filter): write the
 * indices i in [0, n) with !(x[i] < threshold) to @p idx_out in
 * ascending order and return how many survived. NaN elements survive
 * (every comparison with NaN is false), matching the scalar filter.
 * Dispatched; Scalar suffix = the baseline the property tests pin.
 */
std::size_t scanSurvivors(const float *x, std::size_t n,
                          float threshold, std::int32_t *idx_out);
std::size_t scanSurvivorsScalar(const float *x, std::size_t n,
                                float threshold,
                                std::int32_t *idx_out);

} // namespace simd
} // namespace sofa

#endif // SOFA_TENSOR_SIMD_H
