#include "tensor/matrix.h"

#include <cmath>

#include "tensor/kernels.h"

namespace sofa {

MatF
matmulNT(const MatF &a, const MatF &b)
{
    return matmulNTTiled(a, b);
}

MatF
matmul(const MatF &a, const MatF &b)
{
    return matmulTiled(a, b);
}

MatF
matmulSparseLhs(const MatF &a, const MatF &b)
{
    SOFA_ASSERT(a.cols() == b.rows());
    MatF c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t n = 0; n < a.cols(); ++n) {
            const float av = a(i, n);
            if (av == 0.0f)
                continue;
            const float *bn = b.rowPtr(n);
            float *ci = c.rowPtr(i);
            for (std::size_t j = 0; j < b.cols(); ++j)
                ci[j] += av * bn[j];
        }
    }
    return c;
}

MatF
transpose(const MatF &a)
{
    return transposeBlocked(a);
}

float
maxAbs(const MatF &a)
{
    float m = 0.0f;
    for (float v : a.data())
        m = std::max(m, std::fabs(v));
    return m;
}

double
frobeniusDiff(const MatF &a, const MatF &b)
{
    SOFA_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        double d = static_cast<double>(a.data()[i]) - b.data()[i];
        acc += d * d;
    }
    return std::sqrt(acc);
}

double
frobenius(const MatF &a)
{
    double acc = 0.0;
    for (float v : a.data())
        acc += static_cast<double>(v) * v;
    return std::sqrt(acc);
}

double
relativeError(const MatF &approx, const MatF &exact)
{
    double denom = frobenius(exact);
    if (denom < 1e-12)
        denom = 1e-12;
    return frobeniusDiff(approx, exact) / denom;
}

} // namespace sofa
