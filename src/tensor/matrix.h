/**
 * @file
 * Minimal dense row-major matrix used across the repository. Kept
 * deliberately simple: the simulator does not need BLAS, it needs
 * byte-accurate shapes, tiling views and instrumentable matmuls.
 */

#ifndef SOFA_TENSOR_MATRIX_H
#define SOFA_TENSOR_MATRIX_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace sofa {

/** Dense row-major matrix of element type T. */
template <typename T>
class Matrix
{
  public:
    Matrix() : rows_(0), cols_(0) {}

    Matrix(std::size_t rows, std::size_t cols, T fill = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T &
    at(std::size_t r, std::size_t c)
    {
        SOFA_ASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    const T &
    at(std::size_t r, std::size_t c) const
    {
        SOFA_ASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    T &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    const T &operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Pointer to the start of row @p r. */
    T *rowPtr(std::size_t r) { return data_.data() + r * cols_; }
    const T *rowPtr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    std::vector<T> &data() { return data_; }
    const std::vector<T> &data() const { return data_; }

    /** Total payload in bytes, for memory-traffic accounting. */
    std::size_t bytes() const { return data_.size() * sizeof(T); }

    /** Fill every element with @p v. */
    void
    fill(T v)
    {
        for (auto &x : data_)
            x = v;
    }

    bool
    operator==(const Matrix &o) const
    {
        return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
    }

    bool operator!=(const Matrix &o) const { return !(*this == o); }

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<T> data_;
};

using MatF = Matrix<float>;
using MatD = Matrix<double>;
using MatI8 = Matrix<std::int8_t>;
using MatI16 = Matrix<std::int16_t>;
using MatI32 = Matrix<std::int32_t>;
using MatI64 = Matrix<std::int64_t>;

/**
 * C = A * B^T (the natural layout for Q x K^T). Backed by the
 * register-tiled, cache-blocked kernels in tensor/kernels.h and
 * sharded by output rows across the thread pool (SOFA_NUM_THREADS);
 * small products fall back to a serial blocked loop, and per-row
 * results are bit-exact for any thread count.
 */
MatF matmulNT(const MatF &a, const MatF &b);

/** C = A * B. Blocked + threaded like matmulNT; every accumulation
 * order is fixed at compile time, so the result is deterministic. */
MatF matmul(const MatF &a, const MatF &b);

/**
 * C = A * B where rows of A are expected to be mostly zero: skips the
 * inner loop whenever a(i, k) == 0.0f, trading a data-dependent
 * branch for work elision. Dense callers should use matmul, whose
 * instruction stream does not depend on the data (the zero-skip used
 * to hide inside matmul and made dense benchmarks data-dependent).
 * Serial; arithmetic order matches the naive seed kernel.
 */
MatF matmulSparseLhs(const MatF &a, const MatF &b);

/** Transpose (cache-blocked). */
MatF transpose(const MatF &a);

/** Max absolute element (0 for empty matrices). */
float maxAbs(const MatF &a);

/** Frobenius norm of (a - b); matrices must have equal shapes. */
double frobeniusDiff(const MatF &a, const MatF &b);

/** Frobenius norm. */
double frobenius(const MatF &a);

/** Relative error ||a-b||_F / ||b||_F with a tiny-denominator guard. */
double relativeError(const MatF &approx, const MatF &exact);

} // namespace sofa

#endif // SOFA_TENSOR_MATRIX_H
