#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>

#include "common/threadpool.h"

namespace sofa {

namespace kernels {

namespace {

std::atomic<std::size_t> g_panel_bytes{kPanelBytes};
std::atomic<std::size_t> g_block_k{kBlockK};
std::atomic<std::size_t> g_transpose_tile{kTransposeTile};

} // namespace

Tiling
activeTiling()
{
    Tiling t;
    t.panelBytes = g_panel_bytes.load(std::memory_order_relaxed);
    t.blockK = g_block_k.load(std::memory_order_relaxed);
    t.transposeTile =
        g_transpose_tile.load(std::memory_order_relaxed);
    return t;
}

Tiling
setTiling(const Tiling &t)
{
    SOFA_ASSERT(t.panelBytes > 0 && t.transposeTile > 0);
    SOFA_ASSERT(t.blockK > 0 && t.blockK % 4 == 0);
    Tiling prev = activeTiling();
    g_panel_bytes.store(t.panelBytes, std::memory_order_relaxed);
    g_block_k.store(t.blockK, std::memory_order_relaxed);
    g_transpose_tile.store(t.transposeTile,
                           std::memory_order_relaxed);
    return prev;
}

std::size_t
panelRows(std::size_t row_floats)
{
    return panelRowsFor(row_floats,
                        g_panel_bytes.load(
                            std::memory_order_relaxed));
}

} // namespace kernels

namespace {

/**
 * Register-tiled float dot product: sixteen independent partial-sum
 * lanes. The fixed-trip inner loop over a small array is the shape
 * GCC/Clang SLP-vectorize into packed FMAs (measured ~3x faster than
 * the same tiling written as separate scalar accumulators, which the
 * vectorizer misses), and the lanes break the serial FP accumulation
 * chain the naive kernel is latency-bound on.
 */
float
dotf16(const float *a, const float *b, std::size_t n)
{
    float s[16] = {0.0f};
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        for (int l = 0; l < 16; ++l)
            s[l] += a[i + l] * b[i + l];
    float tot = 0.0f;
    for (int l = 0; l < 16; ++l)
        tot += s[l];
    for (; i < n; ++i)
        tot += a[i] * b[i];
    return tot;
}

/**
 * Rows [r0, r1) of C = A * B^T. B rows are visited in panels of
 * panelRows(K) so the panel stays in L2 across the whole [r0, r1)
 * sweep; the A row itself lives in L1.
 */
void
matmulNTRows(const MatF &a, const MatF &b, MatF &c, std::size_t r0,
             std::size_t r1)
{
    const std::size_t K = a.cols();
    const std::size_t N = b.rows();
    const std::size_t panel = kernels::panelRows(K);
    for (std::size_t j0 = 0; j0 < N; j0 += panel) {
        const std::size_t j1 = std::min(N, j0 + panel);
        for (std::size_t i = r0; i < r1; ++i) {
            const float *ai = a.rowPtr(i);
            float *ci = c.rowPtr(i);
            for (std::size_t j = j0; j < j1; ++j)
                ci[j] = dotf16(ai, b.rowPtr(j), K);
        }
    }
}

/**
 * Rows [r0, r1) of C = A * B. The classic i-k-j loop streams B and C
 * rows contiguously; blocking over k keeps a kBlockK-row panel of B
 * hot across the row sweep, and unrolling k by four quarters the
 * C-row load/store traffic.
 */
void
matmulRows(const MatF &a, const MatF &b, MatF &c, std::size_t r0,
           std::size_t r1)
{
    const std::size_t K = a.cols();
    const std::size_t N = b.cols();
    const std::size_t block_k = kernels::activeTiling().blockK;
    for (std::size_t k0 = 0; k0 < K; k0 += block_k) {
        const std::size_t k1 = std::min(K, k0 + block_k);
        for (std::size_t i = r0; i < r1; ++i) {
            const float *ai = a.rowPtr(i);
            float *ci = c.rowPtr(i);
            std::size_t k = k0;
            for (; k + 4 <= k1; k += 4) {
                const float a0 = ai[k];
                const float a1 = ai[k + 1];
                const float a2 = ai[k + 2];
                const float a3 = ai[k + 3];
                const float *b0 = b.rowPtr(k);
                const float *b1 = b.rowPtr(k + 1);
                const float *b2 = b.rowPtr(k + 2);
                const float *b3 = b.rowPtr(k + 3);
                for (std::size_t j = 0; j < N; ++j)
                    ci[j] += (a0 * b0[j] + a1 * b1[j]) +
                             (a2 * b2[j] + a3 * b3[j]);
            }
            for (; k < k1; ++k) {
                const float av = ai[k];
                const float *bk = b.rowPtr(k);
                for (std::size_t j = 0; j < N; ++j)
                    ci[j] += av * bk[j];
            }
        }
    }
}

} // namespace

// dotBlock/minmaxBlock (and their Scalar baselines) live in
// tensor/simd.cc: that translation unit is compiled with
// -ffp-contract=off so the baselines stay bit-identical to the
// runtime-dispatched AVX2 bodies.

MatF
matmulNTNaive(const MatF &a, const MatF &b)
{
    SOFA_ASSERT(a.cols() == b.cols());
    MatF c(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const float *ai = a.rowPtr(i);
        for (std::size_t j = 0; j < b.rows(); ++j) {
            const float *bj = b.rowPtr(j);
            float acc = 0.0f;
            for (std::size_t n = 0; n < a.cols(); ++n)
                acc += ai[n] * bj[n];
            c(i, j) = acc;
        }
    }
    return c;
}

MatF
matmulNaive(const MatF &a, const MatF &b)
{
    SOFA_ASSERT(a.cols() == b.rows());
    MatF c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t n = 0; n < a.cols(); ++n) {
            const float av = a(i, n);
            const float *bn = b.rowPtr(n);
            float *ci = c.rowPtr(i);
            for (std::size_t j = 0; j < b.cols(); ++j)
                ci[j] += av * bn[j];
        }
    }
    return c;
}

MatF
transposeNaive(const MatF &a)
{
    MatF t(a.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            t(j, i) = a(i, j);
    return t;
}

MatF
matmulNTBlocked(const MatF &a, const MatF &b)
{
    SOFA_ASSERT(a.cols() == b.cols());
    MatF c(a.rows(), b.rows());
    if (!c.empty())
        matmulNTRows(a, b, c, 0, a.rows());
    return c;
}

MatF
matmulBlocked(const MatF &a, const MatF &b)
{
    SOFA_ASSERT(a.cols() == b.rows());
    MatF c(a.rows(), b.cols());
    if (!c.empty())
        matmulRows(a, b, c, 0, a.rows());
    return c;
}

MatF
transposeBlocked(const MatF &a)
{
    MatF t(a.cols(), a.rows());
    const std::size_t tile = kernels::activeTiling().transposeTile;
    for (std::size_t i0 = 0; i0 < a.rows(); i0 += tile) {
        const std::size_t i1 = std::min(a.rows(), i0 + tile);
        for (std::size_t j0 = 0; j0 < a.cols(); j0 += tile) {
            const std::size_t j1 = std::min(a.cols(), j0 + tile);
            for (std::size_t i = i0; i < i1; ++i)
                for (std::size_t j = j0; j < j1; ++j)
                    t(j, i) = a(i, j);
        }
    }
    return t;
}

MatF
matmulNTTiled(const MatF &a, const MatF &b)
{
    SOFA_ASSERT(a.cols() == b.cols());
    MatF c(a.rows(), b.rows());
    if (c.empty())
        return c;
    const double row_flops =
        2.0 * static_cast<double>(b.rows()) * a.cols();
    parallelForRows(a.rows(), grainForRowCost(row_flops),
                    [&](std::size_t r0, std::size_t r1) {
                        matmulNTRows(a, b, c, r0, r1);
                    });
    return c;
}

MatF
matmulTiled(const MatF &a, const MatF &b)
{
    SOFA_ASSERT(a.cols() == b.rows());
    MatF c(a.rows(), b.cols());
    if (c.empty())
        return c;
    const double row_flops =
        2.0 * static_cast<double>(a.cols()) * b.cols();
    parallelForRows(a.rows(), grainForRowCost(row_flops),
                    [&](std::size_t r0, std::size_t r1) {
                        matmulRows(a, b, c, r0, r1);
                    });
    return c;
}

} // namespace sofa
