/**
 * @file
 * Register-tiled, cache-blocked tensor kernels behind the canonical
 * matmul/matmulNT/transpose entry points in tensor/matrix.h.
 *
 * The naive seed kernels accumulate each dot product through a single
 * float, which chains every fused multiply-add behind the previous one
 * — the compiler may not reassociate floating-point additions, so the
 * loop runs at FP-add latency instead of throughput. The blocked
 * kernels split each accumulation across several independent partial
 * sums (register tiling: the compiler turns them into SIMD lanes) and
 * iterate in panels sized to keep the streamed operand resident in
 * cache (cache blocking). Partial-sum order is fixed at compile time,
 * so every kernel is deterministic; results differ from the naive
 * kernels only by float rounding (summation order), within the usual
 * MatrixNear tolerances.
 *
 * The Tiled variants additionally shard output rows across the
 * ThreadPool. Each row is computed by exactly the same code as the
 * single-threaded Blocked kernel, so Tiled results are bit-exact
 * equal to Blocked results for any thread count.
 */

#ifndef SOFA_TENSOR_KERNELS_H
#define SOFA_TENSOR_KERNELS_H

#include "tensor/matrix.h"

namespace sofa {

namespace kernels {

/**
 * Default blocking parameters. Chosen for a generic desktop/CI class
 * machine (32 KiB L1D, >= 256 KiB private L2): the panel of the
 * streamed operand is kept near kPanelBytes so it survives in L2
 * across an entire sweep of the other operand's rows. These are the
 * defaults of the runtime Tiling below, so callers that never touch
 * the tiler see exactly the historical behavior.
 */
inline constexpr std::size_t kPanelBytes = 256 * 1024;

/** Default k-extent of the B panel held hot across rows in matmul. */
inline constexpr std::size_t kBlockK = 256;

/** Default square tile edge for the cache-oblivious-ish transpose. */
inline constexpr std::size_t kTransposeTile = 32;

/**
 * Runtime blocking parameters, settable by the tile planner
 * (core/tiler). Every choice is bit-exact vs the defaults by
 * construction: panelBytes and transposeTile only reorder loop
 * sweeps (each output element is still produced by one unchanged
 * computation), and blockK is constrained to a multiple of 4 — the
 * matmul unroll width — so the accumulation groups land on the same
 * absolute k boundaries for any value. The active tiling is stored
 * in process-wide atomics read per kernel call; flip it between
 * runs, not concurrently with one (a racing flip is still safe and
 * still bit-exact, it just makes the perf attribution mushy).
 */
struct Tiling
{
    std::size_t panelBytes = kPanelBytes;
    std::size_t blockK = kBlockK; ///< must be a multiple of 4
    std::size_t transposeTile = kTransposeTile;
};

/** The tiling the kernels currently read. */
Tiling activeTiling();

/** Install @p t (asserts blockK % 4 == 0 and nonzero fields);
 * returns the previous tiling. */
Tiling setTiling(const Tiling &t);

/** RAII tiling override (benches, the autoTile engine path). */
class ScopedTiling
{
  public:
    explicit ScopedTiling(const Tiling &t) : prev_(setTiling(t)) {}
    ~ScopedTiling() { setTiling(prev_); }
    ScopedTiling(const ScopedTiling &) = delete;
    ScopedTiling &operator=(const ScopedTiling &) = delete;

  private:
    Tiling prev_;
};

/** Rows of a panel whose rows are @p row_floats floats wide such
 * that the panel stays near @p panel_bytes (clamped to [16, 512]). */
constexpr std::size_t
panelRowsFor(std::size_t row_floats, std::size_t panel_bytes)
{
    const std::size_t bytes =
        (row_floats > 0 ? row_floats : 1) * sizeof(float);
    const std::size_t rows = panel_bytes / bytes;
    return rows < 16 ? 16 : (rows > 512 ? 512 : rows);
}

/** panelRowsFor over the active tiling's panelBytes. */
std::size_t panelRows(std::size_t row_floats);

} // namespace kernels

/**
 * Tiled dot product in double precision: eight independent partial
 * sums over @p n elements. Shared by the flash kernels (per-row
 * Q·K^T) and masked reference attention. Runtime-dispatched to an
 * explicit AVX2 body (tensor/simd.h) that keeps the same eight
 * double lanes and reduction order, so the result is bit-identical
 * to the Scalar baseline at every dispatch level.
 */
double dotBlock(const float *a, const float *b, std::size_t n);

/** The scalar baseline dotBlock dispatches to (and the benches and
 * property tests compare the SIMD path against). */
double dotBlockScalar(const float *a, const float *b, std::size_t n);

/**
 * Blocked min/max scan over @p n floats in eight independent lanes
 * (the SIMD-friendly shape of the SADS threshold-updating scan).
 * min/max are order-independent, so the result is bit-identical to a
 * sequential scan for any n >= 1. Runtime-dispatched like dotBlock;
 * the AVX2 body's vminps/vmaxps match the scalar ternaries bit for
 * bit (including NaN handling).
 */
void minmaxBlock(const float *a, std::size_t n, float *min_out,
                 float *max_out);

/** Scalar baseline for minmaxBlock. */
void minmaxBlockScalar(const float *a, std::size_t n, float *min_out,
                       float *max_out);

/** @name Naive seed kernels (dense; baseline for benches and tests).
 * Triple loops with single-accumulator dot products, exactly the
 * arithmetic order of the original seed implementation. @{ */
MatF matmulNaive(const MatF &a, const MatF &b);
MatF matmulNTNaive(const MatF &a, const MatF &b);
MatF transposeNaive(const MatF &a);
/** @} */

/** @name Single-threaded blocked kernels. @{ */
MatF matmulBlocked(const MatF &a, const MatF &b);
MatF matmulNTBlocked(const MatF &a, const MatF &b);
MatF transposeBlocked(const MatF &a);
/** @} */

/** @name Blocked + row-sharded across the thread pool.
 * Bit-exact equal to the Blocked variants for any thread count; these
 * back the canonical matmul/matmulNT in tensor/matrix.h. @{ */
MatF matmulTiled(const MatF &a, const MatF &b);
MatF matmulNTTiled(const MatF &a, const MatF &b);
/** @} */

} // namespace sofa

#endif // SOFA_TENSOR_KERNELS_H
