#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"

namespace sofa {

namespace {

template <typename T>
Quantized<T>
quantizeImpl(const MatF &m, int bits)
{
    Quantized<T> q;
    q.values = Matrix<T>(m.rows(), m.cols());
    float amax = maxAbs(m);
    const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
    q.scale = amax > 0.0f ? amax / qmax : 1.0f;
    const float inv = 1.0f / q.scale;
    for (std::size_t i = 0; i < m.data().size(); ++i) {
        float v = m.data()[i] * inv;
        v = std::clamp(v, -qmax, qmax);
        q.values.data()[i] = static_cast<T>(std::lround(v));
    }
    return q;
}

template <typename T>
MatF
dequantizeImpl(const Quantized<T> &q)
{
    MatF m(q.values.rows(), q.values.cols());
    for (std::size_t i = 0; i < m.data().size(); ++i)
        m.data()[i] = static_cast<float>(q.values.data()[i]) * q.scale;
    return m;
}

} // namespace

QuantI8
quantizeI8(const MatF &m)
{
    return quantizeImpl<std::int8_t>(m, 8);
}

QuantI16
quantizeI16(const MatF &m)
{
    return quantizeImpl<std::int16_t>(m, 16);
}

MatF
dequantize(const QuantI8 &q)
{
    return dequantizeImpl(q);
}

MatF
dequantize(const QuantI16 &q)
{
    return dequantizeImpl(q);
}

MatI16
truncateToI16(const MatI64 &m, int *shift_out)
{
    std::int64_t amax = 0;
    for (std::int64_t v : m.data())
        amax = std::max<std::int64_t>(amax, std::llabs(v));
    int shift = 0;
    while ((amax >> shift) > 32767)
        ++shift;
    if (shift_out)
        *shift_out = shift;
    MatI16 out(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.data().size(); ++i) {
        out.data()[i] = static_cast<std::int16_t>(m.data()[i] >> shift);
    }
    return out;
}

} // namespace sofa
