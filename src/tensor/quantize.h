/**
 * @file
 * Symmetric linear quantization between float and the INT8/INT16
 * fixed-point formats the SOFA datapath uses (8-bit tokens/weights in
 * the prediction phase, 16-bit operands in the formal phase).
 */

#ifndef SOFA_TENSOR_QUANTIZE_H
#define SOFA_TENSOR_QUANTIZE_H

#include <cstdint>

#include "tensor/matrix.h"

namespace sofa {

/** A quantized integer matrix together with its dequantization scale. */
template <typename T>
struct Quantized
{
    Matrix<T> values;
    /** float = value * scale */
    float scale = 1.0f;
};

using QuantI8 = Quantized<std::int8_t>;
using QuantI16 = Quantized<std::int16_t>;

/**
 * Symmetric per-tensor quantization to @p bits (<= 16). The scale maps
 * the max-abs element to the top of the signed range.
 */
QuantI8 quantizeI8(const MatF &m);
QuantI16 quantizeI16(const MatF &m);

/** Dequantize back to float. */
MatF dequantize(const QuantI8 &q);
MatF dequantize(const QuantI16 &q);

/**
 * Truncate an int64 accumulator matrix to 16-bit with a power-of-two
 * right shift chosen so the max magnitude fits; models the datapath
 * truncation between the DLZS K-prediction and A-prediction phases.
 * @param shift_out receives the chosen right-shift amount.
 */
MatI16 truncateToI16(const MatI64 &m, int *shift_out);

} // namespace sofa

#endif // SOFA_TENSOR_QUANTIZE_H
