#include "tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "tensor/kernels.h"

#if SOFA_SIMD_COMPILED_AVX2
#include <immintrin.h>
#endif

// This translation unit holds both the scalar baselines and the AVX2
// bodies of the float kernels and is compiled with -ffp-contract=off
// (see src/CMakeLists.txt): if the compiler fused the baseline's
// multiply-add into an FMA on -march=native builds, the separate
// mul/add vector code could no longer be bit-identical to it.

namespace sofa {
namespace simd {

namespace {

Level
detectLevel()
{
#if SOFA_SIMD_COMPILED_AVX2
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
#endif
    return Level::Scalar;
}

Level
clampToDetected(Level level)
{
    return static_cast<int>(level) <= static_cast<int>(detected())
               ? level
               : detected();
}

Level
initialLevel()
{
    if (const char *e = std::getenv("SOFA_SIMD")) {
        if (std::strcmp(e, "scalar") == 0)
            return Level::Scalar;
        if (std::strcmp(e, "avx2") == 0)
            return clampToDetected(Level::Avx2);
    }
    return detected();
}

/** Active level; -1 = not yet initialized (lazy: the env override is
 * read on first kernel call, after main() had a chance to setenv). */
std::atomic<int> g_level{-1};

} // namespace

Level
detected()
{
    static const Level level = detectLevel();
    return level;
}

Level
active()
{
    int l = g_level.load(std::memory_order_relaxed);
    if (l < 0) {
        l = static_cast<int>(initialLevel());
        g_level.store(l, std::memory_order_relaxed);
    }
    return static_cast<Level>(l);
}

Level
setLevel(Level level)
{
    const Level eff = clampToDetected(level);
    g_level.store(static_cast<int>(eff), std::memory_order_relaxed);
    return eff;
}

const char *
levelName(Level level)
{
    return level == Level::Avx2 ? "avx2" : "scalar";
}

std::size_t
scanSurvivorsScalar(const float *x, std::size_t n, float threshold,
                    std::int32_t *idx_out)
{
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!(x[i] < threshold))
            idx_out[kept++] = static_cast<std::int32_t>(i);
    }
    return kept;
}

#if SOFA_SIMD_COMPILED_AVX2

namespace {

SOFA_TARGET_AVX2 std::size_t
scanSurvivorsAvx2(const float *x, std::size_t n, float threshold,
                  std::int32_t *idx_out)
{
    std::size_t kept = 0;
    std::size_t i = 0;
    const __m256 vthr = _mm256_set1_ps(threshold);
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(x + i);
        // x < threshold (ordered quiet): false for NaN operands, so
        // survivors = ~mask matches the scalar !(x < threshold).
        const int clipped = _mm256_movemask_ps(
            _mm256_cmp_ps(v, vthr, _CMP_LT_OQ));
        unsigned surv = static_cast<unsigned>(~clipped) & 0xffu;
        while (surv) {
            const int lane = __builtin_ctz(surv);
            idx_out[kept++] =
                static_cast<std::int32_t>(i) + lane;
            surv &= surv - 1;
        }
    }
    for (; i < n; ++i) {
        if (!(x[i] < threshold))
            idx_out[kept++] = static_cast<std::int32_t>(i);
    }
    return kept;
}

} // namespace

#endif // SOFA_SIMD_COMPILED_AVX2

std::size_t
scanSurvivors(const float *x, std::size_t n, float threshold,
              std::int32_t *idx_out)
{
#if SOFA_SIMD_COMPILED_AVX2
    if (active() == Level::Avx2)
        return scanSurvivorsAvx2(x, n, threshold, idx_out);
#endif
    return scanSurvivorsScalar(x, n, threshold, idx_out);
}

} // namespace simd

double
dotBlockScalar(const float *a, const float *b, std::size_t n)
{
    double s[8] = {0.0};
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        for (int l = 0; l < 8; ++l)
            s[l] += static_cast<double>(a[i + l]) * b[i + l];
    double tot = 0.0;
    for (int l = 0; l < 8; ++l)
        tot += s[l];
    for (; i < n; ++i)
        tot += static_cast<double>(a[i]) * b[i];
    return tot;
}

void
minmaxBlockScalar(const float *a, std::size_t n, float *min_out,
                  float *max_out)
{
    SOFA_ASSERT(n >= 1);
    float mn[8], mx[8];
    for (int l = 0; l < 8; ++l) {
        mn[l] = a[0];
        mx[l] = a[0];
    }
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        for (int l = 0; l < 8; ++l) {
            mn[l] = a[i + l] < mn[l] ? a[i + l] : mn[l];
            mx[l] = a[i + l] > mx[l] ? a[i + l] : mx[l];
        }
    }
    float tmn = mn[0], tmx = mx[0];
    for (int l = 1; l < 8; ++l) {
        tmn = mn[l] < tmn ? mn[l] : tmn;
        tmx = mx[l] > tmx ? mx[l] : tmx;
    }
    for (; i < n; ++i) {
        tmn = a[i] < tmn ? a[i] : tmn;
        tmx = a[i] > tmx ? a[i] : tmx;
    }
    *min_out = tmn;
    *max_out = tmx;
}

#if SOFA_SIMD_COMPILED_AVX2

namespace {

/**
 * AVX2 dotBlock: acc0/acc1 are the scalar kernel's s[0..3]/s[4..7]
 * double lanes. cvtps_pd is exact, and mul_pd + add_pd round exactly
 * where the (uncontracted) scalar multiply-then-add rounds, so every
 * lane holds the identical bit pattern; the reduction then reuses the
 * scalar lane order and tail.
 */
SOFA_TARGET_AVX2 double
dotBlockAvx2(const float *a, const float *b, std::size_t n)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 va = _mm256_loadu_ps(a + i);
        const __m256 vb = _mm256_loadu_ps(b + i);
        const __m256d alo =
            _mm256_cvtps_pd(_mm256_castps256_ps128(va));
        const __m256d ahi =
            _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
        const __m256d blo =
            _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
        const __m256d bhi =
            _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(alo, blo));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(ahi, bhi));
    }
    alignas(32) double s[8];
    _mm256_store_pd(s, acc0);
    _mm256_store_pd(s + 4, acc1);
    double tot = 0.0;
    for (int l = 0; l < 8; ++l)
        tot += s[l];
    for (; i < n; ++i)
        tot += static_cast<double>(a[i]) * b[i];
    return tot;
}

/**
 * AVX2 minmaxBlock: vminps/vmaxps compute (a op cur) ? a : cur with
 * the second operand returned on NaN — exactly the scalar ternaries —
 * so the running lane vectors equal the scalar mn[8]/mx[8] arrays.
 */
SOFA_TARGET_AVX2 void
minmaxBlockAvx2(const float *a, std::size_t n, float *min_out,
                float *max_out)
{
    SOFA_ASSERT(n >= 1);
    __m256 vmn = _mm256_set1_ps(a[0]);
    __m256 vmx = vmn;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(a + i);
        vmn = _mm256_min_ps(v, vmn);
        vmx = _mm256_max_ps(v, vmx);
    }
    alignas(32) float mn[8], mx[8];
    _mm256_store_ps(mn, vmn);
    _mm256_store_ps(mx, vmx);
    float tmn = mn[0], tmx = mx[0];
    for (int l = 1; l < 8; ++l) {
        tmn = mn[l] < tmn ? mn[l] : tmn;
        tmx = mx[l] > tmx ? mx[l] : tmx;
    }
    for (; i < n; ++i) {
        tmn = a[i] < tmn ? a[i] : tmn;
        tmx = a[i] > tmx ? a[i] : tmx;
    }
    *min_out = tmn;
    *max_out = tmx;
}

} // namespace

#endif // SOFA_SIMD_COMPILED_AVX2

double
dotBlock(const float *a, const float *b, std::size_t n)
{
#if SOFA_SIMD_COMPILED_AVX2
    if (simd::active() == simd::Level::Avx2)
        return dotBlockAvx2(a, b, n);
#endif
    return dotBlockScalar(a, b, n);
}

void
minmaxBlock(const float *a, std::size_t n, float *min_out,
            float *max_out)
{
#if SOFA_SIMD_COMPILED_AVX2
    if (simd::active() == simd::Level::Avx2) {
        minmaxBlockAvx2(a, n, min_out, max_out);
        return;
    }
#endif
    minmaxBlockScalar(a, n, min_out, max_out);
}

} // namespace sofa
