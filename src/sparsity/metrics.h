/**
 * @file
 * Quality metrics for dynamic sparsity. Task accuracy in the paper is
 * mediated by which Q-K pairs the predictor keeps; here we measure
 * that mechanism directly:
 *  - top-k recall: fraction of the exact top-k the predictor found;
 *  - softmax mass recall: post-softmax probability mass covered by
 *    the kept set (weights near-misses by how much they matter);
 *  - attention-output relative error vs the exact dense output;
 *  - a calibrated mapping from mass recall to "accuracy loss" so the
 *    paper's 0%/1%/2% loss operating points can be reproduced.
 */

#ifndef SOFA_SPARSITY_METRICS_H
#define SOFA_SPARSITY_METRICS_H

#include <vector>

#include "sparsity/topk.h"
#include "tensor/matrix.h"

namespace sofa {

/** Recall of @p predicted against the exact top-k (order ignored). */
double topkRecall(const SelectionList &predicted,
                  const SelectionList &exact);

/**
 * Post-softmax probability mass captured by the kept set, averaged
 * over rows. 1.0 means the selection covers everything that matters.
 */
double softmaxMassRecall(const MatF &scores,
                         const SelectionList &selected);

/**
 * Calibrated accuracy-loss proxy (percent). Softmax attention output
 * degrades with the *uncovered* probability mass; empirically the
 * relation between uncovered mass and end-task loss is near-linear in
 * the small-loss regime the paper operates in (<= 2%). The scale is
 * calibrated so the paper's keep ratios at 0/1/2% loss hold on the
 * synthetic suite (see EXPERIMENTS.md).
 */
double accuracyLossPercent(double mass_recall);

/** Inverse of accuracyLossPercent: mass recall needed for a loss. */
double massRecallForLoss(double loss_percent);

/** Relative Frobenius error between sparse and dense outputs. */
double outputError(const MatF &sparse_out, const MatF &dense_out);

} // namespace sofa

#endif // SOFA_SPARSITY_METRICS_H
