#include "sparsity/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "attention/reference.h"
#include "common/logging.h"

namespace sofa {

double
topkRecall(const SelectionList &predicted, const SelectionList &exact)
{
    SOFA_ASSERT(predicted.size() == exact.size());
    if (exact.empty())
        return 1.0;
    double acc = 0.0;
    std::size_t rows = 0;
    for (std::size_t r = 0; r < exact.size(); ++r) {
        if (exact[r].empty())
            continue;
        std::set<int> pred(predicted[r].begin(), predicted[r].end());
        std::size_t hit = 0;
        for (int idx : exact[r])
            hit += pred.count(idx);
        acc += static_cast<double>(hit) / exact[r].size();
        ++rows;
    }
    return rows ? acc / rows : 1.0;
}

double
softmaxMassRecall(const MatF &scores, const SelectionList &selected)
{
    SOFA_ASSERT(selected.size() == scores.rows());
    if (scores.rows() == 0)
        return 1.0;
    MatF probs = softmaxRows(scores);
    double acc = 0.0;
    for (std::size_t r = 0; r < scores.rows(); ++r) {
        double covered = 0.0;
        for (int idx : selected[r])
            covered += probs(r, idx);
        acc += covered;
    }
    return acc / static_cast<double>(scores.rows());
}

namespace {

// Calibration: uncovered softmax mass u maps to task-accuracy loss
// super-linearly — a little missing mass is nearly free (the kept
// set renormalizes), but losses accelerate as genuinely important
// tokens start dropping. loss% = C * u^P, with (C, P) fitted so the
// synthetic suite reproduces the paper's operating points: ~18.7%
// kept attention at (near) 0% loss, ~12% at 1% and ~7.4% at 2%
// (Fig. 18).
constexpr double kLossScale = 296.0;
constexpr double kLossExponent = 1.6;

} // namespace

double
accuracyLossPercent(double mass_recall)
{
    const double uncovered = std::clamp(1.0 - mass_recall, 0.0, 1.0);
    return kLossScale * std::pow(uncovered, kLossExponent);
}

double
massRecallForLoss(double loss_percent)
{
    SOFA_ASSERT(loss_percent >= 0.0);
    const double uncovered =
        std::pow(loss_percent / kLossScale, 1.0 / kLossExponent);
    return std::clamp(1.0 - uncovered, 0.0, 1.0);
}

double
outputError(const MatF &sparse_out, const MatF &dense_out)
{
    return relativeError(sparse_out, dense_out);
}

} // namespace sofa
