#include "sparsity/mask.h"

#include "common/logging.h"

namespace sofa {

TopkMask
TopkMask::fromSelections(const SelectionList &sel, int seq)
{
    TopkMask m(static_cast<int>(sel.size()), seq);
    for (std::size_t r = 0; r < sel.size(); ++r)
        for (int key : sel[r])
            m.set(static_cast<int>(r), key);
    return m;
}

bool
TopkMask::get(int query, int key) const
{
    SOFA_ASSERT(query >= 0 && query < queries_);
    SOFA_ASSERT(key >= 0 && key < seq_);
    return bits_[static_cast<std::size_t>(query) * seq_ + key];
}

void
TopkMask::set(int query, int key, bool v)
{
    SOFA_ASSERT(query >= 0 && query < queries_);
    SOFA_ASSERT(key >= 0 && key < seq_);
    bits_[static_cast<std::size_t>(query) * seq_ + key] = v;
}

std::int64_t
TopkMask::popcount() const
{
    std::int64_t n = 0;
    for (bool b : bits_)
        n += b ? 1 : 0;
    return n;
}

double
TopkMask::density() const
{
    if (bits_.empty())
        return 0.0;
    return static_cast<double>(popcount()) /
           static_cast<double>(bits_.size());
}

std::vector<int>
TopkMask::requiredKeys() const
{
    std::vector<int> keys;
    for (int key = 0; key < seq_; ++key) {
        for (int q = 0; q < queries_; ++q) {
            if (get(q, key)) {
                keys.push_back(key);
                break;
            }
        }
    }
    return keys;
}

std::vector<int>
TopkMask::queriesNeedingKey(int key) const
{
    std::vector<int> qs;
    for (int q = 0; q < queries_; ++q)
        if (get(q, key))
            qs.push_back(q);
    return qs;
}

SelectionList
TopkMask::toSelections() const
{
    SelectionList sel(queries_);
    for (int q = 0; q < queries_; ++q)
        for (int key = 0; key < seq_; ++key)
            if (get(q, key))
                sel[q].push_back(key);
    return sel;
}

} // namespace sofa
