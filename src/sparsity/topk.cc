#include "sparsity/topk.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace sofa {

Selection
exactTopK(const float *row, int seq, int k)
{
    SOFA_ASSERT(k >= 0 && seq >= 0);
    k = std::min(k, seq);
    Selection idx(seq);
    std::iota(idx.begin(), idx.end(), 0);
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [row](int a, int b) {
                          if (row[a] != row[b])
                              return row[a] > row[b];
                          return a < b;
                      });
    idx.resize(k);
    return idx;
}

SelectionList
exactTopKRows(const MatF &scores, int k)
{
    SelectionList out;
    out.reserve(scores.rows());
    for (std::size_t r = 0; r < scores.rows(); ++r)
        out.push_back(exactTopK(scores.rowPtr(r),
                                static_cast<int>(scores.cols()), k));
    return out;
}

std::int64_t
bitonicSortComparisons(std::int64_t n)
{
    if (n <= 1)
        return 0;
    // Next power of two (bitonic networks operate on 2^m inputs).
    std::int64_t p = 1;
    while (p < n)
        p <<= 1;
    const double lg = std::log2(static_cast<double>(p));
    return static_cast<std::int64_t>(p / 2 * lg * (lg + 1) / 2);
}

Selection
vanillaTopK(const float *row, int seq, int k, OpCounter *ops)
{
    if (ops)
        ops->cmpN(bitonicSortComparisons(seq));
    return exactTopK(row, seq, k);
}

SelectionList
vanillaTopKRows(const MatF &scores, int k, OpCounter *ops)
{
    SelectionList out;
    out.reserve(scores.rows());
    for (std::size_t r = 0; r < scores.rows(); ++r) {
        out.push_back(vanillaTopK(scores.rowPtr(r),
                                  static_cast<int>(scores.cols()), k,
                                  ops));
    }
    return out;
}

} // namespace sofa
