/**
 * @file
 * Top-k mask utilities: conversions between per-row index selections
 * and dense boolean masks, plus KV coverage queries used by the
 * on-demand KV generation stage and the RASS scheduler.
 */

#ifndef SOFA_SPARSITY_MASK_H
#define SOFA_SPARSITY_MASK_H

#include <cstdint>
#include <vector>

#include "sparsity/topk.h"

namespace sofa {

/** Dense per-(query, key) boolean mask. */
class TopkMask
{
  public:
    TopkMask() : queries_(0), seq_(0) {}
    TopkMask(int queries, int seq)
        : queries_(queries), seq_(seq),
          bits_(static_cast<std::size_t>(queries) * seq, false)
    {}

    /** Build from per-row selections. */
    static TopkMask fromSelections(const SelectionList &sel, int seq);

    int queries() const { return queries_; }
    int seq() const { return seq_; }

    bool get(int query, int key) const;
    void set(int query, int key, bool v = true);

    /** Number of selected (query, key) pairs. */
    std::int64_t popcount() const;

    /** Fraction of pairs selected. */
    double density() const;

    /** Keys needed by at least one query (the on-demand KV set). */
    std::vector<int> requiredKeys() const;

    /** Queries that need the given key. */
    std::vector<int> queriesNeedingKey(int key) const;

    /** Recover per-row selections (ascending key order). */
    SelectionList toSelections() const;

  private:
    int queries_;
    int seq_;
    std::vector<bool> bits_;
};

} // namespace sofa

#endif // SOFA_SPARSITY_MASK_H
