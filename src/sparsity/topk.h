/**
 * @file
 * Top-k selection primitives: the exact oracle used as ground truth,
 * and the "vanilla sorting" baseline of the paper's top-k stage, which
 * must see a whole row before it can select and whose comparison count
 * is the cost SADS amortizes away.
 */

#ifndef SOFA_SPARSITY_TOPK_H
#define SOFA_SPARSITY_TOPK_H

#include <cstdint>
#include <vector>

#include "attention/opcount.h"
#include "tensor/matrix.h"

namespace sofa {

/** Indices selected for one query row, most important first. */
using Selection = std::vector<int>;

/** Per-row selections for a whole query block. */
using SelectionList = std::vector<Selection>;

/**
 * Exact top-k of one row (descending by value, ties by lower index).
 * This is the oracle: O(S log S) host-side sort, no op accounting.
 */
Selection exactTopK(const float *row, int seq, int k);

/** Exact top-k for every row of a score matrix. */
SelectionList exactTopKRows(const MatF &scores, int k);

/**
 * Vanilla hardware top-k: a full bitonic sort of the S-length row
 * (the "whole-row-processing" style of Fig. 2). Returns the same
 * selection as the oracle but charges the comparison cost of a
 * bitonic sorting network, S/2 * log2(S) * (log2(S)+1) / 2 compare-
 * exchange operations per row.
 */
Selection vanillaTopK(const float *row, int seq, int k, OpCounter *ops);

/** Vanilla top-k over all rows. */
SelectionList vanillaTopKRows(const MatF &scores, int k,
                              OpCounter *ops);

/** Number of comparators a full bitonic sort of n elements uses. */
std::int64_t bitonicSortComparisons(std::int64_t n);

} // namespace sofa

#endif // SOFA_SPARSITY_TOPK_H
