/**
 * @file
 * Unified bench reporting: every bench_* binary funnels its headline
 * numbers through bench::Reporter, which emits a machine-readable
 * BENCH_<name>.json (metric name, value, unit, paper-reference value
 * where the paper states one, and the tolerance the golden-number
 * diff may apply). scripts/golden_diff.py compares these artifacts
 * against the checked-in bench/goldens/ set, so reproduction drift
 * against the paper's figures/tables fails CI instead of rotting
 * silently. bench/benchmain.h wraps this into a common main() with
 * standardized CLI flags (--quick, --json-out, --no-json, --seed).
 */

#ifndef SOFA_COMMON_REPORTER_H
#define SOFA_COMMON_REPORTER_H

#include <cstdint>
#include <deque>
#include <string>

namespace sofa {
namespace bench {

/** CLI options shared by every bench binary (see parseArgs). */
struct Options
{
    bool quick = false;     ///< reduced sweep for CI golden gating
    bool writeJson = true;  ///< emit BENCH_<name>.json
    std::string jsonPath;   ///< empty: BENCH_<name>.json in the cwd
    std::uint64_t seed = 0; ///< 0: keep the bench's built-in seeds
    /**
     * Thread-pool size for the run (overrides SOFA_NUM_THREADS, so
     * golden runs are reproducible regardless of the host's core
     * count). 0 = not specified; benchMain resolves it to the actual
     * pool size before the bench body runs, and the count is
     * recorded in the BENCH_*.json artifact.
     */
    int threads = 0;

    /**
     * The seed a bench should feed its Rng: the bench's built-in
     * default when --seed was not given, otherwise a mix of the two
     * so one CLI seed re-randomizes every independent workload in
     * the binary without collapsing them onto the same stream.
     */
    std::uint64_t seedOr(std::uint64_t dflt) const;
};

/**
 * Parse the standardized bench flags:
 *   --quick          reduced problem sizes (the golden-gated tier)
 *   --json-out PATH  JSON artifact path (--json is an alias)
 *   --no-json        suppress the JSON artifact
 *   --seed N         override the bench's built-in workload seeds
 *   --threads N      thread-pool size (overrides SOFA_NUM_THREADS)
 * Returns false and fills *error on an unknown flag or missing
 * argument.
 */
bool parseArgs(int argc, char **argv, Options *opts,
               std::string *error);

/**
 * One reported datapoint. The tolerance fields travel with the
 * artifact so scripts/golden_diff.py applies per-metric bounds: the
 * default relTol suits deterministic analytic models; metrics
 * derived from discrete selections (top-k recalls, calibrated keep
 * grids) set a looser tol(); wall-clock timings are nocheck().
 */
struct Metric
{
    std::string name;
    double value = 0.0;
    std::string unit;
    double paperValue = 0.0; ///< valid only when hasPaper
    bool hasPaper = false;
    double relTol = 1e-4;
    double absTol = 0.0; ///< extra absolute slack (zero-valued goldens)
    bool checked = true; ///< false: recorded for trajectory only

    /** Reference value the paper states for this datapoint. */
    Metric &paper(double v);
    /** Relative tolerance for the golden diff. */
    Metric &tol(double rel);
    /** Absolute tolerance floor (for golden values at/near zero). */
    Metric &atol(double abs);
    /** Record but never gate (machine-dependent timings). */
    Metric &nocheck();
};

/**
 * Collects a bench binary's metrics and serializes them:
 *
 *   Reporter r("fig05_fa2", opts);
 *   r.metric("extra_exps_s2048", exps, "ops").paper(4.2e6);
 *   r.writeFile(r.defaultPath());
 *
 * Metric names must be unique within a report (the golden diff keys
 * on them); a duplicate throws std::logic_error.
 */
class Reporter
{
  public:
    Reporter(std::string name, const Options &opts);

    /** Add a metric; returns it for fluent paper()/tol()/nocheck(). */
    Metric &metric(const std::string &name, double value,
                   const std::string &unit);

    const std::string &name() const { return name_; }
    std::size_t count() const { return metrics_.size(); }
    /** Lookup by name; nullptr when absent. */
    const Metric *find(const std::string &name) const;

    /** "BENCH_<name>.json". */
    std::string defaultPath() const;
    /** The full JSON document. */
    std::string json() const;
    /** Serialize to path; false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    std::string name_;
    bool quick_;
    std::uint64_t seed_;
    int threads_; ///< resolved pool size recorded in the artifact
    std::deque<Metric> metrics_; // deque: fluent refs stay stable
};

/** A bench binary's body: fill the reporter, return an exit code. */
using RunFn = int (*)(const Options &, Reporter &);

/**
 * Shared main(): parse flags (exit 2 + usage on bad ones), run fn,
 * then write the JSON artifact (even when fn failed, so a diverged
 * run still leaves evidence). Returns fn's code, or 1 when only the
 * artifact write failed. Used via SOFA_BENCH_MAIN in benchmain.h.
 */
int benchMain(const char *name, RunFn fn, int argc, char **argv);

} // namespace bench
} // namespace sofa

#endif // SOFA_COMMON_REPORTER_H
