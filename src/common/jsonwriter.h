/**
 * @file
 * Minimal streaming JSON writer for machine-readable benchmark
 * output (BENCH_*.json). Handles nesting, comma placement and string
 * escaping; numbers are emitted with enough precision to round-trip,
 * and non-finite doubles degrade to null (JSON has no NaN/inf).
 */

#ifndef SOFA_COMMON_JSONWRITER_H
#define SOFA_COMMON_JSONWRITER_H

#include <cstdint>
#include <string>
#include <vector>

namespace sofa {

/**
 * Forward-only JSON document builder:
 *
 *   JsonWriter j;
 *   j.beginObject()
 *       .key("bench").value("kernels")
 *       .key("results").beginArray()
 *           .beginObject().key("m").value(1024).endObject()
 *       .endArray()
 *   .endObject();
 *   j.writeFile("BENCH_kernels.json");
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member name inside an object; must precede its value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    /** The document so far. */
    const std::string &str() const { return out_; }

    /** Write str() plus a trailing newline; false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    void separate();
    void raw(const std::string &text);

    std::string out_;
    std::vector<bool> first_; ///< per open scope: no member emitted yet
    bool pending_key_ = false;
};

} // namespace sofa

#endif // SOFA_COMMON_JSONWRITER_H
