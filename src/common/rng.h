/**
 * @file
 * Deterministic random-number generation for workload synthesis and the
 * Bayesian design-space exploration. A thin wrapper over std::mt19937_64
 * so every experiment in the repository is reproducible from a seed.
 */

#ifndef SOFA_COMMON_RNG_H
#define SOFA_COMMON_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace sofa {

/** Seeded random source shared by workload generators and the DSE. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x50FA50FAull) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Normal deviate. */
    double gaussian(double mean = 0.0, double stddev = 1.0);

    /** Exponential deviate with the given rate. */
    double exponential(double rate);

    /** Bernoulli trial. */
    bool bernoulli(double p);

    /** Sample an index from an (unnormalized) weight vector. */
    std::size_t categorical(const std::vector<double> &weights);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Expose the engine for use with std distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace sofa

#endif // SOFA_COMMON_RNG_H
