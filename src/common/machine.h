/**
 * @file
 * Host machine descriptor for the tile planner (core/tiler): the
 * cache hierarchy, core count and SIMD width the analytic cost model
 * scores tile plans against. Detection is best-effort and portable —
 * sysconf's _SC_LEVEL*_DCACHE_SIZE where glibc provides it, then the
 * sysfs cpu cache directories, then fixed desktop/CI-class fallbacks
 * (the same 32 KiB L1 / 256 KiB L2 assumption the constexpr kernel
 * panels were originally sized for) — and cached after the first
 * call, so planTiles() is deterministic within a process.
 *
 * The SOFA_MACHINE environment variable overrides any subset of the
 * detected fields ("l1=32768,l2=262144,llc=8388608,cores=8,lanes=8",
 * keys in any order, unmentioned keys keep their detected values),
 * which is how tests and cross-machine reproductions pin the
 * descriptor; describe()/parseMachine() round-trip the same grammar.
 *
 * Units: cache sizes are bytes; cores are schedulable hardware
 * threads; simdLanes is 32-bit float lanes per vector op (8 for
 * AVX2, 1 scalar).
 */

#ifndef SOFA_COMMON_MACHINE_H
#define SOFA_COMMON_MACHINE_H

#include <cstddef>
#include <string>

namespace sofa {

/** What the tile cost model knows about the host. */
struct MachineDescriptor
{
    std::size_t l1Bytes = 32 * 1024;       ///< per-core L1D
    std::size_t l2Bytes = 256 * 1024;      ///< per-core private L2
    std::size_t llcBytes = 8 * 1024 * 1024; ///< shared last-level
    int cores = 1;     ///< workers the pool can actually run
    int simdLanes = 1; ///< float lanes per vector op (tensor/simd)

    /** "l1=...,l2=...,llc=...,cores=...,lanes=..." (the SOFA_MACHINE
     * grammar; parseMachine round-trips it). */
    std::string describe() const;

    bool operator==(const MachineDescriptor &o) const
    {
        return l1Bytes == o.l1Bytes && l2Bytes == o.l2Bytes &&
               llcBytes == o.llcBytes && cores == o.cores &&
               simdLanes == o.simdLanes;
    }
    bool operator!=(const MachineDescriptor &o) const
    {
        return !(*this == o);
    }
};

/**
 * Apply a SOFA_MACHINE-grammar override string on top of @p out
 * (only the mentioned keys change). Returns false — leaving @p out
 * untouched — on an unknown key, a malformed field, or a
 * non-positive value.
 */
bool parseMachine(const std::string &text, MachineDescriptor *out);

/** Fresh detection: sysconf -> sysfs -> fallbacks, then the
 * SOFA_MACHINE override. Exposed for tests; production callers use
 * the cached detectMachine(). */
MachineDescriptor detectMachineUncached();

/** The process-wide descriptor (detected once, then cached — the
 * planner's determinism contract depends on it not changing). */
const MachineDescriptor &detectMachine();

} // namespace sofa

#endif // SOFA_COMMON_MACHINE_H
