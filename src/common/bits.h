/**
 * @file
 * Bit-level utilities used by the DLZS log-domain computing paradigm:
 * leading-zero counts for configurable widths, power-of-two helpers and
 * saturating shifts. These model the behaviour of the hardware
 * leading-zero counters (LZC) described in Section IV-B of the paper.
 */

#ifndef SOFA_COMMON_BITS_H
#define SOFA_COMMON_BITS_H

#include <cstdint>
#include <type_traits>

namespace sofa {

/**
 * Count leading zeros of @p value within a @p width -bit window.
 *
 * Mirrors the hardware LZC: the value is interpreted as an unsigned
 * magnitude occupying the low @p width bits; the count is the number of
 * zero bits above the most-significant set bit. An all-zero input yields
 * @p width (the hardware raises the all-zero flag `a`).
 *
 * @param value magnitude (must fit in @p width bits)
 * @param width window width in bits (1..64)
 * @return number of leading zeros in [0, width]
 */
constexpr int
leadingZeros(std::uint64_t value, int width)
{
    if (value == 0)
        return width;
    int n = 0;
    for (int bit = width - 1; bit >= 0; --bit) {
        if (value & (std::uint64_t{1} << bit))
            break;
        ++n;
    }
    return n;
}

/**
 * Effective exponent of a magnitude under the paper's Eq. (1a):
 * x = sign * M * 2^(W - LZ), so the exponent is W - LZ.
 * Zero input maps to exponent 0 (the hardware zero-eliminator removes
 * such terms before they reach the shift array).
 */
constexpr int
lzExponent(std::uint64_t value, int width)
{
    return width - leadingZeros(value, width);
}

/** Absolute value of a signed integer, widened so INT_MIN is safe. */
constexpr std::uint64_t
absMagnitude(std::int64_t v)
{
    return v < 0 ? static_cast<std::uint64_t>(-(v + 1)) + 1
                 : static_cast<std::uint64_t>(v);
}

/** Left shift that saturates the shift amount instead of invoking UB. */
constexpr std::int64_t
shiftLeftSat(std::int64_t v, int amount)
{
    if (amount <= 0)
        return amount <= -63 ? 0 : (v >> -amount);
    if (amount >= 63)
        return 0;
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(v) << amount);
}

/** True when @p v is an exact power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Round @p v up to the next multiple of @p m (m > 0). */
constexpr std::int64_t
roundUp(std::int64_t v, std::int64_t m)
{
    return ((v + m - 1) / m) * m;
}

/** Integer ceiling division. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace sofa

#endif // SOFA_COMMON_BITS_H
