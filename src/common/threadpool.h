/**
 * @file
 * Reusable thread pool with a row-sharding parallelFor. Kernels and
 * attention loops shard work by rows: each shard is a contiguous
 * [begin, end) row range whose per-row computation is identical to the
 * serial code, so results are bit-exact regardless of the thread count
 * and op counting stays deterministic (per-shard tallies are summed
 * with integer addition, which is order-independent).
 *
 * The pool honors SOFA_NUM_THREADS (falling back to
 * std::thread::hardware_concurrency) and degrades to a plain serial
 * call when the trip count is too small to amortize a dispatch, when
 * the pool has a single thread, or inside an already-parallel region
 * (nested parallelism runs inline rather than deadlocking).
 *
 * TaskQueue adds the asynchronous counterpart: a FIFO of opaque
 * tasks drained by a small set of dedicated worker threads, for
 * callers (the serve/ scheduler's lanes) that need work *submitted*
 * rather than joined inline. Tasks may freely call parallelFor —
 * concurrent top-level calls serialize on the pool and interleave
 * between epochs, which is what lets stages of independent engine
 * runs overlap.
 */

#ifndef SOFA_COMMON_THREADPOOL_H
#define SOFA_COMMON_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sofa {

class ThreadPool
{
  public:
    /** Shard body: process rows [begin, end); shard is 0-based. */
    using RangeFn =
        std::function<void(std::size_t, std::size_t, int)>;

    /** Pool with @p threads participants (callers count as one; a
     * pool of n spawns n-1 workers). Clamped to >= 1. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Process-wide pool, created on first use. Thread count comes
     * from setDefaultThreads when called (>= 1), else
     * SOFA_NUM_THREADS when set (>= 1), else hardware_concurrency.
     */
    static ThreadPool &instance();

    /**
     * Override the process-wide pool's thread count (wins over
     * SOFA_NUM_THREADS; clamped to [1, 256]). Must run before the
     * first instance() use — the bench CLI's --threads flag calls it
     * at startup. Returns false (and changes nothing) once the pool
     * exists.
     */
    static bool setDefaultThreads(int threads);

    /** Total participants (calling thread + workers). */
    int threads() const { return nthreads_; }

    /**
     * Split [0, n) into at most threads() contiguous shards of at
     * least @p grain rows each and run @p fn on every shard
     * concurrently; the calling thread executes shard 0 and blocks
     * until all shards finish. Runs serially (one fn(0, n, 0) call on
     * the caller) when fewer than two shards fit, when serial mode is
     * forced, or when called from inside another parallelFor.
     *
     * Exception-safe: a throw from any shard is surfaced on the
     * calling thread after all shards have drained (when both the
     * caller's shard and a worker shard throw, the caller's
     * exception wins and the worker's is dropped). Output written by
     * other shards before the throw is left as-is.
     */
    void parallelFor(std::size_t n, std::size_t grain,
                     const RangeFn &fn);

    /**
     * RAII guard forcing every parallelFor into the serial path while
     * alive. Used by determinism tests to compare threaded results
     * against a bit-exact serial execution within one process.
     */
    class ScopedSerial
    {
      public:
        ScopedSerial();
        ~ScopedSerial();
        ScopedSerial(const ScopedSerial &) = delete;
        ScopedSerial &operator=(const ScopedSerial &) = delete;
    };

    /** True while any ScopedSerial guard is alive. */
    static bool serialForced();

  private:
    struct Range
    {
        std::size_t begin;
        std::size_t end;
    };

    void workerLoop(int worker);

    const int nthreads_;
    std::vector<std::thread> workers_;

    std::mutex run_mutex_; ///< serializes top-level parallelFor calls

    std::mutex m_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::vector<Range> ranges_; ///< ranges_[s] belongs to shard s
    const RangeFn *job_ = nullptr;
    std::exception_ptr worker_error_; ///< first worker throw, if any
    int active_ = 0; ///< worker shards outstanding this epoch
    int done_ = 0;
    std::uint64_t epoch_ = 0;
    bool stop_ = false;
};

/**
 * FIFO task queue drained by its own dedicated worker threads: the
 * asynchronous complement to ThreadPool::parallelFor. submit()
 * enqueues a task and returns immediately with a future; up to
 * `workers` tasks run concurrently, in submission order. A task's
 * exception is captured in its future (never lost, never fatal to
 * the queue). The destructor drains every submitted task before
 * joining, so work handed to a TaskQueue always completes.
 *
 * Tasks may call ThreadPool::parallelFor: each worker is a fresh
 * thread (not a pool shard), so the call takes the normal top-level
 * path and concurrent callers serialize per epoch on the pool.
 */
class TaskQueue
{
  public:
    /** Queue with @p workers dedicated threads (clamped to >= 1). */
    explicit TaskQueue(int workers);
    ~TaskQueue();

    TaskQueue(const TaskQueue &) = delete;
    TaskQueue &operator=(const TaskQueue &) = delete;

    /** Enqueue @p task; the future resolves when it finishes (or
     * rethrows what the task threw). */
    std::future<void> submit(std::function<void()> task);

    /** Block until every task submitted so far has finished. */
    void wait();

    int workers() const { return nworkers_; }
    /** Tasks queued but not yet started. */
    std::size_t pending() const;

  private:
    void workerLoop();

    const int nworkers_;
    std::vector<std::thread> threads_;

    mutable std::mutex m_;
    std::condition_variable work_cv_; ///< workers wait for tasks
    std::condition_variable idle_cv_; ///< wait()/dtor wait for drain
    std::deque<std::packaged_task<void()>> tasks_;
    int running_ = 0; ///< tasks currently executing
    bool stop_ = false;
};

/**
 * Convenience wrapper over ThreadPool::instance(): run
 * fn(begin, end) over [0, n) in row shards of at least @p grain.
 * Never touches the pool (and so never spawns threads) when the range
 * is too small for two shards.
 */
void parallelForRows(std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>
                         &fn);

/**
 * Minimum rows per shard so one shard amortizes a dispatch, given the
 * approximate arithmetic cost of a single row. Rows cheaper than the
 * internal threshold yield large grains (forcing small problems down
 * the serial path).
 */
std::size_t grainForRowCost(double flops_per_row);

} // namespace sofa

#endif // SOFA_COMMON_THREADPOOL_H
