/**
 * @file
 * Reusable thread pool with a row-sharding parallelFor. Kernels and
 * attention loops shard work by rows: each shard is a contiguous
 * [begin, end) row range whose per-row computation is identical to the
 * serial code, so results are bit-exact regardless of the thread count
 * and op counting stays deterministic (per-shard tallies are summed
 * with integer addition, which is order-independent).
 *
 * The pool honors SOFA_NUM_THREADS (falling back to
 * std::thread::hardware_concurrency) and degrades to a plain serial
 * call when the trip count is too small to amortize a dispatch, when
 * the pool has a single thread, or inside an already-parallel region
 * (nested parallelism runs inline rather than deadlocking).
 *
 * parallelFor splits the range into one static near-equal shard per
 * participant; parallelForDynamic instead fixes a grain-sized chunk
 * grid and lets every participant pull the next unclaimed chunk off
 * an atomic counter (work stealing for ragged chunk costs). The
 * chunk grid — and therefore every chunk's [begin, end) and index —
 * is a pure function of (n, grain), never of the thread count or of
 * which thread claimed what, so callers that keep per-chunk tallies
 * and merge them in chunk order stay bit-exact at any concurrency.
 *
 * TaskQueue adds the asynchronous counterpart: a FIFO of opaque
 * tasks drained by a small set of dedicated worker threads, for
 * callers (the serve/ scheduler's lanes) that need work *submitted*
 * rather than joined inline. Tasks may freely call parallelFor —
 * concurrent top-level calls serialize on the pool and interleave
 * between epochs, which is what lets stages of independent engine
 * runs overlap.
 *
 * Units: thread counts are participants (the calling thread plus
 * workers); n, grain, and shard/chunk boundaries are rows (work
 * items); grainForRowCost takes flops per row.
 */

#ifndef SOFA_COMMON_THREADPOOL_H
#define SOFA_COMMON_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sofa {

class ThreadPool
{
  public:
    /** Shard body: process rows [begin, end); shard is 0-based. */
    using RangeFn =
        std::function<void(std::size_t, std::size_t, int)>;

    /** Pool with @p threads participants (callers count as one; a
     * pool of n spawns n-1 workers). Clamped to >= 1. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Process-wide pool, created on first use. Thread count comes
     * from setDefaultThreads when called (>= 1), else
     * SOFA_NUM_THREADS when set (>= 1), else hardware_concurrency.
     */
    static ThreadPool &instance();

    /**
     * Override the process-wide pool's thread count (wins over
     * SOFA_NUM_THREADS; clamped to [1, 256]), or clear the override
     * with @p threads == 0. Must run before the first instance() use
     * — the bench CLI's --threads flag calls it at startup.
     *
     * Returns the *previous* override (0 = none was set) so nested
     * overrides can restore it — pass the returned value back to undo
     * — or -1 (changing nothing) once the pool exists or when
     * @p threads is negative. ScopedDefaultThreads wraps the
     * save/restore pattern.
     */
    static int setDefaultThreads(int threads);

    /** Current override as last set (0 = none). */
    static int defaultThreadsOverride();

    /** Total participants (calling thread + workers). */
    int threads() const { return nthreads_; }

    /**
     * Split [0, n) into at most threads() contiguous shards of at
     * least @p grain rows each and run @p fn on every shard
     * concurrently; the calling thread executes shard 0 and blocks
     * until all shards finish. Runs serially (one fn(0, n, 0) call on
     * the caller) when fewer than two shards fit, when serial mode is
     * forced, or when called from inside another parallelFor.
     *
     * Exception-safe: a throw from any shard is surfaced on the
     * calling thread after all shards have drained (when both the
     * caller's shard and a worker shard throw, the caller's
     * exception wins and the worker's is dropped). Output written by
     * other shards before the throw is left as-is.
     */
    void parallelFor(std::size_t n, std::size_t grain,
                     const RangeFn &fn);

    /**
     * Dynamic (work-stealing) variant: fix the chunk grid
     * chunk c = [c*grain, min(n, (c+1)*grain)) for
     * c in [0, ceil(n/grain)), then let the caller and every worker
     * repeatedly claim the lowest unclaimed chunk via an atomic
     * counter and run fn(begin, end, chunk_index) on it. Which
     * participant runs a chunk is nondeterministic; the grid itself
     * is not, so per-chunk accumulators merged in chunk order are
     * bit-exact for any thread count. The serial path (single
     * participant, forced serial, nested call, or a single chunk)
     * runs the identical chunk grid in ascending order on the
     * caller.
     *
     * Exception-safe like parallelFor: a throwing participant stops
     * claiming chunks while the others drain the grid; the caller's
     * own exception wins over a stored worker exception.
     */
    void parallelForDynamic(std::size_t n, std::size_t grain,
                            const RangeFn &fn);

    /**
     * RAII guard forcing every parallelFor into the serial path while
     * alive. Used by determinism tests to compare threaded results
     * against a bit-exact serial execution within one process.
     * Guards nest (a depth count), and serial forcing is independent
     * of the default-thread-count override below.
     */
    class ScopedSerial
    {
      public:
        ScopedSerial();
        ~ScopedSerial();
        ScopedSerial(const ScopedSerial &) = delete;
        ScopedSerial &operator=(const ScopedSerial &) = delete;
    };

    /** True while any ScopedSerial guard is alive. */
    static bool serialForced();

    /**
     * RAII default-thread-count override: installs @p threads via
     * setDefaultThreads and restores the previous override (not
     * simply "no override") on destruction, so nested guards compose.
     * Arms only when setDefaultThreads accepted the change; once the
     * process-wide pool exists the guard is a no-op.
     */
    class ScopedDefaultThreads
    {
      public:
        explicit ScopedDefaultThreads(int threads)
            : prev_(setDefaultThreads(threads))
        {
        }
        ~ScopedDefaultThreads()
        {
            if (prev_ >= 0)
                setDefaultThreads(prev_);
        }
        ScopedDefaultThreads(const ScopedDefaultThreads &) = delete;
        ScopedDefaultThreads &
        operator=(const ScopedDefaultThreads &) = delete;

      private:
        int prev_; ///< previous override; -1 = change was rejected
    };

  private:
    struct Range
    {
        std::size_t begin;
        std::size_t end;
    };

    void workerLoop(int worker);
    void runDynamicChunks(const RangeFn &fn, std::size_t n,
                          std::size_t grain, std::size_t chunks);

    const int nthreads_;
    std::vector<std::thread> workers_;

    std::mutex run_mutex_; ///< serializes top-level parallelFor calls

    std::mutex m_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::vector<Range> ranges_; ///< ranges_[s] belongs to shard s
    const RangeFn *job_ = nullptr;
    std::exception_ptr worker_error_; ///< first worker throw, if any
    int active_ = 0; ///< worker shards outstanding this epoch
    int done_ = 0;
    std::uint64_t epoch_ = 0;
    bool stop_ = false;

    bool dynamic_ = false; ///< current epoch uses the chunk counter
    std::size_t dyn_n_ = 0;
    std::size_t dyn_grain_ = 1;
    std::size_t dyn_chunks_ = 0;
    std::atomic<std::size_t> dyn_next_{0}; ///< next unclaimed chunk
};

/**
 * FIFO task queue drained by its own dedicated worker threads: the
 * asynchronous complement to ThreadPool::parallelFor. submit()
 * enqueues a task and returns immediately with a future; up to
 * `workers` tasks run concurrently, in submission order. A task's
 * exception is captured in its future (never lost, never fatal to
 * the queue). The destructor drains every submitted task before
 * joining, so work handed to a TaskQueue always completes.
 *
 * Tasks may call ThreadPool::parallelFor: each worker is a fresh
 * thread (not a pool shard), so the call takes the normal top-level
 * path and concurrent callers serialize per epoch on the pool.
 */
class TaskQueue
{
  public:
    /** Queue with @p workers dedicated threads (clamped to >= 1). */
    explicit TaskQueue(int workers);
    ~TaskQueue();

    TaskQueue(const TaskQueue &) = delete;
    TaskQueue &operator=(const TaskQueue &) = delete;

    /** Enqueue @p task; the future resolves when it finishes (or
     * rethrows what the task threw). */
    std::future<void> submit(std::function<void()> task);

    /** Block until every task submitted so far has finished. */
    void wait();

    int workers() const { return nworkers_; }
    /** Tasks queued but not yet started. */
    std::size_t pending() const;

  private:
    void workerLoop();

    const int nworkers_;
    std::vector<std::thread> threads_;

    mutable std::mutex m_;
    std::condition_variable work_cv_; ///< workers wait for tasks
    std::condition_variable idle_cv_; ///< wait()/dtor wait for drain
    std::deque<std::packaged_task<void()>> tasks_;
    int running_ = 0; ///< tasks currently executing
    bool stop_ = false;
};

/**
 * Convenience wrapper over ThreadPool::instance(): run
 * fn(begin, end) over [0, n) in row shards of at least @p grain.
 * Never touches the pool (and so never spawns threads) when the range
 * is too small for two shards.
 */
void parallelForRows(std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>
                         &fn);

/**
 * Minimum rows per shard so one shard amortizes a dispatch, given the
 * approximate arithmetic cost of a single row. Rows cheaper than the
 * internal threshold yield large grains (forcing small problems down
 * the serial path).
 */
std::size_t grainForRowCost(double flops_per_row);

} // namespace sofa

#endif // SOFA_COMMON_THREADPOOL_H
