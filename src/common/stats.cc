#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sofa {

void
StatGroup::add(const std::string &key, double delta)
{
    counters_[key] += delta;
}

void
StatGroup::set(const std::string &key, double value)
{
    counters_[key] = value;
}

double
StatGroup::get(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0.0 : it->second;
}

bool
StatGroup::has(const std::string &key) const
{
    return counters_.count(key) != 0;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
}

void
StatGroup::clear()
{
    for (auto &[k, v] : counters_)
        v = 0.0;
}

std::string
StatGroup::toString() const
{
    std::ostringstream os;
    for (const auto &[k, v] : counters_) {
        if (!name_.empty())
            os << name_ << ".";
        os << k << " = " << v << "\n";
    }
    return os.str();
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += x;
    return acc / static_cast<double>(v.size());
}

double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    double m = mean(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size()));
}

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    p = std::min(1.0, std::max(0.0, p));
    std::sort(v.begin(), v.end());
    const double pos = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= v.size())
        return v.back();
    const double frac = pos - static_cast<double>(lo);
    return v[lo] + frac * (v[lo + 1] - v[lo]);
}

} // namespace sofa
