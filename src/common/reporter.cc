#include "common/reporter.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/jsonwriter.h"
#include "common/threadpool.h"

namespace sofa {
namespace bench {

std::uint64_t
Options::seedOr(std::uint64_t dflt) const
{
    if (seed == 0)
        return dflt;
    // splitmix64-style mix keeps distinct built-in seeds distinct
    // under a single CLI override.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull + dflt;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

bool
parseArgs(int argc, char **argv, Options *opts, std::string *error)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--quick") == 0) {
            opts->quick = true;
        } else if (std::strcmp(arg, "--no-json") == 0) {
            opts->writeJson = false;
        } else if (std::strcmp(arg, "--json-out") == 0 ||
                   std::strcmp(arg, "--json") == 0) {
            if (i + 1 >= argc) {
                *error = std::string(arg) + " requires a path";
                return false;
            }
            opts->jsonPath = argv[++i];
        } else if (std::strcmp(arg, "--seed") == 0) {
            if (i + 1 >= argc) {
                *error = "--seed requires a value";
                return false;
            }
            char *end = nullptr;
            errno = 0;
            opts->seed = std::strtoull(argv[++i], &end, 0);
            // strtoull silently wraps negatives ("-1" -> 2^64-1).
            if (argv[i][0] == '-' || end == argv[i] ||
                *end != '\0' || errno == ERANGE) {
                *error = std::string("bad --seed value: ") + argv[i];
                return false;
            }
        } else if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc) {
                *error = "--threads requires a value";
                return false;
            }
            char *end = nullptr;
            errno = 0;
            const long v = std::strtol(argv[++i], &end, 0);
            if (end == argv[i] || *end != '\0' || errno == ERANGE ||
                v < 1 || v > 256) {
                *error =
                    std::string("bad --threads value (want 1..256): ") +
                    argv[i];
                return false;
            }
            opts->threads = static_cast<int>(v);
        } else {
            *error = std::string("unknown argument: ") + arg;
            return false;
        }
    }
    return true;
}

Metric &
Metric::paper(double v)
{
    paperValue = v;
    hasPaper = true;
    return *this;
}

Metric &
Metric::tol(double rel)
{
    relTol = rel;
    return *this;
}

Metric &
Metric::atol(double abs)
{
    absTol = abs;
    return *this;
}

Metric &
Metric::nocheck()
{
    checked = false;
    return *this;
}

Reporter::Reporter(std::string name, const Options &opts)
    : name_(std::move(name)), quick_(opts.quick), seed_(opts.seed),
      threads_(opts.threads > 0 ? opts.threads
                                : ThreadPool::instance().threads())
{
}

Metric &
Reporter::metric(const std::string &name, double value,
                 const std::string &unit)
{
    if (find(name) != nullptr)
        throw std::logic_error("duplicate bench metric: " + name);
    Metric m;
    m.name = name;
    m.value = value;
    m.unit = unit;
    metrics_.push_back(std::move(m));
    return metrics_.back();
}

const Metric *
Reporter::find(const std::string &name) const
{
    for (const auto &m : metrics_)
        if (m.name == name)
            return &m;
    return nullptr;
}

std::string
Reporter::defaultPath() const
{
    return "BENCH_" + name_ + ".json";
}

std::string
Reporter::json() const
{
    JsonWriter j;
    j.beginObject()
        .key("schema").value(1)
        .key("bench").value(name_)
        .key("quick").value(quick_)
        .key("seed").value(seed_)
        .key("threads").value(threads_)
        .key("metrics").beginArray();
    for (const auto &m : metrics_) {
        j.beginObject()
            .key("name").value(m.name)
            .key("value").value(m.value)
            .key("unit").value(m.unit);
        if (m.hasPaper)
            j.key("paper").value(m.paperValue);
        j.key("tol").value(m.relTol);
        if (m.absTol != 0.0)
            j.key("atol").value(m.absTol);
        j.key("check").value(m.checked).endObject();
    }
    j.endArray().endObject();
    return j.str();
}

bool
Reporter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string doc = json();
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
        std::fputc('\n', f) != EOF;
    return (std::fclose(f) == 0) && ok;
}

int
benchMain(const char *name, RunFn fn, int argc, char **argv)
{
    Options opts;
    std::string error;
    if (!parseArgs(argc, argv, &opts, &error)) {
        std::fprintf(stderr,
                     "%s: %s\n"
                     "usage: %s [--quick] [--json-out PATH] "
                     "[--no-json] [--seed N] [--threads N]\n",
                     argv[0], error.c_str(), argv[0]);
        return 2;
    }
    // Apply --threads before any pool use; once the process-wide
    // pool exists the override cannot take effect.
    if (opts.threads > 0 &&
        ThreadPool::setDefaultThreads(opts.threads) < 0) {
        std::fprintf(stderr,
                     "%s: --threads %d ignored (pool already "
                     "created)\n",
                     argv[0], opts.threads);
    }
    // Record the pool size the run actually gets, so the artifact
    // documents it and the bench body can read it off opts.
    opts.threads = ThreadPool::instance().threads();
    Reporter reporter(name, opts);
    const int rc = fn(opts, reporter);
    if (opts.writeJson) {
        const std::string path =
            opts.jsonPath.empty() ? reporter.defaultPath()
                                  : opts.jsonPath;
        if (!reporter.writeFile(path)) {
            std::fprintf(stderr, "failed to write %s\n",
                         path.c_str());
            return rc != 0 ? rc : 1;
        }
        std::printf("\nwrote %s (%zu metrics)\n", path.c_str(),
                    reporter.count());
    }
    return rc;
}

} // namespace bench
} // namespace sofa
