#include "common/faultplan.h"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace sofa {

namespace {

/** splitmix64 finalizer (same mix as model/model_workload.cc). */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** FNV-1a over a C string; stage names enter the hash through this. */
std::uint64_t
hashString(const char *s)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (; s && *s; ++s) {
        h ^= static_cast<unsigned char>(*s);
        h *= 0x00000100000001B3ull;
    }
    return h;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(sep, start);
        if (end == std::string::npos)
            end = s.size();
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

[[noreturn]] void
bad(const std::string &what, const std::string &tok)
{
    throw std::invalid_argument("FaultPlan: " + what + " in '" + tok +
                                "'");
}

std::uint64_t
parseUint(const std::string &tok, const std::string &value)
{
    if (value.empty())
        bad("empty integer", tok);
    std::size_t pos = 0;
    unsigned long long v = 0;
    try {
        v = std::stoull(value, &pos);
    } catch (const std::exception &) {
        bad("unparsable integer '" + value + "'", tok);
    }
    if (pos != value.size())
        bad("trailing garbage in integer '" + value + "'", tok);
    return static_cast<std::uint64_t>(v);
}

double
parseFloat(const std::string &tok, const std::string &value)
{
    if (value.empty())
        bad("empty number", tok);
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(value, &pos);
    } catch (const std::exception &) {
        bad("unparsable number '" + value + "'", tok);
    }
    if (pos != value.size())
        bad("trailing garbage in number '" + value + "'", tok);
    return v;
}

FaultRule
parseRule(const std::string &text)
{
    std::vector<std::string> fields = split(text, ':');
    FaultRule rule;
    const std::string action = trim(fields[0]);
    bool sawMs = false;
    if (action == "fail") {
        rule.action = FaultAction::Fail;
    } else if (action == "slow") {
        rule.action = FaultAction::Slow;
    } else {
        bad("unknown action '" + action + "'", text);
    }
    for (std::size_t i = 1; i < fields.size(); ++i) {
        const std::string tok = trim(fields[i]);
        if (tok.empty())
            bad("empty field", text);
        std::size_t eq = tok.find_first_of("=<");
        if (eq == std::string::npos)
            bad("field without '=' ('" + tok + "')", text);
        const std::string key = tok.substr(0, eq);
        const char op = tok[eq];
        const std::string value = tok.substr(eq + 1);
        if (key == "attempt") {
            std::uint64_t n = parseUint(tok, value);
            if (n > 1u << 20)
                bad("absurd attempt bound", tok);
            if (op == '=')
                rule.attemptEq = static_cast<int>(n);
            else
                rule.attemptBelow = static_cast<int>(n);
            continue;
        }
        if (op != '=')
            bad("'<' only valid for attempt ('" + tok + "')", text);
        if (key == "req") {
            if (value == "*") {
                rule.anyRequest = true;
            } else {
                rule.anyRequest = false;
                rule.request = parseUint(tok, value);
            }
        } else if (key == "stage") {
            rule.stage = value == "*" ? "" : value;
            if (value.empty())
                bad("empty stage name", tok);
        } else if (key == "prob") {
            rule.prob = parseFloat(tok, value);
            if (!(rule.prob >= 0.0 && rule.prob <= 1.0))
                bad("prob outside [0,1]", tok);
        } else if (key == "seed") {
            rule.seed = parseUint(tok, value);
        } else if (key == "ms") {
            if (rule.action != FaultAction::Slow)
                bad("ms= only valid on slow rules", tok);
            rule.slowMs = parseFloat(tok, value);
            if (!(rule.slowMs > 0.0))
                bad("ms must be > 0", tok);
            sawMs = true;
        } else {
            bad("unknown key '" + key + "'", text);
        }
    }
    (void)sawMs; // slow rules default to 1 ms when ms= is omitted
    return rule;
}

} // namespace

double
hashUnitInterval(std::uint64_t seed, std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = mix64(seed ^ 0xFA017ull);
    z = mix64(z + a);
    z = mix64(z + b);
    // Top 53 bits -> uniform double in [0, 1).
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &raw : split(spec, ';')) {
        const std::string text = trim(raw);
        if (text.empty())
            continue;
        plan.rules_.push_back(parseRule(text));
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnv(const char *var)
{
    const char *spec = std::getenv(var);
    if (spec == nullptr || *spec == '\0')
        return FaultPlan{};
    try {
        return parse(spec);
    } catch (const std::invalid_argument &e) {
        fatal("%s: %s", var, e.what());
    }
}

FaultDecision
FaultPlan::at(std::uint64_t request, const char *stage,
              int attempt) const
{
    for (const FaultRule &rule : rules_) {
        if (!rule.anyRequest && rule.request != request)
            continue;
        if (!rule.stage.empty() &&
            (stage == nullptr || rule.stage != stage))
            continue;
        if (rule.attemptEq >= 0 && attempt != rule.attemptEq)
            continue;
        if (rule.attemptBelow >= 0 && attempt >= rule.attemptBelow)
            continue;
        if (rule.prob < 1.0) {
            // Stateless gate: hash (seed, request, stage ^ attempt)
            // so the decision depends only on the injection point,
            // never on evaluation order or thread interleaving.
            const double u = hashUnitInterval(
                rule.seed, request,
                hashString(stage) + static_cast<std::uint64_t>(
                                        attempt >= 0 ? attempt : 0));
            if (u >= rule.prob)
                continue;
        }
        FaultDecision d;
        d.action = rule.action;
        d.slowMs = rule.action == FaultAction::Slow ? rule.slowMs
                                                    : 0.0;
        return d;
    }
    return FaultDecision{};
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    bool first = true;
    for (const FaultRule &rule : rules_) {
        if (!first)
            os << "; ";
        first = false;
        os << (rule.action == FaultAction::Fail ? "fail" : "slow");
        os << ":req=";
        if (rule.anyRequest)
            os << "*";
        else
            os << rule.request;
        os << ":stage=" << (rule.stage.empty() ? "*" : rule.stage);
        if (rule.attemptEq >= 0)
            os << ":attempt=" << rule.attemptEq;
        if (rule.attemptBelow >= 0)
            os << ":attempt<" << rule.attemptBelow;
        if (rule.prob < 1.0)
            os << ":prob=" << rule.prob << ":seed=" << rule.seed;
        if (rule.action == FaultAction::Slow)
            os << ":ms=" << rule.slowMs;
    }
    if (first)
        os << "(empty)";
    return os.str();
}

} // namespace sofa
