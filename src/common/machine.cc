#include "common/machine.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "tensor/simd.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sofa {

namespace {

/** sysconf cache probe; 0 when the key is unsupported or answers
 * nothing useful. */
std::size_t
sysconfBytes(int name)
{
#if defined(_SC_LEVEL1_DCACHE_SIZE)
    const long v = ::sysconf(name);
    return v > 0 ? static_cast<std::size_t>(v) : 0;
#else
    (void)name;
    return 0;
#endif
}

/** One line of a sysfs cache attribute file ("32K", "1", "Data"). */
std::string
sysfsLine(const std::string &path)
{
    std::ifstream f(path);
    std::string line;
    if (f && std::getline(f, line)) {
        while (!line.empty() &&
               (line.back() == '\n' || line.back() == '\r'))
            line.pop_back();
        return line;
    }
    return std::string();
}

/** Parse the sysfs size grammar: a number with an optional K/M/G
 * suffix. Returns 0 on anything else. */
std::size_t
parseSysfsSize(const std::string &text)
{
    if (text.empty())
        return 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str())
        return 0;
    std::size_t mult = 1;
    if (*end == 'K')
        mult = 1024;
    else if (*end == 'M')
        mult = 1024 * 1024;
    else if (*end == 'G')
        mult = 1024ull * 1024 * 1024;
    else if (*end != '\0')
        return 0;
    return static_cast<std::size_t>(v) * mult;
}

/** Walk /sys/devices/system/cpu/cpu0/cache/index*, keeping the data
 * or unified cache size per level. */
void
sysfsCaches(std::size_t *l1, std::size_t *l2, std::size_t *llc)
{
    const std::string base = "/sys/devices/system/cpu/cpu0/cache/";
    std::size_t best_level = 0;
    for (int idx = 0; idx < 8; ++idx) {
        const std::string dir = base + "index" + std::to_string(idx);
        const std::string type = sysfsLine(dir + "/type");
        if (type.empty())
            break; // indices are contiguous
        if (type != "Data" && type != "Unified")
            continue;
        const std::string level_s = sysfsLine(dir + "/level");
        const std::size_t bytes = parseSysfsSize(
            sysfsLine(dir + "/size"));
        if (level_s.empty() || bytes == 0)
            continue;
        const std::size_t level =
            static_cast<std::size_t>(std::atoi(level_s.c_str()));
        if (level == 1 && *l1 == 0)
            *l1 = bytes;
        else if (level == 2 && *l2 == 0)
            *l2 = bytes;
        if (level >= 2 && level >= best_level) {
            best_level = level;
            *llc = bytes;
        }
    }
}

} // namespace

std::string
MachineDescriptor::describe() const
{
    std::ostringstream os;
    os << "l1=" << l1Bytes << ",l2=" << l2Bytes
       << ",llc=" << llcBytes << ",cores=" << cores
       << ",lanes=" << simdLanes;
    return os.str();
}

bool
parseMachine(const std::string &text, MachineDescriptor *out)
{
    MachineDescriptor m = *out;
    std::istringstream is(text);
    std::string field;
    while (std::getline(is, field, ',')) {
        if (field.empty())
            continue;
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = field.substr(0, eq);
        const std::string val = field.substr(eq + 1);
        char *end = nullptr;
        const long long v = std::strtoll(val.c_str(), &end, 10);
        if (end == val.c_str() || *end != '\0' || v <= 0)
            return false;
        if (key == "l1")
            m.l1Bytes = static_cast<std::size_t>(v);
        else if (key == "l2")
            m.l2Bytes = static_cast<std::size_t>(v);
        else if (key == "llc")
            m.llcBytes = static_cast<std::size_t>(v);
        else if (key == "cores")
            m.cores = static_cast<int>(v);
        else if (key == "lanes")
            m.simdLanes = static_cast<int>(v);
        else
            return false;
    }
    *out = m;
    return true;
}

MachineDescriptor
detectMachineUncached()
{
    MachineDescriptor m; // fallback desktop/CI-class defaults
    std::size_t l1 = 0, l2 = 0, llc = 0;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
    l1 = sysconfBytes(_SC_LEVEL1_DCACHE_SIZE);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
    if (l2 == 0)
        l2 = sysconfBytes(_SC_LEVEL2_CACHE_SIZE);
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
    if (llc == 0)
        llc = sysconfBytes(_SC_LEVEL3_CACHE_SIZE);
#endif
    if (l1 == 0 || l2 == 0 || llc == 0)
        sysfsCaches(&l1, &l2, &llc);
    if (l1 != 0)
        m.l1Bytes = l1;
    if (l2 != 0)
        m.l2Bytes = l2;
    if (llc != 0)
        m.llcBytes = llc;

    const unsigned hw = std::thread::hardware_concurrency();
    m.cores = hw > 0 ? static_cast<int>(hw) : 1;
    m.simdLanes = simd::detected() >= simd::Level::Avx2 ? 8 : 1;

    if (const char *env = std::getenv("SOFA_MACHINE"))
        (void)parseMachine(env, &m); // bad overrides are ignored
    return m;
}

const MachineDescriptor &
detectMachine()
{
    static const MachineDescriptor m = detectMachineUncached();
    return m;
}

} // namespace sofa
