/**
 * @file
 * Deterministic, seeded fault-injection plans for the serving layer.
 * A FaultPlan is a list of rules parsed from a compact spec string
 * (usually the SOFA_FAULTS environment variable); each rule matches
 * an injection point — a (request id, engine stage, attempt) triple
 * probed by the scheduler at every EngineRun stage-step boundary —
 * and injects either an engine-stage exception (`fail`) or an
 * artificial slowdown (`slow`). Probabilistic rules are gated by a
 * stateless splitmix64 hash of (seed, request, stage, attempt), not
 * by a shared RNG stream, so a plan replays to bit-identical
 * decisions at any thread count, lane count, or evaluation order —
 * the property the fault-suite determinism tests and the CI replay
 * smoke test gate.
 *
 * Grammar (rules separated by `;`, fields by `:`):
 *
 *   rule    := action (":" field)*
 *   action  := "fail" | "slow"
 *   field   := "req="     (uint | "*")      match one request id / any
 *            | "stage="   (name | "*")      engine stage name / any
 *            | "attempt=" uint              exact attempt (0-based)
 *            | "attempt<" uint              attempts below the bound
 *            | "prob="    float in [0,1]    hash-gated firing chance
 *            | "seed="    uint              per-rule hash salt
 *            | "ms="      float > 0         slowdown (slow rules only)
 *
 * Example: SOFA_FAULTS="fail:req=3:stage=sads_topk:attempt<2;
 * slow:req=*:stage=sufa_attention:ms=5:prob=0.1:seed=7". The first
 * matching rule wins; omitted fields are wildcards.
 *
 * Units: slowdowns in milliseconds; attempts are 0-based engine-run
 * attempt indices per request; prob is a fraction in [0,1]. Stage
 * names are Engine::stageNames() strings (core/engine.h).
 */

#ifndef SOFA_COMMON_FAULTPLAN_H
#define SOFA_COMMON_FAULTPLAN_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sofa {

/** What a matched rule injects at the probed point. */
enum class FaultAction {
    None, ///< no rule matched; proceed normally
    Fail, ///< throw InjectedFault (a transient engine failure)
    Slow, ///< sleep for `slowMs` before the stage runs
};

/** Decision for one (request, stage, attempt) injection point. */
struct FaultDecision
{
    FaultAction action = FaultAction::None;
    double slowMs = 0.0; ///< sleep duration when action == Slow
};

/** The exception `fail` rules throw at a stage-step boundary. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** One parsed rule; see the grammar in the file header. */
struct FaultRule
{
    FaultAction action = FaultAction::Fail;
    bool anyRequest = true;      ///< req=* (the default)
    std::uint64_t request = 0;   ///< matched id when !anyRequest
    std::string stage;           ///< empty = any stage
    int attemptEq = -1;          ///< exact attempt match; -1 = off
    int attemptBelow = -1;       ///< match attempt < bound; -1 = off
    double prob = 1.0;           ///< hash-gated firing probability
    std::uint64_t seed = 0;      ///< salt for the probability hash
    double slowMs = 1.0;         ///< Slow rules: sleep duration
};

class FaultPlan
{
  public:
    /** The empty plan: at() always returns FaultAction::None. */
    FaultPlan() = default;

    /**
     * Parse a plan from the spec grammar above. Throws
     * std::invalid_argument naming the offending token on any
     * grammar error (unknown action/key, prob outside [0,1],
     * non-positive ms, ms on a fail rule, unparsable number).
     */
    static FaultPlan parse(const std::string &spec);

    /**
     * The plan named by @p var (default SOFA_FAULTS): the empty plan
     * when the variable is unset or empty, fatal() (user error, not
     * an exception) when it is set but malformed.
     */
    static FaultPlan fromEnv(const char *var = "SOFA_FAULTS");

    bool empty() const { return rules_.empty(); }
    std::size_t ruleCount() const { return rules_.size(); }

    /**
     * Decide the injection at one point. Pure and stateless: the
     * same (request, stage, attempt) always yields the same decision
     * for a given plan, independent of call order or concurrency.
     * The first matching rule wins; @p stage may be nullptr (then
     * only stage-wildcard rules can match).
     */
    FaultDecision at(std::uint64_t request, const char *stage,
                     int attempt) const;

    /** One-line human-readable summary of every rule. */
    std::string describe() const;

  private:
    std::vector<FaultRule> rules_;
};

/**
 * Stateless hash of (seed, a, b) to a uniform double in [0, 1) via
 * a splitmix64 chain — the gate probabilistic fault rules and the
 * scheduler's retry-backoff jitter share, so both replay
 * deterministically without any RNG stream ordering.
 */
double hashUnitInterval(std::uint64_t seed, std::uint64_t a,
                        std::uint64_t b);

} // namespace sofa

#endif // SOFA_COMMON_FAULTPLAN_H
