/**
 * @file
 * Fixed-width text table formatter used by the benchmark harness:
 * declare columns, add rows of strings/numbers, render with aligned
 * separators, or export as CSV for plotting.
 */

#ifndef SOFA_COMMON_TABLE_H
#define SOFA_COMMON_TABLE_H

#include <string>
#include <vector>

namespace sofa {

/** Column alignment. */
enum class Align { Left, Right };

/** A simple text table. */
class Table
{
  public:
    /** Declare a column; call before adding rows. */
    Table &column(const std::string &header,
                  Align align = Align::Right);

    /** Start a new row. */
    Table &row();

    /** Append a cell to the current row. */
    Table &cell(const std::string &value);
    Table &cell(double value, int precision = 2);
    Table &cell(std::int64_t value);

    /** Append a percentage cell ("12.3%"). */
    Table &pct(double fraction, int precision = 1);

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

    /** Render with padded columns and a header separator. */
    std::string render() const;

    /** Render as CSV (no padding, comma separated, quoted as
     * needed). */
    std::string csv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sofa

#endif // SOFA_COMMON_TABLE_H
