#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace sofa {

namespace {

/** Depth of live ScopedSerial guards (process-wide). */
std::atomic<int> g_serial_depth{0};

/** setDefaultThreads override; 0 = unset. */
std::atomic<int> g_default_threads{0};

/** Set once instance() has constructed the process-wide pool. */
std::atomic<bool> g_instance_created{false};

/** Set while this thread is executing a shard; nested parallelFor
 * calls from inside a shard run inline instead of re-entering the
 * pool (which would deadlock on run_mutex_). */
thread_local bool tl_in_parallel_region = false;

/** RAII flag for tl_in_parallel_region so it is restored even when a
 * shard body throws. */
struct RegionGuard
{
    RegionGuard() { tl_in_parallel_region = true; }
    ~RegionGuard() { tl_in_parallel_region = false; }
};

int
envThreads()
{
    const int forced = g_default_threads.load();
    if (forced >= 1)
        return std::min(forced, 256);
    if (const char *e = std::getenv("SOFA_NUM_THREADS")) {
        const int v = std::atoi(e);
        if (v >= 1)
            return std::min(v, 256);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

/** One shard must represent at least this much arithmetic before a
 * parallel dispatch pays for itself (~fraction of a millisecond). */
constexpr double kMinShardFlops = 1 << 20;

} // namespace

ThreadPool::ThreadPool(int threads)
    : nthreads_(std::max(1, threads))
{
    workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
    for (int w = 0; w < nthreads_ - 1; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

ThreadPool &
ThreadPool::instance()
{
    // Latch the flag *before* construction so a setDefaultThreads
    // racing with the first instance() call is rejected rather than
    // accepted-but-ignored.
    g_instance_created.store(true);
    static ThreadPool pool(envThreads());
    return pool;
}

int
ThreadPool::setDefaultThreads(int threads)
{
    if (threads < 0 || g_instance_created.load())
        return -1;
    const int clamped = std::min(threads, 256);
    // exchange (not store) returns the previous override, which is
    // what lets nested overrides restore it exactly; 0 clears.
    return g_default_threads.exchange(clamped);
}

int
ThreadPool::defaultThreadsOverride()
{
    return g_default_threads.load();
}

void
ThreadPool::parallelFor(std::size_t n, std::size_t grain,
                        const RangeFn &fn)
{
    if (n == 0)
        return;
    grain = std::max<std::size_t>(grain, 1);
    const std::size_t by_grain = n / grain; // shards of >= grain rows
    const int shards = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(nthreads_),
        std::max<std::size_t>(by_grain, 1)));

    if (shards <= 1 || serialForced() || tl_in_parallel_region) {
        fn(0, n, 0);
        return;
    }

    std::lock_guard<std::mutex> serialize(run_mutex_);

    // Partition [0, n) into near-equal contiguous shards; shard s is
    // executed by worker s-1 (shard 0 by the caller), so every shard
    // runs on a fixed participant and no grabbing race exists.
    {
        std::lock_guard<std::mutex> lk(m_);
        ranges_.clear();
        const std::size_t base = n / static_cast<std::size_t>(shards);
        const std::size_t rem = n % static_cast<std::size_t>(shards);
        std::size_t b = 0;
        for (int s = 0; s < shards; ++s) {
            const std::size_t len =
                base + (static_cast<std::size_t>(s) < rem ? 1 : 0);
            ranges_.push_back({b, b + len});
            b += len;
        }
        job_ = &fn;
        dynamic_ = false;
        done_ = 0;
        active_ = shards - 1;
        worker_error_ = nullptr;
        ++epoch_;
    }
    wake_cv_.notify_all();

    // Workers reference fn through job_, so even if the caller's
    // shard throws we must block until they drain before unwinding
    // destroys the callable (and before run_mutex_ is released).
    struct CompletionWait
    {
        ThreadPool &pool;
        ~CompletionWait()
        {
            std::unique_lock<std::mutex> lk(pool.m_);
            pool.done_cv_.wait(
                lk, [&] { return pool.done_ == pool.active_; });
            pool.job_ = nullptr;
        }
    } wait_for_workers{*this};

    {
        RegionGuard region;
        fn(ranges_[0].begin, ranges_[0].end, 0);
    }

    // Workers are drained by wait_for_workers before this scope ends;
    // surface the first worker exception on the caller (reached only
    // when the caller's own shard did not throw — that one wins).
    std::exception_ptr worker_error;
    {
        std::unique_lock<std::mutex> lk(m_);
        done_cv_.wait(lk, [&] { return done_ == active_; });
        worker_error = worker_error_;
        worker_error_ = nullptr;
    }
    if (worker_error)
        std::rethrow_exception(worker_error);
}

void
ThreadPool::runDynamicChunks(const RangeFn &fn, std::size_t n,
                             std::size_t grain, std::size_t chunks)
{
    for (;;) {
        const std::size_t c =
            dyn_next_.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks)
            return;
        const std::size_t b = c * grain;
        fn(b, std::min(n, b + grain), static_cast<int>(c));
    }
}

void
ThreadPool::parallelForDynamic(std::size_t n, std::size_t grain,
                               const RangeFn &fn)
{
    if (n == 0)
        return;
    grain = std::max<std::size_t>(grain, 1);
    const std::size_t chunks = (n + grain - 1) / grain;

    if (chunks <= 1 || nthreads_ <= 1 || serialForced() ||
        tl_in_parallel_region) {
        // Serial path runs the *same* chunk grid in ascending order,
        // so callers keeping per-chunk tallies see identical chunk
        // shapes and indices in every execution mode.
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t b = c * grain;
            fn(b, std::min(n, b + grain), static_cast<int>(c));
        }
        return;
    }

    std::lock_guard<std::mutex> serialize(run_mutex_);

    {
        std::lock_guard<std::mutex> lk(m_);
        job_ = &fn;
        dynamic_ = true;
        dyn_n_ = n;
        dyn_grain_ = grain;
        dyn_chunks_ = chunks;
        dyn_next_.store(0, std::memory_order_relaxed);
        done_ = 0;
        active_ = nthreads_ - 1;
        worker_error_ = nullptr;
        ++epoch_;
    }
    wake_cv_.notify_all();

    // Same drain discipline as parallelFor: workers reference fn
    // through job_, so block until every worker reports done before
    // unwinding can destroy the callable or release run_mutex_.
    struct CompletionWait
    {
        ThreadPool &pool;
        ~CompletionWait()
        {
            std::unique_lock<std::mutex> lk(pool.m_);
            pool.done_cv_.wait(
                lk, [&] { return pool.done_ == pool.active_; });
            pool.job_ = nullptr;
        }
    } wait_for_workers{*this};

    {
        RegionGuard region;
        runDynamicChunks(fn, n, grain, chunks);
    }

    std::exception_ptr worker_error;
    {
        std::unique_lock<std::mutex> lk(m_);
        done_cv_.wait(lk, [&] { return done_ == active_; });
        worker_error = worker_error_;
        worker_error_ = nullptr;
    }
    if (worker_error)
        std::rethrow_exception(worker_error);
}

void
ThreadPool::workerLoop(int worker)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        wake_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        if (stop_)
            return;
        seen = epoch_;
        if (dynamic_) {
            const RangeFn *job = job_;
            const std::size_t n = dyn_n_;
            const std::size_t grain = dyn_grain_;
            const std::size_t chunks = dyn_chunks_;
            lk.unlock();

            std::exception_ptr error;
            {
                RegionGuard region;
                try {
                    runDynamicChunks(*job, n, grain, chunks);
                } catch (...) {
                    // Stop claiming chunks; the other participants
                    // drain the rest of the grid.
                    error = std::current_exception();
                }
            }

            lk.lock();
            if (error && !worker_error_)
                worker_error_ = error;
            if (++done_ == active_)
                done_cv_.notify_one();
            continue;
        }
        const std::size_t shard =
            static_cast<std::size_t>(worker) + 1;
        if (shard >= ranges_.size())
            continue; // not assigned this epoch
        const Range r = ranges_[shard];
        const RangeFn *job = job_;
        lk.unlock();

        std::exception_ptr error;
        {
            RegionGuard region;
            try {
                (*job)(r.begin, r.end, static_cast<int>(shard));
            } catch (...) {
                error = std::current_exception();
            }
        }

        lk.lock();
        if (error && !worker_error_)
            worker_error_ = error;
        if (++done_ == active_)
            done_cv_.notify_one();
    }
}

ThreadPool::ScopedSerial::ScopedSerial()
{
    g_serial_depth.fetch_add(1, std::memory_order_relaxed);
}

ThreadPool::ScopedSerial::~ScopedSerial()
{
    g_serial_depth.fetch_sub(1, std::memory_order_relaxed);
}

bool
ThreadPool::serialForced()
{
    return g_serial_depth.load(std::memory_order_relaxed) > 0;
}

TaskQueue::TaskQueue(int workers) : nworkers_(std::max(1, workers))
{
    threads_.reserve(static_cast<std::size_t>(nworkers_));
    for (int w = 0; w < nworkers_; ++w)
        threads_.emplace_back([this] { workerLoop(); });
}

TaskQueue::~TaskQueue()
{
    wait();
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

std::future<void>
TaskQueue::submit(std::function<void()> task)
{
    std::packaged_task<void()> pt(std::move(task));
    std::future<void> fut = pt.get_future();
    {
        std::lock_guard<std::mutex> lk(m_);
        tasks_.push_back(std::move(pt));
    }
    work_cv_.notify_one();
    return fut;
}

void
TaskQueue::wait()
{
    std::unique_lock<std::mutex> lk(m_);
    idle_cv_.wait(lk,
                  [&] { return tasks_.empty() && running_ == 0; });
}

std::size_t
TaskQueue::pending() const
{
    std::lock_guard<std::mutex> lk(m_);
    return tasks_.size();
}

void
TaskQueue::workerLoop()
{
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        work_cv_.wait(lk, [&] { return stop_ || !tasks_.empty(); });
        if (tasks_.empty())
            return; // stop_ and drained
        std::packaged_task<void()> task = std::move(tasks_.front());
        tasks_.pop_front();
        ++running_;
        lk.unlock();
        task(); // packaged_task stores any exception in the future
        lk.lock();
        if (--running_ == 0 && tasks_.empty())
            idle_cv_.notify_all();
    }
}

void
parallelForRows(std::size_t n, std::size_t grain,
                const std::function<void(std::size_t, std::size_t)> &fn)
{
    grain = std::max<std::size_t>(grain, 1);
    // Below two shards the pool would run serially anyway; skip
    // instance() so small workloads never spawn worker threads.
    if (n < 2 * grain || ThreadPool::serialForced() ||
        tl_in_parallel_region) {
        if (n > 0)
            fn(0, n);
        return;
    }
    ThreadPool::instance().parallelFor(
        n, grain,
        [&fn](std::size_t b, std::size_t e, int) { fn(b, e); });
}

std::size_t
grainForRowCost(double flops_per_row)
{
    const double per_row = std::max(flops_per_row, 1.0);
    const double rows = kMinShardFlops / per_row;
    if (rows <= 1.0)
        return 1;
    return static_cast<std::size_t>(rows);
}

} // namespace sofa
