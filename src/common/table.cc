#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace sofa {

Table &
Table::column(const std::string &header, Align align)
{
    SOFA_ASSERT(rows_.empty());
    headers_.push_back(header);
    aligns_.push_back(align);
    return *this;
}

Table &
Table::row()
{
    SOFA_ASSERT(!headers_.empty());
    if (!rows_.empty()) {
        SOFA_ASSERT(rows_.back().size() == headers_.size());
    }
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    SOFA_ASSERT(!rows_.empty());
    SOFA_ASSERT(rows_.back().size() < headers_.size());
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return cell(std::string(buf));
}

Table &
Table::cell(std::int64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return cell(std::string(buf));
}

Table &
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  100.0 * fraction);
    return cell(std::string(buf));
}

std::string
Table::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto pad = [&](const std::string &s, std::size_t c) {
        std::string out = s;
        const std::size_t fill = width[c] - s.size();
        if (aligns_[c] == Align::Right)
            out.insert(0, fill, ' ');
        else
            out.append(fill, ' ');
        return out;
    };

    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c)
            os << " | ";
        os << pad(headers_[c], c);
    }
    os << "\n";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c)
            os << "-+-";
        os << std::string(width[c], '-');
    }
    os << "\n";
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            if (c)
                os << " | ";
            os << pad(r[c], c);
        }
        os << "\n";
    }
    return os.str();
}

std::string
Table::csv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c)
            os << ",";
        os << quote(headers_[c]);
    }
    os << "\n";
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            if (c)
                os << ",";
            os << quote(r[c]);
        }
        os << "\n";
    }
    return os.str();
}

} // namespace sofa
