#include "common/jsonwriter.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <locale>
#include <sstream>

namespace sofa {

namespace {

std::string
escaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace

void
JsonWriter::separate()
{
    if (pending_key_) {
        pending_key_ = false;
        return; // key() already wrote "name": and its comma
    }
    if (!first_.empty()) {
        if (!first_.back())
            out_ += ',';
        first_.back() = false;
    }
}

void
JsonWriter::raw(const std::string &text)
{
    separate();
    out_ += text;
}

JsonWriter &
JsonWriter::beginObject()
{
    raw("{");
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (!first_.empty())
        first_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    raw("[");
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (!first_.empty())
        first_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    out_ += escaped(name);
    out_ += ':';
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    raw(escaped(v));
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v)) {
        raw("null");
        return *this;
    }
    std::ostringstream os;
    os.imbue(std::locale::classic()); // '.' decimal point always
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    raw(os.str());
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    raw(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    raw(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    raw(v ? "true" : "false");
    return *this;
}

bool
JsonWriter::writeFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << out_ << '\n';
    return static_cast<bool>(f);
}

} // namespace sofa
