#include "common/rng.h"

#include "common/logging.h"

namespace sofa {

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    SOFA_ASSERT(lo <= hi);
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
}

double
Rng::gaussian(double mean, double stddev)
{
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
}

double
Rng::exponential(double rate)
{
    std::exponential_distribution<double> d(rate);
    return d(engine_);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution d(p);
    return d(engine_);
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    SOFA_ASSERT(!weights.empty());
    double total = 0.0;
    for (double w : weights)
        total += w;
    SOFA_ASSERT(total > 0.0);
    double u = uniform(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (u < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace sofa
