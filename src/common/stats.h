/**
 * @file
 * Lightweight statistics plumbing for the simulator: named scalar
 * counters grouped per module, plus summary helpers (geomean, mean)
 * used throughout the benchmark harness.
 */

#ifndef SOFA_COMMON_STATS_H
#define SOFA_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sofa {

/** A named group of scalar counters (cycles, bytes, op counts, ...). */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Add @p delta to counter @p key, creating it on first use. */
    void add(const std::string &key, double delta);

    /** Set counter @p key to an absolute value. */
    void set(const std::string &key, double value);

    /** Read a counter; missing counters read as zero. */
    double get(const std::string &key) const;

    /** True if the counter has been touched. */
    bool has(const std::string &key) const;

    /** Merge all counters of @p other into this group (summing). */
    void merge(const StatGroup &other);

    /** Reset all counters to zero (entries are kept). */
    void clear();

    const std::string &name() const { return name_; }
    const std::map<std::string, double> &counters() const
    {
        return counters_;
    }

    /** Render as "name.key = value" lines. */
    std::string toString() const;

  private:
    std::string name_;
    std::map<std::string, double> counters_;
};

/** Geometric mean of positive values; 0 for an empty vector. */
double geomean(const std::vector<double> &v);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &v);

/** Population standard deviation; 0 for fewer than two values. */
double stddev(const std::vector<double> &v);

/**
 * p-quantile (p in [0, 1], e.g. 0.95) of the sample by linear
 * interpolation between order statistics; 0 for an empty vector.
 * Takes the vector by value (sorts a copy). The latency-percentile
 * currency of the serving benchmarks (p50/p95/p99).
 */
double percentile(std::vector<double> v, double p);

} // namespace sofa

#endif // SOFA_COMMON_STATS_H
