/**
 * @file
 * Error-reporting helpers in the gem5 spirit: fatal() for user-caused
 * conditions the program cannot continue from, panic() for internal
 * invariant violations that should never happen, warn()/inform() for
 * non-fatal status messages.
 */

#ifndef SOFA_COMMON_LOGGING_H
#define SOFA_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace sofa {

/** Print a formatted error for a user-caused condition and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print a formatted error for an internal bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...);

/** Print a formatted warning to stderr; execution continues. */
void warn(const char *fmt, ...);

/** Print a formatted informational message to stderr. */
void inform(const char *fmt, ...);

/**
 * Assert-like check that is always compiled in. On failure, panics with
 * the given message.
 */
#define SOFA_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::sofa::panic("assertion failed at %s:%d: %s", __FILE__,      \
                          __LINE__, #cond);                               \
        }                                                                 \
    } while (0)

} // namespace sofa

#endif // SOFA_COMMON_LOGGING_H
