/**
 * @file
 * LLM serving scenarios that produce large-scale token parallel
 * processing (LTPP) — the paper's motivation (Section I/II-D):
 *
 * - Prefill: the whole prompt is processed at once (T = S);
 * - Disaggregated prefill: dedicated prefill servers batch multiple
 *   requests' prompts (T = batch x S);
 * - Speculative decoding: a draft model proposes gamma tokens which
 *   the target model verifies in parallel, turning decode steps into
 *   small prefill-like batches;
 * - Plain autoregressive decode: T = batch (the low-parallelism
 *   regime prior accelerators were designed for).
 *
 * Each scenario maps to an AttentionShape (queries/context), so the
 * accelerator and GPU models can score them directly, plus an
 * analytic tokens-per-second estimate for end-to-end serving.
 */

#ifndef SOFA_MODEL_SCENARIOS_H
#define SOFA_MODEL_SCENARIOS_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/config.h"
#include "model/model_workload.h"

namespace sofa {

/** Serving regimes the paper discusses. */
enum class ServingMode {
    Prefill,              ///< one prompt, T = S
    DisaggregatedPrefill, ///< batched prompts on a prefill server
    SpeculativeDecode,    ///< gamma-token verification batches
    AutoregressiveDecode, ///< one token per request per step
};

const char *servingModeName(ServingMode m);

/** A serving scenario instance. */
struct ServingScenario
{
    std::string name;
    ServingMode mode = ServingMode::Prefill;
    ModelConfig model;
    int promptLen = 2048;  ///< S at the step being modeled
    int batch = 1;         ///< concurrent requests
    int speculationGamma = 4; ///< draft length (speculative mode)

    /** Queries processed in parallel per attention invocation. */
    std::int64_t tokenParallelism() const;

    /** Context length each query attends to. */
    std::int64_t contextLength() const;

    /**
     * Tokens of useful output the step produces (prefill: the whole
     * prompt's KV; speculative: expected accepted tokens given an
     * acceptance rate; decode: one per request).
     */
    double tokensProduced(double acceptance_rate = 0.7) const;
};

/** The scenario suite used by the serving example/bench. */
std::vector<ServingScenario> servingSuite(const ModelConfig &model);

/**
 * One representative scenario per serving mode (in enum order), for
 * consumers that want the four regimes rather than the whole suite
 * (bench_engine, the serving example's engine table).
 */
std::vector<ServingScenario>
representativeScenarios(const ModelConfig &model);

/**
 * Request inter-arrival patterns for the serving traces the
 * scheduler (src/serve) replays. Units: seconds of logical trace
 * time; a driver chooses the wall-clock scale at replay.
 */
enum class ArrivalPattern {
    Uniform, ///< constant gap (closed-form pacing)
    Poisson, ///< i.i.d. exponential gaps — memoryless open traffic
    Burst,   ///< groups arrive simultaneously (admission stressor)
};

const char *arrivalPatternName(ArrivalPattern p);

/**
 * @p n non-decreasing arrival offsets in seconds (the first at 0)
 * with mean inter-arrival gap @p mean_gap. Poisson draws exponential
 * gaps; Burst packs requests into groups of @p burst simultaneous
 * arrivals spaced burst*mean_gap apart, so the long-run offered rate
 * matches Uniform while the instantaneous rate overbooks any
 * admission budget. Deterministic in @p seed.
 */
std::vector<double> arrivalTimes(ArrivalPattern pattern, int n,
                                 double mean_gap, std::uint64_t seed,
                                 int burst = 4);

/**
 * Functional-scale batched multi-head workload spec for a scenario,
 * for the value-level engine (core/engine). Shapes are capped —
 * context at @p max_context, batch at @p max_batch, heads at
 * @p max_heads — because the engine executes real values, O(T*S*d)
 * per head, while the arch models stay analytic at full scale.
 * Decode-family scenarios become KV-cache decode specs (pastLen +
 * newTokens); prefill keeps T = S.
 */
ModelWorkloadSpec scenarioWorkloadSpec(const ServingScenario &s,
                                       int max_context = 512,
                                       int max_batch = 4,
                                       int max_heads = 4);

} // namespace sofa

#endif // SOFA_MODEL_SCENARIOS_H
