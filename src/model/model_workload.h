/**
 * @file
 * Batched multi-head workloads for the stage-structured execution
 * engine (core/engine). A ModelWorkload is a batch x heads grid of
 * AttentionWorkload slices: every head of one batch item shares the
 * item's token matrix (the columnar structure real attention
 * exhibits) but owns its projections Wk/Wv and queries Q, which is
 * the LTPP regime the paper's Section I serving scenarios produce.
 *
 * Two execution modes:
 *  - prefill: every item processes `queries` parallel query rows
 *    over a context of `seq` tokens (T = queries, S = seq);
 *  - KV-cache decode: `pastLen` context tokens already have K/V
 *    resident in the cache and only `newTokens` fresh tokens arrive
 *    (speculative-decode gamma or plain decode's 1), so T =
 *    newTokens, S = pastLen + newTokens and only keys at index >=
 *    pastLen ever need on-demand generation.
 *
 * Units: shapes (batch, heads, tokens); per-head seeds are derived
 * deterministically from (seed, batch, head) with a splitmix64 mix,
 * so any sub-grid regenerates bit-identically on its own.
 */

#ifndef SOFA_MODEL_MODEL_WORKLOAD_H
#define SOFA_MODEL_MODEL_WORKLOAD_H

#include <cstdint>
#include <vector>

#include "model/workload.h"

namespace sofa {

/** Specification of a batched multi-head workload. */
struct ModelWorkloadSpec
{
    int batch = 1;    ///< B: concurrent requests
    int heads = 4;    ///< H: attention heads per request
    int seq = 512;    ///< S: context length (prefill mode)
    int queries = 64; ///< T per head (prefill mode)
    int headDim = 64;
    int tokenDim = 128;

    /**
     * KV-cache decode mode: set newTokens > 0 to model a decode step
     * where `pastLen` keys are cached and `newTokens` query tokens
     * arrive (gamma for speculative decode, 1 for plain decode).
     * seq/queries above are ignored in this mode.
     */
    int pastLen = 0;
    int newTokens = 0;

    DistMixture mixture;       ///< per-row score mixture (all heads)
    double dominantGain = 3.0; ///< see WorkloadSpec
    std::uint64_t seed = 0x50FA0002ull;

    bool isDecode() const { return newTokens > 0; }
    /** Context length each query attends to. */
    int contextLen() const
    {
        return isDecode() ? pastLen + newTokens : seq;
    }
    /** Query rows processed per head. */
    int queryRows() const { return isDecode() ? newTokens : queries; }

    /** Per-head WorkloadSpec (shapes + the derived head seed). */
    WorkloadSpec headSpec(int batch_idx, int head_idx) const;
};

/**
 * Deterministic per-(batch, head) seed: a splitmix64-style mix of the
 * grid seed with the coordinates, so distinct heads get decorrelated
 * streams and any head regenerates independently of the others.
 */
std::uint64_t headSeed(std::uint64_t seed, int batch_idx, int head_idx);

/** A generated batch x heads grid of attention workloads. */
struct ModelWorkload
{
    ModelWorkloadSpec spec;
    /** Per-head slices, row-major: index = batch * spec.heads + head.
     * Heads of one batch item share the item's token matrix. */
    std::vector<AttentionWorkload> grid;

    int batch() const { return spec.batch; }
    int heads() const { return spec.heads; }
    std::size_t size() const { return grid.size(); }

    const AttentionWorkload &head(int batch_idx, int head_idx) const
    {
        return grid[static_cast<std::size_t>(batch_idx) * spec.heads +
                    head_idx];
    }
};

/**
 * Generate the full grid: one shared TokenField per batch item, one
 * AttentionWorkload per head on top of it. Decode mode generates the
 * full (pastLen + newTokens)-token context so exact K/V ground truth
 * exists; the engine's KV stage decides what the cache already holds.
 */
ModelWorkload generateModelWorkload(const ModelWorkloadSpec &spec);

} // namespace sofa

#endif // SOFA_MODEL_MODEL_WORKLOAD_H
