#include "model/flops.h"

namespace sofa {

OpProfile
LayerProfile::total() const
{
    OpProfile t;
    t.flops = qkv.flops + atten.flops + ffn.flops;
    t.bytes = qkv.bytes + atten.bytes + ffn.bytes;
    return t;
}

LayerProfile
layerProfile(const ModelConfig &m, std::int64_t seq, std::int64_t tokens,
             int bytes_per_elem)
{
    LayerProfile p;
    const double H = static_cast<double>(m.hidden);
    const double S = static_cast<double>(seq);
    const double T = static_cast<double>(tokens);
    const double B = static_cast<double>(bytes_per_elem);

    // QKV: three projections for the T new tokens plus the output
    // projection: 4 matmuls of [T x H] * [H x H].
    p.qkv.flops = 4.0 * 2.0 * T * H * H;
    // Traffic: token activations in, 4 weight matrices, Q/K/V/O out.
    p.qkv.bytes = (T * H + 4.0 * H * H + 4.0 * T * H) * B;

    // Attention: per head, Q[T x d] x K^T[d x S] and P[T x S] x V[S x d]
    // across A heads => 2 * (2 T S d) * A = 4 T S H total, plus softmax
    // element-wise work ~ 5 flops/elem (max, sub, exp, sum, div).
    const double A = static_cast<double>(m.heads);
    p.atten.flops = 4.0 * T * S * H + 5.0 * T * S * A;
    // Traffic: Q for T tokens, K and V for S tokens, plus the per-head
    // T x S score matrices, which cross memory three times (written
    // after QK^T, read+written around softmax, read for score x V);
    // this element-wise churn is what pulls MHA's operational
    // intensity far below the FFN's (Fig. 4(b)).
    p.atten.bytes =
        (T * H + 2.0 * S * H + 3.0 * A * T * S + T * H) * B;

    // FFN: [T x H] * [H x F] and [T x F] * [F x H].
    const double F = static_cast<double>(m.ffnDim);
    p.ffn.flops = 2.0 * 2.0 * T * H * F;
    p.ffn.bytes = (T * H + 2.0 * H * F + T * F + T * H) * B;

    return p;
}

LayerProfile
modelProfile(const ModelConfig &m, std::int64_t seq, std::int64_t tokens,
             int bytes_per_elem)
{
    LayerProfile one = layerProfile(m, seq, tokens, bytes_per_elem);
    const double L = static_cast<double>(m.layers);
    LayerProfile p;
    p.qkv.flops = one.qkv.flops * L;
    p.qkv.bytes = one.qkv.bytes * L;
    p.atten.flops = one.atten.flops * L;
    p.atten.bytes = one.atten.bytes * L;
    p.ffn.flops = one.ffn.flops * L;
    p.ffn.bytes = one.ffn.bytes * L;
    return p;
}

double
attentionIntensity(const ModelConfig &m, std::int64_t seq,
                   std::int64_t tokens, int bytes_per_elem)
{
    LayerProfile p = layerProfile(m, seq, tokens, bytes_per_elem);
    return p.atten.intensity();
}

} // namespace sofa
