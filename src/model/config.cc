#include "model/config.h"

#include "common/logging.h"

namespace sofa {
namespace models {

// Mixture rates follow Fig. 8(b): Type-II dominates everywhere (>76% on
// average); Type-I is more frequent in ViT / GPT-2 / Llama (~25%);
// Type-III is rare and nearly absent in GPT-2 / Llama.

ModelConfig
bertBase()
{
    ModelConfig m;
    m.name = "BERT-Base";
    m.layers = 12;
    m.hidden = 768;
    m.heads = 12;
    m.ffnDim = 3072;
    m.maxSeq = 512;
    m.mixture = {0.15, 0.78, 0.07};
    return m;
}

ModelConfig
bertLarge()
{
    ModelConfig m;
    m.name = "BERT-Large";
    m.layers = 24;
    m.hidden = 1024;
    m.heads = 16;
    m.ffnDim = 4096;
    m.maxSeq = 512;
    m.mixture = {0.15, 0.78, 0.07};
    return m;
}

ModelConfig
gpt2()
{
    ModelConfig m;
    m.name = "GPT-2";
    m.layers = 12;
    m.hidden = 768;
    m.heads = 12;
    m.ffnDim = 3072;
    m.maxSeq = 1024;
    m.mixture = {0.25, 0.74, 0.01};
    return m;
}

ModelConfig
gpt2Large()
{
    ModelConfig m;
    m.name = "GPT2-L";
    m.layers = 36;
    m.hidden = 1280;
    m.heads = 20;
    m.ffnDim = 5120;
    m.maxSeq = 1024;
    m.mixture = {0.25, 0.74, 0.01};
    return m;
}

ModelConfig
bloom1b7()
{
    ModelConfig m;
    m.name = "Bloom-1.7B";
    m.layers = 24;
    m.hidden = 2048;
    m.heads = 16;
    m.ffnDim = 8192;
    m.maxSeq = 2048;
    m.mixture = {0.18, 0.79, 0.03};
    return m;
}

ModelConfig
bloom3b()
{
    ModelConfig m;
    m.name = "Bloom-3B";
    m.layers = 30;
    m.hidden = 2560;
    m.heads = 32;
    m.ffnDim = 10240;
    m.maxSeq = 2048;
    m.mixture = {0.18, 0.79, 0.03};
    return m;
}

ModelConfig
llama7b()
{
    ModelConfig m;
    m.name = "Llama-7B";
    m.layers = 32;
    m.hidden = 4096;
    m.heads = 32;
    m.ffnDim = 11008;
    m.maxSeq = 4096;
    m.mixture = {0.25, 0.745, 0.005};
    return m;
}

ModelConfig
llama13b()
{
    ModelConfig m;
    m.name = "Llama-13B";
    m.layers = 40;
    m.hidden = 5120;
    m.heads = 40;
    m.ffnDim = 13824;
    m.maxSeq = 8192;
    m.mixture = {0.25, 0.745, 0.005};
    return m;
}

ModelConfig
vitBase()
{
    ModelConfig m;
    m.name = "ViT-B";
    m.layers = 12;
    m.hidden = 768;
    m.heads = 12;
    m.ffnDim = 3072;
    m.maxSeq = 196;
    m.mixture = {0.25, 0.65, 0.10};
    return m;
}

ModelConfig
pvt()
{
    ModelConfig m;
    m.name = "PVT";
    m.layers = 16;
    m.hidden = 512;
    m.heads = 8;
    m.ffnDim = 2048;
    m.maxSeq = 3192;
    m.mixture = {0.25, 0.65, 0.10};
    return m;
}

std::vector<ModelConfig>
all()
{
    return {bertBase(),  bertLarge(), gpt2(),   gpt2Large(), bloom1b7(),
            bloom3b(),   llama7b(),   llama13b(), vitBase(), pvt()};
}

ModelConfig
byName(const std::string &name)
{
    for (const auto &m : all())
        if (m.name == name)
            return m;
    fatal("unknown model config: %s", name.c_str());
}

} // namespace models
} // namespace sofa
