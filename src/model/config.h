/**
 * @file
 * Transformer model configurations for every model the paper evaluates
 * (BERT-B/L, GPT-2, Bloom-1.7B/3B, Llama-7B/13B, ViT-B, PVT), plus the
 * attention-score distribution mixture each model family exhibits
 * (Fig. 8 of the paper).
 */

#ifndef SOFA_MODEL_CONFIG_H
#define SOFA_MODEL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace sofa {

/**
 * The three empirical attention-score distribution types of Fig. 8(a).
 * TypeI: a few dominant tokens; TypeII: several dominant tokens evenly
 * distributed; TypeIII: dominant tokens concentrated in one region.
 */
enum class DistType { TypeI, TypeII, TypeIII };

/** Mixture weights over the three distribution types (sums to 1). */
struct DistMixture
{
    double type1 = 0.0;
    double type2 = 1.0;
    double type3 = 0.0;
};

/** Static description of one Transformer model. */
struct ModelConfig
{
    std::string name;
    int layers = 12;        ///< Transformer blocks
    int hidden = 768;       ///< H, hidden size
    int heads = 12;         ///< A, attention heads
    int ffnDim = 3072;      ///< FFN intermediate dimension
    int maxSeq = 512;       ///< maximum supported sequence length
    DistMixture mixture;    ///< Fig. 8 score-distribution mixture

    int headDim() const { return hidden / heads; }
};

/** Model zoo keyed by the names used in the paper's evaluation. */
namespace models {

ModelConfig bertBase();
ModelConfig bertLarge();
ModelConfig gpt2();
ModelConfig gpt2Large();
ModelConfig bloom1b7();
ModelConfig bloom3b();
ModelConfig llama7b();
ModelConfig llama13b();
ModelConfig vitBase();
ModelConfig pvt();

/** All models, for sweeps. */
std::vector<ModelConfig> all();

/** Lookup by name; fatal() on unknown names. */
ModelConfig byName(const std::string &name);

} // namespace models

} // namespace sofa

#endif // SOFA_MODEL_CONFIG_H
