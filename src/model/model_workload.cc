#include "model/model_workload.h"

#include "common/logging.h"

namespace sofa {

namespace {

/** splitmix64 finalizer (the same mix bench::Options::seedOr uses). */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
headSeed(std::uint64_t seed, int batch_idx, int head_idx)
{
    std::uint64_t z = mix64(seed ^ 0xB47C4ull);
    z = mix64(z + static_cast<std::uint64_t>(batch_idx));
    z = mix64(z + static_cast<std::uint64_t>(head_idx));
    return z;
}

WorkloadSpec
ModelWorkloadSpec::headSpec(int batch_idx, int head_idx) const
{
    WorkloadSpec hs;
    hs.seq = contextLen();
    hs.queries = queryRows();
    hs.headDim = headDim;
    hs.tokenDim = tokenDim;
    hs.mixture = mixture;
    hs.dominantGain = dominantGain;
    hs.seed = headSeed(seed, batch_idx, head_idx);
    return hs;
}

ModelWorkload
generateModelWorkload(const ModelWorkloadSpec &spec)
{
    SOFA_ASSERT(spec.batch >= 0 && spec.heads >= 1);
    SOFA_ASSERT(spec.contextLen() > 8 && spec.queryRows() > 0);
    SOFA_ASSERT(spec.headDim > 0 && spec.tokenDim > 0);
    if (spec.isDecode())
        SOFA_ASSERT(spec.pastLen >= 0);

    ModelWorkload mw;
    mw.spec = spec;
    mw.grid.reserve(static_cast<std::size_t>(spec.batch) *
                    spec.heads);
    for (int b = 0; b < spec.batch; ++b) {
        // The item's token stream is seeded per batch item (head
        // index 0 is reserved for it in the seed space via the ~0
        // sentinel) so every head of the item sees the same tokens.
        Rng token_rng(headSeed(spec.seed, b, ~0));
        const WorkloadSpec base = spec.headSpec(b, 0);
        const TokenField field = generateTokenField(base, token_rng);
        for (int h = 0; h < spec.heads; ++h) {
            const WorkloadSpec hs = spec.headSpec(b, h);
            Rng head_rng(hs.seed);
            mw.grid.push_back(
                generateHeadWorkload(hs, field, head_rng));
        }
    }
    return mw;
}

} // namespace sofa
