/**
 * @file
 * Analytic per-layer FLOP / byte accounting for the three Transformer
 * components the paper profiles (QKV projection, multi-head attention,
 * FFN), and operational-intensity (Fig. 4) / breakdown (Fig. 1) helpers.
 *
 * Conventions: a multiply-accumulate counts as 2 FLOPs; activations and
 * weights are @p bytes_per_elem wide (2 for fp16/int16); memory traffic
 * counts each operand read once and each result written once (ideal
 * cache for a single layer).
 */

#ifndef SOFA_MODEL_FLOPS_H
#define SOFA_MODEL_FLOPS_H

#include <cstdint>

#include "model/config.h"

namespace sofa {

/** FLOPs and memory bytes for one Transformer component. */
struct OpProfile
{
    double flops = 0.0;
    double bytes = 0.0;

    /** Operational intensity (FLOPs per byte). */
    double
    intensity() const
    {
        return bytes > 0.0 ? flops / bytes : 0.0;
    }
};

/** Per-layer profile split into the paper's three components. */
struct LayerProfile
{
    OpProfile qkv;   ///< Q/K/V projections + output projection
    OpProfile atten; ///< QK^T, softmax, score x V
    OpProfile ffn;   ///< two dense layers

    OpProfile total() const;
};

/**
 * Analytic profile of one Transformer layer.
 *
 * @param m model configuration
 * @param seq sequence length S (tokens held in the attention context)
 * @param tokens tokens processed in parallel T (T = S for full prefill)
 * @param bytes_per_elem operand width in bytes
 */
LayerProfile layerProfile(const ModelConfig &m, std::int64_t seq,
                          std::int64_t tokens, int bytes_per_elem = 2);

/** Whole-model profile (layerProfile x layers). */
LayerProfile modelProfile(const ModelConfig &m, std::int64_t seq,
                          std::int64_t tokens, int bytes_per_elem = 2);

/**
 * Operational intensity of the attention component when @p tokens
 * queries are processed in parallel against a context of @p seq keys
 * (Fig. 4(c)): OI rises with parallelism because K/V are reused
 * across the parallel queries.
 */
double attentionIntensity(const ModelConfig &m, std::int64_t seq,
                          std::int64_t tokens, int bytes_per_elem = 2);

} // namespace sofa

#endif // SOFA_MODEL_FLOPS_H
