#include "model/suite.h"

#include <algorithm>

namespace sofa {

WorkloadSpec
Benchmark::workloadSpec(int max_seq_cap, int queries) const
{
    WorkloadSpec spec;
    spec.seq = std::min(seq, max_seq_cap);
    spec.queries = queries;
    spec.headDim = std::min(model.headDim(), 128);
    spec.tokenDim = 128;
    spec.mixture = model.mixture;
    // Denser tasks plant more dominant tokens; the generator's
    // defaults correspond to density 1.0.
    spec.dominantGain = 3.0;
    std::uint64_t h = 1469598103934665603ull;
    for (char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    spec.seed = h;
    return spec;
}

std::vector<Benchmark>
suite20()
{
    std::vector<Benchmark> v;
    auto add = [&v](const ModelConfig &m, const std::string &task,
                    int seq, double density) {
        Benchmark b;
        b.model = m;
        b.task = task;
        b.seq = seq;
        b.density = density;
        b.name = m.name + "/" + task;
        v.push_back(b);
    };

    const auto bertB = models::bertBase();
    const auto bertL = models::bertLarge();
    // Sequence lengths per Section V-A: MRPC/RTE 256, SQuAD 384,
    // STS-B/QNLI 512. Sentiment/semantic text tasks are sparse.
    add(bertB, "MRPC", 256, 0.6);
    add(bertB, "RTE", 256, 0.6);
    add(bertB, "SQuAD", 384, 0.8);
    add(bertB, "STS-B", 512, 0.5);
    add(bertB, "QNLI", 512, 0.7);
    add(bertL, "MRPC", 256, 0.6);
    add(bertL, "RTE", 256, 0.6);
    add(bertL, "SQuAD", 384, 0.8);
    add(bertL, "STS-B", 512, 0.5);
    add(bertL, "QNLI", 512, 0.7);

    const auto gpt2 = models::gpt2();
    add(gpt2, "Wikitext-2", 1024, 0.8);
    add(gpt2, "Wiki-raw", 1024, 0.8);

    const auto bloom = models::bloom1b7();
    add(bloom, "Wikitext-2", 2048, 0.8);
    add(bloom, "WikiLingua", 2048, 0.8);

    const auto llama7 = models::llama7b();
    add(llama7, "Wikitext-2", 4096, 0.8);
    add(llama7, "WikiLingua", 4096, 0.8);
    add(llama7, "Winogrande", 4096, 0.7);

    const auto llama13 = models::llama13b();
    add(llama13, "Wikitext-2", 4096, 0.8);
    add(llama13, "Winogrande", 4096, 0.7);

    // CV: image data is denser (lower sparsity), Section V-B.
    add(models::pvt(), "ImageNet-1k", 3192, 1.0);

    return v;
}

std::vector<Benchmark>
suiteSmall()
{
    auto all = suite20();
    std::vector<Benchmark> v;
    for (const auto &b : all) {
        if (b.name == "BERT-Base/MRPC" || b.name == "BERT-Base/QNLI" ||
            b.name == "GPT-2/Wikitext-2" ||
            b.name == "Bloom-1.7B/Wikitext-2" ||
            b.name == "Llama-7B/Wikitext-2" ||
            b.name == "PVT/ImageNet-1k") {
            v.push_back(b);
        }
    }
    return v;
}

} // namespace sofa
