/**
 * @file
 * The 20-benchmark evaluation suite of the paper (Section V-A):
 * model x task pairs with their sequence lengths and per-task sparsity
 * profiles, used by every end-to-end figure bench.
 */

#ifndef SOFA_MODEL_SUITE_H
#define SOFA_MODEL_SUITE_H

#include <string>
#include <vector>

#include "model/config.h"
#include "model/workload.h"

namespace sofa {

/** One model x task evaluation point. */
struct Benchmark
{
    std::string name;     ///< "BERT-B/MRPC"
    ModelConfig model;
    std::string task;
    int seq = 512;        ///< maximum sequence length for the task
    /**
     * Task-level sparsity factor in (0, 1]: lower = sparser attention
     * (text classification tasks have one or two decisive keywords,
     * CV tasks carry denser information; Section V-B discussion).
     * Scales the number of dominant tokens in the synthetic workload.
     */
    double density = 1.0;

    /** Build a workload spec scaled to simulator-friendly sizes. */
    WorkloadSpec workloadSpec(int max_seq_cap = 2048,
                              int queries = 64) const;
};

/** The full 20-benchmark suite. */
std::vector<Benchmark> suite20();

/** A compact 6-benchmark subset for quick tests/CI. */
std::vector<Benchmark> suiteSmall();

} // namespace sofa

#endif // SOFA_MODEL_SUITE_H
