#include "model/workload.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace sofa {

namespace {

/** Softmax of a raw score row. */
std::vector<double>
softmaxRow(const std::vector<float> &scores)
{
    double m = -1e30;
    for (float s : scores)
        m = std::max(m, static_cast<double>(s));
    std::vector<double> p(scores.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        p[i] = std::exp(static_cast<double>(scores[i]) - m);
        sum += p[i];
    }
    for (double &x : p)
        x /= sum;
    return p;
}

/** Pick @p count distinct indices in [0, seq). */
std::vector<int>
pickDistinct(Rng &rng, int seq, int count)
{
    std::vector<int> out;
    out.reserve(count);
    while (static_cast<int>(out.size()) < count) {
        int idx = static_cast<int>(rng.uniformInt(0, seq - 1));
        if (std::find(out.begin(), out.end(), idx) == out.end())
            out.push_back(idx);
    }
    return out;
}

/** Pick @p count distinct indices evenly spread over [0, seq). */
std::vector<int>
pickSpread(Rng &rng, int seq, int count)
{
    std::vector<int> out;
    out.reserve(count);
    const int stride = std::max(1, seq / count);
    for (int i = 0; i < count; ++i) {
        int base = i * stride;
        int jitter = static_cast<int>(
            rng.uniformInt(0, std::max(1, stride / 2)));
        out.push_back(std::min(seq - 1, base + jitter));
    }
    return out;
}

/** Pick @p count indices inside one random region of width frac*seq. */
std::vector<int>
pickClustered(Rng &rng, int seq, int count, double frac)
{
    const int width = std::max(count, static_cast<int>(seq * frac));
    const int start = static_cast<int>(
        rng.uniformInt(0, std::max(0, seq - width)));
    std::vector<int> out;
    out.reserve(count);
    while (static_cast<int>(out.size()) < count) {
        int idx = start + static_cast<int>(
            rng.uniformInt(0, width - 1));
        if (std::find(out.begin(), out.end(), idx) == out.end())
            out.push_back(idx);
    }
    return out;
}

std::vector<int>
dominantsForType(Rng &rng, DistType type, const ScoreRowParams &p)
{
    switch (type) {
      case DistType::TypeI:
        return pickDistinct(rng, p.seq, p.type1Dominants);
      case DistType::TypeII:
        return pickSpread(rng, p.seq, p.type23Dominants);
      case DistType::TypeIII:
        return pickClustered(rng, p.seq, p.type23Dominants,
                             p.type3RegionFrac);
    }
    panic("unreachable");
}

DistType
drawType(Rng &rng, const DistMixture &mix)
{
    std::size_t pick = rng.categorical({mix.type1, mix.type2, mix.type3});
    return pick == 0 ? DistType::TypeI
                     : pick == 1 ? DistType::TypeII : DistType::TypeIII;
}

} // namespace

std::vector<float>
generateScoreRow(Rng &rng, DistType type, const ScoreRowParams &params)
{
    SOFA_ASSERT(params.seq > 4);
    std::vector<float> row(params.seq);
    for (auto &x : row)
        x = static_cast<float>(rng.gaussian(0.0, params.noiseStd));

    const double amp =
        type == DistType::TypeI ? params.type1Amp : params.type23Amp;
    for (int idx : dominantsForType(rng, type, params)) {
        // Dominants replace the background draw: their amplitude
        // spread is the cluster's own (tight) variance, not the
        // background noise plus it.
        row[idx] = static_cast<float>(rng.gaussian(amp, 0.08 * amp));
    }
    return row;
}

MatF
generateScoreMatrix(Rng &rng, const DistMixture &mixture, int rows,
                    const ScoreRowParams &params)
{
    MatF m(rows, params.seq);
    for (int r = 0; r < rows; ++r) {
        DistType t = drawType(rng, mixture);
        auto row = generateScoreRow(rng, t, params);
        std::copy(row.begin(), row.end(), m.rowPtr(r));
    }
    return m;
}

DistType
classifyScoreRow(const std::vector<float> &scores,
                 double type1MassThreshold, double clusterFrac)
{
    const int seq = static_cast<int>(scores.size());
    SOFA_ASSERT(seq > 0);
    std::vector<double> p = softmaxRow(scores);

    // Indices sorted by descending probability.
    std::vector<int> order(seq);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return p[a] > p[b]; });

    // Type-I: the top few tokens carry most of the softmax mass.
    double top3 = 0.0;
    for (int i = 0; i < std::min(3, seq); ++i)
        top3 += p[order[i]];
    if (top3 >= type1MassThreshold)
        return DistType::TypeI;

    // Dominant set: tokens whose probability is a sizeable fraction
    // of the row max (a relative threshold keeps background noise
    // out of the set, which a cumulative-mass rule would not).
    const double pmax = p[order[0]];
    std::vector<int> dom;
    for (int idx : order) {
        if (p[idx] < 0.25 * pmax)
            break;
        dom.push_back(idx);
    }

    // Type-III: dominant tokens concentrated in one region.
    auto [mn, mx] = std::minmax_element(dom.begin(), dom.end());
    const int span = *mx - *mn + 1;
    if (dom.size() >= 4 &&
        span <= static_cast<int>(clusterFrac * seq)) {
        return DistType::TypeIII;
    }
    return DistType::TypeII;
}

double
MixtureTally::frac1() const
{
    return total() ? static_cast<double>(type1) / total() : 0.0;
}

double
MixtureTally::frac2() const
{
    return total() ? static_cast<double>(type2) / total() : 0.0;
}

double
MixtureTally::frac3() const
{
    return total() ? static_cast<double>(type3) / total() : 0.0;
}

MixtureTally
classifyScoreMatrix(const MatF &scores)
{
    MixtureTally tally;
    for (std::size_t r = 0; r < scores.rows(); ++r) {
        std::vector<float> row(scores.rowPtr(r),
                               scores.rowPtr(r) + scores.cols());
        switch (classifyScoreRow(row)) {
          case DistType::TypeI:
            ++tally.type1;
            break;
          case DistType::TypeII:
            ++tally.type2;
            break;
          case DistType::TypeIII:
            ++tally.type3;
            break;
        }
    }
    return tally;
}

namespace {

/** Raw token matrix X [S x n] at unit magnitude (pre-background). */
MatF
drawTokens(const WorkloadSpec &spec, Rng &rng)
{
    MatF tokens(spec.seq, spec.tokenDim);
    for (auto &x : tokens.data())
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
    return tokens;
}

/** Per-head projection weights at 1/sqrt(n) magnitude. */
void
drawProjections(const WorkloadSpec &spec, Rng &rng, MatF *wk, MatF *wv)
{
    *wk = MatF(spec.tokenDim, spec.headDim);
    *wv = MatF(spec.tokenDim, spec.headDim);
    const double wstd = 1.0 / std::sqrt(spec.tokenDim);
    for (auto &x : wk->data())
        x = static_cast<float>(rng.gaussian(0.0, wstd));
    for (auto &x : wv->data())
        x = static_cast<float>(rng.gaussian(0.0, wstd));
}

/** Unit background direction u in token space. */
std::vector<float>
drawDirection(const WorkloadSpec &spec, Rng &rng)
{
    std::vector<float> u_x(spec.tokenDim);
    double u_norm = 0.0;
    for (auto &x : u_x) {
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
        u_norm += static_cast<double>(x) * x;
    }
    u_norm = std::sqrt(std::max(u_norm, 1e-12));
    for (auto &x : u_x)
        x = static_cast<float>(x / u_norm);
    return u_x;
}

/**
 * Shared background ranking: add a rank-1 component c_j * u to the
 * tokens so every key carries a shared "importance" coefficient c_j
 * along direction u; queries are later aligned to u, which
 * correlates the tails of all rows' rankings.
 */
void
bakeBackground(const WorkloadSpec &spec, Rng &rng, MatF *tokens,
               const std::vector<float> &u_x)
{
    if (spec.backgroundGain <= 0.0)
        return;
    for (int j = 0; j < spec.seq; ++j) {
        const float coef = static_cast<float>(rng.gaussian(0.0, 1.0));
        float *xj = tokens->rowPtr(j);
        for (int c = 0; c < spec.tokenDim; ++c)
            xj[c] += coef * u_x[c];
    }
}

/**
 * Project tokens through the head's weights and construct Q with the
 * requested distribution mixture. Consumes @p rng for the global
 * token pool and the per-row dominant structure; tokens/wk/wv must
 * already be set on @p w.
 */
void
finishHeadWorkload(AttentionWorkload &w, const std::vector<float> &u_x,
                   Rng &rng)
{
    const WorkloadSpec &spec = w.spec;
    w.k = matmul(w.tokens, w.wk);
    w.v = matmul(w.tokens, w.wv);

    // The key-space image of u, used to align queries to the shared
    // ranking component.
    std::vector<float> u_k(spec.headDim, 0.0f);
    double uk_norm = 0.0;
    for (int c = 0; c < spec.headDim; ++c) {
        double acc = 0.0;
        for (int t = 0; t < spec.tokenDim; ++t)
            acc += static_cast<double>(u_x[t]) * w.wk(t, c);
        u_k[c] = static_cast<float>(acc);
        uk_norm += acc * acc;
    }
    uk_norm = std::sqrt(std::max(uk_norm, 1e-12));

    // Globally important token pool: a subset of tokens attended by
    // most queries (the columnar structure of real attention). Rows
    // draw their dominants from this pool with sharedDominantProb,
    // which is what makes on-demand KV generation and reuse-aware
    // scheduling profitable.
    const int pool_size = std::max(
        4, static_cast<int>(spec.globalTokenFrac * spec.seq));
    std::vector<int> pool = pickDistinct(rng, spec.seq, pool_size);

    // Build queries so that Q K^T exhibits the requested distribution
    // mixture *in calibrated score units*: background noise at
    // roughly unit standard deviation, dominants at the Fig. 8
    // amplitudes, the shared ranking at backgroundGain. Alignments
    // are normalized by key norms so each term lands at its target
    // score magnitude.
    ScoreRowParams srp;
    srp.seq = spec.seq;

    double k_norm_mean = 0.0;
    for (int j = 0; j < spec.seq; ++j) {
        const float *kr = w.k.rowPtr(j);
        double acc = 0.0;
        for (int c = 0; c < spec.headDim; ++c)
            acc += static_cast<double>(kr[c]) * kr[c];
        k_norm_mean += std::sqrt(acc);
    }
    k_norm_mean = std::max(k_norm_mean / spec.seq, 1e-9);

    // Score-unit amplitudes; dominantGain rescales around the
    // generator's reference gain of 3.0. The workload amplitudes run
    // higher than ScoreRowParams' because dominant alignments also
    // inject cross-term noise into other columns.
    const double amp_scale = spec.dominantGain / 3.0;
    const double type1_amp = 9.0 * amp_scale;
    const double type23_amp = 6.0 * amp_scale;

    w.q = MatF(spec.queries, spec.headDim);
    w.dominants.resize(spec.queries);
    w.rowTypes.resize(spec.queries);

    for (int r = 0; r < spec.queries; ++r) {
        DistType t = drawType(rng, spec.mixture);
        w.rowTypes[r] = t;
        w.dominants[r] = dominantsForType(rng, t, srp);
        // Redirect a share of the dominants into the global pool
        // (Type-III rows keep their positional cluster).
        if (t != DistType::TypeIII) {
            for (int &idx : w.dominants[r]) {
                if (rng.uniform() < spec.sharedDominantProb) {
                    idx = pool[static_cast<std::size_t>(
                        rng.uniformInt(0, pool_size - 1))];
                }
            }
            std::sort(w.dominants[r].begin(), w.dominants[r].end());
            w.dominants[r].erase(
                std::unique(w.dominants[r].begin(),
                            w.dominants[r].end()),
                w.dominants[r].end());
        }

        // Background noise: per-component std chosen so q.k_j has
        // roughly unit standard deviation.
        float *qr = w.q.rowPtr(r);
        const double noise_std = 0.8 / k_norm_mean;
        for (int c = 0; c < spec.headDim; ++c)
            qr[c] = static_cast<float>(rng.gaussian(0.0, noise_std));

        // Shared ranking alignment: contributes backgroundGain * c_j
        // to every score, identical across rows.
        if (spec.backgroundGain > 0.0) {
            const double bg =
                spec.backgroundGain / (uk_norm * uk_norm);
            for (int c = 0; c < spec.headDim; ++c)
                qr[c] += static_cast<float>(bg * u_k[c]);
        }

        const double amp_mean =
            t == DistType::TypeI ? type1_amp : type23_amp;
        for (int idx : w.dominants[r]) {
            const float *kr = w.k.rowPtr(idx);
            double norm2 = 0.0;
            for (int c = 0; c < spec.headDim; ++c)
                norm2 += static_cast<double>(kr[c]) * kr[c];
            norm2 = std::max(norm2, 1e-9);
            const double amp =
                rng.gaussian(amp_mean, 0.08 * amp_mean);
            const double scale = amp / norm2;
            for (int c = 0; c < spec.headDim; ++c)
                qr[c] += static_cast<float>(scale * kr[c]);
        }
    }

    w.scores = matmulNT(w.q, w.k);
}

} // namespace

AttentionWorkload
generateWorkload(const WorkloadSpec &spec)
{
    SOFA_ASSERT(spec.seq > 8 && spec.queries > 0);
    SOFA_ASSERT(spec.headDim > 0 && spec.tokenDim > 0);

    // Single-stream generation: the draw order below (tokens,
    // weights, direction, background, pool, rows) is the seed
    // behaviour every golden number depends on — keep it.
    Rng rng(spec.seed);
    AttentionWorkload w;
    w.spec = spec;
    w.tokens = drawTokens(spec, rng);
    drawProjections(spec, rng, &w.wk, &w.wv);
    const std::vector<float> u_x = drawDirection(spec, rng);
    bakeBackground(spec, rng, &w.tokens, u_x);
    finishHeadWorkload(w, u_x, rng);
    return w;
}

TokenField
generateTokenField(const WorkloadSpec &spec, Rng &rng)
{
    SOFA_ASSERT(spec.seq > 8);
    SOFA_ASSERT(spec.tokenDim > 0);
    TokenField field;
    field.tokens = drawTokens(spec, rng);
    field.direction = drawDirection(spec, rng);
    bakeBackground(spec, rng, &field.tokens, field.direction);
    return field;
}

AttentionWorkload
generateHeadWorkload(const WorkloadSpec &spec, const TokenField &field,
                     Rng &head_rng)
{
    SOFA_ASSERT(spec.queries > 0 && spec.headDim > 0);
    SOFA_ASSERT(static_cast<int>(field.tokens.rows()) == spec.seq);
    SOFA_ASSERT(static_cast<int>(field.tokens.cols()) ==
                spec.tokenDim);
    AttentionWorkload w;
    w.spec = spec;
    w.tokens = field.tokens;
    drawProjections(spec, head_rng, &w.wk, &w.wv);
    finishHeadWorkload(w, field.direction, head_rng);
    return w;
}

} // namespace sofa
