#include "model/scenarios.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace sofa {

const char *
servingModeName(ServingMode m)
{
    switch (m) {
      case ServingMode::Prefill:
        return "prefill";
      case ServingMode::DisaggregatedPrefill:
        return "disagg-prefill";
      case ServingMode::SpeculativeDecode:
        return "speculative";
      case ServingMode::AutoregressiveDecode:
        return "decode";
    }
    return "?";
}

std::int64_t
ServingScenario::tokenParallelism() const
{
    switch (mode) {
      case ServingMode::Prefill:
        return promptLen;
      case ServingMode::DisaggregatedPrefill:
        return static_cast<std::int64_t>(promptLen) * batch;
      case ServingMode::SpeculativeDecode:
        return static_cast<std::int64_t>(speculationGamma) * batch;
      case ServingMode::AutoregressiveDecode:
        return batch;
    }
    return 1;
}

std::int64_t
ServingScenario::contextLength() const
{
    return promptLen;
}

double
ServingScenario::tokensProduced(double acceptance_rate) const
{
    SOFA_ASSERT(acceptance_rate > 0.0 && acceptance_rate <= 1.0);
    switch (mode) {
      case ServingMode::Prefill:
        return static_cast<double>(promptLen);
      case ServingMode::DisaggregatedPrefill:
        return static_cast<double>(promptLen) * batch;
      case ServingMode::SpeculativeDecode: {
        // Expected accepted tokens of a gamma-length draft with
        // per-token acceptance a: (1 - a^(g+1)) / (1 - a) - 1 ... we
        // use the standard geometric expectation plus the bonus
        // token.
        const double a = acceptance_rate;
        double expect = 0.0, p = 1.0;
        for (int i = 0; i < speculationGamma; ++i) {
            p *= a;
            expect += p;
        }
        return (expect + 1.0) * batch; // +1: the target's own token
      }
      case ServingMode::AutoregressiveDecode:
        return static_cast<double>(batch);
    }
    return 0.0;
}

std::vector<ServingScenario>
servingSuite(const ModelConfig &model)
{
    std::vector<ServingScenario> v;
    auto add = [&](const std::string &name, ServingMode mode,
                   int prompt, int batch, int gamma) {
        ServingScenario s;
        s.name = name;
        s.mode = mode;
        s.model = model;
        s.promptLen = prompt;
        s.batch = batch;
        s.speculationGamma = gamma;
        v.push_back(s);
    };

    add("chat prefill 2k", ServingMode::Prefill, 2048, 1, 0);
    add("long-doc prefill 4k", ServingMode::Prefill, 4096, 1, 0);
    add("prefill server b8 x 2k", ServingMode::DisaggregatedPrefill,
        2048, 8, 0);
    add("speculative g4 b16", ServingMode::SpeculativeDecode, 2048,
        16, 4);
    add("speculative g8 b16", ServingMode::SpeculativeDecode, 2048,
        16, 8);
    add("decode b16", ServingMode::AutoregressiveDecode, 2048, 16,
        0);
    add("decode b1", ServingMode::AutoregressiveDecode, 2048, 1, 0);
    return v;
}

std::vector<ServingScenario>
representativeScenarios(const ModelConfig &model)
{
    // First suite entry of each mode, in mode declaration order.
    std::vector<ServingScenario> picks;
    for (const ServingMode mode :
         {ServingMode::Prefill, ServingMode::DisaggregatedPrefill,
          ServingMode::SpeculativeDecode,
          ServingMode::AutoregressiveDecode}) {
        for (const auto &s : servingSuite(model)) {
            if (s.mode == mode) {
                picks.push_back(s);
                break;
            }
        }
    }
    return picks;
}

const char *
arrivalPatternName(ArrivalPattern p)
{
    switch (p) {
      case ArrivalPattern::Uniform:
        return "uniform";
      case ArrivalPattern::Poisson:
        return "poisson";
      case ArrivalPattern::Burst:
        return "burst";
    }
    return "?";
}

std::vector<double>
arrivalTimes(ArrivalPattern pattern, int n, double mean_gap,
             std::uint64_t seed, int burst)
{
    SOFA_ASSERT(n >= 0);
    SOFA_ASSERT(mean_gap >= 0.0);
    SOFA_ASSERT(burst >= 1);
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(std::max(0, n)));
    Rng rng(seed);
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
        switch (pattern) {
          case ArrivalPattern::Uniform:
            t = static_cast<double>(i) * mean_gap;
            break;
          case ArrivalPattern::Poisson:
            if (i > 0)
                t += mean_gap > 0.0
                         ? rng.exponential(1.0 / mean_gap)
                         : 0.0;
            break;
          case ArrivalPattern::Burst:
            // Group g = i / burst arrives all at once; groups are
            // spaced so the long-run rate matches mean_gap.
            t = static_cast<double>(i / burst) *
                (static_cast<double>(burst) * mean_gap);
            break;
        }
        times.push_back(t);
    }
    return times;
}

ModelWorkloadSpec
scenarioWorkloadSpec(const ServingScenario &s, int max_context,
                     int max_batch, int max_heads)
{
    SOFA_ASSERT(max_context > 16);
    SOFA_ASSERT(max_batch >= 1 && max_heads >= 1);
    ModelWorkloadSpec spec;
    spec.heads = std::min(s.model.heads, max_heads);
    spec.headDim = std::min(s.model.headDim(), 64);
    spec.mixture = s.model.mixture;
    const int ctx = std::min(s.promptLen, max_context);
    switch (s.mode) {
      case ServingMode::Prefill:
        spec.batch = 1;
        spec.seq = ctx;
        spec.queries = ctx; // T = S: the whole prompt at once
        break;
      case ServingMode::DisaggregatedPrefill:
        spec.batch = std::min(s.batch, max_batch);
        spec.seq = ctx;
        spec.queries = ctx;
        break;
      case ServingMode::SpeculativeDecode:
        spec.batch = std::min(s.batch, max_batch);
        spec.newTokens = std::max(1, s.speculationGamma);
        spec.pastLen = std::max(16, ctx - spec.newTokens);
        break;
      case ServingMode::AutoregressiveDecode:
        spec.batch = std::min(s.batch, max_batch);
        spec.newTokens = 1;
        spec.pastLen = std::max(16, ctx - 1);
        break;
    }
    return spec;
}

} // namespace sofa
