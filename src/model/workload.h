/**
 * @file
 * Synthetic attention workload generation.
 *
 * The paper's mechanisms act on attention *score distributions*; Fig. 8
 * taxonomizes those into three empirical types and gives each model
 * family's mixture. This module (a) generates score rows of each type,
 * (b) classifies rows back into types (used to validate the generator
 * and to reproduce Fig. 8(b)), and (c) generates complete tensor-level
 * workloads (X, Wk, Wv, Q and the exact K, V, A) whose attention matrix
 * follows a requested mixture, so the full DLZS -> SADS -> SU-FA
 * pipeline can be exercised end to end.
 */

#ifndef SOFA_MODEL_WORKLOAD_H
#define SOFA_MODEL_WORKLOAD_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "model/config.h"
#include "tensor/matrix.h"

namespace sofa {

/** Tunables for one synthetic score row. */
struct ScoreRowParams
{
    int seq = 1024;             ///< row length S
    double noiseStd = 1.0;      ///< background score noise
    double type1Amp = 7.0;      ///< dominant amplitude for Type-I
    double type23Amp = 4.5;     ///< dominant amplitude for Type-II/III
    int type1Dominants = 2;     ///< dominant token count for Type-I
    int type23Dominants = 12;   ///< dominant token count for Type-II/III
    double type3RegionFrac = 0.125; ///< Type-III cluster width (of S)
};

/** Generate one attention-score row of the given distribution type. */
std::vector<float> generateScoreRow(Rng &rng, DistType type,
                                    const ScoreRowParams &params);

/** Generate a score matrix following a model's type mixture. */
MatF generateScoreMatrix(Rng &rng, const DistMixture &mixture, int rows,
                         const ScoreRowParams &params);

/**
 * Classify a score row into one of the Fig. 8 types using the
 * post-softmax mass criteria described in Section III-B: Type-I when
 * the top few tokens dominate the softmax mass; otherwise the
 * dominant set (tokens whose probability is a sizeable fraction of
 * the row max) decides — concentrated in one region means Type-III,
 * spread out means Type-II.
 */
DistType classifyScoreRow(const std::vector<float> &scores,
                          double type1MassThreshold = 0.5,
                          double clusterFrac = 0.125);

/** Classification tallies across a matrix (for Fig. 8(b)). */
struct MixtureTally
{
    std::int64_t type1 = 0;
    std::int64_t type2 = 0;
    std::int64_t type3 = 0;

    double frac1() const;
    double frac2() const;
    double frac3() const;
    std::int64_t total() const { return type1 + type2 + type3; }
};

MixtureTally classifyScoreMatrix(const MatF &scores);

/** Specification of a complete tensor-level attention workload. */
struct WorkloadSpec
{
    int seq = 1024;       ///< S: keys in the context
    int queries = 64;     ///< T: queries processed in parallel
    int headDim = 64;     ///< d: per-head dimension
    int tokenDim = 128;   ///< n: token feature dimension (X columns)
    DistMixture mixture;  ///< per-row score distribution mixture
    double dominantGain = 3.0; ///< how strongly Q aligns to chosen keys
    /**
     * Attention matrices exhibit columnar structure: a subset of
     * tokens is important to *most* queries (the basis of SpAtten's
     * token pruning and SOFA's on-demand KV generation). This is the
     * fraction of tokens in that globally important pool...
     */
    double globalTokenFrac = 0.12;
    /** ...and the probability a row's dominant is drawn from it. */
    double sharedDominantProb = 0.7;
    /**
     * Strength of the shared background ranking: a rank-1 (token
     * direction x per-key coefficient) component that biases every
     * query's non-dominant scores the same way, so the tails of
     * different rows' top-k selections overlap — the columnar
     * structure real attention matrices exhibit. In score-standard-
     * deviation units; 0 disables it.
     */
    double backgroundGain = 1.2;
    std::uint64_t seed = 0x50FA0001ull;
};

/**
 * A complete attention workload: raw tokens and weights (the inputs the
 * SOFA accelerator sees) together with the exact derived tensors used
 * as ground truth by the quality metrics.
 */
struct AttentionWorkload
{
    WorkloadSpec spec;
    MatF tokens;   ///< X  [S x n]
    MatF wk;       ///< Wk [n x d]
    MatF wv;       ///< Wv [n x d]
    MatF q;        ///< Q  [T x d]
    MatF k;        ///< K = X * Wk, exact       [S x d]
    MatF v;        ///< V = X * Wv, exact       [S x d]
    MatF scores;   ///< A = Q * K^T, exact      [T x S]
    /** Dominant key indices planted for each query row. */
    std::vector<std::vector<int>> dominants;
    /** The distribution type drawn for each query row. */
    std::vector<DistType> rowTypes;
};

/** Generate a full workload per @p spec. */
AttentionWorkload generateWorkload(const WorkloadSpec &spec);

/**
 * The per-batch-item token state shared by every head of a
 * multi-head workload: the token matrix X (with the rank-1 shared
 * background component already baked in) plus the unit background
 * direction u the queries align to. Heads project the *same* tokens
 * through their own Wk/Wv, which is what makes cross-head KV reuse
 * and batched on-demand generation meaningful.
 */
struct TokenField
{
    MatF tokens;                  ///< X [S x n], background included
    std::vector<float> direction; ///< u, unit vector in token space
};

/** Generate one batch item's shared token field from @p rng. */
TokenField generateTokenField(const WorkloadSpec &spec, Rng &rng);

/**
 * Generate one head's workload on a shared token field: fresh
 * Wk/Wv/Q (and dominant structure) from @p head_rng, tokens taken
 * from @p field. The result is a complete AttentionWorkload, so
 * every single-head consumer (runSofaPipeline, metrics) works on it
 * unchanged.
 */
AttentionWorkload generateHeadWorkload(const WorkloadSpec &spec,
                                       const TokenField &field,
                                       Rng &head_rng);

} // namespace sofa

#endif // SOFA_MODEL_WORKLOAD_H
