/**
 * @file
 * Data fetcher (Fig. 11 module 1): translates the controller's tile
 * requests and the top-k mask into physical addresses, models the
 * banked SRAM layout (row/column router), bank conflicts, and double
 * buffering of tile operands against DRAM.
 *
 * Addressing scheme: a tensor is stored row-major in a region of the
 * target buffer; the fetcher interleaves consecutive rows across
 * banks so a tile of B rows streams conflict-free when B <= banks.
 * Gather requests (the masked KV fetch of step 5) hit banks
 * irregularly; conflicts serialize within a cycle.
 *
 * Units: cycles (bank conflicts serialize within a cycle);
 * addresses and tile operands in bytes. Assumes row-interleaved
 * banking and double buffering against DRAM.
 */

#ifndef SOFA_ARCH_FETCHER_H
#define SOFA_ARCH_FETCHER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace sofa {

/** A tensor region registered with the fetcher. */
struct TensorRegion
{
    std::string name;
    std::int64_t baseAddr = 0;   ///< byte address in the buffer
    std::int64_t rows = 0;
    std::int64_t rowBytes = 0;   ///< bytes per row

    std::int64_t bytes() const { return rows * rowBytes; }
    /** Physical byte address of a row. */
    std::int64_t rowAddr(std::int64_t row) const;
};

/** One physical access produced by address generation. */
struct FetchRequest
{
    std::int64_t addr = 0;
    std::int64_t bytes = 0;
    int bank = 0;
};

/** Result of issuing a batch of requests. */
struct FetchResult
{
    std::int64_t requests = 0;
    std::int64_t bytes = 0;
    std::int64_t cycles = 0;      ///< with bank-conflict serialization
    std::int64_t conflicts = 0;   ///< extra cycles lost to conflicts
};

/** The fetcher attached to one banked buffer. */
class DataFetcher
{
  public:
    /**
     * @param banks SRAM banks (row interleaving granularity)
     * @param bank_width_bytes bytes one bank serves per cycle
     * @param capacity_bytes total buffer capacity
     */
    DataFetcher(int banks, int bank_width_bytes,
                std::int64_t capacity_bytes);

    int banks() const { return banks_; }
    std::int64_t capacityBytes() const { return capacity_; }
    std::int64_t allocatedBytes() const { return nextFree_; }

    /**
     * Register a tensor region; returns its descriptor. fatal() if
     * the buffer capacity would be exceeded (the configuration is a
     * user error, not a bug).
     */
    TensorRegion allocate(const std::string &name, std::int64_t rows,
                          std::int64_t row_bytes);

    /** Release all regions (between layers). */
    void reset();

    /** Bank serving a byte address (row-interleaved). */
    int bankOf(std::int64_t addr) const;

    /** Address generation for a dense tile of consecutive rows. */
    std::vector<FetchRequest> tileRequests(const TensorRegion &t,
                                           std::int64_t first_row,
                                           std::int64_t row_count)
        const;

    /**
     * Address generation for a gather of selected rows (the masked
     * KV fetch): one request per selected row.
     */
    std::vector<FetchRequest> gatherRequests(
        const TensorRegion &t, const std::vector<int> &rows) const;

    /**
     * Issue a request batch: per cycle every bank serves at most one
     * request; conflicting requests to the same bank serialize.
     */
    FetchResult issue(const std::vector<FetchRequest> &reqs);

    /** Cumulative statistics. */
    const StatGroup &stats() const { return stats_; }

  private:
    int banks_;
    int bankWidth_;
    std::int64_t capacity_;
    std::int64_t nextFree_ = 0;
    StatGroup stats_{"fetcher"};
};

} // namespace sofa

#endif // SOFA_ARCH_FETCHER_H
