/**
 * @file
 * Cycle/energy model of the reusable & configurable DLZS engine
 * (Fig. 12): a 128x32 systolic shift-adder array fed by a zero
 * eliminator, plus 128 configurable leading-zero encoders (two chained
 * 8-bit LZCs each). The same array is reused by the K-estimation data
 * path (8-bit tokens x 4-bit LZ weights) and the QxK^T data path
 * (16-bit Q encoded to 5-bit LZ).
 *
 * Units: cycles per invocation at 1 GHz and energy in pJ (tables
 * from energy/energy_model). Assumes the 128x32 array geometry of
 * Table III; operands 8-bit (tokens) and 4/5-bit LZ codes.
 */

#ifndef SOFA_ARCH_DLZS_ENGINE_H
#define SOFA_ARCH_DLZS_ENGINE_H

#include <cstdint>

#include "attention/opcount.h"
#include "energy/energy_model.h"

namespace sofa {

/** Engine dimensions (Table III row "DLZS prediction"). */
struct DlzsEngineConfig
{
    int arrayRows = 128;   ///< shift-adder rows (parallel outputs)
    int arrayCols = 32;    ///< shift-adders per row
    int lzeUnits = 128;    ///< configurable LZ encoders
    double staticPowerMw = 29.05; ///< Table III module power
};

/** Cycles + energy of one engine invocation. */
struct EngineCost
{
    double cycles = 0.0;
    double energyPj = 0.0;

    EngineCost &
    operator+=(const EngineCost &o)
    {
        cycles += o.cycles;
        energyPj += o.energyPj;
        return *this;
    }
};

/** DLZS engine model. */
class DlzsEngine
{
  public:
    explicit DlzsEngine(DlzsEngineConfig cfg = {},
                        OpEnergies energies = OpEnergies::atNode(
                            {28.0, 1.0}));

    const DlzsEngineConfig &config() const { return cfg_; }

    /**
     * Phase 1.1 — K-hat prediction: S token rows x n features ->
     * d outputs, one shift-add per (token, feature, output) after
     * zero elimination.
     *
     * @param zero_frac fraction of operand pairs removed by the zero
     *        eliminator (0 = dense)
     */
    EngineCost kPrediction(std::int64_t seq, std::int64_t token_dim,
                           std::int64_t head_dim,
                           double zero_frac = 0.0) const;

    /**
     * Phase 1.2 — A-hat prediction: T query rows against S K-hat rows
     * over d dims; the 128 LZEs first encode Q (16-bit mode).
     */
    EngineCost aPrediction(std::int64_t queries, std::int64_t seq,
                           std::int64_t head_dim,
                           double zero_frac = 0.0) const;

    /** Shift-adds the array retires per cycle. */
    double throughputPerCycle() const;

  private:
    DlzsEngineConfig cfg_;
    OpEnergies energies_;
};

} // namespace sofa

#endif // SOFA_ARCH_DLZS_ENGINE_H
