/**
 * @file
 * Cycle/energy model of the high-parallel, flexible-input SADS engine
 * (Fig. 13): 128 lanes, each pairing a fully parallel 16-to-4 bitonic
 * sorting core (12 fresh inputs merged with the previous round's top-4
 * per pass) with an adaptive clipping unit (threshold-updating module)
 * that blocks values outside the search radius before they toggle the
 * sorter.
 *
 * Units: cycles per invocation at 1 GHz and energy in pJ; sorter
 * toggle counts come from core/sads. Assumes the 128-lane, 16-to-4
 * bitonic geometry of Table III.
 */

#ifndef SOFA_ARCH_SADS_ENGINE_H
#define SOFA_ARCH_SADS_ENGINE_H

#include <cstdint>

#include "arch/dlzs_engine.h" // EngineCost
#include "energy/energy_model.h"

namespace sofa {

/** Engine dimensions (Table III row "Iterative SADS"). */
struct SadsEngineConfig
{
    int lanes = 128;          ///< parallel sort cores
    int freshInputsPerPass = 12;
    int comparatorsPerPass = 50; ///< pruned 16-to-4 network
    double staticPowerMw = 112.79;
};

/** SADS engine model. */
class SadsEngine
{
  public:
    explicit SadsEngine(SadsEngineConfig cfg = {},
                        OpEnergies energies = OpEnergies::atNode(
                            {28.0, 1.0}));

    const SadsEngineConfig &config() const { return cfg_; }

    /**
     * Sort @p rows score rows of length @p seq, each split into
     * @p segments sub-segments, with @p clip_frac of elements blocked
     * by the clipping unit (blocked elements cost one threshold
     * compare but never enter the sorter).
     */
    EngineCost sort(std::int64_t rows, std::int64_t seq, int segments,
                    double clip_frac = 0.0,
                    int refine_iters = 8) const;

  private:
    SadsEngineConfig cfg_;
    OpEnergies energies_;
};

} // namespace sofa

#endif // SOFA_ARCH_SADS_ENGINE_H
