#include "arch/accelerator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/controller.h"
#include "common/bits.h"
#include "common/logging.h"

namespace sofa {

SofaAccelerator::SofaAccelerator(SofaConfig cfg)
    : cfg_(cfg), dlzsEngine_(cfg.dlzs), sadsEngine_(cfg.sads),
      kvEngine_(cfg.kv), sufaEngine_(cfg.sufa)
{
    SOFA_ASSERT(cfg_.frequencyGhz > 0.0);
    SOFA_ASSERT(cfg_.tileBc > 0);
    SOFA_ASSERT(cfg_.topkFrac > 0.0 && cfg_.topkFrac <= 1.0);
}

double
SofaAccelerator::peakGops() const
{
    // Formal datapath MACs (KV gen + SU-FA), 2 ops per MAC.
    const double macs = kvEngine_.throughputPerCycle() +
                        sufaEngine_.macThroughputPerCycle();
    return 2.0 * macs * cfg_.frequencyGhz;
}

SimResult
SofaAccelerator::run(const AttentionShape &shape) const
{
    SOFA_ASSERT(shape.queries > 0 && shape.seq > 0);
    SimResult res;
    const SofaFeatures &f = cfg_.features;

    const std::int64_t T = shape.queries;
    const std::int64_t S = shape.seq;
    const std::int64_t d = shape.headDim;
    const std::int64_t n = shape.tokenDim;
    const double heads = static_cast<double>(shape.heads);
    const std::int64_t kept = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(
               cfg_.topkFrac * static_cast<double>(S))));

    // ---- Whole-workload stage costs ---------------------------------
    // A tile covers Bc keys of the context for all T queries; the
    // four stages stream tiles through the engines. Costs are
    // evaluated once for the whole slice (engines stream, so systolic
    // fill is paid per wave, not per tile) and then divided across
    // tiles for the pipeline schedule.
    const std::int64_t Bc = cfg_.tileBc;
    const std::int64_t tiles = ceilDiv(S, Bc);
    const double kept_frac =
        static_cast<double>(kept) / static_cast<double>(S);

    // Stage 1: DLZS prediction of K-hat and A-hat. Without the
    // dedicated shift-adder array, prediction falls back onto the
    // 16-bit PE datapath (the KV-generation array): one MAC per
    // operand pair at a fraction of the shift array's width, and
    // multiplier energy instead of shift-add energy.
    EngineCost pred;
    if (f.dlzsPrediction) {
        const double zero_frac = 0.25; // zero-eliminator hit rate
        pred = dlzsEngine_.kPrediction(S, n, d, zero_frac);
        pred += dlzsEngine_.aPrediction(T, S, d, zero_frac);
    } else {
        const double macs = static_cast<double>(S) * n * d +
                            static_cast<double>(T) * S * d;
        // Packed int4 pairs run two predictions per 16-bit PE cycle.
        pred.cycles = macs / (2.0 * kvEngine_.throughputPerCycle());
        // Narrow (4/8-bit) multiplies + wide accumulates.
        pred.energyPj = macs * 0.3;
    }

    // Stage 2: SADS over the predicted scores, or whole-row vanilla
    // sorting when ablated (must wait for full rows; its bitonic
    // comparison count dwarfs SADS's linear scan).
    EngineCost sort{};
    if (f.sadsSorting) {
        sort = sadsEngine_.sort(T, S, /*segments=*/4,
                                /*clip_frac=*/0.3,
                                /*refine_iters=*/8);
    } else {
        const double full_cmp = static_cast<double>(
            bitonicSortComparisons(S));
        // 128 comparator lanes, one compare-exchange per lane-cycle.
        sort.cycles = full_cmp /
                      static_cast<double>(cfg_.sads.lanes) *
                      static_cast<double>(ceilDiv(T, cfg_.sads.lanes));
        sort.energyPj = static_cast<double>(T) * full_cmp * 0.03;
    }

    // Stage 3: on-demand KV generation — only keys in some query's
    // selection are projected; without the feature all S keys are.
    const double coverage = f.onDemandKv ? shape.keyCoverage : 1.0;
    const std::int64_t gen_keys = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(
               coverage * static_cast<double>(S) *
               (f.onDemandKv
                    ? std::min(1.0, kept_frac * shape.kvSharing)
                    : 1.0))));
    EngineCost kvgen = kvEngine_.generate(gen_keys, n, d);

    // Stage 4: SU-FA (or sparse FA-2) over the kept keys. Without
    // RASS's out-of-order KV execution, in-order loads leave bubbles
    // in the formal stage whenever a query waits for a KV pair that
    // is resident for another query's order.
    EngineCost formal =
        f.sufaOrdering
            ? sufaEngine_.attention(T, kept, d,
                                    SufaOrder::Descending,
                                    shape.violationRate)
            : sufaEngine_.attentionFa2(T, kept, d,
                                       /*block_cols=*/16);
    if (!f.rassScheduling)
        formal.cycles *= 1.12;

    // ---- Pipeline schedule ------------------------------------------
    // The tiled & out-of-order computation controller overlaps the
    // four stages at tile granularity (cross-stage coordinated
    // tiling). Whole-row sorting (no SADS) reintroduces the row
    // dependency: the top-k stage waits for prediction to drain
    // every tile before it can start (row barrier).
    StageCosts tile_costs;
    tile_costs.perTile = {
        pred.cycles / static_cast<double>(tiles),
        sort.cycles / static_cast<double>(tiles),
        kvgen.cycles / static_cast<double>(tiles),
        formal.cycles / static_cast<double>(tiles)};
    TiledController ctrl(f.tiledPipeline,
                         /*row_barrier=*/!f.sadsSorting);
    ScheduleTrace trace =
        ctrl.schedule(static_cast<int>(tiles), tile_costs);
    double total_cycles = trace.totalCycles * heads;

    // ---- DRAM traffic ----------------------------------------------
    Dram dram(cfg_.dram);
    // Mandatory: tokens (8-bit) + weights (LZ codes ~5 bits for Wk,
    // 16-bit Wk/Wv for the generated keys) + Q (16-bit) + O out.
    const double token_bytes = static_cast<double>(S) * n * 1.0;
    const double wlz_bytes = static_cast<double>(n) * d * 5.0 / 8.0;
    const double wkv_bytes = 2.0 * static_cast<double>(n) * d * 2.0;
    const double q_bytes = static_cast<double>(T) * d * 2.0 * heads;
    const double o_bytes = static_cast<double>(T) * d * 2.0 * heads;
    dram.read(token_bytes + wlz_bytes + wkv_bytes + q_bytes);
    dram.write(o_bytes);

    // KV fetch for the formal stage: scheduling decides the traffic.
    const double distinct_keys =
        coverage * static_cast<double>(S) * heads;
    const double kv_vector_bytes = static_cast<double>(d) * 2.0;
    // Without the tiled dataflow, each wave of `parallelQueries`
    // in-flight rows re-streams the context's selected KV set.
    const double kv_waves =
        f.tiledPipeline ? 1.0
                        : static_cast<double>(ceilDiv(
                              T, cfg_.parallelQueries));
    double kv_loads; // in vectors (K + V counted separately)
    if (f.rassScheduling) {
        // RASS approaches one load per distinct key; its bitmask ID
        // buffer dedups across waves as well.
        kv_loads = 2.0 * distinct_keys * 1.05;
    } else {
        // Naive in-order: per-query orders disagree, each shared key
        // is fetched by ~sharing/2 of its consumers, per wave.
        const double refetch =
            1.0 + std::max(0.0, shape.kvSharing / 2.0 - 1.0) * 0.5;
        kv_loads = 2.0 * distinct_keys * refetch * kv_waves;
    }
    dram.read(kv_loads * kv_vector_bytes);

    // Intermediate spills when the pipeline is serialized: Pre-Atten
    // (4-bit) and Atten (16-bit) matrices stored + reloaded.
    if (!f.tiledPipeline) {
        const double pre = static_cast<double>(T) * S * 0.5 * heads;
        const double att = static_cast<double>(T) * kept * 2.0 * heads;
        dram.write(pre + att);
        dram.read(pre + att);
    }

    // Memory time overlaps compute in the tiled pipeline but bounds
    // the total; serialized execution adds it.
    const double mem_ns = dram.transferNs(dram.totalBytes());
    const double compute_ns = total_cycles / cfg_.frequencyGhz;
    res.timeNs = f.tiledPipeline ? std::max(compute_ns, mem_ns)
                                 : compute_ns + mem_ns;
    res.cycles = res.timeNs * cfg_.frequencyGhz;

    // ---- Energy -------------------------------------------------------
    const double core_energy =
        (pred.energyPj + sort.energyPj + kvgen.energyPj +
         formal.energyPj) *
        heads;
    // SRAM traffic: every tile's operands pass through on-chip
    // buffers once (token + khat + scores + kv + outputs).
    Sram token_sram("token", cfg_.tokenSramBytes);
    Sram weight_sram("weight", cfg_.weightSramBytes);
    Sram temp_sram("temp", cfg_.tempSramBytes);
    token_sram.read(token_bytes * heads);
    weight_sram.read((wlz_bytes + wkv_bytes) * heads);
    temp_sram.read(static_cast<double>(T) * S * 2.0 * heads); // A-hat
    temp_sram.write(static_cast<double>(T) * S * 2.0 * heads);
    const MemEnergies mem_e = MemEnergies::defaults();
    const double sram_energy = token_sram.energyPj(mem_e) +
                               weight_sram.energyPj(mem_e) +
                               temp_sram.energyPj(mem_e);

    res.energyPj = core_energy + sram_energy;
    res.dramEnergyPj = dram.energyPj();
    res.dramBytes = dram.totalBytes();

    // ---- Derived metrics ---------------------------------------------
    // Useful ops: the dense-equivalent attention the slice performs
    // (prediction not counted as useful work).
    res.usefulOps = 2.0 * 2.0 * static_cast<double>(T) * S * d * heads;
    res.effectiveGops = res.usefulOps / res.timeNs;
    const double watts =
        (res.energyPj + res.dramEnergyPj) / res.timeNs * 1e-3;
    res.gopsPerWatt = watts > 0.0 ? res.effectiveGops / watts : 0.0;
    const double busy =
        (2.0 * static_cast<double>(T) * kept * d * heads) /
        (sufaEngine_.macThroughputPerCycle() * res.cycles);
    res.utilization = std::min(1.0, busy);

    res.stats.set("cycles", res.cycles);
    res.stats.set("time_ns", res.timeNs);
    res.stats.set("energy_pj", res.energyPj);
    res.stats.set("dram_bytes", res.dramBytes);
    res.stats.set("dram_energy_pj", res.dramEnergyPj);
    res.stats.set("kept_keys", static_cast<double>(kept));
    res.stats.set("tiles", static_cast<double>(tiles));
    res.stats.set("compute_ns", compute_ns);
    res.stats.set("memory_ns", mem_ns);
    return res;
}

} // namespace sofa
