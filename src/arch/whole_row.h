/**
 * @file
 * "Whole-row-processing" accelerator model (Fig. 2 left): the pre-
 * compute stage writes the full Pre-Atten matrix (T x S, 4-bit) to
 * DRAM, the top-k stage reads it back row-wise, and the formal stage
 * stores/loads the full Atten matrix (T x S, 16-bit) — because the
 * row-wise top-k/softmax cannot start until the whole row exists and
 * T x S exceeds on-chip SRAM at scale. This is the behaviour the
 * paper attributes to prior dynamic-sparsity accelerators (FACT,
 * Energon, ...) when scaled to large token parallelism (Fig. 3).
 *
 * Units: compute/memory time in ns, traffic in bytes (spill vs
 * mandatory split), datapath throughput in GOPS, MAT share a
 * fraction of total time.
 */

#ifndef SOFA_ARCH_WHOLE_ROW_H
#define SOFA_ARCH_WHOLE_ROW_H

#include <cstdint>
#include <string>

#include "arch/dram.h"

namespace sofa {

/** Parameters of a whole-row dynamic-sparsity accelerator. */
struct WholeRowConfig
{
    std::string name = "generic";
    double throughputGops = 1000.0; ///< effective compute GOPS
    std::int64_t sramBytes = 2 << 20; ///< on-chip SRAM (2MB default)
    DramConfig dram = DramConfig::ddr4();
    int predBits = 4;    ///< Pre-Atten element width
    int formalBits = 16; ///< Atten element width
    double topkFrac = 0.25;
};

/** Latency decomposition of one attention slice. */
struct WholeRowResult
{
    double computeNs = 0.0;
    double memoryNs = 0.0;      ///< DRAM access time (MAT)
    double spillBytes = 0.0;    ///< intermediate-matrix traffic
    double mandatoryBytes = 0.0; ///< Q/K/V/O traffic

    double totalNs() const { return computeNs + memoryNs; }
    /** MAT share of total latency (the Fig. 3 metric). */
    double
    matRatio() const
    {
        const double t = totalNs();
        return t > 0.0 ? memoryNs / t : 0.0;
    }
};

/**
 * Model one attention slice with @p parallel tokens against an
 * @p seq -long context at head dimension @p head_dim and @p heads
 * heads. Intermediate matrices spill to DRAM whenever the working
 * set (Pre-Atten + Atten for the parallel rows) exceeds SRAM.
 */
WholeRowResult runWholeRow(const WholeRowConfig &cfg,
                           std::int64_t parallel, std::int64_t seq,
                           int head_dim, int heads);

} // namespace sofa

#endif // SOFA_ARCH_WHOLE_ROW_H
