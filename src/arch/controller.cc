#include "arch/controller.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace sofa {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Predict:
        return "predict";
      case Stage::Sort:
        return "sort";
      case Stage::KvGen:
        return "kvgen";
      case Stage::Formal:
        return "formal";
    }
    return "?";
}

double
ScheduleTrace::utilization(Stage s) const
{
    if (totalCycles <= 0.0)
        return 0.0;
    return stageBusy[static_cast<int>(s)] / totalCycles;
}

std::vector<TileEvent>
ScheduleTrace::tileEvents(int tile) const
{
    std::vector<TileEvent> out;
    for (const auto &e : events)
        if (e.tile == tile)
            out.push_back(e);
    std::sort(out.begin(), out.end(),
              [](const TileEvent &a, const TileEvent &b) {
                  return static_cast<int>(a.stage) <
                         static_cast<int>(b.stage);
              });
    return out;
}

std::string
ScheduleTrace::gantt(int width) const
{
    SOFA_ASSERT(width > 0);
    std::ostringstream os;
    if (totalCycles <= 0.0)
        return "";
    for (int s = 0; s < kNumStages; ++s) {
        std::string row(width, '.');
        for (const auto &e : events) {
            if (static_cast<int>(e.stage) != s)
                continue;
            int lo = static_cast<int>(
                std::floor(e.startCycle / totalCycles * width));
            int hi = static_cast<int>(
                std::ceil(e.endCycle / totalCycles * width));
            lo = std::clamp(lo, 0, width - 1);
            hi = std::clamp(hi, lo + 1, width);
            for (int c = lo; c < hi; ++c)
                row[c] = '#';
        }
        os.width(8);
        os << stageName(static_cast<Stage>(s)) << " |" << row
           << "|\n";
        os.width(0);
    }
    return os.str();
}

ScheduleTrace
TiledController::schedule(int tiles, const StageCosts &costs) const
{
    SOFA_ASSERT(tiles > 0);
    ScheduleTrace trace;
    trace.events.reserve(static_cast<std::size_t>(tiles) *
                         kNumStages);

    // finish[s] = completion cycle of stage s for the previous tile.
    std::array<double, kNumStages> finish{};

    if (!pipelined_) {
        // Whole-stage serialization: stage s runs tiles 0..N-1, then
        // stage s+1 starts.
        double clock = 0.0;
        for (int s = 0; s < kNumStages; ++s) {
            for (int t = 0; t < tiles; ++t) {
                TileEvent e;
                e.tile = t;
                e.stage = static_cast<Stage>(s);
                e.startCycle = clock;
                clock += costs.perTile[s];
                e.endCycle = clock;
                trace.events.push_back(e);
                trace.stageBusy[s] += e.duration();
            }
        }
        trace.totalCycles = clock;
        return trace;
    }

    // Pipelined: a stage starts a tile when (a) the previous stage
    // finished that tile and (b) its own previous tile is done. The
    // row barrier delays the sort stage until prediction drains.
    double predict_drain = 0.0;
    if (rowBarrier_) {
        predict_drain =
            costs.perTile[0] * static_cast<double>(tiles);
    }

    for (int t = 0; t < tiles; ++t) {
        double prev_stage_done = 0.0;
        for (int s = 0; s < kNumStages; ++s) {
            double start = std::max(prev_stage_done, finish[s]);
            if (rowBarrier_ && s == static_cast<int>(Stage::Sort))
                start = std::max(start, predict_drain);
            TileEvent e;
            e.tile = t;
            e.stage = static_cast<Stage>(s);
            e.startCycle = start;
            e.endCycle = start + costs.perTile[s];
            finish[s] = e.endCycle;
            prev_stage_done = e.endCycle;
            trace.stageBusy[s] += e.duration();
            trace.events.push_back(e);
        }
    }
    trace.totalCycles = finish[kNumStages - 1];
    return trace;
}

} // namespace sofa
