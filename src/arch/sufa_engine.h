/**
 * @file
 * Cycle/energy model of the SU-FA engine (Fig. 14): two output-
 * stationary systolic arrays (QK^T and score x V), the folded
 * auxiliary-process (max-ensuring) module with 128 EXP units, and the
 * O-updating module with 128 DIV units. Table III prices the module
 * at 128x4 16-bit PEs + 128 EXP + 128 DIV.
 *
 * Units: cycles per invocation at 1 GHz and energy in pJ. Assumes
 * 128x4 16-bit PEs plus 128 EXP / 128 DIV units (Table III); exp and
 * reciprocal latencies come from arch/funcunit.
 */

#ifndef SOFA_ARCH_SUFA_ENGINE_H
#define SOFA_ARCH_SUFA_ENGINE_H

#include <cstdint>

#include "arch/dlzs_engine.h" // EngineCost
#include "core/sufa.h"
#include "energy/energy_model.h"

namespace sofa {

/** Engine dimensions. */
struct SufaEngineConfig
{
    int lines = 128;      ///< query lines processed in parallel
    int macsPerLine = 4;  ///< PEs per line (shared by the two SAs)
    int expUnits = 128;
    int divUnits = 128;
    double staticPowerMw = 485.12;
};

/** SU-FA engine model. */
class SufaEngine
{
  public:
    explicit SufaEngine(SufaEngineConfig cfg = {},
                        OpEnergies energies = OpEnergies::atNode(
                            {28.0, 1.0}));

    const SufaEngineConfig &config() const { return cfg_; }

    /**
     * Execute sparse attention over @p queries rows with @p kept keys
     * each (head dim @p head_dim).
     *
     * @param order descending (SU-FA) skips per-element max refresh;
     *        the engine model prices the op mix accordingly
     * @param violation_rate fraction of elements triggering the
     *        max-ensuring fallback (mode-1 rescale)
     */
    EngineCost attention(std::int64_t queries, std::int64_t kept,
                         std::int64_t head_dim,
                         SufaOrder order = SufaOrder::Descending,
                         double violation_rate = 0.0) const;

    /**
     * The same selection executed as sparse FA-2 (no sorting info):
     * per-tile max refresh and rescale, the Fig. 5 cost profile.
     */
    EngineCost attentionFa2(std::int64_t queries, std::int64_t kept,
                            std::int64_t head_dim,
                            int block_cols = 16) const;

    double macThroughputPerCycle() const;

  private:
    SufaEngineConfig cfg_;
    OpEnergies energies_;
};

} // namespace sofa

#endif // SOFA_ARCH_SUFA_ENGINE_H
