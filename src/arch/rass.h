/**
 * @file
 * Reuse-Aware Schedule Scheme (RASS, Fig. 15). Different queries
 * select different (overlapping) K/V sets; how their loads are packed
 * into buffer-sized phases determines total memory traffic.
 *
 * Naive execution: every query line consumes its keys in its own
 * (sorted) order; the shared KV buffer caches recently loaded pairs,
 * so reuse happens only when queries coincidentally request the same
 * key within the buffer window.
 *
 * RASS: KV out-of-order execution (legal because the max-ensuring
 * circuit makes SU-FA order-insensitive for correctness) lets the
 * scheduler pack each phase with the keys shared by the most queries
 * first, then fill with keys exclusive to still-unserved queries; a
 * bitmask-indexed ID buffer plus FSM dispatches the phases (paper
 * example: 33% traffic reduction).
 *
 * Units: K+V vector loads (rows fetched) and buffer-refill phases;
 * savings are fractions vs the naive schedule. Assumes SU-FA's
 * max-ensuring circuit makes out-of-order execution safe.
 */

#ifndef SOFA_ARCH_RASS_H
#define SOFA_ARCH_RASS_H

#include <cstdint>
#include <vector>

#include "sparsity/topk.h"

namespace sofa {

/** Result of scheduling all KV loads. */
struct ScheduleResult
{
    std::int64_t phases = 0;       ///< buffer refill rounds
    std::int64_t vectorLoads = 0;  ///< K+V vectors fetched
    std::vector<std::vector<int>> phaseKeys; ///< keys per phase

    /** Bytes fetched given a per-vector payload. */
    double
    bytes(double bytes_per_vector) const
    {
        return static_cast<double>(vectorLoads) * bytes_per_vector;
    }
};

/**
 * Naive in-order execution: per step t, every query requests the t-th
 * key of its selection; an LRU buffer of @p buffer_pairs KV pairs
 * absorbs coincidental sharing, everything else is a fresh load.
 *
 * @param selections per-query key lists in per-query processing order
 */
ScheduleResult scheduleNaive(const SelectionList &selections,
                             int buffer_pairs);

/**
 * RASS greedy packing: phases of at most @p buffer_pairs keys chosen
 * by descending sharing count; each loaded key serves every query
 * that still needs it (out-of-order consumption).
 */
ScheduleResult scheduleRass(const SelectionList &selections,
                            int buffer_pairs);

/** Lower bound: every distinct key loaded exactly once. */
std::int64_t distinctKeyLoads(const SelectionList &selections);

} // namespace sofa

#endif // SOFA_ARCH_RASS_H
