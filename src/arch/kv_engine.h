/**
 * @file
 * Cycle/energy model of the on-demand KV generation PE array
 * (Table III row "KV generation": 128x4 16-bit PEs). Only the token
 * rows the top-k mask requires are projected (K_i = x_i W_k,
 * V_i = x_i W_v); trivial rows are never computed (Section III-A).
 *
 * Units: cycles per invocation at 1 GHz and energy in pJ. Assumes
 * 128x4 16-bit PEs (Table III); work scales with the *selected* key
 * rows only.
 */

#ifndef SOFA_ARCH_KV_ENGINE_H
#define SOFA_ARCH_KV_ENGINE_H

#include <cstdint>

#include "arch/dlzs_engine.h" // EngineCost
#include "energy/energy_model.h"

namespace sofa {

/** Engine dimensions. */
struct KvEngineConfig
{
    int rows = 128;  ///< PE rows (parallel token rows)
    int cols = 4;    ///< MACs per row
    double staticPowerMw = 146.21;
};

/** KV generation engine model. */
class KvEngine
{
  public:
    explicit KvEngine(KvEngineConfig cfg = {},
                      OpEnergies energies = OpEnergies::atNode(
                          {28.0, 1.0}));

    const KvEngineConfig &config() const { return cfg_; }

    /**
     * Generate @p keys K and V rows: 2 * keys * token_dim * head_dim
     * MACs on the 16-bit PEs.
     */
    EngineCost generate(std::int64_t keys, std::int64_t token_dim,
                        std::int64_t head_dim) const;

    /** MACs per cycle. */
    double throughputPerCycle() const;

  private:
    KvEngineConfig cfg_;
    OpEnergies energies_;
};

} // namespace sofa

#endif // SOFA_ARCH_KV_ENGINE_H
