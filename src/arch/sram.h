/**
 * @file
 * On-chip SRAM buffer model: capacity-checked allocation plus
 * read/write traffic and energy accounting. The SOFA accelerator
 * instantiates three buffers (Token 192KB, Weight 96KB, Temp 28KB,
 * Fig. 11); baseline accelerators instantiate a single buffer whose
 * capacity shortfall forces DRAM spills (the Fig. 3 experiment).
 *
 * Units: capacity and traffic in bytes, access time in cycles via
 * the bytes-per-cycle port width, energy in pJ per byte (read/write
 * asymmetric).
 */

#ifndef SOFA_ARCH_SRAM_H
#define SOFA_ARCH_SRAM_H

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "energy/energy_model.h"

namespace sofa {

/** A single SRAM buffer. */
class Sram
{
  public:
    /**
     * @param name stat prefix
     * @param capacity_bytes buffer capacity
     * @param bytes_per_cycle internal bandwidth (read or write)
     */
    Sram(std::string name, std::int64_t capacity_bytes,
         double bytes_per_cycle = 64.0);

    const std::string &name() const { return name_; }
    std::int64_t capacity() const { return capacity_; }

    /** True if a working set of @p bytes fits. */
    bool fits(std::int64_t bytes) const { return bytes <= capacity_; }

    /** Record a read of @p bytes; returns cycles consumed. */
    double read(double bytes);

    /** Record a write of @p bytes; returns cycles consumed. */
    double write(double bytes);

    double bytesRead() const { return bytesRead_; }
    double bytesWritten() const { return bytesWritten_; }
    double totalBytes() const { return bytesRead_ + bytesWritten_; }

    /** Access energy so far (pJ). */
    double energyPj(const MemEnergies &e) const;

    /** Export counters into a stat group. */
    void report(StatGroup &stats) const;

    void reset();

  private:
    std::string name_;
    std::int64_t capacity_;
    double bytesPerCycle_;
    double bytesRead_ = 0.0;
    double bytesWritten_ = 0.0;
};

} // namespace sofa

#endif // SOFA_ARCH_SRAM_H
