#include "arch/kv_engine.h"

#include "common/bits.h"
#include "common/logging.h"

namespace sofa {

KvEngine::KvEngine(KvEngineConfig cfg, OpEnergies energies)
    : cfg_(cfg), energies_(energies)
{
    SOFA_ASSERT(cfg_.rows > 0 && cfg_.cols > 0);
}

double
KvEngine::throughputPerCycle() const
{
    return static_cast<double>(cfg_.rows) * cfg_.cols;
}

EngineCost
KvEngine::generate(std::int64_t keys, std::int64_t token_dim,
                   std::int64_t head_dim) const
{
    EngineCost cost;
    const double macs =
        2.0 * static_cast<double>(keys) * token_dim * head_dim;
    const double fill = cfg_.rows + cfg_.cols;
    const double tiles = static_cast<double>(
        ceilDiv(std::max<std::int64_t>(keys, 1), cfg_.rows));
    cost.cycles = macs / throughputPerCycle() + fill * tiles;
    cost.energyPj = macs * (energies_.mulI16 + energies_.addI32);
    return cost;
}

} // namespace sofa
