#include "arch/funcunit.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/bits.h"
#include "common/logging.h"

namespace sofa {

ExpUnit::ExpUnit(int segments, int latency)
    : segments_(segments), latency_(latency)
{
    SOFA_ASSERT(segments_ >= 2 && isPowerOfTwo(segments_));
    SOFA_ASSERT(latency_ >= 1);
}

double
ExpUnit::compute(double x) const
{
    if (x > 0.0)
        x = 0.0; // softmax operates on max-subtracted scores
    // e^x = 2^t with t = x * log2(e) <= 0.
    const double t = x * 1.4426950408889634;
    // Underflow floor: beyond the datapath's exponent range the
    // probability is zero anyway.
    if (t < -48.0)
        return 0.0;
    double ip;
    double f = std::modf(t, &ip); // f in (-1, 0]
    if (f < 0.0) {
        f += 1.0;
        ip -= 1.0;
    }
    // Piecewise-linear 2^f on [0, 1): segment endpoints from the LUT.
    const double pos = f * segments_;
    const int seg = std::min(static_cast<int>(pos), segments_ - 1);
    const double frac = pos - seg;
    const double lo =
        std::exp2(static_cast<double>(seg) / segments_);
    const double hi =
        std::exp2(static_cast<double>(seg + 1) / segments_);
    const double mant = lo + (hi - lo) * frac;
    return std::ldexp(mant, static_cast<int>(ip));
}

double
ExpUnit::maxRelativeError(double x_min) const
{
    SOFA_ASSERT(x_min < 0.0);
    double worst = 0.0;
    const int steps = 20000;
    for (int i = 0; i <= steps; ++i) {
        const double x = x_min * (static_cast<double>(i) / steps);
        const double exact = std::exp(x);
        if (exact < 1e-18)
            continue;
        const double err =
            std::fabs(compute(x) - exact) / exact;
        worst = std::max(worst, err);
    }
    return worst;
}

DivUnit::DivUnit(int iterations, int latency)
    : iterations_(iterations), latency_(latency)
{
    SOFA_ASSERT(iterations_ >= 1);
    SOFA_ASSERT(latency_ >= 1);
}

double
DivUnit::reciprocal(double x) const
{
    SOFA_ASSERT(x > 0.0);
    // Normalize x = m * 2^e with m in [0.5, 1).
    int e;
    const double m = std::frexp(x, &e);
    // Minimax linear initial guess for 1/m on [0.5, 1):
    // y0 = 48/17 - 32/17 * m.
    double y = 2.8235294117647056 - 1.8823529411764706 * m;
    for (int i = 0; i < iterations_; ++i)
        y = y * (2.0 - m * y);
    return std::ldexp(y, -e);
}

double
DivUnit::divide(double a, double b) const
{
    return a * reciprocal(b);
}

double
DivUnit::maxRelativeError() const
{
    double worst = 0.0;
    const int steps = 20000;
    for (int i = 0; i <= steps; ++i) {
        const double x =
            0.001 + 1000.0 * (static_cast<double>(i) / steps);
        const double err =
            std::fabs(reciprocal(x) - 1.0 / x) * x;
        worst = std::max(worst, err);
    }
    return worst;
}

double
hardwareSoftmaxError(const ExpUnit &exp_unit, const DivUnit &div_unit,
                     const float *scores, int n)
{
    SOFA_ASSERT(n > 0);
    float m = scores[0];
    for (int i = 1; i < n; ++i)
        m = std::max(m, scores[i]);

    std::vector<double> hw(n), exact(n);
    double hw_sum = 0.0, exact_sum = 0.0;
    for (int i = 0; i < n; ++i) {
        hw[i] = exp_unit.compute(scores[i] - m);
        exact[i] = std::exp(static_cast<double>(scores[i]) - m);
        hw_sum += hw[i];
        exact_sum += exact[i];
    }
    const double hw_inv = div_unit.reciprocal(hw_sum);
    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
        const double p_hw = hw[i] * hw_inv;
        const double p_exact = exact[i] / exact_sum;
        worst = std::max(worst, std::fabs(p_hw - p_exact));
    }
    return worst;
}

} // namespace sofa
