#include "arch/sads_engine.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"

namespace sofa {

SadsEngine::SadsEngine(SadsEngineConfig cfg, OpEnergies energies)
    : cfg_(cfg), energies_(energies)
{
    SOFA_ASSERT(cfg_.lanes > 0);
    SOFA_ASSERT(cfg_.freshInputsPerPass > 0);
}

EngineCost
SadsEngine::sort(std::int64_t rows, std::int64_t seq, int segments,
                 double clip_frac, int refine_iters) const
{
    SOFA_ASSERT(clip_frac >= 0.0 && clip_frac <= 1.0);
    SOFA_ASSERT(segments >= 1);
    EngineCost cost;

    // Each lane owns one row; waves of `lanes` rows run in parallel.
    const double waves = static_cast<double>(
        ceilDiv(rows, cfg_.lanes));

    // Per row: every element passes the clipping compare; survivors
    // stream through the sorter at freshInputsPerPass per cycle. The
    // segments are processed back to back on the same lane (tiled
    // execution), so cycles scale with the full row length.
    const double survivors =
        static_cast<double>(seq) * (1.0 - clip_frac);
    const double passes = ceilDiv(
        static_cast<std::int64_t>(survivors) + segments,
        cfg_.freshInputsPerPass);
    const double refine = static_cast<double>(refine_iters);
    const double row_cycles = static_cast<double>(passes) + refine;
    cost.cycles = waves * row_cycles;

    // Energy: one compare per clip check, comparatorsPerPass compares
    // per sorter pass, plus refinement compares.
    const double clip_cmp = static_cast<double>(seq);
    const double sort_cmp =
        static_cast<double>(passes) * cfg_.comparatorsPerPass;
    const double refine_cmp = refine * (1.0 + segments);
    cost.energyPj = static_cast<double>(rows) *
                    (clip_cmp + sort_cmp + refine_cmp) * energies_.cmp;
    return cost;
}

} // namespace sofa
