#include "arch/dram.h"

#include "common/logging.h"

namespace sofa {

DramConfig
DramConfig::ddr4()
{
    DramConfig c;
    c.name = "DDR4";
    c.bandwidthGBs = 25.6;
    c.latencyNs = 120.0;
    c.energyPjPerBit = 15.0;
    return c;
}

DramConfig
DramConfig::hbm2()
{
    DramConfig c;
    c.name = "HBM2";
    c.bandwidthGBs = 307.2; // 16 channels @ 2GHz per Table III
    c.latencyNs = 100.0;
    c.energyPjPerBit = 7.0;
    return c;
}

DramConfig
DramConfig::hbm2Sofa()
{
    DramConfig c = hbm2();
    c.name = "HBM2@59.8GB/s";
    c.bandwidthGBs = 59.8;
    return c;
}

Dram::Dram(DramConfig cfg) : cfg_(cfg)
{
    SOFA_ASSERT(cfg_.bandwidthGBs > 0.0);
}

double
Dram::transferNs(double bytes) const
{
    // GB/s == bytes/ns.
    return bytes / cfg_.bandwidthGBs;
}

double
Dram::read(double bytes)
{
    SOFA_ASSERT(bytes >= 0.0);
    bytesRead_ += bytes;
    return transferNs(bytes);
}

double
Dram::write(double bytes)
{
    SOFA_ASSERT(bytes >= 0.0);
    bytesWritten_ += bytes;
    return transferNs(bytes);
}

double
Dram::energyPj() const
{
    return totalBytes() * 8.0 * cfg_.energyPjPerBit;
}

double
Dram::demandGBs(double exec_ns) const
{
    SOFA_ASSERT(exec_ns > 0.0);
    return totalBytes() / exec_ns;
}

void
Dram::report(StatGroup &stats) const
{
    stats.add("dram.bytes_read", bytesRead_);
    stats.add("dram.bytes_written", bytesWritten_);
    stats.add("dram.energy_pj", energyPj());
}

void
Dram::reset()
{
    bytesRead_ = 0.0;
    bytesWritten_ = 0.0;
}

} // namespace sofa
