#include "arch/rass.h"

#include <algorithm>
#include <list>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace sofa {

ScheduleResult
scheduleNaive(const SelectionList &selections, int buffer_pairs)
{
    SOFA_ASSERT(buffer_pairs > 0);
    ScheduleResult res;

    // LRU buffer of key ids.
    std::list<int> lru;
    std::unordered_map<int, std::list<int>::iterator> where;
    auto touch = [&](int key) -> bool {
        auto it = where.find(key);
        if (it != where.end()) {
            lru.erase(it->second);
            lru.push_front(key);
            it->second = lru.begin();
            return true; // hit
        }
        if (static_cast<int>(lru.size()) ==
            buffer_pairs) {
            where.erase(lru.back());
            lru.pop_back();
        }
        lru.push_front(key);
        where[key] = lru.begin();
        return false; // miss -> load
    };

    std::size_t max_len = 0;
    for (const auto &s : selections)
        max_len = std::max(max_len, s.size());

    std::vector<int> phase_loads;
    for (std::size_t step = 0; step < max_len; ++step) {
        std::vector<int> loaded_this_step;
        for (const auto &sel : selections) {
            if (step >= sel.size())
                continue;
            const int key = sel[step];
            if (!touch(key)) {
                res.vectorLoads += 2; // K and V
                loaded_this_step.push_back(key);
            }
        }
        if (!loaded_this_step.empty()) {
            ++res.phases;
            res.phaseKeys.push_back(std::move(loaded_this_step));
        }
    }
    return res;
}

ScheduleResult
scheduleRass(const SelectionList &selections, int buffer_pairs)
{
    SOFA_ASSERT(buffer_pairs > 0);
    ScheduleResult res;

    // Remaining needs per query, and per-key needing-query counts
    // (the bitmask-indexed ID buffer of Fig. 15).
    std::vector<std::unordered_set<int>> need(selections.size());
    std::unordered_map<int, std::int64_t> popularity;
    for (std::size_t q = 0; q < selections.size(); ++q) {
        for (int key : selections[q]) {
            need[q].insert(key);
            ++popularity[key];
        }
    }

    while (!popularity.empty()) {
        // Greedy phase packing: most-shared keys first.
        std::vector<std::pair<int, std::int64_t>> order(
            popularity.begin(), popularity.end());
        std::sort(order.begin(), order.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second != b.second)
                          return a.second > b.second;
                      return a.first < b.first;
                  });

        std::vector<int> phase;
        std::unordered_set<int> served_queries;
        for (const auto &[key, pop] : order) {
            if (static_cast<int>(phase.size()) == buffer_pairs)
                break;
            phase.push_back(key);
            for (std::size_t q = 0; q < need.size(); ++q)
                if (need[q].count(key))
                    served_queries.insert(static_cast<int>(q));
        }

        // Fill remaining slots with keys exclusive to unserved
        // queries (the paper's secondary rule); with popularity
        // ordering the loop above already covers this, but exclusive
        // keys of unserved queries get priority over leftovers.
        if (static_cast<int>(phase.size()) < buffer_pairs) {
            for (std::size_t q = 0;
                 q < need.size() &&
                 static_cast<int>(phase.size()) < buffer_pairs;
                 ++q) {
                if (served_queries.count(static_cast<int>(q)))
                    continue;
                for (int key : need[q]) {
                    if (std::find(phase.begin(), phase.end(), key) ==
                        phase.end()) {
                        phase.push_back(key);
                        if (static_cast<int>(phase.size()) ==
                            buffer_pairs)
                            break;
                    }
                }
            }
        }

        // Execute the phase: every query consumes all present needs.
        for (int key : phase) {
            res.vectorLoads += 2;
            for (auto &n : need)
                n.erase(key);
            popularity.erase(key);
        }
        // Recompute popularity (some keys fully consumed above).
        popularity.clear();
        for (const auto &n : need)
            for (int key : n)
                ++popularity[key];

        ++res.phases;
        res.phaseKeys.push_back(std::move(phase));
    }
    return res;
}

std::int64_t
distinctKeyLoads(const SelectionList &selections)
{
    std::set<int> keys;
    for (const auto &sel : selections)
        keys.insert(sel.begin(), sel.end());
    return static_cast<std::int64_t>(keys.size());
}

} // namespace sofa
