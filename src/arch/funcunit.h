/**
 * @file
 * Hardware function units of the SU-FA engine (Table III: 128 EXP
 * units, 128 DIV units; Section IV-D): fixed-latency approximations
 * of e^x and 1/x as an ASIC implements them, with measurable error
 * so the architecture's numerical story can be validated end to end.
 *
 * EXP: e^x = 2^(x*log2 e); split x*log2(e) into integer exponent and
 * fraction; the fractional 2^f on [0,1) is a piecewise-linear table
 * (the classic LUT+interpolation exp unit). Softmax only ever needs
 * x <= 0 (inputs are max-subtracted), which bounds the unit's range.
 *
 * DIV: reciprocal by Newton-Raphson on a normalized mantissa with a
 * linear initial guess; two iterations give ~24 bits, one gives ~12
 * (enough for the 16-bit datapath).
 *
 * Units: fixed latency in cycles per operation; accuracy is
 * relative error on the 16-bit datapath (bounded inputs: softmax
 * feeds x <= 0 into EXP).
 */

#ifndef SOFA_ARCH_FUNCUNIT_H
#define SOFA_ARCH_FUNCUNIT_H

#include <cstdint>

namespace sofa {

/** Piecewise-linear exponential unit. */
class ExpUnit
{
  public:
    /**
     * @param segments LUT segments for 2^f on [0,1) (power of two)
     * @param latency pipeline depth in cycles
     */
    explicit ExpUnit(int segments = 16, int latency = 2);

    /** Approximate e^x for x <= 0 (softmax's operating range);
     * positive inputs are clamped to 0 (exp -> 1). */
    double compute(double x) const;

    /** Worst-case relative error over the operating range,
     * measured by dense sweep. */
    double maxRelativeError(double x_min = -20.0) const;

    int latencyCycles() const { return latency_; }

  private:
    int segments_;
    int latency_;
};

/** Newton-Raphson reciprocal unit. */
class DivUnit
{
  public:
    /**
     * @param iterations Newton-Raphson refinement steps
     * @param latency pipeline depth in cycles per iteration
     */
    explicit DivUnit(int iterations = 2, int latency = 3);

    /** Approximate 1/x for x > 0 (softmax denominators). */
    double reciprocal(double x) const;

    /** a / b via a * reciprocal(b). */
    double divide(double a, double b) const;

    double maxRelativeError() const;

    int latencyCycles() const { return iterations_ * latency_; }

  private:
    int iterations_;
    int latency_;
};

/**
 * Softmax-path error analysis: run a full row softmax through the
 * hardware units and report the max absolute probability error vs
 * the exact computation — the figure of merit for the AP module's
 * numerical adequacy.
 */
double hardwareSoftmaxError(const ExpUnit &exp_unit,
                            const DivUnit &div_unit,
                            const float *scores, int n);

} // namespace sofa

#endif // SOFA_ARCH_FUNCUNIT_H
