/**
 * @file
 * Tiled & out-of-order computation controller (Fig. 11, module 4/5):
 * an explicit tile-level schedule of the four-stage cross-stage
 * pipeline (DLZS predict -> SADS sort -> KV generation -> SU-FA
 * formal compute). Produces a per-tile event trace — start/finish
 * cycles per stage — from which total latency, per-stage utilization
 * and an ASCII Gantt timeline are derived.
 *
 * The closed-form model in accelerator.cc (max-stage + amortized
 * fill) is the steady-state limit of this schedule; the integration
 * tests cross-validate the two.
 *
 * Units: abstract per-tile stage cycles (StageCosts.perTile), the
 * same scale the closed-form accelerator model uses; utilizations
 * are fractions of the makespan.
 */

#ifndef SOFA_ARCH_CONTROLLER_H
#define SOFA_ARCH_CONTROLLER_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sofa {

/** Pipeline stages in dataflow order. */
enum class Stage { Predict = 0, Sort = 1, KvGen = 2, Formal = 3 };

constexpr int kNumStages = 4;

/** Human-readable stage name. */
const char *stageName(Stage s);

/** One stage execution of one tile. */
struct TileEvent
{
    int tile = 0;
    Stage stage = Stage::Predict;
    double startCycle = 0.0;
    double endCycle = 0.0;

    double duration() const { return endCycle - startCycle; }
};

/** The complete schedule of a workload's tiles. */
struct ScheduleTrace
{
    std::vector<TileEvent> events;
    double totalCycles = 0.0;
    std::array<double, kNumStages> stageBusy{};

    /** Busy fraction of a stage's engine over the whole schedule. */
    double utilization(Stage s) const;

    /** Events of one tile, in stage order. */
    std::vector<TileEvent> tileEvents(int tile) const;

    /**
     * ASCII Gantt chart: one row per stage, time quantized into
     * @p width columns, '#' where the stage is busy.
     */
    std::string gantt(int width = 64) const;
};

/** Per-tile stage costs in cycles. */
struct StageCosts
{
    std::array<double, kNumStages> perTile{};
};

/**
 * The controller's scheduling policy.
 *
 * - pipelined: stages of different tiles overlap (cross-stage
 *   coordinated tiling); otherwise each stage processes every tile
 *   before the next stage starts (the whole-stage serialization of
 *   traditional accelerators).
 * - rowBarrier: the sort stage cannot start until prediction has
 *   finished ALL tiles (the whole-row dependency of vanilla top-k);
 *   downstream stages pipeline normally afterwards.
 */
class TiledController
{
  public:
    explicit TiledController(bool pipelined = true,
                             bool row_barrier = false)
        : pipelined_(pipelined), rowBarrier_(row_barrier)
    {}

    bool pipelined() const { return pipelined_; }
    bool rowBarrier() const { return rowBarrier_; }

    /** Build the schedule for @p tiles tiles with the given costs. */
    ScheduleTrace schedule(int tiles, const StageCosts &costs) const;

  private:
    bool pipelined_;
    bool rowBarrier_;
};

} // namespace sofa

#endif // SOFA_ARCH_CONTROLLER_H
