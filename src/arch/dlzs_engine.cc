#include "arch/dlzs_engine.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"

namespace sofa {

DlzsEngine::DlzsEngine(DlzsEngineConfig cfg, OpEnergies energies)
    : cfg_(cfg), energies_(energies)
{
    SOFA_ASSERT(cfg_.arrayRows > 0 && cfg_.arrayCols > 0);
    SOFA_ASSERT(cfg_.lzeUnits > 0);
}

double
DlzsEngine::throughputPerCycle()const
{
    return static_cast<double>(cfg_.arrayRows) * cfg_.arrayCols;
}

EngineCost
DlzsEngine::kPrediction(std::int64_t seq, std::int64_t token_dim,
                        std::int64_t head_dim, double zero_frac) const
{
    SOFA_ASSERT(zero_frac >= 0.0 && zero_frac < 1.0);
    EngineCost cost;
    const double work = static_cast<double>(seq) * token_dim *
                        head_dim * (1.0 - zero_frac);
    // Systolic fill: rows + cols cycles once per tile of output rows.
    const double fill = cfg_.arrayRows + cfg_.arrayCols;
    const double tiles = static_cast<double>(
        ceilDiv(seq, cfg_.arrayRows));
    cost.cycles = work / throughputPerCycle() + fill * tiles;

    // One shift + one int16 add per retired operation.
    cost.energyPj = work * (energies_.shift + energies_.addI16);
    return cost;
}

EngineCost
DlzsEngine::aPrediction(std::int64_t queries, std::int64_t seq,
                        std::int64_t head_dim, double zero_frac) const
{
    SOFA_ASSERT(zero_frac >= 0.0 && zero_frac < 1.0);
    EngineCost cost;

    // LZE pass over Q (one element per LZE per cycle, 16-bit mode).
    const double encodes =
        static_cast<double>(queries) * head_dim;
    cost.cycles += encodes / cfg_.lzeUnits;
    // Two chained 8-bit LZC compares per encode.
    cost.energyPj += encodes * 16.0 * energies_.cmp;

    const double work = static_cast<double>(queries) * seq * head_dim *
                        (1.0 - zero_frac);
    const double fill = cfg_.arrayRows + cfg_.arrayCols;
    const double tiles = static_cast<double>(
        ceilDiv(std::max<std::int64_t>(queries, 1), cfg_.arrayRows));
    cost.cycles += work / throughputPerCycle() + fill * tiles;
    cost.energyPj += work * (energies_.shift + energies_.addI32);
    return cost;
}

} // namespace sofa
