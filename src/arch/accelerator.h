/**
 * @file
 * Top-level SOFA accelerator simulator (Fig. 11): the tiled &
 * out-of-order computation controller drives the numbered dataflow
 *   (1) fetch tokens/weights -> (2) DLZS predicts K-hat and A-hat per
 *   tile -> (3) SADS picks top-k -> (4/5) mask back to the fetcher ->
 *   (6) on-demand KV generation -> (7) SU-FA formal compute ->
 *   (8) outputs to DRAM,
 * with the stages overlapped tile by tile (cross-stage coordinated
 * tiling). The simulator produces cycles, per-module energy, and DRAM
 * traffic; feature flags let each mechanism be ablated to reproduce
 * the Fig. 19-21 breakdowns.
 *
 * Units: cycles at 1 GHz (so timeNs == cycles), energy in pJ
 * (core+SRAM vs DRAM split), DRAM traffic in bytes, throughput in
 * GOPS and efficiency in GOPS/W.
 */

#ifndef SOFA_ARCH_ACCELERATOR_H
#define SOFA_ARCH_ACCELERATOR_H

#include <cstdint>
#include <string>

#include "arch/dlzs_engine.h"
#include "arch/dram.h"
#include "arch/kv_engine.h"
#include "arch/rass.h"
#include "arch/sads_engine.h"
#include "arch/sram.h"
#include "arch/sufa_engine.h"
#include "common/stats.h"
#include "energy/area_model.h"

namespace sofa {

/** Feature toggles for ablation (Figs. 19-21). */
struct SofaFeatures
{
    bool dlzsPrediction = true;  ///< off: 4-bit multiplier prediction
    bool sadsSorting = true;     ///< off: whole-row vanilla sorting
    bool sufaOrdering = true;    ///< off: sparse FA-2 formal compute
    bool rassScheduling = true;  ///< off: naive in-order KV loads
    bool tiledPipeline = true;   ///< off: serialize stages, spill
    bool onDemandKv = true;      ///< off: generate all S keys
};

/** Accelerator configuration. */
struct SofaConfig
{
    double frequencyGhz = 1.0;
    int parallelQueries = 128;   ///< queries in flight (PE lines)
    int tileBc = 16;             ///< Bc: keys per pipeline tile
    double topkFrac = 0.2;
    int kvBufferPairs = 64;      ///< selected-KV buffer capacity
    SofaFeatures features;

    DlzsEngineConfig dlzs;
    SadsEngineConfig sads;
    KvEngineConfig kv;
    SufaEngineConfig sufa;

    std::int64_t tokenSramBytes = 192 * 1024;
    std::int64_t weightSramBytes = 96 * 1024;
    std::int64_t tempSramBytes = 28 * 1024;
    DramConfig dram = DramConfig::hbm2();
};

/** One attention workload (shapes only; the arch layer is analytic
 * over shapes, the value-level behaviour lives in core/pipeline). */
struct AttentionShape
{
    std::int64_t queries = 128; ///< T
    std::int64_t seq = 2048;    ///< S
    int headDim = 64;           ///< d
    int heads = 1;              ///< run the slice per head
    int tokenDim = 128;         ///< token feature width for KV gen
    /**
     * Fraction of distinct keys needed by at least one query (drives
     * on-demand KV and RASS; 1.0 = every key needed by someone).
     */
    double keyCoverage = 0.95;
    /** Average KV reuse: queries sharing each loaded key. */
    double kvSharing = 4.0;
    /** SU-FA max-misprediction rate from the DLZS error profile. */
    double violationRate = 0.02;
};

/** Simulation outcome. */
struct SimResult
{
    double cycles = 0.0;
    double timeNs = 0.0;
    double energyPj = 0.0;       ///< core + SRAM energy
    double dramEnergyPj = 0.0;
    double dramBytes = 0.0;
    double effectiveGops = 0.0;  ///< useful attention ops / time
    double gopsPerWatt = 0.0;    ///< device-level energy efficiency
    double utilization = 0.0;    ///< PE busy fraction
    StatGroup stats{"sofa"};

    /** Useful (dense-equivalent) operations of the slice. */
    double usefulOps = 0.0;
};

/** The SOFA accelerator. */
class SofaAccelerator
{
  public:
    explicit SofaAccelerator(SofaConfig cfg = {});

    const SofaConfig &config() const { return cfg_; }

    /** Simulate one multi-head attention slice. */
    SimResult run(const AttentionShape &shape) const;

    /** Peak MAC throughput in GOPS (for Table II style reporting). */
    double peakGops() const;

  private:
    SofaConfig cfg_;
    DlzsEngine dlzsEngine_;
    SadsEngine sadsEngine_;
    KvEngine kvEngine_;
    SufaEngine sufaEngine_;
};

} // namespace sofa

#endif // SOFA_ARCH_ACCELERATOR_H
