#include "arch/sufa_engine.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"

namespace sofa {

SufaEngine::SufaEngine(SufaEngineConfig cfg, OpEnergies energies)
    : cfg_(cfg), energies_(energies)
{
    SOFA_ASSERT(cfg_.lines > 0 && cfg_.macsPerLine > 0);
    SOFA_ASSERT(cfg_.expUnits > 0 && cfg_.divUnits > 0);
}

double
SufaEngine::macThroughputPerCycle() const
{
    return static_cast<double>(cfg_.lines) * cfg_.macsPerLine;
}

EngineCost
SufaEngine::attention(std::int64_t queries, std::int64_t kept,
                      std::int64_t head_dim, SufaOrder order,
                      double violation_rate) const
{
    SOFA_ASSERT(violation_rate >= 0.0 && violation_rate <= 1.0);
    EngineCost cost;
    const double n = static_cast<double>(std::max<std::int64_t>(
        kept, 0));
    const double T = static_cast<double>(queries);
    const double d = static_cast<double>(head_dim);

    // MAC work: QK^T over kept keys plus score x V. The two output-
    // stationary systolic arrays (SA-1 for QK^T, SA-2 for score x V,
    // Fig. 14) run concurrently with the AP module between them, so
    // the streams overlap: cycle count follows one stream, energy
    // both.
    const double macs = 2.0 * T * n * d;
    const double waves = static_cast<double>(
        ceilDiv(std::max<std::int64_t>(queries, 1), cfg_.lines));
    const double fill = cfg_.lines + cfg_.macsPerLine;
    const double mac_cycles = (macs / 2.0) / macThroughputPerCycle() +
                              fill * waves;

    // Exponential stream: one exp per kept element; the ascending
    // order adds the per-element l rescale multiply (Eq. (1) of
    // Fig. 10); violations trigger the mode-1 fallback (one extra
    // exp plus the l multiply) each.
    double exps = T * n;
    double rescale_muls = 0.0;
    if (order == SufaOrder::Ascending)
        rescale_muls += T * n;
    const double violations = violation_rate * T * n;
    exps += violations;
    rescale_muls += violations;

    const double exp_cycles = exps / cfg_.expUnits;
    // Final normalization: one div per line + d muls.
    const double div_cycles = T / cfg_.divUnits;

    // The two SAs and the AP module are pipelined (Fig. 14): overall
    // cycles are the max of the streams plus the serial normalize.
    cost.cycles = std::max(mac_cycles, exp_cycles) + div_cycles;

    cost.energyPj = macs * (energies_.mulI16 + energies_.addI32) +
                    exps * energies_.expUnit +
                    rescale_muls * energies_.mulI16 +
                    T * n * energies_.cmp + // max-ensure compares
                    T * (energies_.divUnit + d * energies_.mulI16);
    return cost;
}

EngineCost
SufaEngine::attentionFa2(std::int64_t queries, std::int64_t kept,
                         std::int64_t head_dim, int block_cols) const
{
    SOFA_ASSERT(block_cols > 0);
    EngineCost cost;
    const double n = static_cast<double>(std::max<std::int64_t>(
        kept, 0));
    const double T = static_cast<double>(queries);
    const double d = static_cast<double>(head_dim);
    const double tiles = static_cast<double>(ceilDiv(
        std::max<std::int64_t>(kept, 1), block_cols));

    const double macs = 2.0 * T * n * d;
    const double waves = static_cast<double>(
        ceilDiv(std::max<std::int64_t>(queries, 1), cfg_.lines));
    const double fill = cfg_.lines + cfg_.macsPerLine;
    // Without the folded tile-synchronization circuit of the SU-FA
    // engine (Fig. 14), every tile boundary drains and refills the
    // systolic pipeline while the running max is refreshed.
    const double mac_cycles = (macs / 2.0) / macThroughputPerCycle() +
                              fill * waves * tiles;

    // FA-2 pays the max-refresh path every tile (it cannot predict
    // which tile moves the max): 1 exp + 1 mul on l per tile, plus
    // the per-element exps and rowmax comparisons.
    const double exps = T * (n + tiles);
    const double rescale_muls = T * tiles;
    const double exp_cycles = exps / cfg_.expUnits;
    const double div_cycles = T / cfg_.divUnits;

    cost.cycles = std::max(mac_cycles, exp_cycles) + div_cycles;
    cost.energyPj = macs * (energies_.mulI16 + energies_.addI32) +
                    exps * energies_.expUnit +
                    rescale_muls * energies_.mulI16 +
                    T * n * energies_.cmp +
                    T * (energies_.divUnit + d * energies_.mulI16);
    return cost;
}

} // namespace sofa
