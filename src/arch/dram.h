/**
 * @file
 * Off-chip memory model: a bandwidth-limited channel with per-bit
 * access energy. Two presets cover the paper's settings — DDR4
 * (25.6 GB/s, the Section II-D comparison) and HBM2 with 16 channels
 * at 2 GHz (the SOFA configuration of Table III).
 *
 * Units: traffic in bytes, time in ns (latency + bytes/bandwidth),
 * energy in pJ per bit. Bandwidth presets are aggregate GB/s.
 */

#ifndef SOFA_ARCH_DRAM_H
#define SOFA_ARCH_DRAM_H

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "energy/energy_model.h"

namespace sofa {

/** DRAM channel parameters. */
struct DramConfig
{
    std::string name = "HBM2";
    double bandwidthGBs = 307.2; ///< aggregate GB/s
    double latencyNs = 100.0;    ///< first-access latency
    double energyPjPerBit = 12.0;

    static DramConfig ddr4();
    static DramConfig hbm2();
    /** HBM2 throttled to the paper's 59.8 GB/s operating point. */
    static DramConfig hbm2Sofa();
};

/** Traffic/energy/time accounting for one DRAM channel. */
class Dram
{
  public:
    explicit Dram(DramConfig cfg = DramConfig::hbm2());

    const DramConfig &config() const { return cfg_; }

    /** Record a read; returns transfer time in nanoseconds. */
    double read(double bytes);

    /** Record a write; returns transfer time in nanoseconds. */
    double write(double bytes);

    double bytesRead() const { return bytesRead_; }
    double bytesWritten() const { return bytesWritten_; }
    double totalBytes() const { return bytesRead_ + bytesWritten_; }

    /** Pure transfer time for @p bytes at configured bandwidth. */
    double transferNs(double bytes) const;

    /** Total access energy so far (pJ). */
    double energyPj() const;

    /** Average bandwidth demand (GB/s) over an execution time. */
    double demandGBs(double exec_ns) const;

    void report(StatGroup &stats) const;
    void reset();

  private:
    DramConfig cfg_;
    double bytesRead_ = 0.0;
    double bytesWritten_ = 0.0;
};

} // namespace sofa

#endif // SOFA_ARCH_DRAM_H
