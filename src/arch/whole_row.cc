#include "arch/whole_row.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"

namespace sofa {

WholeRowResult
runWholeRow(const WholeRowConfig &cfg, std::int64_t parallel,
            std::int64_t seq, int head_dim, int heads)
{
    SOFA_ASSERT(parallel > 0 && seq > 0);
    SOFA_ASSERT(cfg.throughputGops > 0.0);

    WholeRowResult res;
    const double T = static_cast<double>(parallel);
    const double S = static_cast<double>(seq);
    const double d = static_cast<double>(head_dim);
    const double A = static_cast<double>(heads);
    const double k = cfg.topkFrac;
    const double B16 = 2.0;

    // The layer processes ALL S query rows; "parallelism" T is how
    // many rows are in flight per wave. Compute covers prediction
    // over every Q-K pair — on a narrow predBits datapath whose
    // multiplier cost shrinks quadratically with width — plus the
    // sparse formal stage over k*S keys.
    const double width = cfg.predBits / 16.0;
    const double pred_ops = 2.0 * S * S * d * A * width * width;
    const double formal_ops = 2.0 * 2.0 * S * (k * S) * d * A;
    const double softmax_ops = 5.0 * S * (k * S) * A;
    res.computeNs =
        (pred_ops + formal_ops + softmax_ops) / cfg.throughputGops;

    // Mandatory traffic: Q in, O out, K/V in. K/V must stream once
    // per wave of T rows unless a head's K and V fit in SRAM
    // alongside the live intermediates.
    const double waves = static_cast<double>(ceilDiv(seq, parallel));
    const double kv_per_head = 2.0 * S * d * B16;
    const double inflight =
        T * S * A * cfg.predBits / 8.0 +
        T * (k * S) * A * cfg.formalBits / 8.0;
    const bool kv_cached =
        kv_per_head + inflight <= static_cast<double>(cfg.sramBytes);
    const double kv_streams = kv_cached ? 1.0 : waves;
    res.mandatoryBytes = (S * d * A + S * d * A) * B16 + // Q and O
                         kv_per_head * A * kv_streams;

    // Whole-row-processing spill: top-k sorting and softmax are
    // row-wise, but the Pre-Atten matrix is produced key-block by
    // key-block; once the in-flight rows' intermediates (all heads)
    // exceed SRAM, Pre-Atten and Atten round-trip through DRAM
    // (store + row-wise load), for every row of the layer.
    if (inflight > static_cast<double>(cfg.sramBytes)) {
        const double pre = S * S * A * cfg.predBits / 8.0;
        const double att = S * (k * S) * A * cfg.formalBits / 8.0;
        res.spillBytes = 2.0 * (pre + att);
    }

    Dram dram(cfg.dram);
    res.memoryNs = dram.read(res.mandatoryBytes + res.spillBytes);
    return res;
}

} // namespace sofa
