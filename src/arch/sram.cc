#include "arch/sram.h"

#include "common/logging.h"

namespace sofa {

Sram::Sram(std::string name, std::int64_t capacity_bytes,
           double bytes_per_cycle)
    : name_(std::move(name)), capacity_(capacity_bytes),
      bytesPerCycle_(bytes_per_cycle)
{
    SOFA_ASSERT(capacity_ > 0);
    SOFA_ASSERT(bytesPerCycle_ > 0.0);
}

double
Sram::read(double bytes)
{
    SOFA_ASSERT(bytes >= 0.0);
    bytesRead_ += bytes;
    return bytes / bytesPerCycle_;
}

double
Sram::write(double bytes)
{
    SOFA_ASSERT(bytes >= 0.0);
    bytesWritten_ += bytes;
    return bytes / bytesPerCycle_;
}

double
Sram::energyPj(const MemEnergies &e) const
{
    return sramEnergyPj(totalBytes(), e);
}

void
Sram::report(StatGroup &stats) const
{
    stats.add(name_ + ".bytes_read", bytesRead_);
    stats.add(name_ + ".bytes_written", bytesWritten_);
}

void
Sram::reset()
{
    bytesRead_ = 0.0;
    bytesWritten_ = 0.0;
}

} // namespace sofa
