#include "arch/fetcher.h"

#include <algorithm>
#include <map>

#include "common/bits.h"
#include "common/logging.h"

namespace sofa {

std::int64_t
TensorRegion::rowAddr(std::int64_t row) const
{
    SOFA_ASSERT(row >= 0 && row < rows);
    return baseAddr + row * rowBytes;
}

DataFetcher::DataFetcher(int banks, int bank_width_bytes,
                         std::int64_t capacity_bytes)
    : banks_(banks), bankWidth_(bank_width_bytes),
      capacity_(capacity_bytes)
{
    SOFA_ASSERT(banks_ > 0);
    SOFA_ASSERT(bankWidth_ > 0);
    SOFA_ASSERT(capacity_ > 0);
}

TensorRegion
DataFetcher::allocate(const std::string &name, std::int64_t rows,
                      std::int64_t row_bytes)
{
    SOFA_ASSERT(rows > 0 && row_bytes > 0);
    TensorRegion t;
    t.name = name;
    t.rows = rows;
    t.rowBytes = row_bytes;
    t.baseAddr = nextFree_;
    if (nextFree_ + t.bytes() > capacity_) {
        fatal("fetcher: allocating %lld bytes for '%s' exceeds the "
              "%lld-byte buffer (%lld already allocated)",
              static_cast<long long>(t.bytes()), name.c_str(),
              static_cast<long long>(capacity_),
              static_cast<long long>(nextFree_));
    }
    nextFree_ += roundUp(t.bytes(), bankWidth_);
    return t;
}

void
DataFetcher::reset()
{
    nextFree_ = 0;
}

int
DataFetcher::bankOf(std::int64_t addr) const
{
    // Row interleaving: consecutive bank-width words go to
    // consecutive banks.
    return static_cast<int>((addr / bankWidth_) % banks_);
}

std::vector<FetchRequest>
DataFetcher::tileRequests(const TensorRegion &t,
                          std::int64_t first_row,
                          std::int64_t row_count) const
{
    SOFA_ASSERT(first_row >= 0 && first_row + row_count <= t.rows);
    std::vector<FetchRequest> reqs;
    reqs.reserve(static_cast<std::size_t>(row_count));
    for (std::int64_t r = first_row; r < first_row + row_count;
         ++r) {
        FetchRequest req;
        req.addr = t.rowAddr(r);
        req.bytes = t.rowBytes;
        req.bank = bankOf(req.addr);
        reqs.push_back(req);
    }
    return reqs;
}

std::vector<FetchRequest>
DataFetcher::gatherRequests(const TensorRegion &t,
                            const std::vector<int> &rows) const
{
    std::vector<FetchRequest> reqs;
    reqs.reserve(rows.size());
    for (int r : rows) {
        FetchRequest req;
        req.addr = t.rowAddr(r);
        req.bytes = t.rowBytes;
        req.bank = bankOf(req.addr);
        reqs.push_back(req);
    }
    return reqs;
}

FetchResult
DataFetcher::issue(const std::vector<FetchRequest> &reqs)
{
    FetchResult res;
    res.requests = static_cast<std::int64_t>(reqs.size());

    // Per request, the transfer occupies its bank for
    // ceil(bytes / bankWidth) cycles; requests to different banks
    // overlap, same-bank requests serialize. Total cycles = max over
    // banks of summed occupancy; conflicts = total - ideal.
    std::map<int, std::int64_t> occupancy;
    for (const auto &r : reqs) {
        res.bytes += r.bytes;
        occupancy[r.bank] += ceilDiv(r.bytes, bankWidth_);
    }
    std::int64_t busiest = 0, total = 0;
    for (const auto &[bank, cyc] : occupancy) {
        busiest = std::max(busiest, cyc);
        total += cyc;
    }
    const std::int64_t ideal = ceilDiv(total, banks_);
    res.cycles = busiest;
    res.conflicts = busiest - ideal;

    stats_.add("requests", static_cast<double>(res.requests));
    stats_.add("bytes", static_cast<double>(res.bytes));
    stats_.add("cycles", static_cast<double>(res.cycles));
    stats_.add("conflict_cycles", static_cast<double>(res.conflicts));
    return res;
}

} // namespace sofa
