/**
 * @file
 * Sorted-Updating FlashAttention (SU-FA) — Section III-C.
 *
 * Classic FlashAttention must refresh the running row max across
 * tiles, paying exponentials and rescales each time the max moves.
 * SU-FA consumes the top-k stage's sorting information instead: the
 * selected keys are processed in *descending* predicted-score order,
 * so the first processed element is (almost always) the true max and
 * the running max never changes — each subsequent element costs one
 * Exp and one Add (Eq. (2) of Fig. 10). The *ascending* order also
 * removes the max search but still pays a rescale multiply per step
 * (Eq. (1)), which is why descending wins (~25% vs traditional FA,
 * ~11% vs ascending).
 *
 * Because the prediction (DLZS) is approximate, the predicted max can
 * be wrong; the max-ensuring circuit (Section IV-D) compares every
 * computed score against the cached max and, on violation, performs a
 * mode-1 rescale exactly like FA-2 would. Correctness therefore never
 * depends on prediction quality, only the op count does.
 *
 * Units: OpCounter exps/muls/adds per *executed* kernel (skipped
 * keys cost nothing); selections are key indices per query row.
 * Assumes selections arrive roughly in descending predicted-score
 * order — violations are counted and repaired, results stay exact.
 */

#ifndef SOFA_CORE_SUFA_H
#define SOFA_CORE_SUFA_H

#include <cstdint>
#include <vector>

#include "attention/opcount.h"
#include "attention/reference.h"
#include "sparsity/topk.h"
#include "tensor/matrix.h"

namespace sofa {

/** Update order of the SU-FA recurrence. */
enum class SufaOrder { Descending, Ascending };

/** SU-FA configuration. */
struct SufaConfig
{
    SufaOrder order = SufaOrder::Descending;
    int blockCols = 16; ///< Bc: selected keys processed per tile
    /**
     * Compute the per-key Q.K inner products with the register-tiled
     * dotBlock kernel (tensor/kernels) instead of a single-
     * accumulator scalar loop. Same op counts; values differ only by
     * float summation order. The scalar path is kept as the measured
     * baseline for the kernel-port speedup in bench_engine.
     */
    bool blockedDot = true;
};

/** SU-FA execution result. */
struct SufaResult
{
    MatF output;            ///< O [T x d]
    OpCounter ops;
    std::int64_t maxViolations = 0; ///< max-ensure fallbacks taken
    std::int64_t tiles = 0;         ///< tiles processed
};

/**
 * Compute sparse attention over the per-row selections with the SU-FA
 * recurrence. Rows are independent and sharded across the thread
 * pool; per-shard op tallies merge with integer addition, so outputs
 * and counts are bit-exact for any thread count.
 *
 * @param q        queries [T x d]
 * @param k        keys    [S x d]
 * @param v        values  [S x d]
 * @param selected per-row kept key indices, ordered by *predicted*
 *                 score descending (as SADS emits them)
 */
SufaResult sufaAttention(const MatF &q, const MatF &k, const MatF &v,
                         const SelectionList &selected,
                         const SufaConfig &cfg = {});

/**
 * SU-FA over the query-row range [row_begin, row_end) only — the
 * work-item granularity the stage engine shards over (batch, head,
 * row-tile). Writes rows of *output (pre-sized [T x d], zeroed) and
 * accumulates into *ops / *violations / *tiles. Per-row behaviour is
 * identical to sufaAttention.
 */
void sufaAttentionRows(const MatF &q, const MatF &k, const MatF &v,
                       const SelectionList &selected,
                       const SufaConfig &cfg, std::size_t row_begin,
                       std::size_t row_end, MatF *output,
                       OpCounter *ops, std::int64_t *violations,
                       std::int64_t *tiles);

/**
 * Sparse FA-2 baseline: same selections, but processed in key order
 * with the full FA-2 running-max machinery (what a dynamic-sparsity
 * accelerator without cross-stage information must do).
 */
SufaResult sparseFlash2(const MatF &q, const MatF &k, const MatF &v,
                        const SelectionList &selected,
                        int block_cols = 16);

/**
 * Closed-form per-row op counts of the three schemes over n kept
 * keys (used for complexity sweeps at sizes too large to execute).
 */
OpCounter sufaAnalyticOps(std::int64_t rows, std::int64_t kept,
                          int head_dim, SufaOrder order);
OpCounter sparseFa2AnalyticOps(std::int64_t rows, std::int64_t kept,
                               int head_dim, int block_cols);

} // namespace sofa

#endif // SOFA_CORE_SUFA_H
