/**
 * @file
 * Stage-structured batched multi-head execution engine. The paper's
 * cross-stage pipeline (DLZS prediction -> SADS top-k -> on-demand
 * KV generation -> SU-FA formal compute, Fig. 6) is expressed as
 * explicit Stage objects run in order over a ModelWorkload's
 * (batch, head) grid. Each stage shards its work items — whole
 * heads for prediction/KV, (head, query-row tile) pairs for SADS
 * and SU-FA — across the common/threadpool: by default through the
 * dynamic `parallelForDynamic` chunk scheduler with units ordered
 * heaviest-first by a cost estimate (ragged batches load-balance),
 * or through the static `parallelFor` split when dynamicSharding is
 * off. Per-unit OpCounter tallies are merged by integer addition in
 * canonical unit order either way, so every result and count is
 * bit-exact for any thread count and schedule, and identical to a
 * per-head `runSofaPipeline` loop.
 *
 * KV-cache decode: a HeadTask's `pastLen` marks keys [0, pastLen)
 * as already resident in the KV cache; the KV stage only charges
 * generation for required keys at index >= pastLen and reports the
 * cache hits in `keysCached`, which is what makes decode steps
 * dramatically cheaper than prefill on the formal-op axis.
 *
 * Two submission granularities: Engine::run executes all stages in
 * order (the whole-run path), while EngineRun exposes the same
 * sequence one step() at a time so a caller — the serve/ scheduler —
 * can hold several runs in flight and interleave their stages on the
 * shared pool (one request's SADS overlapping another's SU-FA).
 * Engine::run is a thin loop over EngineRun, so both paths execute
 * identical per-stage code and stay bit-exact.
 *
 * Units: per-stage OpCounter ops, key counts; quality metrics are
 * fractions (see core/pipeline.h). Cycles/energy live in src/arch.
 */

#ifndef SOFA_CORE_ENGINE_H
#define SOFA_CORE_ENGINE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/tiler.h"
#include "model/model_workload.h"

namespace sofa {

class ThreadPool;

/** Engine configuration on top of the pipeline hyperparameters. */
struct EngineConfig
{
    PipelineConfig pipeline;
    /** Query rows per SADS/SU-FA work item (tile), clamped to each
     * head's actual row count before sharding; smaller tiles expose
     * more parallelism, results never depend on it. */
    int rowTile = 64;
    /**
     * Plan the tile knobs per run with core/tiler: the run's shape
     * (from its task list) and the detected machine descriptor pick
     * the kernel panel/block sizes, the SU-FA row tile, the SADS
     * span and the shard grain via planTiles(). Subject to the
     * SOFA_AUTOTILE=0|1 override (autoTileEnabled). Off (default):
     * rowTile above and the kernels' default tiling apply. Every
     * plannable knob is results-neutral, so both modes are bit-exact
     * vs each other.
     */
    bool autoTile = false;
    /**
     * Explicit tile plan: run every stage under exactly this plan
     * (bench_tiler's per-candidate measurement, the grid
     * bit-exactness property test, and schedulers that planned per
     * request class via planForRequest). Takes precedence over
     * autoTile and rowTile.
     */
    std::optional<TilePlan> fixedPlan;
    /**
     * Shard stage units with the pool's dynamic (work-stealing)
     * scheduler, visiting units heaviest-first by a per-unit cost
     * estimate, instead of one static near-equal split in unit
     * order. Ragged task lists (mixed prefill/decode shapes) keep
     * every participant busy this way. Either setting is bit-exact:
     * per-unit tallies are merged in canonical unit order and unit
     * outputs land in disjoint rows, so results never depend on the
     * schedule.
     */
    bool dynamicSharding = true;
    /** Compute the reference-attention quality metrics (skippable:
     * the dense reference costs more than the sparse pipeline). */
    bool computeQuality = true;
    /** Pool to shard over; nullptr = the process-wide instance. */
    ThreadPool *pool = nullptr;
};

/** One unit of the engine's (batch, head) grid. */
struct HeadTask
{
    const AttentionWorkload *workload = nullptr;
    int batch = 0;
    int head = 0;
    /** Keys [0, pastLen) are already resident in the KV cache. */
    int pastLen = 0;
};

/** Per-head outcome: the single-head pipeline result + identity. */
struct HeadResult
{
    int batch = 0;
    int head = 0;
    PipelineResult result;
    /** Required keys served from the KV cache (decode mode). */
    std::int64_t keysCached = 0;
    /** SU-FA tiles processed (SufaResult.tiles, summed over rows). */
    std::int64_t sufaTiles = 0;
};

/** Aggregate outcome over the whole grid. */
struct EngineResult
{
    std::vector<HeadResult> heads;

    OpCounter predictionOps; ///< DLZS, summed over heads
    OpCounter sortOps;       ///< SADS, summed over heads
    OpCounter formalOps;     ///< KV generation + SU-FA, summed
    OpCounter totalOps() const;

    std::int64_t keysGenerated = 0; ///< on-demand KV rows computed
    std::int64_t keysCached = 0;    ///< required rows found in cache
    std::int64_t maxViolations = 0; ///< SU-FA max-ensure fallbacks

    double meanMassRecall = 0.0;      ///< mean over heads
    double meanTopkRecall = 0.0;      ///< mean over heads
    double meanAccuracyLossPct = 0.0; ///< mean over heads
    double maxOutputRelError = 0.0;   ///< worst head
};

struct EngineState; // per-run scratch shared by the stages

/** One pipeline stage, sharded over the grid by the engine. */
class Stage
{
  public:
    virtual ~Stage() = default;
    virtual const char *name() const = 0;
    virtual void run(EngineState &state) const = 0;
};

/** The stage-structured engine. */
class Engine
{
  public:
    explicit Engine(EngineConfig cfg = {});
    ~Engine();

    const EngineConfig &config() const { return cfg_; }

    /** Stage names in execution order (for reporting). */
    std::vector<std::string> stageNames() const;

    /** Run the grid of a generated ModelWorkload. */
    EngineResult run(const ModelWorkload &mw) const;

    /** Run an explicit (possibly ragged) task list: heads may have
     * different shapes and cache depths. */
    EngineResult run(const std::vector<HeadTask> &tasks) const;

  private:
    friend class EngineRun;

    EngineConfig cfg_;
    std::vector<std::unique_ptr<Stage>> stages_;
};

/**
 * Stage-granular submission: one grid run whose stages are executed
 * one step() at a time. The serving scheduler keeps several
 * EngineRuns in flight so their stages interleave on the shared
 * pool; Engine::run(tasks) itself is `EngineRun(...).finish()`, so
 * the stepped path can never drift from the whole-run path.
 */
class EngineRun
{
  public:
    /** Bind a run to @p engine (which must outlive it). The task
     * list is copied; the workloads the tasks point at must stay
     * alive until the run is finished. */
    EngineRun(const Engine &engine, std::vector<HeadTask> tasks);
    ~EngineRun();

    EngineRun(const EngineRun &) = delete;
    EngineRun &operator=(const EngineRun &) = delete;

    std::size_t stageCount() const;
    /** The tile plan this run executes under: the planner's choice
     * when the config's autoTile is in effect, otherwise the
     * config-derived fixed knobs. */
    const TilePlan &plan() const;
    /** Index of the stage the next step() will execute. */
    std::size_t nextStage() const { return next_; }
    /** Name of that stage; nullptr once every stage has run. */
    const char *nextStageName() const;
    bool done() const;
    /** Execute exactly one stage. Precondition: !done(). */
    void step();
    /** Execute any remaining stages, then assemble the aggregate
     * result. The run is spent afterwards (heads are moved out). */
    EngineResult finish();

    /**
     * Cooperative cancellation: mark task @p i so the remaining
     * stages skip its work (the serving scheduler cancels a
     * deadline-expired request's tasks at a stage-step boundary, so
     * the request stops consuming pool time mid-pipeline). Stages
     * already run are unaffected; the head still occupies slot @p i
     * of the finish() result — with whatever was computed before the
     * cancel — to keep task/result index alignment, and the caller
     * discards it. Results of non-cancelled tasks are bit-identical
     * to a run without any cancellation. Call only between step()s
     * (not concurrently with one).
     */
    void cancel(std::size_t i);
    /** Whether task @p i has been cancelled. */
    bool cancelled(std::size_t i) const;

  private:
    const Engine &engine_;
    std::vector<HeadTask> tasks_;
    std::unique_ptr<EngineState> state_;
    std::size_t next_ = 0;
};

/**
 * Sum/mean per-head results into the grid aggregate (the tail of
 * Engine::run). Public so the serving scheduler can assemble a
 * per-request EngineResult from its own head subset of a
 * co-scheduled run — the sums visit heads in the same order as a
 * standalone run, so the aggregate is bit-identical.
 */
EngineResult aggregateHeadResults(std::vector<HeadResult> heads);

/** Convenience wrapper: one-shot engine run. */
EngineResult runEngine(const ModelWorkload &mw,
                       const EngineConfig &cfg = {});

} // namespace sofa

#endif // SOFA_CORE_ENGINE_H
