/**
 * @file
 * The functional SOFA cross-stage pipeline: DLZS prediction ->
 * SADS top-k -> on-demand KV generation -> SU-FA formal compute,
 * executed tile by tile per Fig. 6. This module is the *algorithmic*
 * pipeline (values, selections, op counts, quality metrics); the
 * cycle/energy behaviour lives in src/arch.
 *
 * Units: per-stage OpCounter ops (prediction / sort / KV / formal);
 * recalls, kept fractions and accuracy loss are fractions. Cycles,
 * energy and bytes live in src/arch, not here.
 */

#ifndef SOFA_CORE_PIPELINE_H
#define SOFA_CORE_PIPELINE_H

#include <cstdint>

#include "attention/opcount.h"
#include "core/dlzs.h"
#include "core/sads.h"
#include "core/sufa.h"
#include "model/workload.h"
#include "sparsity/metrics.h"

namespace sofa {

/** Pipeline configuration: the DSE's hyperparameters live here. */
struct PipelineConfig
{
    double topkFrac = 0.2;  ///< k as a fraction of S
    SadsConfig sads;
    SufaConfig sufa;
};

/** End-to-end functional result plus all quality/cost metrics. */
struct PipelineResult
{
    MatF output;                 ///< sparse attention output [T x d]
    SelectionList selections;    ///< kept key indices per query

    OpCounter predictionOps;     ///< DLZS (both phases)
    OpCounter sortOps;           ///< SADS
    OpCounter formalOps;         ///< KV generation + SU-FA
    OpCounter totalOps() const;

    std::int64_t keysGenerated = 0; ///< on-demand KV rows computed
    std::int64_t maxViolations = 0; ///< SU-FA max-ensure fallbacks

    double topkRecall = 0.0;     ///< vs exact top-k of true scores
    double massRecall = 0.0;     ///< post-softmax covered mass
    double accuracyLossPct = 0.0;
    double outputRelError = 0.0; ///< vs dense reference output
};

/**
 * Run the full SOFA pipeline on a workload.
 *
 * On-demand KV: only keys required by at least one query's selection
 * are projected from tokens (K = x W_k, V = x W_v); their MAC cost is
 * charged to formalOps and `keysGenerated` records the saving vs
 * generating all S rows.
 *
 * This is a thin single-head wrapper over the stage-structured
 * engine (core/engine.h), which is where batching, multi-head
 * sharding and KV-cache decode live.
 */
PipelineResult runSofaPipeline(const AttentionWorkload &w,
                               const PipelineConfig &cfg);

/** Per-row keep count for a fraction of S (k = max(1, round(f*S))). */
int pipelineKeepCount(double topk_frac, int seq);

/** MAC cost of projecting @p keys token rows to both K and V. */
OpCounter kvGenerationOps(std::int64_t keys, std::int64_t token_dim,
                          std::int64_t head_dim);

/**
 * Fill the selection/output quality metrics of a result whose
 * selections and output are already set (shared by the engine's
 * quality stage and the baseline pipeline).
 */
void fillPipelineQuality(const AttentionWorkload &w, int k,
                         PipelineResult &res);

/**
 * Baseline "vanilla dynamic sparsity" pipeline of the ablation in
 * Fig. 17: 4-bit multiplications in pre-compute, whole-row vanilla
 * sorting in top-k, traditional (dense-iteration) FA-2 over the kept
 * set in formal compute, and full KV generation (no on-demand
 * filtering).
 */
PipelineResult runBaselinePipeline(const AttentionWorkload &w,
                                   double topk_frac,
                                   int block_cols = 16);

/**
 * Find the smallest top-k fraction whose accuracy-loss proxy stays
 * within @p loss_percent, via bisection on the workload. Returns the
 * fraction and fills @p result_out (optional) with the pipeline run
 * at that fraction.
 */
double minimalKeepFraction(const AttentionWorkload &w,
                           const PipelineConfig &base_cfg,
                           double loss_percent,
                           PipelineResult *result_out = nullptr);

} // namespace sofa

#endif // SOFA_CORE_PIPELINE_H
