#include "core/ffn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace sofa {

namespace {

double
activate(double v, Activation act)
{
    switch (act) {
      case Activation::Relu:
        return v > 0.0 ? v : 0.0;
      case Activation::Gelu:
        // tanh approximation of GELU.
        return 0.5 * v *
               (1.0 + std::tanh(0.7978845608 *
                                (v + 0.044715 * v * v * v)));
    }
    return v;
}

} // namespace

FfnLayer
makeFfnLayer(Rng &rng, int hidden, int inner, double hot_frac,
             double hot_gain, Activation act)
{
    SOFA_ASSERT(hidden > 0 && inner > 0);
    FfnLayer layer;
    layer.act = act;
    layer.w1 = MatF(hidden, inner);
    layer.w2 = MatF(inner, hidden);
    const double std1 = 1.0 / std::sqrt(hidden);
    const double std2 = 1.0 / std::sqrt(inner);

    // A subset of intermediate neurons gets a larger fan-in, making
    // their activations dominate — the skew the pruning exploits.
    const int hot = std::max(1, static_cast<int>(inner * hot_frac));
    for (int f = 0; f < inner; ++f) {
        const double gain = f < hot ? hot_gain : 1.0;
        for (int h = 0; h < hidden; ++h)
            layer.w1(h, f) =
                static_cast<float>(rng.gaussian(0.0, std1 * gain));
    }
    for (auto &v : layer.w2.data())
        v = static_cast<float>(rng.gaussian(0.0, std2));
    return layer;
}

FfnResult
ffnForward(const FfnLayer &layer, const MatF &x)
{
    SOFA_ASSERT(static_cast<int>(x.cols()) == layer.hidden());
    const std::size_t T = x.rows();
    const std::size_t H = layer.w1.rows();
    const std::size_t F = layer.w1.cols();

    FfnResult res;
    res.output = MatF(T, H, 0.0f);
    res.totalNeurons = static_cast<std::int64_t>(T) *
                       static_cast<std::int64_t>(F);
    res.keptNeurons = res.totalNeurons;

    std::vector<double> hbuf(F);
    for (std::size_t t = 0; t < T; ++t) {
        const float *xt = x.rowPtr(t);
        for (std::size_t f = 0; f < F; ++f) {
            double acc = 0.0;
            for (std::size_t h = 0; h < H; ++h)
                acc += static_cast<double>(xt[h]) * layer.w1(h, f);
            hbuf[f] = activate(acc, layer.act);
        }
        res.ops.mulN(static_cast<std::int64_t>(F * H));
        res.ops.addN(static_cast<std::int64_t>(F * (H - 1)));
        res.ops.expN(static_cast<std::int64_t>(F)); // activation unit

        float *yt = res.output.rowPtr(t);
        for (std::size_t f = 0; f < F; ++f) {
            const double hv = hbuf[f];
            if (hv == 0.0)
                continue;
            for (std::size_t h = 0; h < H; ++h)
                yt[h] += static_cast<float>(hv * layer.w2(f, h));
        }
        res.ops.mulN(static_cast<std::int64_t>(F * H));
        res.ops.addN(static_cast<std::int64_t>(F * H));
    }
    return res;
}

FfnResult
ffnForwardSparse(const FfnLayer &layer, const MatF &x,
                 double keep_frac)
{
    SOFA_ASSERT(keep_frac > 0.0 && keep_frac <= 1.0);
    SOFA_ASSERT(static_cast<int>(x.cols()) == layer.hidden());
    const std::size_t T = x.rows();
    const std::size_t H = layer.w1.rows();
    const std::size_t F = layer.w1.cols();
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(keep_frac * F)));

    FfnResult res;
    res.output = MatF(T, H, 0.0f);
    res.totalNeurons = static_cast<std::int64_t>(T) *
                       static_cast<std::int64_t>(F);

    std::vector<double> hbuf(F);
    std::vector<int> order(F);
    for (std::size_t t = 0; t < T; ++t) {
        const float *xt = x.rowPtr(t);
        // First projection runs dense (its output decides the mask).
        for (std::size_t f = 0; f < F; ++f) {
            double acc = 0.0;
            for (std::size_t h = 0; h < H; ++h)
                acc += static_cast<double>(xt[h]) * layer.w1(h, f);
            hbuf[f] = activate(acc, layer.act);
        }
        res.ops.mulN(static_cast<std::int64_t>(F * H));
        res.ops.addN(static_cast<std::int64_t>(F * (H - 1)));
        res.ops.expN(static_cast<std::int64_t>(F));

        // Top-keep neurons by |h| (selection cost: one pass of
        // threshold comparisons, like SADS' clipping unit).
        std::iota(order.begin(), order.end(), 0);
        std::nth_element(
            order.begin(), order.begin() + (keep - 1), order.end(),
            [&](int a, int b) {
                return std::fabs(hbuf[a]) > std::fabs(hbuf[b]);
            });
        res.ops.cmpN(static_cast<std::int64_t>(F));

        float *yt = res.output.rowPtr(t);
        for (std::size_t i = 0; i < keep; ++i) {
            const int f = order[i];
            const double hv = hbuf[f];
            if (hv == 0.0)
                continue;
            for (std::size_t h = 0; h < H; ++h)
                yt[h] += static_cast<float>(hv * layer.w2(f, h));
        }
        res.ops.mulN(static_cast<std::int64_t>(keep * H));
        res.ops.addN(static_cast<std::int64_t>(keep * H));
        res.keptNeurons += static_cast<std::int64_t>(keep);
    }
    return res;
}

double
calibrateKeepFraction(const FfnLayer &layer, const MatF &probe,
                      double error_budget)
{
    SOFA_ASSERT(error_budget > 0.0);
    FfnResult dense = ffnForward(layer, probe);
    for (double keep = 0.05; keep < 1.0; keep += 0.05) {
        FfnResult sparse = ffnForwardSparse(layer, probe, keep);
        if (relativeError(sparse.output, dense.output) <=
            error_budget) {
            return keep;
        }
    }
    return 1.0;
}

std::vector<double>
calibrateStack(const std::vector<FfnLayer> &stack, const MatF &probe,
               double error_budget)
{
    std::vector<double> keeps;
    keeps.reserve(stack.size());
    for (const auto &layer : stack)
        keeps.push_back(
            calibrateKeepFraction(layer, probe, error_budget));
    return keeps;
}

} // namespace sofa
