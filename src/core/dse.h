/**
 * @file
 * Design-space exploration for SOFA's tiling hyperparameters
 * (Section III-D, Algorithm 1). The space is one tile count Tc per
 * layer (2..32, step 2 -> Bc = S / Tc) plus a global top-k fraction
 * (5%..50%, step 5%). The objective (Eq. 2) is
 *
 *     L(R) = Len + alpha * Lcmp + beta * Lexp
 *
 * with Len an accuracy term (our cross-entropy proxy derived from the
 * uncovered softmax mass), Lcmp the sorting-cost penalty (Eq. 3) and
 * Lexp the SU-FA exponential penalty (Eq. 4).
 *
 * The optimizer is a Gaussian-process Bayesian search with an
 * expected-improvement acquisition maximized over random candidates;
 * grid and random searches are provided as baselines to demonstrate
 * the >= 10^15-point space is intractable exhaustively.
 *
 * Units: dimensionless loss terms (Eq. 2 weights alpha/beta);
 * space sizes are configuration counts. Assumes the paper's grids:
 * Tc in 2..32 step 2 per layer, top-k 5%..50% step 5%.
 */

#ifndef SOFA_CORE_DSE_H
#define SOFA_CORE_DSE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "core/tiler.h"

namespace sofa {

/** One point in the design space. */
struct DsePoint
{
    std::vector<int> tcPerLayer; ///< tile counts, one per layer
    double topkFrac = 0.2;

    /** Flatten to a normalized feature vector for the GP kernel. */
    std::vector<double> features(int tc_max = 32) const;
};

/** Search-space limits. */
struct DseSpace
{
    int layers = 12;
    int tcMin = 2;
    int tcMax = 32;
    int tcStep = 2;
    double topkMin = 0.05;
    double topkMax = 0.50;
    double topkStep = 0.05;

    /** Total number of discrete configurations (may overflow to inf
     * in double for deep models; used for reporting only). */
    double totalConfigurations() const;

    /** Draw a uniformly random valid point. */
    DsePoint randomPoint(Rng &rng) const;
};

/** Objective weights (Eq. 2) — per-model values in Section V-B.1.
 * gamma weights the TileCostModel-backed runtime-tiling term (our
 * extension unifying the DSE with core/tiler); its 0.0 default keeps
 * the paper's two-term objective bit-identical. */
struct DseObjectiveWeights
{
    double alpha = 0.3;
    double beta = 0.35;
    double gamma = 0.0;
};

/**
 * Evaluation callback: maps a point to (Len, Lcmp, Lexp[, Ltile]).
 * The harness provides an implementation backed by the functional
 * pipeline; tests provide synthetic ones.
 */
struct DseEvaluation
{
    double len = 0.0;  ///< accuracy loss term
    double lcmp = 0.0; ///< Eq. 3: sum(Bci * k) / sum(S * k)
    double lexp = 0.0; ///< Eq. 4: sum(S / Bci), normalized
    /** Tiling-cost excess from dseTileCost (0 when unused). */
    double ltile = 0.0;

    double
    objective(const DseObjectiveWeights &w) const
    {
        return len + w.alpha * lcmp + w.beta * lexp +
               w.gamma * ltile;
    }
};

using DseEvaluator = std::function<DseEvaluation(const DsePoint &)>;

/** A visited (point, objective) sample. */
struct DseSample
{
    DsePoint point;
    DseEvaluation eval;
    double objective = 0.0;
};

/** Search trace: best objective after each iteration. */
struct DseResult
{
    DsePoint best;
    double bestObjective = 0.0;
    DseEvaluation bestEval;
    std::vector<double> history; ///< best-so-far per iteration
    std::int64_t evaluations = 0;
};

/** Gaussian-process regression with an RBF kernel (for the BO loop,
 * exposed publicly so it can be unit-tested). */
class GaussianProcess
{
  public:
    explicit GaussianProcess(double length_scale = 0.35,
                             double signal_var = 1.0,
                             double noise_var = 1e-6);

    /** Fit to observations (O(n^3) Cholesky; n stays small). */
    void fit(const std::vector<std::vector<double>> &x,
             const std::vector<double> &y);

    /** Predictive mean and variance at a query point. */
    void predict(const std::vector<double> &x, double *mean,
                 double *variance) const;

    bool fitted() const { return !train_x_.empty(); }

  private:
    double kernel(const std::vector<double> &a,
                  const std::vector<double> &b) const;

    double lengthScale_;
    double signalVar_;
    double noiseVar_;
    std::vector<std::vector<double>> train_x_;
    std::vector<double> alpha_;          ///< K^-1 (y - mean)
    std::vector<std::vector<double>> chol_; ///< Cholesky factor L
    double yMean_ = 0.0;
};

/** Expected improvement of minimizing at predicted (mu, var). */
double expectedImprovement(double mu, double variance, double best);

/**
 * Bayesian-optimization search (Algorithm 1).
 *
 * @param space search space
 * @param weights objective weights
 * @param evaluate objective callback
 * @param iterations sampled points after the initial design
 * @param init_samples random points used to seed the GP
 * @param candidates acquisition candidates per iteration
 */
DseResult bayesianSearch(const DseSpace &space,
                         const DseObjectiveWeights &weights,
                         const DseEvaluator &evaluate,
                         int iterations = 60, int init_samples = 10,
                         int candidates = 256,
                         std::uint64_t seed = 0xD5Eull);

/** Pure random search baseline with the same evaluation budget. */
DseResult randomSearch(const DseSpace &space,
                       const DseObjectiveWeights &weights,
                       const DseEvaluator &evaluate, int iterations,
                       std::uint64_t seed = 0xD5E2ull);

/** Analytic Lcmp (Eq. 3) and Lexp (Eq. 4) for a point. */
double analyticLcmp(const DsePoint &p, int seq);
double analyticLexp(const DsePoint &p, int seq);

/**
 * TileCostModel-backed tiling-cost term (Ltile): mean over layers of
 * the predicted runtime excess of the point's per-layer block size
 * Bc_i = S / Tc_i — interpreted as the SADS span / SU-FA row tile
 * of @p shape — relative to planTiles()'s best plan for the shape.
 * >= 0, with 0 meaning the DSE point's tiling is as fast as the
 * software planner's choice; weight it with
 * DseObjectiveWeights::gamma so the design-space explorer and the
 * runtime tiler optimize one shared model.
 */
double dseTileCost(const DsePoint &p, const TileShape &shape,
                   const TileCostModel &model);

} // namespace sofa

#endif // SOFA_CORE_DSE_H
