#include "core/tiler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace sofa {

namespace {

/** Effective single-core throughput of the SLP-vectorized float
 * loops, per SIMD lane (ops/s). Absolute accuracy is not the
 * contract — consistent relative ordering across plans is. */
constexpr double kOpsPerLane = 2.0e9;

/** DLZS shift/add throughput: the LZ-code inner loops branch per
 * element, so they are largely lane-resistant — one effective rate
 * regardless of SIMD width. */
constexpr double kIntOpsPerSecond = 1.4e9;

/** SADS comparison throughput: the sorter-core chunks and the
 * sphere-search refinement run std::sort over small candidate
 * buffers, so a "comparison" carries heavy constant factors. */
constexpr double kCmpOpsPerSecond = 1.5e8;

/** KV-stage bookkeeping rate (mask build + required-key scan; the
 * generation itself is op-counted, not recomputed). */
constexpr double kBookOpsPerSecond = 5.0e8;

/** Effective memory bandwidth the streamed operands see (B/s). */
constexpr double kBytesPerSecond = 2.5e10;

/** Per-claim overhead of the pool's atomic chunk scheduler plus the
 * closure call (seconds). */
constexpr double kClaimSeconds = 3.0e-7;

double
ceilDiv(double a, double b)
{
    return std::ceil(a / std::max(1.0, b));
}

} // namespace

std::string
TilePlan::describe() const
{
    std::ostringstream os;
    os << "panel=" << panelBytes << ",blockk=" << blockK
       << ",rowtile=" << rowTile << ",sads=" << sadsSpan
       << ",grain=" << shardGrain << ",chunk=" << prefillChunkRows;
    return os.str();
}

bool
parseTilePlan(const std::string &text, TilePlan *out)
{
    TilePlan p;
    int seen = 0;
    std::istringstream is(text);
    std::string field;
    while (std::getline(is, field, ',')) {
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = field.substr(0, eq);
        const std::string val = field.substr(eq + 1);
        char *end = nullptr;
        const long long v = std::strtoll(val.c_str(), &end, 10);
        if (end == val.c_str() || *end != '\0' || v < 0)
            return false;
        if (key == "panel")
            p.panelBytes = static_cast<std::size_t>(v);
        else if (key == "blockk")
            p.blockK = static_cast<std::size_t>(v);
        else if (key == "rowtile")
            p.rowTile = static_cast<int>(v);
        else if (key == "sads")
            p.sadsSpan = static_cast<int>(v);
        else if (key == "grain")
            p.shardGrain = static_cast<int>(v);
        else if (key == "chunk")
            p.prefillChunkRows = static_cast<int>(v);
        else
            return false;
        ++seen;
    }
    if (seen != 6 || p.panelBytes == 0 || p.blockK == 0 ||
        p.blockK % 4 != 0 || p.rowTile < 1 || p.sadsSpan < 1 ||
        p.shardGrain < 1)
        return false;
    *out = p;
    return true;
}

TileShape
tileShape(const ModelWorkloadSpec &spec, double topk_frac)
{
    TileShape s;
    s.headTasks = spec.batch * spec.heads;
    s.rowsPerHead = spec.queryRows();
    s.contextLen = spec.contextLen();
    s.headDim = spec.headDim;
    s.tokenDim = spec.tokenDim;
    s.pastLen = spec.isDecode() ? spec.pastLen : 0;
    s.topkFrac = topk_frac;
    return s;
}

TileCostModel::TileCostModel(MachineDescriptor m) : m_(m)
{
    SOFA_ASSERT(m_.cores >= 1 && m_.simdLanes >= 1);
}

TileCostModel::TileCostModel() : TileCostModel(detectMachine()) {}

double
TileCostModel::shardSeconds(double work_seconds, double chunks,
                            int grain) const
{
    if (chunks <= 0.0 || work_seconds <= 0.0)
        return 0.0;
    const double g = std::max(1, grain);
    const double claims = ceilDiv(chunks, g);
    // Each claim costs its chunk-group's work plus the scheduler
    // grab; claims round-robin the cores, so the makespan is the
    // per-claim cost times the number of rounds. Coarse grain trades
    // fewer grabs for worse tail imbalance — exactly the knob.
    const double per_claim =
        (work_seconds / chunks) * g + kClaimSeconds;
    return ceilDiv(claims, m_.cores) * per_claim;
}

double
TileCostModel::dlzsSeconds(const TileShape &s) const
{
    // Per head: the K-hat prediction (S x tokenDim x d shift/adds)
    // plus the A-hat prediction (rows x S x d), both in the branchy
    // LZ-code domain.
    const double S = s.contextLen, d = s.headDim;
    const double ops =
        S * s.tokenDim * d + s.rowsPerHead * S * d;
    const double w = s.headTasks * ops / kIntOpsPerSecond;
    return shardSeconds(w, s.headTasks, 1);
}

double
TileCostModel::sadsSeconds(const TilePlan &p, const TileShape &s) const
{
    const double S = s.contextLen;
    const double rows = s.rowsPerHead;
    const double k = std::max(1.0, s.topkFrac * S);
    // Per row: the clip filter plus sorter-core passes sweep the
    // S-wide score row (~5 cmps per element including the 16-to-4
    // comparators), and the sphere-search refinement re-sorts the
    // k-sized candidate sets a bounded number of times.
    double per_row =
        S * 5.0 + 8.0 * k * std::log2(k + 2.0);
    // The score row itself should stay L1-resident across sweeps.
    if (S * 4.0 > static_cast<double>(m_.l1Bytes))
        per_row *= 1.3;
    // A span's worth of rows should stay inside private L2.
    if (static_cast<double>(p.sadsSpan) * S * 4.0 >
        static_cast<double>(m_.l2Bytes))
        per_row *= 1.2;
    const double w =
        s.headTasks * rows * per_row / kCmpOpsPerSecond;
    const double chunks =
        s.headTasks * ceilDiv(rows, p.sadsSpan);
    return shardSeconds(w, chunks, p.shardGrain);
}

double
TileCostModel::kvSeconds(const TileShape &s) const
{
    // The engine's KV stage is cache bookkeeping: it builds the
    // required-key mask from the selections (rows x k), scans it
    // against pastLen, and charges the generation to the OpCounter
    // without recomputing projections — so time scales with the
    // mask, not with tokenDim x headDim.
    const double S = s.contextLen;
    const double k = std::max(1.0, s.topkFrac * S);
    const double ops = s.rowsPerHead * k + 2.0 * S;
    const double w = s.headTasks * ops / kBookOpsPerSecond;
    return shardSeconds(w, s.headTasks, 1);
}

double
TileCostModel::sufaSeconds(const TilePlan &p, const TileShape &s) const
{
    const double S = s.contextLen, d = s.headDim;
    const double rows = s.rowsPerHead;
    const double k = std::max(1.0, s.topkFrac * S);
    // Per row: Q.K^T and A.V over the k selected keys plus the
    // streaming-softmax bookkeeping.
    double per_row = k * (4.0 * d + 8.0);
    // Selected K/V rows are gathered, so the row's working set is
    // k * d floats twice over.
    if (k * d * 8.0 > static_cast<double>(m_.l2Bytes))
        per_row *= 1.25;
    // The head's whole K/V should fit its share of the LLC.
    if (S * d * 8.0 * s.headTasks >
        static_cast<double>(m_.llcBytes))
        per_row *= 1.15;
    // dotBlock's eight double lanes recover part of the SIMD width;
    // the scalar fallback is about half kOpsPerLane effective.
    const double eff =
        kOpsPerLane * std::max(0.5, m_.simdLanes / 4.0);
    const double w = s.headTasks * rows * per_row / eff;
    const double chunks = s.headTasks * ceilDiv(rows, p.rowTile);
    return shardSeconds(w, chunks, p.shardGrain);
}

double
TileCostModel::planSeconds(const TilePlan &p, const TileShape &s) const
{
    return dlzsSeconds(s) + sadsSeconds(p, s) + kvSeconds(s) +
           sufaSeconds(p, s);
}

double
TileCostModel::matmulNTSeconds(std::size_t m, std::size_t n,
                               std::size_t k,
                               std::size_t panel_bytes) const
{
    const double M = static_cast<double>(m);
    const double N = static_cast<double>(n);
    const double K = static_cast<double>(k);
    const double row_bytes = std::max(1.0, K) * 4.0;
    double panel_rows = std::floor(
        static_cast<double>(panel_bytes) / row_bytes);
    panel_rows = std::min(512.0, std::max(16.0, panel_rows));
    const double compute =
        2.0 * M * N * K / (kOpsPerLane * m_.simdLanes * 2.0);
    // A is re-streamed once per B panel; an over-L2 panel loses
    // residency and refetches B rows per A row.
    const double sweeps = ceilDiv(N, panel_rows);
    const double a_traffic = M * K * 4.0 * sweeps;
    double b_traffic = N * K * 4.0;
    if (panel_rows * row_bytes > static_cast<double>(m_.l2Bytes))
        b_traffic *= std::max(1.0, M / 8.0);
    const double c_traffic = M * N * 4.0;
    return compute +
           (a_traffic + b_traffic + c_traffic) / kBytesPerSecond;
}

double
TileCostModel::matmulSeconds(std::size_t m, std::size_t n,
                             std::size_t k,
                             std::size_t block_k) const
{
    const double M = static_cast<double>(m);
    const double N = static_cast<double>(n);
    const double K = static_cast<double>(k);
    const double bk = std::max<std::size_t>(1, block_k);
    const double compute =
        2.0 * M * N * K / (kOpsPerLane * m_.simdLanes * 2.0);
    // The C row is re-read and re-written once per k block; an
    // over-L2 B block loses residency across the row sweep.
    const double blocks = ceilDiv(K, bk);
    const double c_traffic = 2.0 * M * N * 4.0 * blocks;
    double b_traffic = K * N * 4.0;
    if (bk * N * 4.0 > static_cast<double>(m_.l2Bytes))
        b_traffic *= std::max(1.0, M / 8.0);
    const double a_traffic = M * K * 4.0;
    return compute +
           (a_traffic + b_traffic + c_traffic) / kBytesPerSecond;
}

std::vector<TilePlan>
tileSearchGrid(const TileShape &shape, const MachineDescriptor &m)
{
    const int rows = std::max(1, shape.rowsPerHead);
    const int row_ladder[] = {4, 8, 16, 32, 64, 128, 256};
    std::vector<int> tiles;
    for (int t : row_ladder) {
        const int c = std::min(t, rows);
        if (std::find(tiles.begin(), tiles.end(), c) == tiles.end())
            tiles.push_back(c);
    }
    const int grains[] = {1, 2, 4};
    const std::size_t blocks[] = {64, 128, 256, 512};
    const std::size_t l2 = std::max<std::size_t>(64 * 1024,
                                                 m.l2Bytes);
    const std::size_t panels[] = {l2 / 4, l2 / 2, l2, 2 * l2};

    std::vector<TilePlan> grid;
    std::set<std::string> seen;
    for (int rt : tiles)
        for (int span : tiles)
            for (int g : grains)
                for (std::size_t bk : blocks)
                    for (std::size_t pb : panels) {
                        TilePlan p;
                        p.rowTile = rt;
                        p.sadsSpan = span;
                        p.shardGrain = g;
                        p.blockK = bk;
                        p.panelBytes = pb;
                        if (seen.insert(p.describe()).second)
                            grid.push_back(p);
                    }
    return grid;
}

TilePlan
planTiles(const TileShape &shape, const TileCostModel &model)
{
    const std::vector<TilePlan> grid =
        tileSearchGrid(shape, model.machine());
    SOFA_ASSERT(!grid.empty());
    // poplibs-style enumerate -> cost -> argmin; strict < keeps the
    // earliest enumeration entry on ties, so the choice is
    // deterministic for a fixed (machine, shape).
    TilePlan best = grid.front();
    double best_cost = model.planSeconds(best, shape);
    for (std::size_t i = 1; i < grid.size(); ++i) {
        const double c = model.planSeconds(grid[i], shape);
        if (c < best_cost) {
            best_cost = c;
            best = grid[i];
        }
    }
    return best;
}

TilePlan
planTiles(const TileShape &shape)
{
    return planTiles(shape, TileCostModel(detectMachine()));
}

namespace {

constexpr int kOverrideUnset = -2;
std::atomic<int> g_autotile_override{kOverrideUnset};

int
envOverride()
{
    const char *env = std::getenv("SOFA_AUTOTILE");
    if (env == nullptr)
        return -1;
    if (std::strcmp(env, "0") == 0)
        return 0;
    if (std::strcmp(env, "1") == 0)
        return 1;
    return -1; // unknown values follow the config flag
}

} // namespace

int
autoTileOverride()
{
    int v = g_autotile_override.load(std::memory_order_relaxed);
    if (v == kOverrideUnset) {
        v = envOverride();
        int expected = kOverrideUnset;
        g_autotile_override.compare_exchange_strong(
            expected, v, std::memory_order_relaxed);
        v = g_autotile_override.load(std::memory_order_relaxed);
    }
    return v;
}

int
setAutoTileOverride(int v)
{
    SOFA_ASSERT(v >= -1 && v <= 1);
    const int prev = autoTileOverride();
    g_autotile_override.store(v, std::memory_order_relaxed);
    return prev;
}

bool
autoTileEnabled(bool cfg_flag)
{
    const int ov = autoTileOverride();
    return ov == -1 ? cfg_flag : ov == 1;
}

} // namespace sofa
