#include "core/dlzs.h"

#include <cmath>

#include "common/bits.h"
#include "common/logging.h"

namespace sofa {

int
LzMatrix::bitsPerElement() const
{
    // sign bit + LZ field wide enough for [0, width]
    int lz_bits = 1;
    while ((1 << lz_bits) < width + 1)
        ++lz_bits;
    return 1 + lz_bits;
}

namespace {

template <typename T>
LzMatrix
lzEncodeImpl(const Matrix<T> &m, int width, OpCounter *ops)
{
    LzMatrix out;
    out.width = width;
    out.codes = Matrix<LzCode>(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.data().size(); ++i) {
        const std::int64_t v = m.data()[i];
        LzCode c;
        if (v == 0) {
            c.sign = 0;
            c.lz = static_cast<std::uint8_t>(width);
        } else {
            c.sign = v < 0 ? -1 : 1;
            c.lz = static_cast<std::uint8_t>(
                leadingZeros(absMagnitude(v), width));
        }
        out.codes.data()[i] = c;
        if (ops)
            ops->cmpN(width); // LZC priority chain examines W bits
    }
    return out;
}

} // namespace

LzMatrix
lzEncodeI8(const MatI8 &m, OpCounter *ops)
{
    return lzEncodeImpl(m, 8, ops);
}

LzMatrix
lzEncodeI16(const MatI16 &m, OpCounter *ops)
{
    return lzEncodeImpl(m, 16, ops);
}

std::int64_t
dlzsProduct(std::int64_t x, int /*x_width*/, LzCode y, int y_width)
{
    if (x == 0 || y.isZero())
        return 0;
    const int exponent = y_width - static_cast<int>(y.lz);
    // Eq. 1c: magnitude |x| << (W - LZy); the -1 keeps the estimate
    // centred: y's mantissa lies in [0.5, 1), so scaling by the full
    // 2^(W-LZy) systematically overestimates by ~1.5x. Hardware uses
    // the shift as-is for the *relative* ranking; we match that.
    std::int64_t mag = shiftLeftSat(std::llabs(x), exponent);
    const int sign = (x < 0) != (y.sign < 0) ? -1 : 1;
    return sign * mag;
}

MatI64
dlzsKPrediction(const MatI8 &tokens, const LzMatrix &wk_lz,
                OpCounter *ops)
{
    SOFA_ASSERT(tokens.cols() == wk_lz.rows());
    SOFA_ASSERT(wk_lz.width == 8);
    const std::size_t S = tokens.rows();
    const std::size_t n = tokens.cols();
    const std::size_t d = wk_lz.cols();

    MatI64 k_hat(S, d, 0);
    for (std::size_t i = 0; i < S; ++i) {
        const std::int8_t *xi = tokens.rowPtr(i);
        for (std::size_t j = 0; j < d; ++j) {
            std::int64_t acc = 0;
            for (std::size_t t = 0; t < n; ++t) {
                const LzCode w = wk_lz.codes(t, j);
                if (xi[t] == 0 || w.isZero()) {
                    if (ops)
                        ops->cmpN(1); // zero-eliminator check
                    continue;
                }
                acc += dlzsProduct(xi[t], 8, w, 8);
                if (ops) {
                    ops->shiftN(1);
                    ops->addN(1);
                }
            }
            k_hat(i, j) = acc;
        }
    }
    return k_hat;
}

MatI64
dlzsAPrediction(const LzMatrix &q_lz, const MatI16 &k_hat,
                OpCounter *ops)
{
    SOFA_ASSERT(q_lz.cols() == k_hat.cols());
    SOFA_ASSERT(q_lz.width == 16);
    const std::size_t T = q_lz.rows();
    const std::size_t S = k_hat.rows();
    const std::size_t d = k_hat.cols();

    MatI64 a_hat(T, S, 0);
    for (std::size_t i = 0; i < T; ++i) {
        for (std::size_t j = 0; j < S; ++j) {
            const std::int16_t *kj = k_hat.rowPtr(j);
            std::int64_t acc = 0;
            for (std::size_t t = 0; t < d; ++t) {
                const LzCode qc = q_lz.codes(i, t);
                if (kj[t] == 0 || qc.isZero()) {
                    if (ops)
                        ops->cmpN(1);
                    continue;
                }
                acc += dlzsProduct(kj[t], 16, qc, 16);
                if (ops) {
                    ops->shiftN(1);
                    ops->addN(1);
                }
            }
            a_hat(i, j) = acc;
        }
    }
    return a_hat;
}

std::int64_t
vanillaLzProduct(std::int64_t x, int x_width, std::int64_t y,
                 int y_width)
{
    if (x == 0 || y == 0)
        return 0;
    const int ex = lzExponent(absMagnitude(x), x_width);
    const int ey = lzExponent(absMagnitude(y), y_width);
    std::int64_t mag = shiftLeftSat(1, ex + ey - 2);
    // -2: one-hot encode each operand at its MSB (2^(e-1) is the
    // value of the leading bit), matching the vanilla LOD scheme that
    // snaps each operand to its leading-one value.
    const int sign = (x < 0) != (y < 0) ? -1 : 1;
    return sign * mag;
}

MatI64
vanillaKPrediction(const MatI8 &tokens, const MatI8 &wk, OpCounter *ops)
{
    SOFA_ASSERT(tokens.cols() == wk.rows());
    const std::size_t S = tokens.rows();
    const std::size_t n = tokens.cols();
    const std::size_t d = wk.cols();

    MatI64 k_hat(S, d, 0);
    for (std::size_t i = 0; i < S; ++i) {
        const std::int8_t *xi = tokens.rowPtr(i);
        for (std::size_t j = 0; j < d; ++j) {
            std::int64_t acc = 0;
            for (std::size_t t = 0; t < n; ++t) {
                const std::int8_t w = wk(t, j);
                if (xi[t] == 0 || w == 0) {
                    if (ops)
                        ops->cmpN(1);
                    continue;
                }
                acc += vanillaLzProduct(xi[t], 8, w, 8);
                if (ops) {
                    // Both operands pass through runtime converters.
                    ops->cmpN(16); // two 8-bit LZCs
                    ops->shiftN(1);
                    ops->addN(1);
                }
            }
            k_hat(i, j) = acc;
        }
    }
    return k_hat;
}

DlzsPrediction
dlzsPredict(const MatF &tokens, const MatF &wk, const MatF &q)
{
    SOFA_ASSERT(tokens.cols() == wk.rows());
    SOFA_ASSERT(q.cols() == wk.cols());

    DlzsPrediction pred;

    // Quantize the runtime operands.
    QuantI8 x_q = quantizeI8(tokens);
    QuantI8 w_q = quantizeI8(wk);
    QuantI16 q_q = quantizeI16(q);

    // Offline weight pre-conversion: not charged to runtime ops, but
    // its DRAM footprint is (5 bits vs 8 per weight).
    LzMatrix wk_lz = lzEncodeI8(w_q.values);
    pred.predictionBitsFetched =
        static_cast<double>(wk_lz.rows()) * wk_lz.cols() *
        wk_lz.bitsPerElement();

    // Phase 1.1: K-hat.
    MatI64 k_acc = dlzsKPrediction(x_q.values, wk_lz, &pred.ops);
    pred.kHat = truncateToI16(k_acc, &pred.kShift);

    // Phase 1.2: A-hat, with Q encoded by the runtime (configurable)
    // LZE in 16-bit mode.
    LzMatrix q_lz = lzEncodeI16(q_q.values, &pred.ops);
    MatI64 a_acc = dlzsAPrediction(q_lz, pred.kHat, &pred.ops);

    // Descale to float so downstream stages see score magnitudes
    // comparable to the exact Q K^T. The DLZS shift substitutes
    // 2^(W-LZ) = y/M for the encoded operand y, with mantissa M in
    // [0.5, 1), so each product overestimates by 1/M; for uniformly
    // distributed operands E[1/M] = ln(2)/0.5 ~ 1.386, the debias
    // divisor applied per encoded phase.
    constexpr double kLzBias = 1.3863;
    const double k_scale = x_q.scale * w_q.scale *
                           std::pow(2.0, pred.kShift) / kLzBias;
    const double a_scale = k_scale * q_q.scale / kLzBias;
    pred.scoresHat = MatF(a_acc.rows(), a_acc.cols());
    for (std::size_t i = 0; i < a_acc.data().size(); ++i) {
        pred.scoresHat.data()[i] =
            static_cast<float>(a_acc.data()[i] * a_scale);
    }
    return pred;
}

} // namespace sofa
