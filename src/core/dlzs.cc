#include "core/dlzs.h"

#include <cmath>
#include <cstddef>

#include "common/bits.h"
#include "common/logging.h"
#include "tensor/simd.h"

#if SOFA_SIMD_COMPILED_AVX2
#include <immintrin.h>
#endif

namespace sofa {

int
LzMatrix::bitsPerElement() const
{
    // sign bit + LZ field wide enough for [0, width]
    int lz_bits = 1;
    while ((1 << lz_bits) < width + 1)
        ++lz_bits;
    return 1 + lz_bits;
}

namespace {

template <typename T>
LzMatrix
lzEncodeImpl(const Matrix<T> &m, int width, OpCounter *ops)
{
    LzMatrix out;
    out.width = width;
    out.codes = Matrix<LzCode>(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.data().size(); ++i) {
        const std::int64_t v = m.data()[i];
        LzCode c;
        if (v == 0) {
            c.sign = 0;
            c.lz = static_cast<std::uint8_t>(width);
        } else {
            c.sign = v < 0 ? -1 : 1;
            c.lz = static_cast<std::uint8_t>(
                leadingZeros(absMagnitude(v), width));
        }
        out.codes.data()[i] = c;
        if (ops)
            ops->cmpN(width); // LZC priority chain examines W bits
    }
    return out;
}

} // namespace

LzMatrix
lzEncodeI8(const MatI8 &m, OpCounter *ops)
{
    return lzEncodeImpl(m, 8, ops);
}

LzMatrix
lzEncodeI16(const MatI16 &m, OpCounter *ops)
{
    return lzEncodeImpl(m, 16, ops);
}

std::int64_t
dlzsProduct(std::int64_t x, int /*x_width*/, LzCode y, int y_width)
{
    if (x == 0 || y.isZero())
        return 0;
    const int exponent = y_width - static_cast<int>(y.lz);
    // Eq. 1c: magnitude |x| << (W - LZy); the -1 keeps the estimate
    // centred: y's mantissa lies in [0.5, 1), so scaling by the full
    // 2^(W-LZy) systematically overestimates by ~1.5x. Hardware uses
    // the shift as-is for the *relative* ranking; we match that.
    std::int64_t mag = shiftLeftSat(std::llabs(x), exponent);
    const int sign = (x < 0) != (y.sign < 0) ? -1 : 1;
    return sign * mag;
}

MatI64
dlzsKPredictionScalar(const MatI8 &tokens, const LzMatrix &wk_lz,
                      OpCounter *ops)
{
    SOFA_ASSERT(tokens.cols() == wk_lz.rows());
    SOFA_ASSERT(wk_lz.width == 8);
    const std::size_t S = tokens.rows();
    const std::size_t n = tokens.cols();
    const std::size_t d = wk_lz.cols();

    MatI64 k_hat(S, d, 0);
    for (std::size_t i = 0; i < S; ++i) {
        const std::int8_t *xi = tokens.rowPtr(i);
        for (std::size_t j = 0; j < d; ++j) {
            std::int64_t acc = 0;
            for (std::size_t t = 0; t < n; ++t) {
                const LzCode w = wk_lz.codes(t, j);
                if (xi[t] == 0 || w.isZero()) {
                    if (ops)
                        ops->cmpN(1); // zero-eliminator check
                    continue;
                }
                acc += dlzsProduct(xi[t], 8, w, 8);
                if (ops) {
                    ops->shiftN(1);
                    ops->addN(1);
                }
            }
            k_hat(i, j) = acc;
        }
    }
    return k_hat;
}

MatI64
dlzsAPredictionScalar(const LzMatrix &q_lz, const MatI16 &k_hat,
                      OpCounter *ops)
{
    SOFA_ASSERT(q_lz.cols() == k_hat.cols());
    SOFA_ASSERT(q_lz.width == 16);
    const std::size_t T = q_lz.rows();
    const std::size_t S = k_hat.rows();
    const std::size_t d = k_hat.cols();

    MatI64 a_hat(T, S, 0);
    for (std::size_t i = 0; i < T; ++i) {
        for (std::size_t j = 0; j < S; ++j) {
            const std::int16_t *kj = k_hat.rowPtr(j);
            std::int64_t acc = 0;
            for (std::size_t t = 0; t < d; ++t) {
                const LzCode qc = q_lz.codes(i, t);
                if (kj[t] == 0 || qc.isZero()) {
                    if (ops)
                        ops->cmpN(1);
                    continue;
                }
                acc += dlzsProduct(kj[t], 16, qc, 16);
                if (ops) {
                    ops->shiftN(1);
                    ops->addN(1);
                }
            }
            a_hat(i, j) = acc;
        }
    }
    return a_hat;
}

#if SOFA_SIMD_COMPILED_AVX2

// The AVX2 prediction bodies work in four-wide int64 lanes: the
// largest magnitude a DLZS product can reach is 2^15 << 16 = 2^31
// (A-prediction with k = INT16_MIN and LZ = 0), which overflows
// int32 but sits comfortably in int64, and vpsllvq gives the
// per-lane variable shift Eq. 1c needs. All accumulation is
// two's-complement addition, so lane order never changes a result:
// the vector paths are bit-identical to the Scalar baselines, and op
// tallies are reconstructed exactly from the zero-lane counts.

namespace {

static_assert(sizeof(LzCode) == 2, "LzCode must pack sign+lz bytes");
static_assert(offsetof(LzCode, sign) == 0 && offsetof(LzCode, lz) == 1,
              "LzCode byte layout assumed by the AVX2 decode");

/** Integer horizontal sum; int64 addition commutes, any order. */
SOFA_TARGET_AVX2 inline std::int64_t
hsumEpi64(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i s = _mm_add_epi64(lo, hi);
    return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
}

/** |x| per int64 lane (values far from INT64_MIN here). */
SOFA_TARGET_AVX2 inline __m256i
absEpi64(__m256i x)
{
    const __m256i neg =
        _mm256_cmpgt_epi64(_mm256_setzero_si256(), x);
    return _mm256_sub_epi64(_mm256_xor_si256(x, neg), neg);
}

/** Negate lanes of @p v where @p flip is all-ones. */
SOFA_TARGET_AVX2 inline __m256i
negateWhere(__m256i v, __m256i flip)
{
    return _mm256_sub_epi64(_mm256_xor_si256(v, flip), flip);
}

/** Four consecutive LzCodes decoded to int64 lanes: sign-negative
 * mask, zero mask (sign == 0), and the lz field zero-extended. */
struct Codes4
{
    __m256i signNeg;
    __m256i zero;
    __m256i lz;
};

SOFA_TARGET_AVX2 inline Codes4
loadCodes4(const LzCode *codes)
{
    const __m128i raw = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(codes));
    const __m128i sign_shuf = _mm_setr_epi8(
        0, 2, 4, 6, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    const __m128i lz_shuf = _mm_setr_epi8(
        1, 3, 5, 7, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    const __m256i sign64 = _mm256_cvtepi8_epi64(
        _mm_shuffle_epi8(raw, sign_shuf));
    Codes4 c;
    c.signNeg =
        _mm256_cmpgt_epi64(_mm256_setzero_si256(), sign64);
    c.zero =
        _mm256_cmpeq_epi64(sign64, _mm256_setzero_si256());
    c.lz = _mm256_cvtepu8_epi64(_mm_shuffle_epi8(raw, lz_shuf));
    return c;
}

SOFA_TARGET_AVX2 inline int
popcountMask4(__m256i lane_mask)
{
    return __builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(lane_mask))));
}

SOFA_TARGET_AVX2 MatI64
dlzsKPredictionAvx2(const MatI8 &tokens, const LzMatrix &wk_lz,
                    OpCounter *ops)
{
    const std::size_t S = tokens.rows();
    const std::size_t n = tokens.cols();
    const std::size_t d = wk_lz.cols();

    MatI64 k_hat(S, d, 0);
    std::int64_t skips = 0;  // zero-eliminated pairs (cmp each)
    std::int64_t active = 0; // shifted-and-accumulated pairs
    const __m256i w_width = _mm256_set1_epi64x(8);
    for (std::size_t i = 0; i < S; ++i) {
        const std::int8_t *xi = tokens.rowPtr(i);
        std::int64_t *acc = k_hat.rowPtr(i);
        // i-t-j order: codes row t is contiguous over j, and int64
        // accumulation into the k_hat row commutes with the scalar
        // baseline's i-j-t order.
        for (std::size_t t = 0; t < n; ++t) {
            const std::int64_t x = xi[t];
            if (x == 0) {
                skips += static_cast<std::int64_t>(d);
                continue;
            }
            const __m256i xmag =
                _mm256_set1_epi64x(x < 0 ? -x : x);
            const __m256i xneg =
                _mm256_set1_epi64x(x < 0 ? -1 : 0);
            const LzCode *row = wk_lz.codes.rowPtr(t);
            std::int64_t zeros_t = 0;
            std::size_t j = 0;
            for (; j + 4 <= d; j += 4) {
                const Codes4 c = loadCodes4(row + j);
                const __m256i exp =
                    _mm256_sub_epi64(w_width, c.lz);
                const __m256i mag =
                    _mm256_sllv_epi64(xmag, exp);
                const __m256i val = _mm256_andnot_si256(
                    c.zero,
                    negateWhere(
                        mag, _mm256_xor_si256(xneg, c.signNeg)));
                const __m256i prev = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(acc + j));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(acc + j),
                    _mm256_add_epi64(prev, val));
                zeros_t += popcountMask4(c.zero);
            }
            std::int64_t act_t =
                static_cast<std::int64_t>(j) - zeros_t;
            for (; j < d; ++j) {
                const LzCode w = row[j];
                if (w.isZero()) {
                    ++zeros_t;
                    continue;
                }
                acc[j] += dlzsProduct(x, 8, w, 8);
                ++act_t;
            }
            skips += zeros_t;
            active += act_t;
        }
    }
    if (ops) {
        ops->cmpN(skips);
        ops->shiftN(active);
        ops->addN(active);
    }
    return k_hat;
}

SOFA_TARGET_AVX2 MatI64
dlzsAPredictionAvx2(const LzMatrix &q_lz, const MatI16 &k_hat,
                    OpCounter *ops)
{
    const std::size_t T = q_lz.rows();
    const std::size_t S = k_hat.rows();
    const std::size_t d = k_hat.cols();

    MatI64 a_hat(T, S, 0);
    std::int64_t skips = 0;
    std::int64_t active = 0;
    const __m256i q_width = _mm256_set1_epi64x(16);
    const __m256i zero = _mm256_setzero_si256();
    for (std::size_t i = 0; i < T; ++i) {
        const LzCode *qrow = q_lz.codes.rowPtr(i);
        for (std::size_t j = 0; j < S; ++j) {
            const std::int16_t *kj = k_hat.rowPtr(j);
            __m256i vacc = zero;
            std::int64_t zeros_ij = 0;
            std::size_t t = 0;
            for (; t + 4 <= d; t += 4) {
                const __m256i k64 =
                    _mm256_cvtepi16_epi64(_mm_loadl_epi64(
                        reinterpret_cast<const __m128i *>(kj +
                                                          t)));
                const Codes4 c = loadCodes4(qrow + t);
                const __m256i kzero =
                    _mm256_cmpeq_epi64(k64, zero);
                const __m256i skip =
                    _mm256_or_si256(kzero, c.zero);
                const __m256i kneg =
                    _mm256_cmpgt_epi64(zero, k64);
                const __m256i exp =
                    _mm256_sub_epi64(q_width, c.lz);
                const __m256i mag =
                    _mm256_sllv_epi64(absEpi64(k64), exp);
                const __m256i val = _mm256_andnot_si256(
                    skip,
                    negateWhere(
                        mag, _mm256_xor_si256(kneg, c.signNeg)));
                vacc = _mm256_add_epi64(vacc, val);
                zeros_ij += popcountMask4(skip);
            }
            std::int64_t acc = hsumEpi64(vacc);
            std::int64_t act_ij =
                static_cast<std::int64_t>(t) - zeros_ij;
            for (; t < d; ++t) {
                const LzCode qc = qrow[t];
                if (kj[t] == 0 || qc.isZero()) {
                    ++zeros_ij;
                    continue;
                }
                acc += dlzsProduct(kj[t], 16, qc, 16);
                ++act_ij;
            }
            a_hat(i, j) = acc;
            skips += zeros_ij;
            active += act_ij;
        }
    }
    if (ops) {
        ops->cmpN(skips);
        ops->shiftN(active);
        ops->addN(active);
    }
    return a_hat;
}

} // namespace

#endif // SOFA_SIMD_COMPILED_AVX2

MatI64
dlzsKPrediction(const MatI8 &tokens, const LzMatrix &wk_lz,
                OpCounter *ops)
{
#if SOFA_SIMD_COMPILED_AVX2
    if (simd::active() == simd::Level::Avx2) {
        SOFA_ASSERT(tokens.cols() == wk_lz.rows());
        SOFA_ASSERT(wk_lz.width == 8);
        return dlzsKPredictionAvx2(tokens, wk_lz, ops);
    }
#endif
    return dlzsKPredictionScalar(tokens, wk_lz, ops);
}

MatI64
dlzsAPrediction(const LzMatrix &q_lz, const MatI16 &k_hat,
                OpCounter *ops)
{
#if SOFA_SIMD_COMPILED_AVX2
    if (simd::active() == simd::Level::Avx2) {
        SOFA_ASSERT(q_lz.cols() == k_hat.cols());
        SOFA_ASSERT(q_lz.width == 16);
        return dlzsAPredictionAvx2(q_lz, k_hat, ops);
    }
#endif
    return dlzsAPredictionScalar(q_lz, k_hat, ops);
}

std::int64_t
vanillaLzProduct(std::int64_t x, int x_width, std::int64_t y,
                 int y_width)
{
    if (x == 0 || y == 0)
        return 0;
    const int ex = lzExponent(absMagnitude(x), x_width);
    const int ey = lzExponent(absMagnitude(y), y_width);
    std::int64_t mag = shiftLeftSat(1, ex + ey - 2);
    // -2: one-hot encode each operand at its MSB (2^(e-1) is the
    // value of the leading bit), matching the vanilla LOD scheme that
    // snaps each operand to its leading-one value.
    const int sign = (x < 0) != (y < 0) ? -1 : 1;
    return sign * mag;
}

MatI64
vanillaKPrediction(const MatI8 &tokens, const MatI8 &wk, OpCounter *ops)
{
    SOFA_ASSERT(tokens.cols() == wk.rows());
    const std::size_t S = tokens.rows();
    const std::size_t n = tokens.cols();
    const std::size_t d = wk.cols();

    MatI64 k_hat(S, d, 0);
    for (std::size_t i = 0; i < S; ++i) {
        const std::int8_t *xi = tokens.rowPtr(i);
        for (std::size_t j = 0; j < d; ++j) {
            std::int64_t acc = 0;
            for (std::size_t t = 0; t < n; ++t) {
                const std::int8_t w = wk(t, j);
                if (xi[t] == 0 || w == 0) {
                    if (ops)
                        ops->cmpN(1);
                    continue;
                }
                acc += vanillaLzProduct(xi[t], 8, w, 8);
                if (ops) {
                    // Both operands pass through runtime converters.
                    ops->cmpN(16); // two 8-bit LZCs
                    ops->shiftN(1);
                    ops->addN(1);
                }
            }
            k_hat(i, j) = acc;
        }
    }
    return k_hat;
}

DlzsPrediction
dlzsPredict(const MatF &tokens, const MatF &wk, const MatF &q)
{
    SOFA_ASSERT(tokens.cols() == wk.rows());
    SOFA_ASSERT(q.cols() == wk.cols());

    DlzsPrediction pred;

    // Quantize the runtime operands.
    QuantI8 x_q = quantizeI8(tokens);
    QuantI8 w_q = quantizeI8(wk);
    QuantI16 q_q = quantizeI16(q);

    // Offline weight pre-conversion: not charged to runtime ops, but
    // its DRAM footprint is (5 bits vs 8 per weight).
    LzMatrix wk_lz = lzEncodeI8(w_q.values);
    pred.predictionBitsFetched =
        static_cast<double>(wk_lz.rows()) * wk_lz.cols() *
        wk_lz.bitsPerElement();

    // Phase 1.1: K-hat.
    MatI64 k_acc = dlzsKPrediction(x_q.values, wk_lz, &pred.ops);
    pred.kHat = truncateToI16(k_acc, &pred.kShift);

    // Phase 1.2: A-hat, with Q encoded by the runtime (configurable)
    // LZE in 16-bit mode.
    LzMatrix q_lz = lzEncodeI16(q_q.values, &pred.ops);
    MatI64 a_acc = dlzsAPrediction(q_lz, pred.kHat, &pred.ops);

    // Descale to float so downstream stages see score magnitudes
    // comparable to the exact Q K^T. The DLZS shift substitutes
    // 2^(W-LZ) = y/M for the encoded operand y, with mantissa M in
    // [0.5, 1), so each product overestimates by 1/M; for uniformly
    // distributed operands E[1/M] = ln(2)/0.5 ~ 1.386, the debias
    // divisor applied per encoded phase.
    constexpr double kLzBias = 1.3863;
    const double k_scale = x_q.scale * w_q.scale *
                           std::pow(2.0, pred.kShift) / kLzBias;
    const double a_scale = k_scale * q_q.scale / kLzBias;
    pred.scoresHat = MatF(a_acc.rows(), a_acc.cols());
    for (std::size_t i = 0; i < a_acc.data().size(); ++i) {
        pred.scoresHat.data()[i] =
            static_cast<float>(a_acc.data()[i] * a_scale);
    }
    return pred;
}

} // namespace sofa
