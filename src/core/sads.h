/**
 * @file
 * Sphere-search Aided Distributed Sorting (SADS) — Section III-B.
 *
 * SADS exploits the Distributed Cluster Effect (DCE): in the Type-I /
 * Type-II score distributions that make up >95% of attention rows
 * (Fig. 8), every sub-segment of a row contains a representative share
 * of the row's large values. A row of length S is therefore split
 * into n sub-segments, each of which picks its local top-(k/n) with an
 * iterative 16-to-4 bitonic sorting core plus an adaptive clipping
 * filter (threshold = max(runningMax - r, current low bound)); a
 * sphere-search refinement then repairs boundary mistakes by swapping
 * the selected set's minimum against the excluded set's maximum for a
 * bounded number of iterations.
 *
 * Cost model: comparisons are tallied for the clip filter (one per
 * element), the bitonic core (one 16-to-4 pass per 12 surviving
 * inputs), and the refinement loop, so the reduction vs a full-row
 * bitonic sort (the vanilla top-k stage) is measurable.
 *
 * Units: comparisons counted via OpCounter (cmps); quality is
 * top-k recall and covered softmax mass, both fractions in [0,1].
 * Assumes score rows follow the Fig. 8 Type-I/II mixture (the DCE);
 * Type-III rows degrade recall, not correctness.
 */

#ifndef SOFA_CORE_SADS_H
#define SOFA_CORE_SADS_H

#include <cstdint>
#include <vector>

#include "attention/opcount.h"
#include "sparsity/topk.h"
#include "tensor/matrix.h"

namespace sofa {

/** SADS configuration (per layer; the DSE tunes segments). */
struct SadsConfig
{
    int segments = 4;        ///< n sub-segments per row
    int refineIters = 8;     ///< DSn sphere-search iterations
    /**
     * Clipping radius as a fraction of the running (max - min) score
     * span; elements below runningMax - radius are blocked (replaced
     * by zero in hardware to kill switching activity). A value >= 1
     * disables clipping losses.
     */
    double radiusFrac = 1.0;
    int sorterInputs = 12;   ///< fresh inputs per 16-to-4 pass
    /** Comparators per 16-to-4 pass after pruning the ones that
     * would order the 3rd..k-th outputs (Fig. 13 shaded area). */
    int sorterComparators = 50;
};

/** Selection for one row plus bookkeeping for SU-FA and stats. */
struct SadsRow
{
    Selection selected;      ///< k indices, descending predicted score
    int top1 = -1;           ///< predicted-argmax index
    int top2 = -1;           ///< second-largest index
    std::int64_t clipped = 0; ///< elements blocked by the clip filter
};

/** Result over a whole score matrix. */
struct SadsResult
{
    std::vector<SadsRow> rows;
    OpCounter ops;

    SelectionList selections() const;
};

/**
 * Run SADS top-k over every row of @p scores. Rows are independent
 * and are sharded across the thread pool; per-shard op tallies are
 * merged with integer addition, so results and counts are bit-exact
 * for any thread count.
 *
 * @param scores predicted scores (A-hat from DLZS) [T x S]
 * @param k      values to keep per row
 */
SadsResult sadsTopK(const MatF &scores, int k,
                    const SadsConfig &cfg = {});

/**
 * SADS over the row range [row_begin, row_end) only — the work-item
 * granularity the stage engine shards over (batch, head, row-tile).
 * Writes rows into *rows (pre-sized to scores.rows()) and tallies
 * into *ops. Per-row behaviour is identical to sadsTopK.
 */
void sadsTopKRows(const MatF &scores, int k, const SadsConfig &cfg,
                  std::size_t row_begin, std::size_t row_end,
                  std::vector<SadsRow> *rows, OpCounter *ops);

/**
 * Comparison count of the vanilla whole-row top-k (full bitonic sort)
 * for the same shape, for reduction ratios.
 */
std::int64_t vanillaSortComparisons(std::int64_t rows,
                                    std::int64_t seq);

} // namespace sofa

#endif // SOFA_CORE_SADS_H
