/**
 * @file
 * Differential Leading Zero Summation (DLZS) — the paper's
 * multiplier-free log-domain sparsity prediction (Section III-A).
 *
 * An integer x is viewed as x = sign * M * 2^(W - LZ) (Eq. 1a) where LZ
 * is its leading-zero count in a W-bit window. A product x*y is then
 * approximated by shifting the *exact* operand x by the *encoded*
 * operand y's exponent (Eq. 1c):
 *
 *     x * y ~= XOR(Sx, Sy) * |x| << (W - LZy)
 *
 * "Differential" = only one operand is converted to the log domain,
 * which (vs the vanilla leading-one scheme converting both) halves the
 * converter count and the approximation error, and shrinks DRAM
 * traffic because weights are *pre-converted* offline and stored as
 * sign + 4-bit LZ codes.
 *
 * Two phases (Fig. 7):
 *  1.1 K-prediction: 8-bit tokens x pre-encoded Wk -> K-hat (truncated
 *      to 16 bits for the next phase);
 *  1.2 A-prediction: Q is converted by the runtime LZE (16-bit mode),
 *      K-hat is shifted -> A-hat, the estimated attention used by the
 *      top-k stage.
 *
 * Units: integer ops (shifts/adds — zero runtime multiplies)
 * counted via OpCounter; predicted-weight DRAM traffic in bits.
 * Assumes int8/int16 operands viewed through a W-bit LZ window.
 */

#ifndef SOFA_CORE_DLZS_H
#define SOFA_CORE_DLZS_H

#include <cstdint>
#include <vector>

#include "attention/opcount.h"
#include "tensor/matrix.h"
#include "tensor/quantize.h"

namespace sofa {

/** Sign + leading-zero code for one operand (what DRAM stores). */
struct LzCode
{
    std::int8_t sign = 1;  ///< +1 / -1; 0 encodes an eliminated zero
    std::uint8_t lz = 0;   ///< leading zeros within the source width

    bool isZero() const { return sign == 0; }
};

/** A matrix of LZ codes plus the width they were encoded from. */
struct LzMatrix
{
    int width = 8; ///< source operand width W (8 or 16)
    Matrix<LzCode> codes;

    std::size_t rows() const { return codes.rows(); }
    std::size_t cols() const { return codes.cols(); }

    /** Storage bits per element: sign + ceil(log2(W+1)) LZ bits. */
    int bitsPerElement() const;
};

/**
 * Encode a signed integer matrix into LZ format (the offline weight
 * pre-conversion, or the runtime LZE applied to Q).
 *
 * @param width source width: 8 for int8 operands, 16 for int16
 * @param ops   optional counter charged one cmp per bit examined
 *              (the LZC priority chain)
 */
LzMatrix lzEncodeI8(const MatI8 &m, OpCounter *ops = nullptr);
LzMatrix lzEncodeI16(const MatI16 &m, OpCounter *ops = nullptr);

/** Approximate product of exact operand @p x and encoded @p y. */
std::int64_t dlzsProduct(std::int64_t x, int x_width, LzCode y,
                         int y_width);

/**
 * Phase 1.1 — K-hat = X * Wk in the DLZS domain.
 *
 * @param tokens  int8 token matrix X [S x n]
 * @param wk_lz   pre-converted weights [n x d]
 * @param ops     charged shifts/adds only (no multiplies) plus the
 *                zero-eliminator comparisons
 * @return int64 accumulators [S x d] (caller truncates to 16 bit)
 *
 * Runtime-dispatched (tensor/simd.h): the AVX2 body vectorizes the
 * shift-accumulate over contiguous weight-code rows. Accumulation is
 * two's-complement int64 addition — associative and commutative — so
 * the result and the OpCounter totals are bit-identical to the
 * Scalar baseline, which keeps the seed's loop nest verbatim.
 */
MatI64 dlzsKPrediction(const MatI8 &tokens, const LzMatrix &wk_lz,
                       OpCounter *ops = nullptr);
MatI64 dlzsKPredictionScalar(const MatI8 &tokens,
                             const LzMatrix &wk_lz,
                             OpCounter *ops = nullptr);

/**
 * Phase 1.2 — A-hat = Q * K-hat^T with Q runtime-converted to LZ.
 *
 * @param q_lz   LZ-encoded queries [T x d] (16-bit source)
 * @param k_hat  truncated K-hat [S x d]
 * @return int64 score estimates [T x S]
 *
 * Runtime-dispatched like dlzsKPrediction; bit-identical to the
 * Scalar baseline (including op totals) at every dispatch level.
 */
MatI64 dlzsAPrediction(const LzMatrix &q_lz, const MatI16 &k_hat,
                       OpCounter *ops = nullptr);
MatI64 dlzsAPredictionScalar(const LzMatrix &q_lz,
                             const MatI16 &k_hat,
                             OpCounter *ops = nullptr);

/**
 * Vanilla leading-zero baseline (Fig. 7(b) top): both operands are
 * converted to one-hot powers of two, so the product is a bare
 * 2^(ex+ey). Twice the converter work and a larger error; used for
 * the DLZS-vs-vanilla comparisons.
 */
std::int64_t vanillaLzProduct(std::int64_t x, int x_width,
                              std::int64_t y, int y_width);

/** Vanilla-scheme K prediction (both operands one-hot encoded). */
MatI64 vanillaKPrediction(const MatI8 &tokens, const MatI8 &wk,
                          OpCounter *ops = nullptr);

/** Convenience: full two-phase DLZS prediction from float tensors. */
struct DlzsPrediction
{
    MatF scoresHat;      ///< estimated attention scores [T x S]
    MatI16 kHat;         ///< truncated K estimate
    int kShift = 0;      ///< truncation shift applied to K-hat
    OpCounter ops;       ///< total prediction op tally
    double predictionBitsFetched = 0.0; ///< DRAM bits for weights
};

/**
 * Run both DLZS phases on float inputs: quantizes tokens to int8 and
 * queries to int16, encodes weights offline, and returns a float
 * estimate of the attention scores (descaled), as the SADS stage
 * consumes it.
 */
DlzsPrediction dlzsPredict(const MatF &tokens, const MatF &wk,
                           const MatF &q);

} // namespace sofa

#endif // SOFA_CORE_DLZS_H
