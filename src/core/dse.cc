#include "core/dse.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sofa {

std::vector<double>
DsePoint::features(int tc_max) const
{
    std::vector<double> f;
    f.reserve(tcPerLayer.size() + 1);
    for (int tc : tcPerLayer)
        f.push_back(static_cast<double>(tc) / tc_max);
    f.push_back(topkFrac);
    return f;
}

double
DseSpace::totalConfigurations() const
{
    const double tc_choices =
        static_cast<double>((tcMax - tcMin) / tcStep + 1);
    const double k_choices =
        std::round((topkMax - topkMin) / topkStep) + 1;
    return std::pow(tc_choices, layers) * k_choices;
}

DsePoint
DseSpace::randomPoint(Rng &rng) const
{
    DsePoint p;
    p.tcPerLayer.resize(layers);
    const int tc_choices = (tcMax - tcMin) / tcStep + 1;
    for (int &tc : p.tcPerLayer) {
        tc = tcMin + tcStep * static_cast<int>(
            rng.uniformInt(0, tc_choices - 1));
    }
    const int k_choices = static_cast<int>(
        std::round((topkMax - topkMin) / topkStep)) + 1;
    p.topkFrac = topkMin + topkStep * static_cast<double>(
        rng.uniformInt(0, k_choices - 1));
    return p;
}

GaussianProcess::GaussianProcess(double length_scale, double signal_var,
                                 double noise_var)
    : lengthScale_(length_scale), signalVar_(signal_var),
      noiseVar_(noise_var)
{}

double
GaussianProcess::kernel(const std::vector<double> &a,
                        const std::vector<double> &b) const
{
    SOFA_ASSERT(a.size() == b.size());
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
    }
    return signalVar_ *
           std::exp(-d2 / (2.0 * lengthScale_ * lengthScale_));
}

void
GaussianProcess::fit(const std::vector<std::vector<double>> &x,
                     const std::vector<double> &y)
{
    SOFA_ASSERT(x.size() == y.size() && !x.empty());
    const std::size_t n = x.size();
    train_x_ = x;

    yMean_ = 0.0;
    for (double v : y)
        yMean_ += v;
    yMean_ /= static_cast<double>(n);

    // K + sigma^2 I
    std::vector<std::vector<double>> kmat(n, std::vector<double>(n));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double v = kernel(x[i], x[j]);
            if (i == j)
                v += noiseVar_;
            kmat[i][j] = v;
            kmat[j][i] = v;
        }
    }

    // Cholesky decomposition K = L L^T.
    chol_.assign(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = kmat[i][j];
            for (std::size_t t = 0; t < j; ++t)
                sum -= chol_[i][t] * chol_[j][t];
            if (i == j) {
                SOFA_ASSERT(sum > 0.0);
                chol_[i][j] = std::sqrt(sum);
            } else {
                chol_[i][j] = sum / chol_[j][j];
            }
        }
    }

    // Solve L z = (y - mean), then L^T alpha = z.
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = y[i] - yMean_;
        for (std::size_t t = 0; t < i; ++t)
            sum -= chol_[i][t] * z[t];
        z[i] = sum / chol_[i][i];
    }
    alpha_.assign(n, 0.0);
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double sum = z[i];
        for (std::size_t t = i + 1; t < n; ++t)
            sum -= chol_[t][i] * alpha_[t];
        alpha_[i] = sum / chol_[i][i];
    }
}

void
GaussianProcess::predict(const std::vector<double> &x, double *mean,
                         double *variance) const
{
    SOFA_ASSERT(fitted());
    const std::size_t n = train_x_.size();
    std::vector<double> kstar(n);
    for (std::size_t i = 0; i < n; ++i)
        kstar[i] = kernel(train_x_[i], x);

    double mu = yMean_;
    for (std::size_t i = 0; i < n; ++i)
        mu += kstar[i] * alpha_[i];

    // v = L^-1 k*
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = kstar[i];
        for (std::size_t t = 0; t < i; ++t)
            sum -= chol_[i][t] * v[t];
        v[i] = sum / chol_[i][i];
    }
    double var = kernel(x, x);
    for (std::size_t i = 0; i < n; ++i)
        var -= v[i] * v[i];
    var = std::max(var, 1e-12);

    if (mean)
        *mean = mu;
    if (variance)
        *variance = var;
}

double
expectedImprovement(double mu, double variance, double best)
{
    const double sigma = std::sqrt(std::max(variance, 1e-12));
    const double z = (best - mu) / sigma;
    // Standard normal pdf / cdf.
    const double pdf =
        std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
    const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
    return (best - mu) * cdf + sigma * pdf;
}

namespace {

DseSample
evaluatePoint(const DsePoint &p, const DseObjectiveWeights &w,
              const DseEvaluator &evaluate)
{
    DseSample s;
    s.point = p;
    s.eval = evaluate(p);
    s.objective = s.eval.objective(w);
    return s;
}

} // namespace

DseResult
bayesianSearch(const DseSpace &space, const DseObjectiveWeights &weights,
               const DseEvaluator &evaluate, int iterations,
               int init_samples, int candidates, std::uint64_t seed)
{
    Rng rng(seed);
    DseResult result;
    result.bestObjective = 1e30;

    std::vector<DseSample> samples;
    auto record = [&](const DseSample &s) {
        if (s.objective < result.bestObjective) {
            result.bestObjective = s.objective;
            result.best = s.point;
            result.bestEval = s.eval;
        }
        result.history.push_back(result.bestObjective);
        ++result.evaluations;
    };

    // Initial design.
    for (int i = 0; i < init_samples; ++i) {
        DseSample s =
            evaluatePoint(space.randomPoint(rng), weights, evaluate);
        samples.push_back(s);
        record(s);
    }

    for (int it = 0; it < iterations; ++it) {
        // Fit the GP on everything seen.
        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        xs.reserve(samples.size());
        ys.reserve(samples.size());
        for (const auto &s : samples) {
            xs.push_back(s.point.features(space.tcMax));
            ys.push_back(s.objective);
        }
        GaussianProcess gp;
        gp.fit(xs, ys);

        // Maximize EI over random candidates (arg max alpha(Theta, D)).
        DsePoint best_cand = space.randomPoint(rng);
        double best_ei = -1.0;
        for (int c = 0; c < candidates; ++c) {
            DsePoint cand = space.randomPoint(rng);
            double mu, var;
            gp.predict(cand.features(space.tcMax), &mu, &var);
            const double ei =
                expectedImprovement(mu, var, result.bestObjective);
            if (ei > best_ei) {
                best_ei = ei;
                best_cand = cand;
            }
        }

        DseSample s = evaluatePoint(best_cand, weights, evaluate);
        samples.push_back(s);
        record(s);
    }
    return result;
}

DseResult
randomSearch(const DseSpace &space, const DseObjectiveWeights &weights,
             const DseEvaluator &evaluate, int iterations,
             std::uint64_t seed)
{
    Rng rng(seed);
    DseResult result;
    result.bestObjective = 1e30;
    for (int i = 0; i < iterations; ++i) {
        DseSample s =
            evaluatePoint(space.randomPoint(rng), weights, evaluate);
        if (s.objective < result.bestObjective) {
            result.bestObjective = s.objective;
            result.best = s.point;
            result.bestEval = s.eval;
        }
        result.history.push_back(result.bestObjective);
        ++result.evaluations;
    }
    return result;
}

double
analyticLcmp(const DsePoint &p, int seq)
{
    // Eq. 3: sum_i(Bci * k) / sum_i(S * k); the k factors cancel.
    double num = 0.0, den = 0.0;
    for (int tc : p.tcPerLayer) {
        const double bc = static_cast<double>(seq) / std::max(1, tc);
        num += bc;
        den += static_cast<double>(seq);
    }
    return den > 0.0 ? num / den : 0.0;
}

double
analyticLexp(const DsePoint &p, int seq)
{
    // Eq. 4: sum_i(S / Bci) = sum_i(Tc_i); normalized by layers * max
    // so the term is comparable in magnitude to Len and Lcmp.
    double acc = 0.0;
    for (int tc : p.tcPerLayer)
        acc += static_cast<double>(tc);
    (void)seq;
    const double norm =
        32.0 * static_cast<double>(std::max<std::size_t>(
                   p.tcPerLayer.size(), 1));
    return acc / norm;
}

double
dseTileCost(const DsePoint &p, const TileShape &shape,
            const TileCostModel &model)
{
    if (p.tcPerLayer.empty())
        return 0.0;
    // The planner's argmin is the per-shape floor every layer's
    // tiling is measured against.
    const TilePlan best = planTiles(shape, model);
    const double floor_s = model.planSeconds(best, shape);
    if (floor_s <= 0.0)
        return 0.0;
    double excess = 0.0;
    for (int tc : p.tcPerLayer) {
        // Bc = S / Tc is the layer's block extent; the software
        // analogue is running SADS and SU-FA with that many rows per
        // work unit (clamped to the shape's rows like the grid is).
        const int bc = std::max(
            1, shape.contextLen / std::max(1, tc));
        TilePlan layer = best;
        layer.rowTile = std::min(bc, std::max(1, shape.rowsPerHead));
        layer.sadsSpan = layer.rowTile;
        excess += model.planSeconds(layer, shape) / floor_s - 1.0;
    }
    return excess / static_cast<double>(p.tcPerLayer.size());
}

} // namespace sofa
