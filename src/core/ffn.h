/**
 * @file
 * Layer-specific FFN sparsity — the fourth optimization of the SOFA
 * stack (Fig. 6(a): "Layer Specific FFN Sparsity, sparsity-adaptive").
 *
 * FFN activations after the non-linearity are heavily skewed: a small
 * subset of intermediate neurons carries most of the magnitude per
 * token. SOFA exploits this dynamically: after the first projection
 * h = act(x W1), only the top-p fraction of neurons by |h| are
 * propagated through the second projection (y = h_keep W2), saving
 * its MACs. The keep fraction is *layer specific* — calibrated per
 * layer so the output error stays within a budget, mirroring the
 * per-layer tiling the DSE chooses for attention.
 *
 * Units: W2 MACs counted via OpCounter (muls); errors are relative
 * output error, keep fractions in (0,1]. Assumes post-activation
 * magnitude skew concentrated on a hot neuron subset.
 */

#ifndef SOFA_CORE_FFN_H
#define SOFA_CORE_FFN_H

#include <cstdint>
#include <vector>

#include "attention/opcount.h"
#include "common/rng.h"
#include "tensor/matrix.h"

namespace sofa {

/** Activation function of the FFN's first layer. */
enum class Activation { Relu, Gelu };

/** One feed-forward layer. */
struct FfnLayer
{
    MatF w1;  ///< [H x F]
    MatF w2;  ///< [F x H]
    Activation act = Activation::Gelu;

    int hidden() const { return static_cast<int>(w1.rows()); }
    int inner() const { return static_cast<int>(w1.cols()); }
};

/**
 * Generate a random FFN layer whose activations exhibit realistic
 * skew (a fraction of "hot" neurons with larger fan-in weights).
 */
FfnLayer makeFfnLayer(Rng &rng, int hidden, int inner,
                      double hot_frac = 0.1, double hot_gain = 3.0,
                      Activation act = Activation::Gelu);

/** Result of an FFN forward pass. */
struct FfnResult
{
    MatF output;              ///< [T x H]
    OpCounter ops;
    std::int64_t keptNeurons = 0;  ///< summed over tokens
    std::int64_t totalNeurons = 0; ///< tokens x F
};

/** Dense forward pass (the baseline). */
FfnResult ffnForward(const FfnLayer &layer, const MatF &x);

/**
 * Sparse forward pass: per token, only the top-(keep_frac * F)
 * neurons by post-activation magnitude feed the second projection.
 */
FfnResult ffnForwardSparse(const FfnLayer &layer, const MatF &x,
                           double keep_frac);

/**
 * Calibrate a layer-specific keep fraction: the smallest keep in
 * {0.05, 0.10, ..., 1.0} whose relative output error on the probe
 * batch stays within @p error_budget.
 */
double calibrateKeepFraction(const FfnLayer &layer, const MatF &probe,
                             double error_budget);

/**
 * Calibrate every layer of a stack; deeper layers typically tolerate
 * more pruning (their activations are more skewed in practice, which
 * makeFfnLayer reflects via the per-layer hot fraction).
 */
std::vector<double> calibrateStack(const std::vector<FfnLayer> &stack,
                                   const MatF &probe,
                                   double error_budget);

} // namespace sofa

#endif // SOFA_CORE_FFN_H
