#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/threadpool.h"
#include "core/dlzs.h"
#include "core/sads.h"
#include "core/sufa.h"
#include "sparsity/mask.h"
#include "tensor/kernels.h"

namespace sofa {

OpCounter
EngineResult::totalOps() const
{
    OpCounter t;
    t += predictionOps;
    t += sortOps;
    t += formalOps;
    return t;
}

/** Per-run scratch: the task list plus per-head intermediates. */
struct EngineState
{
    const EngineConfig &cfg;
    ThreadPool &pool;
    const std::vector<HeadTask> &tasks;

    std::vector<int> keep;              ///< per-head k
    std::vector<DlzsPrediction> preds;  ///< DLZS stage output
    std::vector<SadsResult> sads;       ///< SADS stage output
    std::vector<HeadResult> heads;      ///< results being assembled
    std::vector<char> cancelled;        ///< per-task cancel flags

    /** Tile knobs this run executes under (config-derived fixed
     * values, the config's explicit fixedPlan, or planTiles() when
     * autoTiled). */
    TilePlan plan;
    /** Whether `plan` came from the planner or a fixedPlan (then
     * step() also installs the plan's kernel tiling for the stage's
     * duration). */
    bool applyTiling = false;
};

namespace {

/** A (head, query-row range) work item for the row-tiled stages. */
struct RowUnit
{
    std::size_t head;
    std::size_t begin;
    std::size_t end;
};

/**
 * Visit order for a stage's units. Static sharding iterates units in
 * their natural (canonical) order; dynamic sharding visits them
 * heaviest-first by the stage's cost estimate, so the atomic-counter
 * scheduler starts the long poles early and back-fills with cheap
 * units (the Tailors lesson: size for the common case, recover
 * data-dependently). The order only decides *scheduling* — per-unit
 * outputs and tallies are still indexed and merged by the canonical
 * unit id, so results are bit-exact for any order.
 */
std::vector<std::size_t>
costOrder(const std::vector<double> &cost)
{
    std::vector<std::size_t> order(cost.size());
    for (std::size_t u = 0; u < order.size(); ++u)
        order[u] = u;
    std::stable_sort(order.begin(), order.end(),
                     [&cost](std::size_t a, std::size_t b) {
                         return cost[a] > cost[b];
                     });
    return order;
}

/** Approximate arithmetic cost of one head's prediction/KV work. */
double
headCost(const AttentionWorkload &w)
{
    const double seq = static_cast<double>(w.spec.seq);
    const double rows = static_cast<double>(w.q.rows());
    const double dim = static_cast<double>(w.spec.headDim);
    return seq * static_cast<double>(w.spec.tokenDim) * dim +
           rows * seq * dim;
}

/** Cost estimates for whole-head units. */
std::vector<double>
headCosts(const EngineState &st)
{
    std::vector<double> cost(st.tasks.size());
    for (std::size_t i = 0; i < st.tasks.size(); ++i)
        cost[i] = headCost(*st.tasks[i].workload);
    return cost;
}

/** Cost estimates for row-tile units (rows x context width). */
std::vector<double>
unitCosts(const EngineState &st, const std::vector<RowUnit> &units)
{
    std::vector<double> cost(units.size());
    for (std::size_t u = 0; u < units.size(); ++u) {
        const RowUnit &ru = units[u];
        cost[u] = static_cast<double>(ru.end - ru.begin) *
                  static_cast<double>(
                      st.tasks[ru.head].workload->spec.seq);
    }
    return cost;
}

/**
 * Shard @p order.size() units across the pool, one fn(unit_id) call
 * per unit, via the config's scheduler. @p grain units are claimed
 * per scheduler grab (the plan's shardGrain for row-tiled stages, 1
 * for whole-head stages). Dynamic mode claims units off the pool's
 * atomic chunk counter in @p order; static mode runs the classic
 * near-equal contiguous split over the same order.
 */
template <typename Fn>
void
forEachUnit(EngineState &st, const std::vector<std::size_t> &order,
            int grain, const Fn &fn)
{
    if (order.empty())
        return;
    const std::size_t g =
        static_cast<std::size_t>(std::max(1, grain));
    const auto body = [&fn, &order](std::size_t b, std::size_t e,
                                    int) {
        for (std::size_t u = b; u < e; ++u)
            fn(order[u]);
    };
    if (st.cfg.dynamicSharding)
        st.pool.parallelForDynamic(order.size(), g, body);
    else
        st.pool.parallelFor(order.size(), g, body);
}

/** Unit order for a stage: cost-sorted when dynamic, natural when
 * static (the seed's behavior). */
std::vector<std::size_t>
stageOrder(const EngineState &st, std::vector<double> cost)
{
    if (st.cfg.dynamicSharding)
        return costOrder(cost);
    std::vector<std::size_t> order(cost.size());
    for (std::size_t u = 0; u < order.size(); ++u)
        order[u] = u;
    return order;
}

/** Row tiles of every head, in (head, row) order, @p tile_rows rows
 * per unit clamped to each head's actual row count — a tiny head
 * yields exactly one full-range shard instead of an oversized tile
 * request distorting the unit accounting. */
std::vector<RowUnit>
rowUnits(const EngineState &st, int tile_rows)
{
    const std::size_t requested = static_cast<std::size_t>(
        std::max(1, tile_rows));
    std::vector<RowUnit> units;
    for (std::size_t i = 0; i < st.tasks.size(); ++i) {
        const std::size_t rows = st.tasks[i].workload->q.rows();
        if (rows == 0)
            continue; // never enqueue an empty shard
        const std::size_t tile = std::min(requested, rows);
        for (std::size_t b = 0; b < rows; b += tile)
            units.push_back({i, b, std::min(rows, b + tile)});
    }
    return units;
}

/** Shape summary of a task list for the planner: maxima over heads
 * (the long pole is what the makespan model cares about), cache
 * depth from the shallowest head (conservative on generation). */
TileShape
taskShape(const std::vector<HeadTask> &tasks, double topk_frac)
{
    TileShape s;
    s.headTasks = static_cast<int>(tasks.size());
    s.rowsPerHead = 0;
    s.contextLen = 0;
    s.pastLen = tasks.empty() ? 0 : tasks.front().pastLen;
    for (const HeadTask &t : tasks) {
        s.rowsPerHead = std::max(
            s.rowsPerHead, static_cast<int>(t.workload->q.rows()));
        s.contextLen = std::max(s.contextLen, t.workload->spec.seq);
        s.headDim = t.workload->spec.headDim;
        s.tokenDim = t.workload->spec.tokenDim;
        s.pastLen = std::min(s.pastLen, t.pastLen);
    }
    s.rowsPerHead = std::max(1, s.rowsPerHead);
    s.contextLen = std::max(1, s.contextLen);
    s.topkFrac = topk_frac;
    return s;
}

/** Stage 1: DLZS prediction (K-hat then A-hat), one unit per head. */
class DlzsStage : public Stage
{
  public:
    const char *name() const override { return "dlzs_predict"; }

    void
    run(EngineState &st) const override
    {
        forEachUnit(st, stageOrder(st, headCosts(st)), 1,
                    [&st](std::size_t i) {
                        if (st.cancelled[i])
                            return;
                        const AttentionWorkload &w =
                            *st.tasks[i].workload;
                        st.preds[i] =
                            dlzsPredict(w.tokens, w.wk, w.q);
                        st.heads[i].result.predictionOps =
                            st.preds[i].ops;
                    });
    }
};

/** Stage 2: SADS distributed top-k, sharded over row tiles. */
class SadsStage : public Stage
{
  public:
    const char *name() const override { return "sads_topk"; }

    void
    run(EngineState &st) const override
    {
        const std::vector<RowUnit> units =
            rowUnits(st, st.plan.sadsSpan);
        std::vector<OpCounter> unit_ops(units.size());
        forEachUnit(st, stageOrder(st, unitCosts(st, units)),
                    st.plan.shardGrain,
                    [&](std::size_t u) {
                        const RowUnit &ru = units[u];
                        if (st.cancelled[ru.head])
                            return;
                        sadsTopKRows(st.preds[ru.head].scoresHat,
                                     st.keep[ru.head],
                                     st.cfg.pipeline.sads, ru.begin,
                                     ru.end, &st.sads[ru.head].rows,
                                     &unit_ops[u]);
                    });
        // Per-shard tallies merge with integer addition in unit
        // order — order-independent, so equal to a serial run.
        for (std::size_t u = 0; u < units.size(); ++u)
            st.sads[units[u].head].ops += unit_ops[u];
        for (std::size_t i = 0; i < st.tasks.size(); ++i) {
            if (st.cancelled[i])
                continue;
            st.heads[i].result.sortOps = st.sads[i].ops;
            st.heads[i].result.selections = st.sads[i].selections();
        }
    }
};

/** Stage 3a: on-demand KV generation against the cache state. */
class KvStage : public Stage
{
  public:
    const char *name() const override { return "kv_generate"; }

    void
    run(EngineState &st) const override
    {
        forEachUnit(st, stageOrder(st, headCosts(st)), 1,
                    [&st](std::size_t i) {
            if (st.cancelled[i])
                return;
            const HeadTask &task = st.tasks[i];
            const AttentionWorkload &w = *task.workload;
            HeadResult &hr = st.heads[i];
            TopkMask mask = TopkMask::fromSelections(
                hr.result.selections, w.spec.seq);
            const std::vector<int> required = mask.requiredKeys();
            // Keys below pastLen are KV-cache hits; only the rest
            // are projected from tokens.
            std::int64_t cached = 0;
            for (int key : required)
                cached += key < task.pastLen ? 1 : 0;
            hr.keysCached = cached;
            hr.result.keysGenerated =
                static_cast<std::int64_t>(required.size()) - cached;
            hr.result.formalOps += kvGenerationOps(
                hr.result.keysGenerated, w.spec.tokenDim,
                w.spec.headDim);
        });
    }
};

/** Stage 3b: SU-FA formal compute, sharded over row tiles. */
class SufaStage : public Stage
{
  public:
    const char *name() const override { return "sufa_attention"; }

    void
    run(EngineState &st) const override
    {
        for (std::size_t i = 0; i < st.tasks.size(); ++i) {
            if (st.cancelled[i])
                continue;
            const AttentionWorkload &w = *st.tasks[i].workload;
            st.heads[i].result.output =
                MatF(w.q.rows(), w.q.cols(), 0.0f);
        }
        const std::vector<RowUnit> units =
            rowUnits(st, st.plan.rowTile);
        std::vector<OpCounter> unit_ops(units.size());
        std::vector<std::int64_t> unit_viol(units.size(), 0);
        std::vector<std::int64_t> unit_tiles(units.size(), 0);
        forEachUnit(st, stageOrder(st, unitCosts(st, units)),
                    st.plan.shardGrain,
                    [&](std::size_t u) {
            const RowUnit &ru = units[u];
            if (st.cancelled[ru.head])
                return;
            const AttentionWorkload &w = *st.tasks[ru.head].workload;
            sufaAttentionRows(w.q, w.k, w.v,
                              st.heads[ru.head].result.selections,
                              st.cfg.pipeline.sufa, ru.begin, ru.end,
                              &st.heads[ru.head].result.output,
                              &unit_ops[u], &unit_viol[u],
                              &unit_tiles[u]);
        });
        for (std::size_t u = 0; u < units.size(); ++u) {
            HeadResult &hr = st.heads[units[u].head];
            hr.result.formalOps += unit_ops[u];
            hr.result.maxViolations += unit_viol[u];
            hr.sufaTiles += unit_tiles[u];
        }
    }
};

/** Stage 4: quality metrics vs the dense reference, per head. */
class QualityStage : public Stage
{
  public:
    const char *name() const override { return "quality"; }

    void
    run(EngineState &st) const override
    {
        if (!st.cfg.computeQuality)
            return;
        forEachUnit(st, stageOrder(st, headCosts(st)), 1,
                    [&st](std::size_t i) {
                        if (st.cancelled[i])
                            return;
                        fillPipelineQuality(*st.tasks[i].workload,
                                            st.keep[i],
                                            st.heads[i].result);
                    });
    }
};

} // namespace

Engine::Engine(EngineConfig cfg) : cfg_(cfg)
{
    SOFA_ASSERT(cfg_.pipeline.topkFrac > 0.0 &&
                cfg_.pipeline.topkFrac <= 1.0);
    SOFA_ASSERT(cfg_.rowTile >= 1);
    if (cfg_.fixedPlan) {
        const TilePlan &p = *cfg_.fixedPlan;
        SOFA_ASSERT(p.rowTile >= 1 && p.sadsSpan >= 1 &&
                    p.shardGrain >= 1 && p.panelBytes > 0 &&
                    p.blockK > 0 && p.blockK % 4 == 0);
    }
    stages_.push_back(std::make_unique<DlzsStage>());
    stages_.push_back(std::make_unique<SadsStage>());
    stages_.push_back(std::make_unique<KvStage>());
    stages_.push_back(std::make_unique<SufaStage>());
    stages_.push_back(std::make_unique<QualityStage>());
}

Engine::~Engine() = default;

std::vector<std::string>
Engine::stageNames() const
{
    std::vector<std::string> names;
    names.reserve(stages_.size());
    for (const auto &s : stages_)
        names.push_back(s->name());
    return names;
}

EngineResult
Engine::run(const ModelWorkload &mw) const
{
    std::vector<HeadTask> tasks;
    tasks.reserve(mw.size());
    for (int b = 0; b < mw.batch(); ++b) {
        for (int h = 0; h < mw.heads(); ++h) {
            HeadTask t;
            t.workload = &mw.head(b, h);
            t.batch = b;
            t.head = h;
            t.pastLen = mw.spec.isDecode() ? mw.spec.pastLen : 0;
            tasks.push_back(t);
        }
    }
    return run(tasks);
}

EngineResult
Engine::run(const std::vector<HeadTask> &tasks) const
{
    return EngineRun(*this, tasks).finish();
}

EngineRun::EngineRun(const Engine &engine, std::vector<HeadTask> tasks)
    : engine_(engine), tasks_(std::move(tasks))
{
    const EngineConfig &cfg = engine_.cfg_;
    ThreadPool &pool =
        cfg.pool != nullptr ? *cfg.pool : ThreadPool::instance();
    state_ = std::make_unique<EngineState>(
        EngineState{cfg, pool, tasks_, {}, {}, {}, {}, {},
                    TilePlan{}, false});
    EngineState &st = *state_;
    st.keep.resize(tasks_.size());
    st.preds.resize(tasks_.size());
    st.sads.resize(tasks_.size());
    st.heads.resize(tasks_.size());
    st.cancelled.assign(tasks_.size(), 0);
    // Resolve the run's tile plan: the config's fixed knobs by
    // default (rowTile doubles as the SADS span, the historical
    // behavior), an explicit fixedPlan verbatim, or planTiles() over
    // the task list's shape when autoTile is in effect. Either way
    // the plan is fixed before the first stage runs, so a run's
    // sharding is self-consistent.
    st.plan.rowTile = cfg.rowTile;
    st.plan.sadsSpan = cfg.rowTile;
    if (cfg.fixedPlan) {
        st.plan = *cfg.fixedPlan;
        st.applyTiling = true;
    } else if (autoTileEnabled(cfg.autoTile) && !tasks_.empty()) {
        st.plan = planTiles(
            taskShape(tasks_, cfg.pipeline.topkFrac));
        st.applyTiling = true;
    }
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        const HeadTask &t = tasks_[i];
        SOFA_ASSERT(t.workload != nullptr);
        SOFA_ASSERT(t.pastLen >= 0 &&
                    t.pastLen <= t.workload->spec.seq);
        st.keep[i] = pipelineKeepCount(cfg.pipeline.topkFrac,
                                       t.workload->spec.seq);
        st.sads[i].rows.resize(t.workload->q.rows());
        st.heads[i].batch = t.batch;
        st.heads[i].head = t.head;
    }
}

EngineRun::~EngineRun() = default;

std::size_t
EngineRun::stageCount() const
{
    return engine_.stages_.size();
}

bool
EngineRun::done() const
{
    return next_ >= engine_.stages_.size();
}

const char *
EngineRun::nextStageName() const
{
    return done() ? nullptr : engine_.stages_[next_]->name();
}

const TilePlan &
EngineRun::plan() const
{
    return state_->plan;
}

void
EngineRun::step()
{
    SOFA_ASSERT(!done());
    if (state_->applyTiling) {
        // Install the plan's kernel tiling for this stage's kernel
        // calls. Any tiling is bit-exact, so a concurrent run seeing
        // it mid-stage computes identical results regardless.
        kernels::Tiling t;
        t.panelBytes = state_->plan.panelBytes;
        t.blockK = state_->plan.blockK;
        kernels::ScopedTiling scoped(t);
        engine_.stages_[next_]->run(*state_);
    } else {
        engine_.stages_[next_]->run(*state_);
    }
    ++next_;
}

void
EngineRun::cancel(std::size_t i)
{
    SOFA_ASSERT(i < tasks_.size());
    state_->cancelled[i] = 1;
}

bool
EngineRun::cancelled(std::size_t i) const
{
    SOFA_ASSERT(i < tasks_.size());
    return state_->cancelled[i] != 0;
}

EngineResult
EngineRun::finish()
{
    while (!done())
        step();
    return aggregateHeadResults(std::move(state_->heads));
}

EngineResult
aggregateHeadResults(std::vector<HeadResult> heads)
{
    EngineResult res;
    res.heads = std::move(heads);
    double mass = 0.0, recall = 0.0, loss = 0.0;
    for (const HeadResult &hr : res.heads) {
        res.predictionOps += hr.result.predictionOps;
        res.sortOps += hr.result.sortOps;
        res.formalOps += hr.result.formalOps;
        res.keysGenerated += hr.result.keysGenerated;
        res.keysCached += hr.keysCached;
        res.maxViolations += hr.result.maxViolations;
        mass += hr.result.massRecall;
        recall += hr.result.topkRecall;
        loss += hr.result.accuracyLossPct;
        res.maxOutputRelError =
            std::max(res.maxOutputRelError, hr.result.outputRelError);
    }
    if (!res.heads.empty()) {
        const double n = static_cast<double>(res.heads.size());
        res.meanMassRecall = mass / n;
        res.meanTopkRecall = recall / n;
        res.meanAccuracyLossPct = loss / n;
    }
    return res;
}

EngineResult
runEngine(const ModelWorkload &mw, const EngineConfig &cfg)
{
    return Engine(cfg).run(mw);
}

} // namespace sofa
