#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "attention/reference.h"
#include "common/logging.h"
#include "core/engine.h"
#include "sparsity/mask.h"

namespace sofa {

OpCounter
PipelineResult::totalOps() const
{
    OpCounter t;
    t += predictionOps;
    t += sortOps;
    t += formalOps;
    return t;
}

int
pipelineKeepCount(double topk_frac, int seq)
{
    return std::max(1, static_cast<int>(
        std::lround(topk_frac * seq)));
}

OpCounter
kvGenerationOps(std::int64_t keys, std::int64_t token_dim,
                std::int64_t head_dim)
{
    // K and V: each key row costs token_dim * head_dim MACs.
    OpCounter ops;
    ops.mulN(2 * keys * token_dim * head_dim);
    ops.addN(2 * keys * token_dim * (head_dim - 1));
    return ops;
}

void
fillPipelineQuality(const AttentionWorkload &w, int k,
                    PipelineResult &res)
{
    SelectionList exact = exactTopKRows(w.scores, k);
    res.topkRecall = topkRecall(res.selections, exact);
    res.massRecall = softmaxMassRecall(w.scores, res.selections);
    res.accuracyLossPct = accuracyLossPercent(res.massRecall);

    AttentionResult dense = referenceAttention(w.q, w.k, w.v);
    res.outputRelError = outputError(res.output, dense.output);
}

PipelineResult
runSofaPipeline(const AttentionWorkload &w, const PipelineConfig &cfg)
{
    // Single-head wrapper: one HeadTask through the stage engine.
    EngineConfig ecfg;
    ecfg.pipeline = cfg;
    HeadTask task;
    task.workload = &w;
    EngineResult er = Engine(ecfg).run(std::vector<HeadTask>{task});
    return std::move(er.heads[0].result);
}

PipelineResult
runBaselinePipeline(const AttentionWorkload &w, double topk_frac,
                    int block_cols)
{
    SOFA_ASSERT(topk_frac > 0.0 && topk_frac <= 1.0);
    PipelineResult res;
    const int S = w.spec.seq;
    const int k = pipelineKeepCount(topk_frac, S);

    // Pre-compute with 4-bit multiplications: K-hat = X Wk and
    // A-hat = Q K-hat^T, both as real (narrow) multiplies. Charged at
    // 4-bit cost via the width-scaled cost model at reporting time;
    // here we tally raw op counts.
    const std::int64_t T = w.spec.queries;
    const std::int64_t n = w.spec.tokenDim;
    const std::int64_t d = w.spec.headDim;
    res.predictionOps.mulN(S * n * d);          // K-hat
    res.predictionOps.addN(S * n * (d - 1));
    res.predictionOps.mulN(T * S * d);          // A-hat
    res.predictionOps.addN(T * S * (d - 1));

    // The baseline predictor sees quantization noise comparable to
    // 4-bit arithmetic; selection quality is modeled on the exact
    // scores (favoring the baseline — reductions we report against it
    // are therefore conservative).
    SelectionList sel = vanillaTopKRows(w.scores, k, &res.sortOps);
    res.selections = sel;

    // Full KV generation: all S keys are produced regardless of need.
    res.keysGenerated = S;
    res.formalOps += kvGenerationOps(S, n, d);

    // Formal compute: sparse FA-2 without sorting information.
    SufaResult fa2 = sparseFlash2(w.q, w.k, w.v, sel, block_cols);
    res.formalOps += fa2.ops;
    res.output = std::move(fa2.output);

    fillPipelineQuality(w, k, res);
    return res;
}

double
minimalKeepFraction(const AttentionWorkload &w,
                    const PipelineConfig &base_cfg, double loss_percent,
                    PipelineResult *result_out)
{
    // Bisection over the keep fraction; the loss proxy decreases
    // monotonically as more keys are kept.
    double lo = 0.01, hi = 1.0;
    PipelineConfig cfg = base_cfg;
    PipelineResult best;
    double best_frac = hi;

    for (int iter = 0; iter < 12; ++iter) {
        const double mid = 0.5 * (lo + hi);
        cfg.topkFrac = mid;
        PipelineResult r = runSofaPipeline(w, cfg);
        if (r.accuracyLossPct <= loss_percent) {
            best = r;
            best_frac = mid;
            hi = mid;
        } else {
            lo = mid;
        }
    }
    if (best_frac == 1.0) {
        cfg.topkFrac = 1.0;
        best = runSofaPipeline(w, cfg);
    }
    if (result_out)
        *result_out = std::move(best);
    return best_frac;
}

} // namespace sofa
