#include "core/sufa.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/logging.h"
#include "common/threadpool.h"
#include "tensor/kernels.h"

namespace sofa {

namespace {

/** Single-accumulator dot product (the pre-port scalar baseline). */
double
scoreScalar(const float *qr, const float *kr, std::size_t d)
{
    double acc = 0.0;
    for (std::size_t c = 0; c < d; ++c)
        acc += static_cast<double>(qr[c]) * kr[c];
    return acc;
}

/** Q.K inner product per cfg: blocked kernel or scalar baseline. */
double
score(const float *qr, const float *kr, std::size_t d,
      const SufaConfig &cfg)
{
    return cfg.blockedDot ? dotBlock(qr, kr, d)
                          : scoreScalar(qr, kr, d);
}

} // namespace

void
sufaAttentionRows(const MatF &q, const MatF &k, const MatF &v,
                  const SelectionList &selected, const SufaConfig &cfg,
                  std::size_t row_begin, std::size_t row_end,
                  MatF *output, OpCounter *ops_out,
                  std::int64_t *violations, std::int64_t *tiles)
{
    SOFA_ASSERT(q.cols() == k.cols());
    SOFA_ASSERT(k.rows() == v.rows());
    SOFA_ASSERT(selected.size() == q.rows());
    SOFA_ASSERT(cfg.blockCols > 0);
    SOFA_ASSERT(output->rows() == q.rows());
    SOFA_ASSERT(output->cols() == q.cols());
    SOFA_ASSERT(row_end <= q.rows());

    const std::size_t d = q.cols();
    OpCounter &ops = *ops_out;

    std::vector<double> acc(d);
    for (std::size_t r = row_begin; r < row_end; ++r) {
        Selection order = selected[r];
        if (order.empty())
            continue;
        if (cfg.order == SufaOrder::Ascending)
            std::reverse(order.begin(), order.end());

        const float *qr = q.rowPtr(r);
        std::fill(acc.begin(), acc.end(), 0.0);
        double m = -1e30;
        double l = 0.0;
        bool first = true;

        const std::size_t n = order.size();
        const std::size_t Bc = static_cast<std::size_t>(cfg.blockCols);
        for (std::size_t t0 = 0; t0 < n; t0 += Bc) {
            const std::size_t te = std::min(n, t0 + Bc);
            ++*tiles;
            for (std::size_t t = t0; t < te; ++t) {
                const int key = order[t];
                const double s = score(qr, k.rowPtr(key), d, cfg);
                ops.mulN(static_cast<std::int64_t>(d));
                ops.addN(static_cast<std::int64_t>(d) - 1);

                if (first) {
                    // Scheduler guarantees the first element is the
                    // predicted block max; no comparison needed.
                    m = s;
                    l = 1.0; // exp(s - m) = 1
                    const float *vr = v.rowPtr(key);
                    for (std::size_t c = 0; c < d; ++c)
                        acc[c] = vr[c];
                    ops.expN(1);
                    ops.addN(1);
                    first = false;
                    continue;
                }

                if (cfg.order == SufaOrder::Descending) {
                    // Max-ensuring circuit: one compare against the
                    // cached max (mode-1 check, Section IV-D).
                    ops.cmpN(1);
                    if (s > m) {
                        // Misprediction: rescale like FA-2 would.
                        ++*violations;
                        const double f = std::exp(m - s);
                        l *= f;
                        for (std::size_t c = 0; c < d; ++c)
                            acc[c] *= f;
                        ops.expN(1);
                        ops.mulN(1 + static_cast<std::int64_t>(d));
                        m = s;
                    }
                    // Eq. (2): l += exp(s - m); O += p * V.
                    const double p = std::exp(s - m);
                    l += p;
                    ops.addN(1); // s - m
                    ops.expN(1);
                    ops.addN(1); // l update: exactly one add
                    const float *vr = v.rowPtr(key);
                    for (std::size_t c = 0; c < d; ++c)
                        acc[c] += p * vr[c];
                    ops.mulN(static_cast<std::int64_t>(d));
                    ops.addN(static_cast<std::int64_t>(d));
                } else {
                    // Ascending, Eq. (1) of Fig. 10: each new element
                    // becomes the max, so l is rescaled every step —
                    // l = exp(x^(j-1) - x^(j)) * l + 1, costing one
                    // Exp, one Mul and one Add (vs descending's Exp +
                    // Add). The O rescale by the same factor rides
                    // the SA-2 partial-sum flow (the AP module folds
                    // it into the accumulation path, Section IV-D),
                    // so it adds no op-count beyond the d MACs both
                    // orders pay.
                    ops.cmpN(1); // max-ensure still checks
                    double m_new = std::max(m, s);
                    const double f = std::exp(m - m_new);
                    if (s < m)
                        ++*violations; // out-of-order predict
                    const double p = std::exp(s - m_new);
                    l = l * f + p; // p == 1 under correct ordering
                    ops.expN(1);
                    ops.mulN(1); // the extra multiplication
                    ops.addN(1);
                    if (s < m)
                        ops.expN(1); // misprediction: p != 1
                    const float *vr = v.rowPtr(key);
                    for (std::size_t c = 0; c < d; ++c)
                        acc[c] = acc[c] * f + p * vr[c];
                    ops.mulN(static_cast<std::int64_t>(d));
                    ops.addN(static_cast<std::int64_t>(d));
                    m = m_new;
                }
            }
            // Tile synchronization point (line 6 of Fig. 10(b)):
            // modeled as bookkeeping, no arithmetic.
        }

        const double inv = 1.0 / l;
        ops.divN(1);
        float *out = output->rowPtr(r);
        for (std::size_t c = 0; c < d; ++c)
            out[c] = static_cast<float>(acc[c] * inv);
        ops.mulN(static_cast<std::int64_t>(d));
    }
}

SufaResult
sufaAttention(const MatF &q, const MatF &k, const MatF &v,
              const SelectionList &selected, const SufaConfig &cfg)
{
    SOFA_ASSERT(selected.size() == q.rows());
    const std::size_t T = q.rows();
    const std::size_t d = q.cols();
    SufaResult res;
    res.output = MatF(T, d, 0.0f);
    if (T == 0)
        return res;

    // Shard query rows across the pool; counters merge with integer
    // addition, so totals are bit-exact for any thread count. Per-row
    // cost ~ kept * d MACs (estimate kept from the first row).
    ThreadPool &pool = ThreadPool::instance();
    const std::size_t nshards =
        static_cast<std::size_t>(pool.threads());
    std::vector<OpCounter> shard_ops(nshards);
    std::vector<std::int64_t> shard_viol(nshards, 0);
    std::vector<std::int64_t> shard_tiles(nshards, 0);
    const double row_cost =
        2.0 * static_cast<double>(selected[0].size()) *
        static_cast<double>(d);
    pool.parallelFor(
        T, grainForRowCost(row_cost),
        [&](std::size_t begin, std::size_t end, int shard) {
            const std::size_t s = static_cast<std::size_t>(shard);
            sufaAttentionRows(q, k, v, selected, cfg, begin, end,
                              &res.output, &shard_ops[s],
                              &shard_viol[s], &shard_tiles[s]);
        });
    for (std::size_t s = 0; s < nshards; ++s) {
        res.ops += shard_ops[s];
        res.maxViolations += shard_viol[s];
        res.tiles += shard_tiles[s];
    }
    return res;
}

SufaResult
sparseFlash2(const MatF &q, const MatF &k, const MatF &v,
             const SelectionList &selected, int block_cols)
{
    SOFA_ASSERT(q.cols() == k.cols());
    SOFA_ASSERT(selected.size() == q.rows());
    SOFA_ASSERT(block_cols > 0);

    const std::size_t T = q.rows();
    const std::size_t d = q.cols();
    SufaResult res;
    res.output = MatF(T, d, 0.0f);
    OpCounter &ops = res.ops;

    std::vector<double> acc(d);
    for (std::size_t r = 0; r < T; ++r) {
        // Without sorting information the kept keys arrive in key
        // (memory) order.
        Selection order = selected[r];
        std::sort(order.begin(), order.end());
        if (order.empty())
            continue;

        const float *qr = q.rowPtr(r);
        std::fill(acc.begin(), acc.end(), 0.0);
        double m = -1e30;
        double l = 0.0;

        const std::size_t n = order.size();
        const std::size_t Bc = static_cast<std::size_t>(block_cols);
        for (std::size_t t0 = 0; t0 < n; t0 += Bc) {
            const std::size_t te = std::min(n, t0 + Bc);
            const std::size_t bc = te - t0;
            ++res.tiles;

            std::vector<double> s(bc);
            double tile_max = -1e30;
            for (std::size_t t = t0; t < te; ++t) {
                s[t - t0] = dotBlock(qr, k.rowPtr(order[t]), d);
                tile_max = std::max(tile_max, s[t - t0]);
            }
            ops.mulN(static_cast<std::int64_t>(bc * d));
            ops.addN(static_cast<std::int64_t>(bc * (d - 1)));
            ops.cmpN(static_cast<std::int64_t>(bc - 1) + 1);

            const double m_new = std::max(m, tile_max);
            if (m_new > m && l > 0.0) {
                const double f = std::exp(m - m_new);
                l *= f;
                for (std::size_t c = 0; c < d; ++c)
                    acc[c] *= f;
            }
            // Without sorting information the engine cannot predict
            // whether a tile will move the max, so the refresh path
            // (one Exp + one Mul on l; the O rescale rides SA-2 as
            // in SU-FA) executes every tile — the "repeated
            // calculations among Tc blocks" of Fig. 5.
            ops.expN(1);
            ops.mulN(1);
            m = m_new;

            for (std::size_t j = 0; j < bc; ++j) {
                const double p = std::exp(s[j] - m);
                l += p;
                const float *vr = v.rowPtr(order[t0 + j]);
                for (std::size_t c = 0; c < d; ++c)
                    acc[c] += p * vr[c];
            }
            ops.addN(static_cast<std::int64_t>(bc));
            ops.expN(static_cast<std::int64_t>(bc));
            ops.addN(static_cast<std::int64_t>(bc));
            ops.mulN(static_cast<std::int64_t>(bc * d));
            ops.addN(static_cast<std::int64_t>(bc * d));
        }

        const double inv = 1.0 / l;
        ops.divN(1);
        float *out = res.output.rowPtr(r);
        for (std::size_t c = 0; c < d; ++c)
            out[c] = static_cast<float>(acc[c] * inv);
        ops.mulN(static_cast<std::int64_t>(d));
    }
    return res;
}

OpCounter
sufaAnalyticOps(std::int64_t rows, std::int64_t kept, int head_dim,
                SufaOrder order)
{
    OpCounter ops;
    const std::int64_t n = kept;
    const std::int64_t d = head_dim;
    // QK^T over kept keys.
    ops.mulN(rows * n * d);
    ops.addN(rows * n * (d - 1));
    if (order == SufaOrder::Descending) {
        // Per element: 1 cmp (max ensure), 1 sub, 1 exp, 1 add for l
        // (Eq. (2)), d mul + d add for O.
        ops.cmpN(rows * (n - 1));
        ops.addN(rows * (2 * n));
        ops.expN(rows * n);
        ops.mulN(rows * n * d);
        ops.addN(rows * n * d);
    } else {
        // Ascending (Eq. (1)): the l rescale adds one Mul per
        // element; O rescale folded into the SA-2 flow.
        ops.cmpN(rows * (n - 1));
        ops.addN(rows * (2 * n));
        ops.expN(rows * n);
        ops.mulN(rows * (n + n * d));
        ops.addN(rows * n * d);
    }
    ops.divN(rows);
    ops.mulN(rows * d);
    return ops;
}

OpCounter
sparseFa2AnalyticOps(std::int64_t rows, std::int64_t kept,
                     int head_dim, int block_cols)
{
    OpCounter ops;
    const std::int64_t n = kept;
    const std::int64_t d = head_dim;
    const std::int64_t Bc = block_cols;
    const std::int64_t Tc = ceilDiv(std::max<std::int64_t>(n, 1), Bc);
    // QK^T + PV MACs plus the unconditional per-tile max-refresh
    // path (1 exp + 1 mul on l per tile).
    ops.mulN(rows * (n * d + Tc + n * d));
    ops.addN(rows * (n * (d - 1) + 2 * n + n * d));
    ops.cmpN(rows * n); // rowmax per tile + running compare
    ops.expN(rows * (n + Tc));
    ops.divN(rows);
    ops.mulN(rows * d);
    return ops;
}

} // namespace sofa
