#include "core/sads.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/bits.h"
#include "common/logging.h"
#include "common/threadpool.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"

namespace sofa {

SelectionList
SadsResult::selections() const
{
    SelectionList out;
    out.reserve(rows.size());
    for (const auto &r : rows)
        out.push_back(r.selected);
    return out;
}

namespace {

/** Candidate entry: (value, index). */
struct Cand
{
    float value;
    int index;

    bool
    operator<(const Cand &o) const
    {
        if (value != o.value)
            return value > o.value; // descending
        return index < o.index;
    }
};

/**
 * One sub-segment's local selection with the iterative 16-to-4 core.
 * Returns the segment's top-m candidates (descending), the elements
 * it clipped, and its best excluded candidate (for refinement).
 */
struct SegmentResult
{
    std::vector<Cand> selected;  ///< up to m, descending
    std::vector<Cand> excluded;  ///< survivors that did not make it
    std::int64_t clipped = 0;
};

SegmentResult
segmentTopM(const float *row, int lo, int hi, int m,
            const SadsConfig &cfg, float row_span, OpCounter &ops)
{
    SegmentResult res;
    const int len = hi - lo;
    if (len <= 0 || m <= 0)
        return res;

    // Adaptive clipping threshold state (Threshold Updating unit).
    float running_max = -std::numeric_limits<float>::infinity();
    float low_bound = -std::numeric_limits<float>::infinity();
    const bool clip_enabled = cfg.radiusFrac < 1.0;
    const float radius = static_cast<float>(cfg.radiusFrac) * row_span;

    std::vector<Cand> buffer; // sorted descending, holds top-m so far
    buffer.reserve(m + cfg.sorterInputs);
    std::vector<Cand> batch;
    batch.reserve(cfg.sorterInputs);
    std::vector<std::int32_t> survivors(
        static_cast<std::size_t>(cfg.sorterInputs));

    int pos = lo;
    while (pos < hi) {
        const int chunk = std::min(cfg.sorterInputs, hi - pos);
        // The clip threshold is constant across a sorter chunk —
        // running_max and low_bound only advance after the batch
        // merge below — which is what lets the filter run as one
        // SIMD compare + compress sweep (tensor/simd.h) instead of
        // a per-element branch. Survivor order and count match the
        // scalar left-to-right filter exactly.
        float threshold = -std::numeric_limits<float>::infinity();
        if (clip_enabled &&
            running_max > -std::numeric_limits<float>::infinity()) {
            threshold = std::max(running_max - radius, low_bound);
        }
        ops.cmpN(chunk); // clip filter compare, one per element
        const std::size_t kept = simd::scanSurvivors(
            row + pos, static_cast<std::size_t>(chunk), threshold,
            survivors.data());
        res.clipped += chunk - static_cast<std::int64_t>(kept);
        batch.clear();
        for (std::size_t s = 0; s < kept; ++s) {
            const int idx = pos + survivors[s];
            batch.push_back({row[idx], idx});
        }
        pos += chunk;
        if (batch.empty())
            continue;

        // One 16-to-4 bitonic pass merges the batch with the current
        // buffer head; comparator count charged per pass.
        ops.cmpN(cfg.sorterComparators);
        for (const Cand &c : batch) {
            buffer.push_back(c);
            running_max = std::max(running_max, c.value);
        }
        std::sort(buffer.begin(), buffer.end());
        if (static_cast<int>(buffer.size()) > m) {
            // Overflowed entries become excluded candidates.
            for (std::size_t i = m; i < buffer.size(); ++i)
                res.excluded.push_back(buffer[i]);
            buffer.resize(m);
        }
        if (static_cast<int>(buffer.size()) == m)
            low_bound = buffer.back().value;
    }

    res.selected = std::move(buffer);
    // Keep only the strongest excluded candidates; hardware retains a
    // handful for the refinement exchange.
    std::sort(res.excluded.begin(), res.excluded.end());
    if (static_cast<int>(res.excluded.size()) > m)
        res.excluded.resize(m);
    return res;
}

} // namespace

void
sadsTopKRows(const MatF &scores, int k, const SadsConfig &cfg,
             std::size_t row_begin, std::size_t row_end,
             std::vector<SadsRow> *rows, OpCounter *ops)
{
    SOFA_ASSERT(cfg.segments >= 1);
    SOFA_ASSERT(cfg.sorterInputs >= 1);
    SOFA_ASSERT(rows->size() == scores.rows());
    SOFA_ASSERT(row_end <= scores.rows());
    const int S = static_cast<int>(scores.cols());
    const int n = std::min(cfg.segments, std::max(1, S));
    const int keep = std::min(k, S);
    const int per_seg = static_cast<int>(ceilDiv(keep, n));

    OpCounter &result_ops = *ops;
    for (std::size_t r = row_begin; r < row_end; ++r) {
        const float *row = scores.rowPtr(r);
        SadsRow &out = (*rows)[r];

        // Row span estimate for the clip radius (hardware tracks this
        // in the TU unit from the running max/min). min/max are
        // order-independent, so the blocked scan is bit-exact.
        float mn, mx;
        minmaxBlock(row, static_cast<std::size_t>(S), &mn, &mx);
        const float span = std::max(mx - mn, 1e-6f);

        // Distributed per-segment selection.
        std::vector<Cand> selected;
        std::vector<Cand> excluded;
        for (int seg = 0; seg < n; ++seg) {
            const int lo = static_cast<int>(
                static_cast<std::int64_t>(seg) * S / n);
            const int hi = static_cast<int>(
                static_cast<std::int64_t>(seg + 1) * S / n);
            SegmentResult sr = segmentTopM(row, lo, hi, per_seg, cfg,
                                           span, result_ops);
            out.clipped += sr.clipped;
            selected.insert(selected.end(), sr.selected.begin(),
                            sr.selected.end());
            excluded.insert(excluded.end(), sr.excluded.begin(),
                            sr.excluded.end());
        }

        std::sort(selected.begin(), selected.end());
        std::sort(excluded.begin(), excluded.end());

        // Trim the union (n * ceil(k/n) >= k) down to k; the overflow
        // joins the excluded pool.
        while (static_cast<int>(selected.size()) > keep) {
            excluded.push_back(selected.back());
            selected.pop_back();
        }
        std::sort(excluded.begin(), excluded.end());

        // Sphere-search refinement: swap the selected minimum with the
        // excluded maximum while the exchange improves the set.
        int iter = 0;
        std::size_t ex_head = 0;
        while (iter < cfg.refineIters && !selected.empty() &&
               ex_head < excluded.size()) {
            result_ops.cmpN(1 + n); // min-vs-max + per-segment reports
            if (excluded[ex_head].value <= selected.back().value)
                break;
            std::swap(selected.back(), excluded[ex_head]);
            ++ex_head;
            // Re-position the swapped-in element (sorted insert).
            std::sort(selected.begin(), selected.end());
            ++iter;
        }

        out.selected.reserve(selected.size());
        for (const Cand &c : selected)
            out.selected.push_back(c.index);
        out.top1 = selected.empty() ? -1 : selected[0].index;
        out.top2 = selected.size() > 1 ? selected[1].index : -1;
    }
}

SadsResult
sadsTopK(const MatF &scores, int k, const SadsConfig &cfg)
{
    SadsResult result;
    result.rows.resize(scores.rows());
    if (scores.rows() == 0)
        return result;

    // Shard rows across the pool; per-shard counters are merged with
    // integer addition (order-independent), so totals match a serial
    // run exactly. Per-row cost ~ S compares plus the sort passes.
    ThreadPool &pool = ThreadPool::instance();
    std::vector<OpCounter> shard_ops(
        static_cast<std::size_t>(pool.threads()));
    const std::size_t grain =
        grainForRowCost(8.0 * static_cast<double>(scores.cols()));
    pool.parallelFor(
        scores.rows(), grain,
        [&](std::size_t begin, std::size_t end, int shard) {
            sadsTopKRows(scores, k, cfg, begin, end, &result.rows,
                         &shard_ops[static_cast<std::size_t>(shard)]);
        });
    for (const OpCounter &ops : shard_ops)
        result.ops += ops;
    return result;
}

std::int64_t
vanillaSortComparisons(std::int64_t rows, std::int64_t seq)
{
    return rows * bitonicSortComparisons(seq);
}

} // namespace sofa
