/**
 * @file
 * Cross-stage tile planner: the paper's "cross-stage coordinated
 * tiling" made adaptive. A TilePlan bundles every tiling knob the
 * software stack exposes — the kernel panel/block sizes
 * (tensor/kernels runtime tiling), the engine's SU-FA row tile and
 * SADS scan span, the shard claim granularity, and the scheduler's
 * prefill chunk suggestion — and a TileCostModel scores a plan
 * analytically from the workload shape (TileShape) and the host's
 * MachineDescriptor (common/machine). planTiles() is the poplibs
 * enumerate -> cost -> argmin idiom over the small discrete
 * tileSearchGrid(): deterministic for a fixed (machine, shape) pair,
 * strict-less-than argmin with enumeration order as the tie break.
 *
 * Every plan the grid can emit is results-neutral by construction:
 * panel bytes only reorder the j sweep of matmulNT (each output is
 * still one dotf16 call), blockK stays a multiple of four so the
 * unrolled accumulation groups land on the same absolute k
 * boundaries, row tiles/spans/grains only re-shard work whose
 * per-unit tallies merge in canonical order — so autoTile engine
 * results are bit-exact vs the fixed defaults (property-tested and
 * golden-gated at tol 0). prefillChunkRows is the one knob that is
 * NOT bit-neutral (DLZS quantizes Q per chunk) and is therefore only
 * a scheduler-level suggestion, never applied inside an engine run.
 *
 * The same cost model feeds core/dse (dseTileCost in dse.h), so the
 * design-space explorer and the software tiler share one model, and
 * bench_tiler validates it predicted-vs-measured (rank agreement is
 * golden-gated; raw plan choices are machine-dependent and are not).
 *
 * Units: predicted times are seconds on the descriptor's machine
 * (relative ordering is what is validated, not absolute accuracy);
 * sizes are bytes, tiles/spans are query rows.
 */

#ifndef SOFA_CORE_TILER_H
#define SOFA_CORE_TILER_H

#include <cstddef>
#include <string>
#include <vector>

#include "common/machine.h"
#include "model/model_workload.h"

namespace sofa {

/** One coordinated choice of every tiling knob in the stack. The
 * defaults reproduce the pre-planner constants exactly. */
struct TilePlan
{
    /** tensor/kernels: matmulNT streamed-panel budget. */
    std::size_t panelBytes = 256 * 1024;
    /** tensor/kernels: matmul k-block; must be a multiple of 4 (the
     * unroll width) so results stay bit-exact across choices. */
    std::size_t blockK = 256;
    /** core/engine: query rows per SU-FA work unit. */
    int rowTile = 64;
    /** core/engine: query rows per SADS scan unit (the SADS span —
     * selection parameters are NOT tiling knobs; they change
     * results). */
    int sadsSpan = 64;
    /** core/engine: work units claimed per scheduler grab. */
    int shardGrain = 1;
    /** serve/scheduler: suggested prefill chunk rows (0 = do not
     * chunk). Advisory only — chunking is not bit-neutral. */
    int prefillChunkRows = 0;

    /** "panel=...,blockk=...,rowtile=...,sads=...,grain=...,chunk=..."
     * (bench JSON / logging; parseTilePlan round-trips it). */
    std::string describe() const;

    bool operator==(const TilePlan &o) const
    {
        return panelBytes == o.panelBytes && blockK == o.blockK &&
               rowTile == o.rowTile && sadsSpan == o.sadsSpan &&
               shardGrain == o.shardGrain &&
               prefillChunkRows == o.prefillChunkRows;
    }
    bool operator!=(const TilePlan &o) const { return !(*this == o); }
};

/** Parse a describe() string back into a plan (all six keys
 * required, any order). Returns false — @p out untouched — on a
 * malformed string or an invalid value (blockK % 4, negatives). */
bool parseTilePlan(const std::string &text, TilePlan *out);

/** The workload shape the cost model scores against. */
struct TileShape
{
    int headTasks = 4;   ///< batch * heads grid units
    int rowsPerHead = 64; ///< query rows per head (T)
    int contextLen = 512; ///< keys each row attends to (S)
    int headDim = 64;
    int tokenDim = 128;
    int pastLen = 0;      ///< keys already KV-cached
    double topkFrac = 0.2; ///< SADS keep fraction (k = frac * S)
};

/** Shape of a generated ModelWorkloadSpec under pipeline keep
 * fraction @p topk_frac. */
TileShape tileShape(const ModelWorkloadSpec &spec, double topk_frac);

/**
 * Analytic per-stage time model. Stage times combine a compute term
 * charged at a stage-specific effective throughput calibrated to the
 * software pipeline (DLZS's branchy lane-resistant shift/adds,
 * SADS's sort-heavy comparisons, KV's bookkeeping-only mask work,
 * SU-FA's dotBlock lanes), cache-residency penalties (working sets
 * spilling L1/L2/LLC), and the sharding makespan — per-chunk cost
 * times ceil(chunks_claimed / cores), plus a per-claim dispatch
 * overhead — which is what makes row tiles and shard grain matter.
 */
class TileCostModel
{
  public:
    explicit TileCostModel(MachineDescriptor m);
    /** Model over the cached process-wide descriptor. */
    TileCostModel();

    const MachineDescriptor &machine() const { return m_; }

    /** @name Predicted seconds per engine stage. @{ */
    double dlzsSeconds(const TileShape &s) const;
    double sadsSeconds(const TilePlan &p, const TileShape &s) const;
    double kvSeconds(const TileShape &s) const;
    double sufaSeconds(const TilePlan &p, const TileShape &s) const;
    /** @} */

    /** Whole-run prediction: the four stage terms summed (stages run
     * back to back; quality is a verification stage, not modeled). */
    double planSeconds(const TilePlan &p, const TileShape &s) const;

    /** @name Kernel-level predictions (single-threaded Blocked
     * kernels; bench_tiler's kernel sweep validates these). @{ */
    double matmulNTSeconds(std::size_t m, std::size_t n,
                           std::size_t k,
                           std::size_t panel_bytes) const;
    double matmulSeconds(std::size_t m, std::size_t n, std::size_t k,
                         std::size_t block_k) const;
    /** @} */

  private:
    /** Makespan of @p chunks near-equal chunks of @p work_seconds
     * total on the pool, claimed @p grain at a time. */
    double shardSeconds(double work_seconds, double chunks,
                        int grain) const;

    MachineDescriptor m_;
};

/**
 * The discrete plan grid planTiles() searches: row tiles and SADS
 * spans from a small power-of-two ladder clamped to the shape's row
 * count, shard grains {1, 2, 4}, kernel blocks from the multiple-of-
 * four ladder, panels as fractions/multiples of the machine's L2.
 * Deduplicated; deterministic order for a fixed (shape, machine).
 */
std::vector<TilePlan> tileSearchGrid(const TileShape &shape,
                                     const MachineDescriptor &m);

/** Enumerate tileSearchGrid, score with @p model, return the argmin
 * (strict <; ties keep the earlier enumeration entry). */
TilePlan planTiles(const TileShape &shape, const TileCostModel &model);

/** planTiles over the cached process-wide machine descriptor. */
TilePlan planTiles(const TileShape &shape);

/** @name SOFA_AUTOTILE wiring (the SOFA_SIMD idiom).
 * The tri-state override decides whether EngineConfig::autoTile is
 * honored: -1 follows the config flag, 0 forces the planner off, 1
 * forces it on. Initialized from SOFA_AUTOTILE=0|1 on first use.
 * @{ */
int autoTileOverride();
/** Set the override (-1 / 0 / 1); returns the previous value. */
int setAutoTileOverride(int v);
/** Whether a config with autoTile = @p cfg_flag plans this run. */
bool autoTileEnabled(bool cfg_flag);

/** RAII override for benches and tests comparing both modes. */
class ScopedAutoTile
{
  public:
    explicit ScopedAutoTile(int v) : prev_(setAutoTileOverride(v)) {}
    ~ScopedAutoTile() { setAutoTileOverride(prev_); }
    ScopedAutoTile(const ScopedAutoTile &) = delete;
    ScopedAutoTile &operator=(const ScopedAutoTile &) = delete;

  private:
    int prev_;
};
/** @} */

} // namespace sofa

#endif // SOFA_CORE_TILER_H
