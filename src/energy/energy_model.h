/**
 * @file
 * Per-operation and per-access energy model. Arithmetic energies
 * follow Horowitz's ISSCC'14 survey (45 nm numbers) scaled to the
 * target node; memory energies follow the paper's Section II-D
 * figures: DRAM ~5-20 pJ/bit, on-chip SRAM ~0.1 pJ/bit.
 */

#ifndef SOFA_ENERGY_ENERGY_MODEL_H
#define SOFA_ENERGY_ENERGY_MODEL_H

#include "attention/opcount.h"
#include "energy/tech.h"

namespace sofa {

/** Per-op energies in picojoules at a given node. */
struct OpEnergies
{
    // Integer datapath.
    double addI8 = 0.03;
    double addI16 = 0.05;
    double addI32 = 0.1;
    double mulI8 = 0.2;
    double mulI16 = 0.8;
    double mulI32 = 3.1;
    // Floating point (fp16-class formal datapath).
    double addF16 = 0.4;
    double mulF16 = 1.1;
    // Special functions (piecewise/poly units).
    double expUnit = 3.0;
    double divUnit = 2.5;
    // Bit-level.
    double shift = 0.02;
    double cmp = 0.03;

    /** Horowitz 45nm reference values. */
    static OpEnergies horowitz45();

    /** Reference values scaled to a target node (energy ~ s^2 * Vdd^2
     * relative to 45nm/0.9V). */
    static OpEnergies atNode(const TechNode &node);
};

/** Memory access energies (pJ per bit). */
struct MemEnergies
{
    double sramBit = 0.1;   ///< on-chip cache access
    double dramBit = 12.0;  ///< DRAM access, mid of the 5-20 range
    double ioBit = 4.0;     ///< memory interface (PHY + controller)

    static MemEnergies defaults();
};

/** Datapath width class used to price an op tally. */
enum class Datapath { PredictI8, FormalI16, FormalF16 };

/**
 * Energy (pJ) of an op tally on the given datapath: prediction ops
 * run on narrow integer units, formal ops on the 16-bit PEs.
 */
double opEnergyPj(const OpCounter &ops, Datapath path,
                  const OpEnergies &e);

/** Energy (pJ) of moving @p bytes through SRAM or DRAM. */
double sramEnergyPj(double bytes, const MemEnergies &e);
double dramEnergyPj(double bytes, const MemEnergies &e);
double ioEnergyPj(double bytes, const MemEnergies &e);

} // namespace sofa

#endif // SOFA_ENERGY_ENERGY_MODEL_H
