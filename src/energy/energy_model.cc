#include "energy/energy_model.h"

namespace sofa {

OpEnergies
OpEnergies::horowitz45()
{
    return OpEnergies{};
}

OpEnergies
OpEnergies::atNode(const TechNode &node)
{
    // Dynamic energy ~ C * V^2; capacitance shrinks ~linearly with
    // feature size, so relative to the 45nm/0.9V reference:
    const double s = node.nm / 45.0;
    const double v = node.vdd / 0.9;
    const double f = s * v * v;
    OpEnergies e = horowitz45();
    e.addI8 *= f;
    e.addI16 *= f;
    e.addI32 *= f;
    e.mulI8 *= f;
    e.mulI16 *= f;
    e.mulI32 *= f;
    e.addF16 *= f;
    e.mulF16 *= f;
    e.expUnit *= f;
    e.divUnit *= f;
    e.shift *= f;
    e.cmp *= f;
    return e;
}

MemEnergies
MemEnergies::defaults()
{
    return MemEnergies{};
}

double
opEnergyPj(const OpCounter &ops, Datapath path, const OpEnergies &e)
{
    double add = e.addI16, mul = e.mulI16;
    switch (path) {
      case Datapath::PredictI8:
        add = e.addI8;
        mul = e.mulI8;
        break;
      case Datapath::FormalI16:
        add = e.addI16;
        mul = e.mulI16;
        break;
      case Datapath::FormalF16:
        add = e.addF16;
        mul = e.mulF16;
        break;
    }
    return add * static_cast<double>(ops.adds()) +
           e.cmp * static_cast<double>(ops.cmps()) +
           e.shift * static_cast<double>(ops.shifts()) +
           mul * static_cast<double>(ops.muls()) +
           e.divUnit * static_cast<double>(ops.divs()) +
           e.expUnit * static_cast<double>(ops.exps());
}

double
sramEnergyPj(double bytes, const MemEnergies &e)
{
    return bytes * 8.0 * e.sramBit;
}

double
dramEnergyPj(double bytes, const MemEnergies &e)
{
    return bytes * 8.0 * e.dramBit;
}

double
ioEnergyPj(double bytes, const MemEnergies &e)
{
    return bytes * 8.0 * e.ioBit;
}

} // namespace sofa
