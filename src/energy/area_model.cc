#include "energy/area_model.h"

#include "common/logging.h"

namespace sofa {

SofaAreaModel::SofaAreaModel()
{
    modules_ = {
        {"DLZS prediction", "128x32 shift PEs, 128 LZEs", 0.351,
         29.05},
        {"Iterative SADS", "128 16-4 sort cores, 128 clipping units",
         0.679, 112.79},
        {"KV generation", "128x4 16-bit PEs", 0.875, 146.21},
        {"SU-FA module", "128x4 16-bit PEs, 128 EXP, 128 DIV", 3.012,
         485.12},
        {"Memory", "192KB Token + 96KB Weight + 28KB Temp SRAM", 0.497,
         170.23},
        {"Scheduler & Others", "-", 0.280, 6.45},
    };
}

double
SofaAreaModel::totalAreaMm2() const
{
    double a = 0.0;
    for (const auto &m : modules_)
        a += m.areaMm2;
    return a;
}

double
SofaAreaModel::totalPowerMw() const
{
    double p = 0.0;
    for (const auto &m : modules_)
        p += m.powerMw;
    return p;
}

double
SofaAreaModel::lpAreaFraction() const
{
    return (byName("DLZS prediction").areaMm2 +
            byName("Iterative SADS").areaMm2) /
           totalAreaMm2();
}

double
SofaAreaModel::lpPowerFraction() const
{
    return (byName("DLZS prediction").powerMw +
            byName("Iterative SADS").powerMw) /
           totalPowerMw();
}

const ModuleBudget &
SofaAreaModel::byName(const std::string &module) const
{
    for (const auto &m : modules_)
        if (m.module == module)
            return m;
    fatal("unknown module: %s", module.c_str());
}

DevicePower
DevicePower::atBandwidth(double gbytes_per_s)
{
    DevicePower p;
    const double scale = gbytes_per_s / 59.8;
    p.interfaceW *= scale;
    p.dramW *= scale;
    return p;
}

} // namespace sofa
