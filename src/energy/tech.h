/**
 * @file
 * CMOS technology scaling used by Table II's normalized comparison:
 * frequency scales as 1/s^2 and core power as (1/s)(1.0/Vdd)^2 with
 * s = tech_nm / 28 nm (the paper's footnote, after [61][65]). Area
 * scales as 1/s^2 (classical shrink).
 */

#ifndef SOFA_ENERGY_TECH_H
#define SOFA_ENERGY_TECH_H

namespace sofa {

/** A process node. */
struct TechNode
{
    double nm = 28.0;   ///< feature size in nanometers
    double vdd = 1.0;   ///< supply voltage
};

/** Scaling helper from one node to a reference node (default 28nm/1V). */
class TechScaler
{
  public:
    explicit TechScaler(TechNode reference = {28.0, 1.0})
        : ref_(reference)
    {}

    /** s = tech / ref. */
    double s(const TechNode &from) const { return from.nm / ref_.nm; }

    /** Scale a frequency measured at @p from to the reference node. */
    double scaleFrequency(double hz, const TechNode &from) const;

    /** Scale core power at @p from to the reference node. */
    double scalePower(double watts, const TechNode &from) const;

    /** Scale silicon area at @p from to the reference node. */
    double scaleArea(double mm2, const TechNode &from) const;

    /**
     * Scale throughput: ops/s improves with frequency, so it follows
     * the same 1/s^2 rule.
     */
    double scaleThroughput(double gops, const TechNode &from) const;

  private:
    TechNode ref_;
};

} // namespace sofa

#endif // SOFA_ENERGY_TECH_H
