/**
 * @file
 * Area and power model of the SOFA accelerator reproducing Table III:
 * per-module parameters (PE counts, SRAM capacities) mapped to mm^2
 * and mW at TSMC 28 nm / 1 GHz, with totals 5.69 mm^2 / 949.85 mW.
 */

#ifndef SOFA_ENERGY_AREA_MODEL_H
#define SOFA_ENERGY_AREA_MODEL_H

#include <string>
#include <vector>

namespace sofa {

/** One row of Table III. */
struct ModuleBudget
{
    std::string module;
    std::string parameters;
    double areaMm2 = 0.0;
    double powerMw = 0.0;
};

/** The SOFA core-part breakdown at 28 nm, 1 GHz (Table III). */
class SofaAreaModel
{
  public:
    SofaAreaModel();

    const std::vector<ModuleBudget> &modules() const
    {
        return modules_;
    }

    double totalAreaMm2() const;
    double totalPowerMw() const;

    /** Fraction of area/power attributable to the LP (low-complexity
     * prediction = DLZS + SADS) engines; the paper reports ~18% of
     * area and ~15% of power. */
    double lpAreaFraction() const;
    double lpPowerFraction() const;

    const ModuleBudget &byName(const std::string &module) const;

  private:
    std::vector<ModuleBudget> modules_;
};

/** Table IV: device-level power split at 59.8 GB/s DRAM traffic. */
struct DevicePower
{
    double coreW = 0.95;
    double interfaceW = 0.53;
    double dramW = 1.92;

    double totalW() const { return coreW + interfaceW + dramW; }

    /**
     * Scale the memory-side power linearly with achieved bandwidth
     * (the 59.8 GB/s operating point anchors the Table IV numbers).
     */
    static DevicePower atBandwidth(double gbytes_per_s);
};

} // namespace sofa

#endif // SOFA_ENERGY_AREA_MODEL_H
