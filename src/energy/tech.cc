#include "energy/tech.h"

namespace sofa {

double
TechScaler::scaleFrequency(double hz, const TechNode &from) const
{
    const double sf = s(from);
    return hz * sf * sf; // f proportional to 1/s^2
}

double
TechScaler::scalePower(double watts, const TechNode &from) const
{
    // Table II footnote: power(core) proportional to (1/s)(1.0/Vdd)^2.
    const double sf = s(from);
    const double vr = ref_.vdd / from.vdd;
    return watts * (1.0 / sf) * vr * vr;
}

double
TechScaler::scaleArea(double mm2, const TechNode &from) const
{
    const double sf = s(from);
    return mm2 / (sf * sf);
}

double
TechScaler::scaleThroughput(double gops, const TechNode &from) const
{
    const double sf = s(from);
    return gops * sf * sf;
}

} // namespace sofa
