#include "baselines/tpu.h"

#include <algorithm>

#include "common/logging.h"

namespace sofa {

TpuModel::TpuModel(TpuConfig cfg) : cfg_(cfg)
{
    SOFA_ASSERT(cfg_.bf16Tflops > 0.0 && cfg_.hbmGBs > 0.0);
}

GpuResult
TpuModel::run(const AttentionShape &shape, GpuMode mode,
              double keep_frac) const
{
    // Reuse the GPU roofline with TPU parameters. The TPU's systolic
    // arrays handle dense matmul well but its limited control
    // instructions handle the gather-heavy sparse modes worse than
    // the GPU (Section V-C), so every sparse-mode kernel-quality
    // factor is lower; the software ladder lands at the paper's
    // measured 2.9x (vs the GPU's 3.16x).
    GpuConfig g;
    g.name = cfg_.name;
    g.fp16Tflops = cfg_.bf16Tflops;
    g.hbmGBs = cfg_.hbmGBs;
    g.idlePowerW = cfg_.idlePowerW;
    g.peakPowerW = cfg_.peakPowerW;
    g.denseUtilization = cfg_.denseUtilization;
    g.utilRelLP = 0.45;
    g.utilRelFa1 = 0.7;
    g.utilRelFa2 = 0.8;
    g.utilRelSoft = 0.92;
    GpuModel model(g);
    return model.run(shape, mode, keep_frac);
}

} // namespace sofa
