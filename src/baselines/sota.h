/**
 * @file
 * The eight SOTA dynamic-sparsity accelerators the paper compares
 * against in Table II (A3, ELSA, Sanger, DOTA, Energon, DTATrans,
 * SpAtten, FACT), captured as analytic models: each row's published
 * parameters plus the tech-normalization rules of the Table II
 * footnote, and a latency model for the Llama-7B attention slice
 * (all accelerators scaled to 128 multipliers at 1 GHz).
 */

#ifndef SOFA_BASELINES_SOTA_H
#define SOFA_BASELINES_SOTA_H

#include <string>
#include <vector>

#include "energy/tech.h"

namespace sofa {

/** Sparsity style column of Table II. */
enum class SparsityStyle { Unstructured, Structured };

/** One row of Table II. */
struct SotaAccelerator
{
    std::string name;
    SparsityStyle style = SparsityStyle::Unstructured;
    double accuracyLossPct = 0.0;
    double savedComputeFrac = 0.0; ///< "Saved Comp" column
    double techNm = 40.0;
    double vdd = 1.0;            ///< published supply voltage
    double freqGhz = 1.0;
    double areaMm2 = 1.0;
    double corePowerW = 0.5;
    double ioPowerW = 0.0;       ///< 0 = not reported
    double throughputGops = 100.0;
    int multipliers = 128;       ///< datapath multipliers (for the
                                 ///< latency normalization)

    /** Core energy efficiency (GOPS/W) as published. */
    double coreEfficiency() const;

    /** Device (core+IO) efficiency; falls back to core if IO unknown. */
    double deviceEfficiency() const;

    /** Area efficiency GOPS/mm^2 as published. */
    double areaEfficiency() const;

    /**
     * Table II normalization to 28 nm / 1.0 V. The table's printed
     * numbers follow: core power scaled by (28/tech)^1.5 * (1/Vdd)^2
     * (a Dennard-style capacitance+voltage shrink), area scaled by
     * (28/tech)^2, IO power and throughput left as published (IO
     * does not shrink with logic). These rules reproduce every
     * scaled entry of the paper's Table II to within rounding.
     */
    double scaledCorePowerW() const;
    double scaledCoreEfficiency() const;
    double scaledDeviceEfficiency() const;
    double scaledAreaEfficiency() const;

    /**
     * Latency (ms) to execute a @p gops -sized attention slice after
     * normalizing every design to @p norm_multipliers multipliers at
     * @p norm_ghz (the Table II latency comparison: e.g. FACT at 928
     * GOPS with 512 muls @ 0.5 GHz -> 2 * 137 / 928 ms).
     */
    double latencyMs(double workload_gops, int norm_multipliers = 128,
                     double norm_ghz = 1.0) const;
};

/** All eight baseline rows + the SOFA row. */
std::vector<SotaAccelerator> sotaTable();

/** The SOFA row of Table II. */
SotaAccelerator sofaRow();

/** Lookup by name; fatal() on unknown. */
SotaAccelerator sotaByName(const std::string &name);

} // namespace sofa

#endif // SOFA_BASELINES_SOTA_H
