#include "baselines/sota.h"

#include <cmath>

#include "common/logging.h"

namespace sofa {

double
SotaAccelerator::coreEfficiency() const
{
    return corePowerW > 0.0 ? throughputGops / corePowerW : 0.0;
}

double
SotaAccelerator::deviceEfficiency() const
{
    const double p = corePowerW + ioPowerW;
    return p > 0.0 ? throughputGops / p : 0.0;
}

double
SotaAccelerator::areaEfficiency() const
{
    return areaMm2 > 0.0 ? throughputGops / areaMm2 : 0.0;
}

double
SotaAccelerator::scaledCorePowerW() const
{
    const double shrink = std::pow(28.0 / techNm, 1.5);
    const double vr = 1.0 / vdd;
    return corePowerW * shrink * vr * vr;
}

double
SotaAccelerator::scaledCoreEfficiency() const
{
    const double p = scaledCorePowerW();
    return p > 0.0 ? throughputGops / p : 0.0;
}

double
SotaAccelerator::scaledDeviceEfficiency() const
{
    const double p = scaledCorePowerW() + ioPowerW;
    return p > 0.0 ? throughputGops / p : 0.0;
}

double
SotaAccelerator::scaledAreaEfficiency() const
{
    const double shrink = (28.0 / techNm) * (28.0 / techNm);
    const double area = areaMm2 * shrink;
    return area > 0.0 ? throughputGops / area : 0.0;
}

double
SotaAccelerator::latencyMs(double workload_gops, int norm_multipliers,
                           double norm_ghz) const
{
    // Throughput scales with multiplier count and frequency; the
    // Table II comparison normalizes every design to the same
    // datapath (e.g. FACT: 928 GOPS at 512 muls @ 0.5 GHz becomes
    // 928 * (128/512) * (1.0/0.5) = 464 GOPS, so latency
    // 137/464 s = 2*137/928 ms-scale).
    SOFA_ASSERT(multipliers > 0 && freqGhz > 0.0);
    const double norm_gops = throughputGops *
                             (static_cast<double>(norm_multipliers) /
                              multipliers) *
                             (norm_ghz / freqGhz);
    SOFA_ASSERT(norm_gops > 0.0);
    return workload_gops / norm_gops * 1000.0;
}

std::vector<SotaAccelerator>
sotaTable()
{
    // Values transcribed from Table II. IO power of 0 means the paper
    // reports "-". Multipliers follow each design's published
    // datapath (FACT's 512 is given in the text; the others are
    // normalized from their published GOPS at their frequency).
    std::vector<SotaAccelerator> v;

    SotaAccelerator a3;
    a3.name = "A3";
    a3.style = SparsityStyle::Unstructured;
    a3.accuracyLossPct = 5.3;
    a3.savedComputeFrac = 0.40;
    a3.techNm = 40;
    a3.freqGhz = 1.0;
    a3.areaMm2 = 2.08;
    a3.corePowerW = 0.205;
    a3.ioPowerW = 0.617;
    a3.throughputGops = 221;
    a3.multipliers = 128;
    v.push_back(a3);

    SotaAccelerator elsa;
    elsa.name = "ELSA";
    elsa.style = SparsityStyle::Unstructured;
    elsa.accuracyLossPct = 2.0;
    elsa.savedComputeFrac = 0.73;
    elsa.techNm = 40;
    elsa.freqGhz = 1.0;
    elsa.areaMm2 = 1.26;
    elsa.corePowerW = 0.969;
    elsa.ioPowerW = 0.525;
    elsa.throughputGops = 1090;
    elsa.multipliers = 256;
    v.push_back(elsa);

    SotaAccelerator sanger;
    sanger.name = "Sanger";
    sanger.style = SparsityStyle::Structured;
    sanger.accuracyLossPct = 0.0;
    sanger.savedComputeFrac = 0.76;
    sanger.techNm = 55;
    sanger.freqGhz = 0.5;
    sanger.areaMm2 = 16.9;
    sanger.corePowerW = 2.76;
    sanger.throughputGops = 2285;
    sanger.multipliers = 1024;
    v.push_back(sanger);

    SotaAccelerator dota;
    dota.name = "DOTA";
    dota.style = SparsityStyle::Structured;
    dota.accuracyLossPct = 0.8;
    dota.savedComputeFrac = 0.80;
    dota.techNm = 22;
    dota.vdd = 0.85; // 22nm design point; Table II's 817 GOPS/W
                     // scaled entry implies this supply
    dota.freqGhz = 1.0;
    dota.areaMm2 = 4.44;
    dota.corePowerW = 3.02;
    dota.throughputGops = 4905;
    dota.multipliers = 1024;
    v.push_back(dota);

    SotaAccelerator energon;
    energon.name = "Energon";
    energon.style = SparsityStyle::Unstructured;
    energon.accuracyLossPct = 0.9;
    energon.savedComputeFrac = 0.77;
    energon.techNm = 45;
    energon.freqGhz = 1.0;
    energon.areaMm2 = 4.2;
    energon.corePowerW = 0.32;
    energon.ioPowerW = 2.4;
    energon.throughputGops = 1153;
    energon.multipliers = 512;
    v.push_back(energon);

    SotaAccelerator dta;
    dta.name = "DTATrans";
    dta.style = SparsityStyle::Unstructured;
    dta.accuracyLossPct = 0.74;
    dta.savedComputeFrac = 0.74;
    dta.techNm = 40;
    dta.freqGhz = 1.0;
    dta.areaMm2 = 1.49;
    dta.corePowerW = 0.734;
    dta.throughputGops = 1304;
    dta.multipliers = 256;
    v.push_back(dta);

    SotaAccelerator spatten;
    spatten.name = "SpAtten";
    spatten.style = SparsityStyle::Structured;
    spatten.accuracyLossPct = 0.9;
    spatten.savedComputeFrac = 0.67;
    spatten.techNm = 40;
    spatten.freqGhz = 1.0;
    spatten.areaMm2 = 1.55;
    spatten.corePowerW = 0.325;
    spatten.ioPowerW = 0.617;
    spatten.throughputGops = 360;
    spatten.multipliers = 128;
    v.push_back(spatten);

    SotaAccelerator fact;
    fact.name = "FACT";
    fact.style = SparsityStyle::Unstructured;
    fact.accuracyLossPct = 0.0;
    fact.savedComputeFrac = 0.79;
    fact.techNm = 28;
    fact.freqGhz = 0.5;
    fact.areaMm2 = 6.03;
    fact.corePowerW = 0.337;
    fact.throughputGops = 928;
    fact.multipliers = 512;
    v.push_back(fact);

    return v;
}

SotaAccelerator
sofaRow()
{
    SotaAccelerator s;
    s.name = "SOFA";
    s.style = SparsityStyle::Unstructured;
    s.accuracyLossPct = 0.0;
    s.savedComputeFrac = 0.82;
    s.techNm = 28;
    s.freqGhz = 1.0;
    s.areaMm2 = 5.69;
    s.corePowerW = 0.95;
    s.ioPowerW = 2.45;
    s.throughputGops = 24423;
    s.multipliers = 1024; // 128x4 KV + 128x4 SU-FA 16-bit PEs
    return s;
}

SotaAccelerator
sotaByName(const std::string &name)
{
    if (name == "SOFA")
        return sofaRow();
    for (const auto &a : sotaTable())
        if (a.name == name)
            return a;
    fatal("unknown accelerator: %s", name.c_str());
}

} // namespace sofa
