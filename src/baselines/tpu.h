/**
 * @file
 * Cloud-TPU analytic model used by the Fig. 21 breakdown: same
 * roofline structure as the GPU model, but with the TPU's systolic
 * strengths and control-flow weaknesses — better dense matmul
 * utilization, worse behaviour on fine-grained branching (DLZS) and
 * sorting, per the paper's Section V-C discussion.
 */

#ifndef SOFA_BASELINES_TPU_H
#define SOFA_BASELINES_TPU_H

#include "baselines/gpu.h"

namespace sofa {

/** TPU (v3-class) parameters. */
struct TpuConfig
{
    std::string name = "TPUv3";
    double bf16Tflops = 123.0;
    double hbmGBs = 900.0;
    double idlePowerW = 60.0;
    double peakPowerW = 220.0;
    /** Effective fraction of peak on the dense eager baseline
     * (systolic arrays fare a bit better than the GPU here). */
    double denseUtilization = 0.012;
};

/** TPU analytic model (same modes as the GPU). */
class TpuModel
{
  public:
    explicit TpuModel(TpuConfig cfg = {});

    const TpuConfig &config() const { return cfg_; }

    GpuResult run(const AttentionShape &shape, GpuMode mode,
                  double keep_frac = 0.2) const;

  private:
    TpuConfig cfg_;
};

} // namespace sofa

#endif // SOFA_BASELINES_TPU_H
