/**
 * @file
 * Roofline-style analytic model of the NVIDIA A100 GPU, with the
 * execution modes the paper evaluates on it (Section V-C, Figs. 19
 * and 21): dense attention, LP sparsity (DLZS+SADS software), LP plus
 * FlashAttention-1/2, and the full SOFA software stack. The model
 * captures compute-bound vs bandwidth-bound behaviour plus the
 * utilization penalties the paper attributes to fine-grained sparse
 * work on SIMT hardware.
 */

#ifndef SOFA_BASELINES_GPU_H
#define SOFA_BASELINES_GPU_H

#include <string>

#include "arch/accelerator.h" // AttentionShape

namespace sofa {

/** GPU execution modes of Figs. 19/21. */
enum class GpuMode {
    Dense,      ///< vanilla dense attention
    LP,         ///< low-complexity prediction sparsity, vanilla kernel
    LPFlash1,   ///< LP + FlashAttention-1 formal stage
    LPFlash2,   ///< LP + FlashAttention-2 formal stage
    SofaSoft,   ///< full SOFA software (DLZS + SADS + SU-FA)
};

/** Device parameters (A100 SXM4 defaults). */
struct GpuConfig
{
    std::string name = "A100";
    double fp16Tflops = 312.0;   ///< tensor-core peak
    double hbmGBs = 2039.0;      ///< HBM2e bandwidth
    double idlePowerW = 80.0;
    double peakPowerW = 400.0;
    /**
     * Effective fraction of fp16 peak achieved on the paper's
     * baseline measurement (PyTorch eager, unfused attention,
     * matmul only ~27% of attention latency, >50% in memory access
     * per their Fig. 16 profile): roughly 2.6 effective TFLOPS,
     * consistent with SOFA's measured 9.5x advantage at 24.4 TOPS
     * dense-equivalent throughput.
     */
    double denseUtilization = 0.0083;
    /**
     * Kernel-quality factors relative to the dense baseline, per
     * execution mode — calibrated to the paper's measured software
     * ladder (Fig. 19(b), Fig. 21(a)). The TPU wrapper overrides
     * these to express its weaker fine-grained/sparse behaviour.
     */
    double utilRelLP = 0.55;
    double utilRelFa1 = 0.9;
    double utilRelFa2 = 1.0;
    double utilRelSoft = 1.0;
};

/** Result of one modeled execution. */
struct GpuResult
{
    double timeNs = 0.0;
    double energyPj = 0.0;
    double effectiveGops = 0.0; ///< useful dense-equivalent ops/time
    /**
     * Efficiency against *dynamic* power (total minus idle), per the
     * paper's nvidia-smi measurement methodology (Section V-A).
     */
    double gopsPerWatt = 0.0;
    double powerW = 0.0;        ///< total board power
    double dynamicPowerW = 0.0; ///< workload-attributable power
};

/** A100 analytic model. */
class GpuModel
{
  public:
    explicit GpuModel(GpuConfig cfg = {});

    const GpuConfig &config() const { return cfg_; }

    /**
     * Model one attention slice.
     *
     * @param shape workload shape
     * @param mode execution mode
     * @param keep_frac kept fraction of Q-K pairs under LP sparsity
     *        (ignored for Dense)
     */
    GpuResult run(const AttentionShape &shape, GpuMode mode,
                  double keep_frac = 0.2) const;

  private:
    GpuConfig cfg_;
};

} // namespace sofa

#endif // SOFA_BASELINES_GPU_H
