#include "baselines/gpu.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sofa {

GpuModel::GpuModel(GpuConfig cfg) : cfg_(cfg)
{
    SOFA_ASSERT(cfg_.fp16Tflops > 0.0 && cfg_.hbmGBs > 0.0);
}

GpuResult
GpuModel::run(const AttentionShape &shape, GpuMode mode,
              double keep_frac) const
{
    SOFA_ASSERT(keep_frac > 0.0 && keep_frac <= 1.0);
    GpuResult res;

    const double T = static_cast<double>(shape.queries);
    const double S = static_cast<double>(shape.seq);
    const double d = static_cast<double>(shape.headDim);
    const double A = static_cast<double>(shape.heads);

    // Useful dense-equivalent work (for effective-GOPS reporting).
    const double useful_ops = 4.0 * T * S * d * A;
    const double softmax_ops = 5.0 * T * S * A;

    // Executed FLOPs, memory traffic and utilization per mode. The
    // relative utilizations are calibrated so the GPU software-mode
    // ladder reproduces the paper's measured gains (Fig. 19(b):
    // LP 1.76x, +FA-1 ~2.7x, +FA-2 ~3.2x; Fig. 21(a): full software
    // 3.16x) — we cannot re-run their A100, so the kernel-quality
    // factors are taken from their measurements.
    // Prediction as a dense int8-rate matmul over all Q-K pairs
    // (the GPU has no shift-add datapath; int8 tensor ops run at
    // ~2x fp16 rate).
    const double pred_ops = 0.5 * useful_ops * 0.5;
    double flops = 0.0;
    double bytes = 0.0;
    double util_rel = 1.0;
    switch (mode) {
      case GpuMode::Dense:
        flops = useful_ops + softmax_ops;
        // Unfused eager attention: the per-head score matrix crosses
        // HBM three times around softmax, in FP32.
        bytes = (T * d + 2.0 * S * d + T * d) * A * 2.0 +
                3.0 * T * S * A * 4.0;
        util_rel = 1.0;
        break;
      case GpuMode::LP:
        // Prediction as a dense low-precision matmul plus a sparse
        // gather-heavy formal stage that SIMT hardware dislikes.
        flops = pred_ops + keep_frac * (useful_ops + softmax_ops);
        bytes = (T * d + 2.0 * S * d + T * d) * A * 2.0 +
                T * S * A * 1.0 + // int8 predicted scores, one pass
                3.0 * keep_frac * T * S * A * 4.0;
        util_rel = cfg_.utilRelLP;
        break;
      case GpuMode::LPFlash1:
        flops = pred_ops + keep_frac * useful_ops * 1.35;
        bytes = (T * d + 2.0 * S * d + T * d) * A * 2.0 +
                T * S * A * 1.0 +
                0.2 * keep_frac * T * S * A * 4.0; // l/m statistics
        util_rel = cfg_.utilRelFa1;
        break;
      case GpuMode::LPFlash2:
        flops = pred_ops + keep_frac * useful_ops * 1.15;
        bytes = (T * d + 2.0 * S * d + T * d) * A * 2.0 +
                T * S * A * 1.0 +
                0.1 * keep_frac * T * S * A * 4.0;
        util_rel = cfg_.utilRelFa2;
        break;
      case GpuMode::SofaSoft:
        // Full software stack: SU-FA removes the FA overhead but the
        // GPU still runs prediction as dense int4 matmul (no
        // shift-add datapath) and pays gather costs.
        flops = pred_ops + keep_frac * useful_ops;
        bytes = (T * d + 2.0 * S * d + T * d) * A * 2.0 +
                T * S * A * 1.0 +
                0.1 * keep_frac * T * S * A * 4.0;
        util_rel = cfg_.utilRelSoft;
        break;
    }

    const double util =
        std::min(1.0, cfg_.denseUtilization * util_rel);
    const double ops_per_ns = cfg_.fp16Tflops * 1e3 * util;
    const double compute_ns = flops / ops_per_ns;
    const double mem_ns = bytes / cfg_.hbmGBs;
    res.timeNs = std::max(compute_ns, mem_ns);

    // Dynamic power: at the low achieved utilization of unfused
    // attention the board draws well below peak — the paper's
    // methodology subtracts idle power, leaving a few tens of watts
    // attributable to the workload.
    const double busy = compute_ns / res.timeNs;
    res.dynamicPowerW =
        (cfg_.peakPowerW - cfg_.idlePowerW) * (0.05 + 0.08 * busy);
    res.powerW = cfg_.idlePowerW + res.dynamicPowerW;
    res.energyPj = res.powerW * res.timeNs * 1e3; // W * ns -> pJ
    res.effectiveGops = useful_ops / res.timeNs;
    res.gopsPerWatt = res.effectiveGops / res.dynamicPowerW;
    return res;
}

} // namespace sofa
