#include "attention/flash.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "common/bits.h"
#include "common/logging.h"
#include "common/threadpool.h"
#include "tensor/kernels.h"

namespace sofa {

namespace {

/**
 * Shared tile loop; fa2 selects the FA-2 deferred-normalization.
 * Rows are independent, so the loop is sharded across the thread
 * pool: each shard runs the identical per-row code (bit-exact for
 * any thread count) into disjoint output rows, tallies ops locally,
 * and merges its tally once at the end (integer sums, so the total
 * is deterministic too).
 */
AttentionResult
flashImpl(const MatF &q, const MatF &k, const MatF &v,
          const FlashConfig &cfg, bool fa2)
{
    SOFA_ASSERT(q.cols() == k.cols());
    SOFA_ASSERT(k.rows() == v.rows());
    SOFA_ASSERT(cfg.blockCols > 0);

    const std::size_t T = q.rows();
    const std::size_t S = k.rows();
    const std::size_t d = q.cols();
    const std::size_t Bc = static_cast<std::size_t>(cfg.blockCols);

    AttentionResult res;
    res.output = MatF(T, d, 0.0f);
    // Empty key sequence: every row's softmax denominator l would be
    // 0 and 1/l would poison the output with inf/NaN. The attention
    // over zero keys is defined here as a zero output row.
    if (S == 0)
        return res;

    std::mutex ops_mutex;
    const std::size_t grain =
        grainForRowCost(2.0 * static_cast<double>(S) * d + 16.0 * S);

    parallelForRows(T, grain, [&](std::size_t r0, std::size_t r1) {
    OpCounter ops; // per-shard tally, merged below
    std::vector<double> acc(d);
    std::vector<double> s(std::min(Bc, S));
    for (std::size_t r = r0; r < r1; ++r) {
        const float *qr = q.rowPtr(r);
        double m = -1e30; // running max
        double l = 0.0;   // running denominator
        std::fill(acc.begin(), acc.end(), 0.0);

        for (std::size_t j0 = 0; j0 < S; j0 += Bc) {
            const std::size_t je = std::min(S, j0 + Bc);
            const std::size_t bc = je - j0;

            // S_i^(j) = Q_i K_j^T
            double tile_max = -1e30;
            for (std::size_t j = j0; j < je; ++j) {
                const double a = dotBlock(qr, k.rowPtr(j), d);
                s[j - j0] = a;
                tile_max = std::max(tile_max, a);
            }
            ops.mulN(static_cast<std::int64_t>(bc * d));
            // d == 0 has zero accumulation adds; guard the d - 1
            // from wrapping in size_t arithmetic.
            ops.addN(static_cast<std::int64_t>(bc) *
                     std::max<std::int64_t>(
                         static_cast<std::int64_t>(d) - 1, 0));
            // rowmax within tile + compare against running max.
            ops.cmpN(static_cast<std::int64_t>(bc - 1) + 1);

            const double m_new = std::max(m, tile_max);
            const bool max_changed = m_new > m && l > 0.0;

            // Rescale previous l and O when the max moved:
            // factor = exp(m_old - m_new).
            if (max_changed) {
                const double f = std::exp(m - m_new);
                l *= f;
                ops.expN(1);
                ops.mulN(1);
                for (std::size_t c = 0; c < d; ++c)
                    acc[c] *= f;
                ops.mulN(static_cast<std::int64_t>(d));
            } else if (l > 0.0 && !fa2) {
                // FA-1 performs the rescale unconditionally.
                ops.expN(1);
                ops.mulN(1 + static_cast<std::int64_t>(d));
            }
            m = m_new;

            // P_i^(j) = exp(S - m); accumulate l and O.
            for (std::size_t jj = 0; jj < bc; ++jj) {
                const double p = std::exp(s[jj] - m);
                l += p;
                const float *vr = v.rowPtr(j0 + jj);
                for (std::size_t c = 0; c < d; ++c)
                    acc[c] += p * vr[c];
            }
            ops.addN(static_cast<std::int64_t>(bc));      // subtract m
            ops.expN(static_cast<std::int64_t>(bc));
            ops.addN(static_cast<std::int64_t>(bc));      // l += p
            ops.mulN(static_cast<std::int64_t>(bc * d));  // p * V
            ops.addN(static_cast<std::int64_t>(bc * d));  // O += ...

            if (!fa2) {
                // FA-1 keeps O normalized: one divide per element per
                // tile (modeled as d multiplies by 1/l + 1 div).
                ops.divN(1);
                ops.mulN(static_cast<std::int64_t>(d));
            }
        }

        // Final O_i = diag(l)^-1 O_i.
        const double inv = 1.0 / l;
        ops.divN(1);
        float *out = res.output.rowPtr(r);
        for (std::size_t c = 0; c < d; ++c)
            out[c] = static_cast<float>(acc[c] * inv);
        ops.mulN(static_cast<std::int64_t>(d));
    }
    std::lock_guard<std::mutex> lock(ops_mutex);
    res.ops += ops;
    });
    return res;
}

} // namespace

AttentionResult
flashAttention1(const MatF &q, const MatF &k, const MatF &v,
                const FlashConfig &cfg)
{
    return flashImpl(q, k, v, cfg, false);
}

AttentionResult
flashAttention2(const MatF &q, const MatF &k, const MatF &v,
                const FlashConfig &cfg)
{
    return flashImpl(q, k, v, cfg, true);
}

OpCounter
fa2AnalyticOps(std::int64_t rows, std::int64_t seq, int block_cols,
               int head_dim)
{
    OpCounter ops;
    const std::int64_t Bc = block_cols;
    const std::int64_t Tc = ceilDiv(seq, Bc);
    const std::int64_t d = head_dim;

    // Per row, per tile: QK^T (Bc*d mul + Bc*(d-1) add), rowmax
    // (Bc-1 cmps) + running-max compare (1), worst-case rescale
    // (1 exp + (d+1) mul), tile exponentials (Bc exp + Bc sub),
    // l accumulation (Bc add), PV (Bc*d mul + Bc*d add).
    ops.mulN(rows * Tc * (Bc * d + d + 1 + Bc * d));
    ops.addN(rows * Tc * (Bc * (d - 1) + Bc + Bc + Bc * d));
    ops.cmpN(rows * Tc * Bc);
    ops.expN(rows * Tc * (Bc + 1));
    // Final normalization.
    ops.divN(rows);
    ops.mulN(rows * d);
    return ops;
}

OpCounter
vanillaAnalyticOps(std::int64_t rows, std::int64_t seq, int head_dim)
{
    OpCounter ops;
    const std::int64_t S = seq;
    const std::int64_t d = head_dim;
    ops.mulN(rows * S * d);          // QK^T
    ops.addN(rows * S * (d - 1));
    ops.cmpN(rows * (S - 1));        // one row max
    ops.addN(rows * S);              // subtract max
    ops.expN(rows * S);              // exps once
    ops.addN(rows * (S - 1));        // denominator
    ops.divN(rows);                  // reciprocal
    ops.mulN(rows * S);              // scale probs
    ops.mulN(rows * S * d);          // PV
    ops.addN(rows * (S - 1) * d);
    return ops;
}

} // namespace sofa
