/**
 * @file
 * Tiled attention kernels: FlashAttention-1 and FlashAttention-2,
 * implemented per the algorithm boxes referenced by the paper
 * (Fig. 5(a)), with exact op accounting so the "reduced memory access
 * comes with increased computation" trade-off is measurable.
 *
 * Both kernels are numerically exact (they compute the same output as
 * reference attention up to float rounding); what differs is the
 * number of exponentials, comparisons and rescaling multiplies they
 * spend maintaining the running row max/denominator across tiles.
 */

#ifndef SOFA_ATTENTION_FLASH_H
#define SOFA_ATTENTION_FLASH_H

#include "attention/opcount.h"
#include "attention/reference.h"
#include "tensor/matrix.h"

namespace sofa {

/** Tiling configuration for the flash kernels. */
struct FlashConfig
{
    int blockCols = 16; ///< Bc: keys per tile (Tc = ceil(S / Bc))
};

/**
 * FlashAttention-1: maintains running max m, denominator l and
 * *normalized* output O across tiles; every tile rescales both l and
 * the full output row when the max changes (and FA-1 rescales O by
 * l ratios each step).
 */
AttentionResult flashAttention1(const MatF &q, const MatF &k,
                                const MatF &v,
                                const FlashConfig &cfg = {});

/**
 * FlashAttention-2: keeps O unnormalized until the end, rescaling only
 * by exp(m_old - m_new) when the running max changes; one final
 * diag(l)^-1 normalization per row (Fig. 5(a) lines 5-10).
 */
AttentionResult flashAttention2(const MatF &q, const MatF &k,
                                const MatF &v,
                                const FlashConfig &cfg = {});

/**
 * Closed-form op counts for FA-2 on a [T x S] attention with tile size
 * Bc, following the paper's complexity discussion: per row, every tile
 * refreshes the running max (Bc comparisons + 1), rescales l and O
 * (d + 1 multiplies + exps when the max changes; worst case assumed),
 * and exponentiates the full tile.  Used by the Fig. 5 bench where
 * S is swept beyond what is practical to execute.
 */
OpCounter fa2AnalyticOps(std::int64_t rows, std::int64_t seq,
                         int block_cols, int head_dim);

/** Closed-form op counts for the vanilla row-wise softmax attention. */
OpCounter vanillaAnalyticOps(std::int64_t rows, std::int64_t seq,
                             int head_dim);

} // namespace sofa

#endif // SOFA_ATTENTION_FLASH_H
