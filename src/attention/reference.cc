#include "attention/reference.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/logging.h"
#include "common/threadpool.h"
#include "tensor/kernels.h"

namespace sofa {

MatF
softmaxRows(const MatF &scores, OpCounter *ops)
{
    MatF p(scores.rows(), scores.cols());
    const std::size_t S = scores.cols();
    // Zero-width rows have no max to normalize against; the softmax
    // of an empty row is the empty row.
    if (S == 0 || scores.rows() == 0)
        return p;

    std::mutex ops_mutex;
    const std::size_t grain =
        grainForRowCost(20.0 * static_cast<double>(S));
    parallelForRows(
        scores.rows(), grain, [&](std::size_t r0, std::size_t r1) {
            OpCounter local;
            for (std::size_t r = r0; r < r1; ++r) {
                const float *in = scores.rowPtr(r);
                float *out = p.rowPtr(r);
                float m = in[0];
                for (std::size_t c = 1; c < S; ++c)
                    m = std::max(m, in[c]);
                double sum = 0.0;
                for (std::size_t c = 0; c < S; ++c) {
                    out[c] = std::exp(in[c] - m);
                    sum += out[c];
                }
                const float inv = static_cast<float>(1.0 / sum);
                for (std::size_t c = 0; c < S; ++c)
                    out[c] *= inv;
                local.cmpN(static_cast<std::int64_t>(S) - 1);
                local.addN(static_cast<std::int64_t>(S)); // minus max
                local.expN(static_cast<std::int64_t>(S));
                local.addN(static_cast<std::int64_t>(S) - 1); // sum
                local.divN(1); // reciprocal once per row
                local.mulN(static_cast<std::int64_t>(S)); // scale
            }
            if (ops) {
                std::lock_guard<std::mutex> lock(ops_mutex);
                *ops += local;
            }
        });
    return p;
}

AttentionResult
referenceAttention(const MatF &q, const MatF &k, const MatF &v,
                   bool keep_probs)
{
    SOFA_ASSERT(q.cols() == k.cols());
    SOFA_ASSERT(k.rows() == v.rows());

    AttentionResult res;
    MatF scores = matmulNT(q, k);
    const std::int64_t T = static_cast<std::int64_t>(q.rows());
    const std::int64_t S = static_cast<std::int64_t>(k.rows());
    const std::int64_t d = static_cast<std::int64_t>(q.cols());
    res.ops.mulN(T * S * d);
    res.ops.addN(T * S * (d - 1));

    MatF p = softmaxRows(scores, &res.ops);

    res.output = matmul(p, v);
    res.ops.mulN(T * S * d);
    res.ops.addN(T * (S - 1) * d);

    if (keep_probs)
        res.probs = std::move(p);
    return res;
}

AttentionResult
maskedReferenceAttention(const MatF &q, const MatF &k, const MatF &v,
                         const std::vector<std::vector<int>> &selected)
{
    SOFA_ASSERT(q.cols() == k.cols());
    SOFA_ASSERT(k.rows() == v.rows());
    SOFA_ASSERT(selected.size() == q.rows());

    AttentionResult res;
    const std::size_t T = q.rows();
    const std::size_t d = q.cols();
    res.output = MatF(T, d, 0.0f);
    if (T == 0)
        return res;

    // Rows have data-dependent cost (selection sizes vary); shard by
    // the mean selection size.
    std::size_t total_sel = 0;
    for (const auto &sel : selected)
        total_sel += sel.size();
    const double mean_sel =
        static_cast<double>(total_sel) / static_cast<double>(T);
    const std::size_t grain =
        grainForRowCost(2.0 * mean_sel * static_cast<double>(d));

    std::mutex ops_mutex;
    parallelForRows(T, grain, [&](std::size_t r0, std::size_t r1) {
        OpCounter ops;
        std::vector<double> s;
        std::vector<double> p;
        for (std::size_t r = r0; r < r1; ++r) {
            const auto &sel = selected[r];
            if (sel.empty())
                continue;
            const float *qr = q.rowPtr(r);

            // Scores over the kept set only.
            s.resize(sel.size());
            double m = -1e30;
            for (std::size_t j = 0; j < sel.size(); ++j) {
                const double acc = dotBlock(qr, k.rowPtr(sel[j]), d);
                s[j] = acc;
                m = std::max(m, acc);
            }
            const std::int64_t n =
                static_cast<std::int64_t>(sel.size());
            ops.mulN(n * d);
            // d == 0 has zero accumulation adds, not -n.
            ops.addN(n * std::max<std::int64_t>(
                             static_cast<std::int64_t>(d) - 1, 0));
            ops.cmpN(n - 1);

            double sum = 0.0;
            p.resize(sel.size());
            for (std::size_t j = 0; j < sel.size(); ++j) {
                p[j] = std::exp(s[j] - m);
                sum += p[j];
            }
            ops.addN(n);
            ops.expN(n);
            ops.addN(n - 1);
            ops.divN(1);

            float *out = res.output.rowPtr(r);
            for (std::size_t j = 0; j < sel.size(); ++j) {
                const float w = static_cast<float>(p[j] / sum);
                const float *vr = v.rowPtr(sel[j]);
                for (std::size_t c = 0; c < d; ++c)
                    out[c] += w * vr[c];
            }
            ops.mulN(n * static_cast<std::int64_t>(d) + n);
            ops.addN(n * static_cast<std::int64_t>(d));
        }
        std::lock_guard<std::mutex> lock(ops_mutex);
        res.ops += ops;
    });
    return res;
}

} // namespace sofa
