#include "attention/reference.h"

#include <cmath>

#include "common/logging.h"

namespace sofa {

MatF
softmaxRows(const MatF &scores, OpCounter *ops)
{
    MatF p(scores.rows(), scores.cols());
    const std::size_t S = scores.cols();
    for (std::size_t r = 0; r < scores.rows(); ++r) {
        const float *in = scores.rowPtr(r);
        float *out = p.rowPtr(r);
        float m = in[0];
        for (std::size_t c = 1; c < S; ++c)
            m = std::max(m, in[c]);
        double sum = 0.0;
        for (std::size_t c = 0; c < S; ++c) {
            out[c] = std::exp(in[c] - m);
            sum += out[c];
        }
        const float inv = static_cast<float>(1.0 / sum);
        for (std::size_t c = 0; c < S; ++c)
            out[c] *= inv;
        if (ops) {
            ops->cmpN(static_cast<std::int64_t>(S) - 1);
            ops->addN(static_cast<std::int64_t>(S)); // subtract max
            ops->expN(static_cast<std::int64_t>(S));
            ops->addN(static_cast<std::int64_t>(S) - 1); // sum
            ops->divN(1); // reciprocal once per row
            ops->mulN(static_cast<std::int64_t>(S)); // scale
        }
    }
    return p;
}

AttentionResult
referenceAttention(const MatF &q, const MatF &k, const MatF &v,
                   bool keep_probs)
{
    SOFA_ASSERT(q.cols() == k.cols());
    SOFA_ASSERT(k.rows() == v.rows());

    AttentionResult res;
    MatF scores = matmulNT(q, k);
    const std::int64_t T = static_cast<std::int64_t>(q.rows());
    const std::int64_t S = static_cast<std::int64_t>(k.rows());
    const std::int64_t d = static_cast<std::int64_t>(q.cols());
    res.ops.mulN(T * S * d);
    res.ops.addN(T * S * (d - 1));

    MatF p = softmaxRows(scores, &res.ops);

    res.output = matmul(p, v);
    res.ops.mulN(T * S * d);
    res.ops.addN(T * (S - 1) * d);

    if (keep_probs)
        res.probs = std::move(p);
    return res;
}

AttentionResult
maskedReferenceAttention(const MatF &q, const MatF &k, const MatF &v,
                         const std::vector<std::vector<int>> &selected)
{
    SOFA_ASSERT(q.cols() == k.cols());
    SOFA_ASSERT(k.rows() == v.rows());
    SOFA_ASSERT(selected.size() == q.rows());

    AttentionResult res;
    const std::size_t T = q.rows();
    const std::size_t d = q.cols();
    res.output = MatF(T, d, 0.0f);

    for (std::size_t r = 0; r < T; ++r) {
        const auto &sel = selected[r];
        if (sel.empty())
            continue;
        const float *qr = q.rowPtr(r);

        // Scores over the kept set only.
        std::vector<double> s(sel.size());
        double m = -1e30;
        for (std::size_t j = 0; j < sel.size(); ++j) {
            const float *kr = k.rowPtr(sel[j]);
            double acc = 0.0;
            for (std::size_t c = 0; c < d; ++c)
                acc += static_cast<double>(qr[c]) * kr[c];
            s[j] = acc;
            m = std::max(m, acc);
        }
        const std::int64_t n = static_cast<std::int64_t>(sel.size());
        res.ops.mulN(n * d);
        res.ops.addN(n * (static_cast<std::int64_t>(d) - 1));
        res.ops.cmpN(n - 1);

        double sum = 0.0;
        std::vector<double> p(sel.size());
        for (std::size_t j = 0; j < sel.size(); ++j) {
            p[j] = std::exp(s[j] - m);
            sum += p[j];
        }
        res.ops.addN(n);
        res.ops.expN(n);
        res.ops.addN(n - 1);
        res.ops.divN(1);

        float *out = res.output.rowPtr(r);
        for (std::size_t j = 0; j < sel.size(); ++j) {
            const float w = static_cast<float>(p[j] / sum);
            const float *vr = v.rowPtr(sel[j]);
            for (std::size_t c = 0; c < d; ++c)
                out[c] += w * vr[c];
        }
        res.ops.mulN(n * static_cast<std::int64_t>(d) + n);
        res.ops.addN(n * static_cast<std::int64_t>(d));
    }
    return res;
}

} // namespace sofa
