/**
 * @file
 * Exact ("vanilla") attention used as the numerical ground truth and
 * as the op-count baseline that FlashAttention variants are compared
 * against (Fig. 5). Optionally applies a top-k mask, which is how the
 * formal-compute stage of a dynamic-sparsity accelerator behaves.
 */

#ifndef SOFA_ATTENTION_REFERENCE_H
#define SOFA_ATTENTION_REFERENCE_H

#include <optional>
#include <vector>

#include "attention/opcount.h"
#include "tensor/matrix.h"

namespace sofa {

/** Result of an attention computation plus its op tally. */
struct AttentionResult
{
    MatF output;        ///< O [T x d]
    MatF probs;         ///< post-softmax attention (empty if not kept)
    OpCounter ops;
};

/**
 * Exact softmax attention O = softmax(Q K^T) V.
 *
 * @param q queries [T x d]
 * @param k keys    [S x d]
 * @param v values  [S x d]
 * @param keep_probs retain the post-softmax matrix in the result
 */
AttentionResult referenceAttention(const MatF &q, const MatF &k,
                                   const MatF &v,
                                   bool keep_probs = false);

/**
 * Masked exact attention: only key indices listed per row participate
 * (softmax renormalizes over the kept set). This is the ground truth
 * for dynamic-sparsity formal computation.
 *
 * @param selected per-query list of kept key indices
 */
AttentionResult maskedReferenceAttention(
    const MatF &q, const MatF &k, const MatF &v,
    const std::vector<std::vector<int>> &selected);

/**
 * Numerically stable softmax over precomputed scores, counting ops the
 * way a row-wise hardware softmax does: one row max (S-1 comparisons),
 * S exponentials, S-1 adds, S divisions.
 */
MatF softmaxRows(const MatF &scores, OpCounter *ops = nullptr);

} // namespace sofa

#endif // SOFA_ATTENTION_REFERENCE_H
