/**
 * @file
 * Arithmetic operation counting with the normalized complexity model
 * the paper uses (Brent & Zimmermann, "Modern Computer Arithmetic"):
 * every kernel in the repository increments an OpCounter, and the
 * counter converts heterogeneous op mixes (exp, mul, add, cmp, div,
 * shift) into one normalized complexity figure so that, e.g., FA-2's
 * extra exponentiations can be compared against removed multiplies
 * (Figs. 5 and 17).
 */

#ifndef SOFA_ATTENTION_OPCOUNT_H
#define SOFA_ATTENTION_OPCOUNT_H

#include <cstdint>
#include <string>

namespace sofa {

/** Relative costs of primitive operations (units of one add). */
struct OpCosts
{
    double add = 1.0;
    double cmp = 1.0;   ///< comparison ~ subtraction
    double shift = 0.5; ///< barrel shift, cheaper than an add
    double mul = 3.0;   ///< integer/fp multiply vs add (M(n)/A(n))
    double div = 12.0;  ///< division via Newton iteration
    double exp = 15.0;  ///< exponential via argument reduction + poly

    /** Costs for a narrower (e.g. 4-bit) datapath scale roughly
     * linearly in width for add and quadratically for mul. */
    static OpCosts scaled(double width_ratio);
};

/** Tallies of primitive ops executed by a kernel. */
class OpCounter
{
  public:
    void addN(std::int64_t n = 1) { adds_ += n; }
    void cmpN(std::int64_t n = 1) { cmps_ += n; }
    void shiftN(std::int64_t n = 1) { shifts_ += n; }
    void mulN(std::int64_t n = 1) { muls_ += n; }
    void divN(std::int64_t n = 1) { divs_ += n; }
    void expN(std::int64_t n = 1) { exps_ += n; }

    std::int64_t adds() const { return adds_; }
    std::int64_t cmps() const { return cmps_; }
    std::int64_t shifts() const { return shifts_; }
    std::int64_t muls() const { return muls_; }
    std::int64_t divs() const { return divs_; }
    std::int64_t exps() const { return exps_; }

    /** Total primitive op count (unweighted). */
    std::int64_t total() const;

    /** Normalized complexity under the given cost model. */
    double normalized(const OpCosts &costs = OpCosts{}) const;

    OpCounter &operator+=(const OpCounter &o);
    void reset();

    std::string toString() const;

  private:
    std::int64_t adds_ = 0;
    std::int64_t cmps_ = 0;
    std::int64_t shifts_ = 0;
    std::int64_t muls_ = 0;
    std::int64_t divs_ = 0;
    std::int64_t exps_ = 0;
};

} // namespace sofa

#endif // SOFA_ATTENTION_OPCOUNT_H
