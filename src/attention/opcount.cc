#include "attention/opcount.h"

#include <sstream>

namespace sofa {

OpCosts
OpCosts::scaled(double width_ratio)
{
    OpCosts c;
    c.add *= width_ratio;
    c.cmp *= width_ratio;
    c.shift *= width_ratio;
    c.mul *= width_ratio * width_ratio;
    c.div *= width_ratio * width_ratio;
    c.exp *= width_ratio * width_ratio;
    return c;
}

std::int64_t
OpCounter::total() const
{
    return adds_ + cmps_ + shifts_ + muls_ + divs_ + exps_;
}

double
OpCounter::normalized(const OpCosts &costs) const
{
    return costs.add * adds_ + costs.cmp * cmps_ +
           costs.shift * shifts_ + costs.mul * muls_ +
           costs.div * divs_ + costs.exp * exps_;
}

OpCounter &
OpCounter::operator+=(const OpCounter &o)
{
    adds_ += o.adds_;
    cmps_ += o.cmps_;
    shifts_ += o.shifts_;
    muls_ += o.muls_;
    divs_ += o.divs_;
    exps_ += o.exps_;
    return *this;
}

void
OpCounter::reset()
{
    *this = OpCounter{};
}

std::string
OpCounter::toString() const
{
    std::ostringstream os;
    os << "adds=" << adds_ << " cmps=" << cmps_ << " shifts=" << shifts_
       << " muls=" << muls_ << " divs=" << divs_ << " exps=" << exps_
       << " normalized=" << normalized();
    return os.str();
}

} // namespace sofa
