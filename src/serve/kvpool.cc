#include "serve/kvpool.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace sofa {
namespace serve {

KvPool::KvPool(KvPoolConfig cfg) : cfg_(cfg), free_(cfg.pages)
{
    SOFA_ASSERT(cfg_.pages >= 0);
    SOFA_ASSERT(cfg_.pageTokens >= 1);
}

std::int64_t
KvPool::pagesFor(std::int64_t tokens, std::int64_t page_tokens)
{
    if (tokens <= 0)
        return 1; // every reservation holds at least one page
    return (tokens + page_tokens - 1) / page_tokens;
}

KvAcquire
KvPool::acquire(std::uint64_t id, std::int64_t tokens, bool pin_now)
{
    KvAcquire out;
    if (!enabled()) {
        out.ok = true;
        return out;
    }
    std::lock_guard<std::mutex> lk(m_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
        // Still resident: the reservation survived — warm. Bump the
        // LRU clock so the waiters churn in true recency order.
        it->second.recency = ++clock_;
        if (pin_now)
            it->second.pinned = true;
        out.ok = true;
        out.pages = it->second.pages;
        return out;
    }
    const std::int64_t need = pagesFor(tokens, cfg_.pageTokens);
    if (need > cfg_.pages)
        return out; // can never fit; caller sheds
    // Evict idle (unpinned) residents LRU-first until it fits.
    while (free_ < need) {
        std::uint64_t victim = 0;
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        bool found = false;
        for (const auto &e : entries_) {
            if (e.second.pinned)
                continue;
            if (e.second.recency < best) {
                best = e.second.recency;
                victim = e.first;
                found = true;
            }
        }
        if (!found)
            return out; // everything pinned: overcommitted, fail
        auto vit = entries_.find(victim);
        free_ += vit->second.pages;
        if (!vit->second.retired)
            evictedIds_.insert(victim);
        entries_.erase(vit);
        ++evictions_;
        out.evicted.push_back(victim);
    }
    free_ -= need;
    Entry e;
    e.pages = need;
    e.recency = ++clock_;
    e.pinned = pin_now;
    entries_.emplace(id, e);
    out.ok = true;
    out.pages = need;
    out.cold = evictedIds_.erase(id) > 0;
    if (out.cold)
        ++coldAcquires_;
    return out;
}

bool
KvPool::pin(std::uint64_t id)
{
    if (!enabled())
        return true;
    std::lock_guard<std::mutex> lk(m_);
    auto it = entries_.find(id);
    if (it == entries_.end())
        return false;
    it->second.pinned = true;
    it->second.recency = ++clock_;
    return true;
}

void
KvPool::unpin(std::uint64_t id)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lk(m_);
    auto it = entries_.find(id);
    if (it != entries_.end())
        it->second.pinned = false;
}

void
KvPool::retire(std::uint64_t id)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lk(m_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
        it->second.pinned = false;
        it->second.retired = true;
    }
}

void
KvPool::release(std::uint64_t id)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lk(m_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
        free_ += it->second.pages;
        entries_.erase(it);
    }
    evictedIds_.erase(id);
}

std::int64_t
KvPool::freePages() const
{
    std::lock_guard<std::mutex> lk(m_);
    return free_;
}

std::int64_t
KvPool::residentPages() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::int64_t n = 0;
    for (const auto &e : entries_)
        n += e.second.pages;
    return n;
}

std::int64_t
KvPool::pinnedPages() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::int64_t n = 0;
    for (const auto &e : entries_)
        if (e.second.pinned)
            n += e.second.pages;
    return n;
}

std::int64_t
KvPool::evictions() const
{
    std::lock_guard<std::mutex> lk(m_);
    return evictions_;
}

std::int64_t
KvPool::coldAcquires() const
{
    std::lock_guard<std::mutex> lk(m_);
    return coldAcquires_;
}

bool
KvPool::resident(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lk(m_);
    return entries_.count(id) > 0;
}

bool
KvPool::pinned(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lk(m_);
    auto it = entries_.find(id);
    return it != entries_.end() && it->second.pinned;
}

std::vector<std::uint64_t>
KvPool::lruOrder() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> idle;
    for (const auto &e : entries_)
        if (!e.second.pinned)
            idle.emplace_back(e.second.recency, e.first);
    std::sort(idle.begin(), idle.end());
    std::vector<std::uint64_t> order;
    order.reserve(idle.size());
    for (const auto &p : idle)
        order.push_back(p.second);
    return order;
}

} // namespace serve
} // namespace sofa
