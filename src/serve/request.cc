#include "serve/request.h"

#include "common/logging.h"

namespace sofa {
namespace serve {

const char *
requestKindName(RequestKind k)
{
    switch (k) {
      case RequestKind::Prefill:
        return "prefill";
      case RequestKind::Decode:
        return "decode";
    }
    return "?";
}

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Completed:
        return "completed";
      case Outcome::Degraded:
        return "degraded";
      case Outcome::Shed:
        return "shed";
      case Outcome::TimedOut:
        return "timedout";
      case Outcome::Failed:
        return "failed";
    }
    return "?";
}

std::vector<Request>
mixedTrace(const std::vector<ServingScenario> &scenarios, int n,
           ArrivalPattern pattern, double mean_gap,
           std::uint64_t seed, int max_context, int max_batch,
           int max_heads)
{
    SOFA_ASSERT(!scenarios.empty());
    SOFA_ASSERT(n >= 0);
    const std::vector<double> times =
        arrivalTimes(pattern, n, mean_gap, seed);
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(std::max(0, n)));
    for (int i = 0; i < n; ++i) {
        const std::size_t s =
            static_cast<std::size_t>(i) % scenarios.size();
        Request r;
        r.id = static_cast<std::uint64_t>(i);
        r.arrival = times[static_cast<std::size_t>(i)];
        r.work = scenarioWorkloadSpec(scenarios[s], max_context,
                                      max_batch, max_heads);
        // Decorrelated per-request stream, regenerable in isolation
        // (the same splitmix mix the grid uses per head).
        r.work.seed = headSeed(seed, i, static_cast<int>(s));
        trace.push_back(r);
    }
    return trace;
}

std::vector<Request>
multiTenantTrace(const std::vector<ServingScenario> &scenarios,
                 int tenants, int n, ArrivalPattern pattern,
                 double mean_gap, std::uint64_t seed,
                 int max_context, int max_batch, int max_heads)
{
    SOFA_ASSERT(tenants >= 1);
    std::vector<Request> trace =
        mixedTrace(scenarios, n, pattern, mean_gap, seed,
                   max_context, max_batch, max_heads);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        // Decorrelated from the scenario cycle: the same splitmix
        // mix the grid seeds use, salted so the tenant draw does not
        // collide with the workload seed stream.
        trace[i].tenant = static_cast<int>(
            headSeed(seed ^ 0x7E4A317Bull, static_cast<int>(i), 1) %
            static_cast<std::uint64_t>(tenants));
    }
    return trace;
}

std::vector<Request>
scenarioTrace(const ServingScenario &s, int n,
              ArrivalPattern pattern, double mean_gap,
              std::uint64_t seed, int max_context, int max_batch,
              int max_heads)
{
    return mixedTrace({s}, n, pattern, mean_gap, seed, max_context,
                      max_batch, max_heads);
}

} // namespace serve
} // namespace sofa
