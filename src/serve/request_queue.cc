#include "serve/request_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace sofa {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

/** EDF sort key: absolute deadline, no-deadline requests last. */
Clock::time_point
edfKey(const PendingRequest &p)
{
    return p.hasDeadline ? p.deadline : Clock::time_point::max();
}

bool
edfBefore(const PendingRequest &a, const PendingRequest &b)
{
    const Clock::time_point ka = edfKey(a), kb = edfKey(b);
    if (ka != kb)
        return ka < kb;
    return a.seqNo < b.seqNo;
}

} // namespace

const char *
schedulingPolicyName(SchedulingPolicy p)
{
    switch (p) {
      case SchedulingPolicy::FIFO:
        return "fifo";
      case SchedulingPolicy::EDF:
        return "edf";
      case SchedulingPolicy::DRR:
        return "drr";
    }
    return "?";
}

RequestQueue::RequestQueue(std::size_t capacity,
                           SchedulingPolicy policy,
                           std::int64_t drr_quantum_heads,
                           int prefill_chunk_rows)
    : capacity_(std::max<std::size_t>(1, capacity)), policy_(policy),
      quantum_(std::max<std::int64_t>(1, drr_quantum_heads)),
      chunkRows_(prefill_chunk_rows)
{
}

void
RequestQueue::enqueueLocked(PendingRequest &&p)
{
    switch (policy_) {
      case SchedulingPolicy::FIFO:
        q_.push_back(std::move(p));
        break;
      case SchedulingPolicy::EDF: {
        // Keep the deque sorted by (deadline, seqNo): a batch is
        // then always a deadline-order prefix.
        auto pos = std::upper_bound(q_.begin(), q_.end(), p,
                                    edfBefore);
        q_.insert(pos, std::move(p));
        break;
      }
      case SchedulingPolicy::DRR: {
        const int t = p.request.tenant;
        auto it = tenantQ_.find(t);
        if (it == tenantQ_.end() || it->second.empty()) {
            // Tenant (re)activates: it joins the back of the visit
            // ring with zero carried credit.
            if (it == tenantQ_.end())
                it = tenantQ_.emplace(t, std::deque<PendingRequest>{})
                         .first;
            ring_.push_back(t);
            deficit_[t] = 0;
        }
        it->second.push_back(std::move(p));
        break;
      }
    }
    ++count_;
    max_depth_ = std::max(max_depth_, count_);
}

bool
RequestQueue::push(PendingRequest &&p)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        if (closed_ || count_ >= capacity_)
            return false;
        p.seqNo = nextSeq_++;
        enqueueLocked(std::move(p));
    }
    cv_.notify_one();
    return true;
}

void
RequestQueue::pushReadmit(PendingRequest &&p)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        SOFA_ASSERT(popped_ > 0);
        --popped_;
        enqueueLocked(std::move(p)); // keeps its original seqNo
    }
    cv_.notify_all();
}

std::vector<PendingRequest>
RequestQueue::popOrderedLocked(std::int64_t head_budget,
                               std::int64_t token_budget)
{
    std::vector<PendingRequest> batch;
    // The head of the line always dispatches, whatever its size —
    // budgets bound aggregation, they never starve a request.
    std::int64_t heads = 0, tokens = 0;
    do {
        heads += q_.front().request.headTasks();
        tokens += q_.front().request.contextTokens();
        batch.push_back(std::move(q_.front()));
        q_.pop_front();
        --count_;
    } while (!q_.empty() &&
             heads + q_.front().request.headTasks() <= head_budget &&
             tokens + q_.front().request.contextTokens() <=
                 token_budget);
    return batch;
}

std::vector<PendingRequest>
RequestQueue::popDrrLocked(std::int64_t head_budget,
                           std::int64_t token_budget)
{
    std::vector<PendingRequest> batch;
    std::int64_t heads = 0, tokens = 0;
    // One continuous DRR scan with batch windows as pure cut points:
    // each round-robin visit earns the quantum exactly once and
    // spends it front-to-back on the tenant's FIFO line; a visit
    // ends only when the line empties or its head outprices the
    // remaining credit (never because the window filled). When the
    // window fills mid-visit the scan suspends — visitArmed_ keeps
    // the quantum from being re-earned — and the next popBatch
    // resumes the very same visit, so the sequence of served
    // requests is exactly single-stream DRR chopped at budget
    // boundaries and inherits its fairness bound. Batch-empty takes
    // ignore the budgets (head-of-line guarantee) but still wait for
    // credit: with a backlog the front tenant earns a quantum per
    // lap, so the wait always terminates.
    while (count_ > 0) {
        const int t = ring_.front();
        if (!visitArmed_) {
            deficit_[t] += quantum_;
            visitArmed_ = true;
        }
        auto &line = tenantQ_[t];
        bool window_full = false;
        while (!line.empty()) {
            const Request &r = line.front().request;
            const std::int64_t h = r.headTasks();
            const std::int64_t tok = r.contextTokens();
            if (!batch.empty() && (heads + h > head_budget ||
                                   tokens + tok > token_budget)) {
                window_full = true;
                break;
            }
            if (h > deficit_[t])
                break; // credit-blocked: visit over, earn next lap
            deficit_[t] -= h;
            heads += h;
            tokens += tok;
            batch.push_back(std::move(line.front()));
            line.pop_front();
            --count_;
        }
        if (window_full)
            break; // suspend mid-visit; next pop resumes tenant t
        visitArmed_ = false;
        ring_.pop_front();
        if (line.empty()) {
            // Idle tenants carry no credit: fairness is defined over
            // backlogged tenants only (classic DRR).
            tenantQ_.erase(t);
            deficit_.erase(t);
        } else {
            ring_.push_back(t);
        }
    }
    return batch;
}

std::vector<PendingRequest>
RequestQueue::popBatch(std::int64_t head_budget,
                       std::int64_t token_budget)
{
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] {
        return count_ > 0 || (closed_ && popped_ == 0);
    });
    if (count_ == 0)
        return {}; // closed, drained, and nothing can come back
    std::vector<PendingRequest> batch =
        policy_ == SchedulingPolicy::DRR
            ? popDrrLocked(head_budget, token_budget)
            : popOrderedLocked(head_budget, token_budget);
    // Only chunk-eligible requests can come back via pushReadmit;
    // everything else is handed off for good, exactly as the
    // original single-policy queue did (poppers need not call
    // finishPopped for them).
    for (const PendingRequest &p : batch)
        if (prefillChunks(p.request, chunkRows_))
            ++popped_;
    return batch;
}

void
RequestQueue::finishPopped(std::size_t n)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        SOFA_ASSERT(popped_ >= n);
        popped_ -= n;
    }
    cv_.notify_all();
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lk(m_);
    return count_;
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lk(m_);
    return closed_;
}

std::size_t
RequestQueue::maxDepth() const
{
    std::lock_guard<std::mutex> lk(m_);
    return max_depth_;
}

} // namespace serve
} // namespace sofa
