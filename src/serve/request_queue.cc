#include "serve/request_queue.h"

#include <algorithm>

namespace sofa {
namespace serve {

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{
}

bool
RequestQueue::push(PendingRequest &&p)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        if (closed_ || q_.size() >= capacity_)
            return false;
        q_.push_back(std::move(p));
        max_depth_ = std::max(max_depth_, q_.size());
    }
    cv_.notify_one();
    return true;
}

std::vector<PendingRequest>
RequestQueue::popBatch(std::int64_t head_budget,
                       std::int64_t token_budget)
{
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
    std::vector<PendingRequest> batch;
    if (q_.empty())
        return batch; // closed and drained
    // The head of the line always dispatches, whatever its size —
    // budgets bound aggregation, they never starve a request.
    std::int64_t heads = 0, tokens = 0;
    do {
        heads += q_.front().request.headTasks();
        tokens += q_.front().request.contextTokens();
        batch.push_back(std::move(q_.front()));
        q_.pop_front();
    } while (!q_.empty() &&
             heads + q_.front().request.headTasks() <= head_budget &&
             tokens + q_.front().request.contextTokens() <=
                 token_budget);
    return batch;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lk(m_);
    return q_.size();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lk(m_);
    return closed_;
}

std::size_t
RequestQueue::maxDepth() const
{
    std::lock_guard<std::mutex> lk(m_);
    return max_depth_;
}

} // namespace serve
} // namespace sofa
