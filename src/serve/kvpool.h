/**
 * @file
 * Bounded paged KV-cache memory pool: turns a decode request's
 * `pastLen` from free memory into a managed resource. Admission
 * reserves ceil(tokens / pageTokens) pages for a request's K/V rows
 * (evicting the least-recently-used *idle* — unpinned — resident's
 * pages on overflow, Tailors-style overbooking: size for the common
 * case, admit speculatively, pay a measured recovery cost). A
 * request whose reservation was evicted while it waited re-acquires
 * *cold*: its next decode step runs with an effective pastLen of 0,
 * so the engine's KV stage charges the full on-demand regeneration
 * through the existing keysCached / kvGenerationOps counters —
 * recompute cost is derived by the op-count discipline, never
 * asserted, and pool-on vs pool-off totals reconcile exactly
 * (the delta is kvGenerationOps(keys the warm run found cached)).
 *
 * Pin/unpin bracket an engine run: pinned pages are never eviction
 * victims, so a running batch cannot lose its cache mid-pipeline.
 * Completed requests stay resident (retire()) as reusable idle cache
 * until pressure evicts them; eviction order among idle residents is
 * strict LRU over a deterministic logical clock bumped at every
 * acquire/pin, so a single-lane paused scheduler replays the exact
 * same eviction schedule every run.
 *
 * Units: capacity/reservations in pages of `pageTokens` context
 * tokens; recompute charges in OpCounter ops (core/pipeline.h).
 */

#ifndef SOFA_SERVE_KVPOOL_H
#define SOFA_SERVE_KVPOOL_H

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sofa {
namespace serve {

/** KV pool sizing knobs (documented in docs/SERVING.md). */
struct KvPoolConfig
{
    /** Pool capacity in pages; 0 disables the pool entirely (every
     * acquire succeeds warm and nothing is ever evicted). */
    std::int64_t pages = 0;
    /** Context tokens per page (the block-allocation granule). */
    std::int64_t pageTokens = 16;
};

/** Outcome of KvPool::acquire. */
struct KvAcquire
{
    /** Reservation held (always true when the pool is disabled). */
    bool ok = false;
    /** The id had a reservation that was evicted since: its cached
     * pastLen is invalid and the next decode step must recompute. */
    bool cold = false;
    /** Pages now reserved for the id. */
    std::int64_t pages = 0;
    /** Victims whose pages were evicted to make room, in LRU order. */
    std::vector<std::uint64_t> evicted;
};

/**
 * The bounded page allocator. Thread-safe; every operation is O(n)
 * worst-case in resident entries (LRU scan) and deterministic given
 * the operation sequence.
 */
class KvPool
{
  public:
    explicit KvPool(KvPoolConfig cfg = {});

    KvPool(const KvPool &) = delete;
    KvPool &operator=(const KvPool &) = delete;

    const KvPoolConfig &config() const { return cfg_; }
    bool enabled() const { return cfg_.pages > 0; }

    /** Pages needed for @p tokens context tokens (>= 1 per row). */
    static std::int64_t pagesFor(std::int64_t tokens,
                                 std::int64_t page_tokens);

    /**
     * Reserve pages for @p id's @p tokens K/V rows, evicting idle
     * residents LRU-first on overflow. Re-acquiring a resident id
     * just bumps its recency (and pins when @p pin_now). Returns
     * ok=false — reserving nothing — when the demand exceeds the
     * whole capacity or every resident page is pinned; `cold` is set
     * when a previous reservation of this id was evicted in between.
     */
    KvAcquire acquire(std::uint64_t id, std::int64_t tokens,
                      bool pin_now = false);

    /** Pin @p id's pages for an engine run (not evictable until
     * unpin). False when the id is not resident — the reservation
     * was evicted while the request waited, or never made. */
    bool pin(std::uint64_t id);

    /** Release the run-time pin; the pages stay resident (idle). */
    void unpin(std::uint64_t id);

    /**
     * Mark a finished request's pages as reusable idle cache: unpins
     * and flags the entry so a later eviction of it is not recorded
     * as a cold-marker (the request never comes back for them).
     */
    void retire(std::uint64_t id);

    /** Free @p id's pages immediately (shed/timeout/failure paths);
     * a no-op when the id holds nothing. */
    void release(std::uint64_t id);

    // ---- introspection (page-conservation invariants + tests) ----
    std::int64_t capacityPages() const { return cfg_.pages; }
    std::int64_t freePages() const;
    std::int64_t residentPages() const; ///< reserved = pinned + idle
    std::int64_t pinnedPages() const;
    std::int64_t evictions() const;     ///< victims evicted, total
    std::int64_t coldAcquires() const;  ///< acquires that came back cold
    bool resident(std::uint64_t id) const;
    bool pinned(std::uint64_t id) const;
    /** Idle residents in eviction (LRU-first) order — the reference
     * order the property tests check victims against. */
    std::vector<std::uint64_t> lruOrder() const;

  private:
    struct Entry
    {
        std::int64_t pages = 0;
        std::uint64_t recency = 0; ///< logical LRU clock stamp
        bool pinned = false;
        bool retired = false; ///< finished; eviction leaves no marker
    };

    KvPoolConfig cfg_;
    mutable std::mutex m_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    /** Ids whose reservation was evicted and not yet re-acquired. */
    std::unordered_set<std::uint64_t> evictedIds_;
    std::int64_t free_ = 0;
    std::uint64_t clock_ = 0;
    std::int64_t evictions_ = 0;
    std::int64_t coldAcquires_ = 0;
};

} // namespace serve
} // namespace sofa

#endif // SOFA_SERVE_KVPOOL_H
