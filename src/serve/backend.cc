#include "serve/backend.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/threadpool.h"

namespace sofa {
namespace serve {

// ---------------------------------------------------------------
// BackendRun / Backend accounting
// ---------------------------------------------------------------

BackendRun::BackendRun(Backend &owner, std::size_t tasks)
    : owner_(owner), tasks_(tasks)
{
    std::lock_guard<std::mutex> lk(owner_.m_);
    ++owner_.inFlight_;
}

BackendRun::~BackendRun()
{
    std::lock_guard<std::mutex> lk(owner_.m_);
    --owner_.inFlight_;
}

double
BackendRun::modeledTaskSeconds(std::size_t) const
{
    return 0.0; // measured backend: wall-clock is the truth
}

EngineResult
BackendRun::finish()
{
    SOFA_ASSERT(!finished_);
    while (!done())
        step();
    EngineResult res = finishImpl();
    finished_ = true;
    {
        std::lock_guard<std::mutex> lk(owner_.m_);
        ++owner_.completedRuns_;
        owner_.completedTasks_ +=
            static_cast<std::int64_t>(tasks_);
    }
    return res;
}

Backend::Backend(std::string name) : name_(std::move(name)) {}

Backend::~Backend() = default;

std::unique_ptr<BackendRun>
Backend::begin(std::vector<HeadTask> tasks, double keep_factor)
{
    SOFA_ASSERT(keep_factor > 0.0 && keep_factor <= 1.0);
    return beginRun(std::move(tasks), keep_factor);
}

int
Backend::queueDepth() const
{
    std::lock_guard<std::mutex> lk(m_);
    return inFlight_;
}

std::int64_t
Backend::completedRuns() const
{
    std::lock_guard<std::mutex> lk(m_);
    return completedRuns_;
}

std::int64_t
Backend::completedTasks() const
{
    std::lock_guard<std::mutex> lk(m_);
    return completedTasks_;
}

EngineConfig
scaledKeepConfig(const EngineConfig &base, double keep_factor)
{
    EngineConfig ec = base;
    const double frac = ec.pipeline.topkFrac * keep_factor;
    ec.pipeline.topkFrac = std::min(1.0, std::max(1e-3, frac));
    return ec;
}

namespace {

/**
 * The one concrete run shape every backend shares: a (possibly
 * hidden) EngineRun computing the results, plus the per-task modeled
 * seconds the backend charged. Results therefore cannot drift
 * between backends — they all execute the same engine code.
 */
class WrappedEngineRun : public BackendRun
{
  public:
    WrappedEngineRun(Backend &owner, const Engine &eng,
                     std::vector<HeadTask> tasks,
                     std::vector<double> modeled,
                     double sleep_scale)
        : BackendRun(owner, tasks.size()),
          run_(eng, std::move(tasks)),
          modeled_(std::move(modeled))
    {
        if (sleep_scale > 0.0) {
            double total = 0.0;
            for (double s : modeled_)
                total += s;
            sleepPerStep_ =
                sleep_scale * total /
                static_cast<double>(std::max<std::size_t>(
                    1, run_.stageCount()));
        }
    }

    std::size_t stageCount() const override
    {
        return run_.stageCount();
    }
    const char *nextStageName() const override
    {
        return run_.nextStageName();
    }
    bool done() const override { return run_.done(); }
    void step() override
    {
        run_.step();
        if (sleepPerStep_ > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(sleepPerStep_));
    }
    void cancel(std::size_t i) override { run_.cancel(i); }
    bool cancelled(std::size_t i) const override
    {
        return run_.cancelled(i);
    }
    double modeledTaskSeconds(std::size_t i) const override
    {
        return i < modeled_.size() ? modeled_[i] : 0.0;
    }

  protected:
    EngineResult finishImpl() override { return run_.finish(); }

  private:
    EngineRun run_;
    std::vector<double> modeled_;
    double sleepPerStep_ = 0.0;
};

/** Engine cached per degraded keep factor (the base engine serves
 * keep_factor == 1; the scheduler uses at most one other factor). */
const Engine &
scaledEngine(
    const EngineConfig &base_cfg, const Engine &base,
    double keep_factor, std::mutex &m,
    std::vector<std::pair<double, std::unique_ptr<Engine>>> &cache)
{
    if (keep_factor >= 1.0)
        return base;
    std::lock_guard<std::mutex> lk(m);
    for (const auto &e : cache)
        if (e.first == keep_factor)
            return *e.second;
    cache.emplace_back(keep_factor,
                       std::make_unique<Engine>(scaledKeepConfig(
                           base_cfg, keep_factor)));
    return *cache.back().second;
}

/** The arch-model shape of one head task. Cached keys ([0, pastLen))
 * shrink the key-coverage fraction: the cycle model then charges
 * on-demand generation only for the uncached span, mirroring what
 * the engine's KV stage actually computes. */
AttentionShape
shapeOf(const HeadTask &t)
{
    AttentionShape s;
    const WorkloadSpec &ws = t.workload->spec;
    s.queries = ws.queries;
    s.seq = ws.seq;
    s.headDim = ws.headDim;
    s.heads = 1;
    s.tokenDim = ws.tokenDim;
    if (t.pastLen > 0 && ws.seq > 0) {
        const int cached = std::min(t.pastLen, ws.seq);
        s.keyCoverage *=
            static_cast<double>(ws.seq - cached) /
            static_cast<double>(ws.seq);
    }
    return s;
}

} // namespace

// ---------------------------------------------------------------
// EngineBackend
// ---------------------------------------------------------------

EngineBackend::EngineBackend(EngineBackendConfig cfg)
    : Backend(cfg.name.empty() ? "engine" : cfg.name),
      cfg_(std::move(cfg))
{
    if (cfg_.threads > 0) {
        // The fleet fix: an owned explicit pool instead of mutating
        // the process-wide default, so N backends with different
        // thread counts run concurrently without cross-talk.
        pool_ = std::make_unique<ThreadPool>(cfg_.threads);
        cfg_.engine.pool = pool_.get();
    }
    engine_ = std::make_unique<Engine>(cfg_.engine);
}

EngineBackend::~EngineBackend() = default;

BackendCapabilities
EngineBackend::capabilities() const
{
    return cfg_.caps;
}

int
EngineBackend::ownedPoolThreads() const
{
    return pool_ ? pool_->threads() : 0;
}

const Engine &
EngineBackend::engineFor(double keep_factor)
{
    return scaledEngine(cfg_.engine, *engine_, keep_factor, scaledM_,
                        scaled_);
}

std::unique_ptr<BackendRun>
EngineBackend::beginRun(std::vector<HeadTask> tasks,
                        double keep_factor)
{
    return std::make_unique<WrappedEngineRun>(
        *this, engineFor(keep_factor), std::move(tasks),
        std::vector<double>{}, 0.0);
}

// ---------------------------------------------------------------
// SimBackend
// ---------------------------------------------------------------

namespace {

/** The cycle model must price the keep fraction the hidden engine
 * actually executes, not its own default. */
SofaConfig
syncedArchConfig(SimBackendConfig &cfg)
{
    cfg.arch.topkFrac = cfg.engine.pipeline.topkFrac;
    return cfg.arch;
}

} // namespace

SimBackend::SimBackend(SimBackendConfig cfg)
    : Backend(cfg.name.empty() ? "sim" : cfg.name),
      cfg_(std::move(cfg)), accel_(syncedArchConfig(cfg_))
{
    if (cfg_.threads > 0) {
        pool_ = std::make_unique<ThreadPool>(cfg_.threads);
        cfg_.engine.pool = pool_.get();
    }
    engine_ = std::make_unique<Engine>(cfg_.engine);
}

SimBackend::~SimBackend() = default;

BackendCapabilities
SimBackend::capabilities() const
{
    return cfg_.caps;
}

std::unique_ptr<BackendRun>
SimBackend::beginRun(std::vector<HeadTask> tasks,
                     double keep_factor)
{
    std::vector<double> modeled(tasks.size(), 0.0);
    if (keep_factor >= 1.0) {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            modeled[i] = accel_.run(shapeOf(tasks[i])).timeNs * 1e-9;
    } else {
        // Degraded service keeps a smaller SADS span; price the
        // cycle model at the keep fraction actually executed.
        SofaConfig ac = cfg_.arch;
        ac.topkFrac = scaledKeepConfig(cfg_.engine, keep_factor)
                          .pipeline.topkFrac;
        const SofaAccelerator accel(ac);
        for (std::size_t i = 0; i < tasks.size(); ++i)
            modeled[i] = accel.run(shapeOf(tasks[i])).timeNs * 1e-9;
    }
    const Engine &eng = scaledEngine(cfg_.engine, *engine_,
                                     keep_factor, scaledM_, scaled_);
    return std::make_unique<WrappedEngineRun>(
        *this, eng, std::move(tasks), std::move(modeled),
        cfg_.sleepScale);
}

// ---------------------------------------------------------------
// AnalyticBackend
// ---------------------------------------------------------------

namespace {

std::string
analyticName(const AnalyticBackendConfig &cfg)
{
    if (!cfg.name.empty())
        return cfg.name;
    return cfg.device == AnalyticDevice::GPU ? cfg.gpu.name
                                             : cfg.tpu.name;
}

} // namespace

AnalyticBackend::AnalyticBackend(AnalyticBackendConfig cfg)
    : Backend(analyticName(cfg)), cfg_(std::move(cfg)),
      gpu_(cfg_.gpu), tpu_(cfg_.tpu)
{
    if (cfg_.threads > 0) {
        pool_ = std::make_unique<ThreadPool>(cfg_.threads);
        cfg_.engine.pool = pool_.get();
    }
    engine_ = std::make_unique<Engine>(cfg_.engine);
}

AnalyticBackend::~AnalyticBackend() = default;

BackendCapabilities
AnalyticBackend::capabilities() const
{
    return cfg_.caps;
}

std::unique_ptr<BackendRun>
AnalyticBackend::beginRun(std::vector<HeadTask> tasks,
                          double keep_factor)
{
    const double keep =
        scaledKeepConfig(cfg_.engine, keep_factor).pipeline.topkFrac;
    std::vector<double> modeled(tasks.size(), 0.0);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const AttentionShape shape = shapeOf(tasks[i]);
        const GpuResult r =
            cfg_.device == AnalyticDevice::GPU
                ? gpu_.run(shape, cfg_.mode, keep)
                : tpu_.run(shape, cfg_.mode, keep);
        modeled[i] = r.timeNs * 1e-9;
    }
    const Engine &eng = scaledEngine(cfg_.engine, *engine_,
                                     keep_factor, scaledM_, scaled_);
    return std::make_unique<WrappedEngineRun>(
        *this, eng, std::move(tasks), std::move(modeled), 0.0);
}

// ---------------------------------------------------------------
// Routing
// ---------------------------------------------------------------

const char *
routingPolicyName(RoutingPolicy p)
{
    switch (p) {
      case RoutingPolicy::RoundRobin:
        return "roundrobin";
      case RoutingPolicy::LeastQueueDepth:
        return "leastqueuedepth";
      case RoutingPolicy::Disaggregated:
        return "disaggregated";
    }
    return "?";
}

int
routeRequest(RoutingPolicy policy, RequestKind kind,
             const std::vector<BackendCapabilities> &caps,
             const std::vector<std::int64_t> &depths,
             std::uint64_t rr_counter)
{
    SOFA_ASSERT(!caps.empty());
    SOFA_ASSERT(caps.size() == depths.size());
    const auto serves = [&](const BackendCapabilities &c) {
        return kind == RequestKind::Decode ? c.supportsDecode
                                           : c.supportsPrefill;
    };
    std::vector<int> elig;
    elig.reserve(caps.size());
    for (std::size_t i = 0; i < caps.size(); ++i)
        if (serves(caps[i]))
            elig.push_back(static_cast<int>(i));
    if (elig.empty())
        // No backend advertises the kind: routing stays total (the
        // capability filter is advisory, correctness is universal).
        for (std::size_t i = 0; i < caps.size(); ++i)
            elig.push_back(static_cast<int>(i));
    if (policy == RoutingPolicy::Disaggregated &&
        kind == RequestKind::Prefill) {
        // Keep the KV-cache-warm (decode-capable) shards for decode
        // work when dedicated prefill backends exist.
        std::vector<int> pure;
        for (int i : elig)
            if (!caps[static_cast<std::size_t>(i)].supportsDecode)
                pure.push_back(i);
        if (!pure.empty())
            elig = std::move(pure);
    }
    if (policy == RoutingPolicy::RoundRobin)
        return elig[static_cast<std::size_t>(
            rr_counter % elig.size())];
    int best = elig[0];
    for (int i : elig)
        if (depths[static_cast<std::size_t>(i)] <
            depths[static_cast<std::size_t>(best)])
            best = i;
    return best;
}

} // namespace serve
} // namespace sofa
