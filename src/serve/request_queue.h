/**
 * @file
 * Bounded admission queue between Scheduler::submit and the
 * dispatcher, with pluggable batch-formation order (SchedulingPolicy):
 *
 *  - FIFO (default): strict arrival order, bit-compatible with the
 *    original single-policy queue — the head of the line always
 *    dispatches and a front-contiguous run extends it under the
 *    head-task and context-token budgets, so no request can be
 *    starved by later arrivals.
 *  - EDF: earliest-deadline-first — requests order by their absolute
 *    deadline (no-deadline requests sort last, FIFO among
 *    themselves), and a batch is always a deadline-order prefix: a
 *    later-deadline request is never dispatched while an earlier-
 *    deadline one that fit the same batch window waits.
 *  - DRR: deficit-round-robin per-tenant fairness over
 *    Request.tenant — each tenant's deficit counter earns
 *    `drr_quantum_heads` head tasks of credit per round-robin visit
 *    and spends it on its FIFO-ordered requests. Batch windows are
 *    pure cut points in one continuous DRR scan (a window that fills
 *    mid-visit suspends the visit and the next pop resumes it), so
 *    the served sequence is exactly single-stream deficit round
 *    robin and any two continuously backlogged tenants' served head
 *    tasks stay within one quantum plus one max-size request of one
 *    another — the classic Shreedhar-Varghese bound, independent of
 *    the batch budgets.
 *
 * Admission is capacity-checked at push (queue full => the caller
 * sheds the request explicitly — nothing is ever dropped inside the
 * queue). The capacity intentionally overbooks the in-flight lanes —
 * Tailors-style: admit more work than worst-case concurrent capacity
 * and shed only beyond the buffer. pushReadmit re-enqueues an
 * already-admitted request (a chunked prefill's continuation)
 * bypassing the capacity check. Chunk-eligible requests (see
 * prefillChunks) are tracked from pop until they readmit or their
 * owner calls finishPopped, so a closed queue does not report
 * drained while a continuation may still come back; requests that
 * cannot chunk carry no such obligation and popBatch hands them off
 * exactly as the original single-policy queue did.
 *
 * Units: capacity and depth in requests; budgets in head tasks and
 * context tokens; DRR quantum in head tasks (see serve/request.h).
 */

#ifndef SOFA_SERVE_REQUEST_QUEUE_H
#define SOFA_SERVE_REQUEST_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace sofa {
namespace serve {

/** Batch-formation order (docs/SERVING.md has the policy table). */
enum class SchedulingPolicy {
    FIFO, ///< arrival order (the default; original behaviour)
    EDF,  ///< earliest absolute deadline first, FIFO tiebreak
    DRR,  ///< deficit round robin across Request.tenant
};

/** Stable lower-case policy name ("fifo", "edf", "drr"). */
const char *schedulingPolicyName(SchedulingPolicy p);

/** Whether @p r dispatches as query-row chunks under a
 * `prefill_chunk_rows` setting of @p chunk_rows — the predicate the
 * queue (readmit obligations) and the scheduler (chunk dispatch)
 * must agree on. */
inline bool
prefillChunks(const Request &r, int chunk_rows)
{
    return chunk_rows > 0 && !r.work.isDecode() &&
           r.work.queryRows() > chunk_rows;
}

/**
 * Progress state of a chunked prefill riding its PendingRequest
 * between dispatches: the workload is materialized once, each
 * dispatch runs one query-row chunk, and the accumulated per-chunk
 * head results stitch into the final aggregate (scheduler.cc).
 */
struct ChunkState
{
    ModelWorkload work;
    int rowsDone = 0; ///< query rows already computed per head
    int runs = 0;     ///< engine runs consumed by previous chunks
    std::vector<HeadResult> heads; ///< per-chunk results, in order
};

/** A request waiting in the queue, with its completion promise. */
struct PendingRequest
{
    Request request;
    std::promise<RequestResult> promise;
    std::chrono::steady_clock::time_point submitted;
    /** Absolute deadline, resolved by the scheduler at submit()
     * (EDF's sort key; also the timeout the dispatcher enforces). */
    bool hasDeadline = false;
    std::chrono::steady_clock::time_point deadline{};
    /** Arrival order, assigned at push — FIFO order and every
     * policy's deterministic tiebreak. */
    std::uint64_t seqNo = 0;
    /** Fleet shard the request was routed to at admission (the
     * scheduler sets it before push; 0 on a single-backend fleet). */
    int backend = 0;
    /** Non-null while a chunked prefill is in progress. */
    std::shared_ptr<ChunkState> chunk;
};

class RequestQueue
{
  public:
    /** Queue admitting at most @p capacity waiting requests, popped
     * in @p policy order (@p drr_quantum_heads is DRR's per-visit
     * credit, in head tasks; other policies ignore it).
     * @p prefill_chunk_rows mirrors the scheduler's chunking knob so
     * the queue knows which popped requests may come back through
     * pushReadmit (0 = none, the default). */
    explicit RequestQueue(
        std::size_t capacity,
        SchedulingPolicy policy = SchedulingPolicy::FIFO,
        std::int64_t drr_quantum_heads = 8,
        int prefill_chunk_rows = 0);

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    SchedulingPolicy policy() const { return policy_; }

    /**
     * Admit @p p. Returns false — leaving @p p untouched, so the
     * caller can resolve its promise as Shed — when the queue holds
     * `capacity` requests or has been closed.
     */
    bool push(PendingRequest &&p);

    /**
     * Re-enqueue an already-admitted request (a chunked prefill
     * continuation): bypasses the capacity and closed checks — the
     * request was admitted once and must drain — keeps its original
     * seqNo/deadline keys, and retires one popped-but-unresolved
     * slot. FIFO appends it behind the current backlog (decode
     * arrivals preempt the remaining chunks), EDF re-inserts by
     * deadline, DRR appends to its tenant's line.
     */
    void pushReadmit(PendingRequest &&p);

    /**
     * Pop a batch in policy order: blocks until at least one request
     * is available (the first-chosen request is taken whatever its
     * size), then extends while the policy's next candidate fits the
     * remaining head-task and context-token budgets. Returns an
     * empty batch only once the queue is closed, drained, *and* no
     * popped request is still unresolved (finishPopped/pushReadmit
     * retire them).
     */
    std::vector<PendingRequest> popBatch(std::int64_t head_budget,
                                         std::int64_t token_budget);

    /** Retire @p n popped requests whose promises resolved. */
    void finishPopped(std::size_t n);

    /** Stop admitting; popBatch keeps draining what was admitted. */
    void close();

    std::size_t size() const;
    bool closed() const;
    /** High-water mark of the waiting depth (for stats). */
    std::size_t maxDepth() const;

  private:
    void enqueueLocked(PendingRequest &&p);
    std::vector<PendingRequest> popOrderedLocked(
        std::int64_t head_budget, std::int64_t token_budget);
    std::vector<PendingRequest> popDrrLocked(
        std::int64_t head_budget, std::int64_t token_budget);

    const std::size_t capacity_;
    const SchedulingPolicy policy_;
    const std::int64_t quantum_;
    const int chunkRows_;
    mutable std::mutex m_;
    std::condition_variable cv_;
    /** FIFO: arrival order; EDF: kept sorted by (deadline, seqNo). */
    std::deque<PendingRequest> q_;
    /** DRR: per-tenant FIFO lines + the round-robin visit ring and
     * per-tenant deficit credit (head tasks). */
    std::map<int, std::deque<PendingRequest>> tenantQ_;
    std::deque<int> ring_;
    std::map<int, std::int64_t> deficit_;
    /** DRR: true while the ring-front tenant's current visit has
     * earned its quantum but was suspended by a full batch window —
     * the next popBatch resumes that visit without re-earning. */
    bool visitArmed_ = false;
    std::size_t count_ = 0;  ///< waiting requests, all policies
    std::size_t popped_ = 0; ///< popped, not yet finished/readmitted
    std::uint64_t nextSeq_ = 0;
    std::size_t max_depth_ = 0;
    bool closed_ = false;
};

} // namespace serve
} // namespace sofa

#endif // SOFA_SERVE_REQUEST_QUEUE_H
