/**
 * @file
 * Bounded FIFO admission queue between Scheduler::submit and the
 * dispatcher. Admission is capacity-checked at push (queue full =>
 * the caller sheds the request explicitly — nothing is ever dropped
 * inside the queue), and batch formation pops a front-contiguous run
 * of requests under head-task and context-token budgets: FIFO order
 * is never violated, so no request can be starved by later arrivals
 * (the fairness policy). The capacity intentionally overbooks the
 * in-flight lanes — Tailors-style: admit more work than worst-case
 * concurrent capacity and shed only beyond the buffer.
 *
 * Units: capacity and depth in requests; budgets in head tasks and
 * context tokens (see serve/request.h).
 */

#ifndef SOFA_SERVE_REQUEST_QUEUE_H
#define SOFA_SERVE_REQUEST_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace sofa {
namespace serve {

/** A request waiting in the queue, with its completion promise. */
struct PendingRequest
{
    Request request;
    std::promise<RequestResult> promise;
    std::chrono::steady_clock::time_point submitted;
};

class RequestQueue
{
  public:
    /** Queue admitting at most @p capacity waiting requests. */
    explicit RequestQueue(std::size_t capacity);

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Admit @p p. Returns false — leaving @p p untouched, so the
     * caller can resolve its promise as Shed — when the queue holds
     * `capacity` requests or has been closed.
     */
    bool push(PendingRequest &&p);

    /**
     * Pop a front-contiguous batch: blocks until at least one
     * request is available (that first request is taken whatever its
     * size), then greedily extends while the next request fits both
     * the remaining head-task and context-token budgets. Returns an
     * empty batch only once the queue is closed *and* drained.
     */
    std::vector<PendingRequest> popBatch(std::int64_t head_budget,
                                         std::int64_t token_budget);

    /** Stop admitting; popBatch keeps draining what was admitted. */
    void close();

    std::size_t size() const;
    bool closed() const;
    /** High-water mark of the waiting depth (for stats). */
    std::size_t maxDepth() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex m_;
    std::condition_variable cv_;
    std::deque<PendingRequest> q_;
    std::size_t max_depth_ = 0;
    bool closed_ = false;
};

} // namespace serve
} // namespace sofa

#endif // SOFA_SERVE_REQUEST_QUEUE_H
