/**
 * @file
 * Asynchronous request scheduler over the stage-structured engine
 * (core/engine): many ModelWorkload requests — prefill and KV-cache
 * decode, mixed — run through one engine concurrently. The pipeline
 * is admission (bounded queue, explicit shedding) -> continuous
 * batch formation (front-contiguous requests merged up to head-task
 * and context-token budgets, formed only when a lane frees up so
 * late arrivals can still join) -> lane dispatch (a common/
 * threadpool TaskQueue runs up to `lanes` engine runs concurrently,
 * each stepping its EngineRun stage by stage, so one request's SU-FA
 * overlaps another's SADS on the shared pool).
 *
 * Determinism contract: an identical request trace + seed yields
 * identical per-request *numerical* results (outputs, selections,
 * op counts, quality) at any thread count, lane count, or batch
 * composition — each head task computes independently and the
 * engine is bit-exact, so co-scheduling changes only wall-clock.
 * Shedding is timing-dependent under open-loop overload; construct
 * with `startPaused` and call start() later for deterministic
 * admission experiments.
 *
 * SLO-aware serving (serving v2): batch formation is pluggable
 * through SchedulingPolicy — FIFO (default, bit-compatible with the
 * original scheduler), earliest-deadline-first over the per-request
 * deadline, and deficit-round-robin fairness across Request.tenant.
 * Long prefills can be chunked (`prefillChunkRows`) so decode
 * batches preempt between query-row chunks, and decode `pastLen` is
 * backed by the bounded paged KV pool (serve/kvpool): admission
 * reserves pages, overflow evicts idle requests LRU-first, and an
 * evicted request's next decode step runs cold — the recompute cost
 * is charged through the engine's exact keysCached/kvGenerationOps
 * counters, so pool-on vs pool-off op totals reconcile exactly.
 *
 * Multi-backend fleet (serving v3): the lanes sit behind a fleet of
 * executor Backends (serve/backend) — in-process engines with their
 * own thread pools, cycle-model simulators, analytic GPU/TPU models.
 * Each backend gets a shard: its own admission queue, KV pool
 * (decode-capable backends only — the "KV-cache-warm" class), lane
 * TaskQueue and dispatcher. Requests are placed on a shard at
 * admission by the RoutingPolicy (round-robin default — one implicit
 * EngineBackend reproduces the single-engine scheduler bit-exactly —
 * least-queue-depth, or prefill/decode disaggregation). Every
 * backend executes identical per-task numerics, so the bit-exactness
 * contract holds for any fleet mix; RequestResult.backend records
 * the placement for the routing-determinism property tests.
 *
 * Fault tolerance (the robustness layer): per-request deadlines
 * cancel expired work cooperatively at EngineRun stage boundaries
 * (Outcome::TimedOut), failed engine runs are retried solo with
 * bounded exponential backoff + deterministic jitter
 * (Outcome::Failed only after the budget), and requests queued past
 * `degradeAfterSeconds` run on a cheaper engine config — reduced
 * SADS keep span — instead of waiting for full service
 * (Outcome::Degraded). Every failure path is reproducible through
 * the seeded common/faultplan injection hooks probed at each stage
 * boundary; see docs/SERVING.md for the fault model.
 *
 * Units: latencies in seconds (steady clock); budgets in head tasks
 * and context tokens; results carry OpCounter ops (core/pipeline.h).
 */

#ifndef SOFA_SERVE_SCHEDULER_H
#define SOFA_SERVE_SCHEDULER_H

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/faultplan.h"
#include "core/engine.h"
#include "serve/backend.h"
#include "serve/kvpool.h"
#include "serve/request.h"
#include "serve/request_queue.h"

namespace sofa {
class TaskQueue;

namespace serve {

/**
 * Bounded-retry policy for transiently-failed engine runs. The
 * backoff before attempt N (N >= 1, 0-based) is
 * baseSeconds * 2^(N-1), capped at maxSeconds, scaled by a
 * deterministic jitter factor in [1 - jitterFrac, 1 + jitterFrac)
 * hashed from (seed, request id, attempt) — no RNG stream, so the
 * schedule replays bit-identically (see retryBackoffSeconds).
 */
struct RetryPolicy
{
    /** Total engine-run attempts per request (first try included);
     * Outcome::Failed only after all of them failed. */
    int maxAttempts = 3;
    /** Backoff before the first retry, in seconds. */
    double baseSeconds = 1e-3;
    /** Upper bound on any single backoff, in seconds. */
    double maxSeconds = 0.1;
    /** Jitter half-width as a fraction of the backoff. */
    double jitterFrac = 0.25;
    /** Salt of the jitter hash. */
    std::uint64_t seed = 0;
};

/** Scheduler tuning knobs (documented in docs/SERVING.md). */
struct SchedulerConfig
{
    /** Engine hyperparameters, rowTile and pool (core/engine.h). */
    EngineConfig engine;
    /** Concurrent engine runs in flight (TaskQueue workers). */
    int lanes = 2;
    /** Max head tasks merged into one engine run. */
    std::int64_t headBudget = 16;
    /** Max context tokens merged into one engine run. */
    std::int64_t tokenBudget = 1 << 20;
    /** Admission capacity: waiting requests beyond this are shed
     * (resolved immediately with Outcome::Shed). Deliberately
     * overbooks lanes*headBudget — queue depth absorbs bursts. */
    std::size_t maxQueue = 256;
    /** Batch-formation order: FIFO (default, bit-compatible with
     * the single-policy scheduler), EDF over the per-request
     * deadline, or DRR fairness across Request.tenant (see
     * serve/request_queue.h for the exact semantics). */
    SchedulingPolicy policy = SchedulingPolicy::FIFO;
    /** DRR credit earned per tenant visit, in head tasks. */
    std::int64_t drrQuantumHeads = 8;
    /**
     * Decode-latency SLO lever: a prefill with more query rows than
     * this runs one row-chunk per dispatch and re-enqueues its
     * continuation, so decode batches preempt between chunks. Each
     * chunk is bit-exact vs a standalone engine run of the same
     * row-sliced workload (sliceQueryRows) and the whole schedule is
     * deterministic; relative to the *unchunked* run, the DLZS
     * predictor quantizes Q per chunk, so selections can move at the
     * approximation margin, and op counters pay the repeated K-hat
     * prediction — both documented chunk overheads. 0 disables
     * chunking (the default).
     */
    int prefillChunkRows = 0;
    /** Bounded paged KV-cache pool backing decode pastLen
     * (serve/kvpool.h); kvPool.pages == 0 disables it (pastLen
     * stays a free resource, today's behaviour). */
    KvPoolConfig kvPool;
    /** Admit but do not dispatch until start() — deterministic
     * admission/shedding experiments and maximal first batches. */
    bool startPaused = false;
    /** Deadline for requests that don't set their own, in seconds
     * from submit(); 0 = no deadline (the default). */
    double defaultDeadlineSeconds = 0.0;
    /** Bounded retry with exponential backoff for failed runs. */
    RetryPolicy retry;
    /** Graceful degradation: a request whose queue delay exceeds
     * this many seconds runs on the degraded engine (reduced SADS
     * keep span, solo) and resolves Outcome::Degraded instead of
     * waiting for full service; 0 disables (the default). */
    double degradeAfterSeconds = 0.0;
    /** Factor applied to pipeline.topkFrac for the degraded engine
     * (in (0, 1]; see degradedEngineConfig). */
    double degradeKeepFactor = 0.5;
    /** Fault-injection plan driving deterministic failure/slowdown
     * tests and benches; empty = no injection. */
    FaultPlan faults;
    /** When `faults` is empty, also consult the SOFA_FAULTS
     * environment variable (FaultPlan::fromEnv). Benches that gate
     * outcome counts set this false to stay hermetic. */
    bool faultsFromEnv = true;
    /**
     * The executor fleet (serve/backend). Empty (the default): one
     * implicit EngineBackend over `engine` with no owned pool —
     * bit-compatible with the single-engine scheduler. Each backend
     * becomes a shard with its own queue, lanes and (when the
     * backend supports decode) KV pool sized from `kvPool`.
     */
    std::vector<std::shared_ptr<Backend>> backends;
    /** Fleet placement policy (serve/backend.h routeRequest): with
     * a single backend every policy degenerates to shard 0. */
    RoutingPolicy routing = RoutingPolicy::RoundRobin;
};

/**
 * The deterministic backoff before @p attempt (0-based; attempts
 * <= 0 return 0). Pure function of (policy, request, attempt).
 */
double retryBackoffSeconds(const RetryPolicy &policy,
                           std::uint64_t request, int attempt);

/**
 * Row-slice one head's workload to query rows [r0, r1): Q, the
 * ground-truth scores and the per-row annotations are sliced, the
 * shared context (tokens, projections, exact K/V) is carried whole.
 * This is the exact slicing prefill chunking dispatches — exposed so
 * tests can reproduce a chunk's standalone reference run.
 */
AttentionWorkload sliceQueryRows(const AttentionWorkload &w, int r0,
                                 int r1);

/**
 * The engine configuration degraded requests run with: the base
 * engine config with pipeline.topkFrac scaled by degradeKeepFactor
 * (clamped to [1e-3, 1]) — the SOFA-native quality/latency lever:
 * a smaller SADS keep span means fewer selected keys, less on-demand
 * KV generation and less SU-FA formal compute.
 */
EngineConfig degradedEngineConfig(const SchedulerConfig &cfg);

/**
 * Tile plan for one admitted request's class: the core/tiler
 * planTiles() choice over the request's workload shape (decode and
 * prefill shapes plan separately) when the engine config's autoTile
 * is in effect, otherwise the config's fixed knobs. For chunkable
 * prefills (autoTile on, rows well past the planned row tile) the
 * plan also carries a prefillChunkRows suggestion — four planned row
 * tiles per chunk, so every chunk still shards across the pool;
 * advisory only, because chunked DLZS is not bit-exact vs unchunked.
 */
TilePlan planForRequest(const SchedulerConfig &cfg,
                        const Request &r);

/** Counter snapshot (monotonic over the scheduler's lifetime). */
struct SchedulerStats
{
    std::int64_t submitted = 0; ///< submit() calls
    std::int64_t admitted = 0;  ///< accepted into the queue
    std::int64_t shed = 0;      ///< refused at admission
    std::int64_t completed = 0; ///< futures resolved Completed
    std::int64_t timedOut = 0;  ///< futures resolved TimedOut
    std::int64_t failed = 0;    ///< futures resolved Failed
    std::int64_t degraded = 0;  ///< futures resolved Degraded
    std::int64_t retried = 0;   ///< re-run attempts started
    std::int64_t batches = 0;   ///< merged engine runs formed
    std::int64_t headTasks = 0; ///< head tasks of finished runs
    std::int64_t maxQueueDepth = 0; ///< waiting-depth high water
    std::int64_t kvEvictions = 0; ///< KV pool pages-holder evictions
    std::int64_t kvColdRuns = 0;  ///< decode runs that paid recompute
    std::int64_t chunkRuns = 0;   ///< chunk dispatches of split prefills
    /** Mean completed requests per formed batch (continuous-
     * batching effectiveness; 0 before the first batch). */
    double meanBatchRequests = 0.0;
};

/** Per-backend shard counters (Scheduler::backendStats). */
struct BackendStats
{
    std::string name;            ///< Backend::name()
    std::int64_t routed = 0;     ///< placement decisions (pre-shed)
    std::int64_t batches = 0;    ///< runs formed on this shard
    std::int64_t headTasks = 0;  ///< head tasks of finished runs
    std::int64_t completedRuns = 0; ///< backend-reported completions
    int queueDepth = 0;          ///< runs in flight right now
    std::int64_t kvEvictions = 0; ///< shard pool evictions
};

class Scheduler
{
  public:
    explicit Scheduler(SchedulerConfig cfg = {});
    /** Closes admission, drains every admitted request, joins. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    const SchedulerConfig &config() const { return cfg_; }

    /** The paged KV pool backing decode pastLen on shard
     * @p backend — read-only introspection for the page-conservation
     * invariants the trace bench and tests gate
     * (freePages/residentPages/pinnedPages). The no-argument form is
     * shard 0, the whole pool of the default single-backend fleet. */
    const KvPool &kvPool(std::size_t backend = 0) const;

    /** Number of shards (>= 1; 1 on the default fleet). */
    std::size_t fleetSize() const;
    /** The backend serving shard @p i. */
    const Backend &backend(std::size_t i) const;

    /**
     * Submit one request. The returned future always resolves with
     * a RequestResult — never an exception: Outcome::Completed (or
     * Degraded) with the engine results, Outcome::Shed when
     * admission refuses it, Outcome::TimedOut when the deadline
     * expires first, or Outcome::Failed (with `error` filled) once
     * the retry budget is exhausted.
     */
    std::future<RequestResult> submit(Request r);

    /** Begin dispatching (needed after startPaused; idempotent). */
    void start();

    /** Block until every admitted request has completed. Implies
     * start() — a paused scheduler would never drain. */
    void drain();

    SchedulerStats stats() const;

    /** Per-shard counters, fleet order (routing/conformance tests
     * and bench_backends' placement table). */
    std::vector<BackendStats> backendStats() const;

  private:
    struct Slot;  // per-request in-flight state (scheduler.cc)
    struct Shard; // per-backend queue/lanes/pool (scheduler.cc)

    int routeLocked(const Request &r); // under m_
    void dispatchLoop(Shard &shard);
    void runBatch(Shard &shard, std::vector<PendingRequest> batch);
    bool stepWithFaults(BackendRun &run,
                        std::vector<Slot *> &slots);
    void runSoloWithRetry(Shard &shard, Slot &slot,
                          double keep_factor, Outcome success,
                          double keep_frac, std::string last_error);
    void resolveSlot(Shard &shard, Slot &slot, Outcome outcome,
                     EngineResult engine, double keep_frac,
                     int coscheduled, std::string error);
    void preparePoolPin(Shard &shard, Slot &slot);

    SchedulerConfig cfg_;
    FaultPlan faults_; ///< cfg_.faults, else SOFA_FAULTS
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex m_;
    std::condition_variable cv_;
    bool started_ = false;
    bool closing_ = false;
    std::uint64_t rrCounter_ = 0;  ///< round-robin admission index
    std::int64_t outstanding_ = 0; ///< admitted, not yet completed
    std::int64_t submitted_ = 0;
    std::int64_t shed_ = 0;
    std::int64_t completed_ = 0;
    std::int64_t timedOut_ = 0;
    std::int64_t failed_ = 0;
    std::int64_t degraded_ = 0;
    std::int64_t retried_ = 0;
    std::int64_t batches_ = 0;
    std::int64_t headTasks_ = 0;
    std::int64_t kvColdRuns_ = 0;
    std::int64_t chunkRuns_ = 0;
};

/**
 * Closed-loop driver: submit the trace in order keeping at most
 * @p window requests outstanding (offered load = window), collect
 * results in trace order. `window` is the offered-load axis of
 * bench_serve's sweep.
 */
std::vector<RequestResult> runClosedLoop(
    Scheduler &sched, const std::vector<Request> &trace, int window);

/**
 * Open-loop replay: submit each request when its scaled arrival
 * offset elapses (time_scale 0 submits the whole trace at once).
 * Returns results in trace order after draining.
 */
std::vector<RequestResult> replayTrace(
    Scheduler &sched, const std::vector<Request> &trace,
    double time_scale = 1.0);

} // namespace serve
} // namespace sofa

#endif // SOFA_SERVE_SCHEDULER_H
