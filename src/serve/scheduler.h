/**
 * @file
 * Asynchronous request scheduler over the stage-structured engine
 * (core/engine): many ModelWorkload requests — prefill and KV-cache
 * decode, mixed — run through one engine concurrently. The pipeline
 * is admission (bounded queue, explicit shedding) -> continuous
 * batch formation (front-contiguous requests merged up to head-task
 * and context-token budgets, formed only when a lane frees up so
 * late arrivals can still join) -> lane dispatch (a common/
 * threadpool TaskQueue runs up to `lanes` engine runs concurrently,
 * each stepping its EngineRun stage by stage, so one request's SU-FA
 * overlaps another's SADS on the shared pool).
 *
 * Determinism contract: an identical request trace + seed yields
 * identical per-request *numerical* results (outputs, selections,
 * op counts, quality) at any thread count, lane count, or batch
 * composition — each head task computes independently and the
 * engine is bit-exact, so co-scheduling changes only wall-clock.
 * Shedding is timing-dependent under open-loop overload; construct
 * with `startPaused` and call start() later for deterministic
 * admission experiments.
 *
 * Units: latencies in seconds (steady clock); budgets in head tasks
 * and context tokens; results carry OpCounter ops (core/pipeline.h).
 */

#ifndef SOFA_SERVE_SCHEDULER_H
#define SOFA_SERVE_SCHEDULER_H

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/request.h"
#include "serve/request_queue.h"

namespace sofa {
class TaskQueue;

namespace serve {

/** Scheduler tuning knobs (documented in docs/SERVING.md). */
struct SchedulerConfig
{
    /** Engine hyperparameters, rowTile and pool (core/engine.h). */
    EngineConfig engine;
    /** Concurrent engine runs in flight (TaskQueue workers). */
    int lanes = 2;
    /** Max head tasks merged into one engine run. */
    std::int64_t headBudget = 16;
    /** Max context tokens merged into one engine run. */
    std::int64_t tokenBudget = 1 << 20;
    /** Admission capacity: waiting requests beyond this are shed
     * (resolved immediately with Outcome::Shed). Deliberately
     * overbooks lanes*headBudget — queue depth absorbs bursts. */
    std::size_t maxQueue = 256;
    /** Admit but do not dispatch until start() — deterministic
     * admission/shedding experiments and maximal first batches. */
    bool startPaused = false;
};

/** Counter snapshot (monotonic over the scheduler's lifetime). */
struct SchedulerStats
{
    std::int64_t submitted = 0; ///< submit() calls
    std::int64_t admitted = 0;  ///< accepted into the queue
    std::int64_t shed = 0;      ///< refused at admission
    std::int64_t completed = 0; ///< futures resolved Completed
    std::int64_t batches = 0;   ///< engine runs formed
    std::int64_t headTasks = 0; ///< head tasks executed
    std::int64_t maxQueueDepth = 0; ///< waiting-depth high water
    /** Mean completed requests per formed batch (continuous-
     * batching effectiveness; 0 before the first batch). */
    double meanBatchRequests = 0.0;
};

class Scheduler
{
  public:
    explicit Scheduler(SchedulerConfig cfg = {});
    /** Closes admission, drains every admitted request, joins. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    const SchedulerConfig &config() const { return cfg_; }

    /**
     * Submit one request. The returned future always resolves: with
     * Outcome::Completed and the engine results, with Outcome::Shed
     * when admission refuses it, or with the engine's exception if
     * the run fails.
     */
    std::future<RequestResult> submit(Request r);

    /** Begin dispatching (needed after startPaused; idempotent). */
    void start();

    /** Block until every admitted request has completed. Implies
     * start() — a paused scheduler would never drain. */
    void drain();

    SchedulerStats stats() const;

  private:
    void dispatchLoop();
    void runBatch(std::vector<PendingRequest> batch);

    SchedulerConfig cfg_;
    Engine engine_;
    RequestQueue queue_;
    std::unique_ptr<TaskQueue> lanes_;

    mutable std::mutex m_;
    std::condition_variable cv_;
    bool started_ = false;
    bool closing_ = false;
    int inFlight_ = 0;           ///< batches dispatched, unfinished
    std::int64_t outstanding_ = 0; ///< admitted, not yet completed
    std::int64_t submitted_ = 0;
    std::int64_t shed_ = 0;
    std::int64_t completed_ = 0;
    std::int64_t batches_ = 0;
    std::int64_t headTasks_ = 0;

    std::thread dispatcher_;
};

/**
 * Closed-loop driver: submit the trace in order keeping at most
 * @p window requests outstanding (offered load = window), collect
 * results in trace order. `window` is the offered-load axis of
 * bench_serve's sweep.
 */
std::vector<RequestResult> runClosedLoop(
    Scheduler &sched, const std::vector<Request> &trace, int window);

/**
 * Open-loop replay: submit each request when its scaled arrival
 * offset elapses (time_scale 0 submits the whole trace at once).
 * Returns results in trace order after draining.
 */
std::vector<RequestResult> replayTrace(
    Scheduler &sched, const std::vector<Request> &trace,
    double time_scale = 1.0);

} // namespace serve
} // namespace sofa

#endif // SOFA_SERVE_SCHEDULER_H
