/**
 * @file
 * Serving request and result types for the asynchronous scheduler
 * (serve/scheduler). A Request wraps one ModelWorkloadSpec — usually
 * a single sequence (batch 1, H heads), either a prefill (seq,
 * queries) or a KV-cache decode step (pastLen, newTokens) — plus an
 * arrival offset in the trace it belongs to. A RequestResult carries
 * the per-request EngineResult (merged OpCounters, outputs, quality)
 * and the latency breakdown the serving benchmarks report.
 *
 * Trace builders turn the model/scenarios serving regimes into
 * request streams: per-request workload specs via
 * scenarioWorkloadSpec with deterministic per-request reseeding
 * (headSeed-style splitmix), arrival offsets via arrivalTimes.
 *
 * Units: arrival/latency fields are seconds (arrival is logical
 * trace time, latencies are measured wall-clock); headTasks() and
 * contextTokens() are the budget currencies of batch formation.
 */

#ifndef SOFA_SERVE_REQUEST_H
#define SOFA_SERVE_REQUEST_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/engine.h"
#include "model/scenarios.h"

namespace sofa {
namespace serve {

/** Which serving phase a request models. */
enum class RequestKind {
    Prefill, ///< whole-prompt processing (T = queries over S = seq)
    Decode,  ///< KV-cache step (newTokens fresh rows, pastLen cached)
};

const char *requestKindName(RequestKind k);

/** One serving request: a workload plus its trace arrival offset. */
struct Request
{
    std::uint64_t id = 0;
    /** Arrival offset in seconds of logical trace time. */
    double arrival = 0.0;
    /** The work: shapes + seed. Usually batch = 1 (one sequence);
     * larger grids are allowed and count as more head tasks. */
    ModelWorkloadSpec work;
    /**
     * Completion deadline in seconds of wall-clock time measured
     * from submit(). 0 (the default) defers to the scheduler's
     * `defaultDeadlineSeconds`; a negative value opts this request
     * out of any deadline. Expired requests resolve
     * Outcome::TimedOut — their engine work is cancelled
     * cooperatively at the next stage boundary. The EDF scheduling
     * policy orders batch formation by this deadline.
     */
    double deadlineSeconds = 0.0;
    /** Owning tenant (fairness domain) — the key the deficit-round-
     * robin scheduling policy balances served head tasks across.
     * FIFO and EDF ignore it. */
    int tenant = 0;

    RequestKind kind() const
    {
        return work.isDecode() ? RequestKind::Decode
                               : RequestKind::Prefill;
    }
    /** Head tasks this request puts on the engine grid. */
    std::int64_t headTasks() const
    {
        return static_cast<std::int64_t>(work.batch) * work.heads;
    }
    /** Context tokens the request attends over (the token budget
     * currency: per batch item, independent of head count). */
    std::int64_t contextTokens() const
    {
        return static_cast<std::int64_t>(work.batch) *
               work.contextLen();
    }
};

/** How a submitted request left the scheduler. */
enum class Outcome {
    Completed, ///< ran through the engine; `engine` is filled
    Degraded,  ///< ran with the cheaper degraded engine config after
               ///< waiting past the overload threshold; `engine` is
               ///< filled (bit-exact vs a standalone run of the
               ///< degraded spec) and `degradeKeepFrac` < 1
    Shed,      ///< refused at admission (queue full); never silent —
               ///< the future still resolves, with this outcome
    TimedOut,  ///< deadline expired before the work finished; any
               ///< in-flight engine work was cancelled cooperatively
    Failed,    ///< every retry attempt failed; `error` holds the
               ///< last failure message
};

/** Stable lower-case name of an outcome ("completed", ...). */
const char *outcomeName(Outcome o);

/** Per-request outcome: engine results + latency breakdown. */
struct RequestResult
{
    std::uint64_t id = 0;
    Outcome outcome = Outcome::Completed;
    RequestKind kind = RequestKind::Prefill;

    /** The request's own aggregate (empty when shed). Bit-exact vs a
     * standalone Engine::run of the same spec, whatever the request
     * was co-scheduled with. */
    EngineResult engine;

    double queueSeconds = 0.0;   ///< submit -> batch dispatch
    double serviceSeconds = 0.0; ///< dispatch -> completion
    double totalSeconds = 0.0;   ///< queueSeconds + serviceSeconds
    /** Head tasks in the engine run that served this request
     * (including its own) — the co-scheduling footprint. */
    int coscheduledHeads = 0;

    /** Engine runs this request consumed (1 on the fault-free path;
     * 0 when shed or timed out before any dispatch). */
    int attempts = 0;
    /** Seconds left on the deadline when the result resolved:
     * negative when the deadline was missed, +infinity when the
     * request had no deadline. */
    double deadlineSlackSeconds =
        std::numeric_limits<double>::infinity();
    /** Fraction of the configured SADS keep span this request ran
     * with: 1.0 normally, `degradeKeepFactor` when Degraded. */
    double degradeKeepFrac = 1.0;
    /** A decode step that ran with an evicted KV reservation: its
     * effective pastLen was 0 and the regeneration cost is in the
     * engine op counters (serve/kvpool recompute accounting). */
    bool kvCold = false;
    /** Engine dispatches this prefill was split into by prefill
     * chunking (1 = unchunked). */
    int chunks = 1;
    /** Index of the fleet backend this request was placed on (also
     * set when the shard then shed it) — the routing decision the
     * determinism property replays; 0 on the default single-backend
     * scheduler. */
    int backend = 0;
    /** Modeled service seconds charged by a modeled backend (Sim/
     * Analytic, summed over the request's tasks); 0 on a measured
     * EngineBackend, where serviceSeconds is the truth. */
    double modeledSeconds = 0.0;
    /** Last failure message (Outcome::Failed only). */
    std::string error;
};

/**
 * A trace of @p n requests for one serving scenario: workload specs
 * from scenarioWorkloadSpec (shape caps as there), arrival offsets
 * from arrivalTimes(pattern, n, mean_gap, seed), and a decorrelated
 * per-request seed derived from @p seed, so any request regenerates
 * bit-identically on its own.
 */
std::vector<Request> scenarioTrace(const ServingScenario &s, int n,
                                   ArrivalPattern pattern,
                                   double mean_gap,
                                   std::uint64_t seed,
                                   int max_context = 256,
                                   int max_batch = 1,
                                   int max_heads = 4);

/**
 * A mixed trace cycling round-robin over @p scenarios (prefill and
 * decode kinds interleave in arrival order) — the continuous-
 * batching workload the scheduler is built for.
 */
std::vector<Request> mixedTrace(
    const std::vector<ServingScenario> &scenarios, int n,
    ArrivalPattern pattern, double mean_gap, std::uint64_t seed,
    int max_context = 256, int max_batch = 1, int max_heads = 4);

/**
 * A mixed trace spread across @p tenants fairness domains: the
 * scenario cycle of mixedTrace plus a deterministic per-request
 * tenant draw (splitmix hash of the trace seed and request index,
 * decorrelated from the scenario cycle so no tenant sees only one
 * request kind). The workload the DRR policy balances.
 */
std::vector<Request> multiTenantTrace(
    const std::vector<ServingScenario> &scenarios, int tenants,
    int n, ArrivalPattern pattern, double mean_gap,
    std::uint64_t seed, int max_context = 256, int max_batch = 1,
    int max_heads = 4);

} // namespace serve
} // namespace sofa

#endif // SOFA_SERVE_REQUEST_H
