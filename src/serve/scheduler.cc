#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/threadpool.h"

namespace sofa {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** The effective deadline length of a request; 0 = none. */
double
deadlineSecondsOf(const Request &r, const SchedulerConfig &cfg)
{
    if (r.deadlineSeconds > 0.0)
        return r.deadlineSeconds;
    if (r.deadlineSeconds < 0.0)
        return 0.0; // explicitly opted out
    return cfg.defaultDeadlineSeconds > 0.0
               ? cfg.defaultDeadlineSeconds
               : 0.0;
}

/** Append @p mw's grid as request-local HeadTasks (so the
 * per-request split reproduces a standalone run). A cold KV run —
 * the request's pool reservation was evicted while it waited —
 * drops the cache claim: the engine then regenerates every required
 * key and the recompute cost lands on the exact op counters. */
void
appendHeadTasks(const ModelWorkload &mw, bool kv_cold,
                std::vector<HeadTask> *out)
{
    for (int b = 0; b < mw.batch(); ++b) {
        for (int h = 0; h < mw.heads(); ++h) {
            HeadTask t;
            t.workload = &mw.head(b, h);
            t.batch = b;
            t.head = h;
            t.pastLen = (mw.spec.isDecode() && !kv_cold)
                            ? mw.spec.pastLen
                            : 0;
            out->push_back(t);
        }
    }
}

} // namespace

AttentionWorkload
sliceQueryRows(const AttentionWorkload &w, int r0, int r1)
{
    AttentionWorkload s;
    s.spec = w.spec;
    s.spec.queries = r1 - r0;
    s.tokens = w.tokens;
    s.wk = w.wk;
    s.wv = w.wv;
    s.k = w.k;
    s.v = w.v;
    s.q = MatF(static_cast<std::size_t>(r1 - r0), w.q.cols());
    s.scores =
        MatF(static_cast<std::size_t>(r1 - r0), w.scores.cols());
    for (int r = r0; r < r1; ++r) {
        std::copy(w.q.rowPtr(static_cast<std::size_t>(r)),
                  w.q.rowPtr(static_cast<std::size_t>(r)) +
                      w.q.cols(),
                  s.q.rowPtr(static_cast<std::size_t>(r - r0)));
        std::copy(w.scores.rowPtr(static_cast<std::size_t>(r)),
                  w.scores.rowPtr(static_cast<std::size_t>(r)) +
                      w.scores.cols(),
                  s.scores.rowPtr(static_cast<std::size_t>(r - r0)));
    }
    s.dominants.assign(w.dominants.begin() + r0,
                       w.dominants.begin() + r1);
    s.rowTypes.assign(w.rowTypes.begin() + r0,
                      w.rowTypes.begin() + r1);
    return s;
}

namespace {

void
sleepSeconds(double s)
{
    if (s > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

} // namespace

double
retryBackoffSeconds(const RetryPolicy &policy, std::uint64_t request,
                    int attempt)
{
    if (attempt <= 0)
        return 0.0;
    double backoff =
        policy.baseSeconds * std::pow(2.0, attempt - 1);
    if (policy.maxSeconds > 0.0)
        backoff = std::min(backoff, policy.maxSeconds);
    // Deterministic jitter in [1 - jitterFrac, 1 + jitterFrac):
    // hashed per (request, attempt), never a shared RNG stream.
    const double u = hashUnitInterval(
        policy.seed, request, static_cast<std::uint64_t>(attempt));
    const double jitter = 1.0 + policy.jitterFrac * (2.0 * u - 1.0);
    return std::max(0.0, backoff * jitter);
}

EngineConfig
degradedEngineConfig(const SchedulerConfig &cfg)
{
    // The same keep-span scaling every backend applies in begin();
    // keeping them one function is what makes scheduler-degraded
    // runs bit-exact vs a standalone run of the degraded spec.
    return scaledKeepConfig(cfg.engine, cfg.degradeKeepFactor);
}

TilePlan
planForRequest(const SchedulerConfig &cfg, const Request &r)
{
    TilePlan plan;
    plan.rowTile = cfg.engine.rowTile;
    plan.sadsSpan = cfg.engine.rowTile;
    plan.prefillChunkRows = cfg.prefillChunkRows;
    if (!autoTileEnabled(cfg.engine.autoTile))
        return plan;
    plan = planTiles(
        tileShape(r.work, cfg.engine.pipeline.topkFrac));
    plan.prefillChunkRows = 0;
    const int rows = r.work.queryRows();
    if (!r.work.isDecode() && rows > 4 * plan.rowTile)
        plan.prefillChunkRows = 4 * plan.rowTile;
    return plan;
}

/** Per-request in-flight state while its batch is being served.
 * Deadline state lives on the PendingRequest (resolved at submit,
 * where EDF also reads it). */
struct Scheduler::Slot
{
    PendingRequest p;
    Clock::time_point t0{};      ///< batch dispatch time
    /** The slot's task indices in the current BackendRun. */
    std::vector<std::size_t> taskIdx;
    int attempts = 0;     ///< engine runs consumed so far
    bool timedOut = false; ///< deadline expired during the run
    bool resolved = false; ///< promise satisfied
    bool readmitted = false; ///< chunk continuation re-enqueued
    bool kvCold = false;  ///< KV reservation lost; runs pastLen 0
    int chunksDone = 1;   ///< chunk dispatches (1 = unchunked)
    double modeledSeconds = 0.0; ///< modeled backend charge
};

/** One fleet shard: a backend with its own admission queue, lane
 * TaskQueue, dispatcher thread and (decode-capable backends only)
 * KV pool. Counters are guarded by Scheduler::m_. */
struct Scheduler::Shard
{
    int index = 0;
    std::shared_ptr<Backend> backend;
    BackendCapabilities caps;
    std::unique_ptr<KvPool> pool;
    std::unique_ptr<RequestQueue> queue;
    std::unique_ptr<TaskQueue> lanes;
    int laneCount = 1;
    int inFlight = 0;           ///< batches dispatched, unfinished
    std::int64_t routed = 0;    ///< placement decisions
    std::int64_t batches = 0;   ///< runs formed on this shard
    std::int64_t headTasks = 0; ///< head tasks of finished runs
    std::thread dispatcher;
};

Scheduler::Scheduler(SchedulerConfig cfg)
    : cfg_(std::move(cfg)),
      faults_(!cfg_.faults.empty()
                  ? cfg_.faults
                  : (cfg_.faultsFromEnv ? FaultPlan::fromEnv()
                                        : FaultPlan{})),
      started_(!cfg_.startPaused)
{
    SOFA_ASSERT(cfg_.headBudget >= 1);
    SOFA_ASSERT(cfg_.tokenBudget >= 1);
    SOFA_ASSERT(cfg_.retry.maxAttempts >= 1);
    SOFA_ASSERT(cfg_.degradeKeepFactor > 0.0 &&
                cfg_.degradeKeepFactor <= 1.0);
    SOFA_ASSERT(cfg_.drrQuantumHeads >= 1);
    SOFA_ASSERT(cfg_.prefillChunkRows >= 0);
    std::vector<std::shared_ptr<Backend>> fleet = cfg_.backends;
    if (fleet.empty()) {
        // The implicit fleet: one in-process engine with no owned
        // pool — exactly the single-engine scheduler's executor.
        EngineBackendConfig ec;
        ec.engine = cfg_.engine;
        fleet.push_back(
            std::make_shared<EngineBackend>(std::move(ec)));
    }
    shards_.reserve(fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        auto sh = std::make_unique<Shard>();
        sh->index = static_cast<int>(i);
        sh->backend = fleet[i];
        sh->caps = fleet[i]->capabilities();
        // KV pools live on the decode-capable ("KV-cache-warm")
        // shards; prefill-only backends run pool-less (their
        // requests never carry a cached pastLen).
        sh->pool = std::make_unique<KvPool>(
            sh->caps.supportsDecode ? cfg_.kvPool : KvPoolConfig{});
        sh->queue = std::make_unique<RequestQueue>(
            cfg_.maxQueue, cfg_.policy, cfg_.drrQuantumHeads,
            cfg_.prefillChunkRows);
        sh->laneCount = sh->caps.maxConcurrentRuns > 0
                            ? sh->caps.maxConcurrentRuns
                            : std::max(1, cfg_.lanes);
        sh->lanes = std::make_unique<TaskQueue>(sh->laneCount);
        shards_.push_back(std::move(sh));
    }
    for (auto &sh : shards_)
        sh->dispatcher = std::thread(
            [this, s = sh.get()] { dispatchLoop(*s); });
}

Scheduler::~Scheduler()
{
    start();
    for (auto &sh : shards_)
        sh->queue->close();
    {
        std::lock_guard<std::mutex> lk(m_);
        closing_ = true;
    }
    cv_.notify_all();
    for (auto &sh : shards_)
        sh->dispatcher.join();
    for (auto &sh : shards_)
        sh->lanes.reset(); // drains the in-flight batches
}

const KvPool &
Scheduler::kvPool(std::size_t backend) const
{
    SOFA_ASSERT(backend < shards_.size());
    return *shards_[backend]->pool;
}

std::size_t
Scheduler::fleetSize() const
{
    return shards_.size();
}

const Backend &
Scheduler::backend(std::size_t i) const
{
    SOFA_ASSERT(i < shards_.size());
    return *shards_[i]->backend;
}

int
Scheduler::routeLocked(const Request &r)
{
    if (shards_.size() == 1)
        return 0;
    std::vector<BackendCapabilities> caps;
    std::vector<std::int64_t> depths;
    caps.reserve(shards_.size());
    depths.reserve(shards_.size());
    for (const auto &sh : shards_) {
        caps.push_back(sh->caps);
        // Load signal: requests waiting on the shard plus runs in
        // flight on its backend. Deterministic whenever admission
        // is (startPaused keeps both terms replayable).
        depths.push_back(
            static_cast<std::int64_t>(sh->queue->size()) +
            sh->backend->queueDepth());
    }
    return routeRequest(cfg_.routing, r.kind(), caps, depths,
                        rrCounter_++);
}

std::future<RequestResult>
Scheduler::submit(Request r)
{
    PendingRequest p;
    p.request = std::move(r);
    p.submitted = Clock::now();
    // Resolve the absolute deadline here, where EDF needs it as the
    // queue's sort key — the same value the dispatcher previously
    // derived at batch formation (both measure from p.submitted).
    const double dl = deadlineSecondsOf(p.request, cfg_);
    if (dl > 0.0) {
        p.hasDeadline = true;
        p.deadline =
            p.submitted +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(dl));
    }
    std::future<RequestResult> fut = p.promise.get_future();
    int shard_idx = 0;
    {
        // Count the request as outstanding *before* it becomes
        // visible in the queue: a concurrent drain() must never see
        // outstanding_ == 0 while an admitted request is queued.
        // Routing happens here too — placement is an admission-time
        // decision, so a replay with identical admission order
        // reproduces identical placements.
        std::lock_guard<std::mutex> lk(m_);
        ++submitted_;
        ++outstanding_;
        shard_idx = routeLocked(p.request);
        ++shards_[static_cast<std::size_t>(shard_idx)]->routed;
    }
    Shard &sh = *shards_[static_cast<std::size_t>(shard_idx)];
    p.backend = shard_idx;
    // KV-pool admission on the routed shard: reserve pages for the
    // request's context rows (evicting idle residents LRU-first). A
    // request whose demand cannot be reserved even by evicting is
    // shed — the pool is the second admission gate next to queue
    // capacity. Requires ids unique over the scheduler's lifetime
    // (traces guarantee this) so reservations never alias.
    bool admitted = true;
    if (sh.pool->enabled())
        admitted =
            sh.pool
                ->acquire(p.request.id, p.request.contextTokens())
                .ok;
    if (admitted && !sh.queue->push(std::move(p))) {
        admitted = false;
        sh.pool->release(p.request.id); // undo the page reservation
    }
    if (!admitted) {
        // Admission overload: shed explicitly. The future resolves
        // right here with Outcome::Shed — the caller always observes
        // what happened (push left `p` intact on refusal).
        {
            std::lock_guard<std::mutex> lk(m_);
            ++shed_;
            --outstanding_;
        }
        cv_.notify_all();
        RequestResult rr;
        rr.id = p.request.id;
        rr.kind = p.request.kind();
        rr.outcome = Outcome::Shed;
        rr.backend = shard_idx;
        p.promise.set_value(std::move(rr));
        return fut;
    }
    cv_.notify_all();
    return fut;
}

void
Scheduler::start()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        started_ = true;
    }
    cv_.notify_all();
}

void
Scheduler::drain()
{
    start();
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return outstanding_ == 0; });
}

SchedulerStats
Scheduler::stats() const
{
    SchedulerStats s;
    {
        std::lock_guard<std::mutex> lk(m_);
        s.submitted = submitted_;
        s.shed = shed_;
        s.completed = completed_;
        s.timedOut = timedOut_;
        s.failed = failed_;
        s.degraded = degraded_;
        s.retried = retried_;
        s.batches = batches_;
        s.headTasks = headTasks_;
        s.kvColdRuns = kvColdRuns_;
        s.chunkRuns = chunkRuns_;
    }
    for (const auto &sh : shards_) {
        s.kvEvictions += sh->pool->evictions();
        s.maxQueueDepth = std::max(
            s.maxQueueDepth,
            static_cast<std::int64_t>(sh->queue->maxDepth()));
    }
    s.admitted = s.submitted - s.shed;
    if (s.batches > 0)
        s.meanBatchRequests = static_cast<double>(s.completed) /
                              static_cast<double>(s.batches);
    return s;
}

std::vector<BackendStats>
Scheduler::backendStats() const
{
    std::vector<BackendStats> out;
    out.reserve(shards_.size());
    std::lock_guard<std::mutex> lk(m_);
    for (const auto &sh : shards_) {
        BackendStats b;
        b.name = sh->backend->name();
        b.routed = sh->routed;
        b.batches = sh->batches;
        b.headTasks = sh->headTasks;
        b.completedRuns = sh->backend->completedRuns();
        b.queueDepth = sh->backend->queueDepth();
        b.kvEvictions = sh->pool->evictions();
        out.push_back(std::move(b));
    }
    return out;
}

void
Scheduler::dispatchLoop(Shard &shard)
{
    for (;;) {
        {
            // A batch is formed only when a shard lane is free
            // (continuous batching: every request that arrived while
            // the lanes were busy merges into the next batch). When
            // closing, drain unconditionally — queued promises must
            // resolve.
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk, [&] {
                return closing_ ||
                       (started_ &&
                        shard.inFlight < shard.laneCount);
            });
        }
        std::vector<PendingRequest> batch =
            shard.queue->popBatch(cfg_.headBudget,
                                  cfg_.tokenBudget);
        if (batch.empty())
            return; // queue closed and drained
        {
            std::lock_guard<std::mutex> lk(m_);
            ++batches_;
            ++shard.batches;
            ++shard.inFlight;
        }
        // PendingRequest holds a promise (move-only); std::function
        // needs a copyable callable, so the batch rides shared_ptr.
        auto shared = std::make_shared<std::vector<PendingRequest>>(
            std::move(batch));
        shard.lanes->submit([this, &shard, shared] {
            runBatch(shard, std::move(*shared));
            {
                std::lock_guard<std::mutex> lk(m_);
                --shard.inFlight;
            }
            cv_.notify_all();
        });
    }
}

void
Scheduler::resolveSlot(Shard &shard, Slot &slot, Outcome outcome,
                       EngineResult engine, double keep_frac,
                       int coscheduled, std::string error)
{
    SOFA_ASSERT(!slot.resolved);
    const Clock::time_point now = Clock::now();
    RequestResult rr;
    rr.id = slot.p.request.id;
    rr.kind = slot.p.request.kind();
    rr.outcome = outcome;
    rr.engine = std::move(engine);
    rr.queueSeconds = seconds(slot.p.submitted, slot.t0);
    rr.serviceSeconds = seconds(slot.t0, now);
    rr.totalSeconds = rr.queueSeconds + rr.serviceSeconds;
    rr.coscheduledHeads = coscheduled;
    rr.attempts = slot.attempts;
    if (slot.p.hasDeadline)
        rr.deadlineSlackSeconds = seconds(now, slot.p.deadline);
    rr.degradeKeepFrac = keep_frac;
    rr.kvCold = slot.kvCold;
    rr.chunks = slot.chunksDone;
    rr.backend = slot.p.backend;
    rr.modeledSeconds = slot.modeledSeconds;
    rr.error = std::move(error);
    // KV-pool bookkeeping: finished requests stay resident as idle
    // reusable cache (LRU-evictable under pressure); abandoned ones
    // free their pages immediately.
    if (shard.pool->enabled()) {
        if (outcome == Outcome::Completed ||
            outcome == Outcome::Degraded)
            shard.pool->retire(rr.id);
        else
            shard.pool->release(rr.id);
    }
    {
        std::lock_guard<std::mutex> lk(m_);
        switch (outcome) {
          case Outcome::Completed:
            ++completed_;
            break;
          case Outcome::Degraded:
            ++degraded_;
            break;
          case Outcome::TimedOut:
            ++timedOut_;
            break;
          case Outcome::Failed:
            ++failed_;
            break;
          case Outcome::Shed:
            break; // resolved in submit(), never here
        }
    }
    slot.resolved = true;
    slot.p.promise.set_value(std::move(rr));
}

bool
Scheduler::stepWithFaults(BackendRun &run,
                          std::vector<Slot *> &slots)
{
    while (!run.done()) {
        const char *stage = run.nextStageName();
        bool any_live = false;
        for (Slot *s : slots) {
            if (s->timedOut)
                continue;
            const FaultDecision d =
                faults_.at(s->p.request.id, stage, s->attempts);
            if (d.action == FaultAction::Slow)
                sleepSeconds(d.slowMs * 1e-3);
            if (s->p.hasDeadline && Clock::now() >= s->p.deadline) {
                // Deadline expired mid-pipeline: cancel the slot's
                // tasks so the remaining stages skip them — the
                // run keeps the lane only for still-live requests.
                // Timeout takes precedence over an injected failure
                // at the same boundary.
                for (std::size_t t : s->taskIdx)
                    run.cancel(t);
                s->timedOut = true;
                continue;
            }
            if (d.action == FaultAction::Fail)
                throw InjectedFault(
                    "injected fault: req=" +
                    std::to_string(s->p.request.id) + " stage=" +
                    (stage != nullptr ? stage : "?") + " attempt=" +
                    std::to_string(s->attempts));
            any_live = true;
        }
        if (!any_live)
            return false; // everything cancelled; stop stepping
        run.step();
    }
    return true;
}

void
Scheduler::runSoloWithRetry(Shard &shard, Slot &slot,
                            double keep_factor, Outcome success,
                            double keep_frac,
                            std::string last_error)
{
    const int max_attempts = std::max(1, cfg_.retry.maxAttempts);
    std::vector<Slot *> solo{&slot};
    while (slot.attempts < max_attempts) {
        if (slot.attempts > 0) {
            {
                std::lock_guard<std::mutex> lk(m_);
                ++retried_;
            }
            sleepSeconds(retryBackoffSeconds(
                cfg_.retry, slot.p.request.id, slot.attempts));
        }
        if (slot.p.hasDeadline && Clock::now() >= slot.p.deadline) {
            resolveSlot(shard, slot, Outcome::TimedOut,
                        EngineResult{}, keep_frac, 0,
                        std::string());
            return;
        }
        try {
            const ModelWorkload mw =
                generateModelWorkload(slot.p.request.work);
            std::vector<HeadTask> tasks;
            appendHeadTasks(mw, slot.kvCold, &tasks);
            const int n = static_cast<int>(tasks.size());
            slot.taskIdx.resize(tasks.size());
            for (std::size_t t = 0; t < tasks.size(); ++t)
                slot.taskIdx[t] = t;
            slot.timedOut = false;
            auto run =
                shard.backend->begin(std::move(tasks), keep_factor);
            const bool ran = stepWithFaults(*run, solo);
            ++slot.attempts;
            if (slot.timedOut || !ran) {
                resolveSlot(shard, slot, Outcome::TimedOut,
                            EngineResult{}, keep_frac, n,
                            std::string());
                return;
            }
            slot.modeledSeconds = 0.0;
            for (std::size_t t : slot.taskIdx)
                slot.modeledSeconds += run->modeledTaskSeconds(t);
            EngineResult res = run->finish();
            {
                std::lock_guard<std::mutex> lk(m_);
                headTasks_ += n;
                shard.headTasks += n;
            }
            // Solo run of the request's own tasks == a standalone
            // Engine::run of its spec, so the bit-exactness
            // contract holds on the recovery and degraded paths.
            resolveSlot(shard, slot, success, std::move(res),
                        keep_frac, n, std::string());
            return;
        } catch (const std::exception &e) {
            ++slot.attempts;
            last_error = e.what();
        } catch (...) {
            ++slot.attempts;
            last_error = "unknown engine failure";
        }
    }
    resolveSlot(shard, slot, Outcome::Failed, EngineResult{},
                keep_frac, 0, std::move(last_error));
}

void
Scheduler::preparePoolPin(Shard &shard, Slot &slot)
{
    if (!shard.pool->enabled())
        return;
    const Request &r = slot.p.request;
    if (shard.pool->pin(r.id))
        return; // reservation survived the wait: warm run
    // The reservation was evicted while the request queued:
    // re-acquire (evicting someone else LRU-first) and run cold. A
    // decode step then claims no cached keys — the engine
    // regenerates all of them and the recompute cost is charged
    // through the exact op counters. If even re-acquiring fails
    // (every page pinned by concurrent runs) the request runs
    // without residency; correctness is unaffected either way.
    shard.pool->acquire(r.id, r.contextTokens(), /*pin_now=*/true);
    if (r.work.isDecode()) {
        slot.kvCold = true;
        std::lock_guard<std::mutex> lk(m_);
        ++kvColdRuns_;
    }
}

void
Scheduler::runBatch(Shard &shard, std::vector<PendingRequest> batch)
{
    const Clock::time_point t0 = Clock::now();
    std::vector<Slot> slots(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Slot &s = slots[i];
        s.p = std::move(batch[i]);
        s.t0 = t0;
    }
    // Whether a prefill splits into query-row chunks this dispatch.
    const auto chunkable = [this](const Request &r) {
        return cfg_.prefillChunkRows > 0 && !r.work.isDecode() &&
               r.work.queryRows() > cfg_.prefillChunkRows;
    };
    try {
        // Pre-dispatch triage: already-expired deadlines resolve
        // TimedOut without consuming an engine run; requests queued
        // past the overload threshold take the degraded path; the
        // rest merge into one engine run.
        std::vector<Slot *> merged_slots;
        std::vector<Slot *> degrade_slots;
        for (Slot &s : slots) {
            if (s.p.hasDeadline && t0 >= s.p.deadline) {
                resolveSlot(shard, s, Outcome::TimedOut,
                            EngineResult{}, 1.0, 0, std::string());
            } else if (cfg_.degradeAfterSeconds > 0.0 &&
                       seconds(s.p.submitted, t0) >
                           cfg_.degradeAfterSeconds) {
                degrade_slots.push_back(&s);
            } else {
                merged_slots.push_back(&s);
            }
        }

        // Degraded requests run solo at the cheaper keep factor,
        // first — they have already waited past the overload
        // threshold. Degradation supersedes chunking: a half-chunked
        // prefill that waited this long reruns whole and cheap.
        const double keep_frac =
            degradedEngineConfig(cfg_).pipeline.topkFrac /
            cfg_.engine.pipeline.topkFrac;
        for (Slot *s : degrade_slots) {
            s->p.chunk.reset();
            preparePoolPin(shard, *s);
            runSoloWithRetry(shard, *s, cfg_.degradeKeepFactor,
                             Outcome::Degraded, keep_frac,
                             std::string());
        }

        if (!merged_slots.empty()) {
            // Materialize each request's workload (deterministic in
            // its own seed), then merge every head onto one grid.
            // Chunked prefills contribute only their next query-row
            // chunk; their full workload is materialized once and
            // rides the ChunkState between dispatches.
            std::vector<ModelWorkload> works;
            works.reserve(merged_slots.size());
            std::deque<std::vector<AttentionWorkload>> chunk_scratch;
            std::vector<int> chunk_upto(merged_slots.size(), 0);

            std::vector<HeadTask> tasks;
            std::vector<std::size_t> owner; // task -> slot index
            for (std::size_t r = 0; r < merged_slots.size(); ++r) {
                Slot *s = merged_slots[r];
                preparePoolPin(shard, *s);
                const std::size_t first = tasks.size();
                if (chunkable(s->p.request)) {
                    if (!s->p.chunk) {
                        s->p.chunk = std::make_shared<ChunkState>();
                        s->p.chunk->work = generateModelWorkload(
                            s->p.request.work);
                    }
                    ChunkState &cs = *s->p.chunk;
                    // Chunk runs are this request's engine attempts:
                    // the fault plan's attempt index advances with
                    // them so injections stay per-dispatch.
                    s->attempts = cs.runs;
                    const int total = cs.work.spec.queryRows();
                    const int r0 = cs.rowsDone;
                    const int r1 = std::min(
                        total, r0 + cfg_.prefillChunkRows);
                    chunk_upto[r] = r1;
                    chunk_scratch.emplace_back();
                    std::vector<AttentionWorkload> &sl =
                        chunk_scratch.back();
                    sl.reserve(cs.work.size());
                    for (int b = 0; b < cs.work.batch(); ++b)
                        for (int h = 0; h < cs.work.heads(); ++h)
                            sl.push_back(sliceQueryRows(
                                cs.work.head(b, h), r0, r1));
                    std::size_t i = 0;
                    for (int b = 0; b < cs.work.batch(); ++b) {
                        for (int h = 0; h < cs.work.heads(); ++h) {
                            HeadTask t;
                            t.workload = &sl[i++];
                            t.batch = b;
                            t.head = h;
                            t.pastLen = 0;
                            tasks.push_back(t);
                        }
                    }
                } else {
                    works.push_back(
                        generateModelWorkload(s->p.request.work));
                    appendHeadTasks(works.back(), s->kvCold,
                                    &tasks);
                }
                for (std::size_t t = first; t < tasks.size(); ++t) {
                    owner.push_back(r);
                    s->taskIdx.push_back(t);
                }
            }
            const int coscheduled = static_cast<int>(tasks.size());

            try {
                // Each stage is a separate pool epoch, so concurrent
                // lanes interleave between stages; the per-stage seam
                // is also where faults inject and deadlines cancel.
                auto run = shard.backend->begin(std::move(tasks));
                const bool ran = stepWithFaults(*run, merged_slots);
                for (Slot *s : merged_slots)
                    ++s->attempts; // the merged run was attempt 0
                if (ran) {
                    for (Slot *s : merged_slots) {
                        s->modeledSeconds = 0.0;
                        for (std::size_t t : s->taskIdx)
                            s->modeledSeconds +=
                                run->modeledTaskSeconds(t);
                    }
                    EngineResult merged = run->finish();
                    // Count executed work before any promise
                    // resolves, so a caller observing its future
                    // sees consistent stats.
                    {
                        std::lock_guard<std::mutex> lk(m_);
                        headTasks_ += coscheduled;
                        shard.headTasks += coscheduled;
                    }
                    // Split the co-scheduled heads back per request,
                    // in task order, so each aggregate matches a
                    // standalone Engine::run.
                    std::vector<std::vector<HeadResult>> per_req(
                        merged_slots.size());
                    for (std::size_t i = 0; i < merged.heads.size();
                         ++i) {
                        if (!merged_slots[owner[i]]->timedOut)
                            per_req[owner[i]].push_back(
                                std::move(merged.heads[i]));
                    }
                    for (std::size_t r = 0; r < merged_slots.size();
                         ++r) {
                        Slot *s = merged_slots[r];
                        if (s->timedOut) {
                            // A chunked prefill's partial rows are
                            // discarded with the rest.
                            resolveSlot(shard, *s, Outcome::TimedOut,
                                        EngineResult{}, 1.0,
                                        coscheduled, std::string());
                        } else if (s->p.chunk && chunk_upto[r] > 0) {
                            // Bank this chunk's head results; either
                            // re-enqueue the continuation (decode
                            // batches preempt before the next chunk)
                            // or stitch the final aggregate.
                            ChunkState &cs = *s->p.chunk;
                            for (HeadResult &hr : per_req[r])
                                cs.heads.push_back(std::move(hr));
                            cs.rowsDone = chunk_upto[r];
                            cs.runs = s->attempts;
                            {
                                std::lock_guard<std::mutex> lk(m_);
                                ++chunkRuns_;
                            }
                            if (cs.rowsDone <
                                cs.work.spec.queryRows()) {
                                shard.pool->unpin(s->p.request.id);
                                s->taskIdx.clear();
                                s->readmitted = true;
                                shard.queue->pushReadmit(
                                    std::move(s->p));
                            } else {
                                s->chunksDone =
                                    (cs.rowsDone +
                                     cfg_.prefillChunkRows - 1) /
                                    cfg_.prefillChunkRows;
                                resolveSlot(
                                    shard, *s, Outcome::Completed,
                                    aggregateHeadResults(
                                        std::move(cs.heads)),
                                    1.0, coscheduled,
                                    std::string());
                            }
                        } else {
                            resolveSlot(shard, *s,
                                        Outcome::Completed,
                                        aggregateHeadResults(
                                            std::move(per_req[r])),
                                        1.0, coscheduled,
                                        std::string());
                        }
                    }
                } else {
                    // Every merged request timed out mid-run; the
                    // partial work was cancelled and is discarded.
                    for (Slot *s : merged_slots)
                        resolveSlot(shard, *s, Outcome::TimedOut,
                                    EngineResult{}, 1.0, coscheduled,
                                    std::string());
                }
            } catch (const std::exception &e) {
                // Engine failure (injected or real): abandon the
                // merged run; every still-live request recovers with
                // solo retries so one bad request cannot poison its
                // batch neighbours. This path is counted (failed_/
                // retried_) and the futures still resolve normally.
                for (Slot *s : merged_slots)
                    ++s->attempts; // the aborted run was attempt 0
                for (Slot *s : merged_slots) {
                    if (s->resolved)
                        continue;
                    if (s->timedOut) {
                        resolveSlot(shard, *s, Outcome::TimedOut,
                                    EngineResult{}, 1.0, coscheduled,
                                    std::string());
                        continue;
                    }
                    s->taskIdx.clear();
                    // Recovery reruns a chunked prefill whole: its
                    // banked partial rows are discarded with the
                    // poisoned run.
                    s->p.chunk.reset();
                    runSoloWithRetry(shard, *s, 1.0,
                                     Outcome::Completed, 1.0,
                                     e.what());
                }
            }
        }
    } catch (const std::exception &e) {
        // Last-resort safety net (e.g. workload generation failed):
        // resolve every still-pending promise as Failed — futures
        // never carry exceptions and failures are always accounted.
        for (Slot &s : slots)
            if (!s.resolved && !s.readmitted)
                resolveSlot(shard, s, Outcome::Failed,
                            EngineResult{}, 1.0, 0, e.what());
    } catch (...) {
        for (Slot &s : slots)
            if (!s.resolved && !s.readmitted)
                resolveSlot(shard, s, Outcome::Failed,
                            EngineResult{}, 1.0, 0,
                            "unknown scheduler failure");
    }
    // Readmitted chunk continuations are still outstanding (their
    // promise travels back through the queue); everything else
    // resolved above.
    std::size_t readmits = 0, chunk_finished = 0;
    for (const Slot &s : slots) {
        if (s.readmitted)
            ++readmits;
        else if (prefillChunks(s.p.request, cfg_.prefillChunkRows))
            ++chunk_finished; // popped with a readmit obligation
    }
    {
        std::lock_guard<std::mutex> lk(m_);
        outstanding_ -=
            static_cast<std::int64_t>(slots.size() - readmits);
    }
    shard.queue->finishPopped(chunk_finished);
    cv_.notify_all();
}

std::vector<RequestResult>
runClosedLoop(Scheduler &sched, const std::vector<Request> &trace,
              int window)
{
    window = std::max(1, window);
    std::vector<RequestResult> results(trace.size());
    std::deque<std::pair<std::size_t,
                         std::future<RequestResult>>> inflight;
    std::size_t next = 0;
    while (next < trace.size() || !inflight.empty()) {
        while (next < trace.size() &&
               inflight.size() < static_cast<std::size_t>(window)) {
            inflight.emplace_back(next,
                                  sched.submit(trace[next]));
            ++next;
        }
        auto &[idx, fut] = inflight.front();
        results[idx] = fut.get();
        inflight.pop_front();
    }
    return results;
}

std::vector<RequestResult>
replayTrace(Scheduler &sched, const std::vector<Request> &trace,
            double time_scale)
{
    std::vector<std::future<RequestResult>> futures;
    futures.reserve(trace.size());
    const Clock::time_point start = Clock::now();
    for (const Request &r : trace) {
        if (time_scale > 0.0) {
            const auto due =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                r.arrival * time_scale));
            std::this_thread::sleep_until(due);
        }
        futures.push_back(sched.submit(r));
    }
    std::vector<RequestResult> results;
    results.reserve(trace.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

} // namespace serve
} // namespace sofa
