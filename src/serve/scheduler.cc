#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/threadpool.h"

namespace sofa {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace

Scheduler::Scheduler(SchedulerConfig cfg)
    : cfg_(cfg), engine_(cfg.engine), queue_(cfg.maxQueue),
      lanes_(std::make_unique<TaskQueue>(std::max(1, cfg.lanes))),
      started_(!cfg.startPaused)
{
    SOFA_ASSERT(cfg_.headBudget >= 1);
    SOFA_ASSERT(cfg_.tokenBudget >= 1);
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

Scheduler::~Scheduler()
{
    start();
    queue_.close();
    {
        std::lock_guard<std::mutex> lk(m_);
        closing_ = true;
    }
    cv_.notify_all();
    dispatcher_.join();
    lanes_.reset(); // drains the in-flight batches
}

std::future<RequestResult>
Scheduler::submit(Request r)
{
    PendingRequest p;
    p.request = std::move(r);
    p.submitted = Clock::now();
    std::future<RequestResult> fut = p.promise.get_future();
    {
        // Count the request as outstanding *before* it becomes
        // visible in the queue: a concurrent drain() must never see
        // outstanding_ == 0 while an admitted request is queued.
        std::lock_guard<std::mutex> lk(m_);
        ++submitted_;
        ++outstanding_;
    }
    if (!queue_.push(std::move(p))) {
        // Admission overload: shed explicitly. The future resolves
        // right here with Outcome::Shed — the caller always observes
        // what happened (push left `p` intact on refusal).
        {
            std::lock_guard<std::mutex> lk(m_);
            ++shed_;
            --outstanding_;
        }
        cv_.notify_all();
        RequestResult rr;
        rr.id = p.request.id;
        rr.kind = p.request.kind();
        rr.outcome = Outcome::Shed;
        p.promise.set_value(std::move(rr));
        return fut;
    }
    cv_.notify_all();
    return fut;
}

void
Scheduler::start()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        started_ = true;
    }
    cv_.notify_all();
}

void
Scheduler::drain()
{
    start();
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return outstanding_ == 0; });
}

SchedulerStats
Scheduler::stats() const
{
    SchedulerStats s;
    {
        std::lock_guard<std::mutex> lk(m_);
        s.submitted = submitted_;
        s.shed = shed_;
        s.completed = completed_;
        s.batches = batches_;
        s.headTasks = headTasks_;
    }
    s.admitted = s.submitted - s.shed;
    s.maxQueueDepth =
        static_cast<std::int64_t>(queue_.maxDepth());
    if (s.batches > 0)
        s.meanBatchRequests = static_cast<double>(s.completed) /
                              static_cast<double>(s.batches);
    return s;
}

void
Scheduler::dispatchLoop()
{
    const int lanes = std::max(1, cfg_.lanes);
    for (;;) {
        {
            // A batch is formed only when a lane is free (continuous
            // batching: every request that arrived while the lanes
            // were busy merges into the next batch). When closing,
            // drain unconditionally — queued promises must resolve.
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk, [&] {
                return closing_ || (started_ && inFlight_ < lanes);
            });
        }
        std::vector<PendingRequest> batch =
            queue_.popBatch(cfg_.headBudget, cfg_.tokenBudget);
        if (batch.empty())
            return; // queue closed and drained
        {
            std::lock_guard<std::mutex> lk(m_);
            ++batches_;
            ++inFlight_;
        }
        // PendingRequest holds a promise (move-only); std::function
        // needs a copyable callable, so the batch rides shared_ptr.
        auto shared = std::make_shared<std::vector<PendingRequest>>(
            std::move(batch));
        lanes_->submit([this, shared] {
            runBatch(std::move(*shared));
            {
                std::lock_guard<std::mutex> lk(m_);
                --inFlight_;
            }
            cv_.notify_all();
        });
    }
}

void
Scheduler::runBatch(std::vector<PendingRequest> batch)
{
    const Clock::time_point t0 = Clock::now();
    try {
        // Materialize each request's workload (deterministic in its
        // own seed), then merge every head onto one engine grid.
        std::vector<ModelWorkload> works;
        works.reserve(batch.size());
        for (const PendingRequest &p : batch)
            works.push_back(generateModelWorkload(p.request.work));

        std::vector<HeadTask> tasks;
        std::vector<std::size_t> owner; // task index -> batch slot
        for (std::size_t r = 0; r < batch.size(); ++r) {
            const ModelWorkload &mw = works[r];
            for (int b = 0; b < mw.batch(); ++b) {
                for (int h = 0; h < mw.heads(); ++h) {
                    HeadTask t;
                    t.workload = &mw.head(b, h);
                    // Request-local coordinates, so the per-request
                    // split below reproduces a standalone run.
                    t.batch = b;
                    t.head = h;
                    t.pastLen = mw.spec.isDecode()
                                    ? mw.spec.pastLen
                                    : 0;
                    tasks.push_back(t);
                    owner.push_back(r);
                }
            }
        }
        const int coscheduled = static_cast<int>(tasks.size());

        // Each stage is a separate pool epoch, so concurrent lanes
        // interleave between stages (one lane's SU-FA overlapping
        // another's SADS); EngineRun keeps the per-stage seam open
        // for per-stage instrumentation or finer scheduling.
        EngineResult merged =
            EngineRun(engine_, std::move(tasks)).finish();

        const Clock::time_point t1 = Clock::now();

        // Count executed work before any promise resolves, so a
        // caller observing its future sees consistent stats.
        {
            std::lock_guard<std::mutex> lk(m_);
            headTasks_ += coscheduled;
        }

        // Split the co-scheduled heads back per request, in task
        // order, so each aggregate matches a standalone Engine::run.
        std::vector<std::vector<HeadResult>> per_req(batch.size());
        for (std::size_t i = 0; i < merged.heads.size(); ++i)
            per_req[owner[i]].push_back(std::move(merged.heads[i]));

        for (std::size_t r = 0; r < batch.size(); ++r) {
            PendingRequest &p = batch[r];
            RequestResult rr;
            rr.id = p.request.id;
            rr.kind = p.request.kind();
            rr.outcome = Outcome::Completed;
            rr.engine =
                aggregateHeadResults(std::move(per_req[r]));
            rr.queueSeconds = seconds(p.submitted, t0);
            rr.serviceSeconds = seconds(t0, t1);
            rr.totalSeconds = rr.queueSeconds + rr.serviceSeconds;
            rr.coscheduledHeads = coscheduled;
            {
                std::lock_guard<std::mutex> lk(m_);
                ++completed_;
            }
            p.promise.set_value(std::move(rr));
        }
    } catch (...) {
        // Engine failure: surface it on every affected future —
        // the "never drop silently" contract extends to errors.
        for (PendingRequest &p : batch) {
            try {
                p.promise.set_exception(std::current_exception());
            } catch (const std::future_error &) {
                // promise already satisfied; nothing to do
            }
        }
    }
    {
        std::lock_guard<std::mutex> lk(m_);
        outstanding_ -= static_cast<std::int64_t>(batch.size());
    }
    cv_.notify_all();
}

std::vector<RequestResult>
runClosedLoop(Scheduler &sched, const std::vector<Request> &trace,
              int window)
{
    window = std::max(1, window);
    std::vector<RequestResult> results(trace.size());
    std::deque<std::pair<std::size_t,
                         std::future<RequestResult>>> inflight;
    std::size_t next = 0;
    while (next < trace.size() || !inflight.empty()) {
        while (next < trace.size() &&
               inflight.size() < static_cast<std::size_t>(window)) {
            inflight.emplace_back(next,
                                  sched.submit(trace[next]));
            ++next;
        }
        auto &[idx, fut] = inflight.front();
        results[idx] = fut.get();
        inflight.pop_front();
    }
    return results;
}

std::vector<RequestResult>
replayTrace(Scheduler &sched, const std::vector<Request> &trace,
            double time_scale)
{
    std::vector<std::future<RequestResult>> futures;
    futures.reserve(trace.size());
    const Clock::time_point start = Clock::now();
    for (const Request &r : trace) {
        if (time_scale > 0.0) {
            const auto due =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                r.arrival * time_scale));
            std::this_thread::sleep_until(due);
        }
        futures.push_back(sched.submit(r));
    }
    std::vector<RequestResult> results;
    results.reserve(trace.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

} // namespace serve
} // namespace sofa
