#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/threadpool.h"

namespace sofa {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** The effective deadline length of a request; 0 = none. */
double
deadlineSecondsOf(const Request &r, const SchedulerConfig &cfg)
{
    if (r.deadlineSeconds > 0.0)
        return r.deadlineSeconds;
    if (r.deadlineSeconds < 0.0)
        return 0.0; // explicitly opted out
    return cfg.defaultDeadlineSeconds > 0.0
               ? cfg.defaultDeadlineSeconds
               : 0.0;
}

/** Append @p mw's grid as request-local HeadTasks (so the
 * per-request split reproduces a standalone run). */
void
appendHeadTasks(const ModelWorkload &mw, std::vector<HeadTask> *out)
{
    for (int b = 0; b < mw.batch(); ++b) {
        for (int h = 0; h < mw.heads(); ++h) {
            HeadTask t;
            t.workload = &mw.head(b, h);
            t.batch = b;
            t.head = h;
            t.pastLen = mw.spec.isDecode() ? mw.spec.pastLen : 0;
            out->push_back(t);
        }
    }
}

void
sleepSeconds(double s)
{
    if (s > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

} // namespace

double
retryBackoffSeconds(const RetryPolicy &policy, std::uint64_t request,
                    int attempt)
{
    if (attempt <= 0)
        return 0.0;
    double backoff =
        policy.baseSeconds * std::pow(2.0, attempt - 1);
    if (policy.maxSeconds > 0.0)
        backoff = std::min(backoff, policy.maxSeconds);
    // Deterministic jitter in [1 - jitterFrac, 1 + jitterFrac):
    // hashed per (request, attempt), never a shared RNG stream.
    const double u = hashUnitInterval(
        policy.seed, request, static_cast<std::uint64_t>(attempt));
    const double jitter = 1.0 + policy.jitterFrac * (2.0 * u - 1.0);
    return std::max(0.0, backoff * jitter);
}

EngineConfig
degradedEngineConfig(const SchedulerConfig &cfg)
{
    EngineConfig ec = cfg.engine;
    const double frac = ec.pipeline.topkFrac * cfg.degradeKeepFactor;
    ec.pipeline.topkFrac = std::min(1.0, std::max(1e-3, frac));
    return ec;
}

/** Per-request in-flight state while its batch is being served. */
struct Scheduler::Slot
{
    PendingRequest p;
    Clock::time_point t0{};      ///< batch dispatch time
    bool hasDeadline = false;
    Clock::time_point deadline{};
    /** The slot's task indices in the current EngineRun. */
    std::vector<std::size_t> taskIdx;
    int attempts = 0;     ///< engine runs consumed so far
    bool timedOut = false; ///< deadline expired during the run
    bool resolved = false; ///< promise satisfied
};

Scheduler::Scheduler(SchedulerConfig cfg)
    : cfg_(std::move(cfg)), engine_(cfg_.engine),
      degradedEngine_(degradedEngineConfig(cfg_)),
      faults_(!cfg_.faults.empty()
                  ? cfg_.faults
                  : (cfg_.faultsFromEnv ? FaultPlan::fromEnv()
                                        : FaultPlan{})),
      queue_(cfg_.maxQueue),
      lanes_(std::make_unique<TaskQueue>(std::max(1, cfg_.lanes))),
      started_(!cfg_.startPaused)
{
    SOFA_ASSERT(cfg_.headBudget >= 1);
    SOFA_ASSERT(cfg_.tokenBudget >= 1);
    SOFA_ASSERT(cfg_.retry.maxAttempts >= 1);
    SOFA_ASSERT(cfg_.degradeKeepFactor > 0.0 &&
                cfg_.degradeKeepFactor <= 1.0);
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

Scheduler::~Scheduler()
{
    start();
    queue_.close();
    {
        std::lock_guard<std::mutex> lk(m_);
        closing_ = true;
    }
    cv_.notify_all();
    dispatcher_.join();
    lanes_.reset(); // drains the in-flight batches
}

std::future<RequestResult>
Scheduler::submit(Request r)
{
    PendingRequest p;
    p.request = std::move(r);
    p.submitted = Clock::now();
    std::future<RequestResult> fut = p.promise.get_future();
    {
        // Count the request as outstanding *before* it becomes
        // visible in the queue: a concurrent drain() must never see
        // outstanding_ == 0 while an admitted request is queued.
        std::lock_guard<std::mutex> lk(m_);
        ++submitted_;
        ++outstanding_;
    }
    if (!queue_.push(std::move(p))) {
        // Admission overload: shed explicitly. The future resolves
        // right here with Outcome::Shed — the caller always observes
        // what happened (push left `p` intact on refusal).
        {
            std::lock_guard<std::mutex> lk(m_);
            ++shed_;
            --outstanding_;
        }
        cv_.notify_all();
        RequestResult rr;
        rr.id = p.request.id;
        rr.kind = p.request.kind();
        rr.outcome = Outcome::Shed;
        p.promise.set_value(std::move(rr));
        return fut;
    }
    cv_.notify_all();
    return fut;
}

void
Scheduler::start()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        started_ = true;
    }
    cv_.notify_all();
}

void
Scheduler::drain()
{
    start();
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return outstanding_ == 0; });
}

SchedulerStats
Scheduler::stats() const
{
    SchedulerStats s;
    {
        std::lock_guard<std::mutex> lk(m_);
        s.submitted = submitted_;
        s.shed = shed_;
        s.completed = completed_;
        s.timedOut = timedOut_;
        s.failed = failed_;
        s.degraded = degraded_;
        s.retried = retried_;
        s.batches = batches_;
        s.headTasks = headTasks_;
    }
    s.admitted = s.submitted - s.shed;
    s.maxQueueDepth =
        static_cast<std::int64_t>(queue_.maxDepth());
    if (s.batches > 0)
        s.meanBatchRequests = static_cast<double>(s.completed) /
                              static_cast<double>(s.batches);
    return s;
}

void
Scheduler::dispatchLoop()
{
    const int lanes = std::max(1, cfg_.lanes);
    for (;;) {
        {
            // A batch is formed only when a lane is free (continuous
            // batching: every request that arrived while the lanes
            // were busy merges into the next batch). When closing,
            // drain unconditionally — queued promises must resolve.
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk, [&] {
                return closing_ || (started_ && inFlight_ < lanes);
            });
        }
        std::vector<PendingRequest> batch =
            queue_.popBatch(cfg_.headBudget, cfg_.tokenBudget);
        if (batch.empty())
            return; // queue closed and drained
        {
            std::lock_guard<std::mutex> lk(m_);
            ++batches_;
            ++inFlight_;
        }
        // PendingRequest holds a promise (move-only); std::function
        // needs a copyable callable, so the batch rides shared_ptr.
        auto shared = std::make_shared<std::vector<PendingRequest>>(
            std::move(batch));
        lanes_->submit([this, shared] {
            runBatch(std::move(*shared));
            {
                std::lock_guard<std::mutex> lk(m_);
                --inFlight_;
            }
            cv_.notify_all();
        });
    }
}

void
Scheduler::resolveSlot(Slot &slot, Outcome outcome,
                       EngineResult engine, double keep_frac,
                       int coscheduled, std::string error)
{
    SOFA_ASSERT(!slot.resolved);
    const Clock::time_point now = Clock::now();
    RequestResult rr;
    rr.id = slot.p.request.id;
    rr.kind = slot.p.request.kind();
    rr.outcome = outcome;
    rr.engine = std::move(engine);
    rr.queueSeconds = seconds(slot.p.submitted, slot.t0);
    rr.serviceSeconds = seconds(slot.t0, now);
    rr.totalSeconds = rr.queueSeconds + rr.serviceSeconds;
    rr.coscheduledHeads = coscheduled;
    rr.attempts = slot.attempts;
    if (slot.hasDeadline)
        rr.deadlineSlackSeconds = seconds(now, slot.deadline);
    rr.degradeKeepFrac = keep_frac;
    rr.error = std::move(error);
    {
        std::lock_guard<std::mutex> lk(m_);
        switch (outcome) {
          case Outcome::Completed:
            ++completed_;
            break;
          case Outcome::Degraded:
            ++degraded_;
            break;
          case Outcome::TimedOut:
            ++timedOut_;
            break;
          case Outcome::Failed:
            ++failed_;
            break;
          case Outcome::Shed:
            break; // resolved in submit(), never here
        }
    }
    slot.resolved = true;
    slot.p.promise.set_value(std::move(rr));
}

bool
Scheduler::stepWithFaults(EngineRun &run, std::vector<Slot *> &slots)
{
    while (!run.done()) {
        const char *stage = run.nextStageName();
        bool any_live = false;
        for (Slot *s : slots) {
            if (s->timedOut)
                continue;
            const FaultDecision d =
                faults_.at(s->p.request.id, stage, s->attempts);
            if (d.action == FaultAction::Slow)
                sleepSeconds(d.slowMs * 1e-3);
            if (s->hasDeadline && Clock::now() >= s->deadline) {
                // Deadline expired mid-pipeline: cancel the slot's
                // tasks so the remaining stages skip them — the
                // run keeps the lane only for still-live requests.
                // Timeout takes precedence over an injected failure
                // at the same boundary.
                for (std::size_t t : s->taskIdx)
                    run.cancel(t);
                s->timedOut = true;
                continue;
            }
            if (d.action == FaultAction::Fail)
                throw InjectedFault(
                    "injected fault: req=" +
                    std::to_string(s->p.request.id) + " stage=" +
                    (stage != nullptr ? stage : "?") + " attempt=" +
                    std::to_string(s->attempts));
            any_live = true;
        }
        if (!any_live)
            return false; // everything cancelled; stop stepping
        run.step();
    }
    return true;
}

void
Scheduler::runSoloWithRetry(Slot &slot, const Engine &eng,
                            Outcome success, double keep_frac,
                            std::string last_error)
{
    const int max_attempts = std::max(1, cfg_.retry.maxAttempts);
    std::vector<Slot *> solo{&slot};
    while (slot.attempts < max_attempts) {
        if (slot.attempts > 0) {
            {
                std::lock_guard<std::mutex> lk(m_);
                ++retried_;
            }
            sleepSeconds(retryBackoffSeconds(
                cfg_.retry, slot.p.request.id, slot.attempts));
        }
        if (slot.hasDeadline && Clock::now() >= slot.deadline) {
            resolveSlot(slot, Outcome::TimedOut, EngineResult{},
                        keep_frac, 0, std::string());
            return;
        }
        try {
            const ModelWorkload mw =
                generateModelWorkload(slot.p.request.work);
            std::vector<HeadTask> tasks;
            appendHeadTasks(mw, &tasks);
            const int n = static_cast<int>(tasks.size());
            slot.taskIdx.resize(tasks.size());
            for (std::size_t t = 0; t < tasks.size(); ++t)
                slot.taskIdx[t] = t;
            slot.timedOut = false;
            EngineRun run(eng, std::move(tasks));
            const bool ran = stepWithFaults(run, solo);
            ++slot.attempts;
            if (slot.timedOut || !ran) {
                resolveSlot(slot, Outcome::TimedOut, EngineResult{},
                            keep_frac, n, std::string());
                return;
            }
            EngineResult res = run.finish();
            {
                std::lock_guard<std::mutex> lk(m_);
                headTasks_ += n;
            }
            // Solo run of the request's own tasks == a standalone
            // Engine::run of its spec, so the bit-exactness
            // contract holds on the recovery and degraded paths.
            resolveSlot(slot, success, std::move(res), keep_frac, n,
                        std::string());
            return;
        } catch (const std::exception &e) {
            ++slot.attempts;
            last_error = e.what();
        } catch (...) {
            ++slot.attempts;
            last_error = "unknown engine failure";
        }
    }
    resolveSlot(slot, Outcome::Failed, EngineResult{}, keep_frac, 0,
                std::move(last_error));
}

void
Scheduler::runBatch(std::vector<PendingRequest> batch)
{
    const Clock::time_point t0 = Clock::now();
    std::vector<Slot> slots(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Slot &s = slots[i];
        s.p = std::move(batch[i]);
        s.t0 = t0;
        const double dl = deadlineSecondsOf(s.p.request, cfg_);
        if (dl > 0.0) {
            s.hasDeadline = true;
            s.deadline =
                s.p.submitted +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(dl));
        }
    }
    try {
        // Pre-dispatch triage: already-expired deadlines resolve
        // TimedOut without consuming an engine run; requests queued
        // past the overload threshold take the degraded path; the
        // rest merge into one engine run.
        std::vector<Slot *> merged_slots;
        std::vector<Slot *> degrade_slots;
        for (Slot &s : slots) {
            if (s.hasDeadline && t0 >= s.deadline) {
                resolveSlot(s, Outcome::TimedOut, EngineResult{},
                            1.0, 0, std::string());
            } else if (cfg_.degradeAfterSeconds > 0.0 &&
                       seconds(s.p.submitted, t0) >
                           cfg_.degradeAfterSeconds) {
                degrade_slots.push_back(&s);
            } else {
                merged_slots.push_back(&s);
            }
        }

        // Degraded requests run solo on the cheaper engine, first —
        // they have already waited past the overload threshold.
        const double keep_frac =
            degradedEngine_.config().pipeline.topkFrac /
            cfg_.engine.pipeline.topkFrac;
        for (Slot *s : degrade_slots)
            runSoloWithRetry(*s, degradedEngine_, Outcome::Degraded,
                             keep_frac, std::string());

        if (!merged_slots.empty()) {
            // Materialize each request's workload (deterministic in
            // its own seed), then merge every head onto one grid.
            std::vector<ModelWorkload> works;
            works.reserve(merged_slots.size());
            for (Slot *s : merged_slots)
                works.push_back(
                    generateModelWorkload(s->p.request.work));

            std::vector<HeadTask> tasks;
            std::vector<std::size_t> owner; // task -> slot index
            for (std::size_t r = 0; r < merged_slots.size(); ++r) {
                const std::size_t first = tasks.size();
                appendHeadTasks(works[r], &tasks);
                for (std::size_t t = first; t < tasks.size(); ++t) {
                    owner.push_back(r);
                    merged_slots[r]->taskIdx.push_back(t);
                }
            }
            const int coscheduled = static_cast<int>(tasks.size());

            try {
                // Each stage is a separate pool epoch, so concurrent
                // lanes interleave between stages; the per-stage seam
                // is also where faults inject and deadlines cancel.
                EngineRun run(engine_, std::move(tasks));
                const bool ran = stepWithFaults(run, merged_slots);
                for (Slot *s : merged_slots)
                    ++s->attempts; // the merged run was attempt 0
                if (ran) {
                    EngineResult merged = run.finish();
                    // Count executed work before any promise
                    // resolves, so a caller observing its future
                    // sees consistent stats.
                    {
                        std::lock_guard<std::mutex> lk(m_);
                        headTasks_ += coscheduled;
                    }
                    // Split the co-scheduled heads back per request,
                    // in task order, so each aggregate matches a
                    // standalone Engine::run.
                    std::vector<std::vector<HeadResult>> per_req(
                        merged_slots.size());
                    for (std::size_t i = 0; i < merged.heads.size();
                         ++i) {
                        if (!merged_slots[owner[i]]->timedOut)
                            per_req[owner[i]].push_back(
                                std::move(merged.heads[i]));
                    }
                    for (std::size_t r = 0; r < merged_slots.size();
                         ++r) {
                        Slot *s = merged_slots[r];
                        if (s->timedOut)
                            resolveSlot(*s, Outcome::TimedOut,
                                        EngineResult{}, 1.0,
                                        coscheduled, std::string());
                        else
                            resolveSlot(*s, Outcome::Completed,
                                        aggregateHeadResults(
                                            std::move(per_req[r])),
                                        1.0, coscheduled,
                                        std::string());
                    }
                } else {
                    // Every merged request timed out mid-run; the
                    // partial work was cancelled and is discarded.
                    for (Slot *s : merged_slots)
                        resolveSlot(*s, Outcome::TimedOut,
                                    EngineResult{}, 1.0, coscheduled,
                                    std::string());
                }
            } catch (const std::exception &e) {
                // Engine failure (injected or real): abandon the
                // merged run; every still-live request recovers with
                // solo retries so one bad request cannot poison its
                // batch neighbours. This path is counted (failed_/
                // retried_) and the futures still resolve normally.
                for (Slot *s : merged_slots)
                    ++s->attempts; // the aborted run was attempt 0
                for (Slot *s : merged_slots) {
                    if (s->resolved)
                        continue;
                    if (s->timedOut) {
                        resolveSlot(*s, Outcome::TimedOut,
                                    EngineResult{}, 1.0, coscheduled,
                                    std::string());
                        continue;
                    }
                    s->taskIdx.clear();
                    runSoloWithRetry(*s, engine_, Outcome::Completed,
                                     1.0, e.what());
                }
            }
        }
    } catch (const std::exception &e) {
        // Last-resort safety net (e.g. workload generation failed):
        // resolve every still-pending promise as Failed — futures
        // never carry exceptions and failures are always accounted.
        for (Slot &s : slots)
            if (!s.resolved)
                resolveSlot(s, Outcome::Failed, EngineResult{}, 1.0,
                            0, e.what());
    } catch (...) {
        for (Slot &s : slots)
            if (!s.resolved)
                resolveSlot(s, Outcome::Failed, EngineResult{}, 1.0,
                            0, "unknown scheduler failure");
    }
    {
        std::lock_guard<std::mutex> lk(m_);
        outstanding_ -= static_cast<std::int64_t>(slots.size());
    }
    cv_.notify_all();
}

std::vector<RequestResult>
runClosedLoop(Scheduler &sched, const std::vector<Request> &trace,
              int window)
{
    window = std::max(1, window);
    std::vector<RequestResult> results(trace.size());
    std::deque<std::pair<std::size_t,
                         std::future<RequestResult>>> inflight;
    std::size_t next = 0;
    while (next < trace.size() || !inflight.empty()) {
        while (next < trace.size() &&
               inflight.size() < static_cast<std::size_t>(window)) {
            inflight.emplace_back(next,
                                  sched.submit(trace[next]));
            ++next;
        }
        auto &[idx, fut] = inflight.front();
        results[idx] = fut.get();
        inflight.pop_front();
    }
    return results;
}

std::vector<RequestResult>
replayTrace(Scheduler &sched, const std::vector<Request> &trace,
            double time_scale)
{
    std::vector<std::future<RequestResult>> futures;
    futures.reserve(trace.size());
    const Clock::time_point start = Clock::now();
    for (const Request &r : trace) {
        if (time_scale > 0.0) {
            const auto due =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                r.arrival * time_scale));
            std::this_thread::sleep_until(due);
        }
        futures.push_back(sched.submit(r));
    }
    std::vector<RequestResult> results;
    results.reserve(trace.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

} // namespace serve
} // namespace sofa
