/**
 * @file
 * Executor backends behind the serving scheduler: the Backend
 * abstraction turns "the engine" into a heterogeneous fleet. A
 * Backend advertises capabilities (concurrent-run capacity, which
 * request kinds it serves, a relative cost hint), accepts
 * stage-granular work through begin() — returning a BackendRun that
 * mirrors core/engine's EngineRun step()/finish()/cancel() surface,
 * so fault injection and deadline cancellation keep happening at
 * stage boundaries — and reports queue depth and completed runs for
 * the routing policies and the conformance accounting invariants.
 *
 * Three implementations:
 *  - EngineBackend: N independent core/engine instances, each with
 *    its *own* explicit common/threadpool (never the process-wide
 *    default — mutating that from one backend would cross-talk into
 *    every other, the latent ScopedDefaultThreads hazard) and its
 *    own auto-tile plan. The measured, bit-exact executor.
 *  - SimBackend: results computed by a hidden reference engine
 *    (bit-exact vs Engine::run by construction), latency charged
 *    from the arch/accelerator cycle model per head task.
 *  - AnalyticBackend: same hidden-engine results, latency from the
 *    baselines/ GPU/TPU roofline models — what-if routing against
 *    modeled devices without giving up numerical conformance.
 *
 * Every backend executes the same per-task numerics, so any fleet
 * mix preserves the scheduler's bit-exactness contract; only the
 * charged/measured latency differs. RoutingPolicy picks the shard:
 * static round-robin (bit-compatible default), least-queue-depth
 * placement, or prefill/decode disaggregation (decode-heavy work
 * pinned to KV-cache-warm backends — the ones that keep a
 * serve/kvpool). routeRequest is the pure decision function the
 * scheduler calls and the property tests replay.
 *
 * Units: queue depth in runs; modeled latency in seconds (derived
 * from arch cycles at 1 GHz or baselines ns); cost hints are
 * relative (1.0 = the in-process engine); ops remain OpCounter ops.
 */

#ifndef SOFA_SERVE_BACKEND_H
#define SOFA_SERVE_BACKEND_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "arch/accelerator.h"
#include "baselines/gpu.h"
#include "baselines/tpu.h"
#include "core/engine.h"
#include "serve/request.h"

namespace sofa {

class ThreadPool;

namespace serve {

/** What a backend can serve and how routing should weigh it. */
struct BackendCapabilities
{
    /** Concurrent runs the backend is sized for; the scheduler uses
     * it as the shard's lane count. 0 = inherit the scheduler's
     * `lanes` knob. */
    int maxConcurrentRuns = 0;
    /** Serves prefill-shaped requests (Disaggregated routing sends
     * prefills to prefill-capable backends). */
    bool supportsPrefill = true;
    /** Serves decode-shaped requests. Decode-capable backends are
     * the "KV-cache-warm" class: the scheduler gives them a
     * serve/kvpool shard and Disaggregated routing pins decodes to
     * them. */
    bool supportsDecode = true;
    /** Relative service-cost hint (1.0 = the in-process engine;
     * informational for reporting and what-if comparisons — the
     * shipped policies route on queue depth, not cost). */
    double costHint = 1.0;
};

class Backend;

/**
 * One stage-granular run in flight on a backend — the fleet
 * counterpart of core/engine's EngineRun. The base class carries the
 * accounting every implementation must keep: the owning backend's
 * queue depth rises at construction and falls at destruction, and
 * finish() counts a completed run exactly once. Subclasses implement
 * the stepping surface; the scheduler only ever sees this interface.
 */
class BackendRun
{
  public:
    /** Register @p tasks tasks in flight on @p owner. */
    BackendRun(Backend &owner, std::size_t tasks);
    virtual ~BackendRun();

    BackendRun(const BackendRun &) = delete;
    BackendRun &operator=(const BackendRun &) = delete;

    virtual std::size_t stageCount() const = 0;
    /** Name of the stage the next step() runs; nullptr when done. */
    virtual const char *nextStageName() const = 0;
    virtual bool done() const = 0;
    /** Execute exactly one stage. Precondition: !done(). */
    virtual void step() = 0;
    /** Cooperatively cancel task @p i (EngineRun::cancel semantics:
     * remaining stages skip it, slot alignment is preserved). */
    virtual void cancel(std::size_t i) = 0;
    virtual bool cancelled(std::size_t i) const = 0;
    /**
     * Modeled service seconds the backend charges for task @p i —
     * the cycle-model (SimBackend) or roofline (AnalyticBackend)
     * latency. 0 on measured backends (EngineBackend), where
     * wall-clock is the truth.
     */
    virtual double modeledTaskSeconds(std::size_t i) const;

    /** Run any remaining stages, assemble the aggregate result and
     * record the completion on the owner. The run is spent. */
    EngineResult finish();

    std::size_t tasks() const { return tasks_; }

  protected:
    /** Subclass tail of finish() (called once, after stepping). */
    virtual EngineResult finishImpl() = 0;

  private:
    Backend &owner_;
    std::size_t tasks_ = 0;
    bool finished_ = false;
};

/**
 * An executor the scheduler can place work on. Thread-safe: begin()
 * may be called from any lane concurrently; the returned runs are
 * independent (each is stepped by one lane at a time, like
 * EngineRun).
 */
class Backend
{
  public:
    explicit Backend(std::string name);
    virtual ~Backend();

    Backend(const Backend &) = delete;
    Backend &operator=(const Backend &) = delete;

    /** Stable display/routing name ("engine0", "sim", "gpu-a100"). */
    const std::string &name() const { return name_; }

    virtual BackendCapabilities capabilities() const = 0;

    /**
     * Begin a stage-granular run over @p tasks. @p keep_factor in
     * (0, 1] scales the executing pipeline's SADS keep span
     * (pipeline.topkFrac, clamped to [1e-3, 1]) — 1.0 is full
     * service, the scheduler passes its degradeKeepFactor for
     * Outcome::Degraded runs; the scaling matches
     * degradedEngineConfig so degraded results stay bit-exact vs a
     * standalone run of the degraded spec. The task list is copied;
     * the workloads the tasks point at must outlive the run.
     */
    std::unique_ptr<BackendRun> begin(std::vector<HeadTask> tasks,
                                      double keep_factor = 1.0);

    /** Runs in flight (begun, not yet destroyed) — the load signal
     * LeastQueueDepth routing adds to the waiting-queue depth. */
    int queueDepth() const;
    /** Runs whose finish() completed, over the backend's lifetime. */
    std::int64_t completedRuns() const;
    /** Head tasks of those completed runs. */
    std::int64_t completedTasks() const;

  protected:
    virtual std::unique_ptr<BackendRun>
    beginRun(std::vector<HeadTask> tasks, double keep_factor) = 0;

  private:
    friend class BackendRun;

    std::string name_;
    mutable std::mutex m_;
    int inFlight_ = 0;
    std::int64_t completedRuns_ = 0;
    std::int64_t completedTasks_ = 0;
};

/** The engine config @p base with pipeline.topkFrac scaled by
 * @p keep_factor (clamped to [1e-3, 1]) — the degradation lever
 * every backend applies identically (cf. degradedEngineConfig). */
EngineConfig scaledKeepConfig(const EngineConfig &base,
                              double keep_factor);

/** EngineBackend knobs. */
struct EngineBackendConfig
{
    /** The wrapped engine (pipeline, rowTile, autoTile plan...). */
    EngineConfig engine;
    /**
     * Size of the backend-owned explicit ThreadPool. > 0: the
     * backend constructs its own pool and points the engine at it,
     * so fleets of engines with different thread counts coexist
     * without touching the process-wide default (the
     * ScopedDefaultThreads hazard). 0 (default): the engine uses
     * whatever `engine.pool` says — an explicit caller pool, else
     * the process-wide instance (bit-compatible single-backend
     * behaviour).
     */
    int threads = 0;
    BackendCapabilities caps;
    std::string name = "engine";
};

/** In-process core/engine executor (the measured backend). */
class EngineBackend : public Backend
{
  public:
    explicit EngineBackend(EngineBackendConfig cfg = {});
    ~EngineBackend() override;

    BackendCapabilities capabilities() const override;
    const EngineBackendConfig &config() const { return cfg_; }
    /** The owned pool's participant count; 0 = no owned pool. */
    int ownedPoolThreads() const;

  protected:
    std::unique_ptr<BackendRun>
    beginRun(std::vector<HeadTask> tasks,
             double keep_factor) override;

  private:
    const Engine &engineFor(double keep_factor);

    EngineBackendConfig cfg_;
    std::unique_ptr<ThreadPool> pool_; ///< owned iff cfg_.threads > 0
    std::unique_ptr<Engine> engine_;
    /** Lazily-built engines for degraded keep factors (one per
     * distinct factor; the scheduler uses a single one). */
    std::mutex scaledM_;
    std::vector<std::pair<double, std::unique_ptr<Engine>>> scaled_;
};

/** SimBackend knobs. */
struct SimBackendConfig
{
    /** Hidden reference engine computing the (bit-exact) results. */
    EngineConfig engine;
    /** Cycle model charging the latency (arch/accelerator). */
    SofaConfig arch;
    /** Owned pool for the hidden engine (EngineBackendConfig
     * semantics; 0 = shared default pool). */
    int threads = 0;
    /** Wall-clock seconds slept per modeled second while stepping
     * (spread evenly across stages), so live-load experiments can
     * make modeled latency observable; 0 (default) charges only. */
    double sleepScale = 0.0;
    BackendCapabilities caps;
    std::string name = "sim";
};

/** Accelerator-cycle-model executor: hidden-engine results, latency
 * charged per task from arch/accelerator's SimResult. */
class SimBackend : public Backend
{
  public:
    explicit SimBackend(SimBackendConfig cfg = {});
    ~SimBackend() override;

    BackendCapabilities capabilities() const override;
    const SimBackendConfig &config() const { return cfg_; }

  protected:
    std::unique_ptr<BackendRun>
    beginRun(std::vector<HeadTask> tasks,
             double keep_factor) override;

  private:
    SimBackendConfig cfg_;
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<Engine> engine_;
    std::mutex scaledM_;
    std::vector<std::pair<double, std::unique_ptr<Engine>>> scaled_;
    SofaAccelerator accel_;
};

/** Which baselines/ device model prices AnalyticBackend's latency. */
enum class AnalyticDevice {
    GPU, ///< baselines/gpu A100 roofline
    TPU, ///< baselines/tpu TPUv3 roofline
};

/** AnalyticBackend knobs. */
struct AnalyticBackendConfig
{
    /** Hidden reference engine computing the (bit-exact) results. */
    EngineConfig engine;
    AnalyticDevice device = AnalyticDevice::GPU;
    /** Execution mode priced on the device (baselines/gpu modes). */
    GpuMode mode = GpuMode::SofaSoft;
    GpuConfig gpu;
    TpuConfig tpu;
    /** Owned pool for the hidden engine (0 = shared default). */
    int threads = 0;
    BackendCapabilities caps;
    /** Defaults to the device model's name ("A100"/"TPUv3"). */
    std::string name;
};

/** What-if executor over the baselines/ GPU/TPU roofline models:
 * hidden-engine results, modeled device latency per task. */
class AnalyticBackend : public Backend
{
  public:
    explicit AnalyticBackend(AnalyticBackendConfig cfg = {});
    ~AnalyticBackend() override;

    BackendCapabilities capabilities() const override;
    const AnalyticBackendConfig &config() const { return cfg_; }

  protected:
    std::unique_ptr<BackendRun>
    beginRun(std::vector<HeadTask> tasks,
             double keep_factor) override;

  private:
    AnalyticBackendConfig cfg_;
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<Engine> engine_;
    std::mutex scaledM_;
    std::vector<std::pair<double, std::unique_ptr<Engine>>> scaled_;
    GpuModel gpu_;
    TpuModel tpu_;
};

/** Fleet placement policy (docs/SERVING.md has the routing table). */
enum class RoutingPolicy {
    RoundRobin,      ///< static rotation over capable backends (the
                     ///< default; bit-compatible — one backend
                     ///< degenerates to the single-engine scheduler)
    LeastQueueDepth, ///< lowest waiting+in-flight depth, lowest
                     ///< index on ties
    Disaggregated,   ///< prefills to prefill-preferring backends,
                     ///< decodes pinned to KV-cache-warm
                     ///< (decode-capable) ones; least depth within
                     ///< the class
};

/** Stable lower-case policy name ("roundrobin", ...). */
const char *routingPolicyName(RoutingPolicy p);

/**
 * The pure routing decision: index of the backend a @p kind request
 * is placed on, given per-backend capabilities and current depths
 * (waiting requests + runs in flight) and the admission-order
 * round-robin counter. Deterministic in its arguments — the
 * routing-property suite replays it — and total: when no backend
 * advertises the kind, the capability filter is dropped rather than
 * failing. @p caps and @p depths must be equal-length and non-empty.
 */
int routeRequest(RoutingPolicy policy, RequestKind kind,
                 const std::vector<BackendCapabilities> &caps,
                 const std::vector<std::int64_t> &depths,
                 std::uint64_t rr_counter);

} // namespace serve
} // namespace sofa

#endif // SOFA_SERVE_BACKEND_H
