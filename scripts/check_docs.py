#!/usr/bin/env python3
"""Docs/tree sync check (run from the repository root).

Fails when the documentation drifts from the actual source tree:
  * every src/<group>/<module> must be mentioned (as "group/module")
    in docs/ARCHITECTURE.md, and every mentioned module must exist;
  * every bench/bench_<name>.cc must be mentioned in
    docs/BENCHMARKS.md;
  * every bench binary must have a golden
    (bench/goldens/BENCH_<name>.json) and every golden a binary.

Run by CI's docs job and registered as the docs_sync CTest.
"""

import glob
import os
import re
import sys


def read(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def main():
    errors = []

    # --- src modules <-> docs/ARCHITECTURE.md -------------------
    arch_doc = read("docs/ARCHITECTURE.md")
    modules = set()
    for path in glob.glob("src/*/*.h") + glob.glob("src/*/*.cc"):
        group = os.path.basename(os.path.dirname(path))
        stem = os.path.splitext(os.path.basename(path))[0]
        modules.add(f"{group}/{stem}")
    for mod in sorted(modules):
        if mod not in arch_doc:
            errors.append(
                f"docs/ARCHITECTURE.md: src module {mod} not listed")
    # Stale mentions: every "group/stem" the doc names must exist.
    groups = {m.split("/")[0] for m in modules}
    pattern = re.compile(
        r"\b(" + "|".join(sorted(groups)) + r")/([a-z0-9_]+)\b")
    for g, stem in set(pattern.findall(arch_doc)):
        if f"{g}/{stem}" not in modules:
            errors.append(f"docs/ARCHITECTURE.md: {g}/{stem} "
                          "mentioned but not in src/")

    # --- bench binaries <-> docs/BENCHMARKS.md ------------------
    bench_doc = read("docs/BENCHMARKS.md")
    benches = sorted(
        os.path.splitext(os.path.basename(p))[0]
        for p in glob.glob("bench/bench_*.cc"))
    for b in benches:
        if b not in bench_doc:
            errors.append(f"docs/BENCHMARKS.md: {b} not documented")
    for b in set(re.findall(r"\bbench_[a-z0-9_]+\b", bench_doc)):
        if b not in benches:
            errors.append(f"docs/BENCHMARKS.md: {b} documented but "
                          f"bench/{b}.cc does not exist")

    # --- bench binaries <-> goldens -----------------------------
    goldens = sorted(
        os.path.basename(p)[len("BENCH_"):-len(".json")]
        for p in glob.glob("bench/goldens/BENCH_*.json"))
    names = [b[len("bench_"):] for b in benches]
    for n in names:
        if n not in goldens:
            errors.append(f"bench/goldens/BENCH_{n}.json missing "
                          "(scripts/bench.sh --quick "
                          "--update-goldens --only " + n + ")")
    for g in goldens:
        if g not in names:
            errors.append(f"bench/goldens/BENCH_{g}.json is stale: "
                          f"no bench_{g}.cc")

    if errors:
        for e in errors:
            print(f"check_docs: {e}")
        print(f"check_docs: {len(errors)} problem(s)")
        return 1
    print(f"check_docs: {len(modules)} src modules, {len(benches)} "
          "bench binaries, goldens all in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
