#!/usr/bin/env python3
"""Docs/tree sync check (run from the repository root).

Fails when the documentation drifts from the actual source tree:
  * every src/<group>/<module> must be mentioned (as "group/module")
    in docs/ARCHITECTURE.md, and every mentioned module must exist;
  * every bench/bench_<name>.cc must be mentioned in
    docs/BENCHMARKS.md;
  * every bench binary must have a golden
    (bench/goldens/BENCH_<name>.json) and every golden a binary;
  * docs/SERVING.md must cover every src/serve module, every
    serve::SchedulerConfig knob, every serve::Outcome value (as
    `Outcome::X`), the SOFA_FAULTS variable and the common/faultplan
    grammar, and bench_serve (and must not mention modules or
    Outcome values that no longer exist);
  * docs/TUNING.md must cover the tile planner: every TilePlan knob
    and every MachineDescriptor field (parsed from the headers, as
    `field`), the SOFA_AUTOTILE and SOFA_MACHINE variables, the
    core/tiler and common/machine modules and bench_tiler (and must
    not mention modules that no longer exist);
  * every src/serve header, plus src/common/threadpool.h,
    src/common/machine.h, src/core/engine.h, src/core/tiler.h and
    src/model/model_workload.h, must carry the Units/assumptions
    header-comment line (the PR-3 documentation convention).

Run by CI's docs job and registered as the docs_sync CTest.
"""

import glob
import os
import re
import sys


def read(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def main():
    errors = []

    # --- src modules <-> docs/ARCHITECTURE.md -------------------
    arch_doc = read("docs/ARCHITECTURE.md")
    modules = set()
    for path in glob.glob("src/*/*.h") + glob.glob("src/*/*.cc"):
        group = os.path.basename(os.path.dirname(path))
        stem = os.path.splitext(os.path.basename(path))[0]
        modules.add(f"{group}/{stem}")
    for mod in sorted(modules):
        if mod not in arch_doc:
            errors.append(
                f"docs/ARCHITECTURE.md: src module {mod} not listed")
    # Stale mentions: every "group/stem" the doc names must exist.
    groups = {m.split("/")[0] for m in modules}
    pattern = re.compile(
        r"\b(" + "|".join(sorted(groups)) + r")/([a-z0-9_]+)\b")
    for g, stem in set(pattern.findall(arch_doc)):
        if f"{g}/{stem}" not in modules:
            errors.append(f"docs/ARCHITECTURE.md: {g}/{stem} "
                          "mentioned but not in src/")

    # --- serving docs <-> src/serve -----------------------------
    serving_doc = read("docs/SERVING.md")
    for mod in sorted(m for m in modules if m.startswith("serve/")):
        if mod not in serving_doc:
            errors.append(
                f"docs/SERVING.md: serve module {mod} not documented")
    for g, stem in set(pattern.findall(serving_doc)):
        if f"{g}/{stem}" not in modules:
            errors.append(f"docs/SERVING.md: {g}/{stem} mentioned "
                          "but not in src/")
    if "bench_serve" not in serving_doc:
        errors.append("docs/SERVING.md: bench_serve not documented")
    # Every scheduler tuning knob must be documented: parse the
    # SchedulerConfig field names (with or without a default
    # initializer) straight from the header so renames or additions
    # can't silently drift.
    sched_header = read("src/serve/scheduler.h")
    cfg_match = re.search(
        r"struct SchedulerConfig\s*\{(.*?)\n\};", sched_header,
        re.DOTALL)
    if not cfg_match:
        errors.append("src/serve/scheduler.h: SchedulerConfig "
                      "struct not found (check_docs parses it)")
    else:
        knobs = re.findall(
            r"^\s*[A-Za-z_][\w:<>]*\s+(\w+)\s*(?:=[^;]*)?;",
            cfg_match.group(1), re.MULTILINE)
        if not knobs:
            errors.append("src/serve/scheduler.h: no SchedulerConfig "
                          "knobs parsed (check_docs regex stale?)")
        for knob in knobs:
            if f"`{knob}`" not in serving_doc:
                errors.append(f"docs/SERVING.md: SchedulerConfig "
                              f"knob `{knob}` not documented")

    # Every request outcome must be documented as `Outcome::X` (the
    # fault-model section's contract table), and the doc must not
    # name outcomes that were removed from the enum.
    request_header = read("src/serve/request.h")
    outcome_match = re.search(
        r"enum class Outcome\s*\{(.*?)\};", request_header,
        re.DOTALL)
    if not outcome_match:
        errors.append("src/serve/request.h: Outcome enum not found "
                      "(check_docs parses it)")
    else:
        body = re.sub(r"//[^\n]*", "", outcome_match.group(1))
        values = re.findall(r"\b([A-Z]\w*)\b", body)
        if not values:
            errors.append("src/serve/request.h: no Outcome values "
                          "parsed (check_docs regex stale?)")
        for v in values:
            if f"`Outcome::{v}`" not in serving_doc:
                errors.append(f"docs/SERVING.md: `Outcome::{v}` "
                              "not documented")
        for v in set(re.findall(r"Outcome::(\w+)", serving_doc)):
            if v not in values:
                errors.append(f"docs/SERVING.md: Outcome::{v} "
                              "mentioned but not in the enum")

    # Every scheduling policy must be documented (the policy table),
    # parsed from the SchedulingPolicy enum so a new policy cannot
    # land without its row.
    queue_header = read("src/serve/request_queue.h")
    policy_match = re.search(
        r"enum class SchedulingPolicy\s*\{(.*?)\};", queue_header,
        re.DOTALL)
    if not policy_match:
        errors.append("src/serve/request_queue.h: SchedulingPolicy "
                      "enum not found (check_docs parses it)")
    else:
        body = re.sub(r"//[^\n]*", "", policy_match.group(1))
        variants = re.findall(r"\b([A-Z]\w*)\b", body)
        if not variants:
            errors.append("src/serve/request_queue.h: no "
                          "SchedulingPolicy variants parsed "
                          "(check_docs regex stale?)")
        for v in variants:
            if f"`{v}`" not in serving_doc:
                errors.append(f"docs/SERVING.md: SchedulingPolicy "
                              f"variant `{v}` not documented")

    # Every fleet routing policy must be documented (the backends &
    # routing section), parsed from the RoutingPolicy enum so a new
    # policy cannot land without its row, and every Backend
    # implementation class must be mentioned by name.
    backend_header = read("src/serve/backend.h")
    routing_match = re.search(
        r"enum class RoutingPolicy\s*\{(.*?)\};", backend_header,
        re.DOTALL)
    if not routing_match:
        errors.append("src/serve/backend.h: RoutingPolicy enum not "
                      "found (check_docs parses it)")
    else:
        body = re.sub(r"//[^\n]*", "", routing_match.group(1))
        variants = re.findall(r"\b([A-Z]\w*)\b", body)
        if not variants:
            errors.append("src/serve/backend.h: no RoutingPolicy "
                          "variants parsed (check_docs regex stale?)")
        for v in variants:
            if f"`{v}`" not in serving_doc:
                errors.append(f"docs/SERVING.md: RoutingPolicy "
                              f"variant `{v}` not documented")
    backend_impls = re.findall(
        r"class (\w+Backend)\s*(?:final\s*)?:\s*public Backend",
        backend_header)
    if not backend_impls:
        errors.append("src/serve/backend.h: no Backend "
                      "implementations parsed (check_docs regex "
                      "stale?)")
    for impl in backend_impls:
        if impl not in serving_doc:
            errors.append(f"docs/SERVING.md: Backend implementation "
                          f"{impl} not documented")

    # The fault model must be documented: the injection grammar's
    # environment hook and the module implementing it.
    for needle in ("SOFA_FAULTS", "common/faultplan"):
        if needle not in serving_doc:
            errors.append(f"docs/SERVING.md: {needle} not documented "
                          "(fault-model section)")

    # --- tuning docs <-> the tile planner -----------------------
    # docs/TUNING.md is the operator's guide to the auto-tiler; its
    # knob and field tables are parsed from the headers so a renamed
    # or added knob cannot land undocumented.
    tuning_doc = read("docs/TUNING.md")
    for struct, header in (("TilePlan", "src/core/tiler.h"),
                           ("MachineDescriptor",
                            "src/common/machine.h")):
        body_match = re.search(
            r"struct " + struct + r"\s*\{(.*?)\n\};", read(header),
            re.DOTALL)
        if not body_match:
            errors.append(f"{header}: {struct} struct not found "
                          "(check_docs parses it)")
            continue
        fields = re.findall(
            r"^\s*(?:std::)?\w+\s+(\w+)\s*=[^=;][^;]*;",
            body_match.group(1), re.MULTILINE)
        if not fields:
            errors.append(f"{header}: no {struct} fields parsed "
                          "(check_docs regex stale?)")
        for field in fields:
            if f"`{field}`" not in tuning_doc:
                errors.append(f"docs/TUNING.md: {struct} field "
                              f"`{field}` not documented")
    for needle in ("SOFA_AUTOTILE", "SOFA_MACHINE", "core/tiler",
                   "common/machine", "bench_tiler"):
        if needle not in tuning_doc:
            errors.append(f"docs/TUNING.md: {needle} not documented")
    for g, stem in set(pattern.findall(tuning_doc)):
        if f"{g}/{stem}" not in modules:
            errors.append(f"docs/TUNING.md: {g}/{stem} mentioned "
                          "but not in src/")

    # --- Units/assumptions header-comment convention ------------
    units_files = sorted(glob.glob("src/serve/*.h")) + [
        "src/common/machine.h",
        "src/common/threadpool.h",
        "src/core/engine.h",
        "src/core/tiler.h",
        "src/model/model_workload.h",
    ]
    for path in units_files:
        if "Units:" not in read(path):
            errors.append(f"{path}: missing the 'Units:' "
                          "header-comment line (see docs/SERVING.md)")

    # --- bench binaries <-> docs/BENCHMARKS.md ------------------
    bench_doc = read("docs/BENCHMARKS.md")
    benches = sorted(
        os.path.splitext(os.path.basename(p))[0]
        for p in glob.glob("bench/bench_*.cc"))
    for b in benches:
        if b not in bench_doc:
            errors.append(f"docs/BENCHMARKS.md: {b} not documented")
    for b in set(re.findall(r"\bbench_[a-z0-9_]+\b", bench_doc)):
        if b not in benches:
            errors.append(f"docs/BENCHMARKS.md: {b} documented but "
                          f"bench/{b}.cc does not exist")

    # --- bench binaries <-> goldens -----------------------------
    goldens = sorted(
        os.path.basename(p)[len("BENCH_"):-len(".json")]
        for p in glob.glob("bench/goldens/BENCH_*.json"))
    names = [b[len("bench_"):] for b in benches]
    for n in names:
        if n not in goldens:
            errors.append(f"bench/goldens/BENCH_{n}.json missing "
                          "(scripts/bench.sh --quick "
                          "--update-goldens --only " + n + ")")
    for g in goldens:
        if g not in names:
            errors.append(f"bench/goldens/BENCH_{g}.json is stale: "
                          f"no bench_{g}.cc")

    if errors:
        for e in errors:
            print(f"check_docs: {e}")
        print(f"check_docs: {len(errors)} problem(s)")
        return 1
    print(f"check_docs: {len(modules)} src modules, {len(benches)} "
          "bench binaries, serving docs, units headers and goldens "
          "all in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
