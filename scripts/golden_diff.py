#!/usr/bin/env python3
"""Tolerance-aware diff of BENCH_*.json artifacts against goldens.

Every bench binary emits BENCH_<name>.json through bench::Reporter
(src/common/reporter.h); bench/goldens/ holds the checked-in golden
captured from the quick tier.  This script compares a results
directory against the goldens and fails on drift:

  scripts/golden_diff.py --results bench-results [name ...]

Rules, per golden file:
  * schema / bench / quick / seed fields must match (a quick golden
    can only gate a --quick run: different sweeps, different numbers);
  * the metric *sets* must match by name: a metric missing from the
    results or present only in the results is an error (new metrics
    require refreshing the golden: scripts/bench.sh --update-goldens);
  * a metric's unit must match;
  * metrics with "check": false (machine-dependent timings) are
    compared for presence only;
  * checked metrics pass when
        |value - golden| <= max(rel_tol * |golden|, abs_tol, 1e-12)
    where rel_tol/abs_tol come from the *golden* file ("tol"/"atol"),
    i.e. the checked-in contract, chosen per metric by the bench
    (tight for analytic models, looser for discrete selections).

Exit status: 0 all pass, 1 drift/shape mismatch, 2 usage/IO error.
"""

import argparse
import json
import os
import sys

REL_FLOOR = 1e-12


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def fmt(v):
    return f"{v:.10g}"


def diff_metric(golden, result):
    """Returns an error string, or None when the metric passes."""
    name = golden["name"]
    if golden.get("unit") != result.get("unit"):
        return (f"{name}: unit changed "
                f"{golden.get('unit')!r} -> {result.get('unit')!r}")
    if not golden.get("check", True):
        return None
    gv, rv = golden["value"], result["value"]
    if gv is None or rv is None:  # JSON null: NaN/inf leaked out
        # A null golden means the metric was already broken at
        # capture time; never let it gate as green.
        return f"{name}: non-finite value (golden {gv}, result {rv})"
    bound = max(golden.get("tol", 0.0) * abs(gv),
                golden.get("atol", 0.0), REL_FLOOR)
    if abs(rv - gv) <= bound:
        return None
    return (f"{name}: {fmt(gv)} -> {fmt(rv)} "
            f"(|diff| {fmt(abs(rv - gv))} > bound {fmt(bound)})")


def diff_bench(golden_path, result_path):
    """Returns a list of error strings for one bench artifact."""
    golden = load(golden_path)
    result = load(result_path)
    errors = []
    for field in ("schema", "bench", "quick", "seed"):
        if golden.get(field) != result.get(field):
            errors.append(
                f"{field} mismatch: golden {golden.get(field)!r}, "
                f"result {result.get(field)!r}" +
                (" (golden is the --quick tier; run the bench with "
                 "--quick)" if field == "quick" else ""))
    if errors:
        return errors

    gm = {m["name"]: m for m in golden["metrics"]}
    rm = {m["name"]: m for m in result["metrics"]}
    for name in gm:
        if name not in rm:
            errors.append(f"{name}: missing from results")
    for name in rm:
        if name not in gm:
            errors.append(f"{name}: not in golden (refresh with "
                          "scripts/bench.sh --update-goldens)")
    for name, g in gm.items():
        if name in rm:
            err = diff_metric(g, rm[name])
            if err:
                errors.append(err)
    return errors


def main():
    ap = argparse.ArgumentParser(
        description="Diff BENCH_*.json results against goldens.")
    ap.add_argument("--goldens", default="bench/goldens",
                    help="golden directory (default bench/goldens)")
    ap.add_argument("--results", required=True,
                    help="directory holding the fresh BENCH_*.json")
    ap.add_argument("names", nargs="*",
                    help="bench names (default: every golden)")
    args = ap.parse_args()

    if args.names:
        names = args.names
    else:
        names = sorted(
            f[len("BENCH_"):-len(".json")]
            for f in os.listdir(args.goldens)
            if f.startswith("BENCH_") and f.endswith(".json"))
    if not names:
        print(f"golden_diff: no goldens found in {args.goldens}",
              file=sys.stderr)
        return 2

    failed = 0
    io_errors = 0
    for name in names:
        fname = f"BENCH_{name}.json"
        golden_path = os.path.join(args.goldens, fname)
        result_path = os.path.join(args.results, fname)
        for path in (golden_path, result_path):
            if not os.path.exists(path):
                print(f"FAIL  {name}: {path} does not exist")
                io_errors += 1
                break
        else:
            try:
                errors = diff_bench(golden_path, result_path)
            except (OSError, ValueError, KeyError, TypeError) as ex:
                # Truncated/malformed artifact (killed bench, bad
                # hand edit): an IO-class problem, not metric drift.
                print(f"FAIL  {name}: unreadable artifact "
                      f"({ex.__class__.__name__}: {ex})")
                io_errors += 1
                continue
            if errors:
                failed += 1
                print(f"FAIL  {name}")
                for e in errors:
                    print(f"      {e}")
            else:
                print(f"ok    {name}")

    total = len(names)
    if failed or io_errors:
        print(f"\ngolden_diff: {failed} drifted, {io_errors} "
              f"missing/unreadable of {total} bench artifacts")
        return 2 if io_errors else 1
    print(f"\ngolden_diff: {total} bench artifacts match goldens")
    return 0


if __name__ == "__main__":
    sys.exit(main())
