#!/usr/bin/env python3
"""Cross-PR performance trajectory for the BENCH_*.json timings.

Golden gating (scripts/golden_diff.py) covers the deterministic
metrics; wall-clock timings are `check: false` and would otherwise
rot unobserved.  This script closes that gap:

  scripts/trajectory_diff.py --results bench-results [--append]
                             [--file bench-results/trajectory.jsonl]
                             [--compare-baseline]

--compare-baseline additionally renders the baseline-comparison
columns (simd-vs-scalar and static-vs-dynamic speedups) straight
from the current BENCH_*.json: each bench binary times both paths in
a single run, so no second sweep is needed.

With --append (what `scripts/bench.sh --trajectory` passes), one
JSON line is appended to the trajectory file:

  {"ts": "...", "rev": "abc1234", "threads": {"kernels": 8, ...},
   "metrics": {"kernels/matmul_512x512x512_blocked": 123.4, ...}}

collecting every nocheck metric (timings, rates, speedups) of every
BENCH_*.json in the results directory, keyed "bench/metric".  Then —
append or not — the last entry is diffed against the previous one
and per-metric deltas are printed.  Exit status: 0 on success (the
diff is informational, never a gate), 2 on usage/IO errors.
"""

import argparse
import datetime
import json
import os
import re
import subprocess
import sys

PERCENTILE_RE = re.compile(r"^(.+)_p(50|95|99)(_s)?$")
PRED_MEAS_RE = re.compile(r"^(.+)_(pred|meas)_s$")
OUTCOME_KINDS = ("completed", "degraded", "shed", "timedout",
                 "failed", "retried")
OUTCOME_RE = re.compile(
    r"^(.+)_(" + "|".join(OUTCOME_KINDS) + r")$")
FLEET_RE = re.compile(r"^(.*?)fleet(\d+)_gops$")


def collect(results_dir):
    """All nocheck metrics of every artifact, keyed bench/metric.

    Request-outcome counters (*_completed, *_shed, ...) are collected
    even though they are golden-gated: the trajectory renders them as
    one row per outcome family, so a deliberate fingerprint change
    (new golden) still shows up as a delta in the log.
    """
    metrics = {}
    threads = {}
    names = sorted(
        f for f in os.listdir(results_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    for fname in names:
        with open(os.path.join(results_dir, fname), "r",
                  encoding="utf-8") as f:
            doc = json.load(f)
        bench = doc.get("bench", fname[len("BENCH_"):-len(".json")])
        if "threads" in doc:
            threads[bench] = doc["threads"]
        for m in doc.get("metrics", []):
            if (m.get("check", True)
                    and not OUTCOME_RE.match(m.get("name", ""))):
                continue  # gated elsewhere; trajectory is for timings
            if m.get("value") is None:
                continue  # non-finite leak; never poison the log
            metrics[f"{bench}/{m['name']}"] = m["value"]
    return metrics, threads


def git_rev():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_entries(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def print_diff(prev, last):
    """Per-metric deltas of the last entry vs the previous one."""
    pm, lm = prev["metrics"], last["metrics"]
    print(f"trajectory: {prev.get('rev', '?')} ({prev.get('ts', '?')})"
          f" -> {last.get('rev', '?')} ({last.get('ts', '?')})")
    width = max((len(k) for k in lm), default=0)
    regressions = 0
    for key in sorted(lm):
        if key not in pm:
            print(f"  {key:<{width}}  (new) {lm[key]:.6g}")
            continue
        old, new = pm[key], lm[key]
        if old == 0:
            delta = "n/a"
        else:
            pct = 100.0 * (new - old) / abs(old)
            delta = f"{pct:+.1f}%"
            # Purely informational: flag big slowdowns of time-like
            # metrics (seconds) so they stand out in CI logs.
            if key.endswith(("_s", "_seconds")) and pct > 25.0:
                delta += "  <-- slower"
                regressions += 1
        print(f"  {key:<{width}}  {old:.6g} -> {new:.6g}  ({delta})")
    for key in sorted(set(pm) - set(lm)):
        print(f"  {key:<{width}}  (dropped)")
    if regressions:
        print(f"trajectory: {regressions} metric(s) slowed >25% "
              "(informational, not gating)")
    print_percentiles(pm, lm)
    print_pred_meas(pm, lm)
    print_outcomes(pm, lm)
    print_fleet_scaling(pm, lm)


def print_percentiles(pm, lm):
    """Render *_p50/_p95/_p99 families side by side with deltas.

    The serving bench records tail latencies per offered-load point;
    reading p50/p95/p99 as one row per family makes tail-latency
    drift visible at a glance instead of three scattered lines.
    """
    families = {}
    for key in lm:
        m = PERCENTILE_RE.match(key)
        if m:
            families.setdefault(m.group(1), {})[m.group(2)] = key
    if not families:
        return

    def cell(fam, p):
        key = families[fam].get(p)
        if key is None:
            return "-"
        new = lm[key]
        old = pm.get(key)
        if old is None:
            return f"{new:.4g} (new)"
        if old == 0:
            return f"{new:.4g} (n/a)"
        pct = 100.0 * (new - old) / abs(old)
        return f"{new:.4g} ({pct:+.1f}%)"

    width = max(len(f) for f in families)
    print("latency percentiles (value (delta vs previous)):")
    header = f"  {'family':<{width}}"
    for p in ("50", "95", "99"):
        header += f"  {'p' + p:<20}"
    print(header)
    for fam in sorted(families):
        row = f"  {fam:<{width}}"
        for p in ("50", "95", "99"):
            row += f"  {cell(fam, p):<20}"
        print(row)


def print_pred_meas(pm, lm):
    """Render *_pred_s / *_meas_s pairs as one row per family.

    bench_tiler reports the cost model's predicted seconds next to
    the measured seconds for every kernel/stage/plan candidate; one
    row with the meas/pred ratio makes model drift (a stage got
    faster but the model didn't) readable at a glance.
    """
    families = {}
    for key in lm:
        m = PRED_MEAS_RE.match(key)
        if m:
            families.setdefault(m.group(1), {})[m.group(2)] = key
    families = {f: kinds for f, kinds in families.items()
                if "pred" in kinds and "meas" in kinds}
    if not families:
        return

    def cell(key):
        new = lm[key]
        old = pm.get(key)
        if old is None:
            return f"{new:.4g} (new)"
        if old == 0:
            return f"{new:.4g} (n/a)"
        pct = 100.0 * (new - old) / abs(old)
        return f"{new:.4g} ({pct:+.1f}%)"

    width = max(len(f) for f in families)
    print("cost model predicted vs measured "
          "(value (delta vs previous)):")
    print(f"  {'family':<{width}}  {'pred s':<20}  {'meas s':<20}"
          f"  meas/pred")
    for fam in sorted(families):
        pred_key = families[fam]["pred"]
        meas_key = families[fam]["meas"]
        pred, meas = lm[pred_key], lm[meas_key]
        ratio = f"{meas / pred:.2f}x" if pred else "n/a"
        print(f"  {fam:<{width}}  {cell(pred_key):<20}"
              f"  {cell(meas_key):<20}  {ratio}")


def print_outcomes(pm, lm):
    """Render request-outcome count families as one row each.

    bench_serve emits *_completed/_degraded/_shed/_timedout/_failed/
    _retried counters per experiment (burst admission, fault sweep).
    One row per family ("burst", "fault", ...) makes an outcome-mix
    shift readable at a glance; counts only change when a golden is
    deliberately updated, so any delta here is worth a look.
    """
    families = {}
    for key in lm:
        m = OUTCOME_RE.match(key)
        if m:
            families.setdefault(m.group(1), {})[m.group(2)] = key
    if not families:
        return

    def cell(fam, kind):
        key = families[fam].get(kind)
        if key is None:
            return "-"
        new = lm[key]
        old = pm.get(key)
        if old is None:
            return f"{new:g} (new)"
        if old != new:
            return f"{new:g} (was {old:g})"
        return f"{new:g}"

    width = max(len(f) for f in families)
    print("request outcome counts (value (delta vs previous)):")
    header = f"  {'family':<{width}}"
    for kind in OUTCOME_KINDS:
        header += f"  {kind:<14}"
    print(header)
    for fam in sorted(families):
        row = f"  {fam:<{width}}"
        for kind in OUTCOME_KINDS:
            row += f"  {cell(fam, kind):<14}"
        print(row)


def print_fleet_scaling(pm, lm):
    """Render *fleetN_gops families as one scaling row per family.

    bench_backends reports aggregate Gop/s per EngineBackend fleet
    size (1/2/4); one row per family with the largest-vs-smallest
    ratio makes the scaling curve — and any flattening of it —
    readable at a glance.
    """
    families = {}
    for key in lm:
        m = FLEET_RE.match(key)
        if m:
            families.setdefault(m.group(1), {})[int(m.group(2))] = key
    families = {f: sizes for f, sizes in families.items()
                if len(sizes) >= 2}
    if not families:
        return

    def cell(key):
        new = lm[key]
        old = pm.get(key)
        if old is None:
            return f"{new:.4g} (new)"
        if old == 0:
            return f"{new:.4g} (n/a)"
        pct = 100.0 * (new - old) / abs(old)
        return f"{new:.4g} ({pct:+.1f}%)"

    all_sizes = sorted({n for sizes in families.values()
                        for n in sizes})
    width = max(len(f + "fleet_gops") for f in families)
    print("fleet scaling, aggregate Gop/s "
          "(value (delta vs previous)):")
    header = f"  {'family':<{width}}"
    for n in all_sizes:
        header += f"  {'x' + str(n):<20}"
    header += "  scale-up"
    print(header)
    for fam in sorted(families):
        sizes = families[fam]
        row = f"  {fam + 'fleet_gops':<{width}}"
        for n in all_sizes:
            key = sizes.get(n)
            row += f"  {cell(key) if key else '-':<20}"
        lo, hi = min(sizes), max(sizes)
        base = lm[sizes[lo]]
        ratio = (f"{lm[sizes[hi]] / base:.2f}x ({hi}v{lo})"
                 if base else "n/a")
        print(row + f"  {ratio}")


def print_baseline_compare(metrics):
    """Group the *_speedup metrics into baseline-comparison columns.

    Every bench binary that has a faster path also times the
    baseline in the same run and reports the ratio as a nocheck
    `*_speedup` metric, so the whole table comes from one sweep.
    """
    groups = {
        "simd vs scalar": [],
        "static vs dynamic sharding": [],
        "autotile vs fixed knobs": [],
        "threading / other": [],
    }
    for key in sorted(metrics):
        if not key.endswith("_speedup"):
            continue
        if "simd" in key:
            groups["simd vs scalar"].append(key)
        elif "dynamic" in key:
            groups["static vs dynamic sharding"].append(key)
        elif "autotile" in key:
            groups["autotile vs fixed knobs"].append(key)
        else:
            groups["threading / other"].append(key)
    if not any(groups.values()):
        print("compare-baseline: no *_speedup metrics in the "
              "current results")
        return
    width = max(len(k) for keys in groups.values() for k in keys)
    print("baseline comparison (current results, one run each):")
    for title, keys in groups.items():
        if not keys:
            continue
        print(f"  {title}:")
        for key in keys:
            print(f"    {key:<{width}}  {metrics[key]:.2f}x")


def main():
    ap = argparse.ArgumentParser(
        description="Append/diff the bench timing trajectory.")
    ap.add_argument("--results", default="bench-results",
                    help="directory holding fresh BENCH_*.json")
    ap.add_argument("--file", default=None,
                    help="trajectory file "
                         "(default <results>/trajectory.jsonl)")
    ap.add_argument("--append", action="store_true",
                    help="append a new entry before diffing")
    ap.add_argument("--compare-baseline", action="store_true",
                    help="print simd-vs-scalar and static-vs-dynamic "
                         "speedup columns from the current results")
    args = ap.parse_args()

    path = args.file or os.path.join(args.results,
                                     "trajectory.jsonl")
    if args.compare_baseline:
        if not os.path.isdir(args.results):
            print(f"trajectory_diff: no results dir {args.results}",
                  file=sys.stderr)
            return 2
        metrics, _ = collect(args.results)
        print_baseline_compare(metrics)
        if not args.append:
            return 0
    if args.append:
        if not os.path.isdir(args.results):
            print(f"trajectory_diff: no results dir {args.results}",
                  file=sys.stderr)
            return 2
        metrics, threads = collect(args.results)
        if not metrics:
            print("trajectory_diff: no nocheck metrics found in "
                  f"{args.results}", file=sys.stderr)
            return 2
        entry = {
            "ts": datetime.datetime.now(datetime.timezone.utc)
                      .strftime("%Y-%m-%dT%H:%M:%SZ"),
            "rev": git_rev(),
            "threads": threads,
            "metrics": metrics,
        }
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "a", encoding="utf-8") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"trajectory_diff: appended {len(metrics)} metrics "
              f"to {path}")

    entries = load_entries(path)
    if not entries:
        print(f"trajectory_diff: {path} is empty; nothing to diff")
        return 0
    if len(entries) == 1:
        print("trajectory_diff: first entry recorded; deltas start "
              "with the next run")
        return 0
    print_diff(entries[-2], entries[-1])
    return 0


if __name__ == "__main__":
    sys.exit(main())
