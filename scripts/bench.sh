#!/usr/bin/env bash
# Build the kernel benchmark in a Release configuration
# (-O3 -march=native) and run it, writing BENCH_kernels.json to the
# repository root. Extra arguments are forwarded to bench_kernels
# (e.g. scripts/bench.sh --quick).
#
# Knobs:
#   BUILD_DIR   benchmark build tree   (default build-release)
#   JOBS        parallel build jobs    (default nproc)
#   MARCH       arch flag              (default -march=native; set
#                                       empty for a portable binary)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-release}
JOBS=${JOBS:-$(nproc)}
MARCH=${MARCH--march=native}

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-O3 ${MARCH}" \
    -DSOFA_BUILD_TESTS=OFF \
    -DSOFA_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" --target bench_kernels -j "$JOBS"

"$BUILD_DIR/bench/bench_kernels" --json BENCH_kernels.json "$@"
