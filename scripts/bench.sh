#!/usr/bin/env bash
# Build every bench binary in a Release configuration, run them, and
# collect the machine-readable BENCH_*.json artifacts into
# bench-results/. Optionally gate the artifacts against the
# checked-in goldens, or refresh the goldens intentionally.
#
# Usage:
#   scripts/bench.sh                  # full sweeps, artifacts only
#   scripts/bench.sh --quick          # reduced sweeps (the CI tier)
#   scripts/bench.sh --quick --golden-diff
#                                     # + fail on drift vs bench/goldens
#   scripts/bench.sh --quick --update-goldens
#                                     # refresh bench/goldens (commit the
#                                     # diff with a justification)
#   scripts/bench.sh --only kernels --only fig19_throughput ...
#                                     # restrict to named benches
#   scripts/bench.sh --trajectory     # append timing metrics to
#                                     # bench-results/trajectory.jsonl
#                                     # and print deltas vs last run
#   scripts/bench.sh --compare-baseline
#                                     # print the simd-vs-scalar and
#                                     # static-vs-dynamic speedup
#                                     # columns from the BENCH_*.json
#                                     # just produced (each binary
#                                     # measures both paths in one
#                                     # run, so no second sweep)
#   scripts/bench.sh --threads 4      # pin the thread pool (passed
#                                     # through to every binary)
#
# Goldens are captured from the --quick tier with a portable build
# (MARCH= scripts/bench.sh --quick --update-goldens) so CI machines
# reproduce them; per-metric tolerances absorb FP-contraction noise.
#
# Knobs:
#   BUILD_DIR   benchmark build tree   (default build-release)
#   OUT_DIR     artifact directory     (default bench-results)
#   JOBS        parallel build jobs    (default nproc)
#   MARCH       arch flag              (default -march=native; set
#                                       empty for a portable binary)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-release}
OUT_DIR=${OUT_DIR:-bench-results}
JOBS=${JOBS:-$(nproc)}
MARCH=${MARCH--march=native}

QUICK=""
GOLDEN_DIFF=0
UPDATE_GOLDENS=0
TRAJECTORY=0
COMPARE_BASELINE=0
THREADS=()
ONLY=()
while [ $# -gt 0 ]; do
    case "$1" in
    --quick) QUICK="--quick" ;;
    --golden-diff) GOLDEN_DIFF=1 ;;
    --update-goldens) UPDATE_GOLDENS=1 ;;
    --trajectory) TRAJECTORY=1 ;;
    --compare-baseline) COMPARE_BASELINE=1 ;;
    --threads)
        [ $# -ge 2 ] || { echo "--threads requires a count" >&2; exit 2; }
        THREADS=(--threads "$2"); shift ;;
    --only)
        [ $# -ge 2 ] || { echo "--only requires a bench name" >&2; exit 2; }
        ONLY+=("$2"); shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-O3 ${MARCH}" \
    -DSOFA_BUILD_TESTS=OFF \
    -DSOFA_BUILD_EXAMPLES=OFF
if [ ${#ONLY[@]} -gt 0 ]; then
    # Build just the requested binaries (e.g. CI's --only kernels).
    TARGETS=()
    for name in "${ONLY[@]}"; do
        TARGETS+=(--target "bench_$name")
    done
    cmake --build "$BUILD_DIR" -j "$JOBS" "${TARGETS[@]}"
    BENCHES=("${ONLY[@]}")
else
    cmake --build "$BUILD_DIR" -j "$JOBS"
    BENCHES=()
    for bin in "$BUILD_DIR"/bench/bench_*; do
        [ -x "$bin" ] && BENCHES+=("$(basename "$bin" | sed 's/^bench_//')")
    done
fi

mkdir -p "$OUT_DIR"
for name in "${BENCHES[@]}"; do
    bin="$BUILD_DIR/bench/bench_$name"
    [ -x "$bin" ] || { echo "no such bench binary: $bin" >&2; exit 2; }
    echo "=== bench_$name $QUICK ==="
    # shellcheck disable=SC2086
    "$bin" $QUICK ${THREADS[@]+"${THREADS[@]}"} \
        --json-out "$OUT_DIR/BENCH_$name.json"
    echo
done

# First --trajectory run on a fresh checkout/runner: seed the log
# from the committed baseline so the very first append already prints
# deltas vs a known-good revision instead of an empty diff.
if [ "$TRAJECTORY" = 1 ] && [ ! -f "$OUT_DIR/trajectory.jsonl" ] \
    && [ -f bench/trajectory/baseline.jsonl ]; then
    cp bench/trajectory/baseline.jsonl "$OUT_DIR/trajectory.jsonl"
    echo "seeded $OUT_DIR/trajectory.jsonl from bench/trajectory/baseline.jsonl"
fi

TRAJ_ARGS=()
[ "$TRAJECTORY" = 1 ] && TRAJ_ARGS+=(--append)
[ "$COMPARE_BASELINE" = 1 ] && TRAJ_ARGS+=(--compare-baseline)
if [ ${#TRAJ_ARGS[@]} -gt 0 ]; then
    python3 scripts/trajectory_diff.py --results "$OUT_DIR" \
        "${TRAJ_ARGS[@]}"
fi

if [ "$UPDATE_GOLDENS" = 1 ]; then
    mkdir -p bench/goldens
    for name in "${BENCHES[@]}"; do
        cp "$OUT_DIR/BENCH_$name.json" bench/goldens/
    done
    echo "refreshed bench/goldens/ from $OUT_DIR (quick=${QUICK:-no})"
fi

if [ "$GOLDEN_DIFF" = 1 ]; then
    python3 scripts/golden_diff.py --results "$OUT_DIR" "${BENCHES[@]}"
fi
