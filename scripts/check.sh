#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (library, tests,
# bench + example binaries), run the full test suite. This is the exact
# command sequence CI and the ROADMAP use.
#
# Usage:
#   scripts/check.sh                 # default build + full ctest
#   SOFA_SANITIZE=ON scripts/check.sh   # ASan/UBSan build
#   SOFA_WERROR=ON scripts/check.sh     # warnings as errors
#   SOFA_BUILD_TYPE=Release SOFA_CXX_FLAGS="-O3 -march=native" \
#       scripts/check.sh             # optimized build (CI release job)
#   CTEST_ARGS="-L tier1" scripts/check.sh  # fast suite only
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

# Every cache variable a previous run (including scripts/bench.sh,
# which flips tests OFF and sets Release/-O3 in its tree) could have
# left behind is re-asserted, so a shared build tree can never make
# check.sh silently test the wrong configuration — or zero tests.
cmake -B "$BUILD_DIR" -S . \
    -DSOFA_BUILD_TESTS=ON \
    -DSOFA_BUILD_BENCH=ON \
    -DSOFA_BUILD_EXAMPLES=ON \
    -DSOFA_SANITIZE="${SOFA_SANITIZE:-OFF}" \
    -DSOFA_WERROR="${SOFA_WERROR:-OFF}" \
    -DCMAKE_BUILD_TYPE="${SOFA_BUILD_TYPE:-RelWithDebInfo}" \
    -DCMAKE_CXX_FLAGS="${SOFA_CXX_FLAGS:-}"
cmake --build "$BUILD_DIR" -j "$JOBS"
cd "$BUILD_DIR"
# shellcheck disable=SC2086
ctest --output-on-failure -j "$JOBS" ${CTEST_ARGS:-}
