#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (library, tests,
# bench + example binaries), run the full test suite. This is the exact
# command sequence CI and the ROADMAP use.
#
# Usage:
#   scripts/check.sh                 # default build + full ctest
#   SOFA_SANITIZE=ON scripts/check.sh   # ASan/UBSan build
#   SOFA_WERROR=ON scripts/check.sh     # warnings as errors
#   CTEST_ARGS="-L tier1" scripts/check.sh  # fast suite only
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . \
    -DSOFA_SANITIZE="${SOFA_SANITIZE:-OFF}" \
    -DSOFA_WERROR="${SOFA_WERROR:-OFF}"
cmake --build "$BUILD_DIR" -j "$JOBS"
cd "$BUILD_DIR"
# shellcheck disable=SC2086
ctest --output-on-failure -j "$JOBS" ${CTEST_ARGS:-}
