#!/usr/bin/env python3
"""CTest smoke test for the golden-number bench gating.

Runs one quick bench binary, golden-diffs its artifact against
bench/goldens/ (must pass), then deliberately perturbs a checked
metric beyond its tolerance and verifies the diff fails — proving the
gate actually gates.

  golden_smoke_test.py --bench build/bench/bench_fig05_fa2 \
      --name fig05_fa2 --goldens bench/goldens --workdir out
"""

import argparse
import json
import os
import subprocess
import sys


def run_diff(script, goldens, results, name):
    proc = subprocess.run(
        [sys.executable, script, "--goldens", goldens,
         "--results", results, name],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True,
                    help="path to the bench binary")
    ap.add_argument("--name", required=True,
                    help="bench name (BENCH_<name>.json)")
    ap.add_argument("--goldens", required=True)
    ap.add_argument("--workdir", required=True)
    args = ap.parse_args()

    os.makedirs(args.workdir, exist_ok=True)
    artifact = os.path.join(args.workdir, f"BENCH_{args.name}.json")
    subprocess.run([args.bench, "--quick", "--json-out", artifact],
                   check=True, stdout=subprocess.DEVNULL)

    diff_script = os.path.join(os.path.dirname(
        os.path.abspath(__file__)), "golden_diff.py")

    rc, out = run_diff(diff_script, args.goldens, args.workdir,
                       args.name)
    if rc != 0:
        print(out)
        print("FAIL: fresh quick run does not match the golden")
        return 1
    print(f"ok: fresh {args.name} run matches the golden")

    # Perturb the first checked, finite metric well beyond any
    # tolerance.
    with open(artifact, "r", encoding="utf-8") as f:
        doc = json.load(f)
    target = next((m for m in doc["metrics"]
                   if m.get("check", True) and
                   isinstance(m["value"], (int, float))), None)
    if target is None:
        print("FAIL: artifact has no checked finite metric to "
              "perturb")
        return 1
    perturbed = target["value"] * 1.5 + 1.0
    if perturbed == target["value"]:  # fixed point (value == -2.0)
        perturbed = target["value"] + 1.0
    target["value"] = perturbed
    with open(artifact, "w", encoding="utf-8") as f:
        json.dump(doc, f)

    rc, out = run_diff(diff_script, args.goldens, args.workdir,
                       args.name)
    if rc == 0:
        print(out)
        print(f"FAIL: perturbed metric {target['name']!r} passed "
              "the golden diff — the gate is not gating")
        return 1
    print(f"ok: perturbed metric {target['name']!r} fails the "
          "golden diff as intended")
    return 0


if __name__ == "__main__":
    sys.exit(main())
