#include <gtest/gtest.h>

#include "attention/flash.h"
#include "attention/reference.h"
#include "model/workload.h"
#include "testutil.h"

namespace sofa {
namespace {

using testutil::makeWorkload;

TEST(Flash2, NumericallyMatchesReference)
{
    auto w = makeWorkload();
    auto dense = referenceAttention(w.q, w.k, w.v);
    auto fa2 = flashAttention2(w.q, w.k, w.v, {16});
    EXPECT_TRUE(testutil::MatrixNear(fa2.output, dense.output, 1e-4));
}

TEST(Flash1, NumericallyMatchesReference)
{
    auto w = makeWorkload();
    auto dense = referenceAttention(w.q, w.k, w.v);
    auto fa1 = flashAttention1(w.q, w.k, w.v, {16});
    EXPECT_TRUE(testutil::MatrixNear(fa1.output, dense.output, 1e-4));
}

TEST(Flash2, TileSizeDoesNotChangeResult)
{
    auto w = makeWorkload(128, 8);
    auto a = flashAttention2(w.q, w.k, w.v, {4});
    auto b = flashAttention2(w.q, w.k, w.v, {64});
    EXPECT_TRUE(testutil::MatrixNear(a.output, b.output, 1e-5));
}

TEST(Flash2, MoreExpsThanVanilla)
{
    // Fig. 5(b): FA-2 pays extra exponentials vs vanilla softmax.
    auto w = makeWorkload(512, 8);
    OpCounter vanilla_ops;
    auto dense = referenceAttention(w.q, w.k, w.v);
    auto fa2 = flashAttention2(w.q, w.k, w.v, {16});
    EXPECT_GT(fa2.ops.exps(), dense.ops.exps());
}

TEST(Flash2, SmallerTilesCostMore)
{
    // Fig. 5(c): complexity grows with Tc (smaller Bc).
    auto w = makeWorkload(512, 8);
    auto fine = flashAttention2(w.q, w.k, w.v, {4});
    auto coarse = flashAttention2(w.q, w.k, w.v, {64});
    EXPECT_GT(fine.ops.normalized(), coarse.ops.normalized());
}

TEST(Flash1, CostsMoreThanFlash2)
{
    auto w = makeWorkload(512, 8);
    auto fa1 = flashAttention1(w.q, w.k, w.v, {16});
    auto fa2 = flashAttention2(w.q, w.k, w.v, {16});
    EXPECT_GT(fa1.ops.normalized(), fa2.ops.normalized());
}

TEST(AnalyticOps, Fa2MatchesMeasuredShape)
{
    // The closed-form FA-2 ops should be within ~25% of the measured
    // kernel (the analytic form assumes worst-case rescales).
    auto w = makeWorkload(512, 4);
    auto fa2 = flashAttention2(w.q, w.k, w.v, {16});
    OpCounter analytic = fa2AnalyticOps(4, 512, 16, 32);
    const double measured = fa2.ops.normalized();
    const double predicted = analytic.normalized();
    EXPECT_GT(predicted, measured * 0.8);
    EXPECT_LT(predicted, measured * 1.35);
}

TEST(AnalyticOps, VanillaMatchesReferenceExactly)
{
    auto w = makeWorkload(256, 4);
    auto dense = referenceAttention(w.q, w.k, w.v);
    OpCounter analytic = vanillaAnalyticOps(4, 256, 32);
    EXPECT_EQ(analytic.exps(), dense.ops.exps());
    EXPECT_EQ(analytic.muls(), dense.ops.muls());
    EXPECT_EQ(analytic.divs(), dense.ops.divs());
}

TEST(AnalyticOps, Fa2GapGrowsWithSeq)
{
    // Fig. 5(b): the FA-2-minus-vanilla exp gap grows with S.
    const OpCounter fa_1k = fa2AnalyticOps(1, 1024, 16, 64);
    const OpCounter va_1k = vanillaAnalyticOps(1, 1024, 64);
    const OpCounter fa_2k = fa2AnalyticOps(1, 2048, 16, 64);
    const OpCounter va_2k = vanillaAnalyticOps(1, 2048, 64);
    const double gap_1k =
        static_cast<double>(fa_1k.exps() - va_1k.exps());
    const double gap_2k =
        static_cast<double>(fa_2k.exps() - va_2k.exps());
    EXPECT_GT(gap_2k, gap_1k * 1.8);
}

/** Parameterized numerical-equivalence sweep over tile sizes. */
class FlashTileSweep : public ::testing::TestWithParam<int>
{};

TEST_P(FlashTileSweep, MatchesReference)
{
    auto w = makeWorkload(96, 6);
    auto dense = referenceAttention(w.q, w.k, w.v);
    FlashConfig cfg{GetParam()};
    auto fa2 = flashAttention2(w.q, w.k, w.v, cfg);
    EXPECT_TRUE(testutil::MatrixNear(fa2.output, dense.output, 1e-4))
        << "Bc=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TileSizes, FlashTileSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 33, 96,
                                           200));

} // namespace
} // namespace sofa
