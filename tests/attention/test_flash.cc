#include <gtest/gtest.h>

#include <cmath>

#include "attention/flash.h"
#include "attention/reference.h"
#include "common/threadpool.h"
#include "model/workload.h"
#include "testutil.h"

namespace sofa {
namespace {

using testutil::makeWorkload;

TEST(Flash2, NumericallyMatchesReference)
{
    auto w = makeWorkload();
    auto dense = referenceAttention(w.q, w.k, w.v);
    auto fa2 = flashAttention2(w.q, w.k, w.v, {16});
    EXPECT_TRUE(testutil::MatrixNear(fa2.output, dense.output, 1e-4));
}

TEST(Flash1, NumericallyMatchesReference)
{
    auto w = makeWorkload();
    auto dense = referenceAttention(w.q, w.k, w.v);
    auto fa1 = flashAttention1(w.q, w.k, w.v, {16});
    EXPECT_TRUE(testutil::MatrixNear(fa1.output, dense.output, 1e-4));
}

TEST(Flash2, TileSizeDoesNotChangeResult)
{
    auto w = makeWorkload(128, 8);
    auto a = flashAttention2(w.q, w.k, w.v, {4});
    auto b = flashAttention2(w.q, w.k, w.v, {64});
    EXPECT_TRUE(testutil::MatrixNear(a.output, b.output, 1e-5));
}

TEST(Flash2, MoreExpsThanVanilla)
{
    // Fig. 5(b): FA-2 pays extra exponentials vs vanilla softmax.
    auto w = makeWorkload(512, 8);
    OpCounter vanilla_ops;
    auto dense = referenceAttention(w.q, w.k, w.v);
    auto fa2 = flashAttention2(w.q, w.k, w.v, {16});
    EXPECT_GT(fa2.ops.exps(), dense.ops.exps());
}

TEST(Flash2, SmallerTilesCostMore)
{
    // Fig. 5(c): complexity grows with Tc (smaller Bc).
    auto w = makeWorkload(512, 8);
    auto fine = flashAttention2(w.q, w.k, w.v, {4});
    auto coarse = flashAttention2(w.q, w.k, w.v, {64});
    EXPECT_GT(fine.ops.normalized(), coarse.ops.normalized());
}

TEST(Flash1, CostsMoreThanFlash2)
{
    auto w = makeWorkload(512, 8);
    auto fa1 = flashAttention1(w.q, w.k, w.v, {16});
    auto fa2 = flashAttention2(w.q, w.k, w.v, {16});
    EXPECT_GT(fa1.ops.normalized(), fa2.ops.normalized());
}

TEST(AnalyticOps, Fa2MatchesMeasuredShape)
{
    // The closed-form FA-2 ops should be within ~25% of the measured
    // kernel (the analytic form assumes worst-case rescales).
    auto w = makeWorkload(512, 4);
    auto fa2 = flashAttention2(w.q, w.k, w.v, {16});
    OpCounter analytic = fa2AnalyticOps(4, 512, 16, 32);
    const double measured = fa2.ops.normalized();
    const double predicted = analytic.normalized();
    EXPECT_GT(predicted, measured * 0.8);
    EXPECT_LT(predicted, measured * 1.35);
}

TEST(AnalyticOps, VanillaMatchesReferenceExactly)
{
    auto w = makeWorkload(256, 4);
    auto dense = referenceAttention(w.q, w.k, w.v);
    OpCounter analytic = vanillaAnalyticOps(4, 256, 32);
    EXPECT_EQ(analytic.exps(), dense.ops.exps());
    EXPECT_EQ(analytic.muls(), dense.ops.muls());
    EXPECT_EQ(analytic.divs(), dense.ops.divs());
}

TEST(AnalyticOps, Fa2GapGrowsWithSeq)
{
    // Fig. 5(b): the FA-2-minus-vanilla exp gap grows with S.
    const OpCounter fa_1k = fa2AnalyticOps(1, 1024, 16, 64);
    const OpCounter va_1k = vanillaAnalyticOps(1, 1024, 64);
    const OpCounter fa_2k = fa2AnalyticOps(1, 2048, 16, 64);
    const OpCounter va_2k = vanillaAnalyticOps(1, 2048, 64);
    const double gap_1k =
        static_cast<double>(fa_1k.exps() - va_1k.exps());
    const double gap_2k =
        static_cast<double>(fa_2k.exps() - va_2k.exps());
    EXPECT_GT(gap_2k, gap_1k * 1.8);
}

TEST(Flash, EmptyKeySequenceYieldsZerosNotNaN)
{
    // Regression: with S == 0 the softmax denominator l stays 0 and
    // the final 1/l normalization used to emit inf/NaN. An empty key
    // set now produces a zero output row.
    MatF q(4, 8);
    Rng rng = testutil::makeRng(21);
    for (auto &x : q.data())
        x = static_cast<float>(rng.gaussian());
    const MatF k(0, 8);
    const MatF v(0, 8);
    for (const bool fa2 : {false, true}) {
        auto res = fa2 ? flashAttention2(q, k, v, {16})
                       : flashAttention1(q, k, v, {16});
        ASSERT_EQ(res.output.rows(), 4u);
        ASSERT_EQ(res.output.cols(), 8u);
        for (const float x : res.output.data()) {
            EXPECT_TRUE(std::isfinite(x));
            EXPECT_FLOAT_EQ(x, 0.0f);
        }
    }
}

TEST(Flash, ZeroHeadDimKeepsOpCountsSane)
{
    // Regression: bc * (d - 1) used to wrap in size_t for d == 0,
    // feeding a garbage count into the op tally.
    const MatF q(2, 0);
    const MatF k(3, 0);
    const MatF v(3, 0);
    auto res = flashAttention2(q, k, v, {2});
    EXPECT_GE(res.ops.adds(), 0);
    EXPECT_LT(res.ops.adds(), 1000);
    EXPECT_GE(res.ops.muls(), 0);
}

TEST(Flash, ZeroQueriesStillWork)
{
    const MatF q(0, 8);
    auto w = makeWorkload(16, 1, 8, 8);
    auto res = flashAttention2(q, w.k, w.v, {4});
    EXPECT_EQ(res.output.rows(), 0u);
    EXPECT_EQ(res.output.cols(), 8u);
}

TEST(Flash2, HugeBlockColsAllocatesOnlyTheRealTileWidth)
{
    // The per-shard scratch is sized min(blockCols, S); a "single
    // tile" config with a huge Bc must not attempt a gigabyte
    // allocation.
    auto w = makeWorkload(64, 4);
    auto whole = flashAttention2(w.q, w.k, w.v, {1 << 30});
    auto tiled = flashAttention2(w.q, w.k, w.v, {16});
    EXPECT_TRUE(testutil::MatrixNear(whole.output, tiled.output, 1e-5));
}

TEST(Flash2, ThreadedMatchesForcedSerialBitExactly)
{
    // Row sharding must not change per-row arithmetic or op totals.
    // 256 rows at this size clears the grain threshold, so the
    // parallel path engages whenever >1 thread is available.
    auto w = makeWorkload(256, 256);
    auto threaded = flashAttention2(w.q, w.k, w.v, {16});
    ThreadPool::ScopedSerial guard;
    auto serial = flashAttention2(w.q, w.k, w.v, {16});
    EXPECT_EQ(threaded.output, serial.output);
    EXPECT_EQ(threaded.ops.total(), serial.ops.total());
    EXPECT_EQ(threaded.ops.exps(), serial.ops.exps());
    EXPECT_EQ(threaded.ops.muls(), serial.ops.muls());
}

/** Parameterized numerical-equivalence sweep over tile sizes. */
class FlashTileSweep : public ::testing::TestWithParam<int>
{};

TEST_P(FlashTileSweep, MatchesReference)
{
    auto w = makeWorkload(96, 6);
    auto dense = referenceAttention(w.q, w.k, w.v);
    FlashConfig cfg{GetParam()};
    auto fa2 = flashAttention2(w.q, w.k, w.v, cfg);
    EXPECT_TRUE(testutil::MatrixNear(fa2.output, dense.output, 1e-4))
        << "Bc=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TileSizes, FlashTileSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 33, 96,
                                           200));

} // namespace
} // namespace sofa
