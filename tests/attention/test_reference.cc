#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "attention/reference.h"
#include "common/threadpool.h"
#include "model/workload.h"
#include "testutil.h"
#include "sparsity/topk.h"

namespace sofa {
namespace {

AttentionWorkload
tinyWorkload(int seq = 64, int queries = 8)
{
    return testutil::makeWorkload(seq, queries, /*headDim=*/16,
                                  /*tokenDim=*/24);
}

TEST(SoftmaxRows, RowsSumToOne)
{
    auto w = tinyWorkload();
    MatF p = softmaxRows(w.scores);
    for (std::size_t r = 0; r < p.rows(); ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < p.cols(); ++c)
            sum += p(r, c);
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(SoftmaxRows, InvariantToRowShift)
{
    MatF a(1, 4), b(1, 4);
    for (int c = 0; c < 4; ++c) {
        a(0, c) = static_cast<float>(c);
        b(0, c) = static_cast<float>(c) + 100.0f;
    }
    MatF pa = softmaxRows(a), pb = softmaxRows(b);
    for (int c = 0; c < 4; ++c)
        EXPECT_NEAR(pa(0, c), pb(0, c), 1e-6);
}

TEST(SoftmaxRows, OpCountMatchesClosedForm)
{
    MatF scores(3, 100);
    OpCounter ops;
    softmaxRows(scores, &ops);
    // Per row: S-1 cmps, S+ (S-1) adds, S exps, 1 div, S muls.
    EXPECT_EQ(ops.cmps(), 3 * 99);
    EXPECT_EQ(ops.exps(), 3 * 100);
    EXPECT_EQ(ops.divs(), 3);
    EXPECT_EQ(ops.muls(), 3 * 100);
}

TEST(SoftmaxRows, EmptyScoreMatrixIsANoop)
{
    // Zero-width rows have no max; softmax must not read past the
    // row and simply returns the empty shape.
    const MatF zr(4, 0);
    const MatF p = softmaxRows(zr);
    EXPECT_EQ(p.rows(), 4u);
    EXPECT_EQ(p.cols(), 0u);
    EXPECT_EQ(softmaxRows(MatF{}).size(), 0u);
}

TEST(SoftmaxRows, ThreadedMatchesForcedSerialBitExactly)
{
    MatF scores(512, 256);
    Rng rng = testutil::makeRng(31);
    for (auto &x : scores.data())
        x = static_cast<float>(rng.gaussian());
    OpCounter threaded_ops;
    const MatF threaded = softmaxRows(scores, &threaded_ops);
    ThreadPool::ScopedSerial guard;
    OpCounter serial_ops;
    const MatF serial = softmaxRows(scores, &serial_ops);
    EXPECT_EQ(threaded, serial);
    EXPECT_EQ(threaded_ops.total(), serial_ops.total());
}

TEST(ReferenceAttention, OutputShapeAndFiniteness)
{
    auto w = tinyWorkload();
    auto res = referenceAttention(w.q, w.k, w.v);
    EXPECT_EQ(res.output.rows(), w.q.rows());
    EXPECT_EQ(res.output.cols(), w.q.cols());
    for (float v : res.output.data())
        EXPECT_TRUE(std::isfinite(v));
}

TEST(ReferenceAttention, UniformScoresAverageValues)
{
    // With Q = 0 all scores are equal, so O = column mean of V.
    MatF q(2, 4, 0.0f);
    MatF k(8, 4);
    MatF v(8, 4);
    Rng rng(3);
    for (auto &x : k.data())
        x = static_cast<float>(rng.gaussian());
    for (auto &x : v.data())
        x = static_cast<float>(rng.gaussian());
    auto res = referenceAttention(q, k, v);
    for (std::size_t c = 0; c < 4; ++c) {
        double mean_v = 0.0;
        for (std::size_t r = 0; r < 8; ++r)
            mean_v += v(r, c);
        mean_v /= 8.0;
        EXPECT_NEAR(res.output(0, c), mean_v, 1e-5);
        EXPECT_NEAR(res.output(1, c), mean_v, 1e-5);
    }
}

TEST(ReferenceAttention, ExtremeScorePicksOneValue)
{
    MatF q(1, 2);
    q(0, 0) = 50.0f;
    MatF k(3, 2, 0.0f);
    k(1, 0) = 1.0f; // key 1 aligns with q
    MatF v(3, 2);
    v(0, 0) = 1.0f;
    v(1, 0) = 2.0f;
    v(2, 0) = 3.0f;
    auto res = referenceAttention(q, k, v);
    EXPECT_NEAR(res.output(0, 0), 2.0f, 1e-4);
}

TEST(ReferenceAttention, ProbsKeptOnRequest)
{
    auto w = tinyWorkload(16, 2);
    auto without = referenceAttention(w.q, w.k, w.v, false);
    auto with = referenceAttention(w.q, w.k, w.v, true);
    EXPECT_TRUE(without.probs.empty());
    EXPECT_EQ(with.probs.rows(), 2u);
    EXPECT_EQ(with.probs.cols(), 16u);
}

TEST(MaskedAttention, FullMaskEqualsDense)
{
    auto w = tinyWorkload(32, 4);
    SelectionList all(4);
    for (auto &sel : all) {
        sel.resize(32);
        std::iota(sel.begin(), sel.end(), 0);
    }
    auto masked = maskedReferenceAttention(w.q, w.k, w.v, all);
    auto dense = referenceAttention(w.q, w.k, w.v);
    EXPECT_LT(relativeError(masked.output, dense.output), 1e-5);
}

TEST(MaskedAttention, SingleKeyReturnsItsValue)
{
    auto w = tinyWorkload(16, 2);
    SelectionList sel = {{5}, {9}};
    auto res = maskedReferenceAttention(w.q, w.k, w.v, sel);
    for (std::size_t c = 0; c < w.v.cols(); ++c) {
        EXPECT_NEAR(res.output(0, c), w.v(5, c), 1e-5);
        EXPECT_NEAR(res.output(1, c), w.v(9, c), 1e-5);
    }
}

TEST(MaskedAttention, EmptySelectionYieldsZeros)
{
    auto w = tinyWorkload(16, 1);
    SelectionList sel = {{}};
    auto res = maskedReferenceAttention(w.q, w.k, w.v, sel);
    for (float v : res.output.data())
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(MaskedAttention, OpsScaleWithSelectionSize)
{
    auto w = tinyWorkload(64, 4);
    SelectionList small(4, Selection{1, 2});
    SelectionList large(4);
    for (auto &s : large) {
        s.resize(32);
        std::iota(s.begin(), s.end(), 0);
    }
    auto rs = maskedReferenceAttention(w.q, w.k, w.v, small);
    auto rl = maskedReferenceAttention(w.q, w.k, w.v, large);
    EXPECT_GT(rl.ops.total(), rs.ops.total() * 8);
}

} // namespace
} // namespace sofa
