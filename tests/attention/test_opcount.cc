#include <gtest/gtest.h>

#include "attention/opcount.h"

namespace sofa {
namespace {

TEST(OpCounter, StartsAtZero)
{
    OpCounter c;
    EXPECT_EQ(c.total(), 0);
    EXPECT_DOUBLE_EQ(c.normalized(), 0.0);
}

TEST(OpCounter, TallyAndTotal)
{
    OpCounter c;
    c.addN(10);
    c.mulN(5);
    c.expN(2);
    c.cmpN(3);
    c.shiftN(4);
    c.divN(1);
    EXPECT_EQ(c.adds(), 10);
    EXPECT_EQ(c.muls(), 5);
    EXPECT_EQ(c.exps(), 2);
    EXPECT_EQ(c.total(), 25);
}

TEST(OpCounter, NormalizedUsesCosts)
{
    OpCounter c;
    c.addN(2);
    c.mulN(1);
    OpCosts costs;
    costs.add = 1.0;
    costs.mul = 3.0;
    EXPECT_DOUBLE_EQ(c.normalized(costs), 5.0);
}

TEST(OpCounter, ExpDominatesAdds)
{
    // The arithmetic complexity model makes one exp much costlier
    // than one add — the core of the Fig. 5 argument.
    OpCounter exp_heavy, add_heavy;
    exp_heavy.expN(1);
    add_heavy.addN(10);
    EXPECT_GT(exp_heavy.normalized(), add_heavy.normalized());
}

TEST(OpCounter, PlusEqualsMerges)
{
    OpCounter a, b;
    a.addN(1);
    a.expN(2);
    b.addN(3);
    b.mulN(4);
    a += b;
    EXPECT_EQ(a.adds(), 4);
    EXPECT_EQ(a.exps(), 2);
    EXPECT_EQ(a.muls(), 4);
}

TEST(OpCounter, ResetClears)
{
    OpCounter c;
    c.mulN(100);
    c.reset();
    EXPECT_EQ(c.total(), 0);
}

TEST(OpCounter, ToStringMentionsFields)
{
    OpCounter c;
    c.expN(7);
    auto s = c.toString();
    EXPECT_NE(s.find("exps=7"), std::string::npos);
    EXPECT_NE(s.find("normalized="), std::string::npos);
}

TEST(OpCosts, ScaledNarrowDatapathCheaper)
{
    OpCosts full;
    OpCosts narrow = OpCosts::scaled(0.25); // 4-bit vs 16-bit
    EXPECT_LT(narrow.add, full.add);
    EXPECT_LT(narrow.mul, full.mul);
    // Mul scales quadratically, add linearly.
    EXPECT_NEAR(narrow.mul / full.mul, 0.0625, 1e-9);
    EXPECT_NEAR(narrow.add / full.add, 0.25, 1e-9);
}

TEST(OpCosts, ShiftCheaperThanAdd)
{
    OpCosts c;
    EXPECT_LT(c.shift, c.add);
    EXPECT_LT(c.add, c.mul);
    EXPECT_LT(c.mul, c.exp);
}

} // namespace
} // namespace sofa
