#include <gtest/gtest.h>

#include "common/rng.h"

namespace sofa {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.uniformInt(0, 1 << 20) == b.uniformInt(0, 1 << 20);
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng r(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = r.gaussian(5.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, CategoricalRespectsWeights)
{
    Rng r(13);
    std::vector<double> w = {1.0, 3.0};
    int hits1 = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hits1 += r.categorical(w) == 1;
    EXPECT_NEAR(static_cast<double>(hits1) / n, 0.75, 0.03);
}

TEST(Rng, CategoricalZeroWeightNeverPicked)
{
    Rng r(17);
    std::vector<double> w = {0.0, 1.0, 0.0};
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(r.categorical(w), 1u);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(19);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

} // namespace
} // namespace sofa
