#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/threadpool.h"

namespace sofa {
namespace {

// These run first on purpose (gtest keeps registration order):
// setDefaultThreads only accepts changes before the process-wide
// pool exists, and later tests in this binary create it through
// parallelForRows.
TEST(ThreadPoolDefaults, SetAndClearReturnPreviousOverride)
{
    ASSERT_EQ(ThreadPool::defaultThreadsOverride(), 0);
    EXPECT_EQ(ThreadPool::setDefaultThreads(5), 0);
    EXPECT_EQ(ThreadPool::defaultThreadsOverride(), 5);
    EXPECT_EQ(ThreadPool::setDefaultThreads(3), 5);
    EXPECT_EQ(ThreadPool::setDefaultThreads(-2), -1); // rejected
    EXPECT_EQ(ThreadPool::defaultThreadsOverride(), 3);
    EXPECT_EQ(ThreadPool::setDefaultThreads(0), 3); // clear
    EXPECT_EQ(ThreadPool::defaultThreadsOverride(), 0);
}

TEST(ThreadPoolDefaults, ScopedOverridesNestAndRestore)
{
    ASSERT_EQ(ThreadPool::defaultThreadsOverride(), 0);
    {
        ThreadPool::ScopedDefaultThreads outer(7);
        EXPECT_EQ(ThreadPool::defaultThreadsOverride(), 7);
        {
            ThreadPool::ScopedDefaultThreads inner(2);
            EXPECT_EQ(ThreadPool::defaultThreadsOverride(), 2);
        }
        // The regression this locks down: the inner guard must
        // restore the *outer* override, not clear it outright.
        EXPECT_EQ(ThreadPool::defaultThreadsOverride(), 7);
    }
    EXPECT_EQ(ThreadPool::defaultThreadsOverride(), 0);
}

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 1237;
    std::vector<int> hits(n, 0);
    // Shards are disjoint, so unsynchronized writes are race-free.
    pool.parallelFor(n, 1,
                     [&](std::size_t b, std::size_t e, int) {
                         for (std::size_t i = b; i < e; ++i)
                             hits[i] += 1;
                     });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "row " << i;
}

TEST(ThreadPool, ShardsAreContiguousBalancedAndDistinctThreads)
{
    ThreadPool pool(4);
    struct Seen
    {
        std::size_t begin, end;
        int shard;
        std::thread::id tid;
    };
    std::mutex mu;
    std::vector<Seen> seen;
    pool.parallelFor(400, 1,
                     [&](std::size_t b, std::size_t e, int shard) {
                         std::lock_guard<std::mutex> lock(mu);
                         seen.push_back(
                             {b, e, shard,
                              std::this_thread::get_id()});
                     });
    ASSERT_EQ(seen.size(), 4u);
    std::sort(seen.begin(), seen.end(),
              [](const Seen &a, const Seen &b) {
                  return a.begin < b.begin;
              });
    std::size_t expect_begin = 0;
    std::set<std::thread::id> tids;
    for (const auto &s : seen) {
        EXPECT_EQ(s.begin, expect_begin);
        EXPECT_EQ(s.end - s.begin, 100u); // 400 rows over 4 shards
        expect_begin = s.end;
        tids.insert(s.tid);
    }
    EXPECT_EQ(expect_begin, 400u);
    // Shards are pinned: shard 0 on the caller, shard s on worker
    // s-1, so four shards means four distinct threads.
    EXPECT_EQ(tids.size(), 4u);
}

TEST(ThreadPool, SmallRangeRunsSerialOnCaller)
{
    ThreadPool pool(4);
    int calls = 0;
    std::thread::id tid;
    // grain 100 over 30 rows: one shard, inline on the caller.
    pool.parallelFor(30, 100,
                     [&](std::size_t b, std::size_t e, int shard) {
                         ++calls;
                         tid = std::this_thread::get_id();
                         EXPECT_EQ(b, 0u);
                         EXPECT_EQ(e, 30u);
                         EXPECT_EQ(shard, 0);
                     });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(tid, std::this_thread::get_id());
}

TEST(ThreadPool, GrainBoundsShardCount)
{
    ThreadPool pool(8);
    std::mutex mu;
    int calls = 0;
    // 100 rows with grain 30 fit at most 3 shards of >= 30 rows.
    pool.parallelFor(100, 30,
                     [&](std::size_t, std::size_t, int) {
                         std::lock_guard<std::mutex> lock(mu);
                         ++calls;
                     });
    EXPECT_LE(calls, 3);
    EXPECT_GE(calls, 1);
}

TEST(ThreadPool, ScopedSerialForcesInlineExecution)
{
    ThreadPool pool(4);
    ThreadPool::ScopedSerial guard;
    EXPECT_TRUE(ThreadPool::serialForced());
    int calls = 0;
    pool.parallelFor(1000, 1,
                     [&](std::size_t b, std::size_t e, int) {
                         ++calls;
                         EXPECT_EQ(b, 0u);
                         EXPECT_EQ(e, 1000u);
                     });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::vector<std::int64_t> outer_sum(4, 0);
    pool.parallelFor(
        4, 1, [&](std::size_t b, std::size_t e, int shard) {
            for (std::size_t i = b; i < e; ++i) {
                // A nested call must degrade to serial inline
                // execution on this participant.
                std::int64_t s = 0;
                parallelForRows(100, 1,
                                [&](std::size_t nb, std::size_t ne) {
                                    for (std::size_t j = nb; j < ne;
                                         ++j)
                                        s += static_cast<std::int64_t>(
                                            j);
                                });
                outer_sum[static_cast<std::size_t>(shard)] = s;
            }
        });
    for (const auto s : outer_sum)
        EXPECT_EQ(s, 4950);
}

TEST(ThreadPool, ReusableAcrossManyDispatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::int64_t> partial(
            static_cast<std::size_t>(pool.threads()), 0);
        pool.parallelFor(
            301, 1, [&](std::size_t b, std::size_t e, int shard) {
                std::int64_t s = 0;
                for (std::size_t i = b; i < e; ++i)
                    s += 1;
                partial[static_cast<std::size_t>(shard)] = s;
            });
        std::int64_t total = 0;
        for (const auto p : partial)
            total += p;
        ASSERT_EQ(total, 301);
    }
}

TEST(ThreadPool, WorkerShardExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    struct ShardError
    {
    };
    EXPECT_THROW(
        pool.parallelFor(400, 1,
                         [&](std::size_t b, std::size_t, int shard) {
                             if (shard != 0)
                                 throw ShardError{};
                             (void)b;
                         }),
        ShardError);
    // The pool stays usable after an exceptional dispatch.
    int calls = 0;
    std::mutex mu;
    pool.parallelFor(400, 1, [&](std::size_t, std::size_t, int) {
        std::lock_guard<std::mutex> lock(mu);
        ++calls;
    });
    EXPECT_EQ(calls, 4);
}

TEST(ThreadPool, CallerShardExceptionWinsAndDrainsWorkers)
{
    ThreadPool pool(4);
    struct CallerError
    {
    };
    std::vector<int> done(4, 0);
    EXPECT_THROW(
        pool.parallelFor(400, 1,
                         [&](std::size_t, std::size_t, int shard) {
                             if (shard == 0)
                                 throw CallerError{};
                             done[static_cast<std::size_t>(shard)] =
                                 1;
                         }),
        CallerError);
    // Worker shards completed before the exception surfaced.
    EXPECT_EQ(done[1] + done[2] + done[3], 3);
}

TEST(ThreadPool, ZeroRowsIsANoop)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, 1,
                     [&](std::size_t, std::size_t, int) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelForRows(0, 1, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(TaskQueue, RunsEverySubmittedTask)
{
    TaskQueue q(3);
    EXPECT_EQ(q.workers(), 3);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 20; ++i)
        futs.push_back(q.submit([&done] { ++done; }));
    q.wait();
    EXPECT_EQ(done.load(), 20);
    EXPECT_EQ(q.pending(), 0u);
    for (auto &f : futs)
        f.get(); // no exceptions stored
}

TEST(TaskQueue, ExceptionIsCapturedInTheFuture)
{
    TaskQueue q(2);
    struct TaskError
    {
    };
    std::future<void> bad =
        q.submit([] { throw TaskError{}; });
    std::atomic<int> ok{0};
    std::future<void> good = q.submit([&ok] { ++ok; });
    EXPECT_THROW(bad.get(), TaskError);
    good.get(); // the queue survives a throwing task
    EXPECT_EQ(ok.load(), 1);
}

TEST(TaskQueue, ConcurrencyNeverExceedsWorkers)
{
    TaskQueue q(2);
    std::atomic<int> running{0}, high{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 8; ++i)
        futs.push_back(q.submit([&] {
            const int now = ++running;
            int seen = high.load();
            while (now > seen &&
                   !high.compare_exchange_weak(seen, now)) {
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
            --running;
        }));
    q.wait();
    EXPECT_LE(high.load(), 2);
    EXPECT_GE(high.load(), 1);
}

TEST(TaskQueue, TasksMayUseParallelFor)
{
    // The serve scheduler's pattern: asynchronous tasks that each
    // run a pool-sharded computation. Concurrent top-level
    // parallelFor calls serialize per epoch and stay correct.
    ThreadPool pool(4);
    TaskQueue q(2);
    std::vector<std::vector<int>> out(4, std::vector<int>(100, 0));
    std::vector<std::future<void>> futs;
    for (int t = 0; t < 4; ++t)
        futs.push_back(q.submit([&pool, &out, t] {
            pool.parallelFor(100, 1,
                             [&out, t](std::size_t b, std::size_t e,
                                       int) {
                                 for (std::size_t i = b; i < e; ++i)
                                     out[static_cast<std::size_t>(
                                         t)][i] = t + 1;
                             });
        }));
    for (auto &f : futs)
        f.get();
    for (int t = 0; t < 4; ++t)
        for (int v : out[static_cast<std::size_t>(t)])
            ASSERT_EQ(v, t + 1);
}

TEST(TaskQueue, DestructorDrainsPendingTasks)
{
    std::atomic<int> done{0};
    {
        TaskQueue q(1);
        for (int i = 0; i < 5; ++i)
            q.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++done;
            });
    } // dtor waits for all five
    EXPECT_EQ(done.load(), 5);
}

TEST(ThreadPoolDynamic, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 1237;
    std::vector<int> hits(n, 0);
    // Chunks are disjoint, so unsynchronized writes are race-free.
    pool.parallelForDynamic(n, 10,
                            [&](std::size_t b, std::size_t e, int) {
                                for (std::size_t i = b; i < e; ++i)
                                    hits[i] += 1;
                            });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "row " << i;
}

/** The chunk grid every mode must produce for (n, grain). */
std::vector<std::array<std::size_t, 2>>
expectedChunkGrid(std::size_t n, std::size_t grain)
{
    std::vector<std::array<std::size_t, 2>> grid;
    for (std::size_t b = 0; b < n; b += grain)
        grid.push_back({b, std::min(n, b + grain)});
    return grid;
}

TEST(ThreadPoolDynamic, ChunkGridIsDeterministicAcrossModes)
{
    const std::size_t n = 103, grain = 10; // ragged final chunk
    const auto expect = expectedChunkGrid(n, grain);

    const auto collect = [&](ThreadPool &pool) {
        std::mutex mu;
        std::vector<std::array<std::size_t, 3>> seen;
        pool.parallelForDynamic(
            n, grain, [&](std::size_t b, std::size_t e, int chunk) {
                std::lock_guard<std::mutex> lock(mu);
                seen.push_back(
                    {b, e, static_cast<std::size_t>(chunk)});
            });
        std::sort(seen.begin(), seen.end(),
                  [](const auto &a, const auto &b) {
                      return a[2] < b[2];
                  });
        return seen;
    };

    ThreadPool wide(4), narrow(1);
    for (auto *pool : {&wide, &narrow}) {
        const auto seen = collect(*pool);
        ASSERT_EQ(seen.size(), expect.size());
        for (std::size_t c = 0; c < expect.size(); ++c) {
            EXPECT_EQ(seen[c][0], expect[c][0]) << "chunk " << c;
            EXPECT_EQ(seen[c][1], expect[c][1]) << "chunk " << c;
            EXPECT_EQ(seen[c][2], c);
        }
    }
}

TEST(ThreadPoolDynamic, SerialPathRunsGridAscendingOnCaller)
{
    ThreadPool pool(4);
    ThreadPool::ScopedSerial serial;
    std::vector<int> order;
    std::thread::id tid;
    pool.parallelForDynamic(95, 10,
                            [&](std::size_t b, std::size_t e,
                                int chunk) {
                                order.push_back(chunk);
                                tid = std::this_thread::get_id();
                                EXPECT_EQ(b, 10u * chunk);
                                EXPECT_EQ(e, std::min<std::size_t>(
                                                 95, b + 10));
                            });
    ASSERT_EQ(order.size(), 10u);
    for (int c = 0; c < 10; ++c)
        EXPECT_EQ(order[static_cast<std::size_t>(c)], c);
    EXPECT_EQ(tid, std::this_thread::get_id());
}

TEST(ThreadPoolDynamic, MoreThreadsThanChunks)
{
    ThreadPool pool(8);
    std::vector<int> hits(3, 0);
    pool.parallelForDynamic(3, 1,
                            [&](std::size_t b, std::size_t e, int) {
                                for (std::size_t i = b; i < e; ++i)
                                    hits[i] += 1;
                            });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPoolDynamic, NestedCallRunsInline)
{
    ThreadPool pool(4);
    std::vector<std::int64_t> outer(4, 0);
    pool.parallelFor(
        4, 1, [&](std::size_t b, std::size_t e, int shard) {
            for (std::size_t i = b; i < e; ++i) {
                std::int64_t s = 0;
                pool.parallelForDynamic(
                    100, 10,
                    [&](std::size_t nb, std::size_t ne, int) {
                        for (std::size_t j = nb; j < ne; ++j)
                            s += static_cast<std::int64_t>(j);
                    });
                outer[static_cast<std::size_t>(shard)] = s;
            }
        });
    for (const auto s : outer)
        EXPECT_EQ(s, 4950);
}

TEST(ThreadPoolDynamic, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(4);
    struct ChunkError
    {
    };
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelForDynamic(
                     400, 10,
                     [&](std::size_t, std::size_t, int chunk) {
                         if (chunk == 3)
                             throw ChunkError{};
                         ++ran;
                     }),
                 ChunkError);
    // The thrower stops claiming; the others drain the grid, so no
    // chunk runs twice and at most one (the thrower's) is lost.
    EXPECT_LE(ran.load(), 39);
    std::atomic<int> calls{0};
    pool.parallelForDynamic(400, 10,
                            [&](std::size_t, std::size_t, int) {
                                ++calls;
                            });
    EXPECT_EQ(calls.load(), 40);
}

TEST(ThreadPoolDynamic, ZeroRowsIsANoop)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelForDynamic(
        0, 1, [&](std::size_t, std::size_t, int) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolDefaultsLate, RejectedOncePoolExists)
{
    // Self-contained: force the process-wide pool into existence,
    // then confirm the override API refuses to lie about it.
    std::atomic<std::int64_t> sum{0};
    parallelForRows(1000, 1, [&](std::size_t b, std::size_t e) {
        sum += static_cast<std::int64_t>(e - b);
    });
    EXPECT_EQ(sum.load(), 1000);
    EXPECT_EQ(ThreadPool::setDefaultThreads(4), -1);
    {
        ThreadPool::ScopedDefaultThreads noop(4); // must not arm
    }
    EXPECT_EQ(ThreadPool::setDefaultThreads(2), -1);
}

TEST(GrainForRowCost, ScalesInverselyWithRowCost)
{
    // Expensive rows shard immediately; cheap rows need big shards.
    EXPECT_EQ(grainForRowCost(2.0 * 1024 * 1024 * 1024), 1u);
    const std::size_t cheap = grainForRowCost(10.0);
    const std::size_t mid = grainForRowCost(10000.0);
    EXPECT_GT(cheap, mid);
    EXPECT_GE(mid, 1u);
}

} // namespace
} // namespace sofa
