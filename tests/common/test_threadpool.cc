#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/threadpool.h"

namespace sofa {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 1237;
    std::vector<int> hits(n, 0);
    // Shards are disjoint, so unsynchronized writes are race-free.
    pool.parallelFor(n, 1,
                     [&](std::size_t b, std::size_t e, int) {
                         for (std::size_t i = b; i < e; ++i)
                             hits[i] += 1;
                     });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "row " << i;
}

TEST(ThreadPool, ShardsAreContiguousBalancedAndDistinctThreads)
{
    ThreadPool pool(4);
    struct Seen
    {
        std::size_t begin, end;
        int shard;
        std::thread::id tid;
    };
    std::mutex mu;
    std::vector<Seen> seen;
    pool.parallelFor(400, 1,
                     [&](std::size_t b, std::size_t e, int shard) {
                         std::lock_guard<std::mutex> lock(mu);
                         seen.push_back(
                             {b, e, shard,
                              std::this_thread::get_id()});
                     });
    ASSERT_EQ(seen.size(), 4u);
    std::sort(seen.begin(), seen.end(),
              [](const Seen &a, const Seen &b) {
                  return a.begin < b.begin;
              });
    std::size_t expect_begin = 0;
    std::set<std::thread::id> tids;
    for (const auto &s : seen) {
        EXPECT_EQ(s.begin, expect_begin);
        EXPECT_EQ(s.end - s.begin, 100u); // 400 rows over 4 shards
        expect_begin = s.end;
        tids.insert(s.tid);
    }
    EXPECT_EQ(expect_begin, 400u);
    // Shards are pinned: shard 0 on the caller, shard s on worker
    // s-1, so four shards means four distinct threads.
    EXPECT_EQ(tids.size(), 4u);
}

TEST(ThreadPool, SmallRangeRunsSerialOnCaller)
{
    ThreadPool pool(4);
    int calls = 0;
    std::thread::id tid;
    // grain 100 over 30 rows: one shard, inline on the caller.
    pool.parallelFor(30, 100,
                     [&](std::size_t b, std::size_t e, int shard) {
                         ++calls;
                         tid = std::this_thread::get_id();
                         EXPECT_EQ(b, 0u);
                         EXPECT_EQ(e, 30u);
                         EXPECT_EQ(shard, 0);
                     });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(tid, std::this_thread::get_id());
}

TEST(ThreadPool, GrainBoundsShardCount)
{
    ThreadPool pool(8);
    std::mutex mu;
    int calls = 0;
    // 100 rows with grain 30 fit at most 3 shards of >= 30 rows.
    pool.parallelFor(100, 30,
                     [&](std::size_t, std::size_t, int) {
                         std::lock_guard<std::mutex> lock(mu);
                         ++calls;
                     });
    EXPECT_LE(calls, 3);
    EXPECT_GE(calls, 1);
}

TEST(ThreadPool, ScopedSerialForcesInlineExecution)
{
    ThreadPool pool(4);
    ThreadPool::ScopedSerial guard;
    EXPECT_TRUE(ThreadPool::serialForced());
    int calls = 0;
    pool.parallelFor(1000, 1,
                     [&](std::size_t b, std::size_t e, int) {
                         ++calls;
                         EXPECT_EQ(b, 0u);
                         EXPECT_EQ(e, 1000u);
                     });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::vector<std::int64_t> outer_sum(4, 0);
    pool.parallelFor(
        4, 1, [&](std::size_t b, std::size_t e, int shard) {
            for (std::size_t i = b; i < e; ++i) {
                // A nested call must degrade to serial inline
                // execution on this participant.
                std::int64_t s = 0;
                parallelForRows(100, 1,
                                [&](std::size_t nb, std::size_t ne) {
                                    for (std::size_t j = nb; j < ne;
                                         ++j)
                                        s += static_cast<std::int64_t>(
                                            j);
                                });
                outer_sum[static_cast<std::size_t>(shard)] = s;
            }
        });
    for (const auto s : outer_sum)
        EXPECT_EQ(s, 4950);
}

TEST(ThreadPool, ReusableAcrossManyDispatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::int64_t> partial(
            static_cast<std::size_t>(pool.threads()), 0);
        pool.parallelFor(
            301, 1, [&](std::size_t b, std::size_t e, int shard) {
                std::int64_t s = 0;
                for (std::size_t i = b; i < e; ++i)
                    s += 1;
                partial[static_cast<std::size_t>(shard)] = s;
            });
        std::int64_t total = 0;
        for (const auto p : partial)
            total += p;
        ASSERT_EQ(total, 301);
    }
}

TEST(ThreadPool, WorkerShardExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    struct ShardError
    {
    };
    EXPECT_THROW(
        pool.parallelFor(400, 1,
                         [&](std::size_t b, std::size_t, int shard) {
                             if (shard != 0)
                                 throw ShardError{};
                             (void)b;
                         }),
        ShardError);
    // The pool stays usable after an exceptional dispatch.
    int calls = 0;
    std::mutex mu;
    pool.parallelFor(400, 1, [&](std::size_t, std::size_t, int) {
        std::lock_guard<std::mutex> lock(mu);
        ++calls;
    });
    EXPECT_EQ(calls, 4);
}

TEST(ThreadPool, CallerShardExceptionWinsAndDrainsWorkers)
{
    ThreadPool pool(4);
    struct CallerError
    {
    };
    std::vector<int> done(4, 0);
    EXPECT_THROW(
        pool.parallelFor(400, 1,
                         [&](std::size_t, std::size_t, int shard) {
                             if (shard == 0)
                                 throw CallerError{};
                             done[static_cast<std::size_t>(shard)] =
                                 1;
                         }),
        CallerError);
    // Worker shards completed before the exception surfaced.
    EXPECT_EQ(done[1] + done[2] + done[3], 3);
}

TEST(ThreadPool, ZeroRowsIsANoop)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, 1,
                     [&](std::size_t, std::size_t, int) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelForRows(0, 1, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(TaskQueue, RunsEverySubmittedTask)
{
    TaskQueue q(3);
    EXPECT_EQ(q.workers(), 3);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 20; ++i)
        futs.push_back(q.submit([&done] { ++done; }));
    q.wait();
    EXPECT_EQ(done.load(), 20);
    EXPECT_EQ(q.pending(), 0u);
    for (auto &f : futs)
        f.get(); // no exceptions stored
}

TEST(TaskQueue, ExceptionIsCapturedInTheFuture)
{
    TaskQueue q(2);
    struct TaskError
    {
    };
    std::future<void> bad =
        q.submit([] { throw TaskError{}; });
    std::atomic<int> ok{0};
    std::future<void> good = q.submit([&ok] { ++ok; });
    EXPECT_THROW(bad.get(), TaskError);
    good.get(); // the queue survives a throwing task
    EXPECT_EQ(ok.load(), 1);
}

TEST(TaskQueue, ConcurrencyNeverExceedsWorkers)
{
    TaskQueue q(2);
    std::atomic<int> running{0}, high{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 8; ++i)
        futs.push_back(q.submit([&] {
            const int now = ++running;
            int seen = high.load();
            while (now > seen &&
                   !high.compare_exchange_weak(seen, now)) {
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
            --running;
        }));
    q.wait();
    EXPECT_LE(high.load(), 2);
    EXPECT_GE(high.load(), 1);
}

TEST(TaskQueue, TasksMayUseParallelFor)
{
    // The serve scheduler's pattern: asynchronous tasks that each
    // run a pool-sharded computation. Concurrent top-level
    // parallelFor calls serialize per epoch and stay correct.
    ThreadPool pool(4);
    TaskQueue q(2);
    std::vector<std::vector<int>> out(4, std::vector<int>(100, 0));
    std::vector<std::future<void>> futs;
    for (int t = 0; t < 4; ++t)
        futs.push_back(q.submit([&pool, &out, t] {
            pool.parallelFor(100, 1,
                             [&out, t](std::size_t b, std::size_t e,
                                       int) {
                                 for (std::size_t i = b; i < e; ++i)
                                     out[static_cast<std::size_t>(
                                         t)][i] = t + 1;
                             });
        }));
    for (auto &f : futs)
        f.get();
    for (int t = 0; t < 4; ++t)
        for (int v : out[static_cast<std::size_t>(t)])
            ASSERT_EQ(v, t + 1);
}

TEST(TaskQueue, DestructorDrainsPendingTasks)
{
    std::atomic<int> done{0};
    {
        TaskQueue q(1);
        for (int i = 0; i < 5; ++i)
            q.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++done;
            });
    } // dtor waits for all five
    EXPECT_EQ(done.load(), 5);
}

TEST(GrainForRowCost, ScalesInverselyWithRowCost)
{
    // Expensive rows shard immediately; cheap rows need big shards.
    EXPECT_EQ(grainForRowCost(2.0 * 1024 * 1024 * 1024), 1u);
    const std::size_t cheap = grainForRowCost(10.0);
    const std::size_t mid = grainForRowCost(10000.0);
    EXPECT_GT(cheap, mid);
    EXPECT_GE(mid, 1u);
}

} // namespace
} // namespace sofa
