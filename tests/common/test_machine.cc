/**
 * @file
 * common/machine: descriptor describe/parse round-trip, the
 * SOFA_MACHINE override grammar (subset overrides, rejection of
 * malformed input), sane detection, and detectMachine() caching —
 * the determinism anchor the tile planner builds on.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/machine.h"
#include "testprop.h"

namespace sofa {
namespace {

TEST(Machine, DescribeParseRoundTrip)
{
    testprop::forEachSeededCase(32, [](int c, Rng &rng) {
        MachineDescriptor m;
        m.l1Bytes = static_cast<std::size_t>(
            rng.uniformInt(1, 1 << 20));
        m.l2Bytes = static_cast<std::size_t>(
            rng.uniformInt(1, 8 << 20));
        m.llcBytes = static_cast<std::size_t>(
            rng.uniformInt(1, 256 << 20));
        m.cores = static_cast<int>(rng.uniformInt(1, 256));
        m.simdLanes = rng.bernoulli(0.5) ? 8 : 1;
        MachineDescriptor parsed; // different starting point
        parsed.cores = -1;
        ASSERT_TRUE(parseMachine(m.describe(), &parsed))
            << "case " << c << ": " << m.describe();
        EXPECT_EQ(parsed, m) << "case " << c;
        EXPECT_EQ(parsed.describe(), m.describe()) << "case " << c;
    });
}

TEST(Machine, ParseOverridesOnlyMentionedKeys)
{
    MachineDescriptor m; // defaults
    const MachineDescriptor before = m;
    ASSERT_TRUE(parseMachine("l2=524288,cores=4", &m));
    EXPECT_EQ(m.l2Bytes, 524288u);
    EXPECT_EQ(m.cores, 4);
    EXPECT_EQ(m.l1Bytes, before.l1Bytes);
    EXPECT_EQ(m.llcBytes, before.llcBytes);
    EXPECT_EQ(m.simdLanes, before.simdLanes);
}

TEST(Machine, ParseRejectsMalformedLeavingTargetUntouched)
{
    const MachineDescriptor before;
    for (const char *bad :
         {"l1=0", "cores=-2", "bogus=3", "l1", "l1=abc",
          "l1=12junk", "l2=4,oops"}) {
        MachineDescriptor m;
        EXPECT_FALSE(parseMachine(bad, &m)) << bad;
        EXPECT_EQ(m, before) << bad;
    }
    // The empty override is a no-op, not an error.
    MachineDescriptor m;
    EXPECT_TRUE(parseMachine("", &m));
    EXPECT_EQ(m, before);
}

TEST(Machine, DetectionIsSaneAndCached)
{
    const MachineDescriptor &a = detectMachine();
    EXPECT_GT(a.l1Bytes, 0u);
    EXPECT_GE(a.l2Bytes, a.l1Bytes);
    EXPECT_GE(a.llcBytes, a.l2Bytes);
    EXPECT_GE(a.cores, 1);
    EXPECT_GE(a.simdLanes, 1);
    // Cached: same object, so the planner's inputs cannot drift
    // within a process.
    EXPECT_EQ(&a, &detectMachine());
}

TEST(Machine, EnvOverrideAppliesOnUncachedDetection)
{
    const char *saved = std::getenv("SOFA_MACHINE");
    const std::string saved_copy = saved != nullptr ? saved : "";
    ASSERT_EQ(
        setenv("SOFA_MACHINE", "l1=65536,cores=3,lanes=1", 1), 0);
    const MachineDescriptor m = detectMachineUncached();
    EXPECT_EQ(m.l1Bytes, 65536u);
    EXPECT_EQ(m.cores, 3);
    EXPECT_EQ(m.simdLanes, 1);
    if (saved != nullptr)
        setenv("SOFA_MACHINE", saved_copy.c_str(), 1);
    else
        unsetenv("SOFA_MACHINE");
}

} // namespace
} // namespace sofa
