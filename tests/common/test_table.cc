#include <gtest/gtest.h>

#include "common/table.h"

namespace sofa {
namespace {

Table
sampleTable()
{
    Table t;
    t.column("name", Align::Left).column("value").column("share");
    t.row().cell("alpha").cell(std::int64_t{42}).pct(0.125);
    t.row().cell("beta").cell(3.14159, 3).pct(0.875);
    return t;
}

TEST(Table, Dimensions)
{
    auto t = sampleTable();
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RenderContainsHeadersAndValues)
{
    auto s = sampleTable().render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.142"), std::string::npos);
    EXPECT_NE(s.find("12.5%"), std::string::npos);
    EXPECT_NE(s.find("-+-"), std::string::npos); // separator
}

TEST(Table, ColumnsAligned)
{
    auto s = sampleTable().render();
    // Every line has the same length (fixed-width rendering).
    std::size_t prev = std::string::npos;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t nl = s.find('\n', pos);
        if (nl == std::string::npos)
            break;
        const std::size_t len = nl - pos;
        if (prev != std::string::npos) {
            EXPECT_EQ(len, prev);
        }
        prev = len;
        pos = nl + 1;
    }
}

TEST(Table, CsvEscapesSpecials)
{
    Table t;
    t.column("a", Align::Left).column("b", Align::Left);
    t.row().cell("plain").cell("has,comma");
    t.row().cell("has\"quote").cell("x");
    auto csv = t.csv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
    EXPECT_EQ(csv.find("plain,"), csv.find("plain"));
}

TEST(Table, CsvRowCount)
{
    auto csv = sampleTable().csv();
    int lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, 3); // header + 2 rows
}

TEST(TableDeath, ColumnAfterRowPanics)
{
    Table t;
    t.column("a");
    t.row().cell("1");
    EXPECT_DEATH(t.column("b"), "assertion");
}

TEST(TableDeath, TooManyCellsPanics)
{
    Table t;
    t.column("a");
    t.row().cell("1");
    EXPECT_DEATH(t.cell("2"), "assertion");
}

TEST(TableDeath, CellWithoutRowPanics)
{
    Table t;
    t.column("a");
    EXPECT_DEATH(t.cell("1"), "assertion");
}

} // namespace
} // namespace sofa
