#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace sofa {
namespace {

TEST(StatGroup, AddAndGet)
{
    StatGroup g("test");
    g.add("cycles", 10);
    g.add("cycles", 5);
    EXPECT_DOUBLE_EQ(g.get("cycles"), 15.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
    EXPECT_TRUE(g.has("cycles"));
    EXPECT_FALSE(g.has("missing"));
}

TEST(StatGroup, SetOverrides)
{
    StatGroup g;
    g.add("x", 100);
    g.set("x", 3);
    EXPECT_DOUBLE_EQ(g.get("x"), 3.0);
}

TEST(StatGroup, MergeSums)
{
    StatGroup a, b;
    a.add("x", 1);
    a.add("y", 2);
    b.add("x", 10);
    b.add("z", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 11.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 2.0);
    EXPECT_DOUBLE_EQ(a.get("z"), 3.0);
}

TEST(StatGroup, ClearKeepsKeys)
{
    StatGroup g;
    g.add("x", 5);
    g.clear();
    EXPECT_TRUE(g.has("x"));
    EXPECT_DOUBLE_EQ(g.get("x"), 0.0);
}

TEST(StatGroup, ToStringContainsName)
{
    StatGroup g("grp");
    g.add("a", 1);
    auto s = g.toString();
    EXPECT_NE(s.find("grp.a"), std::string::npos);
}

TEST(Summary, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({4.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Summary, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Summary, Stddev)
{
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(Summary, GeomeanLessOrEqualMean)
{
    // AM-GM inequality as a sanity property.
    std::vector<double> v = {1.0, 3.0, 9.0, 27.0};
    EXPECT_LE(geomean(v), mean(v));
}

TEST(Summary, Percentile)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
    // 0..9: linear interpolation between order statistics.
    std::vector<double> v;
    for (int i = 9; i >= 0; --i) // unsorted on purpose
        v.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 4.5);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.95), 8.55);
    // Out-of-range p clamps instead of reading out of bounds.
    EXPECT_DOUBLE_EQ(percentile(v, -1.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(v, 2.0), 9.0);
}

} // namespace
} // namespace sofa
