#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/jsonwriter.h"

namespace sofa {
namespace {

TEST(JsonWriter, FlatObject)
{
    JsonWriter j;
    j.beginObject()
        .key("name").value("kernels")
        .key("threads").value(4)
        .key("fast").value(true)
        .endObject();
    EXPECT_EQ(j.str(),
              "{\"name\":\"kernels\",\"threads\":4,\"fast\":true}");
}

TEST(JsonWriter, NestedObjectAndArray)
{
    JsonWriter j;
    j.beginObject()
        .key("results").beginArray()
            .beginObject().key("m").value(256).endObject()
            .beginObject().key("m").value(512).endObject()
        .endArray()
        .key("ok").value(true)
        .endObject();
    EXPECT_EQ(j.str(),
              "{\"results\":[{\"m\":256},{\"m\":512}],\"ok\":true}");
}

TEST(JsonWriter, ArrayOfScalars)
{
    JsonWriter j;
    j.beginArray()
        .value(1)
        .value(2.5)
        .value("x")
        .value(false)
        .endArray();
    EXPECT_EQ(j.str(), "[1,2.5,\"x\",false]");
}

TEST(JsonWriter, EscapesStrings)
{
    JsonWriter j;
    j.beginObject()
        .key("s").value("a\"b\\c\nd\te")
        .key("ctl").value(std::string("\x01", 1))
        .endObject();
    EXPECT_EQ(j.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\","
                       "\"ctl\":\"\\u0001\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter j;
    j.beginArray()
        .value(std::nan(""))
        .value(HUGE_VAL)
        .endArray();
    EXPECT_EQ(j.str(), "[null,null]");
}

TEST(JsonWriter, DoublesRoundTripReadably)
{
    JsonWriter j;
    j.beginArray().value(1.5).value(0.125).value(-3.0).endArray();
    EXPECT_EQ(j.str(), "[1.5,0.125,-3]");
}

TEST(JsonWriter, WriteFileRoundTrips)
{
    JsonWriter j;
    j.beginObject().key("k").value(1).endObject();
    const std::string path = "test_jsonwriter_out.json";
    ASSERT_TRUE(j.writeFile(path));
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_EQ(ss.str(), "{\"k\":1}\n");
    std::remove(path.c_str());
}

} // namespace
} // namespace sofa
