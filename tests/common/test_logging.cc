#include <gtest/gtest.h>

#include "common/logging.h"

namespace sofa {
namespace {

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "panic");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "fatal");
}

TEST(LoggingDeath, AssertFiresOnFalse)
{
    EXPECT_DEATH(SOFA_ASSERT(1 == 2), "assertion failed");
}

TEST(Logging, AssertPassesOnTrue)
{
    SOFA_ASSERT(1 == 1);
    SUCCEED();
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("this is a warning %s", "ok");
    inform("status %d", 1);
    SUCCEED();
}

} // namespace
} // namespace sofa
