#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/reporter.h"

namespace sofa {
namespace bench {
namespace {

Options
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "bench_test");
    Options opts;
    std::string error;
    const bool ok =
        parseArgs(static_cast<int>(args.size()),
                  const_cast<char **>(args.data()), &opts, &error);
    EXPECT_TRUE(ok) << error;
    return opts;
}

TEST(BenchOptions, Defaults)
{
    const Options opts = parse({});
    EXPECT_FALSE(opts.quick);
    EXPECT_TRUE(opts.writeJson);
    EXPECT_EQ(opts.jsonPath, "");
    EXPECT_EQ(opts.seed, 0u);
}

TEST(BenchOptions, AllFlags)
{
    const Options opts =
        parse({"--quick", "--json-out", "out.json", "--seed", "42",
               "--threads", "3"});
    EXPECT_TRUE(opts.quick);
    EXPECT_EQ(opts.jsonPath, "out.json");
    EXPECT_EQ(opts.seed, 42u);
    EXPECT_EQ(opts.threads, 3);
}

TEST(BenchOptions, ThreadsDefaultsToUnset)
{
    const Options opts = parse({});
    EXPECT_EQ(opts.threads, 0);
}

TEST(BenchOptions, RejectsBadThreads)
{
    Options opts;
    std::string error;
    for (const char *bad : {"0", "-2", "abc", "257", ""}) {
        const char *argv[] = {"bench_test", "--threads", bad};
        EXPECT_FALSE(parseArgs(3, const_cast<char **>(argv), &opts,
                               &error))
            << bad;
    }
    {
        const char *argv[] = {"bench_test", "--threads"};
        EXPECT_FALSE(parseArgs(2, const_cast<char **>(argv), &opts,
                               &error));
    }
}

TEST(BenchOptions, JsonAliasAndNoJson)
{
    Options opts = parse({"--json", "alias.json"});
    EXPECT_EQ(opts.jsonPath, "alias.json");
    opts = parse({"--no-json"});
    EXPECT_FALSE(opts.writeJson);
}

TEST(BenchOptions, HexSeed)
{
    const Options opts = parse({"--seed", "0xBEEF"});
    EXPECT_EQ(opts.seed, 0xBEEFu);
}

TEST(BenchOptions, RejectsUnknownFlagAndBadSeed)
{
    Options opts;
    std::string error;
    {
        const char *argv[] = {"bench_test", "--frobnicate"};
        EXPECT_FALSE(parseArgs(2, const_cast<char **>(argv), &opts,
                               &error));
        EXPECT_NE(error.find("--frobnicate"), std::string::npos);
    }
    {
        const char *argv[] = {"bench_test", "--seed", "12abc"};
        EXPECT_FALSE(parseArgs(3, const_cast<char **>(argv), &opts,
                               &error));
    }
    {
        const char *argv[] = {"bench_test", "--seed", ""};
        EXPECT_FALSE(parseArgs(3, const_cast<char **>(argv), &opts,
                               &error));
    }
    {
        // Out of range for uint64: must error, not saturate.
        const char *argv[] = {"bench_test", "--seed",
                              "99999999999999999999999"};
        EXPECT_FALSE(parseArgs(3, const_cast<char **>(argv), &opts,
                               &error));
    }
    {
        // strtoull would wrap "-1" to 2^64-1; must error instead.
        const char *argv[] = {"bench_test", "--seed", "-1"};
        EXPECT_FALSE(parseArgs(3, const_cast<char **>(argv), &opts,
                               &error));
    }
    {
        const char *argv[] = {"bench_test", "--json-out"};
        EXPECT_FALSE(parseArgs(2, const_cast<char **>(argv), &opts,
                               &error));
    }
}

TEST(BenchOptions, SeedOrKeepsBenchDefaultWithoutOverride)
{
    Options opts;
    EXPECT_EQ(opts.seedOr(0xBE7C4u), 0xBE7C4u);
}

TEST(BenchOptions, SeedOrMixesDistinctDefaultsDistinctly)
{
    Options opts;
    opts.seed = 7;
    const std::uint64_t a = opts.seedOr(1);
    const std::uint64_t b = opts.seedOr(2);
    EXPECT_NE(a, 1u); // override actually changes the stream
    EXPECT_NE(a, b);  // independent workloads stay independent
    EXPECT_EQ(a, opts.seedOr(1)); // and it is deterministic
}

TEST(Reporter, SeedAbove2e63SerializesUnsigned)
{
    Options opts;
    opts.seed = 0xFFFFFFFFFFFFFFFFull;
    Reporter r("unsigned", opts);
    EXPECT_NE(r.json().find("\"seed\":18446744073709551615"),
              std::string::npos);
    EXPECT_EQ(r.json().find("\"seed\":-1"), std::string::npos);
}

TEST(Reporter, JsonShape)
{
    Options opts;
    opts.quick = true;
    opts.threads = 2; // pin: the artifact records the pool size
    Reporter r("unit", opts);
    // Binary-exact values: JsonWriter prints doubles at round-trip
    // precision, so 0.72 would serialize as 0.71999999999999997.
    r.metric("share", 0.5, "fraction").paper(0.75);
    r.metric("elapsed", 1.25, "ms").nocheck();
    EXPECT_EQ(r.json(),
              "{\"schema\":1,\"bench\":\"unit\",\"quick\":true,"
              "\"seed\":0,\"threads\":2,\"metrics\":["
              "{\"name\":\"share\",\"value\":0.5,\"unit\":"
              "\"fraction\",\"paper\":0.75,\"tol\":0.0001,"
              "\"check\":true},"
              "{\"name\":\"elapsed\",\"value\":1.25,\"unit\":\"ms\","
              "\"tol\":0.0001,\"check\":false}]}");
}

TEST(Reporter, ThreadsResolvedFromPoolWhenUnset)
{
    Reporter r("unit", Options{});
    // Unset --threads records the actual process pool size.
    EXPECT_NE(r.json().find("\"threads\":"), std::string::npos);
}

TEST(Reporter, FluentToleranceFields)
{
    Reporter r("unit", Options{});
    r.metric("loads", 24.0, "count").tol(0.0).atol(0.5);
    const Metric *m = r.find("loads");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->relTol, 0.0);
    EXPECT_EQ(m->absTol, 0.5);
    EXPECT_TRUE(m->checked);
    EXPECT_FALSE(m->hasPaper);
    EXPECT_NE(r.json().find("\"atol\":0.5"), std::string::npos);
}

TEST(Reporter, DuplicateMetricNameThrows)
{
    Reporter r("unit", Options{});
    r.metric("x", 1.0, "count");
    EXPECT_THROW(r.metric("x", 2.0, "count"), std::logic_error);
}

TEST(Reporter, DeterministicAcrossRuns)
{
    const auto build = [] {
        Options opts;
        opts.seed = 99;
        Reporter r("det", opts);
        r.metric("a", 1.0 / 3.0, "ratio");
        r.metric("b", 2.5e-7, "fraction").paper(3e-7).tol(0.01);
        return r.json();
    };
    EXPECT_EQ(build(), build());
}

TEST(Reporter, FindAndCount)
{
    Reporter r("unit", Options{});
    EXPECT_EQ(r.count(), 0u);
    EXPECT_EQ(r.find("missing"), nullptr);
    r.metric("a", 1.0, "count");
    EXPECT_EQ(r.count(), 1u);
    EXPECT_EQ(r.defaultPath(), "BENCH_unit.json");
}

TEST(Reporter, WriteFileRoundTrip)
{
    Reporter r("roundtrip", Options{});
    r.metric("value", 42.0, "count");
    const std::string path =
        ::testing::TempDir() + "/BENCH_roundtrip.json";
    ASSERT_TRUE(r.writeFile(path));
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_EQ(ss.str(), r.json() + "\n");
    std::remove(path.c_str());
}

TEST(Reporter, WriteFileFailsOnBadPath)
{
    Reporter r("bad", Options{});
    EXPECT_FALSE(r.writeFile("/nonexistent-dir/BENCH_bad.json"));
}

} // namespace
} // namespace bench
} // namespace sofa
