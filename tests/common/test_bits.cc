#include <gtest/gtest.h>

#include "common/bits.h"

namespace sofa {
namespace {

TEST(LeadingZeros, FullWindowForZero)
{
    EXPECT_EQ(leadingZeros(0, 8), 8);
    EXPECT_EQ(leadingZeros(0, 16), 16);
    EXPECT_EQ(leadingZeros(0, 1), 1);
}

TEST(LeadingZeros, SingleBitPositions8)
{
    EXPECT_EQ(leadingZeros(0x80, 8), 0);
    EXPECT_EQ(leadingZeros(0x40, 8), 1);
    EXPECT_EQ(leadingZeros(0x01, 8), 7);
}

TEST(LeadingZeros, PaperExampleValues)
{
    // Fig. 7: 00010100 (20) has 3 leading zeros in 8 bits.
    EXPECT_EQ(leadingZeros(0b00010100, 8), 3);
    // 00000100 (4) has 5.
    EXPECT_EQ(leadingZeros(0b00000100, 8), 5);
    // 11111000 has 0.
    EXPECT_EQ(leadingZeros(0b11111000, 8), 0);
}

TEST(LeadingZeros, SixteenBitWindow)
{
    EXPECT_EQ(leadingZeros(0x8000, 16), 0);
    EXPECT_EQ(leadingZeros(0x0001, 16), 15);
    EXPECT_EQ(leadingZeros(0x00FF, 16), 8);
}

TEST(LzExponent, MatchesEquation1a)
{
    // x = M * 2^(W - LZ): for x=20, W=8, LZ=3 -> exponent 5
    // (20 = 0.625 * 32).
    EXPECT_EQ(lzExponent(20, 8), 5);
    EXPECT_EQ(lzExponent(1, 8), 1);
    EXPECT_EQ(lzExponent(255, 8), 8);
    EXPECT_EQ(lzExponent(0, 8), 0);
}

TEST(AbsMagnitude, HandlesNegatives)
{
    EXPECT_EQ(absMagnitude(-5), 5u);
    EXPECT_EQ(absMagnitude(5), 5u);
    EXPECT_EQ(absMagnitude(0), 0u);
    EXPECT_EQ(absMagnitude(INT64_MIN),
              static_cast<std::uint64_t>(INT64_MAX) + 1);
}

TEST(ShiftLeftSat, BasicAndSaturating)
{
    EXPECT_EQ(shiftLeftSat(3, 2), 12);
    EXPECT_EQ(shiftLeftSat(3, 0), 3);
    EXPECT_EQ(shiftLeftSat(8, -2), 2);
    EXPECT_EQ(shiftLeftSat(1, 63), 0);  // saturated
    EXPECT_EQ(shiftLeftSat(1, 100), 0); // saturated
}

TEST(PowerOfTwo, Cases)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(CeilDivRoundUp, Cases)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1, 16), 1);
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
}

/** Property sweep: leadingZeros agrees with a log2-based formula. */
class LzProperty : public ::testing::TestWithParam<int>
{};

TEST_P(LzProperty, AgreesWithLog2)
{
    const int width = GetParam();
    for (std::uint64_t v = 1; v < (1ull << width); v += 7) {
        int expected = width;
        std::uint64_t x = v;
        while (x) {
            --expected;
            x >>= 1;
        }
        EXPECT_EQ(leadingZeros(v, width), expected) << "v=" << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, LzProperty,
                         ::testing::Values(4, 8, 12, 16));

} // namespace
} // namespace sofa
