#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "common/faultplan.h"

namespace sofa {
namespace {

TEST(FaultPlan, EmptyPlanNeverFires)
{
    const FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.at(0, "sads_topk", 0).action, FaultAction::None);
    EXPECT_EQ(plan.at(42, nullptr, 3).action, FaultAction::None);
    EXPECT_EQ(FaultPlan::parse("").ruleCount(), 0u);
    EXPECT_EQ(FaultPlan::parse(" ; ;").ruleCount(), 0u);
}

TEST(FaultPlan, FromEnvUnsetIsEmpty)
{
    unsetenv("SOFA_FAULTS_TEST_UNSET");
    EXPECT_TRUE(FaultPlan::fromEnv("SOFA_FAULTS_TEST_UNSET").empty());
    setenv("SOFA_FAULTS_TEST_EMPTY", "", 1);
    EXPECT_TRUE(FaultPlan::fromEnv("SOFA_FAULTS_TEST_EMPTY").empty());
    unsetenv("SOFA_FAULTS_TEST_EMPTY");
}

TEST(FaultPlan, FromEnvParsesTheVariable)
{
    setenv("SOFA_FAULTS_TEST_SET",
           "fail:req=3:stage=sads_topk;slow:ms=2.5", 1);
    const FaultPlan plan = FaultPlan::fromEnv("SOFA_FAULTS_TEST_SET");
    unsetenv("SOFA_FAULTS_TEST_SET");
    ASSERT_EQ(plan.ruleCount(), 2u);
    EXPECT_EQ(plan.at(3, "sads_topk", 0).action, FaultAction::Fail);
    const FaultDecision d = plan.at(7, "kv_generate", 0);
    EXPECT_EQ(d.action, FaultAction::Slow);
    EXPECT_DOUBLE_EQ(d.slowMs, 2.5);
}

TEST(FaultPlan, RequestAndStageMatching)
{
    const FaultPlan plan =
        FaultPlan::parse("fail:req=3:stage=sads_topk");
    EXPECT_EQ(plan.at(3, "sads_topk", 0).action, FaultAction::Fail);
    EXPECT_EQ(plan.at(3, "sads_topk", 5).action, FaultAction::Fail);
    EXPECT_EQ(plan.at(3, "dlzs_predict", 0).action,
              FaultAction::None);
    EXPECT_EQ(plan.at(4, "sads_topk", 0).action, FaultAction::None);
    // A stage-specific rule cannot match an unknown (null) stage.
    EXPECT_EQ(plan.at(3, nullptr, 0).action, FaultAction::None);

    const FaultPlan wild = FaultPlan::parse("fail:req=*:stage=*");
    EXPECT_EQ(wild.at(99, "quality", 7).action, FaultAction::Fail);
    EXPECT_EQ(wild.at(0, nullptr, 0).action, FaultAction::Fail);
}

TEST(FaultPlan, FirstMatchWins)
{
    const FaultPlan plan =
        FaultPlan::parse("slow:req=1:ms=7;fail:req=*");
    const FaultDecision d = plan.at(1, "sads_topk", 0);
    EXPECT_EQ(d.action, FaultAction::Slow);
    EXPECT_DOUBLE_EQ(d.slowMs, 7.0);
    EXPECT_EQ(plan.at(2, "sads_topk", 0).action, FaultAction::Fail);
}

TEST(FaultPlan, AttemptWindows)
{
    const FaultPlan eq = FaultPlan::parse("fail:attempt=1");
    EXPECT_EQ(eq.at(0, "sads_topk", 0).action, FaultAction::None);
    EXPECT_EQ(eq.at(0, "sads_topk", 1).action, FaultAction::Fail);
    EXPECT_EQ(eq.at(0, "sads_topk", 2).action, FaultAction::None);

    const FaultPlan below = FaultPlan::parse("fail:attempt<2");
    EXPECT_EQ(below.at(0, "sads_topk", 0).action, FaultAction::Fail);
    EXPECT_EQ(below.at(0, "sads_topk", 1).action, FaultAction::Fail);
    EXPECT_EQ(below.at(0, "sads_topk", 2).action, FaultAction::None);
}

TEST(FaultPlan, ProbabilisticRulesAreHashGatedAndDeterministic)
{
    const FaultPlan plan =
        FaultPlan::parse("fail:prob=0.25:seed=11");
    int fired = 0;
    const int n = 400;
    for (int id = 0; id < n; ++id) {
        const FaultDecision d = plan.at(
            static_cast<std::uint64_t>(id), "sads_topk", 0);
        if (d.action == FaultAction::Fail)
            ++fired;
        // Stateless: probing the same point again (any order, any
        // number of times) gives the identical decision.
        EXPECT_EQ(plan.at(static_cast<std::uint64_t>(id),
                          "sads_topk", 0)
                      .action,
                  d.action);
    }
    const double frac = static_cast<double>(fired) / n;
    EXPECT_GT(frac, 0.10);
    EXPECT_LT(frac, 0.40);

    // A different seed selects a different subset.
    const FaultPlan other =
        FaultPlan::parse("fail:prob=0.25:seed=12");
    int differs = 0;
    for (int id = 0; id < n; ++id)
        if (plan.at(static_cast<std::uint64_t>(id), "sads_topk", 0)
                .action !=
            other.at(static_cast<std::uint64_t>(id), "sads_topk", 0)
                .action)
            ++differs;
    EXPECT_GT(differs, 0);
}

TEST(FaultPlan, ParseErrors)
{
    EXPECT_THROW(FaultPlan::parse("explode"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("fail:ms=5"),
                 std::invalid_argument); // ms only on slow rules
    EXPECT_THROW(FaultPlan::parse("slow:ms=0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("fail:prob=2"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("fail:prob=-0.5"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("fail:attempt"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("fail:req=abc"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("fail:req=3x"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("fail:wat=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("fail:stage="),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("fail:prob<0.5"),
                 std::invalid_argument); // '<' is attempt-only
}

TEST(FaultPlan, DescribeRoundTrips)
{
    const std::string spec =
        "fail:req=3:stage=sads_topk:attempt<2;slow:req=*:stage=*"
        ":prob=0.1:seed=7:ms=5";
    const FaultPlan plan = FaultPlan::parse(spec);
    const std::string desc = plan.describe();
    EXPECT_NE(desc.find("fail:req=3:stage=sads_topk:attempt<2"),
              std::string::npos);
    EXPECT_NE(desc.find("slow:req=*:stage=*"), std::string::npos);
    EXPECT_NE(desc.find("ms=5"), std::string::npos);
    // The description parses back to an equivalent plan.
    const FaultPlan again = FaultPlan::parse(desc);
    EXPECT_EQ(again.ruleCount(), plan.ruleCount());
    EXPECT_EQ(again.at(3, "sads_topk", 1).action,
              plan.at(3, "sads_topk", 1).action);
    EXPECT_TRUE(FaultPlan{}.describe().find("empty") !=
                std::string::npos);
}

TEST(FaultPlan, HashUnitIntervalIsUniformishAndPure)
{
    double sum = 0.0;
    for (int i = 0; i < 1000; ++i) {
        const double u = hashUnitInterval(
            5, static_cast<std::uint64_t>(i), 3);
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
        EXPECT_DOUBLE_EQ(
            u, hashUnitInterval(5, static_cast<std::uint64_t>(i), 3));
    }
    EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

} // namespace
} // namespace sofa
