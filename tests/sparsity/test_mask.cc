#include <gtest/gtest.h>

#include "sparsity/mask.h"

namespace sofa {
namespace {

TEST(TopkMask, FromSelectionsRoundTrip)
{
    SelectionList sel = {{3, 1}, {0}, {}};
    TopkMask m = TopkMask::fromSelections(sel, 4);
    EXPECT_EQ(m.queries(), 3);
    EXPECT_EQ(m.seq(), 4);
    EXPECT_TRUE(m.get(0, 1));
    EXPECT_TRUE(m.get(0, 3));
    EXPECT_TRUE(m.get(1, 0));
    EXPECT_FALSE(m.get(2, 0));

    auto back = m.toSelections();
    EXPECT_EQ(back[0], (Selection{1, 3})); // ascending order
    EXPECT_EQ(back[1], (Selection{0}));
    EXPECT_TRUE(back[2].empty());
}

TEST(TopkMask, PopcountAndDensity)
{
    SelectionList sel = {{0, 1}, {1}};
    TopkMask m = TopkMask::fromSelections(sel, 4);
    EXPECT_EQ(m.popcount(), 3);
    EXPECT_DOUBLE_EQ(m.density(), 3.0 / 8.0);
}

TEST(TopkMask, RequiredKeysIsUnion)
{
    SelectionList sel = {{0, 2}, {2, 3}, {5}};
    TopkMask m = TopkMask::fromSelections(sel, 8);
    EXPECT_EQ(m.requiredKeys(), (std::vector<int>{0, 2, 3, 5}));
}

TEST(TopkMask, QueriesNeedingKey)
{
    SelectionList sel = {{0, 2}, {2}, {1}};
    TopkMask m = TopkMask::fromSelections(sel, 4);
    EXPECT_EQ(m.queriesNeedingKey(2), (std::vector<int>{0, 1}));
    EXPECT_EQ(m.queriesNeedingKey(1), (std::vector<int>{2}));
    EXPECT_TRUE(m.queriesNeedingKey(3).empty());
}

TEST(TopkMask, SetAndClear)
{
    TopkMask m(2, 2);
    m.set(0, 0);
    EXPECT_TRUE(m.get(0, 0));
    m.set(0, 0, false);
    EXPECT_FALSE(m.get(0, 0));
    EXPECT_EQ(m.popcount(), 0);
}

TEST(TopkMaskDeath, BoundsChecked)
{
    TopkMask m(2, 2);
    EXPECT_DEATH(m.get(2, 0), "assertion");
    EXPECT_DEATH(m.set(0, 2), "assertion");
}

TEST(TopkMask, EmptyMask)
{
    TopkMask m;
    EXPECT_EQ(m.queries(), 0);
    EXPECT_EQ(m.popcount(), 0);
    EXPECT_DOUBLE_EQ(m.density(), 0.0);
}

} // namespace
} // namespace sofa
