#include <gtest/gtest.h>

#include <algorithm>

#include "model/workload.h"
#include "sparsity/topk.h"

namespace sofa {
namespace {

TEST(ExactTopK, PicksLargest)
{
    std::vector<float> row = {1.0f, 9.0f, 3.0f, 7.0f, 5.0f};
    auto sel = exactTopK(row.data(), 5, 2);
    ASSERT_EQ(sel.size(), 2u);
    EXPECT_EQ(sel[0], 1);
    EXPECT_EQ(sel[1], 3);
}

TEST(ExactTopK, DescendingOrder)
{
    std::vector<float> row = {0.5f, 0.1f, 0.9f, 0.3f};
    auto sel = exactTopK(row.data(), 4, 4);
    for (std::size_t i = 1; i < sel.size(); ++i)
        EXPECT_GE(row[sel[i - 1]], row[sel[i]]);
}

TEST(ExactTopK, TieBreakByLowerIndex)
{
    std::vector<float> row = {2.0f, 2.0f, 2.0f};
    auto sel = exactTopK(row.data(), 3, 2);
    EXPECT_EQ(sel[0], 0);
    EXPECT_EQ(sel[1], 1);
}

TEST(ExactTopK, KLargerThanSeqClamps)
{
    std::vector<float> row = {1.0f, 2.0f};
    auto sel = exactTopK(row.data(), 2, 10);
    EXPECT_EQ(sel.size(), 2u);
}

TEST(ExactTopK, ZeroK)
{
    std::vector<float> row = {1.0f};
    EXPECT_TRUE(exactTopK(row.data(), 1, 0).empty());
}

TEST(ExactTopKRows, PerRowSelection)
{
    MatF m(2, 4);
    m(0, 0) = 5;
    m(0, 3) = 9;
    m(1, 1) = 7;
    m(1, 2) = 8;
    auto sel = exactTopKRows(m, 1);
    ASSERT_EQ(sel.size(), 2u);
    EXPECT_EQ(sel[0][0], 3);
    EXPECT_EQ(sel[1][0], 2);
}

TEST(BitonicComparisons, KnownValues)
{
    // n=2^m: n/2 * m(m+1)/2 compare-exchange ops.
    EXPECT_EQ(bitonicSortComparisons(2), 1);
    EXPECT_EQ(bitonicSortComparisons(4), 6);
    EXPECT_EQ(bitonicSortComparisons(8), 24);
    EXPECT_EQ(bitonicSortComparisons(16), 80);
    EXPECT_EQ(bitonicSortComparisons(1), 0);
}

TEST(BitonicComparisons, NonPowerOfTwoRoundsUp)
{
    EXPECT_EQ(bitonicSortComparisons(9), bitonicSortComparisons(16));
}

TEST(BitonicComparisons, SuperlinearGrowth)
{
    // The whole-row sorting cost grows faster than linearly — the
    // motivation for SADS.
    const auto c1k = bitonicSortComparisons(1024);
    const auto c4k = bitonicSortComparisons(4096);
    EXPECT_GT(c4k, 4 * c1k);
}

TEST(VanillaTopK, SameSelectionAsOracleWithCost)
{
    MatF m(3, 64);
    Rng rng(5);
    for (auto &v : m.data())
        v = static_cast<float>(rng.gaussian());
    OpCounter ops;
    auto vanilla = vanillaTopKRows(m, 8, &ops);
    auto oracle = exactTopKRows(m, 8);
    EXPECT_EQ(vanilla, oracle);
    EXPECT_EQ(ops.cmps(), 3 * bitonicSortComparisons(64));
}

TEST(VanillaTopK, NullCounterAllowed)
{
    std::vector<float> row = {3.0f, 1.0f, 2.0f};
    auto sel = vanillaTopK(row.data(), 3, 1, nullptr);
    EXPECT_EQ(sel[0], 0);
}

TEST(ExactTopKRows, ZeroKYieldsEmptySelections)
{
    MatF m(3, 4, 1.0f);
    auto sel = exactTopKRows(m, 0);
    ASSERT_EQ(sel.size(), 3u);
    for (const auto &row : sel)
        EXPECT_TRUE(row.empty());
}

TEST(ExactTopKRows, KAtLeastSeqSelectsEverything)
{
    MatF m(2, 3);
    m(0, 0) = 3;
    m(0, 1) = 1;
    m(0, 2) = 2;
    m(1, 0) = -1;
    m(1, 1) = -3;
    m(1, 2) = -2;
    for (int k : {3, 7}) {
        auto sel = exactTopKRows(m, k);
        ASSERT_EQ(sel.size(), 2u);
        EXPECT_EQ(sel[0], (Selection{0, 2, 1}));
        EXPECT_EQ(sel[1], (Selection{0, 2, 1}));
    }
}

TEST(ExactTopK, SingleElementRow)
{
    std::vector<float> row = {-4.5f};
    auto sel = exactTopK(row.data(), 1, 1);
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(sel[0], 0);
}

TEST(VanillaTopK, ZeroKChargesSortButSelectsNothing)
{
    std::vector<float> row = {1.0f, 4.0f, 2.0f, 3.0f};
    OpCounter ops;
    auto sel = vanillaTopK(row.data(), 4, 0, &ops);
    EXPECT_TRUE(sel.empty());
    // The whole-row sort happens before selection, so its comparison
    // cost is paid regardless of k.
    EXPECT_EQ(ops.cmps(), bitonicSortComparisons(4));
}

TEST(VanillaTopK, KLargerThanSeqClamps)
{
    std::vector<float> row = {2.0f, 1.0f};
    auto sel = vanillaTopK(row.data(), 2, 5, nullptr);
    ASSERT_EQ(sel.size(), 2u);
    EXPECT_EQ(sel[0], 0);
    EXPECT_EQ(sel[1], 1);
}

TEST(VanillaTopK, TiedScoresKeepLowerIndexFirst)
{
    // All-equal scores: the lower-index-first tie break, pinned
    // against the literal expected selection (vanillaTopK currently
    // delegates to exactTopK, so comparing the two would be a
    // tautology; this must keep holding if vanilla grows a real
    // bitonic-sort implementation).
    std::vector<float> row(8, 1.5f);
    auto vanilla = vanillaTopK(row.data(), 8, 3, nullptr);
    EXPECT_EQ(vanilla, (Selection{0, 1, 2}));
}

} // namespace
} // namespace sofa
