#include <gtest/gtest.h>

#include "attention/reference.h"
#include "model/workload.h"
#include "testutil.h"
#include "sparsity/metrics.h"

namespace sofa {
namespace {

TEST(TopkRecall, PerfectAndEmpty)
{
    SelectionList exact = {{1, 2}, {3}};
    EXPECT_DOUBLE_EQ(topkRecall(exact, exact), 1.0);
    SelectionList none = {{}, {}};
    EXPECT_DOUBLE_EQ(topkRecall(none, exact), 0.0);
}

TEST(TopkRecall, PartialOverlap)
{
    SelectionList exact = {{1, 2, 3, 4}};
    SelectionList pred = {{1, 2, 9, 8}};
    EXPECT_DOUBLE_EQ(topkRecall(pred, exact), 0.5);
}

TEST(TopkRecall, OrderIrrelevant)
{
    SelectionList exact = {{1, 2, 3}};
    SelectionList pred = {{3, 1, 2}};
    EXPECT_DOUBLE_EQ(topkRecall(pred, exact), 1.0);
}

TEST(MassRecall, FullSelectionIsOne)
{
    MatF scores(2, 8);
    Rng rng(1);
    for (auto &v : scores.data())
        v = static_cast<float>(rng.gaussian());
    SelectionList all(2);
    for (auto &s : all)
        for (int i = 0; i < 8; ++i)
            s.push_back(i);
    EXPECT_NEAR(softmaxMassRecall(scores, all), 1.0, 1e-6);
}

TEST(MassRecall, DominantTokenCarriesMass)
{
    MatF scores(1, 16, 0.0f);
    scores(0, 5) = 10.0f;
    SelectionList only_dominant = {{5}};
    EXPECT_GT(softmaxMassRecall(scores, only_dominant), 0.99);
    SelectionList only_noise = {{0}};
    EXPECT_LT(softmaxMassRecall(scores, only_noise), 0.01);
}

TEST(AccuracyLoss, ZeroAtFullRecall)
{
    EXPECT_DOUBLE_EQ(accuracyLossPercent(1.0), 0.0);
}

TEST(AccuracyLoss, MonotoneInUncoveredMass)
{
    EXPECT_LT(accuracyLossPercent(0.99), accuracyLossPercent(0.95));
    EXPECT_LT(accuracyLossPercent(0.95), accuracyLossPercent(0.90));
}

TEST(AccuracyLoss, InverseRoundTrips)
{
    for (double loss : {0.0, 0.5, 1.0, 2.0}) {
        const double recall = massRecallForLoss(loss);
        EXPECT_NEAR(accuracyLossPercent(recall), loss, 1e-9);
    }
}

TEST(OutputError, ZeroForIdentical)
{
    MatF a(3, 3, 1.0f);
    EXPECT_NEAR(outputError(a, a), 0.0, 1e-12);
}

TEST(MetricsIntegration, RecallImprovesWithK)
{
    auto w = testutil::makeWorkload(256, 16, /*headDim=*/64,
                                    /*tokenDim=*/128);
    // Noisy prediction: exact scores + noise.
    MatF noisy = w.scores;
    Rng rng = testutil::makeRng(7);
    for (auto &v : noisy.data())
        v += static_cast<float>(rng.gaussian(0.0, 1.0));

    double prev_recall = 0.0;
    for (int k : {8, 32, 128}) {
        auto pred = exactTopKRows(noisy, k);
        auto exact = exactTopKRows(w.scores, k);
        (void)exact;
        const double mass = softmaxMassRecall(w.scores, pred);
        EXPECT_GE(mass, prev_recall);
        prev_recall = mass;
    }
}

} // namespace
} // namespace sofa
