#include <gtest/gtest.h>

#include "baselines/gpu.h"
#include "baselines/tpu.h"

namespace sofa {
namespace {

AttentionShape
bigSlice()
{
    AttentionShape s;
    s.queries = 512;
    s.seq = 4096;
    s.headDim = 128;
    s.heads = 8;
    return s;
}

TEST(Gpu, DenseSlowerThanSparseModes)
{
    GpuModel gpu;
    auto shape = bigSlice();
    auto dense = gpu.run(shape, GpuMode::Dense);
    auto lp = gpu.run(shape, GpuMode::LP, 0.2);
    auto fa2 = gpu.run(shape, GpuMode::LPFlash2, 0.2);
    EXPECT_GT(dense.timeNs, lp.timeNs);
    EXPECT_GT(lp.timeNs, fa2.timeNs);
}

TEST(Gpu, ModeOrderingMatchesFig19)
{
    // Fig. 19(b): LP ~1.76x, LP+FA1 ~2.7x, LP+FA2 ~3.2x over dense.
    GpuModel gpu;
    auto shape = bigSlice();
    const double dense = gpu.run(shape, GpuMode::Dense).timeNs;
    const double lp = dense / gpu.run(shape, GpuMode::LP, 0.1).timeNs;
    const double fa1 =
        dense / gpu.run(shape, GpuMode::LPFlash1, 0.1).timeNs;
    const double fa2 =
        dense / gpu.run(shape, GpuMode::LPFlash2, 0.1).timeNs;
    const double soft =
        dense / gpu.run(shape, GpuMode::SofaSoft, 0.1).timeNs;
    EXPECT_GT(lp, 1.2);
    EXPECT_GT(fa1, lp);
    EXPECT_GT(fa2, fa1);
    EXPECT_GE(soft, fa2 * 0.95);
    EXPECT_LT(soft, 6.0); // GPU cannot exploit everything
}

TEST(Gpu, LowerKeepIsFaster)
{
    GpuModel gpu;
    auto shape = bigSlice();
    auto k10 = gpu.run(shape, GpuMode::LPFlash2, 0.1);
    auto k50 = gpu.run(shape, GpuMode::LPFlash2, 0.5);
    EXPECT_LT(k10.timeNs, k50.timeNs);
}

TEST(Gpu, PowerWithinDeviceEnvelope)
{
    GpuModel gpu;
    auto shape = bigSlice();
    for (auto mode : {GpuMode::Dense, GpuMode::LP, GpuMode::LPFlash2,
                      GpuMode::SofaSoft}) {
        auto r = gpu.run(shape, mode, 0.2);
        EXPECT_GE(r.powerW, gpu.config().idlePowerW);
        EXPECT_LE(r.powerW, gpu.config().peakPowerW);
    }
}

TEST(Gpu, EnergyConsistent)
{
    GpuModel gpu;
    auto r = gpu.run(bigSlice(), GpuMode::Dense);
    EXPECT_NEAR(r.energyPj, r.powerW * r.timeNs * 1e3, 1.0);
    EXPECT_GT(r.gopsPerWatt, 0.0);
}

TEST(Tpu, DenseCompetitiveSparseWorse)
{
    // The TPU handles dense matmul well but collapses on fine-grained
    // sparsity relative to the GPU (Section V-C).
    GpuModel gpu;
    TpuModel tpu;
    auto shape = bigSlice();
    const double gpu_gain =
        gpu.run(shape, GpuMode::Dense).timeNs /
        gpu.run(shape, GpuMode::SofaSoft, 0.2).timeNs;
    const double tpu_gain =
        tpu.run(shape, GpuMode::Dense).timeNs /
        tpu.run(shape, GpuMode::SofaSoft, 0.2).timeNs;
    EXPECT_GT(gpu_gain, tpu_gain);
}

TEST(Tpu, RunsAllModes)
{
    TpuModel tpu;
    auto shape = bigSlice();
    for (auto mode : {GpuMode::Dense, GpuMode::LP, GpuMode::LPFlash1,
                      GpuMode::LPFlash2, GpuMode::SofaSoft}) {
        auto r = tpu.run(shape, mode, 0.2);
        EXPECT_GT(r.timeNs, 0.0);
        EXPECT_GT(r.effectiveGops, 0.0);
    }
}

TEST(GpuDeath, InvalidKeepFraction)
{
    GpuModel gpu;
    EXPECT_DEATH(gpu.run(bigSlice(), GpuMode::LP, 0.0), "assertion");
    EXPECT_DEATH(gpu.run(bigSlice(), GpuMode::LP, 1.5), "assertion");
}

} // namespace
} // namespace sofa
