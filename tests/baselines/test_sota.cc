#include <gtest/gtest.h>

#include "baselines/sota.h"
#include "common/stats.h"

namespace sofa {
namespace {

TEST(Sota, EightBaselineRows)
{
    EXPECT_EQ(sotaTable().size(), 8u);
}

TEST(Sota, TableIIValuesTranscribed)
{
    auto fact = sotaByName("FACT");
    EXPECT_NEAR(fact.throughputGops, 928.0, 1e-9);
    EXPECT_NEAR(fact.areaMm2, 6.03, 1e-9);
    EXPECT_NEAR(fact.techNm, 28.0, 1e-9);
    EXPECT_NEAR(fact.freqGhz, 0.5, 1e-9);

    auto energon = sotaByName("Energon");
    EXPECT_NEAR(energon.corePowerW, 0.32, 1e-9);
    EXPECT_NEAR(energon.ioPowerW, 2.4, 1e-9);
}

TEST(Sota, CoreEfficiencyMatchesTable)
{
    // Table II core efficiencies: A3 1863 wait—use published ratios.
    auto a3 = sotaByName("A3");
    EXPECT_NEAR(a3.coreEfficiency(), 221.0 / 0.205, 1.0);
    auto elsa = sotaByName("ELSA");
    EXPECT_NEAR(elsa.coreEfficiency(), 1090.0 / 0.969, 1.0);
}

TEST(Sota, SofaRowMatchesTable)
{
    auto s = sofaRow();
    EXPECT_NEAR(s.throughputGops, 24423.0, 1e-9);
    EXPECT_NEAR(s.areaMm2, 5.69, 1e-9);
    EXPECT_NEAR(s.savedComputeFrac, 0.82, 1e-9);
    // Device efficiency ~ 24423 / 3.4 ~ 7183 GOPS/W.
    EXPECT_NEAR(s.deviceEfficiency(), 7183.0, 15.0);
    // Area efficiency ~ 4292 GOPS/mm2.
    EXPECT_NEAR(s.areaEfficiency(), 4292.0, 10.0);
}

TEST(Sota, ScaledCoreEfficiencyMatchesTableII)
{
    // The normalization rule reproduces the paper's printed scaled
    // core efficiencies (GOPS/W) within a few percent.
    const struct { const char *name; double table; } expected[] = {
        {"A3", 1863},      {"ELSA", 1944},    {"Sanger", 2342},
        {"DOTA", 817},     {"Energon", 7007}, {"DTATrans", 3071},
        {"SpAtten", 1915}, {"FACT", 2754},
    };
    for (const auto &e : expected) {
        const double got = sotaByName(e.name).scaledCoreEfficiency();
        EXPECT_NEAR(got / e.table, 1.0, 0.06) << e.name;
    }
    // SOFA at 28nm is unscaled: 24423 / 0.95 ~ 25708.
    EXPECT_NEAR(sofaRow().scaledCoreEfficiency(), 25708.0, 50.0);
}

TEST(Sota, ScaledDeviceEfficiencyMatchesTableII)
{
    // Device (core+IO) column, reported for the four designs with
    // published IO power.
    const struct { const char *name; double table; } expected[] = {
        {"A3", 300}, {"ELSA", 1004}, {"Energon", 450},
        {"SpAtten", 447},
    };
    for (const auto &e : expected) {
        const double got =
            sotaByName(e.name).scaledDeviceEfficiency();
        EXPECT_NEAR(got / e.table, 1.0, 0.06) << e.name;
    }
    EXPECT_NEAR(sofaRow().scaledDeviceEfficiency(), 7183.0, 20.0);
}

TEST(Sota, ScaledAreaEfficiencyMatchesTableII)
{
    const struct { const char *name; double table; } expected[] = {
        {"A3", 217},      {"ELSA", 1765},    {"Sanger", 522},
        {"DOTA", 683},    {"Energon", 709},  {"DTATrans", 1786},
        {"SpAtten", 474}, {"FACT", 154},
    };
    for (const auto &e : expected) {
        const double got = sotaByName(e.name).scaledAreaEfficiency();
        EXPECT_NEAR(got / e.table, 1.0, 0.06) << e.name;
    }
    EXPECT_NEAR(sofaRow().scaledAreaEfficiency(), 4292.0, 10.0);
}

TEST(Sota, SofaWinsEveryScaledComparison)
{
    const auto s = sofaRow();
    for (const auto &a : sotaTable()) {
        EXPECT_GT(s.scaledCoreEfficiency() /
                      a.scaledCoreEfficiency(), 3.0)
            << a.name;
        EXPECT_GT(s.scaledAreaEfficiency() /
                      a.scaledAreaEfficiency(), 2.0)
            << a.name;
        if (a.ioPowerW > 0.0) {
            EXPECT_GT(s.scaledDeviceEfficiency() /
                          a.scaledDeviceEfficiency(), 7.0)
                << a.name;
        }
    }
}

TEST(Sota, LatencyNormalizationMatchesPaperExample)
{
    // Paper: FACT at 928 GOPS / 500MHz / 512 muls, normalized to
    // 128 muls @ 1GHz, executes 137 GOPs in 2*137/928 s ~ 295 ms.
    auto fact = sotaByName("FACT");
    EXPECT_NEAR(fact.latencyMs(137.0), 2.0 * 137.0 / 928.0 * 1000.0,
                1.0);
}

TEST(Sota, SofaLatencyNearTableII)
{
    // Table II lists SOFA at 45 ms on the 137-GOPs Llama-7B slice.
    auto s = sofaRow();
    const double ms = s.latencyMs(137.0);
    EXPECT_GT(ms, 20.0);
    EXPECT_LT(ms, 70.0);
}

TEST(Sota, LatencyRatiosMatchPaper)
{
    // Paper: SOFA ~6.6x faster than FACT, ~8.5x than SpAtten.
    auto s = sofaRow();
    const double sofa_ms = s.latencyMs(137.0);
    EXPECT_NEAR(sotaByName("FACT").latencyMs(137.0) / sofa_ms, 6.6,
                1.5);
    EXPECT_NEAR(sotaByName("SpAtten").latencyMs(137.0) / sofa_ms, 8.5,
                2.0);
}

TEST(Sota, AverageDeviceEfficiencyGainNearPaper)
{
    // "15.8x average" energy-efficiency claim over the designs with
    // published device power.
    std::vector<double> gains;
    const double sofa_eff = sofaRow().scaledDeviceEfficiency();
    for (const auto &a : sotaTable()) {
        if (a.ioPowerW > 0.0)
            gains.push_back(sofa_eff / a.scaledDeviceEfficiency());
    }
    const double avg = geomean(gains);
    EXPECT_GT(avg, 10.0);
    EXPECT_LT(avg, 25.0);
}

TEST(SotaDeath, UnknownNameFatal)
{
    EXPECT_EXIT(sotaByName("Unknown"), ::testing::ExitedWithCode(1),
                "unknown accelerator");
}

} // namespace
} // namespace sofa
