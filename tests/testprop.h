/**
 * @file
 * Randomized property-test helpers: deterministic seeded case
 * iteration plus edge-biased shape and sparsity samplers for the
 * kernel bit-exactness layer (tests/tensor/test_kernels_prop.cc and
 * friends).
 *
 * Each case gets its own Rng derived from testutil::kTestSeed and the
 * case index, so a failure reproduces from the printed case number
 * alone. Size samplers are biased toward the boundaries SIMD kernels
 * get wrong — empty, one element, one below/at/above a vector lane
 * multiple — because a uniform draw essentially never lands there.
 */

#ifndef SOFA_TESTS_TESTPROP_H
#define SOFA_TESTS_TESTPROP_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "testutil.h"

namespace sofa {
namespace testprop {

/**
 * Run fn(case_index, rng) for @p cases deterministic cases. The
 * per-case seed mixes the case index through a splitmix-style odd
 * constant so neighbouring cases get unrelated streams.
 */
template <typename Fn>
void
forEachSeededCase(int cases, const Fn &fn)
{
    for (int c = 0; c < cases; ++c) {
        Rng rng(testutil::kTestSeed ^
                (0x9E3779B97F4A7C15ull *
                 static_cast<std::uint64_t>(c + 1)));
        fn(c, rng);
    }
}

/**
 * Length in [min_n, max_n], biased toward SIMD edge cases: empty,
 * single element, and the -1/0/+1 neighbourhood of a multiple of
 * @p lane (half the draws), else uniform.
 */
inline std::size_t
edgeSize(Rng &rng, std::size_t min_n, std::size_t max_n,
         std::size_t lane = 8)
{
    if (max_n <= min_n)
        return min_n;
    if (rng.bernoulli(0.5)) {
        const std::size_t mult = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(
                                  max_n / (lane ? lane : 1))));
        const std::int64_t off = rng.uniformInt(-1, 1);
        const std::int64_t cand =
            static_cast<std::int64_t>(mult * lane) + off;
        if (cand >= static_cast<std::int64_t>(min_n) &&
            cand <= static_cast<std::int64_t>(max_n))
            return static_cast<std::size_t>(cand);
    }
    return static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::int64_t>(min_n),
                       static_cast<std::int64_t>(max_n)));
}

/**
 * Gaussian buffer with a randomly drawn zero fraction (0, light, or
 * heavy sparsity per case) — the ragged-sparsity shapes the DLZS
 * zero-eliminator and SADS clip filter branch on.
 */
inline std::vector<float>
sparseFloats(Rng &rng, std::size_t n)
{
    const double zero_frac =
        rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 0.9);
    std::vector<float> x(n);
    for (auto &v : x) {
        v = rng.bernoulli(zero_frac)
                ? 0.0f
                : static_cast<float>(rng.gaussian());
    }
    return x;
}

/** Signed integer buffer with the same ragged-sparsity draw. */
template <typename T>
inline std::vector<T>
sparseInts(Rng &rng, std::size_t n, std::int64_t lo, std::int64_t hi)
{
    const double zero_frac =
        rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 0.9);
    std::vector<T> x(n);
    for (auto &v : x) {
        v = rng.bernoulli(zero_frac)
                ? static_cast<T>(0)
                : static_cast<T>(rng.uniformInt(lo, hi));
    }
    return x;
}

/** One step of a randomized allocator schedule (the op vocabulary of
 * serve/kvpool; tests/serve/test_kvpool_prop.cc). */
enum class AllocOp {
    Acquire, ///< reserve pages (may evict idle LRU residents)
    Pin,     ///< protect from eviction for a run
    Unpin,   ///< back to idle/evictable
    Retire,  ///< finished: idle reusable cache, no cold marker
    Release, ///< free immediately
};

struct AllocStep
{
    AllocOp op = AllocOp::Acquire;
    std::uint64_t id = 0;
    std::int64_t tokens = 0; ///< Acquire only
    bool pinNow = false;     ///< Acquire only
};

/**
 * A seeded alloc/pin/unpin/retire/release op sequence over a small
 * id universe, acquire-heavy so pools churn under pressure. Token
 * demands are edge-biased around @p page_tokens multiples (the
 * rounding boundary pagesFor gets wrong first); ids repeat so
 * re-acquire, double-release and evict-then-return paths all occur.
 */
inline std::vector<AllocStep>
allocOpSequence(Rng &rng, int steps, int max_ids,
                std::int64_t max_tokens,
                std::int64_t page_tokens = 16)
{
    std::vector<AllocStep> seq;
    seq.reserve(static_cast<std::size_t>(steps));
    for (int i = 0; i < steps; ++i) {
        AllocStep s;
        const double d = rng.uniform(0.0, 1.0);
        if (d < 0.45)
            s.op = AllocOp::Acquire;
        else if (d < 0.60)
            s.op = AllocOp::Pin;
        else if (d < 0.75)
            s.op = AllocOp::Unpin;
        else if (d < 0.87)
            s.op = AllocOp::Retire;
        else
            s.op = AllocOp::Release;
        s.id = static_cast<std::uint64_t>(
            rng.uniformInt(0, std::max(1, max_ids) - 1));
        if (s.op == AllocOp::Acquire) {
            s.tokens = static_cast<std::int64_t>(edgeSize(
                rng, 0, static_cast<std::size_t>(max_tokens),
                static_cast<std::size_t>(page_tokens)));
            s.pinNow = rng.bernoulli(0.5);
        }
        seq.push_back(s);
    }
    return seq;
}

} // namespace testprop
} // namespace sofa

#endif // SOFA_TESTS_TESTPROP_H
