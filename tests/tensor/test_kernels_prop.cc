/**
 * Randomized bit-exactness properties of the runtime-dispatched SIMD
 * kernels: for seeded random shapes (empty, single-element,
 * non-multiple-of-lane, ragged sparsity) every dispatched kernel must
 * be bit-identical to its scalar baseline — same float/int bits, same
 * survivor indices, same OpCounter tallies. On hosts without AVX2 the
 * forced level clamps to Scalar and the comparisons are trivially
 * (but still deterministically) exercised.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/dlzs.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"
#include "testprop.h"

namespace sofa {
namespace {

/** Bitwise equality for doubles (0.0 == -0.0 must *fail*). */
bool
sameBitsD(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool
sameBitsF(float a, float b)
{
    return std::memcmp(&a, &b, sizeof(float)) == 0;
}

TEST(KernelsProp, DotBlockSimdBitIdenticalToScalar)
{
    int simd_cases = 0;
    testprop::forEachSeededCase(200, [&](int c, Rng &rng) {
        const std::size_t n = testprop::edgeSize(rng, 0, 300);
        const std::vector<float> a = testprop::sparseFloats(rng, n);
        const std::vector<float> b = testprop::sparseFloats(rng, n);

        double ref, got;
        {
            simd::ScopedLevel lvl(simd::Level::Scalar);
            ref = dotBlock(a.data(), b.data(), n);
        }
        {
            simd::ScopedLevel lvl(simd::Level::Avx2);
            if (simd::active() == simd::Level::Avx2)
                ++simd_cases;
            got = dotBlock(a.data(), b.data(), n);
        }
        ASSERT_TRUE(sameBitsD(ref, got))
            << "case " << c << " n=" << n << " scalar=" << ref
            << " simd=" << got;
        // The scalar dispatch path is the exported baseline.
        ASSERT_TRUE(
            sameBitsD(ref, dotBlockScalar(a.data(), b.data(), n)))
            << "case " << c;
    });
    if (simd::detected() == simd::Level::Avx2) {
        EXPECT_EQ(simd_cases, 200);
    }
}

TEST(KernelsProp, MinmaxBlockSimdBitIdenticalToScalar)
{
    testprop::forEachSeededCase(200, [&](int c, Rng &rng) {
        const std::size_t n = testprop::edgeSize(rng, 1, 300);
        std::vector<float> a = testprop::sparseFloats(rng, n);
        // Negative zero stresses the min/max tie semantics.
        if (n > 2 && rng.bernoulli(0.25))
            a[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(n) -
                                      1))] = -0.0f;

        float ref_mn, ref_mx, got_mn, got_mx;
        {
            simd::ScopedLevel lvl(simd::Level::Scalar);
            minmaxBlock(a.data(), n, &ref_mn, &ref_mx);
        }
        {
            simd::ScopedLevel lvl(simd::Level::Avx2);
            minmaxBlock(a.data(), n, &got_mn, &got_mx);
        }
        ASSERT_TRUE(sameBitsF(ref_mn, got_mn) &&
                    sameBitsF(ref_mx, got_mx))
            << "case " << c << " n=" << n;

        float base_mn, base_mx;
        minmaxBlockScalar(a.data(), n, &base_mn, &base_mx);
        ASSERT_TRUE(sameBitsF(ref_mn, base_mn) &&
                    sameBitsF(ref_mx, base_mx))
            << "case " << c;
    });
}

TEST(KernelsProp, ScanSurvivorsSimdMatchesScalar)
{
    testprop::forEachSeededCase(200, [&](int c, Rng &rng) {
        const std::size_t n = testprop::edgeSize(rng, 0, 120);
        std::vector<float> x = testprop::sparseFloats(rng, n);
        if (n > 0 && rng.bernoulli(0.2))
            x[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(n) - 1))] =
                std::numeric_limits<float>::quiet_NaN();
        float threshold;
        switch (rng.uniformInt(0, 3)) {
        case 0:
            threshold = -std::numeric_limits<float>::infinity();
            break;
        case 1:
            threshold = std::numeric_limits<float>::infinity();
            break;
        default:
            threshold = static_cast<float>(rng.gaussian());
            break;
        }

        std::vector<std::int32_t> ref_idx(n + 1), got_idx(n + 1);
        std::size_t ref_kept, got_kept;
        {
            simd::ScopedLevel lvl(simd::Level::Scalar);
            ref_kept = simd::scanSurvivors(x.data(), n, threshold,
                                           ref_idx.data());
        }
        {
            simd::ScopedLevel lvl(simd::Level::Avx2);
            got_kept = simd::scanSurvivors(x.data(), n, threshold,
                                           got_idx.data());
        }
        ASSERT_EQ(ref_kept, got_kept) << "case " << c << " n=" << n;
        for (std::size_t i = 0; i < ref_kept; ++i)
            ASSERT_EQ(ref_idx[i], got_idx[i])
                << "case " << c << " survivor " << i;
        ASSERT_EQ(ref_kept,
                  simd::scanSurvivorsScalar(x.data(), n, threshold,
                                            ref_idx.data()));
    });
}

/** Op tallies must agree field by field, not just in total. */
void
expectSameOps(const OpCounter &a, const OpCounter &b, int c)
{
    ASSERT_EQ(a.adds(), b.adds()) << "case " << c;
    ASSERT_EQ(a.cmps(), b.cmps()) << "case " << c;
    ASSERT_EQ(a.shifts(), b.shifts()) << "case " << c;
    ASSERT_EQ(a.muls(), b.muls()) << "case " << c;
    ASSERT_EQ(a.divs(), b.divs()) << "case " << c;
    ASSERT_EQ(a.exps(), b.exps()) << "case " << c;
}

TEST(KernelsProp, DlzsKPredictionSimdBitExactWithExactOps)
{
    testprop::forEachSeededCase(60, [&](int c, Rng &rng) {
        const std::size_t S = testprop::edgeSize(rng, 0, 24, 4);
        const std::size_t n = testprop::edgeSize(rng, 1, 24, 4);
        const std::size_t d = testprop::edgeSize(rng, 0, 40, 4);

        MatI8 tokens(S, n);
        const std::vector<std::int8_t> tok =
            testprop::sparseInts<std::int8_t>(rng, S * n, -128, 127);
        std::copy(tok.begin(), tok.end(), tokens.data().begin());
        MatI8 wk(n, d);
        const std::vector<std::int8_t> w =
            testprop::sparseInts<std::int8_t>(rng, n * d, -128, 127);
        std::copy(w.begin(), w.end(), wk.data().begin());
        const LzMatrix wk_lz = lzEncodeI8(wk);

        OpCounter ref_ops, got_ops;
        const MatI64 ref =
            dlzsKPredictionScalar(tokens, wk_lz, &ref_ops);
        MatI64 got;
        {
            simd::ScopedLevel lvl(simd::Level::Avx2);
            got = dlzsKPrediction(tokens, wk_lz, &got_ops);
        }
        ASSERT_EQ(ref.rows(), got.rows());
        ASSERT_EQ(ref.cols(), got.cols());
        for (std::size_t i = 0; i < ref.data().size(); ++i)
            ASSERT_EQ(ref.data()[i], got.data()[i])
                << "case " << c << " elem " << i;
        expectSameOps(ref_ops, got_ops, c);
    });
}

TEST(KernelsProp, DlzsAPredictionSimdBitExactWithExactOps)
{
    testprop::forEachSeededCase(60, [&](int c, Rng &rng) {
        const std::size_t T = testprop::edgeSize(rng, 0, 12, 4);
        const std::size_t S = testprop::edgeSize(rng, 0, 24, 4);
        const std::size_t d = testprop::edgeSize(rng, 1, 40, 4);

        MatI16 q(T, d);
        // Full int16 range including INT16_MIN: |k| << 16 reaching
        // 2^31 is the overflow edge the int64 lanes must absorb.
        const std::vector<std::int16_t> qv =
            testprop::sparseInts<std::int16_t>(rng, T * d, -32768,
                                               32767);
        std::copy(qv.begin(), qv.end(), q.data().begin());
        MatI16 k_hat(S, d);
        const std::vector<std::int16_t> kv =
            testprop::sparseInts<std::int16_t>(rng, S * d, -32768,
                                               32767);
        std::copy(kv.begin(), kv.end(), k_hat.data().begin());
        const LzMatrix q_lz = lzEncodeI16(q);

        OpCounter ref_ops, got_ops;
        const MatI64 ref =
            dlzsAPredictionScalar(q_lz, k_hat, &ref_ops);
        MatI64 got;
        {
            simd::ScopedLevel lvl(simd::Level::Avx2);
            got = dlzsAPrediction(q_lz, k_hat, &got_ops);
        }
        ASSERT_EQ(ref.rows(), got.rows());
        ASSERT_EQ(ref.cols(), got.cols());
        for (std::size_t i = 0; i < ref.data().size(); ++i)
            ASSERT_EQ(ref.data()[i], got.data()[i])
                << "case " << c << " elem " << i;
        expectSameOps(ref_ops, got_ops, c);
    });
}

TEST(KernelsProp, SimdLevelClampAndRestore)
{
    const simd::Level before = simd::active();
    {
        simd::ScopedLevel lvl(simd::Level::Scalar);
        EXPECT_EQ(simd::active(), simd::Level::Scalar);
        {
            simd::ScopedLevel inner(simd::Level::Avx2);
            // Nested override wins while alive, clamped to the CPU.
            EXPECT_EQ(simd::active(),
                      simd::detected() == simd::Level::Avx2
                          ? simd::Level::Avx2
                          : simd::Level::Scalar);
        }
        EXPECT_EQ(simd::active(), simd::Level::Scalar);
    }
    EXPECT_EQ(simd::active(), before);
    EXPECT_STREQ(simd::levelName(simd::Level::Scalar), "scalar");
    EXPECT_STREQ(simd::levelName(simd::Level::Avx2), "avx2");
}

} // namespace
} // namespace sofa
