#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.h"

namespace sofa {
namespace {

TEST(Matrix, ConstructAndAccess)
{
    MatF m(2, 3, 1.5f);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
    m(0, 1) = 7.0f;
    EXPECT_FLOAT_EQ(m.at(0, 1), 7.0f);
}

TEST(Matrix, BytesAccounting)
{
    MatF m(4, 4);
    EXPECT_EQ(m.bytes(), 64u);
    MatI8 m8(4, 4);
    EXPECT_EQ(m8.bytes(), 16u);
}

TEST(MatrixDeath, OutOfBoundsAtPanics)
{
    MatF m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "assertion");
    EXPECT_DEATH(m.at(0, 2), "assertion");
}

TEST(Matrix, RowPtrContiguity)
{
    MatF m(3, 4);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            m(r, c) = static_cast<float>(r * 10 + c);
    const float *row1 = m.rowPtr(1);
    EXPECT_FLOAT_EQ(row1[0], 10.0f);
    EXPECT_FLOAT_EQ(row1[3], 13.0f);
}

TEST(Matmul, IdentityIsNoop)
{
    MatF a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    MatF eye(2, 2, 0.0f);
    eye(0, 0) = eye(1, 1) = 1.0f;
    MatF c = matmul(a, eye);
    EXPECT_EQ(c, a);
}

TEST(Matmul, KnownProduct)
{
    MatF a(2, 3);
    MatF b(3, 2);
    float av[] = {1, 2, 3, 4, 5, 6};
    float bv[] = {7, 8, 9, 10, 11, 12};
    std::copy(av, av + 6, a.data().begin());
    std::copy(bv, bv + 6, b.data().begin());
    MatF c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(MatmulNT, EqualsMatmulWithTranspose)
{
    MatF a(3, 4);
    MatF b(5, 4);
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] = static_cast<float>(i) * 0.5f - 3.0f;
    for (std::size_t i = 0; i < b.size(); ++i)
        b.data()[i] = static_cast<float>(i % 7) - 2.0f;
    MatF c1 = matmulNT(a, b);
    MatF c2 = matmul(a, transpose(b));
    ASSERT_EQ(c1.rows(), c2.rows());
    ASSERT_EQ(c1.cols(), c2.cols());
    for (std::size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-4);
}

TEST(Transpose, Involution)
{
    MatF a(3, 5);
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] = static_cast<float>(i);
    EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Norms, MaxAbs)
{
    MatF a(2, 2);
    a(0, 0) = -9.0f;
    a(1, 1) = 3.0f;
    EXPECT_FLOAT_EQ(maxAbs(a), 9.0f);
    EXPECT_FLOAT_EQ(maxAbs(MatF{}), 0.0f);
}

TEST(Norms, Frobenius)
{
    MatF a(1, 2);
    a(0, 0) = 3.0f;
    a(0, 1) = 4.0f;
    EXPECT_NEAR(frobenius(a), 5.0, 1e-9);
}

TEST(Norms, RelativeErrorZeroForEqual)
{
    MatF a(2, 2, 2.0f);
    EXPECT_NEAR(relativeError(a, a), 0.0, 1e-12);
}

TEST(Norms, RelativeErrorScale)
{
    MatF exact(1, 1);
    exact(0, 0) = 10.0f;
    MatF approx(1, 1);
    approx(0, 0) = 11.0f;
    EXPECT_NEAR(relativeError(approx, exact), 0.1, 1e-6);
}

TEST(MatmulDeath, ShapeMismatchPanics)
{
    MatF a(2, 3), b(2, 2);
    EXPECT_DEATH(matmul(a, b), "assertion");
    EXPECT_DEATH(matmulNT(a, b), "assertion");
}

} // namespace
} // namespace sofa
