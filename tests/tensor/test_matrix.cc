#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.h"

namespace sofa {
namespace {

TEST(Matrix, ConstructAndAccess)
{
    MatF m(2, 3, 1.5f);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
    m(0, 1) = 7.0f;
    EXPECT_FLOAT_EQ(m.at(0, 1), 7.0f);
}

TEST(Matrix, BytesAccounting)
{
    MatF m(4, 4);
    EXPECT_EQ(m.bytes(), 64u);
    MatI8 m8(4, 4);
    EXPECT_EQ(m8.bytes(), 16u);
}

TEST(MatrixDeath, OutOfBoundsAtPanics)
{
    MatF m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "assertion");
    EXPECT_DEATH(m.at(0, 2), "assertion");
}

TEST(Matrix, RowPtrContiguity)
{
    MatF m(3, 4);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            m(r, c) = static_cast<float>(r * 10 + c);
    const float *row1 = m.rowPtr(1);
    EXPECT_FLOAT_EQ(row1[0], 10.0f);
    EXPECT_FLOAT_EQ(row1[3], 13.0f);
}

TEST(Matmul, IdentityIsNoop)
{
    MatF a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    MatF eye(2, 2, 0.0f);
    eye(0, 0) = eye(1, 1) = 1.0f;
    MatF c = matmul(a, eye);
    EXPECT_EQ(c, a);
}

TEST(Matmul, KnownProduct)
{
    MatF a(2, 3);
    MatF b(3, 2);
    float av[] = {1, 2, 3, 4, 5, 6};
    float bv[] = {7, 8, 9, 10, 11, 12};
    std::copy(av, av + 6, a.data().begin());
    std::copy(bv, bv + 6, b.data().begin());
    MatF c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(MatmulNT, EqualsMatmulWithTranspose)
{
    MatF a(3, 4);
    MatF b(5, 4);
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] = static_cast<float>(i) * 0.5f - 3.0f;
    for (std::size_t i = 0; i < b.size(); ++i)
        b.data()[i] = static_cast<float>(i % 7) - 2.0f;
    MatF c1 = matmulNT(a, b);
    MatF c2 = matmul(a, transpose(b));
    ASSERT_EQ(c1.rows(), c2.rows());
    ASSERT_EQ(c1.cols(), c2.cols());
    for (std::size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-4);
}

TEST(Transpose, Involution)
{
    MatF a(3, 5);
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] = static_cast<float>(i);
    EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Norms, MaxAbs)
{
    MatF a(2, 2);
    a(0, 0) = -9.0f;
    a(1, 1) = 3.0f;
    EXPECT_FLOAT_EQ(maxAbs(a), 9.0f);
    EXPECT_FLOAT_EQ(maxAbs(MatF{}), 0.0f);
}

TEST(Norms, Frobenius)
{
    MatF a(1, 2);
    a(0, 0) = 3.0f;
    a(0, 1) = 4.0f;
    EXPECT_NEAR(frobenius(a), 5.0, 1e-9);
}

TEST(Norms, RelativeErrorZeroForEqual)
{
    MatF a(2, 2, 2.0f);
    EXPECT_NEAR(relativeError(a, a), 0.0, 1e-12);
}

TEST(Norms, RelativeErrorScale)
{
    MatF exact(1, 1);
    exact(0, 0) = 10.0f;
    MatF approx(1, 1);
    approx(0, 0) = 11.0f;
    EXPECT_NEAR(relativeError(approx, exact), 0.1, 1e-6);
}

TEST(MatmulDeath, ShapeMismatchPanics)
{
    MatF a(2, 3), b(2, 2);
    EXPECT_DEATH(matmul(a, b), "assertion");
    EXPECT_DEATH(matmulNT(a, b), "assertion");
}

TEST(Matrix, DefaultIsEmpty)
{
    MatF m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.bytes(), 0u);
}

TEST(Matrix, EqualityAndInequality)
{
    MatF a(2, 2, 1.0f);
    MatF b(2, 2, 1.0f);
    EXPECT_EQ(a, b);
    b(1, 1) = 2.0f;
    EXPECT_NE(a, b);
    // Same payload, different shape: not equal.
    MatF wide(1, 4, 1.0f);
    MatF tall(4, 1, 1.0f);
    EXPECT_NE(wide, tall);
    EXPECT_EQ(MatF{}, MatF{});
}

TEST(Matrix, ZeroDimensionedShapes)
{
    // 0xN and Nx0 are distinct from 0x0 but all hold no data.
    MatF zr(0, 5);
    MatF zc(5, 0);
    EXPECT_TRUE(zr.empty());
    EXPECT_TRUE(zc.empty());
    EXPECT_EQ(zr.cols(), 5u);
    EXPECT_EQ(zc.rows(), 5u);
    EXPECT_NE(zr, zc);
}

TEST(Matmul, EmptyOperandsYieldEmptyProduct)
{
    // (0x3) * (3x2) -> 0x2; inner dimension still matches.
    MatF a(0, 3), b(3, 2, 1.0f);
    MatF c = matmul(a, b);
    EXPECT_EQ(c.rows(), 0u);
    EXPECT_EQ(c.cols(), 2u);
    // (2x0) * (0x3) -> 2x3 of zeros (empty accumulation).
    MatF d = matmul(MatF(2, 0), MatF(0, 3));
    EXPECT_EQ(d.rows(), 2u);
    EXPECT_EQ(d.cols(), 3u);
    for (float v : d.data())
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Matmul, OneByNRowVector)
{
    // (1xN) * (Nx1) is the dot product.
    MatF row(1, 4);
    MatF col(4, 1);
    for (std::size_t i = 0; i < 4; ++i) {
        row(0, i) = static_cast<float>(i + 1);
        col(i, 0) = 2.0f;
    }
    MatF c = matmul(row, col);
    ASSERT_EQ(c.rows(), 1u);
    ASSERT_EQ(c.cols(), 1u);
    EXPECT_FLOAT_EQ(c(0, 0), 20.0f);
}

TEST(Transpose, OneByNAndEmpty)
{
    MatF row(1, 3);
    row(0, 0) = 1;
    row(0, 1) = 2;
    row(0, 2) = 3;
    MatF col = transpose(row);
    EXPECT_EQ(col.rows(), 3u);
    EXPECT_EQ(col.cols(), 1u);
    EXPECT_FLOAT_EQ(col(2, 0), 3.0f);

    MatF e = transpose(MatF{});
    EXPECT_TRUE(e.empty());
}

TEST(MatmulSparseLhs, MatchesDenseMatmulOnSparseInput)
{
    // 70% structural zeros in the left operand: the zero-skip
    // variant must agree with the dense kernel up to summation-order
    // rounding.
    MatF a(13, 29);
    MatF b(29, 17);
    unsigned state = 12345;
    auto next = [&state] {
        state = state * 1664525u + 1013904223u;
        return state;
    };
    for (auto &x : a.data())
        x = (next() % 10 < 7)
                ? 0.0f
                : static_cast<float>(next() % 100) * 0.01f - 0.5f;
    for (auto &x : b.data())
        x = static_cast<float>(next() % 100) * 0.02f - 1.0f;
    const MatF dense = matmul(a, b);
    const MatF sparse = matmulSparseLhs(a, b);
    ASSERT_EQ(dense.rows(), sparse.rows());
    ASSERT_EQ(dense.cols(), sparse.cols());
    for (std::size_t i = 0; i < dense.size(); ++i)
        EXPECT_NEAR(dense.data()[i], sparse.data()[i], 1e-4) << i;
}

TEST(MatmulSparseLhs, AllZeroLhsGivesZeroProduct)
{
    const MatF a(4, 6, 0.0f);
    const MatF b(6, 5, 3.0f);
    const MatF c = matmulSparseLhs(a, b);
    for (const float v : c.data())
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(MatmulSparseLhs, ShapeMismatchPanics)
{
    MatF a(2, 3), b(2, 2);
    EXPECT_DEATH(matmulSparseLhs(a, b), "assertion");
}

TEST(Norms, EmptyMatricesHaveZeroError)
{
    EXPECT_NEAR(frobenius(MatF{}), 0.0, 1e-12);
    EXPECT_NEAR(relativeError(MatF{}, MatF{}), 0.0, 1e-12);
}

} // namespace
} // namespace sofa
