#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/threadpool.h"
#include "tensor/kernels.h"
#include "testutil.h"

namespace sofa {
namespace {

using testutil::randomMat;

/** (m, n, k) shapes chosen to straddle every blocking boundary:
 * single rows/columns, sizes far below / at / just past the panel and
 * unroll widths, and empty dimensions. */
struct Shape
{
    std::size_t m, n, k;
};

const Shape kShapes[] = {
    {1, 1, 1},     {1, 7, 5},    {5, 1, 7},     {7, 5, 1},
    {17, 33, 65},  {64, 64, 64}, {129, 65, 33}, {128, 256, 64},
    {3, 530, 9},   {2, 2, 1030}, {0, 5, 3},     {5, 0, 3},
    {5, 3, 0},
};

// Registered before any test that can engage the thread pool so the
// fork-based death machinery never runs with live worker threads.
TEST(KernelsDeath, ShapeMismatchPanics)
{
    MatF a(2, 3), b(2, 2);
    EXPECT_DEATH(matmulBlocked(a, b), "assertion");
    EXPECT_DEATH(matmulNTBlocked(a, b), "assertion");
}

TEST(KernelsBlocked, MatmulNTMatchesNaiveAcrossShapes)
{
    for (const auto &s : kShapes) {
        const MatF a = randomMat(s.m, s.k, 1);
        const MatF b = randomMat(s.n, s.k, 2);
        const MatF naive = matmulNTNaive(a, b);
        const MatF blocked = matmulNTBlocked(a, b);
        ASSERT_TRUE(testutil::MatrixNear(blocked, naive, 1e-5))
            << "m=" << s.m << " n=" << s.n << " k=" << s.k;
    }
}

TEST(KernelsBlocked, MatmulMatchesNaiveAcrossShapes)
{
    for (const auto &s : kShapes) {
        const MatF a = randomMat(s.m, s.k, 3);
        const MatF b = randomMat(s.k, s.n, 4);
        const MatF naive = matmulNaive(a, b);
        const MatF blocked = matmulBlocked(a, b);
        ASSERT_TRUE(testutil::MatrixNear(blocked, naive, 1e-5))
            << "m=" << s.m << " n=" << s.n << " k=" << s.k;
    }
}

TEST(KernelsBlocked, TransposeMatchesNaiveExactly)
{
    for (const auto &s : kShapes) {
        const MatF a = randomMat(s.m, s.n, 5);
        EXPECT_EQ(transposeBlocked(a), transposeNaive(a));
    }
    // Tile-straddling rectangle.
    const MatF a = randomMat(100, 37, 6);
    EXPECT_EQ(transposeBlocked(a), transposeNaive(a));
}

TEST(KernelsThreaded, TiledIsBitExactVsBlocked)
{
    // Large enough that the pool's parallel path engages whenever
    // more than one thread is available; every per-row computation is
    // identical to the serial blocked kernel, so results must be
    // bit-exact equal, not merely near.
    const MatF a = randomMat(257, 96, 7);
    const MatF b = randomMat(193, 96, 8);
    EXPECT_EQ(matmulNTTiled(a, b), matmulNTBlocked(a, b));

    const MatF c = randomMat(257, 96, 9);
    const MatF d = randomMat(96, 193, 10);
    EXPECT_EQ(matmulTiled(c, d), matmulBlocked(c, d));
}

TEST(KernelsThreaded, SerialModeGivesIdenticalResults)
{
    // Same-process determinism check: forcing the serial path must
    // reproduce the (potentially threaded) result bit for bit.
    const MatF a = randomMat(300, 64, 11);
    const MatF b = randomMat(300, 64, 12);
    const MatF threaded = matmulNT(a, b);
    MatF serial;
    {
        ThreadPool::ScopedSerial guard;
        serial = matmulNT(a, b);
    }
    EXPECT_EQ(threaded, serial);
}

TEST(KernelsThreaded, ExplicitPoolShardsAreDeterministic)
{
    // A dedicated 4-thread pool (real threads even on 1-core
    // machines): repeated runs of the same sharded sum must agree.
    ThreadPool pool(4);
    const std::size_t n = 10007;
    auto run = [&] {
        std::vector<std::int64_t> partial(
            static_cast<std::size_t>(pool.threads()), 0);
        pool.parallelFor(n, 1,
                         [&](std::size_t b, std::size_t e, int shard) {
                             std::int64_t s = 0;
                             for (std::size_t i = b; i < e; ++i)
                                 s += static_cast<std::int64_t>(i);
                             partial[static_cast<std::size_t>(shard)] =
                                 s;
                         });
        std::int64_t total = 0;
        for (const auto p : partial)
            total += p;
        return total;
    };
    const std::int64_t expected =
        static_cast<std::int64_t>(n) * (n - 1) / 2;
    EXPECT_EQ(run(), expected);
    EXPECT_EQ(run(), expected);
}

TEST(DotBlock, MatchesSerialDotProduct)
{
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{3},
          std::size_t{4}, std::size_t{7}, std::size_t{64},
          std::size_t{1001}}) {
        const MatF a = randomMat(1, n, 13);
        const MatF b = randomMat(1, n, 14);
        double ref = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            ref += static_cast<double>(a(0, i)) * b(0, i);
        const double got = dotBlock(a.rowPtr(0), b.rowPtr(0), n);
        EXPECT_NEAR(got, ref, 1e-9 * (1.0 + std::abs(ref))) << n;
    }
}

TEST(MinmaxBlock, MatchesSerialScanExactly)
{
    // min/max are order-independent: the blocked scan must be
    // bit-identical to a sequential one at every lane boundary.
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{2}, std::size_t{7},
          std::size_t{8}, std::size_t{9}, std::size_t{64},
          std::size_t{1001}}) {
        const MatF a = randomMat(1, n, 21);
        float ref_mn = a(0, 0), ref_mx = a(0, 0);
        for (std::size_t i = 1; i < n; ++i) {
            ref_mn = std::min(ref_mn, a(0, i));
            ref_mx = std::max(ref_mx, a(0, i));
        }
        float mn = 0.0f, mx = 0.0f;
        minmaxBlock(a.rowPtr(0), n, &mn, &mx);
        EXPECT_EQ(mn, ref_mn) << n;
        EXPECT_EQ(mx, ref_mx) << n;
    }
}

TEST(MinmaxBlock, ConstantAndExtremeRows)
{
    const MatF flat(1, 37, 2.5f);
    float mn = 0.0f, mx = 0.0f;
    minmaxBlock(flat.rowPtr(0), 37, &mn, &mx);
    EXPECT_EQ(mn, 2.5f);
    EXPECT_EQ(mx, 2.5f);

    MatF spiked(1, 37, 0.0f);
    spiked(0, 36) = -7.0f; // extremes in the scalar tail
    minmaxBlock(spiked.rowPtr(0), 37, &mn, &mx);
    EXPECT_EQ(mn, -7.0f);
    EXPECT_EQ(mx, 0.0f);
}

} // namespace
} // namespace sofa
