#include <gtest/gtest.h>

#include <cmath>

#include "tensor/quantize.h"

namespace sofa {
namespace {

TEST(QuantizeI8, RoundTripSmallError)
{
    MatF m(4, 4);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = std::sin(static_cast<float>(i)) * 3.0f;
    QuantI8 q = quantizeI8(m);
    MatF back = dequantize(q);
    // Max error is half a quantization step.
    const float step = q.scale;
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_NEAR(back.data()[i], m.data()[i], step * 0.51f);
}

TEST(QuantizeI8, MaxAbsMapsToRangeTop)
{
    MatF m(1, 3);
    m(0, 0) = -12.7f;
    m(0, 1) = 0.0f;
    m(0, 2) = 6.0f;
    QuantI8 q = quantizeI8(m);
    EXPECT_EQ(q.values(0, 0), -127);
    EXPECT_EQ(q.values(0, 1), 0);
}

TEST(QuantizeI16, HigherPrecisionThanI8)
{
    MatF m(8, 8);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = std::cos(static_cast<float>(i) * 0.37f);
    QuantI8 q8 = quantizeI8(m);
    QuantI16 q16 = quantizeI16(m);
    const double err8 = relativeError(dequantize(q8), m);
    const double err16 = relativeError(dequantize(q16), m);
    EXPECT_LT(err16, err8 / 50.0);
}

TEST(Quantize, AllZerosStable)
{
    MatF m(2, 2, 0.0f);
    QuantI8 q = quantizeI8(m);
    EXPECT_FLOAT_EQ(q.scale, 1.0f);
    for (auto v : q.values.data())
        EXPECT_EQ(v, 0);
}

TEST(TruncateToI16, NoShiftWhenFits)
{
    MatI64 m(1, 3);
    m(0, 0) = 100;
    m(0, 1) = -32768;
    m(0, 2) = 32767;
    int shift = -1;
    MatI16 t = truncateToI16(m, &shift);
    // 32768 magnitude forces one shift (32767 is the max).
    EXPECT_EQ(shift, 1);
    EXPECT_EQ(t(0, 0), 50);
}

TEST(TruncateToI16, LargeValuesShifted)
{
    MatI64 m(1, 2);
    m(0, 0) = 1 << 20;
    m(0, 1) = -(1 << 19);
    int shift = 0;
    MatI16 t = truncateToI16(m, &shift);
    EXPECT_GT(shift, 0);
    EXPECT_EQ(t(0, 0), (1 << 20) >> shift);
    // Ordering and sign are preserved.
    EXPECT_GT(t(0, 0), 0);
    EXPECT_LT(t(0, 1), 0);
}

TEST(QuantizeI16, RoundTripBoundedByHalfStep)
{
    MatF m(1, 5);
    m(0, 0) = -100.0f;
    m(0, 1) = -0.003f;
    m(0, 2) = 0.0f;
    m(0, 3) = 42.42f;
    m(0, 4) = 100.0f;
    QuantI16 q = quantizeI16(m);
    MatF back = dequantize(q);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_NEAR(back.data()[i], m.data()[i], q.scale * 0.51f);
}

TEST(QuantizeI8, NegativeMaxSetsScale)
{
    // Scale follows max |x| even when the extremum is negative.
    MatF m(1, 2);
    m(0, 0) = -25.4f;
    m(0, 1) = 1.0f;
    QuantI8 q = quantizeI8(m);
    EXPECT_EQ(q.values(0, 0), -127);
    EXPECT_NEAR(q.scale, 25.4f / 127.0f, 1e-6);
}

TEST(Quantize, OneByNRoundTrip)
{
    MatF m(1, 7);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(i) - 3.0f;
    QuantI8 q = quantizeI8(m);
    MatF back = dequantize(q);
    EXPECT_EQ(back.rows(), 1u);
    EXPECT_EQ(back.cols(), 7u);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_NEAR(back.data()[i], m.data()[i], q.scale * 0.51f);
}

TEST(TruncateToI16, PreservesRatiosApprox)
{
    MatI64 m(1, 2);
    m(0, 0) = 1000000;
    m(0, 1) = 500000;
    MatI16 t = truncateToI16(m, nullptr);
    EXPECT_NEAR(static_cast<double>(t(0, 0)) / t(0, 1), 2.0, 0.01);
}

} // namespace
} // namespace sofa
