/**
 * @file
 * Shared test utilities: deterministic RNG construction, workload
 * fixtures that replace the per-file makeSetup/smallWorkload copies,
 * and AssertionResult-style matchers that print the measured error on
 * failure instead of a bare boolean.
 *
 * Tests include this as "testutil.h" (tests/ is on the include path).
 */

#ifndef SOFA_TESTS_TESTUTIL_H
#define SOFA_TESTS_TESTUTIL_H

#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.h"
#include "model/workload.h"
#include "sparsity/topk.h"
#include "tensor/matrix.h"

namespace sofa {
namespace testutil {

/**
 * Seed for test-local Rng instances. Distinct from the workload
 * generator's default so a test that perturbs data (noise injection
 * etc.) never reuses the stream that generated the data.
 */
inline constexpr std::uint64_t kTestSeed = 0x50FA7E57ull;

/** Deterministic Rng; pass a distinct salt per stream within a test. */
inline Rng
makeRng(std::uint64_t salt = 0)
{
    return Rng(kTestSeed + salt);
}

/** Gaussian-filled matrix from a salted deterministic stream. */
inline MatF
randomMat(std::size_t rows, std::size_t cols, std::uint64_t salt = 0)
{
    Rng rng = makeRng(salt);
    MatF m(rows, cols);
    for (auto &x : m.data())
        x = static_cast<float>(rng.gaussian());
    return m;
}

/**
 * Small, fast workload with the dimensions most seed tests used to
 * build by hand. Deterministic: WorkloadSpec's default seed is fixed.
 */
inline AttentionWorkload
makeWorkload(int seq = 256, int queries = 16, int headDim = 32,
             int tokenDim = 32)
{
    WorkloadSpec spec;
    spec.seq = seq;
    spec.queries = queries;
    spec.headDim = headDim;
    spec.tokenDim = tokenDim;
    return generateWorkload(spec);
}

/** Workload plus exact top-k selections (descending by exact score). */
struct TopkSetup
{
    AttentionWorkload w;
    SelectionList selections;
};

inline TopkSetup
makeTopkSetup(int seq = 256, int queries = 16, int k = 64,
              int headDim = 32, int tokenDim = 32)
{
    TopkSetup s;
    s.w = makeWorkload(seq, queries, headDim, tokenDim);
    s.selections = exactTopKRows(s.w.scores, k);
    return s;
}

/**
 * Matcher: relative Frobenius error of @p actual vs @p expected is
 * below @p tol. On failure reports shapes and the measured error.
 * Usage: EXPECT_TRUE(testutil::MatrixNear(out, ref, 1e-4));
 */
inline ::testing::AssertionResult
MatrixNear(const MatF &actual, const MatF &expected, double tol)
{
    if (actual.rows() != expected.rows() ||
        actual.cols() != expected.cols()) {
        return ::testing::AssertionFailure()
               << "shape mismatch: " << actual.rows() << "x"
               << actual.cols() << " vs " << expected.rows() << "x"
               << expected.cols();
    }
    const double err = relativeError(actual, expected);
    if (err < tol)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "relative error " << err << " >= tolerance " << tol;
}

} // namespace testutil
} // namespace sofa

#endif // SOFA_TESTS_TESTUTIL_H
