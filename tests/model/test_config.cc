#include <gtest/gtest.h>

#include "model/config.h"

namespace sofa {
namespace {

TEST(ModelConfig, ZooContainsAllPaperModels)
{
    auto all = models::all();
    EXPECT_EQ(all.size(), 10u);
    for (const char *name :
         {"BERT-Base", "BERT-Large", "GPT-2", "Bloom-1.7B", "Llama-7B",
          "Llama-13B", "ViT-B", "PVT"}) {
        bool found = false;
        for (const auto &m : all)
            found |= m.name == name;
        EXPECT_TRUE(found) << name;
    }
}

TEST(ModelConfig, HeadDimDividesHidden)
{
    for (const auto &m : models::all()) {
        EXPECT_EQ(m.hidden % m.heads, 0) << m.name;
        EXPECT_EQ(m.headDim() * m.heads, m.hidden) << m.name;
    }
}

TEST(ModelConfig, MixturesNormalized)
{
    for (const auto &m : models::all()) {
        const double sum =
            m.mixture.type1 + m.mixture.type2 + m.mixture.type3;
        EXPECT_NEAR(sum, 1.0, 1e-9) << m.name;
        // Fig. 8: Type-II dominates in every model.
        EXPECT_GT(m.mixture.type2, 0.5) << m.name;
    }
}

TEST(ModelConfig, Fig8TypeIIIRareInGptAndLlama)
{
    EXPECT_LE(models::gpt2().mixture.type3, 0.02);
    EXPECT_LE(models::llama7b().mixture.type3, 0.02);
    // Type-I more frequent in ViT/GPT-2/Llama (~25%).
    EXPECT_NEAR(models::vitBase().mixture.type1, 0.25, 0.05);
    EXPECT_NEAR(models::llama7b().mixture.type1, 0.25, 0.05);
}

TEST(ModelConfig, KnownShapes)
{
    auto llama = models::llama7b();
    EXPECT_EQ(llama.layers, 32);
    EXPECT_EQ(llama.hidden, 4096);
    EXPECT_EQ(llama.heads, 32);
    EXPECT_EQ(llama.headDim(), 128);

    auto bert = models::bertBase();
    EXPECT_EQ(bert.layers, 12);
    EXPECT_EQ(bert.hidden, 768);
    EXPECT_EQ(bert.headDim(), 64);
}

TEST(ModelConfig, ByNameRoundTrip)
{
    for (const auto &m : models::all()) {
        auto copy = models::byName(m.name);
        EXPECT_EQ(copy.hidden, m.hidden);
        EXPECT_EQ(copy.layers, m.layers);
    }
}

TEST(ModelConfigDeath, ByNameUnknownFatal)
{
    EXPECT_EXIT(models::byName("NoSuchModel"),
                ::testing::ExitedWithCode(1), "unknown model");
}

} // namespace
} // namespace sofa
