#include <gtest/gtest.h>

#include "model/scenarios.h"

namespace sofa {
namespace {

ServingScenario
make(ServingMode mode, int prompt = 2048, int batch = 4,
     int gamma = 4)
{
    ServingScenario s;
    s.mode = mode;
    s.model = models::llama7b();
    s.promptLen = prompt;
    s.batch = batch;
    s.speculationGamma = gamma;
    return s;
}

TEST(Scenarios, PrefillParallelismIsPromptLength)
{
    auto s = make(ServingMode::Prefill, 4096);
    EXPECT_EQ(s.tokenParallelism(), 4096);
    EXPECT_EQ(s.contextLength(), 4096);
}

TEST(Scenarios, DisaggregatedScalesWithBatch)
{
    auto s = make(ServingMode::DisaggregatedPrefill, 2048, 8);
    EXPECT_EQ(s.tokenParallelism(), 2048 * 8);
}

TEST(Scenarios, SpeculativeTurnsDecodeIntoSmallPrefill)
{
    auto spec = make(ServingMode::SpeculativeDecode, 2048, 16, 4);
    auto dec = make(ServingMode::AutoregressiveDecode, 2048, 16);
    EXPECT_EQ(spec.tokenParallelism(), 64);
    EXPECT_EQ(dec.tokenParallelism(), 16);
    EXPECT_GT(spec.tokenParallelism(), dec.tokenParallelism());
}

TEST(Scenarios, TokensProducedPrefill)
{
    auto s = make(ServingMode::Prefill, 1000);
    EXPECT_DOUBLE_EQ(s.tokensProduced(), 1000.0);
}

TEST(Scenarios, SpeculativeExpectationBounds)
{
    auto s = make(ServingMode::SpeculativeDecode, 2048, 1, 4);
    // With acceptance a in (0,1): between 1 (bonus only) and
    // gamma + 1 tokens per step.
    for (double a : {0.3, 0.7, 0.99}) {
        const double t = s.tokensProduced(a);
        EXPECT_GT(t, 1.0);
        EXPECT_LT(t, 5.0 + 1e-9);
    }
    // Higher acceptance -> more tokens.
    EXPECT_GT(s.tokensProduced(0.9), s.tokensProduced(0.5));
}

TEST(Scenarios, SpeculativeLongerDraftMoreTokens)
{
    auto g4 = make(ServingMode::SpeculativeDecode, 2048, 1, 4);
    auto g8 = make(ServingMode::SpeculativeDecode, 2048, 1, 8);
    EXPECT_GT(g8.tokensProduced(0.8), g4.tokensProduced(0.8));
}

TEST(Scenarios, DecodeProducesBatchTokens)
{
    auto s = make(ServingMode::AutoregressiveDecode, 2048, 16);
    EXPECT_DOUBLE_EQ(s.tokensProduced(), 16.0);
}

TEST(Scenarios, SuiteCoversAllModes)
{
    auto suite = servingSuite(models::llama7b());
    EXPECT_GE(suite.size(), 6u);
    bool saw[4] = {false, false, false, false};
    for (const auto &s : suite)
        saw[static_cast<int>(s.mode)] = true;
    for (bool b : saw)
        EXPECT_TRUE(b);
}

TEST(Scenarios, ModeNames)
{
    EXPECT_STREQ(servingModeName(ServingMode::Prefill), "prefill");
    EXPECT_STREQ(servingModeName(ServingMode::SpeculativeDecode),
                 "speculative");
}

TEST(ArrivalTimes, UniformIsAConstantGrid)
{
    const auto t = arrivalTimes(ArrivalPattern::Uniform, 4, 0.5, 1);
    ASSERT_EQ(t.size(), 4u);
    EXPECT_DOUBLE_EQ(t[0], 0.0);
    EXPECT_DOUBLE_EQ(t[1], 0.5);
    EXPECT_DOUBLE_EQ(t[3], 1.5);
}

TEST(ArrivalTimes, PoissonDeterministicAndNondecreasing)
{
    const auto a =
        arrivalTimes(ArrivalPattern::Poisson, 64, 0.01, 42);
    const auto b =
        arrivalTimes(ArrivalPattern::Poisson, 64, 0.01, 42);
    const auto c =
        arrivalTimes(ArrivalPattern::Poisson, 64, 0.01, 43);
    EXPECT_EQ(a, b);  // same seed, same trace
    EXPECT_NE(a, c);  // different seed, different trace
    EXPECT_DOUBLE_EQ(a[0], 0.0);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i], a[i - 1]);
    // The mean gap tracks the requested one (loose: 64 samples).
    const double mean_gap = a.back() / 63.0;
    EXPECT_GT(mean_gap, 0.002);
    EXPECT_LT(mean_gap, 0.05);
}

TEST(ArrivalTimes, BurstPacksSimultaneousGroups)
{
    const auto t = arrivalTimes(ArrivalPattern::Burst, 8, 0.25, 7,
                                /*burst=*/4);
    ASSERT_EQ(t.size(), 8u);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(t[static_cast<std::size_t>(i)], 0.0);
    for (int i = 4; i < 8; ++i)
        EXPECT_DOUBLE_EQ(t[static_cast<std::size_t>(i)], 1.0);
}

TEST(ArrivalTimes, PatternNames)
{
    EXPECT_STREQ(arrivalPatternName(ArrivalPattern::Uniform),
                 "uniform");
    EXPECT_STREQ(arrivalPatternName(ArrivalPattern::Poisson),
                 "poisson");
    EXPECT_STREQ(arrivalPatternName(ArrivalPattern::Burst),
                 "burst");
}

TEST(ScenariosDeath, BadAcceptanceRate)
{
    auto s = make(ServingMode::SpeculativeDecode);
    EXPECT_DEATH(s.tokensProduced(0.0), "assertion");
    EXPECT_DEATH(s.tokensProduced(1.5), "assertion");
}

} // namespace
} // namespace sofa
