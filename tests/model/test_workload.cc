#include <gtest/gtest.h>

#include <set>

#include "model/workload.h"

namespace sofa {
namespace {

ScoreRowParams
smallParams()
{
    ScoreRowParams p;
    p.seq = 512;
    return p;
}

TEST(ScoreRow, TypeIClassifiedBack)
{
    Rng rng(1);
    int hits = 0;
    for (int i = 0; i < 50; ++i) {
        auto row = generateScoreRow(rng, DistType::TypeI,
                                    smallParams());
        hits += classifyScoreRow(row) == DistType::TypeI;
    }
    EXPECT_GE(hits, 40);
}

TEST(ScoreRow, TypeIIClassifiedBack)
{
    Rng rng(2);
    int hits = 0;
    for (int i = 0; i < 50; ++i) {
        auto row = generateScoreRow(rng, DistType::TypeII,
                                    smallParams());
        hits += classifyScoreRow(row) == DistType::TypeII;
    }
    EXPECT_GE(hits, 40);
}

TEST(ScoreRow, TypeIIIClassifiedBack)
{
    Rng rng(3);
    int hits = 0;
    for (int i = 0; i < 50; ++i) {
        auto row = generateScoreRow(rng, DistType::TypeIII,
                                    smallParams());
        hits += classifyScoreRow(row) == DistType::TypeIII;
    }
    EXPECT_GE(hits, 35);
}

TEST(ScoreMatrix, MixtureApproximatelyRespected)
{
    Rng rng(4);
    DistMixture mix{0.25, 0.74, 0.01};
    MatF m = generateScoreMatrix(rng, mix, 400, smallParams());
    MixtureTally tally = classifyScoreMatrix(m);
    EXPECT_NEAR(tally.frac1(), 0.25, 0.1);
    EXPECT_GT(tally.frac2(), 0.6);
}

TEST(ScoreRow, DominantsActuallyDominate)
{
    Rng rng(5);
    auto params = smallParams();
    auto row = generateScoreRow(rng, DistType::TypeI, params);
    // The max should be far above the noise floor.
    float mx = row[0];
    double sum = 0.0;
    for (float v : row) {
        mx = std::max(mx, v);
        sum += v;
    }
    const double mean_v = sum / row.size();
    EXPECT_GT(mx, mean_v + 3.5 * params.noiseStd);
}

TEST(Workload, ShapesMatchSpec)
{
    WorkloadSpec spec;
    spec.seq = 256;
    spec.queries = 16;
    spec.headDim = 32;
    spec.tokenDim = 48;
    AttentionWorkload w = generateWorkload(spec);
    EXPECT_EQ(w.tokens.rows(), 256u);
    EXPECT_EQ(w.tokens.cols(), 48u);
    EXPECT_EQ(w.k.rows(), 256u);
    EXPECT_EQ(w.k.cols(), 32u);
    EXPECT_EQ(w.q.rows(), 16u);
    EXPECT_EQ(w.scores.rows(), 16u);
    EXPECT_EQ(w.scores.cols(), 256u);
    EXPECT_EQ(w.dominants.size(), 16u);
}

TEST(Workload, KVDerivedFromTokens)
{
    WorkloadSpec spec;
    spec.seq = 64;
    spec.queries = 4;
    AttentionWorkload w = generateWorkload(spec);
    MatF k2 = matmul(w.tokens, w.wk);
    EXPECT_NEAR(relativeError(w.k, k2), 0.0, 1e-6);
    MatF v2 = matmul(w.tokens, w.wv);
    EXPECT_NEAR(relativeError(w.v, v2), 0.0, 1e-6);
}

TEST(Workload, PlantedDominantsScoreHigh)
{
    WorkloadSpec spec;
    spec.seq = 512;
    spec.queries = 32;
    spec.mixture = {1.0, 0.0, 0.0}; // all Type-I
    AttentionWorkload w = generateWorkload(spec);
    int hits = 0, total = 0;
    for (int r = 0; r < spec.queries; ++r) {
        // Each planted dominant should rank in the row's top decile.
        std::vector<float> row(w.scores.rowPtr(r),
                               w.scores.rowPtr(r) + spec.seq);
        std::vector<float> sorted = row;
        std::sort(sorted.begin(), sorted.end(), std::greater<>());
        const float decile = sorted[spec.seq / 10];
        for (int idx : w.dominants[r]) {
            ++total;
            hits += row[idx] >= decile;
        }
    }
    EXPECT_GT(static_cast<double>(hits) / total, 0.9);
}

TEST(Workload, DeterministicBySeed)
{
    WorkloadSpec spec;
    spec.seq = 128;
    spec.queries = 8;
    spec.seed = 99;
    AttentionWorkload a = generateWorkload(spec);
    AttentionWorkload b = generateWorkload(spec);
    EXPECT_EQ(a.scores, b.scores);
    spec.seed = 100;
    AttentionWorkload c = generateWorkload(spec);
    EXPECT_NE(a.scores, c.scores);
}

TEST(Workload, RowTypesFollowMixture)
{
    WorkloadSpec spec;
    spec.seq = 256;
    spec.queries = 300;
    spec.mixture = {0.0, 1.0, 0.0};
    AttentionWorkload w = generateWorkload(spec);
    for (auto t : w.rowTypes)
        EXPECT_EQ(t, DistType::TypeII);
}

TEST(MixtureTally, Fractions)
{
    MixtureTally t;
    t.type1 = 1;
    t.type2 = 3;
    t.type3 = 0;
    EXPECT_DOUBLE_EQ(t.frac1(), 0.25);
    EXPECT_DOUBLE_EQ(t.frac2(), 0.75);
    EXPECT_DOUBLE_EQ(t.frac3(), 0.0);
    EXPECT_EQ(t.total(), 4);
}

} // namespace
} // namespace sofa
