#include <gtest/gtest.h>

#include "model/config.h"
#include <cmath>

#include "model/flops.h"

namespace sofa {
namespace {

TEST(Flops, AttentionQuadraticInSeq)
{
    auto m = models::llama7b();
    auto p1 = layerProfile(m, 1024, 1024);
    auto p2 = layerProfile(m, 2048, 2048);
    // Attention flops grow ~4x when S doubles (T=S prefill).
    EXPECT_NEAR(p2.atten.flops / p1.atten.flops, 4.0, 0.1);
    // FFN grows ~2x (linear in T).
    EXPECT_NEAR(p2.ffn.flops / p1.ffn.flops, 2.0, 0.01);
}

TEST(Flops, AttentionDominatesAtLongSeq)
{
    // Fig. 1: attention overtakes FFN as S grows past ~32k.
    auto m = models::llama7b();
    auto short_p = layerProfile(m, 4096, 4096);
    auto long_p = layerProfile(m, 131072, 131072);
    EXPECT_LT(short_p.atten.flops, short_p.ffn.flops);
    EXPECT_GT(long_p.atten.flops, long_p.ffn.flops);
}

TEST(Flops, AttentionMemoryDominatesAtLongSeq)
{
    auto m = models::llama7b();
    auto long_p = layerProfile(m, 131072, 131072);
    EXPECT_GT(long_p.atten.bytes, long_p.ffn.bytes);
    EXPECT_GT(long_p.atten.bytes, long_p.qkv.bytes);
}

TEST(Flops, MhaIntensityWellBelowFfn)
{
    // Fig. 4(b): MHA operational intensity ~15% of FFN on average.
    std::vector<ModelConfig> ms = {models::vitBase(),
                                   models::bertBase(), models::gpt2(),
                                   models::bloom3b()};
    double ratio_sum = 0.0;
    for (const auto &m : ms) {
        auto p = layerProfile(m, 512, 512);
        ratio_sum += p.atten.intensity() / p.ffn.intensity();
    }
    const double avg = ratio_sum / ms.size();
    EXPECT_LT(avg, 0.35);
}

TEST(Flops, IntensityRisesWithParallelism)
{
    // Fig. 4(c): OI of MHA increases with token parallelism.
    auto m = models::bloom3b();
    double prev = 0.0;
    for (int t : {1, 2, 4, 8, 16, 32, 64, 128}) {
        const double oi = attentionIntensity(m, 2048, t);
        EXPECT_GT(oi, prev);
        prev = oi;
    }
}

TEST(Flops, IntensitySaturates)
{
    // The OI gain flattens: going 64 -> 128 gains less than 1 -> 2.
    auto m = models::gpt2();
    const double g_low = attentionIntensity(m, 1024, 2) /
                         attentionIntensity(m, 1024, 1);
    const double g_high = attentionIntensity(m, 1024, 128) /
                          attentionIntensity(m, 1024, 64);
    EXPECT_GT(g_low, g_high);
}

TEST(Flops, ModelProfileScalesWithLayers)
{
    auto m = models::bertBase();
    auto one = layerProfile(m, 256, 256);
    auto whole = modelProfile(m, 256, 256);
    EXPECT_NEAR(whole.total().flops,
                one.total().flops * m.layers, 1.0);
}

TEST(Flops, TotalsAreSumOfParts)
{
    auto m = models::gpt2();
    auto p = layerProfile(m, 512, 64);
    EXPECT_DOUBLE_EQ(p.total().flops,
                     p.qkv.flops + p.atten.flops + p.ffn.flops);
    EXPECT_DOUBLE_EQ(p.total().bytes,
                     p.qkv.bytes + p.atten.bytes + p.ffn.bytes);
}

/** Parameterized sweep: profiles stay positive and finite. */
class FlopsSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(FlopsSweep, PositiveFinite)
{
    auto [seq, tokens] = GetParam();
    auto p = layerProfile(models::llama7b(), seq, tokens);
    for (const OpProfile *op : {&p.qkv, &p.atten, &p.ffn}) {
        EXPECT_GT(op->flops, 0.0);
        EXPECT_GT(op->bytes, 0.0);
        EXPECT_TRUE(std::isfinite(op->intensity()));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FlopsSweep,
    ::testing::Combine(::testing::Values(128, 1024, 8192, 131072),
                       ::testing::Values(1, 64, 512)));

} // namespace
} // namespace sofa
