#include <gtest/gtest.h>

#include "model/model_workload.h"
#include "testutil.h"

namespace sofa {
namespace {

ModelWorkloadSpec
smallSpec()
{
    ModelWorkloadSpec spec;
    spec.batch = 2;
    spec.heads = 3;
    spec.seq = 96;
    spec.queries = 8;
    spec.headDim = 16;
    spec.tokenDim = 24;
    return spec;
}

TEST(ModelWorkload, GridShape)
{
    const auto mw = generateModelWorkload(smallSpec());
    EXPECT_EQ(mw.batch(), 2);
    EXPECT_EQ(mw.heads(), 3);
    EXPECT_EQ(mw.size(), 6u);
    for (int b = 0; b < 2; ++b) {
        for (int h = 0; h < 3; ++h) {
            const AttentionWorkload &w = mw.head(b, h);
            EXPECT_EQ(w.spec.seq, 96);
            EXPECT_EQ(w.spec.queries, 8);
            EXPECT_EQ(w.q.rows(), 8u);
            EXPECT_EQ(w.k.rows(), 96u);
            EXPECT_EQ(w.scores.rows(), 8u);
            EXPECT_EQ(w.scores.cols(), 96u);
        }
    }
}

TEST(ModelWorkload, HeadsShareTokensPerBatchItem)
{
    const auto mw = generateModelWorkload(smallSpec());
    // Same item: identical token matrix, distinct projections.
    EXPECT_EQ(mw.head(0, 0).tokens, mw.head(0, 1).tokens);
    EXPECT_EQ(mw.head(0, 0).tokens, mw.head(0, 2).tokens);
    EXPECT_NE(mw.head(0, 0).wk, mw.head(0, 1).wk);
    EXPECT_NE(mw.head(0, 0).q, mw.head(0, 1).q);
    // Different items: distinct tokens.
    EXPECT_NE(mw.head(0, 0).tokens, mw.head(1, 0).tokens);
}

TEST(ModelWorkload, DeterministicPerHeadSeeding)
{
    const auto a = generateModelWorkload(smallSpec());
    const auto b = generateModelWorkload(smallSpec());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.grid[i].tokens, b.grid[i].tokens);
        EXPECT_EQ(a.grid[i].q, b.grid[i].q);
        EXPECT_EQ(a.grid[i].scores, b.grid[i].scores);
    }
    // A different grid seed moves every head.
    auto spec = smallSpec();
    spec.seed ^= 0x1234u;
    const auto c = generateModelWorkload(spec);
    EXPECT_NE(a.grid[0].tokens, c.grid[0].tokens);
}

TEST(ModelWorkload, HeadSeedsAreDistinct)
{
    const std::uint64_t base = 0x50FA0002ull;
    EXPECT_NE(headSeed(base, 0, 0), headSeed(base, 0, 1));
    EXPECT_NE(headSeed(base, 0, 0), headSeed(base, 1, 0));
    EXPECT_NE(headSeed(base, 1, 0), headSeed(base, 0, 1));
    // The token-stream sentinel never collides with real heads.
    EXPECT_NE(headSeed(base, 0, ~0), headSeed(base, 0, 0));
}

TEST(ModelWorkload, DecodeModeShapes)
{
    ModelWorkloadSpec spec = smallSpec();
    spec.pastLen = 80;
    spec.newTokens = 4;
    EXPECT_TRUE(spec.isDecode());
    EXPECT_EQ(spec.contextLen(), 84);
    EXPECT_EQ(spec.queryRows(), 4);
    const auto mw = generateModelWorkload(spec);
    EXPECT_EQ(mw.head(0, 0).spec.seq, 84);
    EXPECT_EQ(mw.head(0, 0).q.rows(), 4u);
    EXPECT_EQ(mw.head(0, 0).k.rows(), 84u);
}

TEST(ModelWorkload, EmptyBatchProducesEmptyGrid)
{
    ModelWorkloadSpec spec = smallSpec();
    spec.batch = 0;
    const auto mw = generateModelWorkload(spec);
    EXPECT_EQ(mw.size(), 0u);
}

TEST(ModelWorkload, HeadWorkloadMatchesSingleHeadConsumers)
{
    // A grid head is a complete AttentionWorkload: exact K/V/scores
    // ground truth holds (K = X Wk etc.), so every single-head
    // consumer can run on it unchanged.
    const auto mw = generateModelWorkload(smallSpec());
    const AttentionWorkload &w = mw.head(1, 2);
    const MatF k = matmul(w.tokens, w.wk);
    const MatF v = matmul(w.tokens, w.wv);
    EXPECT_EQ(w.k, k);
    EXPECT_EQ(w.v, v);
    EXPECT_EQ(w.scores, matmulNT(w.q, w.k));
}

TEST(ModelWorkload, SharedTokenFieldReusableDirectly)
{
    // generateTokenField + generateHeadWorkload compose: two heads
    // on one field share tokens and differ in projections.
    WorkloadSpec spec;
    spec.seq = 64;
    spec.queries = 4;
    spec.headDim = 8;
    spec.tokenDim = 16;
    Rng trng = testutil::makeRng(1);
    const TokenField field = generateTokenField(spec, trng);
    Rng h0 = testutil::makeRng(2), h1 = testutil::makeRng(3);
    const auto w0 = generateHeadWorkload(spec, field, h0);
    const auto w1 = generateHeadWorkload(spec, field, h1);
    EXPECT_EQ(w0.tokens, w1.tokens);
    EXPECT_NE(w0.wk, w1.wk);
}

} // namespace
} // namespace sofa
