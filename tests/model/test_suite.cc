#include <gtest/gtest.h>

#include <set>

#include "model/suite.h"

namespace sofa {
namespace {

TEST(Suite, HasTwentyBenchmarks)
{
    EXPECT_EQ(suite20().size(), 20u);
}

TEST(Suite, NamesUnique)
{
    std::set<std::string> names;
    for (const auto &b : suite20())
        names.insert(b.name);
    EXPECT_EQ(names.size(), 20u);
}

TEST(Suite, SequenceLengthsMatchPaper)
{
    for (const auto &b : suite20()) {
        if (b.task == "MRPC" || b.task == "RTE") {
            EXPECT_EQ(b.seq, 256) << b.name;
        }
        if (b.task == "SQuAD") {
            EXPECT_EQ(b.seq, 384) << b.name;
        }
        if (b.task == "STS-B" || b.task == "QNLI") {
            EXPECT_EQ(b.seq, 512) << b.name;
        }
        if (b.model.name == "Llama-7B") {
            EXPECT_EQ(b.seq, 4096) << b.name;
        }
        if (b.model.name == "PVT") {
            EXPECT_EQ(b.seq, 3192) << b.name;
        }
    }
}

TEST(Suite, DensityInRange)
{
    for (const auto &b : suite20()) {
        EXPECT_GT(b.density, 0.0) << b.name;
        EXPECT_LE(b.density, 1.0) << b.name;
    }
    // CV denser than sentiment text tasks (Section V-B).
    double pvt = 0.0, stsb = 0.0;
    for (const auto &b : suite20()) {
        if (b.name == "PVT/ImageNet-1k")
            pvt = b.density;
        if (b.name == "BERT-Base/STS-B")
            stsb = b.density;
    }
    EXPECT_GT(pvt, stsb);
}

TEST(Suite, WorkloadSpecCapsSeq)
{
    for (const auto &b : suite20()) {
        auto spec = b.workloadSpec(1024, 32);
        EXPECT_LE(spec.seq, 1024) << b.name;
        EXPECT_EQ(spec.queries, 32) << b.name;
        EXPECT_GT(spec.headDim, 0) << b.name;
    }
}

TEST(Suite, WorkloadSeedsDifferAcrossBenchmarks)
{
    std::set<std::uint64_t> seeds;
    for (const auto &b : suite20())
        seeds.insert(b.workloadSpec().seed);
    EXPECT_EQ(seeds.size(), 20u);
}

TEST(Suite, SmallSubsetIsSubset)
{
    auto small = suiteSmall();
    EXPECT_GE(small.size(), 5u);
    auto all = suite20();
    for (const auto &s : small) {
        bool found = false;
        for (const auto &b : all)
            found |= b.name == s.name;
        EXPECT_TRUE(found) << s.name;
    }
}

TEST(Suite, MixturePropagatedFromModel)
{
    for (const auto &b : suite20()) {
        auto spec = b.workloadSpec();
        EXPECT_DOUBLE_EQ(spec.mixture.type1, b.model.mixture.type1)
            << b.name;
    }
}

} // namespace
} // namespace sofa
