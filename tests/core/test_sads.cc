#include <gtest/gtest.h>

#include <set>

#include "common/threadpool.h"
#include "core/sads.h"
#include "model/workload.h"
#include "sparsity/metrics.h"
#include "testutil.h"

namespace sofa {
namespace {

MatF
scoresFor(DistMixture mix, int rows = 64, int seq = 512,
          std::uint64_t seed = 11)
{
    Rng rng(seed);
    ScoreRowParams p;
    p.seq = seq;
    return generateScoreMatrix(rng, mix, rows, p);
}

TEST(Sads, SelectsKIndices)
{
    MatF scores = scoresFor({0.2, 0.8, 0.0});
    SadsResult res = sadsTopK(scores, 64, {});
    for (const auto &row : res.rows) {
        EXPECT_EQ(row.selected.size(), 64u);
        std::set<int> uniq(row.selected.begin(), row.selected.end());
        EXPECT_EQ(uniq.size(), 64u); // no duplicates
        for (int idx : row.selected) {
            EXPECT_GE(idx, 0);
            EXPECT_LT(idx, 512);
        }
    }
}

TEST(Sads, SelectionSortedDescending)
{
    MatF scores = scoresFor({0.0, 1.0, 0.0}, 8);
    SadsResult res = sadsTopK(scores, 32, {});
    for (std::size_t r = 0; r < res.rows.size(); ++r) {
        const auto &sel = res.rows[r].selected;
        for (std::size_t i = 1; i < sel.size(); ++i)
            EXPECT_GE(scores(r, sel[i - 1]), scores(r, sel[i]));
    }
}

TEST(Sads, Top1IsSegmentwiseMax)
{
    MatF scores = scoresFor({1.0, 0.0, 0.0}, 16);
    SadsResult res = sadsTopK(scores, 16, {});
    for (std::size_t r = 0; r < res.rows.size(); ++r) {
        // top1 must be the true row max (it dominates its segment).
        int true_max = 0;
        for (int c = 1; c < 512; ++c)
            if (scores(r, c) > scores(r, true_max))
                true_max = c;
        EXPECT_EQ(res.rows[r].top1, true_max);
    }
}

TEST(Sads, NearOracleMassOnTypeI)
{
    // Scenario 1 of Fig. 9: Type-I dominants always captured, so
    // SADS covers essentially the same softmax mass as the exact
    // top-k oracle at the same budget.
    MatF scores = scoresFor({1.0, 0.0, 0.0}, 32);
    SadsResult res = sadsTopK(scores, 51, {}); // ~10%
    const double oracle = softmaxMassRecall(
        scores, exactTopKRows(scores, 51));
    const double sads = softmaxMassRecall(scores, res.selections());
    EXPECT_GT(sads, 0.97 * oracle);
}

TEST(Sads, NearOracleMassOnTypeII)
{
    // Scenario 2: evenly distributed dominants — the DCE case.
    MatF scores = scoresFor({0.0, 1.0, 0.0}, 32);
    SadsResult res = sadsTopK(scores, 102, {}); // ~20%
    const double oracle = softmaxMassRecall(
        scores, exactTopKRows(scores, 102));
    const double sads = softmaxMassRecall(scores, res.selections());
    EXPECT_GT(sads, 0.97 * oracle);
}

TEST(Sads, FewerComparisonsThanVanilla)
{
    MatF scores = scoresFor({0.25, 0.75, 0.0}, 64, 4096);
    SadsConfig cfg;
    cfg.segments = 4;
    SadsResult res = sadsTopK(scores, 512, cfg);
    const auto vanilla = vanillaSortComparisons(64, 4096);
    EXPECT_LT(res.ops.cmps(), vanilla / 3);
}

TEST(Sads, RefinementRepairsBoundaryMistakes)
{
    // Craft a row where one segment holds k/2 + extra dominants, so
    // per-segment quotas alone would miss some; refinement must
    // recover them.
    MatF scores(1, 128, 0.0f);
    // Segment 0 (0..31) gets 6 large values; others get noise.
    for (int i = 0; i < 6; ++i)
        scores(0, i * 5) = 10.0f + i;
    Rng rng(3);
    for (int c = 32; c < 128; ++c)
        scores(0, c) = static_cast<float>(rng.gaussian(0.0, 0.1));

    SadsConfig cfg;
    cfg.segments = 4;
    cfg.refineIters = 8;
    SadsResult res = sadsTopK(scores, 8, cfg); // quota 2/segment
    std::set<int> sel(res.rows[0].selected.begin(),
                      res.rows[0].selected.end());
    int captured = 0;
    for (int i = 0; i < 6; ++i)
        captured += sel.count(i * 5);
    EXPECT_GE(captured, 4); // more than the segment quota of 2

    SadsConfig no_refine = cfg;
    no_refine.refineIters = 0;
    SadsResult res0 = sadsTopK(scores, 8, no_refine);
    std::set<int> sel0(res0.rows[0].selected.begin(),
                       res0.rows[0].selected.end());
    int captured0 = 0;
    for (int i = 0; i < 6; ++i)
        captured0 += sel0.count(i * 5);
    EXPECT_GE(captured, captured0);
}

TEST(Sads, ClippingBlocksElements)
{
    MatF scores = scoresFor({1.0, 0.0, 0.0}, 8);
    SadsConfig cfg;
    cfg.radiusFrac = 0.3;
    SadsResult res = sadsTopK(scores, 16, cfg);
    std::int64_t clipped = 0;
    for (const auto &row : res.rows)
        clipped += row.clipped;
    EXPECT_GT(clipped, 0);
    // Results still capture the dominant mass the oracle would.
    const double oracle = softmaxMassRecall(
        scores, exactTopKRows(scores, 16));
    EXPECT_GT(softmaxMassRecall(scores, res.selections()),
              0.9 * oracle);
}

TEST(Sads, KLargerThanSeqClamps)
{
    MatF scores = scoresFor({0.0, 1.0, 0.0}, 2, 32);
    SadsResult res = sadsTopK(scores, 100, {});
    for (const auto &row : res.rows)
        EXPECT_EQ(row.selected.size(), 32u);
}

TEST(Sads, SingleSegmentMatchesExactTopK)
{
    MatF scores = scoresFor({0.3, 0.7, 0.0}, 8, 128);
    SadsConfig cfg;
    cfg.segments = 1;
    SadsResult res = sadsTopK(scores, 16, cfg);
    auto exact = exactTopKRows(scores, 16);
    EXPECT_NEAR(topkRecall(res.selections(), exact), 1.0, 1e-9);
}

/** Segment-count sweep: recall degrades gracefully. */
class SadsSegments : public ::testing::TestWithParam<int>
{};

TEST_P(SadsSegments, MassRecallNearOracle)
{
    MatF scores = scoresFor({0.25, 0.75, 0.0}, 32, 1024, 17);
    SadsConfig cfg;
    cfg.segments = GetParam();
    SadsResult res = sadsTopK(scores, 205, cfg); // 20%
    const double oracle = softmaxMassRecall(
        scores, exactTopKRows(scores, 205));
    EXPECT_GT(softmaxMassRecall(scores, res.selections()),
              0.93 * oracle)
        << "segments=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Segments, SadsSegments,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(Sads, RangeApiComposesToFullResult)
{
    // Disjoint row ranges into one result must reproduce the
    // whole-matrix entry point exactly (the engine's sharding).
    auto w = testutil::makeWorkload(256, 10);
    const SadsResult full = sadsTopK(w.scores, 32, {});
    std::vector<SadsRow> rows(w.scores.rows());
    OpCounter ops;
    sadsTopKRows(w.scores, 32, {}, 0, 4, &rows, &ops);
    sadsTopKRows(w.scores, 32, {}, 4, w.scores.rows(), &rows, &ops);
    ASSERT_EQ(rows.size(), full.rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        EXPECT_EQ(rows[r].selected, full.rows[r].selected) << r;
        EXPECT_EQ(rows[r].clipped, full.rows[r].clipped) << r;
        EXPECT_EQ(rows[r].top1, full.rows[r].top1) << r;
    }
    EXPECT_EQ(ops.total(), full.ops.total());
    EXPECT_EQ(ops.cmps(), full.ops.cmps());
}

TEST(Sads, ThreadCountInvariance)
{
    auto w = testutil::makeWorkload(384, 24);
    SadsResult serial_res;
    {
        ThreadPool::ScopedSerial serial;
        serial_res = sadsTopK(w.scores, 64, {});
    }
    const SadsResult threaded = sadsTopK(w.scores, 64, {});
    EXPECT_EQ(threaded.selections(), serial_res.selections());
    EXPECT_EQ(threaded.ops.total(), serial_res.ops.total());
}

} // namespace
} // namespace sofa
