#include <gtest/gtest.h>

#include <numeric>

#include "attention/reference.h"
#include "common/threadpool.h"
#include "core/sads.h"
#include "core/sufa.h"
#include "model/workload.h"
#include "testutil.h"

namespace sofa {
namespace {

// Shared fixture: workload + exact descending top-k selections.
using testutil::makeTopkSetup;

TEST(Sufa, MatchesMaskedReference)
{
    auto s = makeTopkSetup();
    auto sufa = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, {});
    auto ref =
        maskedReferenceAttention(s.w.q, s.w.k, s.w.v, s.selections);
    EXPECT_TRUE(testutil::MatrixNear(sufa.output, ref.output, 1e-4));
}

TEST(Sufa, AscendingAlsoMatches)
{
    auto s = makeTopkSetup();
    SufaConfig cfg;
    cfg.order = SufaOrder::Ascending;
    auto sufa = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, cfg);
    auto ref =
        maskedReferenceAttention(s.w.q, s.w.k, s.w.v, s.selections);
    EXPECT_TRUE(testutil::MatrixNear(sufa.output, ref.output, 1e-4));
}

TEST(Sufa, NoViolationsWithExactOrdering)
{
    // Exact descending order: the first element is the true max, so
    // the max-ensuring circuit never fires.
    auto s = makeTopkSetup();
    auto sufa = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, {});
    EXPECT_EQ(sufa.maxViolations, 0);
}

TEST(Sufa, MispredictedOrderStillCorrect)
{
    // Shuffle the selections (simulating DLZS misprediction): output
    // must stay correct, violations must be counted.
    auto s = makeTopkSetup();
    Rng rng = testutil::makeRng(5);
    SelectionList shuffled = s.selections;
    for (auto &sel : shuffled)
        rng.shuffle(sel);
    auto sufa = sufaAttention(s.w.q, s.w.k, s.w.v, shuffled, {});
    auto ref =
        maskedReferenceAttention(s.w.q, s.w.k, s.w.v, s.selections);
    EXPECT_TRUE(testutil::MatrixNear(sufa.output, ref.output, 1e-4));
    EXPECT_GT(sufa.maxViolations, 0);
}

TEST(Sufa, DescendingCheaperThanAscending)
{
    // Fig. 10: descending updates skip the per-step l rescale
    // multiply of the ascending order (Eq. (2) vs Eq. (1)).
    auto s = makeTopkSetup(512, 16, 128);
    SufaConfig desc, asc;
    asc.order = SufaOrder::Ascending;
    auto rd = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, desc);
    auto ra = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, asc);
    EXPECT_LT(rd.ops.normalized(), ra.ops.normalized());
    // The gap is the per-element multiply on the l path.
    EXPECT_GT(ra.ops.muls(), rd.ops.muls());
    EXPECT_EQ(ra.ops.exps(), rd.ops.exps());
}

TEST(Sufa, CheaperThanSparseFa2)
{
    auto s = makeTopkSetup(1024, 16, 256);
    auto sufa = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, {});
    auto fa2 = sparseFlash2(s.w.q, s.w.k, s.w.v, s.selections, 16);
    EXPECT_LT(sufa.ops.normalized(), fa2.ops.normalized());
}

TEST(Sufa, ReductionsNearPaperNumbers)
{
    // Paper: descending SU-FA averages ~25% less complexity than
    // traditional FA and ~11% less than ascending (softmax-side ops).
    auto s = makeTopkSetup(2048, 8, 512);
    SufaConfig desc, asc;
    asc.order = SufaOrder::Ascending;
    auto rd = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, desc);
    auto ra = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, asc);
    auto fa = sparseFlash2(s.w.q, s.w.k, s.w.v, s.selections, 4);

    // Compare the softmax-update machinery (exps + rescale muls),
    // excluding the shared QK^T / PV MACs.
    auto softmax_cost = [](const OpCounter &ops, std::int64_t macs) {
        OpCosts costs;
        return ops.normalized(costs) -
               static_cast<double>(macs) * (costs.mul + costs.add);
    };
    const std::int64_t macs = 2 * 8 * 512 * 32;
    const double d_cost = softmax_cost(rd.ops, macs);
    const double a_cost = softmax_cost(ra.ops, macs);
    const double f_cost = softmax_cost(fa.ops, macs);
    EXPECT_LT(d_cost, a_cost);
    EXPECT_LT(a_cost, f_cost);
    // Descending saves >= 15% vs FA on the softmax side.
    EXPECT_LT(d_cost, 0.85 * f_cost);
}

TEST(Sufa, EmptySelectionsYieldZeros)
{
    auto s = makeTopkSetup(32, 4, 8);
    SelectionList empty(4);
    auto sufa = sufaAttention(s.w.q, s.w.k, s.w.v, empty, {});
    for (float v : sufa.output.data())
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Sufa, TileCountTracksBlockCols)
{
    auto s = makeTopkSetup(256, 4, 64);
    SufaConfig cfg;
    cfg.blockCols = 16;
    auto r = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, cfg);
    EXPECT_EQ(r.tiles, 4 * (64 / 16));
}

TEST(SufaAnalytic, MatchesMeasuredWithinTolerance)
{
    auto s = makeTopkSetup(512, 8, 128);
    auto rd = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, {});
    OpCounter analytic =
        sufaAnalyticOps(8, 128, 32, SufaOrder::Descending);
    EXPECT_NEAR(analytic.normalized() / rd.ops.normalized(), 1.0,
                0.15);
}

TEST(SufaAnalytic, OrderingOfSchemes)
{
    const auto d = sufaAnalyticOps(64, 256, 64, SufaOrder::Descending);
    const auto a = sufaAnalyticOps(64, 256, 64, SufaOrder::Ascending);
    const auto f = sparseFa2AnalyticOps(64, 256, 64, 16);
    EXPECT_LT(d.normalized(), a.normalized());
    EXPECT_LT(d.normalized(), f.normalized());
}

TEST(SparseFa2, MatchesMaskedReference)
{
    auto s = makeTopkSetup();
    auto fa2 = sparseFlash2(s.w.q, s.w.k, s.w.v, s.selections, 16);
    auto ref =
        maskedReferenceAttention(s.w.q, s.w.k, s.w.v, s.selections);
    EXPECT_TRUE(testutil::MatrixNear(fa2.output, ref.output, 1e-4));
}

/** Property: SU-FA equals masked reference across block sizes. */
class SufaBlockSweep : public ::testing::TestWithParam<int>
{};

TEST_P(SufaBlockSweep, NumericalEquivalence)
{
    auto s = makeTopkSetup(128, 8, 48);
    SufaConfig cfg;
    cfg.blockCols = GetParam();
    auto sufa = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, cfg);
    auto ref =
        maskedReferenceAttention(s.w.q, s.w.k, s.w.v, s.selections);
    EXPECT_TRUE(testutil::MatrixNear(sufa.output, ref.output, 1e-4))
        << "Bc=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Blocks, SufaBlockSweep,
                         ::testing::Values(1, 2, 7, 16, 48, 100));

TEST(Sufa, ScalarDotPathAgreesWithBlocked)
{
    // The dotBlock port changes only float summation order: the
    // scalar baseline must produce the same op counts and a result
    // within rounding of the blocked path.
    auto s = makeTopkSetup();
    SufaConfig blocked, scalar;
    blocked.blockedDot = true;
    scalar.blockedDot = false;
    auto rb = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections,
                            blocked);
    auto rs = sufaAttention(s.w.q, s.w.k, s.w.v, s.selections,
                            scalar);
    EXPECT_EQ(rb.ops.total(), rs.ops.total());
    EXPECT_EQ(rb.ops.exps(), rs.ops.exps());
    EXPECT_EQ(rb.tiles, rs.tiles);
    EXPECT_TRUE(testutil::MatrixNear(rb.output, rs.output, 1e-5));
}

TEST(Sufa, RangeApiComposesToFullResult)
{
    // Running disjoint row ranges into one output must reproduce the
    // whole-matrix entry point exactly (the engine's sharding).
    auto s = makeTopkSetup(128, 10, 32);
    const auto full =
        sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, {});
    MatF out(s.w.q.rows(), s.w.q.cols(), 0.0f);
    OpCounter ops;
    std::int64_t viol = 0, tiles = 0;
    sufaAttentionRows(s.w.q, s.w.k, s.w.v, s.selections, {}, 0, 3,
                      &out, &ops, &viol, &tiles);
    sufaAttentionRows(s.w.q, s.w.k, s.w.v, s.selections, {}, 3, 7,
                      &out, &ops, &viol, &tiles);
    sufaAttentionRows(s.w.q, s.w.k, s.w.v, s.selections, {}, 7,
                      s.w.q.rows(), &out, &ops, &viol, &tiles);
    EXPECT_EQ(out, full.output);
    EXPECT_EQ(ops.total(), full.ops.total());
    EXPECT_EQ(viol, full.maxViolations);
    EXPECT_EQ(tiles, full.tiles);
}

TEST(Sufa, ThreadCountInvariance)
{
    auto s = makeTopkSetup();
    SufaResult serial_res;
    {
        ThreadPool::ScopedSerial serial;
        serial_res =
            sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, {});
    }
    auto threaded =
        sufaAttention(s.w.q, s.w.k, s.w.v, s.selections, {});
    EXPECT_EQ(threaded.output, serial_res.output);
    EXPECT_EQ(threaded.ops.total(), serial_res.ops.total());
    EXPECT_EQ(threaded.maxViolations, serial_res.maxViolations);
}

} // namespace
} // namespace sofa
