/**
 * Thread-invariance matrix for the stage engine: every combination of
 * {serial, 1, 2, 3, 7, 16} pool participants x {static, dynamic}
 * sharding x {prefill, decode, mixed-ragged} task lists must produce
 * results bit-identical to the serial static reference — outputs,
 * selections, every OpCounter field, KV cache hits, tile counts.
 * Degenerate shard shapes (more threads than work items, one giant
 * head dominating the cost order) are covered explicitly, because
 * those are the schedules where a non-canonical merge would show up.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/threadpool.h"
#include "core/engine.h"
#include "testutil.h"

namespace sofa {
namespace {

void
expectSameOps(const OpCounter &a, const OpCounter &b,
              const char *what)
{
    ASSERT_EQ(a.adds(), b.adds()) << what;
    ASSERT_EQ(a.cmps(), b.cmps()) << what;
    ASSERT_EQ(a.shifts(), b.shifts()) << what;
    ASSERT_EQ(a.muls(), b.muls()) << what;
    ASSERT_EQ(a.divs(), b.divs()) << what;
    ASSERT_EQ(a.exps(), b.exps()) << what;
}

void
expectSameEngineResult(const EngineResult &a, const EngineResult &b,
                       const char *what)
{
    ASSERT_EQ(a.heads.size(), b.heads.size()) << what;
    for (std::size_t i = 0; i < a.heads.size(); ++i) {
        const HeadResult &ha = a.heads[i];
        const HeadResult &hb = b.heads[i];
        ASSERT_EQ(ha.batch, hb.batch) << what;
        ASSERT_EQ(ha.head, hb.head) << what;
        ASSERT_EQ(ha.keysCached, hb.keysCached) << what;
        ASSERT_EQ(ha.sufaTiles, hb.sufaTiles) << what;
        ASSERT_EQ(ha.result.output, hb.result.output)
            << what << " head " << i;
        ASSERT_EQ(ha.result.selections, hb.result.selections)
            << what << " head " << i;
        ASSERT_EQ(ha.result.keysGenerated, hb.result.keysGenerated)
            << what;
        ASSERT_EQ(ha.result.maxViolations, hb.result.maxViolations)
            << what;
        expectSameOps(ha.result.predictionOps,
                      hb.result.predictionOps, what);
        expectSameOps(ha.result.sortOps, hb.result.sortOps, what);
        expectSameOps(ha.result.formalOps, hb.result.formalOps,
                      what);
        // Quality metrics are doubles but still deterministic sums.
        ASSERT_EQ(ha.result.massRecall, hb.result.massRecall)
            << what;
        ASSERT_EQ(ha.result.topkRecall, hb.result.topkRecall)
            << what;
        ASSERT_EQ(ha.result.outputRelError,
                  hb.result.outputRelError)
            << what;
    }
    expectSameOps(a.predictionOps, b.predictionOps, what);
    expectSameOps(a.sortOps, b.sortOps, what);
    expectSameOps(a.formalOps, b.formalOps, what);
    ASSERT_EQ(a.keysGenerated, b.keysGenerated) << what;
    ASSERT_EQ(a.keysCached, b.keysCached) << what;
    ASSERT_EQ(a.maxViolations, b.maxViolations) << what;
    ASSERT_EQ(a.meanMassRecall, b.meanMassRecall) << what;
    ASSERT_EQ(a.meanTopkRecall, b.meanTopkRecall) << what;
    ASSERT_EQ(a.maxOutputRelError, b.maxOutputRelError) << what;
}

/** Workload set shared by all matrix cases (built once: the dense
 * reference + keys are the expensive part, not the engine). */
struct TaskFixture
{
    std::vector<AttentionWorkload> workloads;
    std::vector<HeadTask> prefill;
    std::vector<HeadTask> decode;
    std::vector<HeadTask> mixed;

    TaskFixture()
    {
        // Ragged prefill shapes: one giant head (index 0) that a
        // static split would serialize behind, several small ones,
        // and a single-row head (degenerate tile grid).
        std::vector<WorkloadSpec> specs;
        WorkloadSpec giant;
        giant.seq = 256;
        giant.queries = 24;
        giant.headDim = 16;
        giant.tokenDim = 24;
        giant.seed = testutil::kTestSeed + 1;
        specs.push_back(giant);
        for (int i = 0; i < 4; ++i) {
            WorkloadSpec s;
            s.seq = 48 + 16 * i;
            s.queries = 3 + i;
            s.headDim = 16;
            s.tokenDim = 24;
            s.seed = testutil::kTestSeed + 2 + i;
            specs.push_back(s);
        }
        WorkloadSpec tiny;
        tiny.seq = 32;
        tiny.queries = 1;
        tiny.headDim = 16;
        tiny.tokenDim = 24;
        tiny.seed = testutil::kTestSeed + 9;
        specs.push_back(tiny);
        workloads.reserve(specs.size());
        for (const WorkloadSpec &s : specs)
            workloads.push_back(generateWorkload(s));

        for (std::size_t i = 0; i < workloads.size(); ++i) {
            HeadTask t;
            t.workload = &workloads[i];
            t.batch = static_cast<int>(i / 2);
            t.head = static_cast<int>(i % 2);
            prefill.push_back(t);

            // Decode view of the same heads: most keys cached.
            HeadTask d = t;
            d.pastLen = static_cast<int>(
                workloads[i].k.rows() > 8
                    ? workloads[i].k.rows() - 4
                    : 0);
            decode.push_back(d);

            mixed.push_back(i % 2 ? d : t);
        }
    }
};

const TaskFixture &
fixture()
{
    static const TaskFixture f;
    return f;
}

EngineConfig
baseConfig(bool dynamic, ThreadPool *pool)
{
    EngineConfig cfg;
    cfg.pipeline.topkFrac = 0.25;
    cfg.rowTile = 4; // several tiles per head
    cfg.dynamicSharding = dynamic;
    cfg.computeQuality = false; // the matrix is about scheduling
    cfg.pool = pool;
    return cfg;
}

class EngineInvariance
    : public ::testing::TestWithParam<const char *>
{
  protected:
    const std::vector<HeadTask> &
    tasks() const
    {
        const TaskFixture &f = fixture();
        const std::string which = GetParam();
        if (which == "prefill")
            return f.prefill;
        if (which == "decode")
            return f.decode;
        return f.mixed;
    }
};

TEST_P(EngineInvariance, BitExactAcrossThreadsAndSchedulers)
{
    const std::vector<HeadTask> &ts = tasks();

    // Reference: serial, static split.
    EngineResult ref;
    {
        ThreadPool::ScopedSerial serial;
        ref = Engine(baseConfig(false, nullptr)).run(ts);
    }
    ASSERT_EQ(ref.heads.size(), ts.size());
    ASSERT_GT(ref.totalOps().total(), 0);

    // Serial dynamic must run the identical chunk grid.
    {
        ThreadPool::ScopedSerial serial;
        const EngineResult er =
            Engine(baseConfig(true, nullptr)).run(ts);
        expectSameEngineResult(er, ref, "serial/dynamic");
    }

    for (int threads : {1, 2, 3, 7, 16}) {
        ThreadPool pool(threads);
        for (bool dynamic : {false, true}) {
            const EngineResult er =
                Engine(baseConfig(dynamic, &pool)).run(ts);
            const std::string what =
                std::string(GetParam()) + "/" +
                std::to_string(threads) + "t/" +
                (dynamic ? "dynamic" : "static");
            expectSameEngineResult(er, ref, what.c_str());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Matrix, EngineInvariance,
                         ::testing::Values("prefill", "decode",
                                           "mixed"));

TEST(EngineInvariance, QualityMetricsInvariantToo)
{
    // One smaller case with the quality stage on: its reductions are
    // also merged canonically, so even the float metrics match.
    const TaskFixture &f = fixture();
    std::vector<HeadTask> ts(f.prefill.begin(),
                             f.prefill.begin() + 3);
    EngineConfig cfg = baseConfig(true, nullptr);
    cfg.computeQuality = true;
    EngineResult ref;
    {
        ThreadPool::ScopedSerial serial;
        EngineConfig scfg = cfg;
        scfg.dynamicSharding = false;
        ref = Engine(scfg).run(ts);
    }
    ThreadPool pool(7);
    cfg.pool = &pool;
    const EngineResult er = Engine(cfg).run(ts);
    expectSameEngineResult(er, ref, "quality/7t/dynamic");
}

TEST(EngineInvariance, MoreThreadsThanWork)
{
    // Degenerate shard shape: one task, 16 participants, both
    // schedulers — everyone but one claimant must find no work.
    const TaskFixture &f = fixture();
    std::vector<HeadTask> one(f.prefill.begin(),
                              f.prefill.begin() + 1);
    EngineResult ref;
    {
        ThreadPool::ScopedSerial serial;
        ref = Engine(baseConfig(false, nullptr)).run(one);
    }
    ThreadPool pool(16);
    for (bool dynamic : {false, true}) {
        const EngineResult er =
            Engine(baseConfig(dynamic, &pool)).run(one);
        expectSameEngineResult(er, ref,
                               dynamic ? "one-task/dynamic"
                                       : "one-task/static");
    }
}

} // namespace
} // namespace sofa
