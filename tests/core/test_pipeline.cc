#include <gtest/gtest.h>

#include "attention/reference.h"
#include "core/pipeline.h"
#include "model/suite.h"

namespace sofa {
namespace {

AttentionWorkload
pipelineWorkload(int seq = 512, int queries = 32)
{
    WorkloadSpec spec;
    spec.seq = seq;
    spec.queries = queries;
    spec.headDim = 32;
    spec.tokenDim = 48;
    spec.mixture = {0.2, 0.8, 0.0};
    return generateWorkload(spec);
}

TEST(Pipeline, RunsAndProducesSaneQuality)
{
    auto w = pipelineWorkload();
    PipelineConfig cfg;
    cfg.topkFrac = 0.25;
    auto res = runSofaPipeline(w, cfg);
    EXPECT_EQ(res.output.rows(), w.q.rows());
    EXPECT_GT(res.massRecall, 0.85);
    EXPECT_GT(res.topkRecall, 0.5);
    EXPECT_LT(res.outputRelError, 0.25);
    EXPECT_EQ(res.selections.size(), w.q.rows());
}

TEST(Pipeline, PredictionIsMultiplierFree)
{
    auto w = pipelineWorkload(128, 8);
    PipelineConfig cfg;
    auto res = runSofaPipeline(w, cfg);
    EXPECT_EQ(res.predictionOps.muls(), 0);
    EXPECT_GT(res.predictionOps.shifts(), 0);
}

TEST(Pipeline, OnDemandKvGeneratesSubset)
{
    auto w = pipelineWorkload(512, 16);
    PipelineConfig cfg;
    cfg.topkFrac = 0.1;
    auto res = runSofaPipeline(w, cfg);
    EXPECT_LT(res.keysGenerated, 512);
    EXPECT_GT(res.keysGenerated, 0);
}

TEST(Pipeline, MoreKeepBetterQuality)
{
    auto w = pipelineWorkload();
    PipelineConfig lo, hi;
    lo.topkFrac = 0.05;
    hi.topkFrac = 0.5;
    auto rl = runSofaPipeline(w, lo);
    auto rh = runSofaPipeline(w, hi);
    EXPECT_GT(rh.massRecall, rl.massRecall);
    EXPECT_LE(rh.accuracyLossPct, rl.accuracyLossPct);
    EXPECT_LT(rh.outputRelError, rl.outputRelError + 1e-9);
}

TEST(Pipeline, CheaperThanBaselineAtSameKeep)
{
    // Fig. 17: DLZS+SADS+SU-FA cut normalized complexity vs the
    // 4-bit + vanilla-sort + FA-2 baseline at equal sparsity.
    auto w = pipelineWorkload(1024, 32);
    PipelineConfig cfg;
    cfg.topkFrac = 0.2;
    auto sofa_run = runSofaPipeline(w, cfg);
    auto base_run = runBaselinePipeline(w, 0.2);

    // Baseline prediction runs on a 4-bit datapath: cost its ops at
    // quarter width, SOFA's shift-add prediction at int8 width.
    OpCosts narrow = OpCosts::scaled(0.5);
    const double sofa_cost =
        sofa_run.predictionOps.normalized(narrow) +
        sofa_run.sortOps.normalized() +
        sofa_run.formalOps.normalized();
    const double base_cost =
        base_run.predictionOps.normalized(narrow) +
        base_run.sortOps.normalized() +
        base_run.formalOps.normalized();
    EXPECT_LT(sofa_cost, base_cost);
}

TEST(Pipeline, BaselineQualityComparable)
{
    auto w = pipelineWorkload();
    auto base = runBaselinePipeline(w, 0.25);
    EXPECT_GT(base.massRecall, 0.9);
    EXPECT_LT(base.outputRelError, 0.2);
}

TEST(Pipeline, MinimalKeepFractionMonotoneInLoss)
{
    auto w = pipelineWorkload();
    PipelineConfig cfg;
    const double k0 = minimalKeepFraction(w, cfg, 0.25);
    const double k1 = minimalKeepFraction(w, cfg, 1.0);
    const double k2 = minimalKeepFraction(w, cfg, 2.0);
    EXPECT_GE(k0, k1);
    EXPECT_GE(k1, k2);
    EXPECT_GT(k2, 0.0);
}

TEST(Pipeline, MinimalKeepMeetsLossTarget)
{
    auto w = pipelineWorkload();
    PipelineConfig cfg;
    PipelineResult at_min;
    minimalKeepFraction(w, cfg, 1.0, &at_min);
    EXPECT_LE(at_min.accuracyLossPct, 1.0 + 1e-9);
}

TEST(Pipeline, TotalOpsIsSumOfStages)
{
    auto w = pipelineWorkload(128, 8);
    auto res = runSofaPipeline(w, PipelineConfig{});
    EXPECT_EQ(res.totalOps().total(),
              res.predictionOps.total() + res.sortOps.total() +
                  res.formalOps.total());
}

TEST(Pipeline, SuiteBenchmarkSmoke)
{
    // One small suite benchmark end to end.
    auto suite = suiteSmall();
    ASSERT_FALSE(suite.empty());
    auto spec = suite[0].workloadSpec(256, 16);
    auto w = generateWorkload(spec);
    PipelineConfig cfg;
    cfg.topkFrac = 0.3;
    auto res = runSofaPipeline(w, cfg);
    EXPECT_GT(res.massRecall, 0.8);
}

} // namespace
} // namespace sofa
