#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "core/dlzs.h"
#include "model/workload.h"
#include "testutil.h"
#include "sparsity/metrics.h"
#include "sparsity/topk.h"

namespace sofa {
namespace {

TEST(LzEncode, CodesMatchLeadingZeros)
{
    MatI8 m(1, 4);
    m(0, 0) = 20;   // 00010100 -> LZ 3
    m(0, 1) = -4;   // |x|=00000100 -> LZ 5
    m(0, 2) = 0;    // zero flag
    m(0, 3) = -128; // LZ 0
    LzMatrix lz = lzEncodeI8(m);
    EXPECT_EQ(lz.codes(0, 0).lz, 3);
    EXPECT_EQ(lz.codes(0, 0).sign, 1);
    EXPECT_EQ(lz.codes(0, 1).lz, 5);
    EXPECT_EQ(lz.codes(0, 1).sign, -1);
    EXPECT_TRUE(lz.codes(0, 2).isZero());
    EXPECT_EQ(lz.codes(0, 3).lz, 0);
}

TEST(LzEncode, BitsPerElementCompact)
{
    // 8-bit source: sign + 4-bit LZ = 5 bits (the "4-bit weight"
    // storage of Fig. 7); 16-bit source: sign + 5 bits = 6.
    MatI8 m8(1, 1);
    LzMatrix l8 = lzEncodeI8(m8);
    EXPECT_EQ(l8.bitsPerElement(), 5);
    MatI16 m16(1, 1);
    LzMatrix l16 = lzEncodeI16(m16);
    EXPECT_EQ(l16.bitsPerElement(), 6);
}

TEST(LzEncode, OpCounterChargesLzcChain)
{
    MatI8 m(2, 3);
    OpCounter ops;
    lzEncodeI8(m, &ops);
    EXPECT_EQ(ops.cmps(), 2 * 3 * 8);
}

TEST(DlzsProduct, ZeroOperands)
{
    LzCode zero{0, 8};
    LzCode five{1, 5}; // value ~4..7 range, exponent 3
    EXPECT_EQ(dlzsProduct(0, 8, five, 8), 0);
    EXPECT_EQ(dlzsProduct(42, 8, zero, 8), 0);
}

TEST(DlzsProduct, SignRules)
{
    LzCode pos{1, 4}; // exponent 4
    LzCode neg{-1, 4};
    EXPECT_GT(dlzsProduct(3, 8, pos, 8), 0);
    EXPECT_LT(dlzsProduct(-3, 8, pos, 8), 0);
    EXPECT_LT(dlzsProduct(3, 8, neg, 8), 0);
    EXPECT_GT(dlzsProduct(-3, 8, neg, 8), 0);
}

TEST(DlzsProduct, MagnitudeIsShiftOfExactOperand)
{
    // y with LZ=3 in 8 bits -> exponent 5 -> product = x << 5.
    LzCode y{1, 3};
    EXPECT_EQ(dlzsProduct(6, 8, y, 8), 6 << 5);
}

TEST(DlzsProduct, BoundedRelativeError)
{
    // For positive x, y: estimate = x * 2^(W-LZy) = x * y / My with
    // My in [0.5, 1) -> estimate in [true, 2*true).
    for (int x : {3, 17, 100, 127}) {
        for (int y : {1, 5, 20, 90, 127}) {
            MatI8 ym(1, 1);
            ym(0, 0) = static_cast<std::int8_t>(y);
            LzCode code = lzEncodeI8(ym).codes(0, 0);
            const double est = static_cast<double>(
                dlzsProduct(x, 8, code, 8));
            const double truth = static_cast<double>(x) * y;
            EXPECT_GE(est, truth - 1e-9) << x << "*" << y;
            EXPECT_LT(est, 2.0 * truth + 1e-9) << x << "*" << y;
        }
    }
}

TEST(VanillaLzProduct, LargerErrorThanDlzs)
{
    // The vanilla scheme one-hot-encodes BOTH operands; after
    // removing each scheme's systematic bias (measured empirically,
    // as the descale stage does), its residual error is larger than
    // DLZS's, which keeps one operand exact ("half error").
    Rng rng(3);
    const int n = 2000;
    std::vector<double> d_ratio, v_ratio;
    for (int i = 0; i < n; ++i) {
        const int x = static_cast<int>(rng.uniformInt(1, 127));
        const int y = static_cast<int>(rng.uniformInt(1, 127));
        MatI8 ym(1, 1);
        ym(0, 0) = static_cast<std::int8_t>(y);
        LzCode code = lzEncodeI8(ym).codes(0, 0);
        const double truth = static_cast<double>(x) * y;
        d_ratio.push_back(dlzsProduct(x, 8, code, 8) / truth);
        v_ratio.push_back(vanillaLzProduct(x, 8, y, 8) / truth);
    }
    const double d_bias = mean(d_ratio);
    const double v_bias = mean(v_ratio);
    double d_err = 0.0, v_err = 0.0;
    for (int i = 0; i < n; ++i) {
        d_err += std::fabs(d_ratio[i] / d_bias - 1.0);
        v_err += std::fabs(v_ratio[i] / v_bias - 1.0);
    }
    EXPECT_LT(d_err, v_err);
    // "Half error": the debiased DLZS error is roughly half
    // vanilla's (one exact operand instead of none).
    EXPECT_LT(d_err / v_err, 0.8);
}

TEST(DlzsKPrediction, MultiplierFree)
{
    MatI8 tokens(8, 16);
    MatI8 wk(16, 4);
    Rng rng(9);
    for (auto &v : tokens.data())
        v = static_cast<std::int8_t>(rng.uniformInt(-100, 100));
    for (auto &v : wk.data())
        v = static_cast<std::int8_t>(rng.uniformInt(-100, 100));
    LzMatrix wlz = lzEncodeI8(wk);
    OpCounter ops;
    dlzsKPrediction(tokens, wlz, &ops);
    EXPECT_EQ(ops.muls(), 0);
    EXPECT_EQ(ops.exps(), 0);
    EXPECT_GT(ops.shifts(), 0);
    EXPECT_GT(ops.adds(), 0);
}

TEST(DlzsPredict, ScoresCorrelateWithExact)
{
    auto w = testutil::makeWorkload(256, 32, /*headDim=*/32,
                                    /*tokenDim=*/48);
    DlzsPrediction pred = dlzsPredict(w.tokens, w.wk, w.q);
    ASSERT_EQ(pred.scoresHat.rows(), w.scores.rows());
    ASSERT_EQ(pred.scoresHat.cols(), w.scores.cols());

    // Pearson correlation between predicted and exact scores should
    // be strongly positive (the prediction only needs ranking power).
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    const double n = static_cast<double>(w.scores.size());
    for (std::size_t i = 0; i < w.scores.size(); ++i) {
        const double x = pred.scoresHat.data()[i];
        const double y = w.scores.data()[i];
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    const double corr = cov / std::sqrt(vx * vy);
    EXPECT_GT(corr, 0.75);
}

TEST(DlzsPredict, TopkRecallHigh)
{
    auto w = testutil::makeWorkload(512, 32, /*headDim=*/64,
                                    /*tokenDim=*/128);
    DlzsPrediction pred = dlzsPredict(w.tokens, w.wk, w.q);
    const int k = 64;
    auto predicted = exactTopKRows(pred.scoresHat, k);
    auto exact = exactTopKRows(w.scores, k);
    EXPECT_GT(topkRecall(predicted, exact), 0.7);
    // What matters downstream: the kept mass.
    EXPECT_GT(softmaxMassRecall(w.scores, predicted), 0.9);
}

TEST(DlzsPredict, NoMultipliesAnywhere)
{
    auto w = testutil::makeWorkload(64, 8, /*headDim=*/64,
                                    /*tokenDim=*/128);
    DlzsPrediction pred = dlzsPredict(w.tokens, w.wk, w.q);
    EXPECT_EQ(pred.ops.muls(), 0);
    EXPECT_GT(pred.ops.shifts(), 0);
}

TEST(DlzsPredict, WeightBitsSmallerThanInt8)
{
    auto w = testutil::makeWorkload(64, 8, /*headDim=*/64,
                                    /*tokenDim=*/128);
    DlzsPrediction pred = dlzsPredict(w.tokens, w.wk, w.q);
    const double int8_bits =
        static_cast<double>(w.wk.rows()) * w.wk.cols() * 8.0;
    EXPECT_LT(pred.predictionBitsFetched, int8_bits);
}

} // namespace
} // namespace sofa
