#include <gtest/gtest.h>

#include <cmath>

#include "core/dse.h"

namespace sofa {
namespace {

TEST(DseSpace, TotalConfigurationsHuge)
{
    // BERT-Base: 12 layers, 16 Tc choices, 10 top-k choices
    // -> 16^12 * 10 > 10^15 (the paper's intractability claim).
    DseSpace space;
    space.layers = 12;
    EXPECT_GT(space.totalConfigurations(), 1e15);
}

TEST(DseSpace, RandomPointsValid)
{
    DseSpace space;
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        DsePoint p = space.randomPoint(rng);
        EXPECT_EQ(p.tcPerLayer.size(), 12u);
        for (int tc : p.tcPerLayer) {
            EXPECT_GE(tc, space.tcMin);
            EXPECT_LE(tc, space.tcMax);
            EXPECT_EQ((tc - space.tcMin) % space.tcStep, 0);
        }
        EXPECT_GE(p.topkFrac, space.topkMin - 1e-9);
        EXPECT_LE(p.topkFrac, space.topkMax + 1e-9);
    }
}

TEST(DsePoint, FeaturesNormalized)
{
    DsePoint p;
    p.tcPerLayer = {2, 32};
    p.topkFrac = 0.25;
    auto f = p.features(32);
    ASSERT_EQ(f.size(), 3u);
    EXPECT_NEAR(f[0], 2.0 / 32.0, 1e-12);
    EXPECT_NEAR(f[1], 1.0, 1e-12);
    EXPECT_NEAR(f[2], 0.25, 1e-12);
}

TEST(GaussianProcess, InterpolatesTrainingPoints)
{
    GaussianProcess gp(0.5, 1.0, 1e-8);
    std::vector<std::vector<double>> x = {{0.0}, {0.5}, {1.0}};
    std::vector<double> y = {1.0, 0.0, 1.0};
    gp.fit(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
        double mu, var;
        gp.predict(x[i], &mu, &var);
        EXPECT_NEAR(mu, y[i], 1e-3);
        EXPECT_LT(var, 1e-4);
    }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData)
{
    GaussianProcess gp(0.2, 1.0, 1e-6);
    gp.fit({{0.0}}, {0.5});
    double mu0, var0, mu1, var1;
    gp.predict({0.0}, &mu0, &var0);
    gp.predict({3.0}, &mu1, &var1);
    EXPECT_LT(var0, var1);
    // Far from data the mean reverts to the prior (training mean).
    EXPECT_NEAR(mu1, 0.5, 1e-3);
}

TEST(ExpectedImprovement, ZeroWhenCertainAndWorse)
{
    EXPECT_NEAR(expectedImprovement(10.0, 1e-12, 0.0), 0.0, 1e-6);
}

TEST(ExpectedImprovement, PositiveWhenBetter)
{
    EXPECT_GT(expectedImprovement(-1.0, 0.1, 0.0), 0.5);
}

TEST(ExpectedImprovement, GrowsWithUncertainty)
{
    const double lo = expectedImprovement(0.5, 0.01, 0.0);
    const double hi = expectedImprovement(0.5, 1.0, 0.0);
    EXPECT_GT(hi, lo);
}

namespace {

/** Synthetic objective with a known optimum: prefers Tc = 16 and
 * topk = 0.2 (quadratic bowl). */
DseEvaluation
bowl(const DsePoint &p)
{
    DseEvaluation e;
    double acc = 0.0;
    for (int tc : p.tcPerLayer) {
        const double d = (tc - 16.0) / 32.0;
        acc += d * d;
    }
    const double dk = (p.topkFrac - 0.2) / 0.5;
    e.len = acc / p.tcPerLayer.size() + dk * dk;
    e.lcmp = analyticLcmp(p, 1024);
    e.lexp = analyticLexp(p, 1024);
    return e;
}

} // namespace

TEST(BayesianSearch, ImprovesOverIterations)
{
    DseSpace space;
    space.layers = 4;
    DseObjectiveWeights w{0.05, 0.05};
    DseResult res = bayesianSearch(space, w, bowl, 40, 8, 128, 7);
    EXPECT_EQ(res.evaluations, 48);
    // History is the best-so-far curve: non-increasing.
    for (std::size_t i = 1; i < res.history.size(); ++i)
        EXPECT_LE(res.history[i], res.history[i - 1] + 1e-12);
    // The found optimum beats the initial design.
    EXPECT_LT(res.history.back(), res.history[7] + 1e-12);
}

TEST(BayesianSearch, BeatsRandomOnBudget)
{
    DseSpace space;
    space.layers = 6;
    DseObjectiveWeights w{0.05, 0.05};
    DseResult bo = bayesianSearch(space, w, bowl, 40, 8, 128, 21);
    DseResult rs = randomSearch(space, w, bowl, 48, 22);
    // Same evaluation budget; BO should not be materially worse and
    // is usually better on a smooth bowl (both searches are noisy on
    // a 7-dimensional discrete space at this budget).
    EXPECT_LE(bo.bestObjective, rs.bestObjective * 1.3);
}

TEST(AnalyticPenalties, LcmpIncreasesWithBc)
{
    // Larger Bc (smaller Tc) -> higher sorting penalty (Eq. 3).
    DsePoint coarse, fine;
    coarse.tcPerLayer = {2, 2};  // Bc = S/2
    fine.tcPerLayer = {32, 32};  // Bc = S/32
    EXPECT_GT(analyticLcmp(coarse, 1024), analyticLcmp(fine, 1024));
}

TEST(AnalyticPenalties, LexpIncreasesWithTc)
{
    // More tiles -> more SU-FA exp overhead (Eq. 4).
    DsePoint coarse, fine;
    coarse.tcPerLayer = {2, 2};
    fine.tcPerLayer = {32, 32};
    EXPECT_LT(analyticLexp(coarse, 1024), analyticLexp(fine, 1024));
}

TEST(DseObjective, WeightsCombine)
{
    DseEvaluation e;
    e.len = 1.0;
    e.lcmp = 2.0;
    e.lexp = 3.0;
    DseObjectiveWeights w{0.5, 0.25};
    EXPECT_DOUBLE_EQ(e.objective(w), 1.0 + 1.0 + 0.75);
}

} // namespace
} // namespace sofa
