/**
 * @file
 * core/tiler: planner determinism for a fixed (machine, shape) pair,
 * argmin membership in the search grid, TilePlan serialization
 * round-trips, the SOFA_AUTOTILE override precedence, bit-exact
 * engine results for EVERY plan the search grid can emit (the
 * acceptance contract: tile knobs are perf-only), and the
 * TileCostModel-backed DSE term's bit-compatibility at gamma = 0.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/dse.h"
#include "core/engine.h"
#include "core/tiler.h"
#include "testprop.h"

namespace sofa {
namespace {

MachineDescriptor
randomMachine(Rng &rng)
{
    MachineDescriptor m;
    m.l1Bytes = static_cast<std::size_t>(
        rng.uniformInt(16, 64) * 1024);
    m.l2Bytes = static_cast<std::size_t>(
        rng.uniformInt(128, 1024) * 1024);
    m.llcBytes = static_cast<std::size_t>(
        rng.uniformInt(2, 32) * 1024 * 1024);
    m.cores = static_cast<int>(rng.uniformInt(1, 32));
    m.simdLanes = rng.bernoulli(0.5) ? 8 : 1;
    return m;
}

TileShape
randomShape(Rng &rng)
{
    TileShape s;
    s.headTasks = static_cast<int>(rng.uniformInt(1, 16));
    s.rowsPerHead = static_cast<int>(
        testprop::edgeSize(rng, 1, 256, 64));
    s.contextLen = static_cast<int>(rng.uniformInt(16, 2048));
    s.headDim = static_cast<int>(rng.uniformInt(8, 128));
    s.tokenDim = static_cast<int>(rng.uniformInt(8, 256));
    s.pastLen = rng.bernoulli(0.5)
                    ? 0
                    : static_cast<int>(
                          rng.uniformInt(0, s.contextLen));
    s.topkFrac = rng.uniform(0.05, 0.5);
    return s;
}

bool
planInGrid(const TilePlan &p, const std::vector<TilePlan> &grid)
{
    for (const TilePlan &g : grid)
        if (g == p)
            return true;
    return false;
}

TEST(Tiler, PlanTilesDeterministicForFixedMachineAndShape)
{
    testprop::forEachSeededCase(24, [](int c, Rng &rng) {
        const MachineDescriptor m = randomMachine(rng);
        const TileShape s = randomShape(rng);
        const TileCostModel model(m);
        const TilePlan a = planTiles(s, model);
        const TilePlan b = planTiles(s, model);
        EXPECT_EQ(a, b) << "case " << c << ": " << a.describe()
                        << " vs " << b.describe();
        // The choice is the grid argmin: nothing in the grid beats
        // it, and it is itself a grid member.
        const std::vector<TilePlan> grid = tileSearchGrid(s, m);
        EXPECT_TRUE(planInGrid(a, grid)) << "case " << c;
        const double best = model.planSeconds(a, s);
        for (const TilePlan &g : grid)
            EXPECT_LE(best, model.planSeconds(g, s))
                << "case " << c << ": " << g.describe();
    });
}

TEST(Tiler, SearchGridClampsRowKnobsToShape)
{
    testprop::forEachSeededCase(12, [](int c, Rng &rng) {
        const MachineDescriptor m = randomMachine(rng);
        TileShape s = randomShape(rng);
        s.rowsPerHead = static_cast<int>(rng.uniformInt(1, 9));
        for (const TilePlan &p : tileSearchGrid(s, m)) {
            EXPECT_GE(p.rowTile, 1) << "case " << c;
            EXPECT_LE(p.rowTile, s.rowsPerHead) << "case " << c;
            EXPECT_GE(p.sadsSpan, 1) << "case " << c;
            EXPECT_LE(p.sadsSpan, s.rowsPerHead) << "case " << c;
            EXPECT_EQ(p.blockK % 4, 0u) << "case " << c;
            EXPECT_GT(p.panelBytes, 0u) << "case " << c;
            EXPECT_GE(p.shardGrain, 1) << "case " << c;
        }
    });
}

TEST(Tiler, DescribeParseRoundTrip)
{
    testprop::forEachSeededCase(24, [](int c, Rng &rng) {
        const MachineDescriptor m = randomMachine(rng);
        const TileShape s = randomShape(rng);
        const std::vector<TilePlan> grid = tileSearchGrid(s, m);
        TilePlan p = grid[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(grid.size()) - 1))];
        p.prefillChunkRows =
            rng.bernoulli(0.5)
                ? 0
                : static_cast<int>(rng.uniformInt(1, 4096));
        TilePlan parsed;
        ASSERT_TRUE(parseTilePlan(p.describe(), &parsed))
            << "case " << c << ": " << p.describe();
        EXPECT_EQ(parsed, p) << "case " << c;
        EXPECT_EQ(parsed.describe(), p.describe()) << "case " << c;
    });
}

TEST(Tiler, ParseRejectsMalformedLeavingTargetUntouched)
{
    const TilePlan before;
    for (const char *bad : {
             "",                                     // missing keys
             "panel=1,blockk=4,rowtile=1,sads=1",    // too few
             "panel=0,blockk=4,rowtile=1,sads=1,grain=1,chunk=0",
             "panel=1,blockk=6,rowtile=1,sads=1,grain=1,chunk=0",
             "panel=1,blockk=4,rowtile=0,sads=1,grain=1,chunk=0",
             "panel=1,blockk=4,rowtile=1,sads=1,grain=1,bogus=0",
             "panel=x,blockk=4,rowtile=1,sads=1,grain=1,chunk=0",
         }) {
        TilePlan p;
        EXPECT_FALSE(parseTilePlan(bad, &p)) << bad;
        EXPECT_EQ(p, before) << bad;
    }
}

TEST(Tiler, AutoTileOverridePrecedence)
{
    {
        ScopedAutoTile follow(-1);
        EXPECT_TRUE(autoTileEnabled(true));
        EXPECT_FALSE(autoTileEnabled(false));
    }
    {
        ScopedAutoTile off(0);
        EXPECT_FALSE(autoTileEnabled(true));
        EXPECT_FALSE(autoTileEnabled(false));
    }
    {
        ScopedAutoTile on(1);
        EXPECT_TRUE(autoTileEnabled(true));
        EXPECT_TRUE(autoTileEnabled(false));
    }
}

/** Outputs, selections and op counts must agree exactly. */
void
expectSameHeads(const EngineResult &a, const EngineResult &b,
                const std::string &label)
{
    ASSERT_EQ(a.heads.size(), b.heads.size()) << label;
    for (std::size_t i = 0; i < a.heads.size(); ++i) {
        const PipelineResult &x = a.heads[i].result;
        const PipelineResult &y = b.heads[i].result;
        EXPECT_EQ(x.output, y.output) << label << " head " << i;
        EXPECT_EQ(x.selections, y.selections)
            << label << " head " << i;
        EXPECT_EQ(x.totalOps().total(), y.totalOps().total())
            << label << " head " << i;
        EXPECT_EQ(x.keysGenerated, y.keysGenerated)
            << label << " head " << i;
    }
    EXPECT_EQ(a.totalOps().total(), b.totalOps().total()) << label;
    EXPECT_EQ(a.keysGenerated, b.keysGenerated) << label;
}

TEST(Tiler, EveryGridPlanBitExactVsDefaultPlan)
{
    ModelWorkloadSpec spec;
    spec.batch = 1;
    spec.heads = 2;
    spec.seq = 64;
    spec.queries = 6;
    spec.headDim = 16;
    spec.tokenDim = 24;
    const ModelWorkload mw = generateModelWorkload(spec);

    EngineConfig def;
    def.computeQuality = false;
    const EngineResult base = runEngine(mw, def);

    MachineDescriptor m; // fixed descriptor: deterministic grid
    const std::vector<TilePlan> grid = tileSearchGrid(
        tileShape(spec, def.pipeline.topkFrac), m);
    ASSERT_FALSE(grid.empty());
    for (const TilePlan &p : grid) {
        EngineConfig cfg = def;
        cfg.fixedPlan = p;
        expectSameHeads(base, runEngine(mw, cfg), p.describe());
    }
}

TEST(Tiler, AutoTileEngineBitExactAndPlanExposed)
{
    ScopedAutoTile follow(-1); // the config flag decides
    ModelWorkloadSpec spec;
    spec.batch = 2;
    spec.heads = 2;
    spec.seq = 96;
    spec.queries = 9;
    spec.headDim = 16;
    spec.tokenDim = 24;
    const ModelWorkload mw = generateModelWorkload(spec);

    EngineConfig def, at;
    at.autoTile = true;
    expectSameHeads(runEngine(mw, def), runEngine(mw, at),
                    "autoTile");

    // The stepped path exposes the resolved plan; with autoTile off
    // the config's rowTile doubles as the SADS span.
    std::vector<HeadTask> tasks;
    for (int b = 0; b < mw.batch(); ++b)
        for (int h = 0; h < mw.heads(); ++h) {
            HeadTask t;
            t.workload = &mw.head(b, h);
            t.batch = b;
            t.head = h;
            tasks.push_back(t);
        }
    EngineConfig fixed;
    fixed.rowTile = 7;
    const Engine fixed_engine(fixed);
    EngineRun fixed_run(fixed_engine, tasks);
    EXPECT_EQ(fixed_run.plan().rowTile, 7);
    EXPECT_EQ(fixed_run.plan().sadsSpan, 7);

    const Engine at_engine(at);
    EngineRun at_run(at_engine, tasks);
    EXPECT_GE(at_run.plan().rowTile, 1);
    EXPECT_LE(at_run.plan().rowTile, spec.queries);
    EXPECT_EQ(at_run.plan().blockK % 4, 0u);
}

TEST(Tiler, DseGammaDefaultsToPaperObjective)
{
    DseObjectiveWeights w; // gamma = 0
    DseEvaluation e;
    e.len = 0.5;
    e.lcmp = 0.3;
    e.lexp = 0.2;
    e.ltile = 123.0; // must not leak into the default objective
    EXPECT_DOUBLE_EQ(e.objective(w),
                     0.5 + w.alpha * 0.3 + w.beta * 0.2);
    w.gamma = 0.1;
    EXPECT_DOUBLE_EQ(e.objective(w),
                     0.5 + w.alpha * 0.3 + w.beta * 0.2 +
                         0.1 * 123.0);
}

TEST(Tiler, DseTileCostNonNegativeAndZeroAtPlannerChoice)
{
    const MachineDescriptor m;
    const TileCostModel model(m);
    TileShape s;
    s.rowsPerHead = 128;
    s.contextLen = 512;
    DsePoint p;
    p.tcPerLayer = {2, 4, 8, 16, 32};
    const double cost = dseTileCost(p, s, model);
    EXPECT_TRUE(std::isfinite(cost));
    EXPECT_GE(cost, 0.0);
    // A layer tiling that reproduces the planner's row tile costs
    // exactly the floor.
    const TilePlan best = planTiles(s, model);
    DsePoint ideal;
    ideal.tcPerLayer = {
        std::max(1, s.contextLen / std::max(1, best.rowTile))};
    // Only exact when S / Tc round-trips to the planned tile.
    if (s.contextLen / ideal.tcPerLayer[0] == best.rowTile &&
        best.rowTile == best.sadsSpan) {
        EXPECT_DOUBLE_EQ(dseTileCost(ideal, s, model), 0.0);
    }
    EXPECT_DOUBLE_EQ(dseTileCost(DsePoint{}, s, model), 0.0);
}

} // namespace
} // namespace sofa
