#include <gtest/gtest.h>

#include "common/threadpool.h"
#include "core/engine.h"
#include "testutil.h"

namespace sofa {
namespace {

ModelWorkloadSpec
gridSpec(int batch = 2, int heads = 2)
{
    ModelWorkloadSpec spec;
    spec.batch = batch;
    spec.heads = heads;
    spec.seq = 128;
    spec.queries = 12;
    spec.headDim = 16;
    spec.tokenDim = 24;
    return spec;
}

/** Every field of the two per-head results must agree exactly. */
void
expectSameResult(const PipelineResult &a, const PipelineResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.selections, b.selections);
    EXPECT_EQ(a.predictionOps.total(), b.predictionOps.total());
    EXPECT_EQ(a.sortOps.total(), b.sortOps.total());
    EXPECT_EQ(a.formalOps.total(), b.formalOps.total());
    EXPECT_EQ(a.formalOps.muls(), b.formalOps.muls());
    EXPECT_EQ(a.formalOps.exps(), b.formalOps.exps());
    EXPECT_EQ(a.keysGenerated, b.keysGenerated);
    EXPECT_EQ(a.maxViolations, b.maxViolations);
    EXPECT_DOUBLE_EQ(a.massRecall, b.massRecall);
    EXPECT_DOUBLE_EQ(a.topkRecall, b.topkRecall);
    EXPECT_DOUBLE_EQ(a.outputRelError, b.outputRelError);
}

TEST(Engine, BitExactVsPerHeadPipelineLoopSerial)
{
    ThreadPool::ScopedSerial serial;
    const auto mw = generateModelWorkload(gridSpec());
    EngineConfig cfg;
    cfg.pipeline.topkFrac = 0.2;
    const EngineResult er = runEngine(mw, cfg);
    ASSERT_EQ(er.heads.size(), mw.size());
    const std::int64_t kept =
        pipelineKeepCount(cfg.pipeline.topkFrac, 128);
    const std::int64_t tiles_per_row =
        (kept + cfg.pipeline.sufa.blockCols - 1) /
        cfg.pipeline.sufa.blockCols;
    for (const HeadResult &hr : er.heads) {
        const PipelineResult ref = runSofaPipeline(
            mw.head(hr.batch, hr.head), cfg.pipeline);
        expectSameResult(hr.result, ref);
        EXPECT_EQ(hr.keysCached, 0); // prefill: no cache
        EXPECT_EQ(hr.sufaTiles, 12 * tiles_per_row);
    }
}

TEST(Engine, BitExactAcrossThreadCounts)
{
    const auto mw = generateModelWorkload(gridSpec(2, 3));
    EngineConfig cfg;
    cfg.rowTile = 4; // force several row tiles per head
    EngineResult serial_res;
    {
        ThreadPool::ScopedSerial serial;
        serial_res = runEngine(mw, cfg);
    }
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        EngineConfig tcfg = cfg;
        tcfg.pool = &pool;
        const EngineResult er = runEngine(mw, tcfg);
        ASSERT_EQ(er.heads.size(), serial_res.heads.size())
            << threads << " threads";
        for (std::size_t i = 0; i < er.heads.size(); ++i)
            expectSameResult(er.heads[i].result,
                             serial_res.heads[i].result);
        EXPECT_EQ(er.totalOps().total(),
                  serial_res.totalOps().total());
        EXPECT_EQ(er.maxViolations, serial_res.maxViolations);
    }
}

TEST(Engine, AggregatesAreHeadSums)
{
    const auto mw = generateModelWorkload(gridSpec());
    const EngineResult er = runEngine(mw, EngineConfig{});
    OpCounter pred, sort, formal;
    std::int64_t keys = 0, viol = 0;
    for (const HeadResult &hr : er.heads) {
        pred += hr.result.predictionOps;
        sort += hr.result.sortOps;
        formal += hr.result.formalOps;
        keys += hr.result.keysGenerated;
        viol += hr.result.maxViolations;
    }
    EXPECT_EQ(er.predictionOps.total(), pred.total());
    EXPECT_EQ(er.sortOps.total(), sort.total());
    EXPECT_EQ(er.formalOps.total(), formal.total());
    EXPECT_EQ(er.keysGenerated, keys);
    EXPECT_EQ(er.maxViolations, viol);
}

TEST(Engine, EmptyBatchRuns)
{
    ModelWorkloadSpec spec = gridSpec(0, 2);
    const auto mw = generateModelWorkload(spec);
    const EngineResult er = runEngine(mw, EngineConfig{});
    EXPECT_TRUE(er.heads.empty());
    EXPECT_EQ(er.totalOps().total(), 0);
    EXPECT_EQ(er.keysGenerated, 0);
    EXPECT_DOUBLE_EQ(er.meanMassRecall, 0.0);
}

TEST(Engine, SingleTokenDecodeUsesKvCache)
{
    ModelWorkloadSpec spec = gridSpec(1, 2);
    spec.pastLen = 127;
    spec.newTokens = 1;
    const auto mw = generateModelWorkload(spec);
    EngineConfig cfg;
    cfg.pipeline.topkFrac = 0.25;
    const EngineResult er = runEngine(mw, cfg);
    ASSERT_EQ(er.heads.size(), 2u);
    for (const HeadResult &hr : er.heads) {
        const AttentionWorkload &w = mw.head(hr.batch, hr.head);
        // One query row; the cache serves every required key below
        // pastLen, so at most one (the new token) is generated.
        EXPECT_EQ(hr.result.output.rows(), 1u);
        EXPECT_LE(hr.result.keysGenerated, 1);
        EXPECT_GT(hr.keysCached, 0);

        // Exact relation to the cache-less per-head pipeline: same
        // values, same counts except the cached keys' generation
        // charge.
        const PipelineResult ref =
            runSofaPipeline(w, cfg.pipeline);
        EXPECT_EQ(hr.result.output, ref.output);
        EXPECT_EQ(hr.result.selections, ref.selections);
        EXPECT_EQ(hr.result.keysGenerated + hr.keysCached,
                  ref.keysGenerated);
        OpCounter adjusted = hr.result.formalOps;
        adjusted += kvGenerationOps(hr.keysCached, w.spec.tokenDim,
                                    w.spec.headDim);
        EXPECT_EQ(adjusted.total(), ref.formalOps.total());
        EXPECT_EQ(adjusted.muls(), ref.formalOps.muls());
        EXPECT_EQ(adjusted.adds(), ref.formalOps.adds());
    }
    EXPECT_GT(er.keysCached, 0);
}

TEST(Engine, DecodeCheaperThanPrefillPerRow)
{
    ModelWorkloadSpec prefill = gridSpec(1, 2);
    ModelWorkloadSpec decode = gridSpec(1, 2);
    decode.pastLen = 124;
    decode.newTokens = 4;
    decode.seq = 0; // ignored in decode mode
    EngineConfig cfg;
    const auto pr = runEngine(generateModelWorkload(prefill), cfg);
    const auto dr = runEngine(generateModelWorkload(decode), cfg);
    const double pr_rows = 2.0 * prefill.queryRows();
    const double dr_rows = 2.0 * decode.queryRows();
    EXPECT_LT(dr.formalOps.normalized() / dr_rows,
              pr.formalOps.normalized() / pr_rows);
}

TEST(Engine, RaggedHeadsRun)
{
    // Heads of different shapes in one task list (ragged batches:
    // requests with different prompt lengths / query counts).
    WorkloadSpec a, b;
    a.seq = 96;
    a.queries = 7;
    a.headDim = 16;
    a.tokenDim = 24;
    b = a;
    b.seq = 160;
    b.queries = 3;
    b.seed = a.seed + 17;
    const AttentionWorkload wa = generateWorkload(a);
    const AttentionWorkload wb = generateWorkload(b);
    std::vector<HeadTask> tasks(2);
    tasks[0].workload = &wa;
    tasks[1].workload = &wb;
    tasks[1].head = 1;
    EngineConfig cfg;
    cfg.rowTile = 2;
    const EngineResult er = Engine(cfg).run(tasks);
    ASSERT_EQ(er.heads.size(), 2u);
    expectSameResult(er.heads[0].result,
                     runSofaPipeline(wa, cfg.pipeline));
    expectSameResult(er.heads[1].result,
                     runSofaPipeline(wb, cfg.pipeline));
    EXPECT_EQ(er.heads[0].result.output.rows(), 7u);
    EXPECT_EQ(er.heads[1].result.output.rows(), 3u);
}

TEST(Engine, RowTileDoesNotChangeResults)
{
    const auto mw = generateModelWorkload(gridSpec());
    EngineConfig coarse, fine;
    coarse.rowTile = 1024;
    fine.rowTile = 1;
    const EngineResult rc = runEngine(mw, coarse);
    const EngineResult rf = runEngine(mw, fine);
    ASSERT_EQ(rc.heads.size(), rf.heads.size());
    for (std::size_t i = 0; i < rc.heads.size(); ++i)
        expectSameResult(rc.heads[i].result, rf.heads[i].result);
}

TEST(Engine, RowsSmallerThanRowTileClamp)
{
    // rows < rowTile: the tile clamps to the actual row count before
    // sharding, so an oversized tile is just "one unit per head".
    ModelWorkloadSpec spec = gridSpec(1, 2);
    spec.queries = 3;
    const auto mw = generateModelWorkload(spec);
    EngineConfig cfg;
    cfg.rowTile = 4096;
    const EngineResult er = runEngine(mw, cfg);
    ASSERT_EQ(er.heads.size(), 2u);
    for (const HeadResult &hr : er.heads)
        expectSameResult(hr.result,
                         runSofaPipeline(mw.head(hr.batch, hr.head),
                                         cfg.pipeline));
    // Same under an explicit plan whose row knobs are all oversized.
    EngineConfig planned;
    TilePlan big;
    big.rowTile = 1 << 20;
    big.sadsSpan = 1 << 20;
    big.shardGrain = 64;
    planned.fixedPlan = big;
    const EngineResult ep = runEngine(mw, planned);
    ASSERT_EQ(ep.heads.size(), er.heads.size());
    for (std::size_t i = 0; i < ep.heads.size(); ++i)
        expectSameResult(ep.heads[i].result, er.heads[i].result);
}

TEST(Engine, AutoTileForcedOnStaysBitExact)
{
    // SOFA_AUTOTILE=1 plans runs even when the config leaves
    // autoTile off; every plan is results-neutral, so forcing the
    // planner can never change outputs or counts.
    const auto mw = generateModelWorkload(gridSpec());
    EngineConfig cfg; // autoTile off
    EngineResult base;
    {
        ScopedAutoTile off(0);
        base = runEngine(mw, cfg);
    }
    ScopedAutoTile on(1);
    const EngineResult forced = runEngine(mw, cfg);
    ASSERT_EQ(forced.heads.size(), base.heads.size());
    for (std::size_t i = 0; i < forced.heads.size(); ++i)
        expectSameResult(forced.heads[i].result,
                         base.heads[i].result);
    EXPECT_EQ(forced.totalOps().total(), base.totalOps().total());
}

TEST(Engine, QualityStageSkippable)
{
    const auto mw = generateModelWorkload(gridSpec(1, 1));
    EngineConfig cfg;
    cfg.computeQuality = false;
    const EngineResult er = runEngine(mw, cfg);
    // Outputs and counts are produced; quality metrics stay zero.
    EXPECT_GT(er.totalOps().total(), 0);
    EXPECT_GT(er.heads[0].result.output.rows(), 0u);
    EXPECT_DOUBLE_EQ(er.meanMassRecall, 0.0);
    EXPECT_DOUBLE_EQ(er.heads[0].result.outputRelError, 0.0);
}

TEST(Engine, StageNamesInPipelineOrder)
{
    const std::vector<std::string> names =
        Engine(EngineConfig{}).stageNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "dlzs_predict");
    EXPECT_EQ(names[1], "sads_topk");
    EXPECT_EQ(names[2], "kv_generate");
    EXPECT_EQ(names[3], "sufa_attention");
    EXPECT_EQ(names[4], "quality");
}

TEST(EngineRun, StepwiseMatchesWholeRun)
{
    const auto mw = generateModelWorkload(gridSpec());
    EngineConfig cfg;
    cfg.pipeline.topkFrac = 0.2;
    Engine engine(cfg);
    const EngineResult whole = engine.run(mw);

    std::vector<HeadTask> tasks;
    for (int b = 0; b < mw.batch(); ++b)
        for (int h = 0; h < mw.heads(); ++h) {
            HeadTask t;
            t.workload = &mw.head(b, h);
            t.batch = b;
            t.head = h;
            tasks.push_back(t);
        }
    EngineRun run(engine, tasks);
    EXPECT_EQ(run.stageCount(), 5u);
    std::size_t steps = 0;
    while (!run.done()) {
        EXPECT_EQ(run.nextStage(), steps);
        EXPECT_STREQ(run.nextStageName(),
                     engine.stageNames()[steps].c_str());
        run.step();
        ++steps;
    }
    EXPECT_EQ(steps, run.stageCount());
    EXPECT_EQ(run.nextStageName(), nullptr);
    const EngineResult stepped = run.finish();

    ASSERT_EQ(stepped.heads.size(), whole.heads.size());
    for (std::size_t i = 0; i < stepped.heads.size(); ++i)
        expectSameResult(stepped.heads[i].result,
                         whole.heads[i].result);
    EXPECT_EQ(stepped.totalOps().total(), whole.totalOps().total());
    EXPECT_DOUBLE_EQ(stepped.meanMassRecall, whole.meanMassRecall);
}

TEST(EngineRun, FinishRunsRemainingStages)
{
    const auto mw = generateModelWorkload(gridSpec(1, 2));
    Engine engine{EngineConfig{}};
    std::vector<HeadTask> tasks;
    for (int h = 0; h < 2; ++h) {
        HeadTask t;
        t.workload = &mw.head(0, h);
        t.head = h;
        tasks.push_back(t);
    }
    EngineRun run(engine, tasks);
    run.step(); // one stage by hand, finish() does the rest
    const EngineResult res = run.finish();
    const EngineResult whole = engine.run(mw);
    ASSERT_EQ(res.heads.size(), whole.heads.size());
    for (std::size_t i = 0; i < res.heads.size(); ++i)
        expectSameResult(res.heads[i].result,
                         whole.heads[i].result);
}

TEST(EngineRun, AggregateHeadResultsMatchesRunAggregate)
{
    const auto mw = generateModelWorkload(gridSpec());
    const EngineResult whole = runEngine(mw, EngineConfig{});
    // Re-aggregating the same heads reproduces every summary field.
    EngineResult again = aggregateHeadResults(whole.heads);
    EXPECT_EQ(again.totalOps().total(), whole.totalOps().total());
    EXPECT_EQ(again.keysGenerated, whole.keysGenerated);
    EXPECT_EQ(again.keysCached, whole.keysCached);
    EXPECT_DOUBLE_EQ(again.meanMassRecall, whole.meanMassRecall);
    EXPECT_DOUBLE_EQ(again.meanTopkRecall, whole.meanTopkRecall);
    EXPECT_DOUBLE_EQ(again.maxOutputRelError,
                     whole.maxOutputRelError);
    // And the empty aggregate is all zeros.
    const EngineResult empty = aggregateHeadResults({});
    EXPECT_EQ(empty.totalOps().total(), 0);
    EXPECT_DOUBLE_EQ(empty.meanMassRecall, 0.0);
}

TEST(Engine, DeterministicAcrossRuns)
{
    const auto mw = generateModelWorkload(gridSpec());
    const EngineResult a = runEngine(mw, EngineConfig{});
    const EngineResult b = runEngine(mw, EngineConfig{});
    ASSERT_EQ(a.heads.size(), b.heads.size());
    for (std::size_t i = 0; i < a.heads.size(); ++i)
        expectSameResult(a.heads[i].result, b.heads[i].result);
}

} // namespace
} // namespace sofa
