#include <gtest/gtest.h>

#include "core/ffn.h"

namespace sofa {
namespace {

MatF
probeBatch(Rng &rng, int tokens, int hidden)
{
    MatF x(tokens, hidden);
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
    return x;
}

TEST(Ffn, DenseShapes)
{
    Rng rng(1);
    auto layer = makeFfnLayer(rng, 32, 128);
    auto x = probeBatch(rng, 4, 32);
    auto res = ffnForward(layer, x);
    EXPECT_EQ(res.output.rows(), 4u);
    EXPECT_EQ(res.output.cols(), 32u);
    EXPECT_EQ(res.keptNeurons, res.totalNeurons);
}

TEST(Ffn, FullKeepMatchesDense)
{
    Rng rng(2);
    auto layer = makeFfnLayer(rng, 32, 96);
    auto x = probeBatch(rng, 8, 32);
    auto dense = ffnForward(layer, x);
    auto sparse = ffnForwardSparse(layer, x, 1.0);
    EXPECT_LT(relativeError(sparse.output, dense.output), 1e-5);
}

TEST(Ffn, SkewMakesSmallKeepAccurate)
{
    // With hot neurons, keeping 25% reproduces the dense output well.
    Rng rng(3);
    auto layer = makeFfnLayer(rng, 48, 192, 0.1, 4.0);
    auto x = probeBatch(rng, 16, 48);
    auto dense = ffnForward(layer, x);
    auto sparse = ffnForwardSparse(layer, x, 0.25);
    EXPECT_LT(relativeError(sparse.output, dense.output), 0.2);
}

TEST(Ffn, ErrorMonotoneInKeep)
{
    Rng rng(4);
    auto layer = makeFfnLayer(rng, 32, 128);
    auto x = probeBatch(rng, 8, 32);
    auto dense = ffnForward(layer, x);
    double prev = 1e9;
    for (double keep : {0.1, 0.3, 0.6, 0.9}) {
        auto sparse = ffnForwardSparse(layer, x, keep);
        const double err =
            relativeError(sparse.output, dense.output);
        EXPECT_LE(err, prev + 1e-6) << "keep=" << keep;
        prev = err;
    }
}

TEST(Ffn, OpsSavedInSecondProjection)
{
    Rng rng(5);
    auto layer = makeFfnLayer(rng, 32, 128);
    auto x = probeBatch(rng, 8, 32);
    auto dense = ffnForward(layer, x);
    auto sparse = ffnForwardSparse(layer, x, 0.25);
    // First projection cost is identical; the savings come from W2.
    EXPECT_LT(sparse.ops.muls(), dense.ops.muls());
    const double saved =
        1.0 - static_cast<double>(sparse.ops.muls()) /
                  static_cast<double>(dense.ops.muls());
    // W2 is half of the muls; 75% of it pruned -> ~37.5% saved.
    EXPECT_NEAR(saved, 0.375, 0.05);
}

TEST(Ffn, KeptNeuronsAccounting)
{
    Rng rng(6);
    auto layer = makeFfnLayer(rng, 16, 64);
    auto x = probeBatch(rng, 10, 16);
    auto sparse = ffnForwardSparse(layer, x, 0.5);
    EXPECT_EQ(sparse.keptNeurons, 10 * 32);
    EXPECT_EQ(sparse.totalNeurons, 10 * 64);
}

TEST(Ffn, ReluZerosPropagate)
{
    Rng rng(7);
    auto layer =
        makeFfnLayer(rng, 16, 64, 0.1, 3.0, Activation::Relu);
    auto x = probeBatch(rng, 4, 16);
    auto res = ffnForward(layer, x);
    for (float v : res.output.data())
        EXPECT_TRUE(std::isfinite(v));
}

TEST(Ffn, CalibrationMeetsBudget)
{
    Rng rng(8);
    auto layer = makeFfnLayer(rng, 32, 128, 0.1, 4.0);
    auto probe = probeBatch(rng, 12, 32);
    const double budget = 0.15;
    const double keep = calibrateKeepFraction(layer, probe, budget);
    auto dense = ffnForward(layer, probe);
    auto sparse = ffnForwardSparse(layer, probe, keep);
    EXPECT_LE(relativeError(sparse.output, dense.output),
              budget + 1e-9);
    EXPECT_LT(keep, 1.0);
}

TEST(Ffn, CalibrationTighterBudgetKeepsMore)
{
    Rng rng(9);
    auto layer = makeFfnLayer(rng, 32, 128, 0.1, 4.0);
    auto probe = probeBatch(rng, 12, 32);
    const double loose = calibrateKeepFraction(layer, probe, 0.3);
    const double tight = calibrateKeepFraction(layer, probe, 0.05);
    EXPECT_LE(loose, tight);
}

TEST(Ffn, StackCalibrationIsLayerSpecific)
{
    Rng rng(10);
    std::vector<FfnLayer> stack;
    // More skew in deeper layers -> smaller keeps.
    stack.push_back(makeFfnLayer(rng, 32, 128, 0.5, 1.2));
    stack.push_back(makeFfnLayer(rng, 32, 128, 0.05, 6.0));
    auto probe = probeBatch(rng, 12, 32);
    auto keeps = calibrateStack(stack, probe, 0.15);
    ASSERT_EQ(keeps.size(), 2u);
    EXPECT_GE(keeps[0], keeps[1]);
}

TEST(FfnDeath, BadKeepPanics)
{
    Rng rng(11);
    auto layer = makeFfnLayer(rng, 8, 16);
    auto x = probeBatch(rng, 1, 8);
    EXPECT_DEATH(ffnForwardSparse(layer, x, 0.0), "assertion");
    EXPECT_DEATH(ffnForwardSparse(layer, x, 1.5), "assertion");
}

} // namespace
} // namespace sofa
