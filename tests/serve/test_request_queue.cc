#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "serve/request_queue.h"
#include "serve/scheduler.h"

namespace sofa {
namespace serve {
namespace {

/** A pending entry whose request has the given footprint. */
PendingRequest
pending(std::uint64_t id, int heads = 2, int context = 64,
        int tenant = 0)
{
    PendingRequest p;
    p.request.id = id;
    p.request.work.batch = 1;
    p.request.work.heads = heads;
    p.request.work.seq = context;
    p.request.tenant = tenant;
    return p;
}

TEST(RequestQueue, FifoOrderAndBudgetedBatches)
{
    RequestQueue q(16);
    for (std::uint64_t i = 0; i < 5; ++i)
        ASSERT_TRUE(q.push(pending(i, /*heads=*/2)));
    EXPECT_EQ(q.size(), 5u);

    // Head budget 4 => two 2-head requests per batch, FIFO order.
    auto b1 = q.popBatch(/*head_budget=*/4, /*token_budget=*/1 << 20);
    ASSERT_EQ(b1.size(), 2u);
    EXPECT_EQ(b1[0].request.id, 0u);
    EXPECT_EQ(b1[1].request.id, 1u);
    auto b2 = q.popBatch(4, 1 << 20);
    ASSERT_EQ(b2.size(), 2u);
    EXPECT_EQ(b2[0].request.id, 2u);
    auto b3 = q.popBatch(4, 1 << 20);
    ASSERT_EQ(b3.size(), 1u);
    EXPECT_EQ(b3[0].request.id, 4u);
    EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueue, TokenBudgetBoundsAggregation)
{
    RequestQueue q(16);
    for (std::uint64_t i = 0; i < 3; ++i)
        ASSERT_TRUE(q.push(pending(i, 1, /*context=*/100)));
    // 250 tokens fit two 100-token requests, not three.
    auto b = q.popBatch(/*head_budget=*/100, /*token_budget=*/250);
    EXPECT_EQ(b.size(), 2u);
}

TEST(RequestQueue, OversizeHeadOfLineStillDispatches)
{
    RequestQueue q(4);
    ASSERT_TRUE(q.push(pending(0, /*heads=*/32, /*context=*/4096)));
    ASSERT_TRUE(q.push(pending(1, 1, 16)));
    // The first request exceeds both budgets on its own; it must
    // dispatch alone rather than starve.
    auto b = q.popBatch(/*head_budget=*/2, /*token_budget=*/64);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].request.id, 0u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(RequestQueue, CapacityShedsAtPush)
{
    RequestQueue q(2);
    EXPECT_TRUE(q.push(pending(0)));
    EXPECT_TRUE(q.push(pending(1)));
    PendingRequest extra = pending(2);
    EXPECT_FALSE(q.push(std::move(extra)));
    // Refusal leaves the entry intact for the caller to shed
    // explicitly (the promise is still usable).
    extra.promise.set_value(RequestResult{});
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.maxDepth(), 2u);
}

TEST(RequestQueue, ExactBudgetFitTakesEverything)
{
    // 3 x 2 heads against a budget of exactly 6: no off-by-one at
    // the boundary — the batch takes all three.
    RequestQueue q(16);
    for (std::uint64_t i = 0; i < 3; ++i)
        ASSERT_TRUE(q.push(pending(i, /*heads=*/2, /*context=*/50)));
    auto b = q.popBatch(/*head_budget=*/6, /*token_budget=*/150);
    EXPECT_EQ(b.size(), 3u); // both budgets land exactly on 6/150
    EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueue, OneOverBudgetStopsTheBatch)
{
    RequestQueue q(16);
    for (std::uint64_t i = 0; i < 3; ++i)
        ASSERT_TRUE(q.push(pending(i, /*heads=*/2)));
    // Head budget 5: two requests fit (4 heads), the third would
    // make 6 > 5 — one over, so it waits for the next batch.
    auto b = q.popBatch(/*head_budget=*/5, /*token_budget=*/1 << 20);
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(RequestQueue, ZeroBudgetStillDispatchesTheHead)
{
    // The head-of-line guarantee dominates any budget, even zero:
    // exactly one request dispatches per pop.
    RequestQueue q(16);
    ASSERT_TRUE(q.push(pending(0, 2)));
    ASSERT_TRUE(q.push(pending(1, 2)));
    auto b = q.popBatch(/*head_budget=*/0, /*token_budget=*/0);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].request.id, 0u);
    EXPECT_EQ(q.popBatch(0, 0).size(), 1u);
    EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueue, TiedBudgetsAcrossTenantsSplitDeterministically)
{
    // Two tenants with identical footprints and a window that fits
    // exactly half of each line: DRR must split the window evenly
    // and identically on every run (quantum == the per-tenant
    // share), with FIFO order inside each tenant.
    for (int round = 0; round < 3; ++round) {
        RequestQueue q(16, SchedulingPolicy::DRR,
                       /*drr_quantum_heads=*/2);
        ASSERT_TRUE(q.push(pending(0, /*heads=*/2, 64, /*tenant=*/0)));
        ASSERT_TRUE(q.push(pending(1, 2, 64, 0)));
        ASSERT_TRUE(q.push(pending(2, 2, 64, 1)));
        ASSERT_TRUE(q.push(pending(3, 2, 64, 1)));
        auto b1 = q.popBatch(/*head_budget=*/4, /*token_budget=*/1
                                                    << 20);
        ASSERT_EQ(b1.size(), 2u);
        EXPECT_EQ(b1[0].request.id, 0u); // one per tenant, in ring
        EXPECT_EQ(b1[1].request.id, 2u); // activation order
        auto b2 = q.popBatch(4, 1 << 20);
        ASSERT_EQ(b2.size(), 2u);
        // The window filled mid-way through tenant 1's visit, so the
        // second pop resumes that visit — but its quantum is spent,
        // so the scan moves on and tenant 0 serves first. Still one
        // request per tenant per window.
        EXPECT_EQ(b2[0].request.id, 1u);
        EXPECT_EQ(b2[1].request.id, 3u);
        EXPECT_EQ(q.size(), 0u);
    }
}

TEST(RequestQueueStress, CloseDuringKvEvictionChurn)
{
    // Scheduler teardown racing KV-pool eviction churn: decode
    // requests whose page demands overrun a tiny pool keep evicting
    // each other's reservations while the destructor closes the
    // queue and drains. Every admitted future must still resolve,
    // and page conservation must hold at quiescence. Runs in the
    // `faults` CTest group (ASan + TSan in CI).
    for (int round = 0; round < 4; ++round) {
        std::vector<std::future<RequestResult>> futs;
        {
            SchedulerConfig cfg;
            cfg.lanes = 2;
            cfg.headBudget = 2;
            cfg.kvPool.pages = 3; // forces nonstop eviction churn
            cfg.kvPool.pageTokens = 16;
            cfg.faultsFromEnv = false;
            Scheduler sched(cfg);
            ModelWorkloadSpec dec;
            dec.batch = 1;
            dec.heads = 1;
            dec.seq = 32;
            dec.headDim = 8;
            dec.tokenDim = 8;
            dec.pastLen = 30;
            dec.newTokens = 2;
            for (std::uint64_t i = 0; i < 24; ++i) {
                Request r;
                r.id = i;
                r.work = dec;
                r.work.seed = 0xE51C7000ull + i;
                futs.push_back(sched.submit(r));
            }
            // Destructor: close() during in-flight eviction churn.
        }
        int completed = 0, shed = 0;
        for (auto &f : futs) {
            const RequestResult r = f.get(); // must never hang
            if (r.outcome == Outcome::Completed)
                ++completed;
            else
                ++shed;
            EXPECT_TRUE(r.outcome == Outcome::Completed ||
                        r.outcome == Outcome::Shed);
        }
        EXPECT_EQ(completed + shed, 24);
        EXPECT_GT(completed, 0); // admitted work drained, not lost
    }
}

TEST(RequestQueue, CloseDrainsThenReturnsEmpty)
{
    RequestQueue q(4);
    ASSERT_TRUE(q.push(pending(0)));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(pending(1))); // no admission after close
    auto b = q.popBatch(8, 1 << 20);
    EXPECT_EQ(b.size(), 1u); // admitted work still drains
    auto empty = q.popBatch(8, 1 << 20);
    EXPECT_TRUE(empty.empty()); // closed + drained: no blocking
}

TEST(RequestQueue, CloseRacingPopBatchNeverLosesWork)
{
    // close() races concurrent popBatch() consumers: every admitted
    // request must still be popped exactly once, and every consumer
    // must unblock with an empty batch afterwards. Runs in the TSan
    // CI group (serve. prefix) to catch lock-discipline slips.
    for (int round = 0; round < 8; ++round) {
        RequestQueue q(1024);
        std::atomic<std::int64_t> popped{0};
        std::vector<std::thread> consumers;
        for (int c = 0; c < 3; ++c) {
            consumers.emplace_back([&q, &popped] {
                for (;;) {
                    auto batch = q.popBatch(/*head_budget=*/3,
                                            /*token_budget=*/1
                                                << 20);
                    if (batch.empty())
                        return; // closed and drained
                    popped.fetch_add(
                        static_cast<std::int64_t>(batch.size()));
                    for (PendingRequest &p : batch)
                        p.promise.set_value(RequestResult{});
                }
            });
        }
        std::int64_t pushed = 0;
        for (std::uint64_t i = 0; i < 64; ++i) {
            PendingRequest p = pending(i, /*heads=*/1);
            if (q.push(std::move(p)))
                ++pushed;
            else
                p.promise.set_value(RequestResult{});
            if (i == 40)
                q.close(); // mid-stream: late pushes are refused
        }
        for (std::thread &t : consumers)
            t.join();
        EXPECT_TRUE(q.closed());
        EXPECT_EQ(popped.load(), pushed);
        EXPECT_EQ(q.size(), 0u);
        // Once closed and drained, popBatch never blocks again.
        EXPECT_TRUE(q.popBatch(8, 1 << 20).empty());
    }
}

} // namespace
} // namespace serve
} // namespace sofa
