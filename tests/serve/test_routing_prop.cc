/**
 * @file
 * Randomized routing-determinism properties for the multi-backend
 * scheduler (serve/backend + serve/scheduler): seeded random traces
 * (mixed tenants, prefill/decode blends, deadline opt-outs,
 * occasional SOFA_FAULTS plans) replayed twice on randomly drawn
 * fleet shapes must reproduce identical routing decisions
 * (RequestResult.backend), identical outcome counts and per-shard
 * stats, and bit-exact engine results for every surviving request.
 * Plus the no-starvation/balance property of least-queue-depth
 * placement over equal backends.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/backend.h"
#include "serve/scheduler.h"
#include "testprop.h"
#include "testutil.h"

namespace sofa {
namespace serve {
namespace {

/** Backend shapes the fleet sampler draws from. */
enum class Kind { Engine, EnginePool, Sim, Gpu };

/** Everything one case needs, drawn up-front so both replays see
 * the identical plan. */
struct CasePlan
{
    std::vector<Kind> fleet;
    std::vector<bool> decodeCapable; ///< per backend
    RoutingPolicy routing = RoutingPolicy::RoundRobin;
    std::vector<Request> trace;
    std::string faultSpec; ///< empty = no injection
};

EngineConfig
tinyEngine()
{
    EngineConfig ecfg;
    ecfg.computeQuality = false; // dense reference not under test
    return ecfg;
}

CasePlan
drawPlan(int c, Rng &rng)
{
    CasePlan plan;
    const int fleet_size =
        static_cast<int>(rng.uniformInt(1, 4));
    bool any_decode = false;
    for (int i = 0; i < fleet_size; ++i) {
        const double d = rng.uniform(0.0, 1.0);
        if (d < 0.55)
            plan.fleet.push_back(Kind::Engine);
        else if (d < 0.7)
            plan.fleet.push_back(Kind::EnginePool);
        else if (d < 0.85)
            plan.fleet.push_back(Kind::Sim);
        else
            plan.fleet.push_back(Kind::Gpu);
        // Some backends are prefill-only (the disaggregation
        // class); at least one must keep decode capability.
        const bool decode = rng.bernoulli(0.75);
        plan.decodeCapable.push_back(decode);
        any_decode = any_decode || decode;
    }
    if (!any_decode)
        plan.decodeCapable.back() = true;
    const double p = rng.uniform(0.0, 1.0);
    plan.routing = p < 0.34   ? RoutingPolicy::RoundRobin
                   : p < 0.67 ? RoutingPolicy::LeastQueueDepth
                              : RoutingPolicy::Disaggregated;

    const int n = static_cast<int>(rng.uniformInt(3, 6));
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = static_cast<std::uint64_t>(i);
        ModelWorkloadSpec spec;
        spec.batch = 1;
        spec.heads = static_cast<int>(rng.uniformInt(1, 2));
        spec.seq = static_cast<int>(rng.uniformInt(16, 48));
        spec.headDim = 8;
        spec.tokenDim = 12;
        if (rng.bernoulli(0.5)) {
            spec.queries = static_cast<int>(rng.uniformInt(2, 6));
        } else {
            spec.newTokens =
                static_cast<int>(rng.uniformInt(1, 4));
            spec.pastLen = spec.seq - spec.newTokens;
            spec.queries = 0;
        }
        spec.seed = 0xD1CE0000ull +
                    (static_cast<std::uint64_t>(c) << 8) +
                    static_cast<std::uint64_t>(i);
        r.work = spec;
        r.tenant = static_cast<int>(rng.uniformInt(0, 2));
        // Deadlines never expire (or are opted out): outcome counts
        // must not depend on wall-clock.
        r.deadlineSeconds = rng.bernoulli(0.3) ? -1.0 : 30.0;
        plan.trace.push_back(r);
    }
    // A slice of the cases injects deterministic failures through
    // the SOFA_FAULTS environment path (retry/recovery must not
    // disturb routing determinism).
    if (c % 7 == 0)
        plan.faultSpec = "fail:req=1:stage=sads_topk:attempt<1";
    return plan;
}

std::vector<std::shared_ptr<Backend>>
makeFleet(const CasePlan &plan, const EngineConfig &ecfg)
{
    std::vector<std::shared_ptr<Backend>> fleet;
    for (std::size_t i = 0; i < plan.fleet.size(); ++i) {
        BackendCapabilities caps;
        caps.supportsDecode = plan.decodeCapable[i];
        switch (plan.fleet[i]) {
          case Kind::Engine: {
            EngineBackendConfig c;
            c.engine = ecfg;
            c.caps = caps;
            c.name = "engine" + std::to_string(i);
            fleet.push_back(std::make_shared<EngineBackend>(c));
            break;
          }
          case Kind::EnginePool: {
            EngineBackendConfig c;
            c.engine = ecfg;
            c.threads = 2;
            c.caps = caps;
            c.name = "pool" + std::to_string(i);
            fleet.push_back(std::make_shared<EngineBackend>(c));
            break;
          }
          case Kind::Sim: {
            SimBackendConfig c;
            c.engine = ecfg;
            c.caps = caps;
            c.name = "sim" + std::to_string(i);
            fleet.push_back(std::make_shared<SimBackend>(c));
            break;
          }
          case Kind::Gpu: {
            AnalyticBackendConfig c;
            c.engine = ecfg;
            c.caps = caps;
            c.name = "gpu" + std::to_string(i);
            fleet.push_back(std::make_shared<AnalyticBackend>(c));
            break;
          }
        }
    }
    return fleet;
}

/** One paused replay of the plan: fresh fleet, submit everything,
 * drain, return per-request results in submit order. */
std::vector<RequestResult>
replayOnce(const CasePlan &plan, std::vector<BackendStats> *shards)
{
    SchedulerConfig cfg;
    cfg.engine = tinyEngine();
    cfg.startPaused = true; // deterministic admission-time routing
    cfg.headBudget = 8;
    cfg.retry.baseSeconds = 1e-6;
    cfg.retry.maxSeconds = 1e-4;
    cfg.backends = makeFleet(plan, cfg.engine);
    cfg.routing = plan.routing;
    Scheduler sched(cfg);
    std::vector<std::future<RequestResult>> futs;
    for (const Request &r : plan.trace)
        futs.push_back(sched.submit(r));
    sched.drain();
    std::vector<RequestResult> results;
    for (auto &f : futs)
        results.push_back(f.get());
    if (shards)
        *shards = sched.backendStats();
    return results;
}

void
expectSameResult(const PipelineResult &a, const PipelineResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.selections, b.selections);
    EXPECT_EQ(a.predictionOps.total(), b.predictionOps.total());
    EXPECT_EQ(a.sortOps.total(), b.sortOps.total());
    EXPECT_EQ(a.formalOps.total(), b.formalOps.total());
    EXPECT_EQ(a.keysGenerated, b.keysGenerated);
}

TEST(RoutingProp, ReplayReproducesRoutingStatsAndBits)
{
    testprop::forEachSeededCase(200, [](int c, Rng &rng) {
        const CasePlan plan = drawPlan(c, rng);
        if (!plan.faultSpec.empty())
            setenv("SOFA_FAULTS", plan.faultSpec.c_str(), 1);
        std::vector<BackendStats> shardsA, shardsB;
        const auto a = replayOnce(plan, &shardsA);
        const auto b = replayOnce(plan, &shardsB);
        if (!plan.faultSpec.empty())
            unsetenv("SOFA_FAULTS");

        ASSERT_EQ(a.size(), b.size()) << "case " << c;
        for (std::size_t i = 0; i < a.size(); ++i) {
            // The routing decision and the outcome replay exactly.
            EXPECT_EQ(a[i].backend, b[i].backend)
                << "case " << c << " req " << i;
            EXPECT_EQ(static_cast<int>(a[i].outcome),
                      static_cast<int>(b[i].outcome))
                << "case " << c << " req " << i;
            // Survivors are bit-exact across the replays.
            ASSERT_EQ(a[i].engine.heads.size(),
                      b[i].engine.heads.size())
                << "case " << c << " req " << i;
            for (std::size_t h = 0; h < a[i].engine.heads.size();
                 ++h)
                expectSameResult(a[i].engine.heads[h].result,
                                 b[i].engine.heads[h].result);
            EXPECT_EQ(a[i].engine.totalOps().total(),
                      b[i].engine.totalOps().total())
                << "case " << c << " req " << i;
        }
        // Per-shard placement/throughput counters replay too.
        ASSERT_EQ(shardsA.size(), shardsB.size()) << "case " << c;
        std::int64_t routed = 0;
        for (std::size_t s = 0; s < shardsA.size(); ++s) {
            EXPECT_EQ(shardsA[s].name, shardsB[s].name);
            EXPECT_EQ(shardsA[s].routed, shardsB[s].routed)
                << "case " << c << " shard " << s;
            EXPECT_EQ(shardsA[s].headTasks, shardsB[s].headTasks)
                << "case " << c << " shard " << s;
            routed += shardsA[s].routed;
        }
        EXPECT_EQ(routed,
                  static_cast<std::int64_t>(plan.trace.size()))
            << "case " << c;
    });
}

TEST(RoutingProp, DisaggregationRespectsCapabilities)
{
    // Whenever a pure-prefill backend exists, Disaggregated routing
    // must never place a decode on it, and must keep prefills off
    // the KV-cache-warm shards.
    testprop::forEachSeededCase(40, [](int c, Rng &rng) {
        CasePlan plan = drawPlan(c, rng);
        plan.routing = RoutingPolicy::Disaggregated;
        bool any_pure_prefill = false, any_decode = false;
        for (bool d : plan.decodeCapable) {
            any_pure_prefill = any_pure_prefill || !d;
            any_decode = any_decode || d;
        }
        const auto results = replayOnce(plan, nullptr);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const std::size_t s =
                static_cast<std::size_t>(results[i].backend);
            ASSERT_LT(s, plan.decodeCapable.size());
            if (plan.trace[i].kind() == RequestKind::Decode &&
                any_decode) {
                EXPECT_TRUE(plan.decodeCapable[s])
                    << "case " << c << ": decode on prefill-only "
                    << "shard " << s;
            }
            if (plan.trace[i].kind() == RequestKind::Prefill &&
                any_pure_prefill) {
                EXPECT_FALSE(plan.decodeCapable[s])
                    << "case " << c << ": prefill on warm shard "
                    << s << " while dedicated ones exist";
            }
        }
    });
}

TEST(RoutingProp, LeastQueueDepthNeverStarvesABackend)
{
    // Three identical backends, paused admission: depth-based
    // placement must spread a burst within one request of even, and
    // everything completes (no shard is starved or overloaded).
    SchedulerConfig cfg;
    cfg.engine = tinyEngine();
    cfg.startPaused = true;
    cfg.faultsFromEnv = false;
    cfg.routing = RoutingPolicy::LeastQueueDepth;
    for (int i = 0; i < 3; ++i) {
        EngineBackendConfig c;
        c.engine = cfg.engine;
        c.name = "eq" + std::to_string(i);
        cfg.backends.push_back(std::make_shared<EngineBackend>(c));
    }
    Scheduler sched(cfg);
    std::vector<Request> trace;
    for (int i = 0; i < 10; ++i) {
        Request r;
        r.id = static_cast<std::uint64_t>(i);
        ModelWorkloadSpec spec;
        spec.batch = 1;
        spec.heads = 2;
        spec.seq = 32;
        spec.queries = 4;
        spec.headDim = 8;
        spec.tokenDim = 12;
        spec.seed = 0xFA1A0000ull + static_cast<std::uint64_t>(i);
        r.work = spec;
        trace.push_back(r);
    }
    std::vector<std::future<RequestResult>> futs;
    for (const Request &r : trace)
        futs.push_back(sched.submit(r));
    sched.drain();
    for (auto &f : futs)
        EXPECT_EQ(static_cast<int>(f.get().outcome),
                  static_cast<int>(Outcome::Completed));
    const auto shards = sched.backendStats();
    ASSERT_EQ(shards.size(), 3u);
    std::int64_t lo = shards[0].routed, hi = shards[0].routed;
    for (const BackendStats &s : shards) {
        lo = std::min(lo, s.routed);
        hi = std::max(hi, s.routed);
        EXPECT_GT(s.routed, 0) << s.name << " starved";
    }
    EXPECT_LE(hi - lo, 1) << "imbalanced burst placement";
}

} // namespace
} // namespace serve
} // namespace sofa
