/**
 * Scheduling-policy tests (serving v2): EDF's deadline-order-prefix
 * invariant at the queue level (hand-built + randomized), DRR's
 * within-one-quantum fairness over backlogged tenants, FIFO's
 * bit-compatibility with the original single-policy scheduler across
 * serial and pooled execution, and prefill chunking's stitched
 * bit-exactness. All scheduler-level runs reuse the determinism
 * idiom of test_scheduler.cc: results must match a standalone
 * Engine::run of the same spec whatever they were co-scheduled with.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <vector>

#include "common/threadpool.h"
#include "serve/scheduler.h"
#include "testprop.h"
#include "testutil.h"

namespace sofa {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

/** Tiny prefill request spec (fast enough for many engine runs). */
ModelWorkloadSpec
prefillSpec(std::uint64_t salt = 0)
{
    ModelWorkloadSpec spec;
    spec.batch = 1;
    spec.heads = 2;
    spec.seq = 64;
    spec.queries = 8;
    spec.headDim = 16;
    spec.tokenDim = 24;
    spec.seed = 0x90C1E500ull + salt;
    return spec;
}

/** Tiny KV-cache decode step spec. */
ModelWorkloadSpec
decodeSpec(std::uint64_t salt = 0)
{
    ModelWorkloadSpec spec = prefillSpec(salt);
    spec.pastLen = 60;
    spec.newTokens = 4;
    return spec;
}

Request
makeRequest(std::uint64_t id, const ModelWorkloadSpec &work)
{
    Request r;
    r.id = id;
    r.work = work;
    return r;
}

PendingRequest
pendingSized(std::uint64_t id, int heads, int tenant = 0)
{
    PendingRequest p;
    p.request.id = id;
    p.request.work.batch = 1;
    p.request.work.heads = heads;
    p.request.work.seq = 16;
    p.request.tenant = tenant;
    return p;
}

/** Every numerical field of two per-head results must agree. */
void
expectSameResult(const PipelineResult &a, const PipelineResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.selections, b.selections);
    EXPECT_EQ(a.predictionOps.total(), b.predictionOps.total());
    EXPECT_EQ(a.sortOps.total(), b.sortOps.total());
    EXPECT_EQ(a.formalOps.total(), b.formalOps.total());
    EXPECT_EQ(a.keysGenerated, b.keysGenerated);
    EXPECT_DOUBLE_EQ(a.massRecall, b.massRecall);
}

/** Per-request scheduler result vs a standalone Engine::run. */
void
expectMatchesStandalone(const RequestResult &r, const Request &req,
                        const EngineConfig &ecfg)
{
    ASSERT_EQ(r.outcome, Outcome::Completed);
    const EngineResult ref =
        runEngine(generateModelWorkload(req.work), ecfg);
    ASSERT_EQ(r.engine.heads.size(), ref.heads.size());
    for (std::size_t h = 0; h < ref.heads.size(); ++h)
        expectSameResult(r.engine.heads[h].result,
                         ref.heads[h].result);
    EXPECT_EQ(r.engine.totalOps().total(), ref.totalOps().total());
    EXPECT_EQ(r.engine.keysCached, ref.keysCached);
}

// ---------------------------------------------------------------
// EDF
// ---------------------------------------------------------------

TEST(EdfPolicy, EarlierDeadlineDispatchesFirstWhateverArrivalOrder)
{
    RequestQueue q(16, SchedulingPolicy::EDF);
    const Clock::time_point now = Clock::now();
    // Arrive loose-deadline first, tight-deadline last.
    for (int i = 0; i < 4; ++i) {
        PendingRequest p = pendingSized(
            static_cast<std::uint64_t>(i), /*heads=*/1);
        p.hasDeadline = true;
        p.deadline = now + std::chrono::seconds(10 - i);
        ASSERT_TRUE(q.push(std::move(p)));
    }
    PendingRequest none = pendingSized(4, 1); // no deadline: last
    ASSERT_TRUE(q.push(std::move(none)));
    const auto batch = q.popBatch(/*head_budget=*/100,
                                  /*token_budget=*/1 << 20);
    ASSERT_EQ(batch.size(), 5u);
    EXPECT_EQ(batch[0].request.id, 3u); // tightest deadline
    EXPECT_EQ(batch[1].request.id, 2u);
    EXPECT_EQ(batch[2].request.id, 1u);
    EXPECT_EQ(batch[3].request.id, 0u);
    EXPECT_EQ(batch[4].request.id, 4u); // deadline-free sorts last
}

TEST(EdfPolicy, RandomizedPopsAreAlwaysDeadlineOrderPrefixes)
{
    // With no pushes between pops, budget-bounded EDF batches must
    // concatenate to the globally deadline-sorted order: a batch is
    // a prefix of the sorted backlog, so a later-deadline request is
    // never dispatched while an earlier-deadline one waits.
    testprop::forEachSeededCase(40, [](int c, Rng &rng) {
        RequestQueue q(64, SchedulingPolicy::EDF);
        const Clock::time_point now = Clock::now();
        const int n = static_cast<int>(rng.uniformInt(1, 24));
        struct Key
        {
            Clock::time_point deadline;
            std::uint64_t seq;
        };
        std::vector<Key> keys;
        for (int i = 0; i < n; ++i) {
            PendingRequest p = pendingSized(
                static_cast<std::uint64_t>(i),
                static_cast<int>(rng.uniformInt(1, 4)));
            if (rng.bernoulli(0.8)) {
                p.hasDeadline = true;
                p.deadline =
                    now + std::chrono::milliseconds(
                              rng.uniformInt(-1000, 1000));
            }
            keys.push_back(Key{p.hasDeadline
                                   ? p.deadline
                                   : Clock::time_point::max(),
                               static_cast<std::uint64_t>(i)});
            ASSERT_TRUE(q.push(std::move(p)));
        }
        std::vector<std::uint64_t> expected(keys.size());
        for (std::size_t i = 0; i < keys.size(); ++i)
            expected[i] = i;
        std::sort(expected.begin(), expected.end(),
                  [&](std::uint64_t a, std::uint64_t b) {
                      if (keys[a].deadline != keys[b].deadline)
                          return keys[a].deadline < keys[b].deadline;
                      return keys[a].seq < keys[b].seq;
                  });
        std::vector<std::uint64_t> popped;
        while (q.size() > 0) {
            const std::int64_t budget = rng.uniformInt(1, 8);
            for (PendingRequest &p :
                 q.popBatch(budget, 1 << 20))
                popped.push_back(p.request.id);
        }
        EXPECT_EQ(popped, expected) << "case " << c;
    });
}

// ---------------------------------------------------------------
// DRR
// ---------------------------------------------------------------

TEST(DrrPolicy, BackloggedTenantsServeWithinOneQuantum)
{
    // Three tenants with deep 1..3-head backlogs; per-batch head
    // budget far below the total so windows keep cutting rounds
    // short. Batch windows are cut points in one continuous DRR
    // scan, so at every window boundary any two backlogged tenants'
    // cumulative served head tasks stay within one quantum plus one
    // max-size request of one another — the classic
    // Shreedhar-Varghese bound, independent of the budget.
    testprop::forEachSeededCase(20, [](int c, Rng &rng) {
        const std::int64_t quantum = rng.uniformInt(3, 6);
        const int tenants = 3, per_tenant = 24, max_heads = 3;
        RequestQueue q(256, SchedulingPolicy::DRR, quantum);
        std::map<int, std::int64_t> backlog, served;
        std::uint64_t id = 0;
        for (int i = 0; i < per_tenant; ++i) {
            for (int t = 0; t < tenants; ++t) {
                const int h =
                    static_cast<int>(rng.uniformInt(1, max_heads));
                ASSERT_TRUE(q.push(pendingSized(id++, h, t)));
                backlog[t] += h;
            }
        }
        const std::int64_t slack = quantum + max_heads;
        while (true) {
            bool all_backlogged = true;
            for (int t = 0; t < tenants; ++t)
                all_backlogged &= backlog[t] > 0;
            if (!all_backlogged)
                break;
            const auto batch =
                q.popBatch(/*head_budget=*/8, 1 << 20);
            ASSERT_FALSE(batch.empty());
            for (const PendingRequest &p : batch) {
                served[p.request.tenant] += p.request.headTasks();
                backlog[p.request.tenant] -= p.request.headTasks();
            }
            for (int a = 0; a < tenants; ++a)
                for (int b = 0; b < tenants; ++b)
                    EXPECT_LE(served[a] - served[b], slack)
                        << "case " << c << " tenants " << a << "/"
                        << b;
        }
    });
}

TEST(DrrPolicy, SingleTenantDegeneratesToFifo)
{
    RequestQueue q(16, SchedulingPolicy::DRR, /*quantum=*/2);
    for (std::uint64_t i = 0; i < 5; ++i)
        ASSERT_TRUE(q.push(pendingSized(i, /*heads=*/2, 0)));
    std::vector<std::uint64_t> order;
    while (q.size() > 0)
        for (PendingRequest &p : q.popBatch(4, 1 << 20))
            order.push_back(p.request.id);
    EXPECT_EQ(order,
              (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(DrrPolicy, SchedulerCompletesAllTenantsBitExact)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulingPolicy::DRR;
    cfg.drrQuantumHeads = 4;
    cfg.startPaused = true;
    cfg.headBudget = 6;
    Scheduler sched(cfg);
    std::vector<Request> trace;
    std::vector<std::future<RequestResult>> futs;
    for (int i = 0; i < 9; ++i) {
        Request r = makeRequest(
            static_cast<std::uint64_t>(i),
            i % 2 == 0 ? prefillSpec(static_cast<std::uint64_t>(i))
                       : decodeSpec(static_cast<std::uint64_t>(i)));
        r.tenant = i % 3;
        trace.push_back(r);
        futs.push_back(sched.submit(r));
    }
    sched.drain();
    for (std::size_t i = 0; i < futs.size(); ++i) {
        const RequestResult r = futs[i].get();
        EXPECT_EQ(r.id, trace[i].id);
        expectMatchesStandalone(r, trace[i], cfg.engine);
    }
    EXPECT_EQ(sched.stats().completed, 9);
}

// ---------------------------------------------------------------
// FIFO bit-compatibility + cross-policy determinism
// ---------------------------------------------------------------

TEST(PolicyDeterminism, AllPoliciesBitExactAcrossPoolsAndSerial)
{
    // Per-request numerical results must be identical under every
    // policy (scheduling changes order, never values) and at every
    // thread count — the FIFO column doubles as the bit-compat
    // check against the original single-policy scheduler, whose
    // contract test_scheduler.cc pins the same way.
    std::vector<Request> trace;
    for (int i = 0; i < 6; ++i) {
        Request r = makeRequest(
            static_cast<std::uint64_t>(i),
            i % 2 == 0 ? prefillSpec(static_cast<std::uint64_t>(i))
                       : decodeSpec(static_cast<std::uint64_t>(i)));
        r.tenant = i % 2;
        trace.push_back(r);
    }
    for (SchedulingPolicy policy :
         {SchedulingPolicy::FIFO, SchedulingPolicy::EDF,
          SchedulingPolicy::DRR}) {
        SchedulerConfig cfg;
        cfg.policy = policy;
        cfg.lanes = 2;
        cfg.headBudget = 4;

        std::vector<RequestResult> serial;
        {
            ThreadPool::ScopedSerial guard;
            Scheduler sched(cfg);
            serial = runClosedLoop(sched, trace, 2);
        }
        ASSERT_EQ(serial.size(), trace.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectMatchesStandalone(serial[i], trace[i],
                                    cfg.engine);
        for (int threads : {1, 2, 8}) {
            ThreadPool pool(threads);
            SchedulerConfig tcfg = cfg;
            tcfg.engine.pool = &pool;
            Scheduler sched(tcfg);
            const auto results = runClosedLoop(sched, trace, 2);
            ASSERT_EQ(results.size(), serial.size());
            for (std::size_t i = 0; i < results.size(); ++i) {
                ASSERT_EQ(results[i].engine.heads.size(),
                          serial[i].engine.heads.size());
                for (std::size_t h = 0;
                     h < results[i].engine.heads.size(); ++h)
                    expectSameResult(
                        results[i].engine.heads[h].result,
                        serial[i].engine.heads[h].result);
                EXPECT_EQ(results[i].engine.totalOps().total(),
                          serial[i].engine.totalOps().total());
            }
        }
    }
}

// ---------------------------------------------------------------
// Prefill chunking
// ---------------------------------------------------------------

TEST(PrefillChunking, EachChunkBitExactVsStandaloneSliceRun)
{
    // The chunked result banks one HeadResult per (chunk, head), in
    // chunk order. Every chunk must be bit-exact vs a standalone
    // engine run of the same row-sliced workload (sliceQueryRows is
    // the shared slicer) — and the whole thing must replay
    // identically. Note the contract deliberately references the
    // *sliced* run, not the unchunked one: the DLZS predictor
    // quantizes Q per chunk, so selections may move at the
    // approximation margin between chunked and unchunked runs.
    SchedulerConfig cfg;
    cfg.prefillChunkRows = 3; // 8 query rows -> chunks of 3, 3, 2
    const Request req = makeRequest(11, prefillSpec());

    Scheduler sched(cfg);
    const RequestResult r = sched.submit(req).get();
    ASSERT_EQ(r.outcome, Outcome::Completed);
    EXPECT_EQ(r.chunks, 3);
    EXPECT_EQ(sched.stats().chunkRuns, 3);

    const ModelWorkload full = generateModelWorkload(req.work);
    const int rows = req.work.queryRows();
    ASSERT_EQ(r.engine.heads.size(),
              static_cast<std::size_t>(3 * req.work.heads));
    std::size_t idx = 0;
    for (int r0 = 0; r0 < rows; r0 += cfg.prefillChunkRows) {
        const int r1 = std::min(rows, r0 + cfg.prefillChunkRows);
        for (int h = 0; h < req.work.heads; ++h) {
            const AttentionWorkload slice =
                sliceQueryRows(full.head(0, h), r0, r1);
            HeadTask task;
            task.workload = &slice;
            task.batch = 0;
            task.head = h;
            const EngineResult ref = Engine(cfg.engine).run(
                std::vector<HeadTask>{task});
            ASSERT_EQ(ref.heads.size(), 1u);
            const HeadResult &got = r.engine.heads[idx++];
            EXPECT_EQ(got.batch, 0);
            EXPECT_EQ(got.head, h);
            expectSameResult(got.result, ref.heads[0].result);
        }
    }

    // Chunking is deterministic: a second scheduler replays the
    // identical per-chunk results.
    Scheduler again(cfg);
    const RequestResult r2 = again.submit(req).get();
    ASSERT_EQ(r2.engine.heads.size(), r.engine.heads.size());
    for (std::size_t i = 0; i < r.engine.heads.size(); ++i)
        expectSameResult(r2.engine.heads[i].result,
                         r.engine.heads[i].result);
}

TEST(PrefillChunking, DecodeAndShortPrefillNeverChunk)
{
    SchedulerConfig cfg;
    cfg.prefillChunkRows = 16; // larger than any request here
    Scheduler sched(cfg);
    const Request pre = makeRequest(1, prefillSpec(1));
    const Request dec = makeRequest(2, decodeSpec(2));
    const RequestResult a = sched.submit(pre).get();
    const RequestResult b = sched.submit(dec).get();
    EXPECT_EQ(a.chunks, 1);
    EXPECT_EQ(b.chunks, 1);
    expectMatchesStandalone(a, pre, cfg.engine);
    expectMatchesStandalone(b, dec, cfg.engine);
    EXPECT_EQ(sched.stats().chunkRuns, 0);
}

TEST(PrefillChunking, ChunkedBatchStillCompletesEveryRequest)
{
    // Chunk continuations re-enqueue behind waiting decodes; all
    // requests still drain and stay bit-exact per stitched row.
    SchedulerConfig cfg;
    cfg.prefillChunkRows = 4;
    cfg.startPaused = true;
    cfg.headBudget = 8;
    Scheduler sched(cfg);
    std::vector<std::future<RequestResult>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(sched.submit(makeRequest(
            static_cast<std::uint64_t>(i),
            i % 2 == 0 ? prefillSpec(static_cast<std::uint64_t>(i))
                       : decodeSpec(static_cast<std::uint64_t>(i)))));
    sched.drain();
    int chunked = 0;
    for (std::size_t i = 0; i < futs.size(); ++i) {
        const RequestResult r = futs[i].get();
        ASSERT_EQ(r.outcome, Outcome::Completed) << i;
        if (r.chunks > 1)
            ++chunked;
    }
    EXPECT_EQ(chunked, 3); // every 8-row prefill split into 2
    EXPECT_EQ(sched.stats().completed, 6);
}

} // namespace
} // namespace serve
} // namespace sofa
