/**
 * @file
 * Cross-backend conformance suite: every Backend implementation
 * (serve/backend) must produce per-request results bit-exact vs a
 * sequential Engine::run of the same tasks, reconcile op counters
 * exactly (tol 0), keep the queue-depth/completion accounting
 * invariants, and — behind the scheduler — yield identical Outcome
 * counts whether the fleet has 1, 2 or 4 backends or none at all.
 * Also the regression for the ScopedDefaultThreads hazard: backends
 * own explicit pools and never mutate the process-wide default.
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/threadpool.h"
#include "serve/backend.h"
#include "serve/scheduler.h"
#include "testutil.h"

namespace sofa {
namespace serve {
namespace {

ModelWorkloadSpec
prefillSpec(std::uint64_t salt = 0)
{
    ModelWorkloadSpec spec;
    spec.batch = 1;
    spec.heads = 2;
    spec.seq = 64;
    spec.queries = 8;
    spec.headDim = 16;
    spec.tokenDim = 24;
    spec.seed = 0xBACC0000ull + salt;
    return spec;
}

ModelWorkloadSpec
decodeSpec(std::uint64_t salt = 0)
{
    ModelWorkloadSpec spec = prefillSpec(salt);
    spec.pastLen = 60;
    spec.newTokens = 4;
    return spec;
}

/** The grid of @p mw as explicit HeadTasks (decode keeps its cache
 * claim), exactly as the scheduler submits them. */
std::vector<HeadTask>
gridTasks(const ModelWorkload &mw)
{
    std::vector<HeadTask> tasks;
    for (int b = 0; b < mw.batch(); ++b) {
        for (int h = 0; h < mw.heads(); ++h) {
            HeadTask t;
            t.workload = &mw.head(b, h);
            t.batch = b;
            t.head = h;
            t.pastLen = mw.spec.isDecode() ? mw.spec.pastLen : 0;
            tasks.push_back(t);
        }
    }
    return tasks;
}

void
expectSameResult(const PipelineResult &a, const PipelineResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.selections, b.selections);
    EXPECT_EQ(a.predictionOps.total(), b.predictionOps.total());
    EXPECT_EQ(a.sortOps.total(), b.sortOps.total());
    EXPECT_EQ(a.formalOps.total(), b.formalOps.total());
    EXPECT_EQ(a.keysGenerated, b.keysGenerated);
    EXPECT_DOUBLE_EQ(a.massRecall, b.massRecall);
}

/** Exact (tol 0) equality of two whole-grid results: outputs,
 * selections, every op-counter family, cache accounting. */
void
expectSameEngineResult(const EngineResult &a, const EngineResult &b)
{
    ASSERT_EQ(a.heads.size(), b.heads.size());
    for (std::size_t h = 0; h < a.heads.size(); ++h) {
        EXPECT_EQ(a.heads[h].batch, b.heads[h].batch);
        EXPECT_EQ(a.heads[h].head, b.heads[h].head);
        EXPECT_EQ(a.heads[h].keysCached, b.heads[h].keysCached);
        expectSameResult(a.heads[h].result, b.heads[h].result);
    }
    EXPECT_EQ(a.predictionOps.total(), b.predictionOps.total());
    EXPECT_EQ(a.sortOps.total(), b.sortOps.total());
    EXPECT_EQ(a.formalOps.total(), b.formalOps.total());
    EXPECT_EQ(a.totalOps().total(), b.totalOps().total());
    EXPECT_EQ(a.keysGenerated, b.keysGenerated);
    EXPECT_EQ(a.keysCached, b.keysCached);
    EXPECT_DOUBLE_EQ(a.meanMassRecall, b.meanMassRecall);
}

/** The backend zoo the parameterized suite runs over. */
enum class Kind { EngineShared, EngineOwnedPool, Sim, Gpu, Tpu };

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::EngineShared:
        return "EngineShared";
      case Kind::EngineOwnedPool:
        return "EngineOwnedPool";
      case Kind::Sim:
        return "Sim";
      case Kind::Gpu:
        return "Gpu";
      case Kind::Tpu:
        return "Tpu";
    }
    return "?";
}

std::shared_ptr<Backend>
makeBackend(Kind k, const EngineConfig &ecfg)
{
    switch (k) {
      case Kind::EngineShared: {
        EngineBackendConfig c;
        c.engine = ecfg;
        return std::make_shared<EngineBackend>(c);
      }
      case Kind::EngineOwnedPool: {
        EngineBackendConfig c;
        c.engine = ecfg;
        c.threads = 2;
        return std::make_shared<EngineBackend>(c);
      }
      case Kind::Sim: {
        SimBackendConfig c;
        c.engine = ecfg;
        return std::make_shared<SimBackend>(c);
      }
      case Kind::Gpu: {
        AnalyticBackendConfig c;
        c.engine = ecfg;
        c.device = AnalyticDevice::GPU;
        return std::make_shared<AnalyticBackend>(c);
      }
      case Kind::Tpu: {
        AnalyticBackendConfig c;
        c.engine = ecfg;
        c.device = AnalyticDevice::TPU;
        return std::make_shared<AnalyticBackend>(c);
      }
    }
    return nullptr;
}

class BackendConformance : public ::testing::TestWithParam<Kind>
{
};

TEST_P(BackendConformance, BitExactVsSequentialEngineRun)
{
    const EngineConfig ecfg;
    auto backend = makeBackend(GetParam(), ecfg);
    const Engine ref(ecfg);
    for (const ModelWorkloadSpec &spec :
         {prefillSpec(1), decodeSpec(2)}) {
        const ModelWorkload mw = generateModelWorkload(spec);
        const std::vector<HeadTask> tasks = gridTasks(mw);
        auto run = backend->begin(tasks);
        ASSERT_GT(run->stageCount(), 0u);
        std::size_t steps = 0;
        while (!run->done()) {
            EXPECT_NE(run->nextStageName(), nullptr);
            run->step();
            ++steps;
        }
        EXPECT_EQ(steps, run->stageCount());
        EXPECT_EQ(run->nextStageName(), nullptr);
        const EngineResult got = run->finish();
        expectSameEngineResult(got, ref.run(tasks));
    }
}

TEST_P(BackendConformance, OpCountersReconcileExactly)
{
    const EngineConfig ecfg;
    auto backend = makeBackend(GetParam(), ecfg);
    const ModelWorkload mw = generateModelWorkload(prefillSpec(3));
    const std::vector<HeadTask> tasks = gridTasks(mw);
    const EngineResult got = backend->begin(tasks)->finish();
    const EngineResult ref = Engine(ecfg).run(tasks);
    // Per-family, not just the total — tolerance is exactly 0.
    EXPECT_EQ(got.predictionOps.total(), ref.predictionOps.total());
    EXPECT_EQ(got.sortOps.total(), ref.sortOps.total());
    EXPECT_EQ(got.formalOps.total(), ref.formalOps.total());
    EXPECT_EQ(got.totalOps().total(), ref.totalOps().total());
}

TEST_P(BackendConformance, QueueDepthAndCompletionAccounting)
{
    auto backend = makeBackend(GetParam(), EngineConfig{});
    EXPECT_EQ(backend->queueDepth(), 0);
    EXPECT_EQ(backend->completedRuns(), 0);
    EXPECT_EQ(backend->completedTasks(), 0);

    const ModelWorkload a = generateModelWorkload(prefillSpec(4));
    const ModelWorkload b = generateModelWorkload(decodeSpec(5));
    auto runA = backend->begin(gridTasks(a));
    EXPECT_EQ(backend->queueDepth(), 1);
    auto runB = backend->begin(gridTasks(b));
    EXPECT_EQ(backend->queueDepth(), 2);

    (void)runA->finish();
    // Finishing counts the completion; depth falls at destruction.
    EXPECT_EQ(backend->completedRuns(), 1);
    EXPECT_EQ(backend->completedTasks(),
              static_cast<std::int64_t>(a.size()));
    EXPECT_EQ(backend->queueDepth(), 2);
    runA.reset();
    EXPECT_EQ(backend->queueDepth(), 1);

    // An abandoned run (deadline path) releases depth but never
    // counts as completed.
    runB.reset();
    EXPECT_EQ(backend->queueDepth(), 0);
    EXPECT_EQ(backend->completedRuns(), 1);
    EXPECT_EQ(backend->completedTasks(),
              static_cast<std::int64_t>(a.size()));
}

TEST_P(BackendConformance, CancelPreservesSlotAlignment)
{
    const EngineConfig ecfg;
    auto backend = makeBackend(GetParam(), ecfg);
    const ModelWorkload mw = generateModelWorkload(prefillSpec(6));
    const std::vector<HeadTask> tasks = gridTasks(mw);
    ASSERT_GE(tasks.size(), 2u);
    auto run = backend->begin(tasks);
    run->step();
    run->cancel(0);
    EXPECT_TRUE(run->cancelled(0));
    EXPECT_FALSE(run->cancelled(1));
    const EngineResult got = run->finish();
    const EngineResult ref = Engine(ecfg).run(tasks);
    // The cancelled head still occupies its slot; the survivor is
    // bit-exact vs the uncancelled reference run.
    ASSERT_EQ(got.heads.size(), ref.heads.size());
    expectSameResult(got.heads[1].result, ref.heads[1].result);
}

TEST_P(BackendConformance, DegradedKeepFactorMatchesScaledConfig)
{
    const EngineConfig ecfg;
    const double keep = 0.5;
    auto backend = makeBackend(GetParam(), ecfg);
    const ModelWorkload mw = generateModelWorkload(prefillSpec(7));
    const std::vector<HeadTask> tasks = gridTasks(mw);
    const EngineResult got = backend->begin(tasks, keep)->finish();
    const Engine scaled(scaledKeepConfig(ecfg, keep));
    expectSameEngineResult(got, scaled.run(tasks));
}

TEST_P(BackendConformance, ModeledSecondsMatchBackendClass)
{
    auto backend = makeBackend(GetParam(), EngineConfig{});
    const ModelWorkload mw = generateModelWorkload(prefillSpec(8));
    const std::vector<HeadTask> tasks = gridTasks(mw);
    auto run = backend->begin(tasks);
    const bool modeled = GetParam() != Kind::EngineShared &&
                         GetParam() != Kind::EngineOwnedPool;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (modeled)
            EXPECT_GT(run->modeledTaskSeconds(i), 0.0) << i;
        else
            EXPECT_EQ(run->modeledTaskSeconds(i), 0.0) << i;
    }
    (void)run->finish();
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformance,
    ::testing::Values(Kind::EngineShared, Kind::EngineOwnedPool,
                      Kind::Sim, Kind::Gpu, Kind::Tpu),
    [](const ::testing::TestParamInfo<Kind> &info) {
        return kindName(info.param);
    });

// ---------------------------------------------------------------
// Fleet-level conformance behind the scheduler
// ---------------------------------------------------------------

std::vector<Request>
mixedMiniTrace(int n)
{
    std::vector<Request> trace;
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = static_cast<std::uint64_t>(i);
        const std::uint64_t salt = static_cast<std::uint64_t>(i);
        r.work =
            i % 2 == 0 ? prefillSpec(salt) : decodeSpec(salt);
        trace.push_back(r);
    }
    return trace;
}

/** Fleet of @p n EngineBackends over @p ecfg. */
std::vector<std::shared_ptr<Backend>>
engineFleet(int n, const EngineConfig &ecfg)
{
    std::vector<std::shared_ptr<Backend>> fleet;
    for (int i = 0; i < n; ++i) {
        EngineBackendConfig c;
        c.engine = ecfg;
        c.name = "engine" + std::to_string(i);
        fleet.push_back(std::make_shared<EngineBackend>(c));
    }
    return fleet;
}

TEST(BackendFleet, IdenticalResultsAcrossFleetSizes)
{
    const std::vector<Request> trace = mixedMiniTrace(8);
    SchedulerConfig base;
    base.headBudget = 4;
    base.faultsFromEnv = false;

    // Serial reference: per-request standalone engine runs.
    std::vector<EngineResult> ref;
    const Engine eng(base.engine);
    for (const Request &r : trace)
        ref.push_back(eng.run(generateModelWorkload(r.work)));

    for (int fleet : {0, 1, 2, 4}) {
        SchedulerConfig cfg = base;
        if (fleet > 0)
            cfg.backends = engineFleet(fleet, cfg.engine);
        Scheduler sched(cfg);
        EXPECT_EQ(sched.fleetSize(),
                  static_cast<std::size_t>(std::max(1, fleet)));
        const auto results = runClosedLoop(sched, trace, 4);
        sched.drain(); // runs fully retired before depth checks
        ASSERT_EQ(results.size(), trace.size()) << fleet;
        for (std::size_t i = 0; i < results.size(); ++i) {
            ASSERT_EQ(results[i].outcome, Outcome::Completed)
                << "fleet=" << fleet << " req=" << i;
            expectSameEngineResult(results[i].engine, ref[i]);
        }
        const SchedulerStats st = sched.stats();
        EXPECT_EQ(st.submitted, 8);
        EXPECT_EQ(st.completed, 8);
        EXPECT_EQ(st.shed + st.timedOut + st.failed + st.degraded,
                  0);
        // Shard accounting reconciles with the global counters.
        const auto bs = sched.backendStats();
        ASSERT_EQ(bs.size(),
                  static_cast<std::size_t>(std::max(1, fleet)));
        std::int64_t routed = 0, head_tasks = 0;
        for (const BackendStats &b : bs) {
            routed += b.routed;
            head_tasks += b.headTasks;
            EXPECT_EQ(b.queueDepth, 0) << b.name;
        }
        EXPECT_EQ(routed, st.submitted);
        EXPECT_EQ(head_tasks, st.headTasks);
    }
}

TEST(BackendFleet, RoundRobinSpreadsAcrossShards)
{
    SchedulerConfig cfg;
    cfg.startPaused = true;
    cfg.faultsFromEnv = false;
    cfg.backends = engineFleet(4, cfg.engine);
    cfg.routing = RoutingPolicy::RoundRobin;
    Scheduler sched(cfg);
    const std::vector<Request> trace = mixedMiniTrace(8);
    std::vector<std::future<RequestResult>> futs;
    for (const Request &r : trace)
        futs.push_back(sched.submit(r));
    sched.drain();
    // 8 requests over 4 shards in static rotation: 2 each, and each
    // result records its placement.
    const auto bs = sched.backendStats();
    ASSERT_EQ(bs.size(), 4u);
    for (const BackendStats &b : bs)
        EXPECT_EQ(b.routed, 2) << b.name;
    std::vector<int> routed(4, 0);
    for (auto &f : futs) {
        const RequestResult r = f.get();
        ASSERT_GE(r.backend, 0);
        ASSERT_LT(r.backend, 4);
        ++routed[static_cast<std::size_t>(r.backend)];
    }
    for (int c : routed)
        EXPECT_EQ(c, 2);
}

TEST(BackendFleet, HeterogeneousFleetStaysBitExact)
{
    SchedulerConfig cfg;
    cfg.headBudget = 4;
    cfg.faultsFromEnv = false;
    cfg.routing = RoutingPolicy::LeastQueueDepth;
    {
        EngineBackendConfig e;
        e.engine = cfg.engine;
        cfg.backends.push_back(std::make_shared<EngineBackend>(e));
        SimBackendConfig s;
        s.engine = cfg.engine;
        cfg.backends.push_back(std::make_shared<SimBackend>(s));
        AnalyticBackendConfig a;
        a.engine = cfg.engine;
        cfg.backends.push_back(std::make_shared<AnalyticBackend>(a));
    }
    Scheduler sched(cfg);
    const std::vector<Request> trace = mixedMiniTrace(6);
    const auto results = runClosedLoop(sched, trace, 3);
    const Engine eng(cfg.engine);
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_EQ(results[i].outcome, Outcome::Completed) << i;
        expectSameEngineResult(
            results[i].engine,
            eng.run(generateModelWorkload(trace[i].work)));
        // Modeled latency only on the modeled shards.
        if (results[i].backend == 0)
            EXPECT_EQ(results[i].modeledSeconds, 0.0) << i;
        else
            EXPECT_GT(results[i].modeledSeconds, 0.0) << i;
    }
}

// ---------------------------------------------------------------
// The ScopedDefaultThreads hazard, fixed: backends own their pools
// ---------------------------------------------------------------

TEST(BackendFleet, OwnedPoolsNeverTouchTheProcessDefault)
{
    const int override_before = ThreadPool::defaultThreadsOverride();
    const EngineConfig ecfg;
    EngineBackendConfig c2;
    c2.engine = ecfg;
    c2.threads = 2;
    c2.name = "pool2";
    EngineBackendConfig c4;
    c4.engine = ecfg;
    c4.threads = 4;
    c4.name = "pool4";
    EngineBackend b2(c2), b4(c4);
    EXPECT_EQ(b2.ownedPoolThreads(), 2);
    EXPECT_EQ(b4.ownedPoolThreads(), 4);

    const ModelWorkload mw = generateModelWorkload(prefillSpec(9));
    const std::vector<HeadTask> tasks = gridTasks(mw);
    const EngineResult ref = Engine(ecfg).run(tasks);

    // Two backends with different thread counts run concurrently
    // from two threads: no cross-talk, both bit-exact, and the
    // process-wide default pool setting is untouched throughout.
    EngineResult r2, r4;
    std::thread t2(
        [&] { r2 = b2.begin(tasks)->finish(); });
    std::thread t4(
        [&] { r4 = b4.begin(tasks)->finish(); });
    t2.join();
    t4.join();
    expectSameEngineResult(r2, ref);
    expectSameEngineResult(r4, ref);
    EXPECT_EQ(ThreadPool::defaultThreadsOverride(),
              override_before);
}

} // namespace
} // namespace serve
} // namespace sofa
