/**
 * Randomized property test of the paged KV pool (serve/kvpool)
 * against an independently written reference model: ~200 seeded
 * alloc/pin/unpin/retire/release schedules (tests/testprop.h
 * generator), checking after every single op that
 *
 *  - pages conserve: free + resident == capacity, free >= 0 (no
 *    double-free can mint pages, no path loses them),
 *  - the pool's full observable state (return values, eviction
 *    victims and their order, cold markers, pinned/resident sets,
 *    counters) matches the reference,
 *  - the LRU victim order equals the reference model's idle-recency
 *    order (lruOrder()).
 *
 * The reference keeps an explicit recency list instead of the pool's
 * clock-stamp scan, so an ordering bug in either implementation
 * shows up as a divergence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <list>
#include <map>
#include <set>
#include <vector>

#include "serve/kvpool.h"
#include "testprop.h"

namespace sofa {
namespace serve {
namespace {

using testprop::AllocOp;
using testprop::AllocStep;

/** What the reference model predicts one acquire() returns. */
struct RefAcquire
{
    bool ok = false;
    bool cold = false;
    std::int64_t pages = 0;
    std::vector<std::uint64_t> evicted;
};

/**
 * Reference pool: same contract as serve/kvpool, structured
 * differently — recency is an explicit most-recent-last list, and
 * eviction pops idle ids off its front.
 */
class RefPool
{
  public:
    RefPool(std::int64_t pages, std::int64_t page_tokens)
        : capacity_(pages), pageTokens_(page_tokens), free_(pages)
    {
    }

    RefAcquire acquire(std::uint64_t id, std::int64_t tokens,
                       bool pin_now)
    {
        RefAcquire out;
        auto it = held_.find(id);
        if (it != held_.end()) {
            touch(id);
            if (pin_now)
                pinned_.insert(id);
            out.ok = true;
            out.pages = it->second;
            return out;
        }
        const std::int64_t need =
            KvPool::pagesFor(tokens, pageTokens_);
        if (need > capacity_)
            return out;
        while (free_ < need) {
            const std::uint64_t victim = lruVictim(&out.ok);
            if (!out.ok)
                return out; // partial evictions stick (kvpool too)
            free_ += held_[victim];
            held_.erase(victim);
            recency_.remove(victim);
            if (!retired_.count(victim))
                evictedIds_.insert(victim);
            retired_.erase(victim);
            ++evictions_;
            out.evicted.push_back(victim);
        }
        out.ok = true;
        free_ -= need;
        held_[id] = need;
        recency_.push_back(id);
        if (pin_now)
            pinned_.insert(id);
        out.pages = need;
        out.cold = evictedIds_.erase(id) > 0;
        if (out.cold)
            ++coldAcquires_;
        return out;
    }

    bool pin(std::uint64_t id)
    {
        if (!held_.count(id))
            return false;
        pinned_.insert(id);
        touch(id);
        return true;
    }

    void unpin(std::uint64_t id) { pinned_.erase(id); }

    void retire(std::uint64_t id)
    {
        if (held_.count(id)) {
            pinned_.erase(id);
            retired_.insert(id);
        }
    }

    void release(std::uint64_t id)
    {
        auto it = held_.find(id);
        if (it != held_.end()) {
            free_ += it->second;
            held_.erase(it);
            recency_.remove(id);
            pinned_.erase(id);
            retired_.erase(id);
        }
        evictedIds_.erase(id);
    }

    std::int64_t freePages() const { return free_; }
    std::int64_t residentPages() const
    {
        std::int64_t n = 0;
        for (const auto &e : held_)
            n += e.second;
        return n;
    }
    std::int64_t pinnedPages() const
    {
        std::int64_t n = 0;
        for (std::uint64_t id : pinned_)
            n += held_.at(id);
        return n;
    }
    std::int64_t evictions() const { return evictions_; }
    std::int64_t coldAcquires() const { return coldAcquires_; }
    bool resident(std::uint64_t id) const { return held_.count(id); }
    bool pinnedId(std::uint64_t id) const
    {
        return pinned_.count(id) > 0;
    }
    std::vector<std::uint64_t> lruOrder() const
    {
        std::vector<std::uint64_t> order;
        for (std::uint64_t id : recency_)
            if (!pinned_.count(id))
                order.push_back(id);
        return order;
    }

  private:
    void touch(std::uint64_t id)
    {
        recency_.remove(id);
        recency_.push_back(id);
    }
    std::uint64_t lruVictim(bool *found) const
    {
        for (std::uint64_t id : recency_)
            if (!pinned_.count(id)) {
                *found = true;
                return id;
            }
        *found = false;
        return 0;
    }

    const std::int64_t capacity_;
    const std::int64_t pageTokens_;
    std::map<std::uint64_t, std::int64_t> held_;
    std::list<std::uint64_t> recency_; ///< LRU first
    std::set<std::uint64_t> pinned_;
    std::set<std::uint64_t> retired_;
    std::set<std::uint64_t> evictedIds_;
    std::int64_t free_ = 0;
    std::int64_t evictions_ = 0;
    std::int64_t coldAcquires_ = 0;
};

/** Every observable of @p pool must match the reference @p ref. */
void
expectSameState(const KvPool &pool, const RefPool &ref, int max_ids,
                int c, int step)
{
    SCOPED_TRACE(testing::Message()
                 << "case " << c << " step " << step);
    EXPECT_EQ(pool.freePages(), ref.freePages());
    EXPECT_EQ(pool.residentPages(), ref.residentPages());
    EXPECT_EQ(pool.pinnedPages(), ref.pinnedPages());
    EXPECT_EQ(pool.evictions(), ref.evictions());
    EXPECT_EQ(pool.coldAcquires(), ref.coldAcquires());
    // Conservation: no op may mint or lose pages.
    EXPECT_GE(pool.freePages(), 0);
    EXPECT_EQ(pool.freePages() + pool.residentPages(),
              pool.capacityPages());
    for (int id = 0; id < max_ids; ++id) {
        const std::uint64_t u = static_cast<std::uint64_t>(id);
        EXPECT_EQ(pool.resident(u), ref.resident(u)) << "id " << id;
        EXPECT_EQ(pool.pinned(u), ref.pinnedId(u)) << "id " << id;
    }
    EXPECT_EQ(pool.lruOrder(), ref.lruOrder());
}

TEST(KvPoolProp, RandomSchedulesMatchReferenceModel)
{
    testprop::forEachSeededCase(200, [](int c, Rng &rng) {
        const std::int64_t pages = rng.uniformInt(1, 12);
        const std::int64_t page_tokens =
            std::vector<std::int64_t>{1, 4, 16}[static_cast<
                std::size_t>(rng.uniformInt(0, 2))];
        const int max_ids = static_cast<int>(rng.uniformInt(2, 8));
        // Demands span past whole-pool capacity so impossible
        // acquires and evict-everything paths both occur.
        const std::int64_t max_tokens =
            pages * page_tokens + 2 * page_tokens;

        KvPool pool(KvPoolConfig{pages, page_tokens});
        RefPool ref(pages, page_tokens);
        const std::vector<AllocStep> seq = testprop::allocOpSequence(
            rng, /*steps=*/60, max_ids, max_tokens, page_tokens);

        for (std::size_t i = 0; i < seq.size(); ++i) {
            const AllocStep &s = seq[i];
            switch (s.op) {
              case AllocOp::Acquire: {
                const KvAcquire got =
                    pool.acquire(s.id, s.tokens, s.pinNow);
                const RefAcquire want =
                    ref.acquire(s.id, s.tokens, s.pinNow);
                EXPECT_EQ(got.ok, want.ok) << "case " << c;
                EXPECT_EQ(got.cold, want.cold) << "case " << c;
                EXPECT_EQ(got.pages, want.pages) << "case " << c;
                // Victim identity AND order must match: LRU is part
                // of the contract, not an implementation detail.
                EXPECT_EQ(got.evicted, want.evicted) << "case " << c;
                break;
              }
              case AllocOp::Pin:
                EXPECT_EQ(pool.pin(s.id), ref.pin(s.id))
                    << "case " << c;
                break;
              case AllocOp::Unpin:
                pool.unpin(s.id);
                ref.unpin(s.id);
                break;
              case AllocOp::Retire:
                pool.retire(s.id);
                ref.retire(s.id);
                break;
              case AllocOp::Release:
                pool.release(s.id);
                ref.release(s.id);
                break;
            }
            expectSameState(pool, ref, max_ids, c,
                            static_cast<int>(i));
        }
    });
}

TEST(KvPoolProp, PagesForRoundsUpAndFloorsAtOne)
{
    EXPECT_EQ(KvPool::pagesFor(0, 16), 1);
    EXPECT_EQ(KvPool::pagesFor(1, 16), 1);
    EXPECT_EQ(KvPool::pagesFor(16, 16), 1);
    EXPECT_EQ(KvPool::pagesFor(17, 16), 2);
    EXPECT_EQ(KvPool::pagesFor(32, 16), 2);
    EXPECT_EQ(KvPool::pagesFor(33, 16), 3);
    EXPECT_EQ(KvPool::pagesFor(5, 1), 5);
}

TEST(KvPoolProp, DisabledPoolAlwaysWarmNeverEvicts)
{
    KvPool pool; // pages == 0: disabled
    EXPECT_FALSE(pool.enabled());
    for (std::uint64_t id = 0; id < 100; ++id) {
        const KvAcquire a = pool.acquire(id, 1 << 20);
        EXPECT_TRUE(a.ok);
        EXPECT_FALSE(a.cold);
        EXPECT_TRUE(a.evicted.empty());
        EXPECT_TRUE(pool.pin(id));
        pool.retire(id);
    }
    EXPECT_EQ(pool.evictions(), 0);
    EXPECT_EQ(pool.coldAcquires(), 0);
}

TEST(KvPoolProp, EvictedWaiterComesBackColdExactlyOnce)
{
    // 2-page pool: B's acquire evicts idle A; A then re-acquires
    // cold once, and warm after that.
    KvPool pool(KvPoolConfig{/*pages=*/2, /*pageTokens=*/16});
    ASSERT_TRUE(pool.acquire(/*id=*/1, /*tokens=*/32).ok); // 2 pages
    const KvAcquire b = pool.acquire(2, 32);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(b.evicted, std::vector<std::uint64_t>{1});
    pool.release(2);
    const KvAcquire back = pool.acquire(1, 32);
    EXPECT_TRUE(back.ok);
    EXPECT_TRUE(back.cold); // pays recompute on its next decode
    const KvAcquire again = pool.acquire(1, 32);
    EXPECT_TRUE(again.ok);
    EXPECT_FALSE(again.cold); // cold marker consumed
    EXPECT_EQ(pool.coldAcquires(), 1);
}

TEST(KvPoolProp, RetiredVictimLeavesNoColdMarker)
{
    KvPool pool(KvPoolConfig{2, 16});
    ASSERT_TRUE(pool.acquire(1, 32).ok);
    pool.retire(1); // finished: idle reusable cache
    ASSERT_TRUE(pool.acquire(2, 32).ok); // evicts retired 1
    EXPECT_EQ(pool.evictions(), 1);
    pool.release(2);
    // 1 never "comes back" — but if the id is reused, it's warm-new.
    const KvAcquire a = pool.acquire(1, 32);
    EXPECT_TRUE(a.ok);
    EXPECT_FALSE(a.cold);
    EXPECT_EQ(pool.coldAcquires(), 0);
}

TEST(KvPoolProp, PinnedPagesAreNeverVictims)
{
    KvPool pool(KvPoolConfig{2, 16});
    ASSERT_TRUE(pool.acquire(1, 32, /*pin_now=*/true).ok);
    const KvAcquire blocked = pool.acquire(2, 16);
    EXPECT_FALSE(blocked.ok); // everything pinned: fail, no evict
    EXPECT_TRUE(pool.resident(1));
    EXPECT_EQ(pool.evictions(), 0);
    pool.unpin(1);
    EXPECT_TRUE(pool.acquire(2, 16).ok); // now evictable
    EXPECT_FALSE(pool.resident(1));
}

} // namespace
} // namespace serve
} // namespace sofa
