/**
 * Trace-replay determinism (serving v2): a seeded 10^4-request
 * mixed-tenant trace, run through the full serving-v2 configuration
 * — DRR policy, prefill chunking, and a small KV pool under heavy
 * eviction churn — must produce identical outcome counters and
 * bit-exact per-request results when replayed twice and across
 * engine thread pools of 1/2/8 workers. A single paused lane
 * serializes pop -> pin -> run -> resolve, so the pool's eviction
 * schedule is a pure function of the trace; the engine pool size
 * must never leak into scheduling decisions.
 *
 * Plus the KV recompute-reconciliation law the pool's op accounting
 * promises: a cold decode's op total exceeds its warm twin by
 * exactly kvGenerationOps(keys the warm run found cached) — derived
 * through the engine's own counters, never asserted.
 */

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/threadpool.h"
#include "core/pipeline.h"
#include "serve/scheduler.h"
#include "testutil.h"

namespace sofa {
namespace serve {
namespace {

/** Tiniest engine-scale model: heads of dim 8 over dim-8 tokens. */
ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.hidden = 8;
    m.heads = 1;
    m.maxSeq = 32;
    return m;
}

std::vector<Request>
tenantTrace(int n)
{
    const std::vector<ServingScenario> suite =
        servingSuite(tinyModel());
    return multiTenantTrace(suite, /*tenants=*/4, n,
                            ArrivalPattern::Poisson,
                            /*mean_gap=*/1e-3,
                            /*seed=*/testutil::kTestSeed,
                            /*max_context=*/20, /*max_batch=*/1,
                            /*max_heads=*/1);
}

/** Outcome + KV/chunk counter fingerprint of one full run. */
struct RunDigest
{
    SchedulerStats stats;
    std::vector<Outcome> outcomes;
    std::vector<bool> cold;
    std::vector<int> chunks;
    std::vector<std::int64_t> ops; ///< per-request total op count
    std::vector<std::size_t> heads; ///< per-request head entries

    bool operator==(const RunDigest &o) const
    {
        return outcomes == o.outcomes && cold == o.cold &&
               chunks == o.chunks && ops == o.ops &&
               heads == o.heads &&
               stats.completed == o.stats.completed &&
               stats.shed == o.stats.shed &&
               stats.timedOut == o.stats.timedOut &&
               stats.failed == o.stats.failed &&
               stats.batches == o.stats.batches &&
               stats.kvEvictions == o.stats.kvEvictions &&
               stats.kvColdRuns == o.stats.kvColdRuns &&
               stats.chunkRuns == o.stats.chunkRuns;
    }
};

RunDigest
replayOnce(const std::vector<Request> &trace, ThreadPool *pool)
{
    SchedulerConfig cfg;
    cfg.lanes = 1;         // serialize the pool's op sequence
    cfg.startPaused = true; // admission decoupled from dispatch
    cfg.maxQueue = trace.size() + 1;
    cfg.policy = SchedulingPolicy::DRR;
    cfg.drrQuantumHeads = 2;
    cfg.headBudget = 4;
    cfg.prefillChunkRows = 10; // 16-row prefills -> 2 chunks
    cfg.kvPool.pages = 6; // tiny: constant eviction churn
    cfg.kvPool.pageTokens = 16;
    cfg.faultsFromEnv = false;
    cfg.engine.computeQuality = false;
    cfg.engine.pool = pool;
    Scheduler sched(cfg);
    std::vector<std::future<RequestResult>> futs;
    futs.reserve(trace.size());
    for (const Request &r : trace)
        futs.push_back(sched.submit(r));
    sched.drain();
    RunDigest d;
    d.stats = sched.stats();
    for (auto &f : futs) {
        const RequestResult r = f.get();
        d.outcomes.push_back(r.outcome);
        d.cold.push_back(r.kvCold);
        d.chunks.push_back(r.chunks);
        d.ops.push_back(r.engine.totalOps().total());
        d.heads.push_back(r.engine.heads.size());
    }
    return d;
}

TEST(TraceReplay, TenThousandRequestsDeterministicAcrossPools)
{
    const std::vector<Request> trace = tenantTrace(10000);
    const RunDigest first = replayOnce(trace, nullptr);
    // The scheduler admits everything (queue sized to the trace) and
    // nothing times out or fails: conservation pins the counters.
    EXPECT_EQ(first.stats.completed,
              static_cast<std::int64_t>(trace.size()));
    EXPECT_EQ(first.stats.shed, 0);
    EXPECT_EQ(first.stats.timedOut, 0);
    EXPECT_EQ(first.stats.failed, 0);
    EXPECT_GT(first.stats.kvEvictions, 0); // the pool really churns
    EXPECT_GT(first.stats.kvColdRuns, 0);
    EXPECT_GT(first.stats.chunkRuns, 0);

    const RunDigest again = replayOnce(trace, nullptr);
    EXPECT_TRUE(first == again) << "second replay diverged";
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        const RunDigest d = replayOnce(trace, &pool);
        EXPECT_TRUE(first == d)
            << "engine pool of " << threads
            << " threads changed the schedule";
    }
}

TEST(TraceReplay, ColdDecodeOpsReconcileExactly)
{
    // Two decodes whose page demands each fill the whole pool are
    // admitted while the scheduler is paused: id 2's admission
    // evicts id 1's reservation, so id 1's dispatch pin fails and
    // it runs cold (and its cold re-acquire in turn evicts id 2).
    // The cold run's op total must exceed its pool-off warm twin by
    // exactly kvGenerationOps(keysCached_warm): recompute cost is
    // derived through the op-count discipline, so pool-on and
    // pool-off totals reconcile with zero tolerance.
    ModelWorkloadSpec dec;
    dec.batch = 1;
    dec.heads = 2;
    dec.seq = 64;
    dec.queries = 8;
    dec.headDim = 16;
    dec.tokenDim = 24;
    dec.seed = 0xC0DEC0DEull;
    dec.pastLen = 60;
    dec.newTokens = 4;
    Request r1, r2;
    r1.id = 1;
    r1.work = dec;
    r2.id = 2;
    r2.work = dec;
    r2.work.seed = 0xC0DEC0DFull;

    // Warm twins: pool disabled, pastLen stays a free resource.
    RequestResult w1, w2;
    {
        SchedulerConfig cfg;
        cfg.lanes = 1;
        cfg.faultsFromEnv = false;
        Scheduler warm(cfg);
        w1 = warm.submit(r1).get();
        w2 = warm.submit(r2).get();
    }
    ASSERT_EQ(w1.outcome, Outcome::Completed);
    EXPECT_FALSE(w1.kvCold);
    ASSERT_GT(w1.engine.keysCached, 0);

    SchedulerConfig cfg;
    cfg.lanes = 1;
    cfg.startPaused = true; // both admitted before either dispatches
    cfg.headBudget = dec.heads; // one request per engine run
    cfg.kvPool.pages = 4;       // one 64-token resident at a time
    cfg.kvPool.pageTokens = 16;
    cfg.faultsFromEnv = false;
    Scheduler sched(cfg);
    std::future<RequestResult> f1 = sched.submit(r1);
    std::future<RequestResult> f2 = sched.submit(r2);
    sched.drain();
    const RequestResult c1 = f1.get(), c2 = f2.get();
    ASSERT_EQ(c1.outcome, Outcome::Completed);
    ASSERT_EQ(c2.outcome, Outcome::Completed);
    EXPECT_TRUE(c1.kvCold);
    EXPECT_TRUE(c2.kvCold); // id 1's cold re-acquire evicted it too
    EXPECT_GE(sched.stats().kvEvictions, 2);
    EXPECT_EQ(sched.stats().kvColdRuns, 2);

    const std::pair<const RequestResult *, const RequestResult *>
        pairs[] = {{&c1, &w1}, {&c2, &w2}};
    for (const auto &pw : pairs) {
        const RequestResult &c = *pw.first, &w = *pw.second;
        EXPECT_EQ(c.engine.keysCached, 0);
        EXPECT_EQ(c.engine.keysGenerated,
                  w.engine.keysGenerated + w.engine.keysCached);
        const OpCounter recompute = kvGenerationOps(
            w.engine.keysCached, dec.tokenDim, dec.headDim);
        EXPECT_EQ(c.engine.totalOps().total(),
                  w.engine.totalOps().total() + recompute.total());
        // Values never depend on pastLen: cold == warm outputs.
        ASSERT_EQ(c.engine.heads.size(), w.engine.heads.size());
        for (std::size_t h = 0; h < w.engine.heads.size(); ++h) {
            EXPECT_EQ(c.engine.heads[h].result.output,
                      w.engine.heads[h].result.output);
            EXPECT_EQ(c.engine.heads[h].result.selections,
                      w.engine.heads[h].result.selections);
        }
    }
}

} // namespace
} // namespace serve
} // namespace sofa
