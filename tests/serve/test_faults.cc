/**
 * Fault-tolerance suite for the serving scheduler, driven entirely
 * by deterministic common/faultplan injection: transient/permanent
 * failure retry paths, deadline timeouts with cooperative
 * cancellation, graceful degradation, and outcome-count determinism
 * across thread counts. Runs under the `faults` CTest label (ASan
 * and TSan in CI); EnvFaultPlanReplay prints the OUTCOMES: line the
 * CI determinism smoke test greps.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/threadpool.h"
#include "serve/scheduler.h"

namespace sofa {
namespace serve {
namespace {

/** Tiny prefill request spec (fast enough for many engine runs). */
ModelWorkloadSpec
prefillSpec(std::uint64_t salt = 0)
{
    ModelWorkloadSpec spec;
    spec.batch = 1;
    spec.heads = 2;
    spec.seq = 64;
    spec.queries = 8;
    spec.headDim = 16;
    spec.tokenDim = 24;
    spec.seed = 0x5E4D0000ull + salt;
    return spec;
}

/** Tiny KV-cache decode step spec. */
ModelWorkloadSpec
decodeSpec(std::uint64_t salt = 0)
{
    ModelWorkloadSpec spec = prefillSpec(salt);
    spec.pastLen = 60;
    spec.newTokens = 4;
    return spec;
}

/** Alternating prefill/decode trace with decorrelated seeds. */
std::vector<Request>
mixedMiniTrace(int n)
{
    std::vector<Request> trace;
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = static_cast<std::uint64_t>(i);
        const std::uint64_t salt = static_cast<std::uint64_t>(i);
        r.work = i % 2 == 0 ? prefillSpec(salt) : decodeSpec(salt);
        trace.push_back(r);
    }
    return trace;
}

/** A fault-suite scheduler config: hermetic (no env plan), tiny
 * backoffs so retry paths run fast, paused for deterministic batch
 * composition. */
SchedulerConfig
faultConfig(const std::string &plan)
{
    SchedulerConfig cfg;
    cfg.startPaused = true;
    cfg.headBudget = 8; // 4 two-head requests per merged run
    cfg.faultsFromEnv = false;
    cfg.faults = FaultPlan::parse(plan);
    cfg.retry.baseSeconds = 1e-6; // keep retry sleeps negligible
    cfg.retry.maxSeconds = 1e-4;
    return cfg;
}

/** Submit the whole trace to a paused scheduler, then drain. */
std::vector<RequestResult>
runPaused(Scheduler &sched, const std::vector<Request> &trace)
{
    std::vector<std::future<RequestResult>> futs;
    futs.reserve(trace.size());
    for (const Request &r : trace)
        futs.push_back(sched.submit(r));
    sched.drain();
    std::vector<RequestResult> results;
    results.reserve(futs.size());
    for (auto &f : futs)
        results.push_back(f.get());
    return results;
}

/** Every numerical field of two per-head results must agree. */
void
expectSameResult(const PipelineResult &a, const PipelineResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.selections, b.selections);
    EXPECT_EQ(a.predictionOps.total(), b.predictionOps.total());
    EXPECT_EQ(a.sortOps.total(), b.sortOps.total());
    EXPECT_EQ(a.formalOps.total(), b.formalOps.total());
    EXPECT_EQ(a.keysGenerated, b.keysGenerated);
    EXPECT_DOUBLE_EQ(a.massRecall, b.massRecall);
}

/** A scheduler result vs a standalone Engine::run of @p ecfg. */
void
expectMatchesStandalone(const RequestResult &r, const Request &req,
                        const EngineConfig &ecfg)
{
    const EngineResult ref =
        runEngine(generateModelWorkload(req.work), ecfg);
    ASSERT_EQ(r.engine.heads.size(), ref.heads.size());
    for (std::size_t h = 0; h < ref.heads.size(); ++h)
        expectSameResult(r.engine.heads[h].result,
                         ref.heads[h].result);
    EXPECT_EQ(r.engine.totalOps().total(), ref.totalOps().total());
    EXPECT_EQ(r.engine.keysGenerated, ref.keysGenerated);
    EXPECT_DOUBLE_EQ(r.engine.meanMassRecall, ref.meanMassRecall);
}

/** The deterministic outcome fingerprint of one scheduler run. */
struct OutcomeCounts
{
    std::int64_t completed = 0;
    std::int64_t degraded = 0;
    std::int64_t shed = 0;
    std::int64_t timedOut = 0;
    std::int64_t failed = 0;
    std::int64_t retried = 0;

    bool
    operator==(const OutcomeCounts &o) const
    {
        return completed == o.completed && degraded == o.degraded &&
               shed == o.shed && timedOut == o.timedOut &&
               failed == o.failed && retried == o.retried;
    }
};

OutcomeCounts
countsOf(const SchedulerStats &st)
{
    OutcomeCounts c;
    c.completed = st.completed;
    c.degraded = st.degraded;
    c.shed = st.shed;
    c.timedOut = st.timedOut;
    c.failed = st.failed;
    c.retried = st.retried;
    return c;
}

std::string
outcomesLine(const OutcomeCounts &c)
{
    return "OUTCOMES: completed=" + std::to_string(c.completed) +
           " degraded=" + std::to_string(c.degraded) +
           " shed=" + std::to_string(c.shed) +
           " timedout=" + std::to_string(c.timedOut) +
           " failed=" + std::to_string(c.failed) +
           " retried=" + std::to_string(c.retried);
}

TEST(Faults, TransientFailureRetriesThenCompletes)
{
    // Request 1 fails its first two attempts (the merged run and
    // one solo retry), then succeeds; its batch neighbour re-runs
    // solo once after the aborted merged run.
    const SchedulerConfig cfg =
        faultConfig("fail:req=1:stage=sads_topk:attempt<2");
    Scheduler sched(cfg);
    const auto results = runPaused(sched, mixedMiniTrace(2));
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].outcome, Outcome::Completed);
    EXPECT_EQ(results[0].attempts, 2); // merged abort + solo success
    EXPECT_EQ(results[1].outcome, Outcome::Completed);
    EXPECT_EQ(results[1].attempts, 3); // two failures + success
    // Recovered results stay bit-exact vs standalone runs.
    const auto trace = mixedMiniTrace(2);
    expectMatchesStandalone(results[0], trace[0], cfg.engine);
    expectMatchesStandalone(results[1], trace[1], cfg.engine);
    const SchedulerStats st = sched.stats();
    EXPECT_EQ(st.completed, 2);
    EXPECT_EQ(st.failed, 0);
    EXPECT_EQ(st.retried, 3); // req0: 1, req1: 2
}

TEST(Faults, PermanentFailureResolvesFailedAndAccounted)
{
    // Regression for the old catch-all failure path: a failing run
    // must resolve the future with Outcome::Failed (not an
    // exception) and must show up in SchedulerStats.
    const SchedulerConfig cfg =
        faultConfig("fail:req=0:stage=sufa_attention");
    Scheduler sched(cfg);
    const auto results = runPaused(sched, mixedMiniTrace(1));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].outcome, Outcome::Failed);
    EXPECT_EQ(results[0].attempts, cfg.retry.maxAttempts);
    EXPECT_NE(results[0].error.find("injected fault"),
              std::string::npos);
    EXPECT_TRUE(results[0].engine.heads.empty());
    const SchedulerStats st = sched.stats();
    EXPECT_EQ(st.failed, 1);
    EXPECT_EQ(st.completed, 0);
    EXPECT_EQ(st.retried, cfg.retry.maxAttempts - 1);
}

TEST(Faults, FailureDoesNotPoisonBatchNeighbours)
{
    // Request 2 fails permanently mid-batch; its three co-scheduled
    // neighbours must still complete, bit-exact.
    const SchedulerConfig cfg =
        faultConfig("fail:req=2:stage=kv_generate");
    Scheduler sched(cfg);
    const auto trace = mixedMiniTrace(4);
    const auto results = runPaused(sched, trace);
    ASSERT_EQ(results.size(), 4u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 2) {
            EXPECT_EQ(results[i].outcome, Outcome::Failed);
            continue;
        }
        EXPECT_EQ(results[i].outcome, Outcome::Completed);
        expectMatchesStandalone(results[i], trace[i], cfg.engine);
    }
    const SchedulerStats st = sched.stats();
    EXPECT_EQ(st.completed, 3);
    EXPECT_EQ(st.failed, 1);
}

TEST(Faults, InjectedSlowdownDeadlineTimesOut)
{
    // A 60 ms injected slowdown against a 5 ms deadline: the
    // request must resolve TimedOut with negative slack, and the
    // lane must stay usable for later requests.
    const SchedulerConfig cfg =
        faultConfig("slow:req=0:stage=dlzs_predict:ms=60");
    Scheduler sched(cfg);
    std::vector<Request> trace = mixedMiniTrace(2);
    trace[0].deadlineSeconds = 5e-3;
    const auto results = runPaused(sched, trace);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].outcome, Outcome::TimedOut);
    EXPECT_LT(results[0].deadlineSlackSeconds, 0.0);
    EXPECT_LE(results[0].attempts, 1);
    EXPECT_TRUE(results[0].engine.heads.empty());
    // The co-scheduled neighbour is unaffected by the cancellation.
    EXPECT_EQ(results[1].outcome, Outcome::Completed);
    expectMatchesStandalone(results[1], trace[1], cfg.engine);
    const SchedulerStats st = sched.stats();
    EXPECT_EQ(st.timedOut, 1);
    EXPECT_EQ(st.completed, 1);
}

TEST(Faults, PreDispatchDeadlineTimeout)
{
    // The deadline expires while the request is still queued
    // (paused scheduler): it must resolve TimedOut without
    // consuming a single engine run.
    SchedulerConfig cfg = faultConfig("");
    Scheduler sched(cfg);
    std::vector<Request> trace = mixedMiniTrace(1);
    trace[0].deadlineSeconds = 1e-3;
    std::future<RequestResult> fut = sched.submit(trace[0]);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sched.drain();
    const RequestResult r = fut.get();
    EXPECT_EQ(r.outcome, Outcome::TimedOut);
    EXPECT_EQ(r.attempts, 0);
    EXPECT_LT(r.deadlineSlackSeconds, 0.0);
    EXPECT_EQ(sched.stats().timedOut, 1);
    EXPECT_EQ(sched.stats().headTasks, 0);
}

TEST(Faults, NoDeadlineByDefaultEvenWhenQueuedLong)
{
    // deadlineSeconds < 0 opts out even when the scheduler has a
    // default deadline configured.
    SchedulerConfig cfg = faultConfig("");
    cfg.defaultDeadlineSeconds = 1e-3;
    Scheduler sched(cfg);
    std::vector<Request> trace = mixedMiniTrace(1);
    trace[0].deadlineSeconds = -1.0;
    std::future<RequestResult> fut = sched.submit(trace[0]);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sched.drain();
    const RequestResult r = fut.get();
    EXPECT_EQ(r.outcome, Outcome::Completed);
    EXPECT_TRUE(std::isinf(r.deadlineSlackSeconds));
}

TEST(Faults, DegradedUnderQueueDelay)
{
    // Every request waits past the (tiny) overload threshold, so
    // all of them run on the degraded engine and are tagged
    // Degraded — bit-exact vs a standalone run of the degraded
    // config, with the quality delta observable.
    SchedulerConfig cfg = faultConfig("");
    cfg.degradeAfterSeconds = 1e-9;
    Scheduler sched(cfg);
    const auto trace = mixedMiniTrace(4);
    const auto results = runPaused(sched, trace);
    const EngineConfig dcfg = degradedEngineConfig(cfg);
    ASSERT_LT(dcfg.pipeline.topkFrac,
              cfg.engine.pipeline.topkFrac);
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_EQ(results[i].outcome, Outcome::Degraded) << i;
        EXPECT_DOUBLE_EQ(results[i].degradeKeepFrac,
                         dcfg.pipeline.topkFrac /
                             cfg.engine.pipeline.topkFrac);
        expectMatchesStandalone(results[i], trace[i], dcfg);
        // The quality delta is recorded: the degraded run keeps
        // fewer keys than the full-config run would.
        const EngineResult full =
            runEngine(generateModelWorkload(trace[i].work),
                      cfg.engine);
        EXPECT_LT(results[i].engine.keysGenerated +
                      results[i].engine.keysCached,
                  full.keysGenerated + full.keysCached);
    }
    const SchedulerStats st = sched.stats();
    EXPECT_EQ(st.degraded, 4);
    EXPECT_EQ(st.completed, 0);
    EXPECT_EQ(st.failed, 0);
}

/** The standard mixed fault plan of the determinism tests: one
 * transient failure, one permanent failure, one slowdown. */
const char *const kMixedPlan =
    "fail:req=1:stage=sads_topk:attempt<2;"
    "fail:req=3:stage=sufa_attention;"
    "slow:req=5:stage=dlzs_predict:ms=40";

std::vector<Request>
mixedFaultTrace()
{
    std::vector<Request> trace = mixedMiniTrace(8);
    trace[5].deadlineSeconds = 5e-3; // loses against the 40 ms slow
    return trace;
}

TEST(Faults, OutcomeCountsInvariantAcrossThreadCounts)
{
    // The acceptance bar: a seeded fault plan replays to
    // bit-identical outcome counts at any thread count, and the
    // surviving Completed results are bit-identical too.
    const auto trace = mixedFaultTrace();
    const SchedulerConfig cfg = faultConfig(kMixedPlan);

    OutcomeCounts ref_counts;
    std::vector<RequestResult> ref;
    {
        ThreadPool::ScopedSerial guard;
        Scheduler sched(cfg);
        ref = runPaused(sched, trace);
        ref_counts = countsOf(sched.stats());
    }
    EXPECT_EQ(ref_counts.completed, 6);
    EXPECT_EQ(ref_counts.failed, 1);
    EXPECT_EQ(ref_counts.timedOut, 1);
    EXPECT_EQ(ref_counts.retried, 6);
    EXPECT_EQ(ref_counts.degraded, 0);
    EXPECT_EQ(ref_counts.shed, 0);

    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        SchedulerConfig tcfg = cfg;
        tcfg.engine.pool = &pool;
        Scheduler sched(tcfg);
        const auto results = runPaused(sched, trace);
        EXPECT_TRUE(countsOf(sched.stats()) == ref_counts)
            << "threads=" << threads;
        ASSERT_EQ(results.size(), ref.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(results[i].outcome, ref[i].outcome)
                << "threads=" << threads << " req=" << i;
            if (results[i].outcome != Outcome::Completed)
                continue;
            ASSERT_EQ(results[i].engine.heads.size(),
                      ref[i].engine.heads.size());
            for (std::size_t h = 0;
                 h < results[i].engine.heads.size(); ++h)
                expectSameResult(results[i].engine.heads[h].result,
                                 ref[i].engine.heads[h].result);
        }
    }
}

TEST(Faults, EnvFaultPlanReplay)
{
    // SOFA_FAULTS wiring + the CI determinism smoke test: the same
    // env plan produces identical outcome counts on back-to-back
    // runs. The OUTCOMES: line is what .github/workflows/ci.yml
    // greps and compares across two process invocations.
    const char *plan =
        "fail:req=1:stage=sads_topk:attempt<2;"
        "fail:req=3:stage=sufa_attention";
    setenv("SOFA_FAULTS", plan, 1);
    const auto trace = mixedMiniTrace(6);
    OutcomeCounts first;
    for (int round = 0; round < 2; ++round) {
        SchedulerConfig cfg;
        cfg.startPaused = true;
        cfg.headBudget = 8;
        cfg.retry.baseSeconds = 1e-6;
        // cfg.faults left empty and faultsFromEnv true: the plan
        // must arrive through the environment.
        Scheduler sched(cfg);
        runPaused(sched, trace);
        const OutcomeCounts c = countsOf(sched.stats());
        if (round == 0)
            first = c;
        else
            EXPECT_TRUE(c == first) << "env fault plan must replay "
                                       "to identical outcomes";
    }
    unsetenv("SOFA_FAULTS");
    EXPECT_EQ(first.completed, 5);
    EXPECT_EQ(first.failed, 1);
    EXPECT_EQ(first.retried, 6);
    std::printf("%s\n", outcomesLine(first).c_str());
    std::fflush(stdout);
}

TEST(Faults, BackoffIsDeterministicBoundedAndJittered)
{
    RetryPolicy p;
    p.baseSeconds = 1e-3;
    p.maxSeconds = 8e-3;
    p.jitterFrac = 0.25;
    p.seed = 42;
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(p, 7, 0), 0.0);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(p, 7, -1), 0.0);
    for (int attempt = 1; attempt <= 6; ++attempt) {
        const double b = retryBackoffSeconds(p, 7, attempt);
        // Pure function: replays identically.
        EXPECT_DOUBLE_EQ(b, retryBackoffSeconds(p, 7, attempt));
        // Exponential growth capped at maxSeconds, within jitter.
        const double nominal = std::min(
            p.maxSeconds, p.baseSeconds * std::pow(2.0, attempt - 1));
        EXPECT_GE(b, nominal * (1.0 - p.jitterFrac));
        EXPECT_LE(b, nominal * (1.0 + p.jitterFrac));
    }
    // Jitter decorrelates requests (not all equal).
    const double a = retryBackoffSeconds(p, 1, 1);
    const double c = retryBackoffSeconds(p, 2, 1);
    const double d = retryBackoffSeconds(p, 3, 1);
    EXPECT_TRUE(a != c || c != d);
}

TEST(TaskQueueFaults, DestructorDrainsThrowingTasks)
{
    // The TaskQueue destructor must drain tasks whose bodies throw;
    // the exceptions stay captured in the futures.
    std::vector<std::future<void>> futs;
    {
        TaskQueue q(2);
        for (int i = 0; i < 16; ++i)
            futs.push_back(q.submit([i] {
                if (i % 2 == 0)
                    throw std::runtime_error(
                        "task " + std::to_string(i));
            }));
    } // destructor drains all 16, half of them throwing
    ASSERT_EQ(futs.size(), 16u);
    for (int i = 0; i < 16; ++i) {
        if (i % 2 == 0)
            EXPECT_THROW(futs[static_cast<std::size_t>(i)].get(),
                         std::runtime_error);
        else
            EXPECT_NO_THROW(futs[static_cast<std::size_t>(i)].get());
    }
}

} // namespace
} // namespace serve
} // namespace sofa
