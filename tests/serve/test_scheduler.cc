#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/threadpool.h"
#include "serve/scheduler.h"
#include "testutil.h"

namespace sofa {
namespace serve {
namespace {

/** Tiny prefill request spec (fast enough for many engine runs). */
ModelWorkloadSpec
prefillSpec(std::uint64_t salt = 0)
{
    ModelWorkloadSpec spec;
    spec.batch = 1;
    spec.heads = 2;
    spec.seq = 64;
    spec.queries = 8;
    spec.headDim = 16;
    spec.tokenDim = 24;
    spec.seed = 0x5E4D0000ull + salt;
    return spec;
}

/** Tiny KV-cache decode step spec. */
ModelWorkloadSpec
decodeSpec(std::uint64_t salt = 0)
{
    ModelWorkloadSpec spec = prefillSpec(salt);
    spec.pastLen = 60;
    spec.newTokens = 4;
    return spec;
}

Request
makeRequest(std::uint64_t id, const ModelWorkloadSpec &work)
{
    Request r;
    r.id = id;
    r.work = work;
    return r;
}

TEST(Scheduler, PlanForRequestFollowsAutoTileSetting)
{
    SchedulerConfig cfg;
    cfg.engine.rowTile = 24;
    cfg.prefillChunkRows = 32;
    const Request prefill = makeRequest(1, prefillSpec());
    {
        // Planner off: the config's fixed knobs pass through.
        ScopedAutoTile off(0);
        const TilePlan p = planForRequest(cfg, prefill);
        EXPECT_EQ(p.rowTile, 24);
        EXPECT_EQ(p.sadsSpan, 24);
        EXPECT_EQ(p.prefillChunkRows, 32);
        EXPECT_EQ(p, planForRequest(cfg, prefill)); // deterministic
    }
    ScopedAutoTile on(1);
    const TilePlan p = planForRequest(cfg, prefill);
    EXPECT_GE(p.rowTile, 1);
    EXPECT_LE(p.rowTile, prefill.work.queryRows());
    EXPECT_EQ(p.blockK % 4, 0u);
    // Chunk suggestion only for prefills long enough to split into
    // multiple planned tiles (8 rows never is), never for decodes.
    EXPECT_EQ(p.prefillChunkRows, 0);
    ModelWorkloadSpec long_prefill = prefillSpec();
    long_prefill.queries = 512;
    const TilePlan lp =
        planForRequest(cfg, makeRequest(2, long_prefill));
    if (512 > 4 * lp.rowTile) {
        EXPECT_EQ(lp.prefillChunkRows, 4 * lp.rowTile);
    }
    const TilePlan dp =
        planForRequest(cfg, makeRequest(3, decodeSpec()));
    EXPECT_EQ(dp.prefillChunkRows, 0);
}

/** Alternating prefill/decode trace with decorrelated seeds. */
std::vector<Request>
mixedMiniTrace(int n)
{
    std::vector<Request> trace;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t salt = static_cast<std::uint64_t>(i);
        trace.push_back(makeRequest(
            static_cast<std::uint64_t>(i),
            i % 2 == 0 ? prefillSpec(salt) : decodeSpec(salt)));
    }
    return trace;
}

/** Every numerical field of two per-head results must agree. */
void
expectSameResult(const PipelineResult &a, const PipelineResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.selections, b.selections);
    EXPECT_EQ(a.predictionOps.total(), b.predictionOps.total());
    EXPECT_EQ(a.sortOps.total(), b.sortOps.total());
    EXPECT_EQ(a.formalOps.total(), b.formalOps.total());
    EXPECT_EQ(a.keysGenerated, b.keysGenerated);
    EXPECT_DOUBLE_EQ(a.massRecall, b.massRecall);
}

/** Per-request scheduler result vs a standalone Engine::run. */
void
expectMatchesStandalone(const RequestResult &r,
                        const Request &req,
                        const EngineConfig &ecfg)
{
    ASSERT_EQ(r.outcome, Outcome::Completed);
    const EngineResult ref =
        runEngine(generateModelWorkload(req.work), ecfg);
    ASSERT_EQ(r.engine.heads.size(), ref.heads.size());
    for (std::size_t h = 0; h < ref.heads.size(); ++h) {
        EXPECT_EQ(r.engine.heads[h].batch, ref.heads[h].batch);
        EXPECT_EQ(r.engine.heads[h].head, ref.heads[h].head);
        expectSameResult(r.engine.heads[h].result,
                         ref.heads[h].result);
    }
    EXPECT_EQ(r.engine.totalOps().total(),
              ref.totalOps().total());
    EXPECT_EQ(r.engine.keysGenerated, ref.keysGenerated);
    EXPECT_EQ(r.engine.keysCached, ref.keysCached);
    EXPECT_DOUBLE_EQ(r.engine.meanMassRecall, ref.meanMassRecall);
}

TEST(Scheduler, ZeroRequestTrace)
{
    Scheduler sched;
    const auto results = runClosedLoop(sched, {}, 4);
    EXPECT_TRUE(results.empty());
    sched.drain(); // idle drain returns immediately
    const SchedulerStats st = sched.stats();
    EXPECT_EQ(st.submitted, 0);
    EXPECT_EQ(st.completed, 0);
    EXPECT_EQ(st.batches, 0);
}

TEST(Scheduler, SingleRequestDegeneratesToEngineRun)
{
    SchedulerConfig cfg;
    Scheduler sched(cfg);
    const Request req = makeRequest(7, prefillSpec());
    std::future<RequestResult> fut = sched.submit(req);
    const RequestResult r = fut.get();
    EXPECT_EQ(r.id, 7u);
    EXPECT_EQ(r.kind, RequestKind::Prefill);
    EXPECT_EQ(r.coscheduledHeads, 2); // its own heads only
    expectMatchesStandalone(r, req, cfg.engine);
    const SchedulerStats st = sched.stats();
    EXPECT_EQ(st.batches, 1);
    EXPECT_EQ(st.completed, 1);
    EXPECT_EQ(st.headTasks, 2);
    EXPECT_GE(r.totalSeconds,
              r.queueSeconds); // breakdown is consistent
}

TEST(Scheduler, MixedPrefillDecodeBitExactVsSequential)
{
    const std::vector<Request> trace = mixedMiniTrace(6);
    SchedulerConfig cfg;
    cfg.lanes = 2;
    cfg.headBudget = 4; // forces multi-request, multi-batch runs
    Scheduler sched(cfg);
    const auto results = runClosedLoop(sched, trace, 3);
    ASSERT_EQ(results.size(), trace.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].id, trace[i].id);
        EXPECT_EQ(results[i].kind, trace[i].kind());
        expectMatchesStandalone(results[i], trace[i], cfg.engine);
    }
}

TEST(Scheduler, BurstBeyondAdmissionShedsExplicitly)
{
    SchedulerConfig cfg;
    cfg.maxQueue = 3;
    cfg.startPaused = true; // deterministic: nothing drains yet
    cfg.headBudget = 4;
    Scheduler sched(cfg);
    const std::vector<Request> trace = mixedMiniTrace(8);
    std::vector<std::future<RequestResult>> futs;
    for (const Request &r : trace)
        futs.push_back(sched.submit(r));
    // Shed futures resolve immediately, before start().
    for (std::size_t i = 3; i < futs.size(); ++i) {
        ASSERT_EQ(futs[i].wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << "shed future " << i << " must resolve immediately";
    }
    sched.drain();
    int completed = 0, shed = 0;
    for (std::size_t i = 0; i < futs.size(); ++i) {
        const RequestResult r = futs[i].get();
        EXPECT_EQ(r.id, trace[i].id); // shed or not, identity kept
        if (r.outcome == Outcome::Completed) {
            ++completed;
            expectMatchesStandalone(r, trace[i], cfg.engine);
        } else {
            ++shed;
            EXPECT_TRUE(r.engine.heads.empty());
        }
    }
    // FIFO admission: exactly the first maxQueue requests complete.
    EXPECT_EQ(completed, 3);
    EXPECT_EQ(shed, 5);
    const SchedulerStats st = sched.stats();
    EXPECT_EQ(st.submitted, 8);
    EXPECT_EQ(st.admitted, 3);
    EXPECT_EQ(st.shed, 5);
    EXPECT_EQ(st.completed, 3);
}

TEST(Scheduler, PausedStartMergesIntoContinuousBatches)
{
    SchedulerConfig cfg;
    cfg.startPaused = true;
    cfg.headBudget = 8; // 4 two-head requests per batch
    Scheduler sched(cfg);
    std::vector<std::future<RequestResult>> futs;
    const std::vector<Request> trace = mixedMiniTrace(8);
    for (const Request &r : trace)
        futs.push_back(sched.submit(r));
    sched.drain();
    const SchedulerStats st = sched.stats();
    EXPECT_EQ(st.completed, 8);
    EXPECT_EQ(st.batches, 2); // 8 requests x 2 heads / budget 8
    EXPECT_DOUBLE_EQ(st.meanBatchRequests, 4.0);
    EXPECT_EQ(st.maxQueueDepth, 8);
    for (auto &f : futs)
        EXPECT_EQ(f.get().coscheduledHeads, 8);
}

TEST(Scheduler, DeterministicAcrossPoolsAndSerial)
{
    const std::vector<Request> trace = mixedMiniTrace(4);
    SchedulerConfig cfg;
    cfg.lanes = 2;
    cfg.headBudget = 4;

    // Reference: forced-serial execution (every parallelFor inline).
    std::vector<RequestResult> serial;
    {
        ThreadPool::ScopedSerial guard;
        Scheduler sched(cfg);
        serial = runClosedLoop(sched, trace, 2);
    }
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        SchedulerConfig tcfg = cfg;
        tcfg.engine.pool = &pool;
        Scheduler sched(tcfg);
        const auto results = runClosedLoop(sched, trace, 2);
        ASSERT_EQ(results.size(), serial.size()) << threads;
        for (std::size_t i = 0; i < results.size(); ++i) {
            ASSERT_EQ(results[i].engine.heads.size(),
                      serial[i].engine.heads.size());
            for (std::size_t h = 0;
                 h < results[i].engine.heads.size(); ++h)
                expectSameResult(results[i].engine.heads[h].result,
                                 serial[i].engine.heads[h].result);
            EXPECT_EQ(results[i].engine.totalOps().total(),
                      serial[i].engine.totalOps().total());
        }
    }
}

TEST(Scheduler, DestructorDrainsAdmittedRequests)
{
    std::future<RequestResult> fut;
    {
        SchedulerConfig cfg;
        cfg.startPaused = true; // still queued when the dtor runs
        Scheduler sched(cfg);
        fut = sched.submit(makeRequest(1, prefillSpec()));
    }
    // The scheduler is gone; the admitted request still completed.
    const RequestResult r = fut.get();
    EXPECT_EQ(r.outcome, Outcome::Completed);
    EXPECT_GT(r.engine.totalOps().total(), 0);
}

TEST(Scheduler, ReplayTraceHonorsArrivalOrder)
{
    std::vector<Request> trace = mixedMiniTrace(3);
    for (std::size_t i = 0; i < trace.size(); ++i)
        trace[i].arrival = static_cast<double>(i) * 1e-3;
    Scheduler sched;
    const auto results = replayTrace(sched, trace, /*scale=*/1.0);
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].id, trace[i].id);
        EXPECT_EQ(results[i].outcome, Outcome::Completed);
    }
}

} // namespace
} // namespace serve
} // namespace sofa
