#include <gtest/gtest.h>

#include "energy/area_model.h"

namespace sofa {
namespace {

TEST(AreaModel, TotalsMatchTableIII)
{
    SofaAreaModel m;
    EXPECT_NEAR(m.totalAreaMm2(), 5.69, 0.01);
    EXPECT_NEAR(m.totalPowerMw(), 949.85, 0.1);
}

TEST(AreaModel, SixModules)
{
    SofaAreaModel m;
    EXPECT_EQ(m.modules().size(), 6u);
}

TEST(AreaModel, LpFractionsMatchPaper)
{
    // Paper: LP (DLZS + SADS) accounts for ~18% area and ~15% power.
    SofaAreaModel m;
    EXPECT_NEAR(m.lpAreaFraction(), 0.18, 0.02);
    EXPECT_NEAR(m.lpPowerFraction(), 0.15, 0.02);
}

TEST(AreaModel, SufaIsLargestModule)
{
    SofaAreaModel m;
    const auto &sufa = m.byName("SU-FA module");
    for (const auto &mod : m.modules()) {
        EXPECT_LE(mod.areaMm2, sufa.areaMm2);
        EXPECT_LE(mod.powerMw, sufa.powerMw);
    }
}

TEST(AreaModelDeath, UnknownModuleFatal)
{
    SofaAreaModel m;
    EXPECT_EXIT(m.byName("nope"), ::testing::ExitedWithCode(1),
                "unknown module");
}

TEST(DevicePower, TableIVTotals)
{
    DevicePower p;
    EXPECT_NEAR(p.totalW(), 3.40, 0.01);
    EXPECT_NEAR(p.coreW, 0.95, 1e-9);
    EXPECT_NEAR(p.interfaceW, 0.53, 1e-9);
    EXPECT_NEAR(p.dramW, 1.92, 1e-9);
}

TEST(DevicePower, BandwidthScalesMemorySide)
{
    DevicePower half = DevicePower::atBandwidth(29.9);
    EXPECT_NEAR(half.dramW, 0.96, 0.01);
    EXPECT_NEAR(half.interfaceW, 0.265, 0.005);
    EXPECT_NEAR(half.coreW, 0.95, 1e-9); // core unaffected
}

} // namespace
} // namespace sofa
