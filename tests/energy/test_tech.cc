#include <gtest/gtest.h>

#include "energy/tech.h"

namespace sofa {
namespace {

TEST(TechScaler, IdentityAtReference)
{
    TechScaler s;
    TechNode node{28.0, 1.0};
    EXPECT_DOUBLE_EQ(s.scaleFrequency(1e9, node), 1e9);
    EXPECT_DOUBLE_EQ(s.scalePower(1.0, node), 1.0);
    EXPECT_DOUBLE_EQ(s.scaleArea(2.0, node), 2.0);
    EXPECT_DOUBLE_EQ(s.scaleThroughput(100.0, node), 100.0);
}

TEST(TechScaler, FrequencyRule)
{
    // f ~ 1/s^2: a 40nm design normalized to 28nm gets faster by
    // (40/28)^2 ~ 2.04.
    TechScaler s;
    TechNode n40{40.0, 1.0};
    EXPECT_NEAR(s.scaleFrequency(1e9, n40) / 1e9, 2.0408, 1e-3);
}

TEST(TechScaler, PowerRuleFollowsFootnote)
{
    // power(core) ~ (1/s)(1.0/Vdd)^2.
    TechScaler s;
    TechNode n56{56.0, 1.0};
    EXPECT_NEAR(s.scalePower(2.0, n56), 1.0, 1e-9);
    TechNode n28lowv{28.0, 0.5};
    EXPECT_NEAR(s.scalePower(1.0, n28lowv), 4.0, 1e-9);
}

TEST(TechScaler, AreaShrinks)
{
    TechScaler s;
    TechNode n56{56.0, 1.0};
    EXPECT_NEAR(s.scaleArea(4.0, n56), 1.0, 1e-9);
}

TEST(TechScaler, EfficiencyGainFromScaling)
{
    // Normalizing an older node to 28nm boosts GOPS/W by s^3.
    TechScaler s;
    TechNode n40{40.0, 1.0};
    const double gops = s.scaleThroughput(100.0, n40);
    const double power = s.scalePower(1.0, n40);
    const double eff_gain = (gops / power) / 100.0;
    const double sf = 40.0 / 28.0;
    EXPECT_NEAR(eff_gain, sf * sf * sf, 1e-6);
}

TEST(TechScaler, SmallerNodeScalesDown)
{
    // A 22nm design normalized *to* 28nm loses frequency.
    TechScaler s;
    TechNode n22{22.0, 1.0};
    EXPECT_LT(s.scaleFrequency(1e9, n22), 1e9);
    EXPECT_GT(s.scaleArea(1.0, n22), 1.0);
}

} // namespace
} // namespace sofa
