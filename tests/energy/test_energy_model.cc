#include <gtest/gtest.h>

#include "energy/energy_model.h"

namespace sofa {
namespace {

TEST(OpEnergies, HorowitzOrdering)
{
    OpEnergies e = OpEnergies::horowitz45();
    EXPECT_LT(e.addI8, e.addI32);
    EXPECT_LT(e.addI8, e.mulI8);
    EXPECT_LT(e.mulI8, e.mulI32);
    EXPECT_LT(e.shift, e.addI8);
}

TEST(OpEnergies, NodeScalingShrinksEnergy)
{
    OpEnergies e45 = OpEnergies::horowitz45();
    OpEnergies e28 = OpEnergies::atNode({28.0, 1.0});
    EXPECT_LT(e28.mulI16, e45.mulI16);
    EXPECT_LT(e28.addI8, e45.addI8);
}

TEST(OpEnergyPj, PredictPathCheaperThanFormal)
{
    OpCounter ops;
    ops.addN(1000);
    ops.mulN(1000);
    OpEnergies e = OpEnergies::atNode({28.0, 1.0});
    EXPECT_LT(opEnergyPj(ops, Datapath::PredictI8, e),
              opEnergyPj(ops, Datapath::FormalI16, e));
}

TEST(OpEnergyPj, ShiftAddBeatsMultiply)
{
    // The DLZS argument: shifts + adds cost less than multiplies for
    // the same operation count.
    OpCounter dlzs, mul;
    dlzs.shiftN(1000);
    dlzs.addN(1000);
    mul.mulN(1000);
    mul.addN(1000);
    OpEnergies e = OpEnergies::atNode({28.0, 1.0});
    EXPECT_LT(opEnergyPj(dlzs, Datapath::PredictI8, e),
              opEnergyPj(mul, Datapath::PredictI8, e));
}

TEST(OpEnergyPj, ExpDominates)
{
    OpCounter exp_ops, add_ops;
    exp_ops.expN(10);
    add_ops.addN(10);
    OpEnergies e = OpEnergies::atNode({28.0, 1.0});
    EXPECT_GT(opEnergyPj(exp_ops, Datapath::FormalI16, e),
              10.0 * opEnergyPj(add_ops, Datapath::FormalI16, e));
}

TEST(MemEnergy, DramOrdersOfMagnitudeAboveSram)
{
    // Section II-D: DRAM ~2 orders of magnitude above cache access.
    MemEnergies e = MemEnergies::defaults();
    EXPECT_GT(e.dramBit / e.sramBit, 50.0);
    EXPECT_GT(dramEnergyPj(1024, e), sramEnergyPj(1024, e) * 50.0);
}

TEST(MemEnergy, LinearInBytes)
{
    MemEnergies e = MemEnergies::defaults();
    EXPECT_DOUBLE_EQ(sramEnergyPj(2048, e), 2.0 * sramEnergyPj(1024, e));
    EXPECT_DOUBLE_EQ(dramEnergyPj(2048, e), 2.0 * dramEnergyPj(1024, e));
    EXPECT_DOUBLE_EQ(ioEnergyPj(0, e), 0.0);
}

} // namespace
} // namespace sofa
