#include <gtest/gtest.h>

#include "arch/rass.h"
#include "arch/whole_row.h"
#include "attention/flash.h"
#include "baselines/gpu.h"
#include "baselines/sota.h"
#include "core/pipeline.h"
#include "core/sads.h"
#include "model/flops.h"
#include "model/suite.h"
#include "model/workload.h"

namespace sofa {
namespace {

// Shape assertions for each reproduced figure: these are the
// regression gates the bench harness relies on.

TEST(FigureShapes, Fig1AttentionTakesOverAtLongSeq)
{
    auto m = models::llama7b();
    auto p32k = modelProfile(m, 32768, 32768);
    EXPECT_GT(p32k.atten.flops,
              0.8 * (p32k.ffn.flops + p32k.qkv.flops));
    auto p128k = modelProfile(m, 131072, 131072);
    EXPECT_GT(p128k.atten.flops, p128k.ffn.flops + p128k.qkv.flops);
}

TEST(FigureShapes, Fig3MatRatioAveragesNearPaper)
{
    // Paper: MAT ratio rises to ~72% on average at the figure's
    // maximum parallelism per workload (512/256/128/8).
    std::vector<double> ratios;
    for (auto [seq, hd, heads, par] :
         {std::tuple{512, 64, 16, 512},
          std::tuple{1024, 64, 12, 256},
          std::tuple{2048, 128, 16, 128},
          std::tuple{4096, 128, 40, 8}}) {
        WholeRowConfig fact;
        fact.throughputGops = 928.0;
        auto r = runWholeRow(fact, par, seq, hd, heads);
        ratios.push_back(r.matRatio());
    }
    const double avg = mean(ratios);
    EXPECT_GT(avg, 0.55);
    EXPECT_LT(avg, 0.95);
}

TEST(FigureShapes, Fig5Fa2ComplexitySoarsWithS)
{
    // Normalized complexity gap vs vanilla grows superlinearly in S.
    const double gap_1k =
        fa2AnalyticOps(1, 1024, 16, 64).normalized() -
        vanillaAnalyticOps(1, 1024, 64).normalized();
    const double gap_4k =
        fa2AnalyticOps(1, 4096, 16, 64).normalized() -
        vanillaAnalyticOps(1, 4096, 64).normalized();
    EXPECT_GT(gap_4k, 3.5 * gap_1k);
}

TEST(FigureShapes, Fig8TypeIAndIICover95Percent)
{
    for (const auto &m :
         {models::bertBase(), models::gpt2(), models::llama7b(),
          models::vitBase()}) {
        Rng rng(1234);
        ScoreRowParams p;
        p.seq = 1024;
        MatF scores = generateScoreMatrix(rng, m.mixture, 200, p);
        auto tally = classifyScoreMatrix(scores);
        EXPECT_GT(tally.frac1() + tally.frac2(), 0.9) << m.name;
    }
}

TEST(FigureShapes, Fig17ComplexityLadder)
{
    // baseline > DLZS > DLZS+SADS > DLZS+SADS+SU-FA in normalized
    // complexity at matched sparsity.
    auto w = generateWorkload(
        suiteSmall()[0].workloadSpec(512, 32));
    const double keep = 0.2;

    auto base = runBaselinePipeline(w, keep);
    PipelineConfig cfg;
    cfg.topkFrac = keep;
    auto sofa_run = runSofaPipeline(w, cfg);

    OpCosts narrow = OpCosts::scaled(0.5); // 4-bit prediction path
    const double base_total = base.predictionOps.normalized(narrow) +
                              base.sortOps.normalized() +
                              base.formalOps.normalized();
    // DLZS only: swap prediction, keep vanilla sort + FA-2 formal.
    const double dlzs_only =
        sofa_run.predictionOps.normalized(narrow) +
        base.sortOps.normalized() + base.formalOps.normalized();
    const double dlzs_sads =
        sofa_run.predictionOps.normalized(narrow) +
        sofa_run.sortOps.normalized() + base.formalOps.normalized();
    const double full = sofa_run.predictionOps.normalized(narrow) +
                        sofa_run.sortOps.normalized() +
                        sofa_run.formalOps.normalized();
    EXPECT_LT(dlzs_only, base_total);
    EXPECT_LT(dlzs_sads, dlzs_only);
    EXPECT_LT(full, dlzs_sads);
    // Total reduction in the ballpark of the paper's 28%.
    EXPECT_GT(1.0 - full / base_total, 0.10);
}

TEST(FigureShapes, Fig18ReductionGrowsWithLossBudget)
{
    auto w = generateWorkload(
        suiteSmall()[2].workloadSpec(512, 24));
    PipelineConfig cfg;
    const double k0 = minimalKeepFraction(w, cfg, 0.25);
    const double k2 = minimalKeepFraction(w, cfg, 2.0);
    // More loss budget -> fewer keys kept -> more compute cut.
    EXPECT_LT(k2, k0 + 1e-9);
    // Attention-compute cut at 2% loss should be large (paper: 92.6%
    // on real benchmarks; synthetic mixtures are noisier).
    EXPECT_GT(1.0 - k2, 0.45);
}

TEST(FigureShapes, Fig20RassPlusTilingCutMemory)
{
    auto w = generateWorkload(
        suiteSmall()[0].workloadSpec(512, 64));
    auto sads = sadsTopK(w.scores, 102, {});
    auto sel = sads.selections();
    auto naive = scheduleNaive(sel, 64);
    auto rass = scheduleRass(sel, 64);
    EXPECT_LT(static_cast<double>(rass.vectorLoads),
              0.95 * static_cast<double>(naive.vectorLoads));
}

TEST(FigureShapes, Tab2SofaThroughputGapLargest)
{
    auto rows = sotaTable();
    const double sofa_gops = sofaRow().throughputGops;
    for (const auto &r : rows)
        EXPECT_GT(sofa_gops, r.throughputGops * 4.0) << r.name;
}

} // namespace
} // namespace sofa
