#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "attention/reference.h"
#include "baselines/gpu.h"
#include "core/pipeline.h"
#include "model/suite.h"

namespace sofa {
namespace {

/** Full functional + architectural run over one suite benchmark. */
TEST(EndToEnd, FunctionalAndArchAgreeOnSparsity)
{
    auto suite = suiteSmall();
    ASSERT_FALSE(suite.empty());
    auto spec = suite[0].workloadSpec(512, 32);
    auto w = generateWorkload(spec);

    PipelineConfig pcfg;
    pcfg.topkFrac = 0.2;
    auto func = runSofaPipeline(w, pcfg);

    SofaConfig acfg;
    acfg.topkFrac = 0.2;
    SofaAccelerator acc(acfg);
    AttentionShape shape;
    shape.queries = spec.queries;
    shape.seq = spec.seq;
    shape.headDim = spec.headDim;
    shape.tokenDim = spec.tokenDim;
    shape.keyCoverage =
        static_cast<double>(func.keysGenerated) / spec.seq;
    shape.violationRate =
        static_cast<double>(func.maxViolations) /
        std::max<std::int64_t>(
            1, static_cast<std::int64_t>(spec.queries) *
                   static_cast<std::int64_t>(0.2 * spec.seq));
    auto sim = acc.run(shape);

    EXPECT_GT(sim.timeNs, 0.0);
    EXPECT_GT(func.massRecall, 0.85);
    // Exact agreements (tightened with the engine refactor): the
    // sim's kept-key count and useful-op accounting are closed-form
    // over the same shape the functional run executed.
    EXPECT_DOUBLE_EQ(
        sim.stats.get("kept_keys"),
        static_cast<double>(pipelineKeepCount(0.2, spec.seq)));
    EXPECT_DOUBLE_EQ(sim.usefulOps,
                     4.0 * spec.queries * spec.seq * spec.headDim);
    // Functional selections honor the same k exactly.
    for (const auto &sel : func.selections)
        EXPECT_EQ(static_cast<int>(sel.size()),
                  pipelineKeepCount(0.2, spec.seq));
}

TEST(EndToEnd, SofaBeatsGpuModelAtScale)
{
    // The headline claim at workload scale: SOFA's simulated
    // throughput beats the A100 model by a large factor on long
    // sequences with 2%-loss sparsity.
    AttentionShape shape;
    shape.queries = 512;
    shape.seq = 4096;
    shape.headDim = 128;
    shape.heads = 8;

    SofaConfig cfg;
    cfg.topkFrac = 0.08; // 2%-loss operating point
    SofaAccelerator acc(cfg);
    auto sofa_res = acc.run(shape);

    GpuModel gpu;
    auto gpu_res = gpu.run(shape, GpuMode::Dense);

    const double speedup = gpu_res.timeNs / sofa_res.timeNs;
    EXPECT_GT(speedup, 3.0);

    const double eff_gain = sofa_res.gopsPerWatt / gpu_res.gopsPerWatt;
    EXPECT_GT(eff_gain, 10.0);
}

TEST(EndToEnd, SuiteLossTargetsAchievable)
{
    // Every small-suite benchmark can hit the 2% loss target with a
    // keep fraction well below dense.
    for (const auto &b : suiteSmall()) {
        auto w = generateWorkload(b.workloadSpec(384, 16));
        PipelineConfig cfg;
        const double frac = minimalKeepFraction(w, cfg, 2.0);
        EXPECT_LT(frac, 0.7) << b.name;
        EXPECT_GT(frac, 0.0) << b.name;
    }
}

TEST(EndToEnd, CrossStageInfoReducesFormalOps)
{
    // The cross-stage claim in microcosm: with SADS ordering handed
    // to SU-FA, the formal stage spends fewer ops than sparse FA-2
    // on the same selections.
    auto w = generateWorkload(
        suiteSmall()[0].workloadSpec(512, 32));
    PipelineConfig cfg;
    cfg.topkFrac = 0.2;
    auto sofa_run = runSofaPipeline(w, cfg);
    auto base_run = runBaselinePipeline(w, 0.2);
    // Compare only the attention-side formal ops (KV generation is
    // charged in both, but baseline generates all S keys).
    EXPECT_LT(sofa_run.formalOps.normalized(),
              base_run.formalOps.normalized());
}

TEST(EndToEnd, ViolationRateSmall)
{
    // DLZS misprediction seldom breaks the descending order property
    // on realistic mixtures.
    auto w = generateWorkload(
        suiteSmall()[1].workloadSpec(512, 32));
    PipelineConfig cfg;
    cfg.topkFrac = 0.2;
    auto res = runSofaPipeline(w, cfg);
    const double per_element =
        static_cast<double>(res.maxViolations) /
        (static_cast<double>(w.spec.queries) * 0.2 * w.spec.seq);
    EXPECT_LT(per_element, 0.25);
}

} // namespace
} // namespace sofa
